package rewrite

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"algrec/internal/spec"
	"algrec/internal/term"
)

func natSetSpec(t *testing.T) *spec.Spec {
	t.Helper()
	sp, err := spec.SetSpec(spec.NatSpec(), "nat", "EQ")
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestNatArithmetic(t *testing.T) {
	rw := New(spec.NatSpec(), 0)
	got, err := rw.Normalize(term.Mk("PLUS", spec.NatTerm(2), spec.NatTerm(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !term.Equal(got, spec.NatTerm(5)) {
		t.Errorf("2+3 = %s", got)
	}
	eq, err := rw.Normalize(term.Mk("EQ", spec.NatTerm(4), term.Mk("PLUS", spec.NatTerm(2), spec.NatTerm(2))))
	if err != nil {
		t.Fatal(err)
	}
	if !term.Equal(eq, term.Const("TRUE")) {
		t.Errorf("EQ(4, 2+2) = %s", eq)
	}
	ne, err := rw.Normalize(term.Mk("EQ", spec.NatTerm(1), spec.NatTerm(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !term.Equal(ne, term.Const("FALSE")) {
		t.Errorf("EQ(1, 2) = %s", ne)
	}
}

// TestSetEquations checks the two INS equations of Section 2.1: insertion
// order and duplicates do not matter — the quotient term algebra identifies
// all insertion chains denoting the same finite set.
func TestSetEquations(t *testing.T) {
	rw := New(natSetSpec(t), 0)
	a := spec.SetTerm(spec.NatTerm(1), spec.NatTerm(2), spec.NatTerm(3))
	b := spec.SetTerm(spec.NatTerm(3), spec.NatTerm(1), spec.NatTerm(2), spec.NatTerm(1), spec.NatTerm(3))
	eq, err := rw.Equiv(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		na, _ := rw.Normalize(a)
		nb, _ := rw.Normalize(b)
		t.Errorf("set terms should be equal:\n  %s\n  %s", na, nb)
	}
	c := spec.SetTerm(spec.NatTerm(1), spec.NatTerm(2))
	if eq, _ := rw.Equiv(a, c); eq {
		t.Error("different sets identified")
	}
}

// TestMemTotal: MEM is a total boolean function on finite sets — TRUE for
// members, FALSE for non-members, no junk normal forms.
func TestMemTotal(t *testing.T) {
	rw := New(natSetSpec(t), 0)
	s := spec.SetTerm(spec.NatTerm(1), spec.NatTerm(3), spec.NatTerm(5))
	for i := 0; i <= 6; i++ {
		got, err := rw.Normalize(term.Mk("MEM", spec.NatTerm(i), s))
		if err != nil {
			t.Fatal(err)
		}
		want := term.Const("FALSE")
		if i == 1 || i == 3 || i == 5 {
			want = term.Const("TRUE")
		}
		if !term.Equal(got, term.Term(want)) {
			t.Errorf("MEM(%d, {1,3,5}) = %s", i, got)
		}
	}
	// the empty set
	if got, _ := rw.Normalize(term.Mk("MEM", spec.NatTerm(0), term.Const("EMPTY"))); !term.Equal(got, term.Const("FALSE")) {
		t.Errorf("MEM(0, EMPTY) = %s", got)
	}
}

// TestSetCanonicalProperty: random insertion sequences with the same
// underlying set share one normal form (property-based E1 check).
func TestSetCanonicalProperty(t *testing.T) {
	sp := natSetSpec(t)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		elems := make([]int, n)
		for i := range elems {
			elems[i] = r.Intn(5)
		}
		mkChain := func(order []int) term.Term {
			ts := make([]term.Term, len(order))
			for i, idx := range order {
				ts[i] = spec.NatTerm(elems[idx])
			}
			return spec.SetTerm(ts...)
		}
		id := make([]int, n)
		for i := range id {
			id[i] = i
		}
		shuffled := append([]int(nil), id...)
		r.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		// also duplicate a random element
		withDup := append(append([]int(nil), shuffled...), shuffled[r.Intn(n)])
		rw := New(sp, 0)
		eq1, err := rw.Equiv(mkChain(id), mkChain(shuffled))
		if err != nil {
			return false
		}
		eq2, err := rw.Equiv(mkChain(id), mkChain(withDup))
		if err != nil {
			return false
		}
		return eq1 && eq2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestMemMatchesValueSets: the specification's MEM agrees with the value
// model's set membership on random data — the spec level and the value
// level of this repository describe the same data type.
func TestMemMatchesValueSets(t *testing.T) {
	sp := natSetSpec(t)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(6)
		in := map[int]bool{}
		var ts []term.Term
		for i := 0; i < n; i++ {
			v := r.Intn(6)
			in[v] = true
			ts = append(ts, spec.NatTerm(v))
		}
		rw := New(sp, 0)
		probe := r.Intn(8)
		got, err := rw.Normalize(term.Mk("MEM", spec.NatTerm(probe), spec.SetTerm(ts...)))
		if err != nil {
			return false
		}
		want := "FALSE"
		if in[probe] {
			want = "TRUE"
		}
		return term.Equal(got, term.Const(want))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestConditionalRewriting exercises a generalized conditional equation with
// a disequation premise, the Section 2.2 mechanism, in its operational
// reading: f(x) rewrites to TRUE only when x ≠ ZERO.
func TestConditionalRewriting(t *testing.T) {
	sig := term.NewSignature()
	sig.AddSort("nat")
	sig.AddSort("bool")
	for _, op := range []struct {
		n string
		a []string
		r string
	}{
		{"ZERO", nil, "nat"}, {"SUCC", []string{"nat"}, "nat"},
		{"TRUE", nil, "bool"}, {"FALSE", nil, "bool"},
		{"NONZERO", []string{"nat"}, "bool"},
	} {
		if err := sig.AddOp(op.n, op.a, op.r); err != nil {
			t.Fatal(err)
		}
	}
	x := term.Var{Name: "x", Sort: "nat"}
	sp := &spec.Spec{Name: "COND", Sig: sig, Eqns: []spec.Equation{
		{Conds: []spec.Cond{{L: x, R: term.Const("ZERO"), Negated: true}},
			Lhs: term.Mk("NONZERO", x), Rhs: term.Const("TRUE")},
		{Conds: []spec.Cond{{L: x, R: term.Const("ZERO")}},
			Lhs: term.Mk("NONZERO", x), Rhs: term.Const("FALSE")},
	}}
	if !sp.HasNegation() {
		t.Error("spec should report negation")
	}
	rw := New(sp, 0)
	if got, _ := rw.Normalize(term.Mk("NONZERO", spec.NatTerm(2))); !term.Equal(got, term.Const("TRUE")) {
		t.Errorf("NONZERO(2) = %s", got)
	}
	if got, _ := rw.Normalize(term.Mk("NONZERO", term.Const("ZERO"))); !term.Equal(got, term.Const("FALSE")) {
		t.Errorf("NONZERO(0) = %s", got)
	}
}

func TestBudget(t *testing.T) {
	// A deliberately non-terminating rule: LOOP = SUCC(LOOP) read forward.
	sig := term.NewSignature()
	sig.AddSort("nat")
	if err := sig.AddOp("LOOP", nil, "nat"); err != nil {
		t.Fatal(err)
	}
	if err := sig.AddOp("SUCC", []string{"nat"}, "nat"); err != nil {
		t.Fatal(err)
	}
	sp := &spec.Spec{Name: "LOOPY", Sig: sig, Eqns: []spec.Equation{
		{Lhs: term.Const("LOOP"), Rhs: term.Mk("SUCC", term.Const("LOOP"))},
	}}
	rw := New(sp, 100)
	_, err := rw.Normalize(term.Const("LOOP"))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	if rw.Steps() == 0 {
		t.Error("Steps not counted")
	}
}

func TestOpenTermsAreInert(t *testing.T) {
	rw := New(spec.NatSpec(), 0)
	x := term.Var{Name: "x", Sort: "nat"}
	got, err := rw.Normalize(term.Mk("PLUS", term.Const("ZERO"), x))
	if err != nil {
		t.Fatal(err)
	}
	if !term.Equal(got, x) {
		t.Errorf("PLUS(ZERO, x) = %s, want x", got)
	}
}

func TestSpecStringAndImportErrors(t *testing.T) {
	sp := natSetSpec(t)
	s := sp.String()
	for _, want := range []string{"SET(nat)", "INS: nat, set(nat) -> set(nat)", "MEM(d, EMPTY) = FALSE"} {
		if !containsStr(s, want) {
			t.Errorf("Spec.String missing %q:\n%s", want, s)
		}
	}
	// validate catches ill-sorted equations
	bad := &spec.Spec{Name: "BAD", Sig: sp.Sig, Eqns: []spec.Equation{
		{Lhs: term.Const("TRUE"), Rhs: term.Const("EMPTY")},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("ill-sorted equation accepted")
	}
	// the totality equation is well-formed and negated
	tot := spec.MemTotalityEquation("nat")
	if !tot.HasNegation() {
		t.Error("totality equation should be negated")
	}
	sp2 := &spec.Spec{Name: "TOT", Sig: sp.Sig, Eqns: []spec.Equation{tot}}
	if err := sp2.Validate(); err != nil {
		t.Errorf("totality equation ill-formed: %v", err)
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
