package rewrite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"algrec/internal/spec"
	"algrec/internal/term"
	"algrec/internal/value"
)

func setOpsRewriter(t *testing.T) *Rewriter {
	t.Helper()
	base, err := spec.SetSpec(spec.NatSpec(), "nat", "EQ")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spec.SetOpsSpec(base, "nat", "EQ")
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	return New(sp, 0)
}

func natSet(ns ...int) term.Term {
	ts := make([]term.Term, len(ns))
	for i, n := range ns {
		ts[i] = spec.NatTerm(n)
	}
	return spec.SetTerm(ts...)
}

func TestSetOpsBasics(t *testing.T) {
	rw := setOpsRewriter(t)
	cases := []struct {
		name string
		expr term.Term
		want term.Term
	}{
		{"union", term.Mk("UNION", natSet(1, 2), natSet(2, 3)), natSet(1, 2, 3)},
		{"union empty left", term.Mk("UNION", natSet(), natSet(1)), natSet(1)},
		{"del", term.Mk("DEL", spec.NatTerm(2), natSet(1, 2, 3)), natSet(1, 3)},
		{"del absent", term.Mk("DEL", spec.NatTerm(9), natSet(1, 2)), natSet(1, 2)},
		{"diff", term.Mk("DIFF", natSet(1, 2, 3), natSet(2)), natSet(1, 3)},
		{"diff all", term.Mk("DIFF", natSet(1, 2), natSet(1, 2, 3)), natSet()},
		{"intersect", term.Mk("INTERSECT", natSet(1, 2, 3), natSet(2, 3, 4)), natSet(2, 3)},
		{"intersect disjoint", term.Mk("INTERSECT", natSet(1), natSet(2)), natSet()},
	}
	for _, c := range cases {
		eq, err := rw.Equiv(c.expr, c.want)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if !eq {
			got, _ := rw.Normalize(c.expr)
			t.Errorf("%s: %s normalizes to %s", c.name, c.expr, got)
		}
	}
}

// TestSetOpsMatchValueModel: the specification-level operators and the
// value-level operators of internal/value compute the same sets — the two
// layers of this repository describe one data type (property-based).
func TestSetOpsMatchValueModel(t *testing.T) {
	base, err := spec.SetSpec(spec.NatSpec(), "nat", "EQ")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spec.SetOpsSpec(base, "nat", "EQ")
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() ([]int, value.Set, term.Term) {
			n := r.Intn(5)
			ns := make([]int, n)
			vs := make([]value.Value, n)
			ts := make([]term.Term, n)
			for i := range ns {
				ns[i] = r.Intn(5)
				vs[i] = value.Int(int64(ns[i]))
				ts[i] = spec.NatTerm(ns[i])
			}
			return ns, value.NewSet(vs...), spec.SetTerm(ts...)
		}
		_, va, ta := mk()
		_, vb, tb := mk()
		rw := New(sp, 0)
		check := func(op string, want value.Set) bool {
			got, err := rw.Normalize(term.Mk(op, ta, tb))
			if err != nil {
				return false
			}
			// rebuild the expected term and compare normal forms
			elems := want.Elems()
			ts := make([]term.Term, len(elems))
			for i, e := range elems {
				ts[i] = spec.NatTerm(int(e.(value.Int)))
			}
			wantT, err := rw.Normalize(spec.SetTerm(ts...))
			if err != nil {
				return false
			}
			return term.Equal(got, wantT)
		}
		return check("UNION", va.Union(vb)) &&
			check("DIFF", va.Diff(vb)) &&
			check("INTERSECT", va.Intersect(vb))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSetOpsErrors(t *testing.T) {
	if _, err := spec.SetOpsSpec(spec.NatSpec(), "nat", "EQ"); err == nil {
		t.Error("SetOpsSpec accepted a spec without the set sort")
	}
	base, err := spec.SetSpec(spec.NatSpec(), "nat", "EQ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.SetOpsSpec(base, "nat", "NOSUCH"); err == nil {
		t.Error("SetOpsSpec accepted a missing equality")
	}
}
