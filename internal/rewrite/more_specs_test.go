package rewrite

import (
	"testing"

	"algrec/internal/spec"
	"algrec/internal/term"
)

// The paper's Section 2.1: "Essentially all known data types ... and
// structured types like sets, lists, stacks, and so on, can be so defined."
// These tests run the LIST, STACK and nested-SET specifications by
// rewriting.

func TestListSpec(t *testing.T) {
	sp, err := spec.ListSpec(spec.NatSpec(), "nat", "EQ")
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	rw := New(sp, 0)
	cons := func(n int, l term.Term) term.Term { return term.Mk("CONS", spec.NatTerm(n), l) }
	l12 := cons(1, cons(2, term.Const("NIL")))
	l3 := cons(3, term.Const("NIL"))
	// APPEND
	app, err := rw.Normalize(term.Mk("APPEND", l12, l3))
	if err != nil {
		t.Fatal(err)
	}
	want := cons(1, cons(2, cons(3, term.Const("NIL"))))
	nw, _ := rw.Normalize(want)
	if !term.Equal(app, nw) {
		t.Errorf("APPEND = %s, want %s", app, nw)
	}
	// LEN
	ln, err := rw.Normalize(term.Mk("LEN", app))
	if err != nil {
		t.Fatal(err)
	}
	if !term.Equal(ln, spec.NatTerm(3)) {
		t.Errorf("LEN = %s, want 3", ln)
	}
	// EQLIST: order matters for lists (unlike sets)
	eq1, _ := rw.Normalize(term.Mk("EQLIST", l12, cons(1, cons(2, term.Const("NIL")))))
	if !term.Equal(eq1, term.Const("TRUE")) {
		t.Errorf("EQLIST same = %s", eq1)
	}
	eq2, _ := rw.Normalize(term.Mk("EQLIST", l12, cons(2, cons(1, term.Const("NIL")))))
	if !term.Equal(eq2, term.Const("FALSE")) {
		t.Errorf("EQLIST swapped = %s (lists are ordered)", eq2)
	}
	eq3, _ := rw.Normalize(term.Mk("EQLIST", l12, l3))
	if !term.Equal(eq3, term.Const("FALSE")) {
		t.Errorf("EQLIST different lengths = %s", eq3)
	}
}

func TestStackSpec(t *testing.T) {
	sp, err := spec.StackSpec(spec.NatSpec(), "nat", "ZERO")
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	rw := New(sp, 0)
	push := func(n int, s term.Term) term.Term { return term.Mk("PUSH", spec.NatTerm(n), s) }
	s := push(3, push(2, term.Const("EMPTYSTK")))
	top, _ := rw.Normalize(term.Mk("TOPORD", s))
	if !term.Equal(top, spec.NatTerm(3)) {
		t.Errorf("TOPORD = %s, want 3", top)
	}
	popped, _ := rw.Normalize(term.Mk("TOPORD", term.Mk("POP", s)))
	if !term.Equal(popped, spec.NatTerm(2)) {
		t.Errorf("TOPORD(POP) = %s, want 2", popped)
	}
	// totality on the empty stack
	e1, _ := rw.Normalize(term.Mk("POP", term.Const("EMPTYSTK")))
	if !term.Equal(e1, term.Const("EMPTYSTK")) {
		t.Errorf("POP(EMPTYSTK) = %s", e1)
	}
	e2, _ := rw.Normalize(term.Mk("TOPORD", term.Const("EMPTYSTK")))
	if !term.Equal(e2, term.Const("ZERO")) {
		t.Errorf("TOPORD(EMPTYSTK) = %s", e2)
	}
	emp, _ := rw.Normalize(term.Mk("ISEMPTY", term.Mk("POP", push(1, term.Const("EMPTYSTK")))))
	if !term.Equal(emp, term.Const("TRUE")) {
		t.Errorf("ISEMPTY after pop = %s", emp)
	}
	if err := checkErrCases(t, sp); err != nil {
		t.Error(err)
	}
}

func checkErrCases(t *testing.T, _ *spec.Spec) error {
	t.Helper()
	if _, err := spec.StackSpec(spec.BoolSpec(), "nat", "ZERO"); err == nil {
		t.Error("missing sort accepted")
	}
	if _, err := spec.StackSpec(spec.NatSpec(), "nat", "SUCC"); err == nil {
		t.Error("non-constant default accepted")
	}
	if _, err := spec.ListSpec(spec.BoolSpec(), "nat", "EQ"); err == nil {
		t.Error("list with missing sort accepted")
	}
	if _, err := spec.ListSpec(spec.NatSpec(), "nat", "nosuch"); err == nil {
		t.Error("list with missing equality accepted")
	}
	return nil
}

// TestSetEquality: SUBSET and EQSET are definable (footnote 1's
// precondition), and EQSET ignores insertion order and duplicates.
func TestSetEquality(t *testing.T) {
	base, err := spec.SetSpec(spec.NatSpec(), "nat", "EQ")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spec.WithSetEquality(base, "nat")
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	rw := New(sp, 0)
	s12 := spec.SetTerm(spec.NatTerm(1), spec.NatTerm(2))
	s21 := spec.SetTerm(spec.NatTerm(2), spec.NatTerm(1), spec.NatTerm(2))
	s13 := spec.SetTerm(spec.NatTerm(1), spec.NatTerm(3))
	eq, _ := rw.Normalize(term.Mk("EQSET", s12, s21))
	if !term.Equal(eq, term.Const("TRUE")) {
		t.Errorf("EQSET({1,2}, {2,1,2}) = %s", eq)
	}
	ne, _ := rw.Normalize(term.Mk("EQSET", s12, s13))
	if !term.Equal(ne, term.Const("FALSE")) {
		t.Errorf("EQSET({1,2}, {1,3}) = %s", ne)
	}
	sub, _ := rw.Normalize(term.Mk("SUBSET", spec.SetTerm(spec.NatTerm(1)), s12))
	if !term.Equal(sub, term.Const("TRUE")) {
		t.Errorf("SUBSET({1}, {1,2}) = %s", sub)
	}
	nsub, _ := rw.Normalize(term.Mk("SUBSET", s13, s12))
	if !term.Equal(nsub, term.Const("FALSE")) {
		t.Errorf("SUBSET({1,3}, {1,2}) = %s", nsub)
	}
}

// TestNestedSets instantiates SET at set(nat): membership of inner sets in a
// set of sets, decided by the definable EQSET — the paper's footnote 1 made
// executable.
func TestNestedSets(t *testing.T) {
	sp, err := spec.NestedSetSpec()
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	rw := New(sp, 0)
	s12 := spec.SetTerm(spec.NatTerm(1), spec.NatTerm(2))
	s21 := spec.SetTerm(spec.NatTerm(2), spec.NatTerm(1)) // same set, different chain
	s3 := spec.SetTerm(spec.NatTerm(3))
	// outer = { {1,2}, {3} }
	outer := term.Mk("INS2", s12, term.Mk("INS2", s3, term.Const("EMPTY2")))
	in, err := rw.Normalize(term.Mk("MEM2", s21, outer))
	if err != nil {
		t.Fatal(err)
	}
	if !term.Equal(in, term.Const("TRUE")) {
		t.Errorf("MEM2({2,1}, {{1,2},{3}}) = %s (set equality should ignore order)", in)
	}
	notIn, err := rw.Normalize(term.Mk("MEM2", spec.SetTerm(spec.NatTerm(9)), outer))
	if err != nil {
		t.Fatal(err)
	}
	if !term.Equal(notIn, term.Const("FALSE")) {
		t.Errorf("MEM2({9}, ...) = %s", notIn)
	}
	// INS2 idempotence up to set equality of canonical forms: inserting the
	// reordered chain of an existing member collapses after normalization.
	bigger := term.Mk("INS2", s21, outer)
	nb, err := rw.Normalize(bigger)
	if err != nil {
		t.Fatal(err)
	}
	no, err := rw.Normalize(outer)
	if err != nil {
		t.Fatal(err)
	}
	if !term.Equal(nb, no) {
		t.Errorf("INS2 of an existing member (reordered) did not collapse:\n  %s\n  %s", nb, no)
	}
}
