// Package rewrite makes algebraic specifications executable: it orients a
// specification's equations left to right and normalizes ground terms by
// innermost rewriting, realizing the quotient term algebra operationally
// ("It is easy to see (using term rewriting) that ..." — the paper leans on
// exactly this machinery in Example 1).
//
// Conditional equations are applied when their conditions hold after
// normalizing both sides; a disequation condition holds when the two normal
// forms differ. This operational reading of negation is sound for
// constructor-style specifications such as SET(nat) and is the standard
// positive/negative conditional rewriting of Kaplan (the paper's [17]);
// for the general case the paper's valid-model semantics applies, and the
// validspec package decides the constant-only fragment exactly.
//
// Permutative equations (INS commutativity) are marked Ordered in the
// specification and applied only when they decrease the total order on
// terms, so normalization terminates with a canonical form: structurally
// equal normal forms coincide with provable equality for these
// specifications, making MEM and set equality decidable — the "associated
// benefit: algebraic specifications are computable" of Section 2.1.
package rewrite

import (
	"errors"
	"fmt"

	"algrec/internal/spec"
	"algrec/internal/term"
)

// ErrBudget is returned when normalization exceeds its step budget.
var ErrBudget = errors.New("rewrite: step budget exceeded")

// Rewriter normalizes terms of one specification.
type Rewriter struct {
	sp       *spec.Spec
	maxSteps int
	steps    int
}

// New returns a rewriter for the specification with the given step budget
// (0 means the default of 1e6 steps).
func New(sp *spec.Spec, maxSteps int) *Rewriter {
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	return &Rewriter{sp: sp, maxSteps: maxSteps}
}

// Steps reports the number of rewrite steps performed so far.
func (rw *Rewriter) Steps() int { return rw.steps }

// Normalize rewrites t to normal form. The term should be ground; match
// variables in equations never capture term variables, so normalizing an
// open term simply treats its variables as opaque constants.
func (rw *Rewriter) Normalize(t term.Term) (term.Term, error) {
	rw.steps = 0
	return rw.norm(t)
}

func (rw *Rewriter) norm(t term.Term) (term.Term, error) {
	switch tt := t.(type) {
	case term.Var:
		return tt, nil
	case term.App:
		args := make([]term.Term, len(tt.Args))
		for i, a := range tt.Args {
			na, err := rw.norm(a)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		cur := term.Term(term.App{Op: tt.Op, Args: args})
		for {
			next, applied, err := rw.rewriteRoot(cur)
			if err != nil {
				return nil, err
			}
			if !applied {
				return cur, nil
			}
			// The contracted term may expose new redexes anywhere; normalize
			// it fully (arguments first, then the root again).
			nf, err := rw.norm(next)
			if err != nil {
				return nil, err
			}
			if term.Equal(nf, cur) {
				return cur, nil
			}
			cur = nf
		}
	default:
		panic(fmt.Sprintf("rewrite: unknown term %T", t))
	}
}

// rewriteRoot tries each equation at the root of t.
func (rw *Rewriter) rewriteRoot(t term.Term) (term.Term, bool, error) {
	for _, e := range rw.sp.Eqns {
		s, ok := term.Match(e.Lhs, t)
		if !ok {
			continue
		}
		condsOK, err := rw.condsHold(e.Conds, s)
		if err != nil {
			return nil, false, err
		}
		if !condsOK {
			continue
		}
		rhs := s.Apply(e.Rhs)
		if e.Ordered && term.Compare(rhs, t) >= 0 {
			continue
		}
		rw.steps++
		if rw.steps > rw.maxSteps {
			return nil, false, fmt.Errorf("%w (%d steps)", ErrBudget, rw.maxSteps)
		}
		return rhs, true, nil
	}
	return t, false, nil
}

func (rw *Rewriter) condsHold(conds []spec.Cond, s term.Subst) (bool, error) {
	for _, c := range conds {
		l, err := rw.norm(s.Apply(c.L))
		if err != nil {
			return false, err
		}
		r, err := rw.norm(s.Apply(c.R))
		if err != nil {
			return false, err
		}
		eq := term.Equal(l, r)
		if c.Negated {
			eq = !eq
		}
		if !eq {
			return false, nil
		}
	}
	return true, nil
}

// Equiv reports whether two ground terms are provably equal in the
// specification, by comparing normal forms.
func (rw *Rewriter) Equiv(a, b term.Term) (bool, error) {
	na, err := rw.Normalize(a)
	if err != nil {
		return false, err
	}
	nb, err := rw.Normalize(b)
	if err != nil {
		return false, err
	}
	return term.Equal(na, nb), nil
}
