package datalog

import (
	"testing"

	"algrec/internal/value"
)

// These tests exercise the Section 4 domain-(in)dependence story around
// MakeSafe (Proposition 4.2). The paper's own example: "the answer to a
// query of the form Q(x)?, where Q is defined by the rule ¬R(x) → Q(x),
// changes if the domain of x is changed."

// evalWithDomain evaluates the MakeSafe'd program with the given universe as
// dom facts and returns q's answer keys. The evaluation machinery lives in
// internal/semantics; to avoid an import cycle in tests this helper performs
// a tiny stratified evaluation inline (the programs here are semipositive).
func evalWithDomain(t *testing.T, p *Program, universe []int64) map[string]bool {
	t.Helper()
	sp := MakeSafe(p, "dom")
	for _, u := range universe {
		sp.AddFacts(Fact{Pred: "dom", Args: []value.Value{value.Int(u)}})
	}
	// Inline naive stratified evaluation for the two-stratum shape used in
	// these tests: first derive all positive facts, then apply rules with
	// negation against the fixed positive result.
	facts := map[string]bool{}
	for _, r := range sp.Rules {
		if r.IsFact() {
			f, err := EvalGroundAtom(r.Head, nil)
			if err != nil {
				t.Fatal(err)
			}
			facts[f.Key()] = true
		}
	}
	changed := true
	for changed {
		changed = false
		for _, r := range sp.Rules {
			if r.IsFact() {
				continue
			}
			for _, b := range enumerate(t, r, facts) {
				f, err := EvalGroundAtom(r.Head, b)
				if err != nil {
					t.Fatal(err)
				}
				if !facts[f.Key()] {
					facts[f.Key()] = true
					changed = true
				}
			}
		}
	}
	out := map[string]bool{}
	for k := range facts {
		if len(k) > 2 && k[0] == 'q' && k[1] == '(' {
			out[k] = true
		}
	}
	return out
}

// enumerate instantiates a rule body against the fact set (naive, adequate
// for these tiny programs).
func enumerate(t *testing.T, r Rule, facts map[string]bool) []Binding {
	t.Helper()
	plan, err := PlanRule(r)
	if err != nil {
		t.Fatal(err)
	}
	// collect candidate values from dom facts
	var universe []value.Value
	for k := range facts {
		var f Fact
		if len(k) > 4 && k[:4] == "dom(" {
			f = Fact{Pred: "dom"}
			// parse back the single int argument
			var n int64
			for i := 4; i < len(k)-1; i++ {
				if k[i] == '-' {
					continue
				}
				n = n*10 + int64(k[i]-'0')
			}
			if k[4] == '-' {
				n = -n
			}
			f.Args = []value.Value{value.Int(n)}
			universe = append(universe, f.Args[0])
		}
	}
	bindings := []Binding{{}}
	for _, st := range plan.Steps {
		var next []Binding
		switch st.Kind {
		case StepMatch:
			for _, b := range bindings {
				for _, v := range universe {
					nb := b.Clone()
					ok := true
					for _, arg := range st.Atom.Args {
						av, isVar := arg.(Var)
						if isVar {
							if bound, has := nb[av]; has {
								if !value.Equal(bound, v) {
									ok = false
								}
							} else {
								nb[av] = v
							}
						}
					}
					if !ok {
						continue
					}
					f, err := EvalGroundAtom(st.Atom, nb)
					if err != nil {
						continue
					}
					if facts[f.Key()] {
						next = append(next, nb)
					}
				}
			}
		case StepAssign:
			for _, b := range bindings {
				v, err := EvalTerm(st.Term, b)
				if err != nil {
					continue
				}
				nb := b.Clone()
				nb[st.AssignVar] = v
				next = append(next, nb)
			}
		case StepTest:
			for _, b := range bindings {
				lv, err1 := EvalTerm(st.Cmp.L, b)
				rv, err2 := EvalTerm(st.Cmp.R, b)
				if err1 != nil || err2 != nil {
					continue
				}
				if ok, _ := EvalCmp(st.Cmp.Op, lv, rv); ok {
					next = append(next, b)
				}
			}
		}
		bindings = next
	}
	var out []Binding
	for _, b := range bindings {
		ok := true
		for _, na := range plan.Negs {
			f, err := EvalGroundAtom(na, b)
			if err != nil || facts[f.Key()] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out
}

// TestDomainDependentQuery is the paper's Section 4 example: q(X) :- not
// r(X) is domain dependent — enlarging the domain changes the answer — and
// MakeSafe makes the dependence explicit through the dom predicate.
func TestDomainDependentQuery(t *testing.T) {
	p := MustParse("r(1).\nq(X) :- not r(X).\n")
	small := evalWithDomain(t, p.Clone(), []int64{1, 2})
	large := evalWithDomain(t, p.Clone(), []int64{1, 2, 3, 4})
	if len(small) != 1 || !small["q(2)"] {
		t.Errorf("small domain answer = %v", small)
	}
	if len(large) != 3 {
		t.Errorf("large domain answer = %v", large)
	}
	if len(small) == len(large) {
		t.Error("q(X) :- not r(X) should be domain dependent")
	}
}

// TestDomainIndependentQuery: a safe query's answer is insensitive to domain
// growth ("domain independent queries ... are insensitive to the properties
// of elements outside this window").
func TestDomainIndependentQuery(t *testing.T) {
	p := MustParse("r(1). r(2). s(2).\nq(X) :- r(X), not s(X).\n")
	small := evalWithDomain(t, p.Clone(), []int64{1, 2})
	large := evalWithDomain(t, p.Clone(), []int64{1, 2, 3, 4, 5})
	if len(small) != 1 || !small["q(1)"] {
		t.Errorf("small domain answer = %v", small)
	}
	if len(large) != len(small) {
		t.Errorf("safe query changed with the domain: %v vs %v", small, large)
	}
}
