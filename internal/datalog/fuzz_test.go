package datalog

import "testing"

// FuzzParseProgram checks two robustness properties of the parser on
// arbitrary input: it never panics, and for accepted input the printed form
// is a fixpoint of parse-then-print (print ∘ parse is idempotent).
func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		"edge(1, 2).\n",
		"tc(X, Z) :- tc(X, Y), edge(Y, Z).\n",
		"win(X) :- move(X, Y), not win(Y).\n",
		"q(Y) :- d(X), Y = plus(X, 1), Y < 10.\n",
		"p((a, 1)). s({1, {2}}).\n",
		`str("hello \"world\"").`,
		"p(-5). zero :- not one.",
		"% comment only",
		"p(X) :- q(X), X != 3, not r(X, X).",
		"bad(((((",
		"p(X) :- .",
		"{}({})",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseProgram(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := p.String()
		p2, err := ParseProgram(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if p2.String() != printed {
			t.Fatalf("print not idempotent:\nfirst:  %q\nsecond: %q", printed, p2.String())
		}
	})
}
