package datalog

import (
	"testing"

	"algrec/internal/value"
)

// TestBooleanBuiltins covers the boolean-valued interpreted functions that
// the algebra-to-deduction translation compiles selection tests into.
func TestBooleanBuiltins(t *testing.T) {
	tr, fa := Const{V: value.True}, Const{V: value.False}
	one, two := CInt(1), CInt(2)
	set12 := Apply{Fn: "set", Args: []Term{one, two}}
	cases := []struct {
		t    Term
		want value.Value
	}{
		{Apply{Fn: "band", Args: []Term{tr, tr}}, value.True},
		{Apply{Fn: "band", Args: []Term{tr, fa}}, value.False},
		{Apply{Fn: "bor", Args: []Term{fa, tr}}, value.True},
		{Apply{Fn: "bor", Args: []Term{fa, fa}}, value.False},
		{Apply{Fn: "bnot", Args: []Term{fa}}, value.True},
		{Apply{Fn: "eq", Args: []Term{one, one}}, value.True},
		{Apply{Fn: "eq", Args: []Term{one, two}}, value.False},
		{Apply{Fn: "ne", Args: []Term{one, two}}, value.True},
		{Apply{Fn: "lt", Args: []Term{one, two}}, value.True},
		{Apply{Fn: "le", Args: []Term{two, two}}, value.True},
		{Apply{Fn: "gt", Args: []Term{one, two}}, value.False},
		{Apply{Fn: "ge", Args: []Term{two, one}}, value.True},
		{Apply{Fn: "ismem", Args: []Term{one, set12}}, value.True},
		{Apply{Fn: "ismem", Args: []Term{CInt(3), set12}}, value.False},
		// comparisons apply to any kinds via the total order
		{Apply{Fn: "eq", Args: []Term{CSym("a"), CSym("a")}}, value.True},
		{Apply{Fn: "lt", Args: []Term{tr, one}}, value.True}, // bool < int by kind
	}
	for _, c := range cases {
		got, err := EvalTerm(c.t, Binding{})
		if err != nil {
			t.Errorf("EvalTerm(%s): %v", c.t, err)
			continue
		}
		if !value.Equal(got, c.want) {
			t.Errorf("EvalTerm(%s) = %v, want %v", c.t, got, c.want)
		}
	}
	// kind errors
	bad := []Term{
		Apply{Fn: "band", Args: []Term{one, tr}},
		Apply{Fn: "band", Args: []Term{tr, one}},
		Apply{Fn: "band", Args: []Term{tr}},
		Apply{Fn: "bor", Args: []Term{one, one}},
		Apply{Fn: "bnot", Args: []Term{one}},
		Apply{Fn: "bnot", Args: []Term{}},
		Apply{Fn: "eq", Args: []Term{one}},
		Apply{Fn: "ismem", Args: []Term{one, two}},
		Apply{Fn: "ismem", Args: []Term{one}},
	}
	for _, b := range bad {
		if _, err := EvalTerm(b, Binding{}); err == nil {
			t.Errorf("EvalTerm(%s): expected error", b)
		}
	}
}

func TestIsBuiltin(t *testing.T) {
	for _, fn := range []string{"succ", "plus", "tup", "field", "band", "ismem", "set", "ins"} {
		if !IsBuiltin(fn) {
			t.Errorf("IsBuiltin(%s) = false", fn)
		}
	}
	if IsBuiltin("nosuch") || IsBuiltin("not") {
		t.Error("IsBuiltin accepted unknown name")
	}
}
