package datalog

import "fmt"

// PlanStepKind discriminates the steps of a BodyPlan.
type PlanStepKind uint8

// The plan step kinds.
const (
	// StepMatch matches a positive atom against known facts, binding its
	// bare-variable arguments.
	StepMatch PlanStepKind = iota
	// StepAssign evaluates a term and binds it to a fresh variable.
	StepAssign
	// StepTest evaluates a ground comparison.
	StepTest
)

// PlanStep is one element of a rule body's executable evaluation order.
type PlanStep struct {
	Kind PlanStepKind

	Atom   Atom // StepMatch: the atom to match
	PosIdx int  // StepMatch: index among the rule's positive atoms

	AssignVar Var  // StepAssign: the variable bound
	Term      Term // StepAssign: the term evaluated

	Cmp LitCmp // StepTest: the comparison evaluated
}

// BodyPlan is an executable evaluation order for a rule body: positive atoms
// and comparisons interleaved so every term is evaluable when reached, with
// negated atoms (whose variables are then all bound) collected at the end.
// Its existence is the operational counterpart of the rule being safe in the
// sense of Definition 4.1.
type BodyPlan struct {
	Steps  []PlanStep
	Negs   []Atom
	NumPos int
}

// PlanRule computes an executable order for the rule. It returns an error
// when no order exists: the rule is unsafe, or uses a comparison that no
// order can evaluate.
func PlanRule(r Rule) (BodyPlan, error) {
	bound := map[Var]bool{}
	allBound := func(t Term) bool {
		for v := range VarsOfTerm(t) {
			if !bound[v] {
				return false
			}
		}
		return true
	}
	var plan BodyPlan
	type pending struct {
		lit  Literal
		done bool
	}
	pend := make([]pending, len(r.Body))
	for i, l := range r.Body {
		pend[i] = pending{lit: l}
	}
	remaining := 0
	for _, p := range pend {
		if la, ok := p.lit.(LitAtom); !ok || !la.Neg {
			remaining++
		}
	}
	for remaining > 0 {
		progressed := false
		for i := range pend {
			if pend[i].done {
				continue
			}
			switch l := pend[i].lit.(type) {
			case LitAtom:
				if l.Neg {
					continue // collected after the loop
				}
				// A positive atom is ready when its non-variable argument
				// terms are evaluable; bare variable arguments are bound by
				// matching (interpreted functions cannot be inverted).
				ready := true
				for _, a := range l.Atom.Args {
					if _, isVar := a.(Var); isVar {
						continue
					}
					if !allBound(a) {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				plan.Steps = append(plan.Steps, PlanStep{Kind: StepMatch, Atom: l.Atom, PosIdx: plan.NumPos})
				plan.NumPos++
				for _, a := range l.Atom.Args {
					if v, isVar := a.(Var); isVar {
						bound[v] = true
					}
				}
				pend[i].done = true
				remaining--
				progressed = true
			case LitCmp:
				lv, lIsVar := l.L.(Var)
				rv, rIsVar := l.R.(Var)
				switch {
				case allBound(l.L) && allBound(l.R):
					plan.Steps = append(plan.Steps, PlanStep{Kind: StepTest, Cmp: l})
				case l.Op == OpEq && lIsVar && !bound[lv] && allBound(l.R):
					plan.Steps = append(plan.Steps, PlanStep{Kind: StepAssign, AssignVar: lv, Term: l.R})
					bound[lv] = true
				case l.Op == OpEq && rIsVar && !bound[rv] && allBound(l.L):
					plan.Steps = append(plan.Steps, PlanStep{Kind: StepAssign, AssignVar: rv, Term: l.L})
					bound[rv] = true
				default:
					continue
				}
				pend[i].done = true
				remaining--
				progressed = true
			default:
				panic(fmt.Sprintf("datalog: unknown literal %T", l))
			}
		}
		if !progressed {
			return BodyPlan{}, fmt.Errorf("datalog: rule %s has no executable literal order (unsafe rule)", r)
		}
	}
	for _, p := range pend {
		la, ok := p.lit.(LitAtom)
		if !ok || !la.Neg {
			continue
		}
		for v := range VarsOfAtom(la.Atom) {
			if !bound[v] {
				return BodyPlan{}, fmt.Errorf("datalog: rule %s: variable %s of negated atom is not restricted", r, v)
			}
		}
		plan.Negs = append(plan.Negs, la.Atom)
	}
	for v := range VarsOfAtom(r.Head) {
		if !bound[v] {
			return BodyPlan{}, fmt.Errorf("datalog: rule %s: head variable %s is not restricted", r, v)
		}
	}
	return plan, nil
}
