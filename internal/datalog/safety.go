package datalog

import (
	"fmt"
	"sort"

	"algrec/internal/value"
)

// This file implements Definition 4.1 of the paper: range formulas and safe
// rules. A rule body is a conjunction of literals; the body is a range
// formula restricting a set of variables, computed as the least fixpoint of
// the construction rules:
//
//	basis a:  a positive atom restricts each variable that occurs as one of
//	          its arguments (inside an argument term);
//	basis b / rule 4:  x = exp (or exp = x) restricts x once every variable
//	          of exp is already restricted;
//	rule 2:   a comparison exp1 op exp2 is admissible once all its variables
//	          are restricted (it restricts nothing new, except as above);
//	rule 3:   a negated atom is admissible once all its variables are
//	          restricted.
//
// A rule is safe when every variable occurring anywhere in it is restricted.
// Note one deliberate strengthening over the paper: the paper's basis (a) is
// R(x1) for a variable argument; we also let a positive atom restrict
// variables nested inside constructor-style argument terms only when the
// argument is a bare variable, because interpreted functions cannot be
// inverted during evaluation (matching f(X) against a value would require
// solving for X). Variables inside complex arguments of positive atoms must
// therefore be restricted elsewhere; this keeps safe rules executable.

// RestrictedVars returns the set of variables of the body restricted in the
// sense of Definition 4.1.
func RestrictedVars(body []Literal) map[Var]bool {
	restricted := map[Var]bool{}
	allBound := func(t Term) bool {
		for v := range VarsOfTerm(t) {
			if !restricted[v] {
				return false
			}
		}
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, l := range body {
			switch ll := l.(type) {
			case LitAtom:
				if ll.Neg {
					continue
				}
				for _, arg := range ll.Atom.Args {
					if v, ok := arg.(Var); ok && !restricted[v] {
						restricted[v] = true
						changed = true
					}
				}
			case LitCmp:
				if ll.Op != OpEq {
					continue
				}
				if v, ok := ll.L.(Var); ok && !restricted[v] && allBound(ll.R) {
					restricted[v] = true
					changed = true
				}
				if v, ok := ll.R.(Var); ok && !restricted[v] && allBound(ll.L) {
					restricted[v] = true
					changed = true
				}
			default:
				panic(fmt.Sprintf("datalog: unknown literal %T", l))
			}
		}
	}
	return restricted
}

// UnsafeVars returns the variables of the rule that are not restricted by its
// body, sorted; the rule is safe iff the result is empty.
func UnsafeVars(r Rule) []Var {
	restricted := RestrictedVars(r.Body)
	var out []Var
	for v := range VarsOfRule(r) {
		if !restricted[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CheckRuleSafe reports whether r is safe per Definition 4.1, returning a
// descriptive error naming the first unrestricted variable otherwise.
func CheckRuleSafe(r Rule) error {
	if vs := UnsafeVars(r); len(vs) > 0 {
		return fmt.Errorf("datalog: unsafe rule %s: variable %s is not restricted by a range formula", r, vs[0])
	}
	return nil
}

// CheckProgramSafe reports whether every rule of p is safe.
func CheckProgramSafe(p *Program) error {
	for _, r := range p.Rules {
		if err := CheckRuleSafe(r); err != nil {
			return err
		}
	}
	return nil
}

// MakeSafe implements the transformation of Proposition 4.2: every variable
// of a rule that is not restricted by the rule's own body is additionally
// restricted by the unary domain predicate domPred, which must enumerate (a
// sufficient finite part of) the initial model's domain. The result is a safe
// program that computes the same answers as p whenever p is domain
// independent and domPred covers the active domain.
func MakeSafe(p *Program, domPred string) *Program {
	out := &Program{}
	for _, r := range p.Rules {
		restricted := RestrictedVars(r.Body)
		var guards []Literal
		vars := make([]Var, 0, len(VarsOfRule(r)))
		for v := range VarsOfRule(r) {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
		for _, v := range vars {
			if !restricted[v] {
				guards = append(guards, Pos(domPred, v))
			}
		}
		nr := Rule{Head: r.Head, Body: append(guards, r.Body...)}
		out.Rules = append(out.Rules, nr)
	}
	return out
}

// DomainFacts returns dom facts for every constant value appearing in the
// program's facts and rules; together with MakeSafe this realizes the
// Proposition 4.2 construction for the finite, function-free case. (When the
// program uses interpreted functions the caller must extend the domain
// itself, since the paper's S_i predicates are then infinite.)
func DomainFacts(p *Program, domPred string) []Fact {
	seen := map[string]Fact{}
	var walk func(t Term)
	walk = func(t Term) {
		switch tt := t.(type) {
		case Const:
			key := tt.V.String()
			if _, ok := seen[key]; !ok {
				seen[key] = Fact{Pred: domPred, Args: []value.Value{tt.V}}
			}
		case Apply:
			for _, a := range tt.Args {
				walk(a)
			}
		case Var:
		default:
			panic(fmt.Sprintf("datalog: unknown term %T", t))
		}
	}
	for _, r := range p.Rules {
		for _, a := range r.Head.Args {
			walk(a)
		}
		for _, l := range r.Body {
			switch ll := l.(type) {
			case LitAtom:
				for _, a := range ll.Atom.Args {
					walk(a)
				}
			case LitCmp:
				walk(ll.L)
				walk(ll.R)
			}
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Fact, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}
