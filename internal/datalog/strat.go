package datalog

import (
	"fmt"
	"sort"
)

// DepEdge is one predicate-dependency edge: the head predicate depends on the
// body predicate, positively or through negation.
type DepEdge struct {
	From, To string // From's rules mention To in a body
	Negative bool
}

// DepGraph returns the predicate dependency graph of the program, with one
// edge per (from, to, sign) triple, sorted deterministically.
func DepGraph(p *Program) []DepEdge {
	type key struct {
		from, to string
		neg      bool
	}
	seen := map[key]bool{}
	for _, r := range p.Rules {
		for _, l := range r.Body {
			la, ok := l.(LitAtom)
			if !ok {
				continue
			}
			seen[key{r.Head.Pred, la.Atom.Pred, la.Neg}] = true
		}
	}
	out := make([]DepEdge, 0, len(seen))
	for k := range seen {
		out = append(out, DepEdge{From: k.from, To: k.to, Negative: k.neg})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return !a.Negative && b.Negative
	})
	return out
}

// ErrNotStratified is returned by Stratify for programs with recursion
// through negation.
type ErrNotStratified struct {
	// Pred is a predicate on a negative cycle witnessing non-stratifiability.
	Pred string
}

// Error implements error.
func (e ErrNotStratified) Error() string {
	return fmt.Sprintf("datalog: program is not stratified: predicate %s depends negatively on itself", e.Pred)
}

// Stratify computes a stratification of the program: a map from predicate
// name to stratum number (0-based) such that positive dependencies stay
// within or below a stratum and negative dependencies go strictly below. It
// returns ErrNotStratified if the program has recursion through negation
// (such as the cyclic WIN game of the paper's Example 3).
func Stratify(p *Program) (map[string]int, error) {
	preds := p.Preds()
	stratum := make(map[string]int, len(preds))
	for _, q := range preds {
		stratum[q] = 0
	}
	edges := DepGraph(p)
	// Bellman-Ford style relaxation: at most len(preds) rounds of changes are
	// possible in a stratifiable program, since strata are bounded by the
	// number of predicates.
	for round := 0; ; round++ {
		changed := false
		for _, e := range edges {
			min := stratum[e.To]
			if e.Negative {
				min++
			}
			if stratum[e.From] < min {
				stratum[e.From] = min
				changed = true
			}
		}
		if !changed {
			return stratum, nil
		}
		if round > len(preds) {
			// Some predicate's stratum exceeded the bound: find a witness.
			for _, q := range preds {
				if stratum[q] > len(preds) {
					return nil, ErrNotStratified{Pred: q}
				}
			}
			return nil, ErrNotStratified{Pred: edges[0].From}
		}
	}
}

// IsStratified reports whether the program admits a stratification.
func IsStratified(p *Program) bool {
	_, err := Stratify(p)
	return err == nil
}

// Strata groups the program's rules by the stratum of their head predicate,
// lowest first. Facts for EDB predicates land in stratum 0.
func Strata(p *Program) ([][]Rule, map[string]int, error) {
	stratum, err := Stratify(p)
	if err != nil {
		return nil, nil, err
	}
	max := 0
	for _, s := range stratum {
		if s > max {
			max = s
		}
	}
	out := make([][]Rule, max+1)
	for _, r := range p.Rules {
		s := stratum[r.Head.Pred]
		out[s] = append(out[s], r)
	}
	return out, stratum, nil
}
