// Package datalog implements the paper's deductive language (Section 4):
// Horn clauses with negated atoms, equality and comparison literals, and
// interpreted function symbols over the complex-object value universe.
//
// A program is a set of rules Q1, ..., Qn -> R(x̄), written in the concrete
// syntax R(x̄) :- Q1, ..., Qn. Facts are rules with an empty body and a ground
// head. Because domains carry functions (succ, plus, tup, ...), programs can
// define infinite relations; every evaluation path in this repository is
// therefore budgeted (see package ground).
//
// The package provides the AST, a parser for the concrete syntax, the safety
// checker of Definition 4.1 (range formulas), the Proposition 4.2 make-safe
// transformation, and predicate-level stratification analysis.
package datalog

import (
	"fmt"
	"sort"
	"strings"

	"algrec/internal/value"
)

// Term is a term of the deductive language: a variable, a constant value, or
// an application of an interpreted function symbol. It is a sealed interface.
type Term interface {
	// String returns the concrete syntax of the term.
	String() string
	isTerm()
}

// Var is a variable (uppercase identifier in the concrete syntax).
type Var string

// Const is a constant value.
type Const struct {
	V value.Value
}

// Apply is an application of an interpreted function symbol to argument
// terms, e.g. plus(X, 1) or tup(X, Y). The available functions are listed in
// funcs.go.
type Apply struct {
	Fn   string
	Args []Term
}

func (Var) isTerm()   {}
func (Const) isTerm() {}
func (Apply) isTerm() {}

// String implements Term.
func (v Var) String() string { return string(v) }

// String implements Term.
func (c Const) String() string { return c.V.String() }

// String implements Term.
func (a Apply) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Fn + "(" + strings.Join(parts, ", ") + ")"
}

// C wraps a value as a constant term.
func C(v value.Value) Const { return Const{V: v} }

// CInt is shorthand for an integer constant term.
func CInt(i int64) Const { return Const{V: value.Int(i)} }

// CSym is shorthand for a symbol (string) constant term.
func CSym(s string) Const { return Const{V: value.String(s)} }

// Atom is a predicate applied to argument terms.
type Atom struct {
	Pred string
	Args []Term
}

// String returns the concrete syntax of the atom.
func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// CmpOp is a comparison operator usable in rule bodies.
type CmpOp uint8

// The comparison operators. OpEq doubles as assignment when its left side is
// an unbound variable (the safety checker's rule 4 of Definition 4.1).
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the concrete syntax of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Literal is a body literal: a possibly negated atom, or a comparison between
// terms. It is a sealed interface.
type Literal interface {
	String() string
	isLiteral()
}

// LitAtom is a possibly negated predicate atom in a rule body.
type LitAtom struct {
	Neg  bool
	Atom Atom
}

// LitCmp is a comparison literal between two terms.
type LitCmp struct {
	Op   CmpOp
	L, R Term
}

func (LitAtom) isLiteral() {}
func (LitCmp) isLiteral()  {}

// String implements Literal.
func (l LitAtom) String() string {
	if l.Neg {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// String implements Literal.
func (l LitCmp) String() string {
	return l.L.String() + " " + l.Op.String() + " " + l.R.String()
}

// Pos returns a positive atom literal.
func Pos(pred string, args ...Term) LitAtom {
	return LitAtom{Atom: Atom{Pred: pred, Args: args}}
}

// Neg returns a negated atom literal.
func Neg(pred string, args ...Term) LitAtom {
	return LitAtom{Neg: true, Atom: Atom{Pred: pred, Args: args}}
}

// Cmp returns a comparison literal.
func Cmp(op CmpOp, l, r Term) LitCmp { return LitCmp{Op: op, L: l, R: r} }

// Rule is a Horn clause with (possibly negated) body literals.
type Rule struct {
	Head Atom
	Body []Literal
}

// IsFact reports whether the rule has an empty body.
func (r Rule) IsFact() bool { return len(r.Body) == 0 }

// String returns the concrete syntax of the rule, terminated by a period.
func (r Rule) String() string {
	if r.IsFact() {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Program is a deductive program: an ordered list of rules (order is
// irrelevant to every semantics; it is kept for faithful printing).
type Program struct {
	Rules []Rule
}

// String returns the concrete syntax of the program, one rule per line.
func (p *Program) String() string {
	var sb strings.Builder
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Clone returns a deep-enough copy of the program: the rule slice and each
// rule's body slice are fresh; terms are immutable and shared.
func (p *Program) Clone() *Program {
	out := &Program{Rules: make([]Rule, len(p.Rules))}
	for i, r := range p.Rules {
		body := make([]Literal, len(r.Body))
		copy(body, r.Body)
		args := make([]Term, len(r.Head.Args))
		copy(args, r.Head.Args)
		out.Rules[i] = Rule{Head: Atom{Pred: r.Head.Pred, Args: args}, Body: body}
	}
	return out
}

// Preds returns the names of all predicates appearing in the program, sorted.
func (p *Program) Preds() []string {
	seen := map[string]bool{}
	for _, r := range p.Rules {
		seen[r.Head.Pred] = true
		for _, l := range r.Body {
			if la, ok := l.(LitAtom); ok {
				seen[la.Atom.Pred] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// IDB returns the names of predicates defined by at least one rule with a
// non-empty body (the derived predicates), sorted.
func (p *Program) IDB() []string {
	seen := map[string]bool{}
	for _, r := range p.Rules {
		if !r.IsFact() {
			seen[r.Head.Pred] = true
		}
	}
	out := make([]string, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// EDB returns the names of predicates that appear only in facts or only in
// rule bodies (the database relations), sorted.
func (p *Program) EDB() []string {
	idb := map[string]bool{}
	for _, q := range p.IDB() {
		idb[q] = true
	}
	out := []string{}
	for _, q := range p.Preds() {
		if !idb[q] {
			out = append(out, q)
		}
	}
	return out
}

// termVars appends the variables of t to vs.
func termVars(t Term, vs map[Var]bool) {
	switch tt := t.(type) {
	case Var:
		vs[tt] = true
	case Const:
	case Apply:
		for _, a := range tt.Args {
			termVars(a, vs)
		}
	default:
		panic(fmt.Sprintf("datalog: unknown term %T", t))
	}
}

// VarsOfTerm returns the set of variables occurring in t.
func VarsOfTerm(t Term) map[Var]bool {
	vs := map[Var]bool{}
	termVars(t, vs)
	return vs
}

// VarsOfAtom returns the set of variables occurring in a.
func VarsOfAtom(a Atom) map[Var]bool {
	vs := map[Var]bool{}
	for _, t := range a.Args {
		termVars(t, vs)
	}
	return vs
}

// VarsOfLiteral returns the set of variables occurring in l.
func VarsOfLiteral(l Literal) map[Var]bool {
	vs := map[Var]bool{}
	switch ll := l.(type) {
	case LitAtom:
		for _, t := range ll.Atom.Args {
			termVars(t, vs)
		}
	case LitCmp:
		termVars(ll.L, vs)
		termVars(ll.R, vs)
	default:
		panic(fmt.Sprintf("datalog: unknown literal %T", l))
	}
	return vs
}

// VarsOfRule returns the set of variables occurring anywhere in r.
func VarsOfRule(r Rule) map[Var]bool {
	vs := VarsOfAtom(r.Head)
	for _, l := range r.Body {
		for v := range VarsOfLiteral(l) {
			vs[v] = true
		}
	}
	return vs
}

// IsGroundTerm reports whether t contains no variables.
func IsGroundTerm(t Term) bool {
	switch tt := t.(type) {
	case Var:
		return false
	case Const:
		return true
	case Apply:
		for _, a := range tt.Args {
			if !IsGroundTerm(a) {
				return false
			}
		}
		return true
	default:
		panic(fmt.Sprintf("datalog: unknown term %T", t))
	}
}

// SubstTerm replaces variables in t by their bindings in b; unbound variables
// are left in place.
func SubstTerm(t Term, b map[Var]Term) Term {
	switch tt := t.(type) {
	case Var:
		if r, ok := b[tt]; ok {
			return r
		}
		return tt
	case Const:
		return tt
	case Apply:
		args := make([]Term, len(tt.Args))
		for i, a := range tt.Args {
			args[i] = SubstTerm(a, b)
		}
		return Apply{Fn: tt.Fn, Args: args}
	default:
		panic(fmt.Sprintf("datalog: unknown term %T", t))
	}
}

// SubstAtom applies SubstTerm to every argument of a.
func SubstAtom(a Atom, b map[Var]Term) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = SubstTerm(t, b)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// SubstLiteral applies SubstTerm throughout l.
func SubstLiteral(l Literal, b map[Var]Term) Literal {
	switch ll := l.(type) {
	case LitAtom:
		return LitAtom{Neg: ll.Neg, Atom: SubstAtom(ll.Atom, b)}
	case LitCmp:
		return LitCmp{Op: ll.Op, L: SubstTerm(ll.L, b), R: SubstTerm(ll.R, b)}
	default:
		panic(fmt.Sprintf("datalog: unknown literal %T", l))
	}
}

// Fact is a ground atom: a predicate name applied to ground values.
type Fact struct {
	Pred string
	Args []value.Value
}

// Key returns the canonical string encoding of the fact, usable as a map key.
func (f Fact) Key() string {
	var sb strings.Builder
	sb.WriteString(f.Pred)
	sb.WriteByte('(')
	for i, v := range f.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// String returns the concrete syntax of the fact.
func (f Fact) String() string { return f.Key() }

// CompareFacts orders facts by predicate name, then argument-wise.
func CompareFacts(a, b Fact) int {
	if c := strings.Compare(a.Pred, b.Pred); c != 0 {
		return c
	}
	n := len(a.Args)
	if len(b.Args) < n {
		n = len(b.Args)
	}
	for i := 0; i < n; i++ {
		if c := a.Args[i].Compare(b.Args[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a.Args) < len(b.Args):
		return -1
	case len(a.Args) > len(b.Args):
		return 1
	default:
		return 0
	}
}

// SortFacts sorts fs in place by CompareFacts.
func SortFacts(fs []Fact) {
	sort.Slice(fs, func(i, j int) bool { return CompareFacts(fs[i], fs[j]) < 0 })
}

// FactRule returns the fact f as a bodyless rule.
func FactRule(f Fact) Rule {
	args := make([]Term, len(f.Args))
	for i, v := range f.Args {
		args[i] = Const{V: v}
	}
	return Rule{Head: Atom{Pred: f.Pred, Args: args}}
}

// AddFacts appends the given facts to the program as bodyless rules.
func (p *Program) AddFacts(fs ...Fact) {
	for _, f := range fs {
		p.Rules = append(p.Rules, FactRule(f))
	}
}
