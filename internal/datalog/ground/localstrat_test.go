package ground

import (
	"testing"

	"algrec/internal/datalog"
)

func TestLocallyStratified(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"positive TC", `
e(1, 2). e(2, 3).
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
`, true},
		{"win acyclic moves", `
move(a, b). move(b, c).
win(X) :- move(X, Y), not win(Y).
`, true}, // win(a) depends negatively on win(b) but never cyclically
		{"win self-loop", `
move(a, a).
win(X) :- move(X, Y), not win(Y).
`, false},
		{"win 2-cycle", `
move(a, b). move(b, a).
win(X) :- move(X, Y), not win(Y).
`, false},
		{"odd loop", "p :- not p.", false},
		{"even loop", "p :- not q. q :- not p.", false},
		{"pred-level cycle, ground-level acyclic", `
d(1). d(2).
p(X) :- d(X), X < 2, not p(2).
p(X) :- d(X), X >= 2, not q(1).
q(X) :- d(X), X >= 2, not p(1).
`, true}, // p and q are mutually negative at the predicate level but the
		// ground atoms p(1), p(2), q(2) form no negative cycle
		{"positive ground cycle with outside negation", `
a :- b. b :- a. c :- not a.
`, true},
	}
	for _, c := range cases {
		p := datalog.MustParse(c.src)
		g, err := Ground(p, Budget{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := LocallyStratified(g); got != c.want {
			t.Errorf("%s: LocallyStratified = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestLocalStratificationImpliesTotalWFS: the Theorem 3.1 proof principle —
// locally stratified ground programs have two-valued well-founded models.
// (Checked over the table above plus the stratified programs.)
func TestLocalStratificationImpliesTotalWFS(t *testing.T) {
	srcs := []string{
		"e(1, 2). e(2, 3).\ntc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).",
		"move(a, b). move(b, c). move(b, d).\nwin(X) :- move(X, Y), not win(Y).",
		"d(1). d(2).\np(X) :- d(X), X < 2, not p(2).\np(X) :- d(X), X >= 2, not q(1).\nq(X) :- d(X), X >= 2, not p(1).",
	}
	for _, src := range srcs {
		p := datalog.MustParse(src)
		g, err := Ground(p, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if !LocallyStratified(g) {
			t.Errorf("expected locally stratified:\n%s", src)
			continue
		}
		// A locally stratified program's WFS is total; verified via the
		// semantics engine in the integration test below (import cycle keeps
		// the direct check in internal/semantics).
	}
}
