// Package ground instantiates a deductive program into a ground program: a
// finite set of propositional rules over interned ground atoms. Every
// semantics engine in internal/semantics operates on this representation.
//
// The instantiation is the standard over-approximation: an atom is considered
// *possible* if it is derivable when every negative literal is assumed to
// hold. The ground program contains one propositional rule per rule instance
// whose positive body consists of possible atoms; negative body atoms are
// interned whether or not they are possible (atoms with no deriving rules are
// simply never derived by any semantics, which is the correct behaviour).
//
// Because the paper's framework permits interpreted functions on domains
// (SUCC, +, tup, ...), instantiation may diverge; Budget caps the number of
// atoms, ground rules, and passes, and Ground returns a *BudgetError when a
// cap is hit, which callers surface as "unknown within budget" — the
// executable face of the paper's undecidability results (Propositions 2.3,
// 3.2 and 6.3).
package ground

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"algrec/internal/datalog"
	"algrec/internal/obsv"
	"algrec/internal/value"
)

// Budget caps the resources instantiation may consume.
type Budget struct {
	MaxAtoms int // maximum number of distinct ground atoms (0 = default)
	MaxRules int // maximum number of distinct ground rules (0 = default)
	// Interrupt, when non-nil, is polled between (rule, pass) enumerations:
	// once the channel is closed, grounding stops with an error wrapping
	// ErrCanceled. Callers with a context map ctx.Done() here.
	Interrupt <-chan struct{}
}

// DefaultBudget is used for zero-valued Budget fields.
var DefaultBudget = Budget{MaxAtoms: 2_000_000, MaxRules: 8_000_000}

func (b Budget) withDefaults() Budget {
	if b.MaxAtoms <= 0 {
		b.MaxAtoms = DefaultBudget.MaxAtoms
	}
	if b.MaxRules <= 0 {
		b.MaxRules = DefaultBudget.MaxRules
	}
	return b
}

// BudgetError reports that instantiation exceeded its budget.
type BudgetError struct {
	What  string // "atoms" or "rules"
	Limit int
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("ground: budget exceeded: more than %d %s; the program may define an infinite relation", e.Limit, e.What)
}

// ErrCanceled is wrapped by errors reporting that grounding stopped because
// Budget.Interrupt fired (a timeout or an explicit cancellation).
var ErrCanceled = errors.New("ground: grounding canceled")

// stop returns a non-nil error wrapping ErrCanceled once Interrupt has
// fired, and nil otherwise (including when no Interrupt is set).
func (b Budget) stop() error {
	if b.Interrupt == nil {
		return nil
	}
	select {
	case <-b.Interrupt:
		return fmt.Errorf("%w (interrupt fired between rule enumerations)", ErrCanceled)
	default:
		return nil
	}
}

// Rule is a propositional ground rule over atom ids.
type Rule struct {
	Head int
	Pos  []int
	Neg  []int
}

// Program is a ground program: interned atoms plus propositional rules.
type Program struct {
	atoms  []datalog.Fact
	keys   []string // canonical key per atom id, computed once at interning
	index  map[string]int
	byPred map[string][]int // atom ids per predicate, in interning order
	Rules  []Rule
}

// NumAtoms returns the number of interned ground atoms.
func (g *Program) NumAtoms() int { return len(g.atoms) }

// Words64 returns the atom count rounded up to 64-bit words: the number of
// uint64 words a dense truth vector over the atom ids needs. The semantics
// engines size their bitsets with it.
func (g *Program) Words64() int { return (len(g.atoms) + 63) / 64 }

// Atom returns the interned atom with the given id.
func (g *Program) Atom(id int) datalog.Fact { return g.atoms[id] }

// AtomKey returns the canonical key of the interned atom with the given id.
// The key is computed once during interning; callers that previously rebuilt
// it via Atom(id).Key() should use this instead.
func (g *Program) AtomKey(id int) string { return g.keys[id] }

// Lookup returns the id of the given fact and whether it is interned.
func (g *Program) Lookup(f datalog.Fact) (int, bool) {
	id, ok := g.index[f.Key()]
	return id, ok
}

// AtomsOf returns the ids of all interned atoms of the given predicate.
func (g *Program) AtomsOf(pred string) []int { return g.byPred[pred] }

// Preds returns all predicate names with interned atoms, sorted.
func (g *Program) Preds() []string {
	out := make([]string, 0, len(g.byPred))
	for p := range g.byPred {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

type grounder struct {
	prog   *Program
	budget Budget
	// byPredDerived holds, per predicate, the atoms that have appeared as a
	// rule head or fact ("possible" atoms) in derivation order;
	// negative-only atoms live in the table but never in byPredDerived.
	byPredDerived map[string][]int
	derived       map[int]bool
	ruleKeys      map[string]bool
	// seqOf gives each atom id its position within byPredDerived of its
	// predicate (-1 before derivation); the delta-driven passes use it to
	// range-restrict index probe results.
	seqOf []int
	// indexes maps a matchMask signature to (projection key -> atom ids in
	// derivation order); masksByPred lists the masks registered per
	// predicate so markDerived can maintain the indexes incrementally.
	indexes     map[string]map[string][]int
	masksByPred map[string][]matchMask
}

func (g *grounder) intern(f datalog.Fact) (int, error) {
	key := f.Key()
	if id, ok := g.prog.index[key]; ok {
		return id, nil
	}
	if len(g.prog.atoms) >= g.budget.MaxAtoms {
		return 0, &BudgetError{What: "atoms", Limit: g.budget.MaxAtoms}
	}
	id := len(g.prog.atoms)
	g.prog.atoms = append(g.prog.atoms, f)
	g.prog.keys = append(g.prog.keys, key)
	g.prog.index[key] = id
	g.prog.byPred[f.Pred] = append(g.prog.byPred[f.Pred], id)
	g.seqOf = append(g.seqOf, -1)
	return id, nil
}

func (g *grounder) markDerived(id int) {
	if g.derived[id] {
		return
	}
	g.derived[id] = true
	f := g.prog.atoms[id]
	g.seqOf[id] = len(g.byPredDerived[f.Pred])
	g.byPredDerived[f.Pred] = append(g.byPredDerived[f.Pred], id)
	for _, m := range g.masksByPred[f.Pred] {
		key, ok := projectKey(f.Args, m.positions)
		if !ok {
			continue
		}
		g.indexes[m.sig][key] = append(g.indexes[m.sig][key], id)
	}
}

func (g *grounder) addRule(head int, pos, neg []int) (bool, error) {
	sort.Ints(pos)
	sort.Ints(neg)
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(head))
	sb.WriteByte('|')
	for _, p := range pos {
		sb.WriteString(strconv.Itoa(p))
		sb.WriteByte(',')
	}
	sb.WriteByte('|')
	for _, n := range neg {
		sb.WriteString(strconv.Itoa(n))
		sb.WriteByte(',')
	}
	key := sb.String()
	if g.ruleKeys[key] {
		return false, nil
	}
	if len(g.prog.Rules) >= g.budget.MaxRules {
		return false, &BudgetError{What: "rules", Limit: g.budget.MaxRules}
	}
	g.ruleKeys[key] = true
	g.prog.Rules = append(g.prog.Rules, Rule{Head: head, Pos: pos, Neg: neg})
	return true, nil
}

// matchMask describes, for one match step, the argument positions whose
// values are computable before matching (constants, evaluable function
// terms, and variables bound by earlier steps). Atoms are indexed by the
// projection on those positions, turning the scan-and-filter join into an
// index probe.
type matchMask struct {
	positions []int
	sig       string // index signature: pred|arity|positions
	// index is the resolved bucket map for sig, filled by registerMasks so
	// probes need a single map lookup.
	index map[string][]int
}

// orderedRule pairs a rule's execution plan with per-match-step index masks.
type orderedRule struct {
	plan     datalog.BodyPlan
	head     datalog.Atom
	masks    []matchMask // indexed like plan.Steps; meaningful for match steps
	posPreds []string    // predicate of each positive literal, indexed by PosIdx
}

func maskSig(pred string, arity int, positions []int) string {
	var sb strings.Builder
	sb.WriteString(pred)
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(arity))
	sb.WriteByte('|')
	for _, p := range positions {
		sb.WriteString(strconv.Itoa(p))
		sb.WriteByte(',')
	}
	return sb.String()
}

// computeMasks derives the match masks for a planned rule by replaying the
// plan's variable-binding discipline.
func computeMasks(plan datalog.BodyPlan) []matchMask {
	bound := map[datalog.Var]bool{}
	allBound := func(t datalog.Term) bool {
		for v := range datalog.VarsOfTerm(t) {
			if !bound[v] {
				return false
			}
		}
		return true
	}
	masks := make([]matchMask, len(plan.Steps))
	for i, st := range plan.Steps {
		switch st.Kind {
		case datalog.StepMatch:
			var positions []int
			for j, a := range st.Atom.Args {
				if v, isVar := a.(datalog.Var); isVar {
					if bound[v] {
						positions = append(positions, j)
					}
					continue
				}
				// non-variable argument: the planner guarantees evaluability
				positions = append(positions, j)
			}
			if len(positions) > 0 {
				masks[i] = matchMask{
					positions: positions,
					sig:       maskSig(st.Atom.Pred, len(st.Atom.Args), positions),
				}
			}
			for _, a := range st.Atom.Args {
				if v, isVar := a.(datalog.Var); isVar {
					bound[v] = true
				}
			}
		case datalog.StepAssign:
			bound[st.AssignVar] = true
		case datalog.StepTest:
			_ = allBound // tests bind nothing
		}
	}
	return masks
}

// bindFrame is a slice-backed variable binding with O(1) undo; rules have
// few variables, so linear lookup beats a map by a wide margin in the
// instantiation hot path.
type bindFrame struct {
	vars []datalog.Var
	vals []value.Value
}

func (b *bindFrame) lookup(v datalog.Var) (value.Value, bool) {
	for i := len(b.vars) - 1; i >= 0; i-- {
		if b.vars[i] == v {
			return b.vals[i], true
		}
	}
	return nil, false
}

func (b *bindFrame) push(v datalog.Var, val value.Value) {
	b.vars = append(b.vars, v)
	b.vals = append(b.vals, val)
}

func (b *bindFrame) mark() int { return len(b.vars) }

func (b *bindFrame) reset(n int) {
	b.vars = b.vars[:n]
	b.vals = b.vals[:n]
}

// registerMasks records every distinct index an ordered rule will probe, so
// markDerived can maintain them incrementally.
func (g *grounder) registerMasks(or *orderedRule) {
	for i, st := range or.plan.Steps {
		if st.Kind != datalog.StepMatch || len(or.masks[i].positions) == 0 {
			continue
		}
		m := or.masks[i]
		idx, ok := g.indexes[m.sig]
		if !ok {
			idx = map[string][]int{}
			g.indexes[m.sig] = idx
			m.index = idx
			g.masksByPred[st.Atom.Pred] = append(g.masksByPred[st.Atom.Pred], m)
		}
		or.masks[i].index = idx
	}
}

// projectKey builds the index key for a fact's arguments at the mask
// positions; ok=false when the arity does not cover the mask.
func projectKey(args []value.Value, positions []int) (string, bool) {
	var sb strings.Builder
	for _, p := range positions {
		if p >= len(args) {
			return "", false
		}
		sb.WriteString(args[p].String())
		sb.WriteByte('\x00')
	}
	return sb.String(), true
}

// probeKey evaluates the mask positions of a match step's pattern under the
// current binding.
func probeKey(atom datalog.Atom, positions []int, b *bindFrame) (string, error) {
	var sb strings.Builder
	for _, p := range positions {
		v, err := datalog.EvalTermFn(atom.Args[p], b.lookup)
		if err != nil {
			return "", err
		}
		sb.WriteString(v.String())
		sb.WriteByte('\x00')
	}
	return sb.String(), nil
}

// enumerate walks the plan steps recursively, backtracking through bind.
// rng is nil during pass 0. posIDs accumulates the interned ids of matched
// positive atoms for fire.
func (g *grounder) enumerate(or orderedRule, si int, bind *bindFrame, posIDs *[]int, rng *ranges, deltaIdx int) error {
	if si == len(or.plan.Steps) {
		return g.fire(or, bind, *posIDs)
	}
	st := or.plan.Steps[si]
	switch st.Kind {
	case datalog.StepMatch:
		var cands []int
		mask := or.masks[si]
		if len(mask.positions) > 0 {
			key, err := probeKey(st.Atom, mask.positions, bind)
			if err != nil {
				return err
			}
			cands = mask.index[key]
		} else {
			cands = g.byPredDerived[st.Atom.Pred]
		}
		lo, hi := 0, len(g.byPredDerived[st.Atom.Pred])
		if rng != nil {
			lo, hi = rng.bounds(st.PosIdx, deltaIdx, st.Atom.Pred)
		}
		if lo > 0 {
			// Candidate lists are in derivation order, so the window start can
			// be found by binary search. Skipping the prefix linearly instead
			// makes the delta passes quadratic in the candidate list length —
			// cubic overall on transitive-closure-style workloads.
			cands = cands[sort.Search(len(cands), func(i int) bool { return g.seqOf[cands[i]] >= lo }):]
		}
		for _, id := range cands {
			if g.seqOf[id] >= hi {
				break // candidate lists are in derivation order
			}
			f := g.prog.atoms[id]
			if len(f.Args) != len(st.Atom.Args) {
				continue
			}
			mk := bind.mark()
			ok, err := matchAtom(st.Atom.Args, f.Args, bind)
			if err != nil {
				return err
			}
			if ok {
				*posIDs = append(*posIDs, id)
				if err := g.enumerate(or, si+1, bind, posIDs, rng, deltaIdx); err != nil {
					return err
				}
				*posIDs = (*posIDs)[:len(*posIDs)-1]
			}
			bind.reset(mk)
		}
		return nil
	case datalog.StepAssign:
		v, err := datalog.EvalTermFn(st.Term, bind.lookup)
		if err != nil {
			return err
		}
		mk := bind.mark()
		bind.push(st.AssignVar, v)
		err = g.enumerate(or, si+1, bind, posIDs, rng, deltaIdx)
		bind.reset(mk)
		return err
	case datalog.StepTest:
		lv, err := datalog.EvalTermFn(st.Cmp.L, bind.lookup)
		if err != nil {
			return err
		}
		rv, err := datalog.EvalTermFn(st.Cmp.R, bind.lookup)
		if err != nil {
			return err
		}
		ok, err := datalog.EvalCmp(st.Cmp.Op, lv, rv)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return g.enumerate(or, si+1, bind, posIDs, rng, deltaIdx)
	default:
		panic("ground: unknown step kind")
	}
}

// matchAtom matches pattern terms against ground values, extending bind;
// the caller restores the binding mark on failure or after recursion.
func matchAtom(pats []datalog.Term, vals []value.Value, bind *bindFrame) (bool, error) {
	for i, pat := range pats {
		if v, isVar := pat.(datalog.Var); isVar {
			if bound, ok := bind.lookup(v); ok {
				if !value.Equal(bound, vals[i]) {
					return false, nil
				}
				continue
			}
			bind.push(v, vals[i])
			continue
		}
		got, err := datalog.EvalTermFn(pat, bind.lookup)
		if err != nil {
			return false, err
		}
		if !value.Equal(got, vals[i]) {
			return false, nil
		}
	}
	return true, nil
}

// evalAtom instantiates an atom's arguments under the binding.
func evalAtom(a datalog.Atom, bind *bindFrame) (datalog.Fact, error) {
	args := make([]value.Value, len(a.Args))
	for i, t := range a.Args {
		v, err := datalog.EvalTermFn(t, bind.lookup)
		if err != nil {
			return datalog.Fact{}, err
		}
		args[i] = v
	}
	return datalog.Fact{Pred: a.Pred, Args: args}, nil
}

// fire records the ground rule for a complete binding.
func (g *grounder) fire(or orderedRule, bind *bindFrame, posIDs []int) error {
	head, err := evalAtom(or.head, bind)
	if err != nil {
		return err
	}
	hid, err := g.intern(head)
	if err != nil {
		return err
	}
	pos := append([]int(nil), posIDs...)
	neg := make([]int, 0, len(or.plan.Negs))
	for _, na := range or.plan.Negs {
		f, err := evalAtom(na, bind)
		if err != nil {
			return err
		}
		id, err := g.intern(f)
		if err != nil {
			return err
		}
		neg = append(neg, id)
	}
	if _, err := g.addRule(hid, pos, neg); err != nil {
		return err
	}
	g.markDerived(hid)
	return nil
}

// Ground instantiates the program under the given budget.
func Ground(p *datalog.Program, budget Budget) (*Program, error) {
	g := &grounder{
		prog: &Program{
			index:  map[string]int{},
			byPred: map[string][]int{},
		},
		budget:        budget.withDefaults(),
		byPredDerived: map[string][]int{},
		derived:       map[int]bool{},
		ruleKeys:      map[string]bool{},
		indexes:       map[string]map[string][]int{},
		masksByPred:   map[string][]matchMask{},
	}

	var ordered []orderedRule
	for _, r := range p.Rules {
		plan, err := datalog.PlanRule(r)
		if err != nil {
			return nil, fmt.Errorf("ground: %w", err)
		}
		or := orderedRule{plan: plan, head: r.Head, masks: computeMasks(plan), posPreds: make([]string, plan.NumPos)}
		for _, st := range plan.Steps {
			if st.Kind == datalog.StepMatch {
				or.posPreds[st.PosIdx] = st.Atom.Pred
			}
		}
		g.registerMasks(&or)
		ordered = append(ordered, or)
	}

	bind := &bindFrame{}
	var posIDs []int

	// Pass 0: rules with no positive atoms (facts included) fire once.
	for _, or := range ordered {
		if or.plan.NumPos > 0 {
			continue
		}
		if err := g.budget.stop(); err != nil {
			return nil, err
		}
		if err := g.enumerate(or, 0, bind, &posIDs, nil, -1); err != nil {
			return nil, err
		}
	}

	// Delta-driven passes: a rule instance is enumerated when at least one of
	// its positive atoms matches an atom derived in the previous pass.
	var passes, deltaHits, deltaSkips int
	prevLen := map[string]int{}
	for {
		curLen := map[string]int{}
		for pred, ids := range g.byPredDerived {
			curLen[pred] = len(ids)
		}
		anyDelta := false
		for pred, cur := range curLen {
			if cur > prevLen[pred] {
				anyDelta = true
				break
			}
		}
		if !anyDelta {
			break
		}
		passes++
		for _, or := range ordered {
			if or.plan.NumPos == 0 {
				continue
			}
			if err := g.budget.stop(); err != nil {
				return nil, err
			}
			for d := 0; d < or.plan.NumPos; d++ {
				// Every complete match must use a last-pass atom at the delta
				// literal; an empty delta window cannot produce one, and
				// enumerating the other literals anyway is what turned the
				// linear-rule passes quadratic.
				if pred := or.posPreds[d]; curLen[pred] == prevLen[pred] {
					deltaSkips++
					continue
				}
				deltaHits++
				if err := g.enumerate(or, 0, bind, &posIDs, &ranges{prev: prevLen, cur: curLen}, d); err != nil {
					return nil, err
				}
			}
		}
		prevLen = curLen
	}
	if c := obsv.Default(); c != nil {
		c.Ground(obsv.GroundStats{
			Atoms:      g.prog.NumAtoms(),
			Rules:      len(g.prog.Rules),
			Passes:     passes,
			DeltaHits:  deltaHits,
			DeltaSkips: deltaSkips,
		})
	}
	return g.prog, nil
}

// ranges restricts, per predicate, which derivation-sequence window each
// positive literal may match during a delta-driven pass: the literal at
// deltaIdx matches only last-pass discoveries, earlier literals only older
// atoms, later literals anything seen so far (the standard semi-naive
// decomposition avoiding duplicate enumeration).
type ranges struct {
	prev, cur map[string]int
}

func (r *ranges) bounds(posIdx, deltaIdx int, pred string) (lo, hi int) {
	switch {
	case posIdx < deltaIdx:
		return 0, r.prev[pred]
	case posIdx == deltaIdx:
		return r.prev[pred], r.cur[pred]
	default:
		return 0, r.cur[pred]
	}
}
