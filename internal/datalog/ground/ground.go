// Package ground instantiates a deductive program into a ground program: a
// finite set of propositional rules over interned ground atoms. Every
// semantics engine in internal/semantics operates on this representation.
//
// The instantiation is the standard over-approximation: an atom is considered
// *possible* if it is derivable when every negative literal is assumed to
// hold. The ground program contains one propositional rule per rule instance
// whose positive body consists of possible atoms; negative body atoms are
// interned whether or not they are possible (atoms with no deriving rules are
// simply never derived by any semantics, which is the correct behaviour).
//
// Because the paper's framework permits interpreted functions on domains
// (SUCC, +, tup, ...), instantiation may diverge; Budget caps the number of
// atoms, ground rules, and passes, and Ground returns a *BudgetError when a
// cap is hit, which callers surface as "unknown within budget" — the
// executable face of the paper's undecidability results (Propositions 2.3,
// 3.2 and 6.3).
package ground

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"algrec/internal/datalog"
	"algrec/internal/obsv"
	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// Budget caps the resources instantiation may consume.
type Budget struct {
	MaxAtoms int // maximum number of distinct ground atoms (0 = default)
	MaxRules int // maximum number of distinct ground rules (0 = default)
	// Interrupt, when non-nil, is polled between (rule, pass) enumerations:
	// once the channel is closed, grounding stops with an error wrapping
	// ErrCanceled. Callers with a context map ctx.Done() here.
	Interrupt <-chan struct{}
}

// DefaultBudget is used for zero-valued Budget fields.
var DefaultBudget = Budget{MaxAtoms: 2_000_000, MaxRules: 8_000_000}

func (b Budget) withDefaults() Budget {
	if b.MaxAtoms <= 0 {
		b.MaxAtoms = DefaultBudget.MaxAtoms
	}
	if b.MaxRules <= 0 {
		b.MaxRules = DefaultBudget.MaxRules
	}
	return b
}

// BudgetError reports that instantiation exceeded its budget.
type BudgetError struct {
	What  string // "atoms" or "rules"
	Limit int
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("ground: budget exceeded: more than %d %s; the program may define an infinite relation", e.Limit, e.What)
}

// ErrCanceled is wrapped by errors reporting that grounding stopped because
// Budget.Interrupt fired (a timeout or an explicit cancellation).
var ErrCanceled = errors.New("ground: grounding canceled")

// stop returns a non-nil error wrapping ErrCanceled once Interrupt has
// fired, and nil otherwise (including when no Interrupt is set).
func (b Budget) stop() error {
	if b.Interrupt == nil {
		return nil
	}
	select {
	case <-b.Interrupt:
		return fmt.Errorf("%w (interrupt fired between rule enumerations)", ErrCanceled)
	default:
		return nil
	}
}

// Rule is a propositional ground rule over atom ids.
type Rule struct {
	Head int
	Pos  []int
	Neg  []int
}

// Program is a ground program: interned atoms plus propositional rules.
//
// Atoms are deduplicated in one of two equivalent ways, fixed at Ground time
// by the process-wide interning switch (value.InterningEnabled): the ID mode
// keys each fact by its hash-consed argument-ID row in a compact
// intern.Relation per (predicate, arity); the string mode keys it by the
// canonical Fact.Key. Both assign atom ids in first-sight order, so the two
// modes produce bit-for-bit identical programs.
type Program struct {
	numAtoms int
	atoms    []datalog.Fact           // string mode: filled at interning; ID mode: lazily materialized
	keys     []string                 // canonical key per atom id; lazy in ID mode like atoms
	interned bool                     // which dedup representation Lookup must use
	index    map[string]int           // string mode: Fact.Key -> atom id
	tables   map[predArity]*predTable // ID mode: argument-ID rows per predicate
	byPred   map[string][]int         // atom ids per predicate, in interning order
	Rules    []Rule
	// atomsOnce/keysOnce guard the ID mode's lazy materialization of atoms
	// and keys from the relation rows: grounding itself never builds a
	// datalog.Fact or formats a key string for an already-seen atom, and
	// programs that are only ever run through a truth-vector engine never
	// build them at all.
	atomsOnce sync.Once
	keysOnce  sync.Once
}

// predArity keys the per-predicate fact tables; facts of the same predicate
// name but different arity are distinct atoms, so each arity gets its own
// fixed-width relation.
type predArity struct {
	pred  string
	arity int
}

// predTable is one predicate's compact fact store: the argument-ID rows in a
// flat relation, plus the global atom id of each row (row indices are local
// to the table, atom ids are program-wide).
type predTable struct {
	rel     *intern.Relation
	atomIDs []int
}

// NumAtoms returns the number of interned ground atoms.
func (g *Program) NumAtoms() int { return g.numAtoms }

// Words64 returns the atom count rounded up to 64-bit words: the number of
// uint64 words a dense truth vector over the atom ids needs. The semantics
// engines size their bitsets with it.
func (g *Program) Words64() int { return (g.numAtoms + 63) / 64 }

// Atom returns the interned atom with the given id.
func (g *Program) Atom(id int) datalog.Fact {
	if g.interned {
		g.atomsOnce.Do(g.materializeAtoms)
	}
	return g.atoms[id]
}

// AtomKey returns the canonical key of the interned atom with the given id.
// The key is computed at most once per atom — eagerly in the string mode
// (it doubles as the dedup key) and on first use in the ID mode; callers
// that previously rebuilt it via Atom(id).Key() should use this instead.
func (g *Program) AtomKey(id int) string {
	if g.interned {
		g.keysOnce.Do(g.materializeKeys)
	}
	return g.keys[id]
}

// materializeAtoms builds the datalog.Fact view of every atom from the
// compact relation rows — the ID mode's deferred counterpart of the string
// mode's at-interning Fact storage. Guarded by atomsOnce: safe when a ground
// program is shared across goroutines (e.g. the parallel stable search).
func (g *Program) materializeAtoms() {
	in := intern.Global()
	atoms := make([]datalog.Fact, g.numAtoms)
	for pa, t := range g.tables {
		for i, id := range t.atomIDs {
			row := t.rel.Row(i)
			args := make([]value.Value, len(row))
			for j, rid := range row {
				args[j] = in.Lookup(rid)
			}
			atoms[id] = datalog.Fact{Pred: pa.pred, Args: args}
		}
	}
	g.atoms = atoms
}

// materializeKeys formats every atom's canonical key (ID mode, on first
// AtomKey call).
func (g *Program) materializeKeys() {
	g.atomsOnce.Do(g.materializeAtoms)
	keys := make([]string, g.numAtoms)
	for id := range keys {
		keys[id] = g.atoms[id].Key()
	}
	g.keys = keys
}

// Lookup returns the id of the given fact and whether it is interned.
func (g *Program) Lookup(f datalog.Fact) (int, bool) {
	if !g.interned {
		id, ok := g.index[f.Key()]
		return id, ok
	}
	t, ok := g.tables[predArity{f.Pred, len(f.Args)}]
	if !ok {
		return 0, false
	}
	in := intern.Global()
	row := make([]intern.ID, len(f.Args))
	for i, a := range f.Args {
		row[i] = in.Intern(a)
	}
	idx, ok := t.rel.Find(row)
	if !ok {
		return 0, false
	}
	return t.atomIDs[idx], true
}

// AtomsOf returns the ids of all interned atoms of the given predicate.
func (g *Program) AtomsOf(pred string) []int { return g.byPred[pred] }

// Preds returns all predicate names with interned atoms, sorted.
func (g *Program) Preds() []string {
	out := make([]string, 0, len(g.byPred))
	for p := range g.byPred {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

type grounder struct {
	prog   *Program
	budget Budget
	// interned mirrors prog.interned; in is the process-global interner the
	// ID mode deduplicates and indexes through.
	interned bool
	in       *intern.Interner
	// byPredDerived holds, per predicate, the atoms that have appeared as a
	// rule head or fact ("possible" atoms) in derivation order;
	// negative-only atoms live in the table but never in byPredDerived.
	byPredDerived map[string][]int
	derived       []bool // per atom id, grown alongside seqOf
	// ruleIdx deduplicates ground rules by hash, verified against the stored
	// rule (identical semantics to the former string-key dedup, without
	// building a key string per candidate rule).
	ruleIdx map[uint64][]int
	// seqOf gives each atom id its position within byPredDerived of its
	// predicate (-1 before derivation); the delta-driven passes use it to
	// range-restrict index probe results.
	seqOf []int
	// indexes maps a matchMask signature to (projection key -> atom ids in
	// derivation order); masksByPred lists the masks registered per
	// predicate so markDerived can maintain the indexes incrementally.
	// idIndexes is the ID-mode equivalent, keyed by the mixed hash of the
	// projected argument-ID row; hash collisions only add candidates, which
	// the ID matcher rejects, so probes stay exact.
	indexes     map[string]map[string][]int
	idIndexes   map[string]map[uint64][]int
	masksByPred map[string][]matchMask
	// rows gives each atom id its argument-ID row (a view into its
	// predTable's flat relation storage); the ID-space matcher and the index
	// maintenance read it instead of re-consing Fact arguments.
	rows [][]intern.ID
	// idBind is the ID-space binding frame; lookupVal adapts it to
	// EvalTermFn's value-level variable lookup by materializing bound IDs,
	// so interpreted function terms evaluate identically in both modes.
	idBind    *idBindFrame
	lookupVal func(datalog.Var) (value.Value, bool)
	// rowBuf is a scratch ID row reused across intern and index operations
	// (never retained: intern.Relation copies inserted rows).
	rowBuf []intern.ID
	// ID-mode rule dedup: an open-addressed table of rule indices plus
	// reusable sort/neg scratch and a chunked int arena for rule bodies, so a
	// duplicate firing allocates nothing and a new rule costs only its share
	// of an arena chunk. The string mode keeps ruleIdx above.
	ruleTab  []int32
	ruleMask uint32
	posSort  []int
	negSort  []int
	negBuf   []int
	bodies   intArena
}

// intArena carves small []int slices out of shared chunks; rule bodies are
// immutable once stored, so packing them eliminates one heap object per rule.
type intArena struct{ buf []int }

const intArenaChunk = 1 << 13

func (a *intArena) store(src []int) []int {
	if len(src) == 0 {
		return nil
	}
	if len(a.buf)+len(src) > cap(a.buf) {
		size := intArenaChunk
		for size < len(src) {
			size *= 2
		}
		a.buf = make([]int, 0, size)
	}
	n := len(a.buf)
	a.buf = a.buf[: n+len(src) : cap(a.buf)]
	s := a.buf[n : n+len(src) : n+len(src)]
	copy(s, src)
	return s
}

func (g *grounder) intern(f datalog.Fact) (int, error) {
	if g.interned {
		row := g.rowBuf[:0]
		for _, a := range f.Args {
			row = append(row, g.in.Intern(a))
		}
		g.rowBuf = row
		return g.internRow(f.Pred, row)
	}
	key := f.Key()
	if id, ok := g.prog.index[key]; ok {
		return id, nil
	}
	if g.prog.numAtoms >= g.budget.MaxAtoms {
		return 0, &BudgetError{What: "atoms", Limit: g.budget.MaxAtoms}
	}
	id := g.prog.numAtoms
	g.prog.numAtoms++
	g.prog.atoms = append(g.prog.atoms, f)
	g.prog.keys = append(g.prog.keys, key)
	g.prog.index[key] = id
	g.prog.byPred[f.Pred] = append(g.prog.byPred[f.Pred], id)
	g.seqOf = append(g.seqOf, -1)
	g.derived = append(g.derived, false)
	return id, nil
}

// internRow is the ID-mode fact dedup: probe the predicate's compact relation
// with the argument-ID row. The steady-state cost per intern attempt is one
// hash probe over machine words, with no value traffic at all; even for new
// atoms no datalog.Fact or key string is built (the Program materializes
// those lazily on first Atom/AtomKey use). Atom ids are assigned in the same
// first-sight order as the string mode.
func (g *grounder) internRow(pred string, row []intern.ID) (int, error) {
	pa := predArity{pred, len(row)}
	t, ok := g.prog.tables[pa]
	if !ok {
		t = &predTable{rel: intern.NewRelation(len(row))}
		g.prog.tables[pa] = t
	}
	if idx, ok := t.rel.Find(row); ok {
		return t.atomIDs[idx], nil
	}
	if g.prog.numAtoms >= g.budget.MaxAtoms {
		return 0, &BudgetError{What: "atoms", Limit: g.budget.MaxAtoms}
	}
	id := g.prog.numAtoms
	g.prog.numAtoms++
	idx, _ := t.rel.Insert(row)
	t.atomIDs = append(t.atomIDs, id)
	g.prog.byPred[pred] = append(g.prog.byPred[pred], id)
	g.seqOf = append(g.seqOf, -1)
	g.derived = append(g.derived, false)
	g.rows = append(g.rows, t.rel.Row(idx))
	return id, nil
}

func (g *grounder) markDerived(id int, pred string) {
	if g.derived[id] {
		return
	}
	g.derived[id] = true
	g.seqOf[id] = len(g.byPredDerived[pred])
	g.byPredDerived[pred] = append(g.byPredDerived[pred], id)
	for _, m := range g.masksByPred[pred] {
		if g.interned {
			key, ok := projectRowHash(g.rows[id], m.positions)
			if !ok {
				continue
			}
			g.idIndexes[m.sig][key] = append(g.idIndexes[m.sig][key], id)
			continue
		}
		key, ok := projectKey(g.prog.atoms[id].Args, m.positions)
		if !ok {
			continue
		}
		g.indexes[m.sig][key] = append(g.indexes[m.sig][key], id)
	}
}

func (g *grounder) addRule(head int, pos, neg []int) (bool, error) {
	sort.Ints(pos)
	sort.Ints(neg)
	h := hashRule(head, pos, neg)
	for _, ri := range g.ruleIdx[h] {
		r := &g.prog.Rules[ri]
		if r.Head == head && intsEqual(r.Pos, pos) && intsEqual(r.Neg, neg) {
			return false, nil
		}
	}
	if len(g.prog.Rules) >= g.budget.MaxRules {
		return false, &BudgetError{What: "rules", Limit: g.budget.MaxRules}
	}
	g.ruleIdx[h] = append(g.ruleIdx[h], len(g.prog.Rules))
	g.prog.Rules = append(g.prog.Rules, Rule{Head: head, Pos: pos, Neg: neg})
	return true, nil
}

// addRuleID is the ID-mode twin of addRule. It leaves the caller's slices
// untouched (sorting happens in reusable scratch), dedups against the
// open-addressed rule table, and copies the body into the arena only when the
// rule is genuinely new — the common duplicate firing allocates nothing.
func (g *grounder) addRuleID(head int, pos, neg []int) (bool, error) {
	g.posSort = append(g.posSort[:0], pos...)
	g.negSort = append(g.negSort[:0], neg...)
	sort.Ints(g.posSort)
	sort.Ints(g.negSort)
	h := hashRule(head, g.posSort, g.negSort)
	slot := uint32(h) & g.ruleMask
	for {
		ri := g.ruleTab[slot]
		if ri == 0 {
			break
		}
		r := &g.prog.Rules[ri-1]
		if r.Head == head && intsEqual(r.Pos, g.posSort) && intsEqual(r.Neg, g.negSort) {
			return false, nil
		}
		slot = (slot + 1) & g.ruleMask
	}
	if len(g.prog.Rules) >= g.budget.MaxRules {
		return false, &BudgetError{What: "rules", Limit: g.budget.MaxRules}
	}
	idx := len(g.prog.Rules)
	g.prog.Rules = append(g.prog.Rules, Rule{
		Head: head,
		Pos:  g.bodies.store(g.posSort),
		Neg:  g.bodies.store(g.negSort),
	})
	// Same 3/4 load-factor policy as intern.Relation; growth rehashes from the
	// stored (already sorted) rules, so no hash needs to be remembered.
	if uint32(idx+1)*4 > (g.ruleMask+1)*3 {
		g.growRuleTab()
	} else {
		g.ruleTab[slot] = int32(idx + 1)
	}
	return true, nil
}

const ruleTabMin = 16

func (g *grounder) growRuleTab() {
	size := (g.ruleMask + 1) * 2
	g.ruleTab = make([]int32, size)
	g.ruleMask = size - 1
	for i := range g.prog.Rules {
		r := &g.prog.Rules[i]
		slot := uint32(hashRule(r.Head, r.Pos, r.Neg)) & g.ruleMask
		for g.ruleTab[slot] != 0 {
			slot = (slot + 1) & g.ruleMask
		}
		g.ruleTab[slot] = int32(i + 1)
	}
}

// hashRule hashes a sorted ground rule; collisions are resolved by the exact
// comparison in addRule.
func hashRule(head int, pos, neg []int) uint64 {
	h := ruleMix(0x8f3a6c1b57e94d25 ^ uint64(head))
	for _, p := range pos {
		h = ruleMix(h ^ uint64(p))
	}
	h = ruleMix(h ^ uint64(len(pos)))
	for _, n := range neg {
		h = ruleMix(h ^ uint64(n))
	}
	return ruleMix(h ^ uint64(len(neg)))
}

// ruleMix is the SplitMix64 finalizer.
func ruleMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// matchMask describes, for one match step, the argument positions whose
// values are computable before matching (constants, evaluable function
// terms, and variables bound by earlier steps). Atoms are indexed by the
// projection on those positions, turning the scan-and-filter join into an
// index probe.
type matchMask struct {
	positions []int
	sig       string // index signature: pred|arity|positions
	// index is the resolved bucket map for sig, filled by registerMasks so
	// probes need a single map lookup. Exactly one of index (string mode)
	// and idIndex (ID mode) is populated, per the grounder's mode.
	index   map[string][]int
	idIndex map[uint64][]int
}

// orderedRule pairs a rule's execution plan with per-match-step index masks.
// In ID mode the rule's atom arguments are additionally compiled to idArg
// rows (idSteps/idHead/idNegs), so matching and firing run entirely over
// interned IDs.
type orderedRule struct {
	plan     datalog.BodyPlan
	head     datalog.Atom
	masks    []matchMask // indexed like plan.Steps; meaningful for match steps
	posPreds []string    // predicate of each positive literal, indexed by PosIdx
	idSteps  [][]idArg   // indexed like plan.Steps; non-nil for match steps
	idHead   []idArg
	idNegs   [][]idArg
}

// idArg is one compiled pattern argument of the ID-space matcher: a variable
// (matched or bound by ID equality), a constant consed once at compile time,
// or an interpreted function term that still evaluates through values.
type idArg struct {
	kind idArgKind
	v    datalog.Var
	id   intern.ID
	term datalog.Term
}

type idArgKind uint8

const (
	idVar idArgKind = iota
	idConst
	idTerm
)

// compileArgs builds the idArg row for an atom's argument terms, consing
// constants up front.
func (g *grounder) compileArgs(args []datalog.Term) []idArg {
	out := make([]idArg, len(args))
	for i, t := range args {
		switch tt := t.(type) {
		case datalog.Var:
			out[i] = idArg{kind: idVar, v: tt}
		case datalog.Const:
			out[i] = idArg{kind: idConst, id: g.in.Intern(tt.V)}
		default:
			out[i] = idArg{kind: idTerm, term: t}
		}
	}
	return out
}

func maskSig(pred string, arity int, positions []int) string {
	var sb strings.Builder
	sb.WriteString(pred)
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(arity))
	sb.WriteByte('|')
	for _, p := range positions {
		sb.WriteString(strconv.Itoa(p))
		sb.WriteByte(',')
	}
	return sb.String()
}

// computeMasks derives the match masks for a planned rule by replaying the
// plan's variable-binding discipline.
func computeMasks(plan datalog.BodyPlan) []matchMask {
	bound := map[datalog.Var]bool{}
	allBound := func(t datalog.Term) bool {
		for v := range datalog.VarsOfTerm(t) {
			if !bound[v] {
				return false
			}
		}
		return true
	}
	masks := make([]matchMask, len(plan.Steps))
	for i, st := range plan.Steps {
		switch st.Kind {
		case datalog.StepMatch:
			var positions []int
			for j, a := range st.Atom.Args {
				if v, isVar := a.(datalog.Var); isVar {
					if bound[v] {
						positions = append(positions, j)
					}
					continue
				}
				// non-variable argument: the planner guarantees evaluability
				positions = append(positions, j)
			}
			if len(positions) > 0 {
				masks[i] = matchMask{
					positions: positions,
					sig:       maskSig(st.Atom.Pred, len(st.Atom.Args), positions),
				}
			}
			for _, a := range st.Atom.Args {
				if v, isVar := a.(datalog.Var); isVar {
					bound[v] = true
				}
			}
		case datalog.StepAssign:
			bound[st.AssignVar] = true
		case datalog.StepTest:
			_ = allBound // tests bind nothing
		}
	}
	return masks
}

// bindFrame is a slice-backed variable binding with O(1) undo; rules have
// few variables, so linear lookup beats a map by a wide margin in the
// instantiation hot path.
type bindFrame struct {
	vars []datalog.Var
	vals []value.Value
}

func (b *bindFrame) lookup(v datalog.Var) (value.Value, bool) {
	for i := len(b.vars) - 1; i >= 0; i-- {
		if b.vars[i] == v {
			return b.vals[i], true
		}
	}
	return nil, false
}

func (b *bindFrame) push(v datalog.Var, val value.Value) {
	b.vars = append(b.vars, v)
	b.vals = append(b.vals, val)
}

func (b *bindFrame) mark() int { return len(b.vars) }

func (b *bindFrame) reset(n int) {
	b.vars = b.vars[:n]
	b.vals = b.vals[:n]
}

// idBindFrame is bindFrame over interned IDs: the ID-space matcher binds and
// compares single machine words instead of boxed values.
type idBindFrame struct {
	vars []datalog.Var
	ids  []intern.ID
}

func (b *idBindFrame) lookup(v datalog.Var) (intern.ID, bool) {
	for i := len(b.vars) - 1; i >= 0; i-- {
		if b.vars[i] == v {
			return b.ids[i], true
		}
	}
	return 0, false
}

func (b *idBindFrame) push(v datalog.Var, id intern.ID) {
	b.vars = append(b.vars, v)
	b.ids = append(b.ids, id)
}

func (b *idBindFrame) mark() int { return len(b.vars) }

func (b *idBindFrame) reset(n int) {
	b.vars = b.vars[:n]
	b.ids = b.ids[:n]
}

// registerMasks records every distinct index an ordered rule will probe, so
// markDerived can maintain them incrementally.
func (g *grounder) registerMasks(or *orderedRule) {
	for i, st := range or.plan.Steps {
		if st.Kind != datalog.StepMatch || len(or.masks[i].positions) == 0 {
			continue
		}
		m := or.masks[i]
		if g.interned {
			idx, ok := g.idIndexes[m.sig]
			if !ok {
				idx = map[uint64][]int{}
				g.idIndexes[m.sig] = idx
				m.idIndex = idx
				g.masksByPred[st.Atom.Pred] = append(g.masksByPred[st.Atom.Pred], m)
			}
			or.masks[i].idIndex = idx
			continue
		}
		idx, ok := g.indexes[m.sig]
		if !ok {
			idx = map[string][]int{}
			g.indexes[m.sig] = idx
			m.index = idx
			g.masksByPred[st.Atom.Pred] = append(g.masksByPred[st.Atom.Pred], m)
		}
		or.masks[i].index = idx
	}
}

// projectKey builds the index key for a fact's arguments at the mask
// positions; ok=false when the arity does not cover the mask.
func projectKey(args []value.Value, positions []int) (string, bool) {
	var sb strings.Builder
	for _, p := range positions {
		if p >= len(args) {
			return "", false
		}
		sb.WriteString(args[p].String())
		sb.WriteByte('\x00')
	}
	return sb.String(), true
}

// probeKey evaluates the mask positions of a match step's pattern under the
// current binding.
func probeKey(atom datalog.Atom, positions []int, b *bindFrame) (string, error) {
	var sb strings.Builder
	for _, p := range positions {
		v, err := datalog.EvalTermFn(atom.Args[p], b.lookup)
		if err != nil {
			return "", err
		}
		sb.WriteString(v.String())
		sb.WriteByte('\x00')
	}
	return sb.String(), nil
}

// projectRowHash mixes the argument IDs at the mask positions into the
// ID-mode index key; ok=false when the arity does not cover the mask. Probes
// use the same mix, and every candidate is re-verified by the ID matcher, so
// a hash collision costs one rejected candidate, never a wrong match.
func projectRowHash(row []intern.ID, positions []int) (uint64, bool) {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range positions {
		if p >= len(row) {
			return 0, false
		}
		h = ruleMix(h ^ uint64(row[p]))
	}
	return h, true
}

// probeRowHash is projectRowHash for a match step's compiled pattern under
// the current ID binding.
func (g *grounder) probeRowHash(pat []idArg, positions []int, b *idBindFrame) (uint64, error) {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range positions {
		id, err := g.argID(pat[p], b)
		if err != nil {
			return 0, err
		}
		h = ruleMix(h ^ uint64(id))
	}
	return h, nil
}

// argID resolves one compiled pattern argument to its interned ID under the
// binding. Unbound variables and failing function terms report the same
// errors EvalTermFn does in the string mode.
func (g *grounder) argID(a idArg, b *idBindFrame) (intern.ID, error) {
	switch a.kind {
	case idVar:
		if id, ok := b.lookup(a.v); ok {
			return id, nil
		}
		// Unreachable for planned rules (the planner orders steps so probed
		// variables are bound); fall through to EvalTermFn for its error.
		_, err := datalog.EvalTermFn(a.v, g.lookupVal)
		return 0, err
	case idConst:
		return a.id, nil
	default:
		v, err := datalog.EvalTermFn(a.term, g.lookupVal)
		if err != nil {
			return 0, err
		}
		return g.in.Intern(v), nil
	}
}

// matchRowID matches a compiled pattern against an atom's argument-ID row,
// extending bind; the caller restores the binding mark on failure or after
// recursion. Interned IDs are canonical, so ID equality is value.Equal.
func (g *grounder) matchRowID(pat []idArg, row []intern.ID, bind *idBindFrame) (bool, error) {
	for i, a := range pat {
		switch a.kind {
		case idVar:
			if id, ok := bind.lookup(a.v); ok {
				if id != row[i] {
					return false, nil
				}
				continue
			}
			bind.push(a.v, row[i])
		case idConst:
			if a.id != row[i] {
				return false, nil
			}
		default:
			v, err := datalog.EvalTermFn(a.term, g.lookupVal)
			if err != nil {
				return false, err
			}
			if g.in.Intern(v) != row[i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// evalRowID instantiates a compiled atom pattern into an argument-ID row
// under the binding, reusing buf.
func (g *grounder) evalRowID(pat []idArg, bind *idBindFrame, buf []intern.ID) ([]intern.ID, error) {
	buf = buf[:0]
	for _, a := range pat {
		id, err := g.argID(a, bind)
		if err != nil {
			return nil, err
		}
		buf = append(buf, id)
	}
	return buf, nil
}

// enumerate walks the plan steps recursively, backtracking through bind.
// rng is nil during pass 0. posIDs accumulates the interned ids of matched
// positive atoms for fire. This is the string-mode walker; enumerateID is
// its ID-space twin.
func (g *grounder) enumerate(or orderedRule, si int, bind *bindFrame, posIDs *[]int, rng *ranges, deltaIdx int) error {
	if si == len(or.plan.Steps) {
		return g.fire(or, bind, *posIDs)
	}
	st := or.plan.Steps[si]
	switch st.Kind {
	case datalog.StepMatch:
		var cands []int
		mask := or.masks[si]
		if len(mask.positions) == 0 {
			cands = g.byPredDerived[st.Atom.Pred]
		} else {
			key, err := probeKey(st.Atom, mask.positions, bind)
			if err != nil {
				return err
			}
			cands = mask.index[key]
		}
		lo, hi := 0, len(g.byPredDerived[st.Atom.Pred])
		if rng != nil {
			lo, hi = rng.bounds(st.PosIdx, deltaIdx, st.Atom.Pred)
		}
		if lo > 0 {
			// Candidate lists are in derivation order, so the window start can
			// be found by binary search. Skipping the prefix linearly instead
			// makes the delta passes quadratic in the candidate list length —
			// cubic overall on transitive-closure-style workloads.
			cands = cands[sort.Search(len(cands), func(i int) bool { return g.seqOf[cands[i]] >= lo }):]
		}
		for _, id := range cands {
			if g.seqOf[id] >= hi {
				break // candidate lists are in derivation order
			}
			f := g.prog.atoms[id]
			if len(f.Args) != len(st.Atom.Args) {
				continue
			}
			mk := bind.mark()
			ok, err := matchAtom(st.Atom.Args, f.Args, bind)
			if err != nil {
				return err
			}
			if ok {
				*posIDs = append(*posIDs, id)
				if err := g.enumerate(or, si+1, bind, posIDs, rng, deltaIdx); err != nil {
					return err
				}
				*posIDs = (*posIDs)[:len(*posIDs)-1]
			}
			bind.reset(mk)
		}
		return nil
	case datalog.StepAssign:
		v, err := datalog.EvalTermFn(st.Term, bind.lookup)
		if err != nil {
			return err
		}
		mk := bind.mark()
		bind.push(st.AssignVar, v)
		err = g.enumerate(or, si+1, bind, posIDs, rng, deltaIdx)
		bind.reset(mk)
		return err
	case datalog.StepTest:
		lv, err := datalog.EvalTermFn(st.Cmp.L, bind.lookup)
		if err != nil {
			return err
		}
		rv, err := datalog.EvalTermFn(st.Cmp.R, bind.lookup)
		if err != nil {
			return err
		}
		ok, err := datalog.EvalCmp(st.Cmp.Op, lv, rv)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return g.enumerate(or, si+1, bind, posIDs, rng, deltaIdx)
	default:
		panic("ground: unknown step kind")
	}
}

// matchAtom matches pattern terms against ground values, extending bind;
// the caller restores the binding mark on failure or after recursion.
func matchAtom(pats []datalog.Term, vals []value.Value, bind *bindFrame) (bool, error) {
	for i, pat := range pats {
		if v, isVar := pat.(datalog.Var); isVar {
			if bound, ok := bind.lookup(v); ok {
				if !value.Equal(bound, vals[i]) {
					return false, nil
				}
				continue
			}
			bind.push(v, vals[i])
			continue
		}
		got, err := datalog.EvalTermFn(pat, bind.lookup)
		if err != nil {
			return false, err
		}
		if !value.Equal(got, vals[i]) {
			return false, nil
		}
	}
	return true, nil
}

// evalAtom instantiates an atom's arguments under the binding.
func evalAtom(a datalog.Atom, bind *bindFrame) (datalog.Fact, error) {
	args := make([]value.Value, len(a.Args))
	for i, t := range a.Args {
		v, err := datalog.EvalTermFn(t, bind.lookup)
		if err != nil {
			return datalog.Fact{}, err
		}
		args[i] = v
	}
	return datalog.Fact{Pred: a.Pred, Args: args}, nil
}

// fire records the ground rule for a complete binding.
func (g *grounder) fire(or orderedRule, bind *bindFrame, posIDs []int) error {
	head, err := evalAtom(or.head, bind)
	if err != nil {
		return err
	}
	hid, err := g.intern(head)
	if err != nil {
		return err
	}
	pos := append([]int(nil), posIDs...)
	neg := make([]int, 0, len(or.plan.Negs))
	for _, na := range or.plan.Negs {
		f, err := evalAtom(na, bind)
		if err != nil {
			return err
		}
		id, err := g.intern(f)
		if err != nil {
			return err
		}
		neg = append(neg, id)
	}
	if _, err := g.addRule(hid, pos, neg); err != nil {
		return err
	}
	g.markDerived(hid, or.head.Pred)
	return nil
}

// enumerateID is enumerate over interned IDs: candidates come from the
// hash-keyed ID indexes, patterns match argument-ID rows word by word, and
// bindings hold IDs. It visits the same complete bindings in the same order
// as the string-mode walker (hash-collision candidates are rejected by
// matchRowID), so the two modes produce bit-for-bit identical programs.
func (g *grounder) enumerateID(or orderedRule, si int, bind *idBindFrame, posIDs *[]int, rng *ranges, deltaIdx int) error {
	if si == len(or.plan.Steps) {
		return g.fireID(or, bind, *posIDs)
	}
	st := or.plan.Steps[si]
	switch st.Kind {
	case datalog.StepMatch:
		var cands []int
		mask := or.masks[si]
		pat := or.idSteps[si]
		if len(mask.positions) == 0 {
			cands = g.byPredDerived[st.Atom.Pred]
		} else {
			key, err := g.probeRowHash(pat, mask.positions, bind)
			if err != nil {
				return err
			}
			cands = mask.idIndex[key]
		}
		lo, hi := 0, len(g.byPredDerived[st.Atom.Pred])
		if rng != nil {
			lo, hi = rng.bounds(st.PosIdx, deltaIdx, st.Atom.Pred)
		}
		if lo > 0 {
			// See enumerate: binary search keeps the delta passes linear in
			// the candidate window, not the whole candidate list.
			cands = cands[sort.Search(len(cands), func(i int) bool { return g.seqOf[cands[i]] >= lo }):]
		}
		for _, id := range cands {
			if g.seqOf[id] >= hi {
				break // candidate lists are in derivation order
			}
			row := g.rows[id]
			if len(row) != len(pat) {
				continue
			}
			mk := bind.mark()
			ok, err := g.matchRowID(pat, row, bind)
			if err != nil {
				return err
			}
			if ok {
				*posIDs = append(*posIDs, id)
				if err := g.enumerateID(or, si+1, bind, posIDs, rng, deltaIdx); err != nil {
					return err
				}
				*posIDs = (*posIDs)[:len(*posIDs)-1]
			}
			bind.reset(mk)
		}
		return nil
	case datalog.StepAssign:
		v, err := datalog.EvalTermFn(st.Term, g.lookupVal)
		if err != nil {
			return err
		}
		mk := bind.mark()
		bind.push(st.AssignVar, g.in.Intern(v))
		err = g.enumerateID(or, si+1, bind, posIDs, rng, deltaIdx)
		bind.reset(mk)
		return err
	case datalog.StepTest:
		lv, err := datalog.EvalTermFn(st.Cmp.L, g.lookupVal)
		if err != nil {
			return err
		}
		rv, err := datalog.EvalTermFn(st.Cmp.R, g.lookupVal)
		if err != nil {
			return err
		}
		ok, err := datalog.EvalCmp(st.Cmp.Op, lv, rv)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return g.enumerateID(or, si+1, bind, posIDs, rng, deltaIdx)
	default:
		panic("ground: unknown step kind")
	}
}

// fireID records the ground rule for a complete ID binding, instantiating
// head and negative atoms as argument-ID rows; a datalog.Fact is only built
// when an atom is new to the program.
func (g *grounder) fireID(or orderedRule, bind *idBindFrame, posIDs []int) error {
	row, err := g.evalRowID(or.idHead, bind, g.rowBuf)
	if err != nil {
		return err
	}
	g.rowBuf = row
	hid, err := g.internRow(or.head.Pred, row)
	if err != nil {
		return err
	}
	g.negBuf = g.negBuf[:0]
	for i, na := range or.plan.Negs {
		row, err = g.evalRowID(or.idNegs[i], bind, g.rowBuf)
		if err != nil {
			return err
		}
		g.rowBuf = row
		id, err := g.internRow(na.Pred, row)
		if err != nil {
			return err
		}
		g.negBuf = append(g.negBuf, id)
	}
	if _, err := g.addRuleID(hid, posIDs, g.negBuf); err != nil {
		return err
	}
	g.markDerived(hid, or.head.Pred)
	return nil
}

// Ground instantiates the program under the given budget. The fact-dedup
// representation (hash-consed ID rows vs canonical key strings) is chosen
// here from the process-wide interning switch; the resulting Program is
// identical either way.
func Ground(p *datalog.Program, budget Budget) (*Program, error) {
	interned := value.InterningEnabled()
	g := &grounder{
		prog: &Program{
			interned: interned,
			byPred:   map[string][]int{},
		},
		budget:        budget.withDefaults(),
		interned:      interned,
		byPredDerived: map[string][]int{},
		masksByPred:   map[string][]matchMask{},
	}
	if interned {
		g.in = intern.Global()
		g.ruleTab = make([]int32, ruleTabMin)
		g.ruleMask = ruleTabMin - 1
		g.prog.tables = map[predArity]*predTable{}
		g.idIndexes = map[string]map[uint64][]int{}
		g.idBind = &idBindFrame{}
		g.lookupVal = func(v datalog.Var) (value.Value, bool) {
			id, ok := g.idBind.lookup(v)
			if !ok {
				return nil, false
			}
			return g.in.Lookup(id), true
		}
	} else {
		g.prog.index = map[string]int{}
		g.indexes = map[string]map[string][]int{}
		g.ruleIdx = map[uint64][]int{}
	}

	var ordered []orderedRule
	for _, r := range p.Rules {
		plan, err := datalog.PlanRule(r)
		if err != nil {
			return nil, fmt.Errorf("ground: %w", err)
		}
		or := orderedRule{plan: plan, head: r.Head, masks: computeMasks(plan), posPreds: make([]string, plan.NumPos)}
		for _, st := range plan.Steps {
			if st.Kind == datalog.StepMatch {
				or.posPreds[st.PosIdx] = st.Atom.Pred
			}
		}
		if interned {
			or.idHead = g.compileArgs(r.Head.Args)
			or.idSteps = make([][]idArg, len(plan.Steps))
			for i, st := range plan.Steps {
				if st.Kind == datalog.StepMatch {
					or.idSteps[i] = g.compileArgs(st.Atom.Args)
				}
			}
			or.idNegs = make([][]idArg, len(plan.Negs))
			for i, na := range plan.Negs {
				or.idNegs[i] = g.compileArgs(na.Args)
			}
		}
		g.registerMasks(&or)
		ordered = append(ordered, or)
	}

	bind := &bindFrame{}
	var posIDs []int
	// run dispatches one rule enumeration to the mode's walker.
	run := func(or orderedRule, rng *ranges, deltaIdx int) error {
		if interned {
			return g.enumerateID(or, 0, g.idBind, &posIDs, rng, deltaIdx)
		}
		return g.enumerate(or, 0, bind, &posIDs, rng, deltaIdx)
	}

	// Pass 0: rules with no positive atoms (facts included) fire once.
	for _, or := range ordered {
		if or.plan.NumPos > 0 {
			continue
		}
		if err := g.budget.stop(); err != nil {
			return nil, err
		}
		if err := run(or, nil, -1); err != nil {
			return nil, err
		}
	}

	// Delta-driven passes: a rule instance is enumerated when at least one of
	// its positive atoms matches an atom derived in the previous pass.
	var passes, deltaHits, deltaSkips int
	prevLen := map[string]int{}
	for {
		curLen := map[string]int{}
		for pred, ids := range g.byPredDerived {
			curLen[pred] = len(ids)
		}
		anyDelta := false
		for pred, cur := range curLen {
			if cur > prevLen[pred] {
				anyDelta = true
				break
			}
		}
		if !anyDelta {
			break
		}
		passes++
		for _, or := range ordered {
			if or.plan.NumPos == 0 {
				continue
			}
			if err := g.budget.stop(); err != nil {
				return nil, err
			}
			for d := 0; d < or.plan.NumPos; d++ {
				// Every complete match must use a last-pass atom at the delta
				// literal; an empty delta window cannot produce one, and
				// enumerating the other literals anyway is what turned the
				// linear-rule passes quadratic.
				if pred := or.posPreds[d]; curLen[pred] == prevLen[pred] {
					deltaSkips++
					continue
				}
				deltaHits++
				if err := run(or, &ranges{prev: prevLen, cur: curLen}, d); err != nil {
					return nil, err
				}
			}
		}
		prevLen = curLen
	}
	if c := obsv.Default(); c != nil {
		c.Ground(obsv.GroundStats{
			Atoms:      g.prog.NumAtoms(),
			Rules:      len(g.prog.Rules),
			Passes:     passes,
			DeltaHits:  deltaHits,
			DeltaSkips: deltaSkips,
		})
	}
	return g.prog, nil
}

// ranges restricts, per predicate, which derivation-sequence window each
// positive literal may match during a delta-driven pass: the literal at
// deltaIdx matches only last-pass discoveries, earlier literals only older
// atoms, later literals anything seen so far (the standard semi-naive
// decomposition avoiding duplicate enumeration).
type ranges struct {
	prev, cur map[string]int
}

func (r *ranges) bounds(posIdx, deltaIdx int, pred string) (lo, hi int) {
	switch {
	case posIdx < deltaIdx:
		return 0, r.prev[pred]
	case posIdx == deltaIdx:
		return r.prev[pred], r.cur[pred]
	default:
		return 0, r.cur[pred]
	}
}
