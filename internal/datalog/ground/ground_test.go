package ground

import (
	"errors"
	"strings"
	"testing"

	"algrec/internal/datalog"
	"algrec/internal/value"
)

func mustGround(t *testing.T, src string) *Program {
	t.Helper()
	p, err := datalog.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Ground(p, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGroundFacts(t *testing.T) {
	g := mustGround(t, "e(1, 2). e(2, 3). e(1, 2).")
	if g.NumAtoms() != 2 {
		t.Fatalf("atoms = %d, want 2 (duplicate fact deduped)", g.NumAtoms())
	}
	if len(g.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(g.Rules))
	}
	if _, ok := g.Lookup(datalog.Fact{Pred: "e", Args: []value.Value{value.Int(1), value.Int(2)}}); !ok {
		t.Error("e(1,2) not interned")
	}
}

func TestGroundTransitiveClosure(t *testing.T) {
	g := mustGround(t, `
e(1, 2). e(2, 3). e(3, 4).
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
`)
	// tc over a 4-chain: pairs (i,j) with i<j: 6 atoms + 3 e atoms.
	if got := len(g.AtomsOf("tc")); got != 6 {
		t.Errorf("tc atoms = %d, want 6", got)
	}
	// ground rules: 3 facts + 3 base tc rules + chains: tc(1,2)e(2,3), tc(1,3)e(3,4),
	// tc(2,3)e(3,4) -> 3+3+3 = 9
	if got := len(g.Rules); got != 9 {
		t.Errorf("ground rules = %d, want 9", got)
	}
}

func TestGroundNegation(t *testing.T) {
	g := mustGround(t, `
move(a, b). move(b, c).
win(X) :- move(X, Y), not win(Y).
`)
	// possible win atoms: win(a), win(b); win(c) appears only negatively.
	wins := g.AtomsOf("win")
	keys := map[string]bool{}
	for _, id := range wins {
		keys[g.Atom(id).Key()] = true
	}
	for _, k := range []string{"win(a)", "win(b)", "win(c)"} {
		if !keys[k] {
			t.Errorf("atom %s not interned; got %v", k, keys)
		}
	}
	// win(c) must have no deriving rule.
	cid, _ := g.Lookup(datalog.Fact{Pred: "win", Args: []value.Value{value.String("c")}})
	for _, r := range g.Rules {
		if r.Head == cid {
			t.Error("win(c) should have no deriving rules")
		}
	}
}

func TestGroundAssignmentsAndTests(t *testing.T) {
	g := mustGround(t, `
n(1). n(2). n(3).
big(Y) :- n(X), Y = plus(X, 10), Y >= 12.
`)
	got := map[string]bool{}
	for _, id := range g.AtomsOf("big") {
		got[g.Atom(id).Key()] = true
	}
	if len(got) != 2 || !got["big(12)"] || !got["big(13)"] {
		t.Errorf("big atoms = %v, want big(12), big(13)", got)
	}
}

func TestGroundFunctionRecursionBudget(t *testing.T) {
	p := datalog.MustParse(`
n(0).
n(Y) :- n(X), Y = plus(X, 1).
`)
	_, err := Ground(p, Budget{MaxAtoms: 100})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected BudgetError, got %v", err)
	}
	if be.What != "atoms" || be.Limit != 100 {
		t.Errorf("budget error = %+v", be)
	}
	if !strings.Contains(be.Error(), "infinite") {
		t.Errorf("budget error message %q should warn about infinite relations", be)
	}
}

func TestGroundBoundedFunctionRecursion(t *testing.T) {
	// Same program with an explicit bound in the rule terminates.
	g := mustGround(t, `
n(0).
n(Y) :- n(X), Y = plus(X, 1), Y < 50.
`)
	if got := len(g.AtomsOf("n")); got != 50 {
		t.Errorf("n atoms = %d, want 50", got)
	}
}

func TestGroundUnsafeRule(t *testing.T) {
	p := datalog.MustParse("p(X) :- not q(X).\nq(1).\n")
	_, err := Ground(p, Budget{})
	if err == nil || !strings.Contains(err.Error(), "not restricted") {
		t.Fatalf("expected unsafe-rule error, got %v", err)
	}
	p2 := datalog.MustParse("p(X) :- X != 1.\n")
	_, err = Ground(p2, Budget{})
	if err == nil {
		t.Fatal("expected no-executable-order error")
	}
}

func TestGroundZeroArity(t *testing.T) {
	g := mustGround(t, `
one.
two :- one.
three :- two, not four.
`)
	if g.NumAtoms() != 4 {
		t.Fatalf("atoms = %d, want 4", g.NumAtoms())
	}
	if len(g.Rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(g.Rules))
	}
}

func TestGroundEmptyProgram(t *testing.T) {
	g := mustGround(t, "")
	if g.NumAtoms() != 0 || len(g.Rules) != 0 {
		t.Errorf("empty program grounded to %d atoms, %d rules", g.NumAtoms(), len(g.Rules))
	}
}

func TestGroundComplexHeadTerms(t *testing.T) {
	g := mustGround(t, `
e(1, 2).
pairset(tup(X, Y)) :- e(X, Y).
`)
	want := datalog.Fact{Pred: "pairset", Args: []value.Value{value.Pair(value.Int(1), value.Int(2))}}
	if _, ok := g.Lookup(want); !ok {
		t.Errorf("missing %s", want)
	}
}

func TestGroundMatchComplexArgs(t *testing.T) {
	// A positive atom with a function-term argument is checked, not inverted:
	// p(plus(X,1)) with X bound from d(X).
	g := mustGround(t, `
d(1). d(2).
p(2).
q(X) :- d(X), p(plus(X, 1)).
`)
	got := map[string]bool{}
	for _, id := range g.AtomsOf("q") {
		got[g.Atom(id).Key()] = true
	}
	if len(got) != 1 || !got["q(1)"] {
		t.Errorf("q atoms = %v, want q(1)", got)
	}
}

func TestGroundSharedVarJoin(t *testing.T) {
	g := mustGround(t, `
r(1, a). r(2, b).
s(a, x). s(b, y). s(a, z).
j(X, Z) :- r(X, Y), s(Y, Z).
`)
	got := map[string]bool{}
	for _, id := range g.AtomsOf("j") {
		got[g.Atom(id).Key()] = true
	}
	want := []string{"j(1, x)", "j(1, z)", "j(2, y)"}
	if len(got) != len(want) {
		t.Fatalf("j atoms = %v, want %v", got, want)
	}
	for _, k := range want {
		if !got[k] {
			t.Errorf("missing %s in %v", k, got)
		}
	}
}

func TestGroundPreds(t *testing.T) {
	g := mustGround(t, "b(1). a(X) :- b(X), not c(X).")
	if got := strings.Join(g.Preds(), ","); got != "a,b,c" {
		t.Errorf("Preds = %s", got)
	}
}

func TestGroundRuleBudget(t *testing.T) {
	p := datalog.MustParse(`
d(1). d(2). d(3). d(4). d(5).
p(X, Y, Z) :- d(X), d(Y), d(Z).
`)
	_, err := Ground(p, Budget{MaxRules: 10})
	var be *BudgetError
	if !errors.As(err, &be) || be.What != "rules" {
		t.Fatalf("expected rule BudgetError, got %v", err)
	}
}
