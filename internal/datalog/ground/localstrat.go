package ground

// This file implements local stratification on ground programs. The paper's
// Theorem 3.1 is proved "by induction on the size of the expressions, based
// on a 'local stratification' argument": membership in a set built by a
// complex expression is defined in terms of membership in less complex
// expressions. Operationally, a ground program is locally stratified when no
// cycle of ground-atom dependencies passes through a negative edge; locally
// stratified programs have a two-valued well-founded (and valid) model, so
// LocallyStratified is a sufficient syntactic condition for
// well-definedness that the test suite checks against Engine.WellFounded.

// LocallyStratified reports whether the ground program has no cycle through
// a negative dependency: it computes the strongly connected components of
// the ground-atom dependency graph and rejects any negative edge inside a
// component.
func LocallyStratified(g *Program) bool {
	n := g.NumAtoms()
	adj := make([][]int, n)
	type negEdge struct{ from, to int }
	var negs []negEdge
	for _, r := range g.Rules {
		for _, a := range r.Pos {
			adj[r.Head] = append(adj[r.Head], a)
		}
		for _, a := range r.Neg {
			adj[r.Head] = append(adj[r.Head], a)
			negs = append(negs, negEdge{r.Head, a})
		}
	}
	comp := sccTarjan(n, adj)
	for _, e := range negs {
		if comp[e.from] == comp[e.to] {
			return false
		}
	}
	return true
}

// sccTarjan returns a component id per node (iterative Tarjan, safe for
// large ground programs).
func sccTarjan(n int, adj [][]int) []int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0
	nComp := 0

	type frame struct {
		v  int
		ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{v: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// finished v
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}
