package datalog

import (
	"errors"
	"fmt"

	"algrec/internal/value"
)

// ErrUnbound is returned when a term is evaluated under a binding that does
// not cover one of its variables.
var ErrUnbound = errors.New("datalog: unbound variable in term evaluation")

// Binding maps variables to ground values during rule instantiation.
type Binding map[Var]value.Value

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Builtin is the implementation of an interpreted function symbol.
type Builtin func(args []value.Value) (value.Value, error)

// builtins is the registry of interpreted function symbols. The paper's
// framework allows arbitrary operations from the imported data-type
// specifications (e.g. SUCC and + on nat); this registry is their concrete
// counterpart. All functions are total on the value kinds they accept and
// return an error otherwise.
var builtins = map[string]Builtin{
	"succ":  arith1("succ", func(a int64) int64 { return a + 1 }),
	"pred":  arith1("pred", func(a int64) int64 { return a - 1 }),
	"plus":  arith2("plus", func(a, b int64) int64 { return a + b }),
	"minus": arith2("minus", func(a, b int64) int64 { return a - b }),
	"times": arith2("times", func(a, b int64) int64 { return a * b }),
	"mod": func(args []value.Value) (value.Value, error) {
		a, b, err := twoInts("mod", args)
		if err != nil {
			return nil, err
		}
		if b == 0 {
			return nil, errors.New("datalog: mod by zero")
		}
		return value.Int(a % b), nil
	},
	"tup": func(args []value.Value) (value.Value, error) {
		return value.NewTuple(args...), nil
	},
	"fst": fieldFn("fst", 1),
	"snd": fieldFn("snd", 2),
	"field": func(args []value.Value) (value.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("datalog: field expects 2 arguments, got %d", len(args))
		}
		t, ok := args[0].(value.Tuple)
		if !ok {
			return nil, fmt.Errorf("datalog: field applied to non-tuple %v", args[0])
		}
		i, ok := args[1].(value.Int)
		if !ok {
			return nil, fmt.Errorf("datalog: field index must be an int, got %v", args[1])
		}
		if i < 1 || int(i) > t.Len() {
			return nil, fmt.Errorf("datalog: field index %d out of range for %v", i, t)
		}
		return t.At(int(i) - 1), nil
	},
	"set": func(args []value.Value) (value.Value, error) {
		return value.NewSet(args...), nil
	},
	// Boolean-valued functions: used by the algebra-to-deduction translation
	// (Propositions 5.1/5.4), which compiles a selection test into a single
	// term and the guard literal `term = true`. Named band/bor/bnot because
	// `not` is the negation keyword in rule bodies.
	"band": boolOp2("band", func(a, b bool) bool { return a && b }),
	"bor":  boolOp2("bor", func(a, b bool) bool { return a || b }),
	"bnot": func(args []value.Value) (value.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("datalog: bnot expects 1 argument, got %d", len(args))
		}
		b, ok := args[0].(value.Bool)
		if !ok {
			return nil, fmt.Errorf("datalog: bnot applied to non-bool %v", args[0])
		}
		return value.Bool(!b), nil
	},
	"eq": cmpFn("eq", func(c int) bool { return c == 0 }),
	"ne": cmpFn("ne", func(c int) bool { return c != 0 }),
	"lt": cmpFn("lt", func(c int) bool { return c < 0 }),
	"le": cmpFn("le", func(c int) bool { return c <= 0 }),
	"gt": cmpFn("gt", func(c int) bool { return c > 0 }),
	"ge": cmpFn("ge", func(c int) bool { return c >= 0 }),
	"ismem": func(args []value.Value) (value.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("datalog: ismem expects 2 arguments, got %d", len(args))
		}
		s, ok := args[1].(value.Set)
		if !ok {
			return nil, fmt.Errorf("datalog: ismem applied to non-set %v", args[1])
		}
		return value.Bool(s.Has(args[0])), nil
	},
	"ins": func(args []value.Value) (value.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("datalog: ins expects 2 arguments, got %d", len(args))
		}
		s, ok := args[1].(value.Set)
		if !ok {
			return nil, fmt.Errorf("datalog: ins applied to non-set %v", args[1])
		}
		return s.Insert(args[0]), nil
	},
}

func arith1(name string, f func(int64) int64) Builtin {
	return func(args []value.Value) (value.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("datalog: %s expects 1 argument, got %d", name, len(args))
		}
		a, ok := args[0].(value.Int)
		if !ok {
			return nil, fmt.Errorf("datalog: %s applied to non-int %v", name, args[0])
		}
		return value.Int(f(int64(a))), nil
	}
}

func arith2(name string, f func(a, b int64) int64) Builtin {
	return func(args []value.Value) (value.Value, error) {
		a, b, err := twoInts(name, args)
		if err != nil {
			return nil, err
		}
		return value.Int(f(a, b)), nil
	}
}

func twoInts(name string, args []value.Value) (int64, int64, error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("datalog: %s expects 2 arguments, got %d", name, len(args))
	}
	a, ok := args[0].(value.Int)
	if !ok {
		return 0, 0, fmt.Errorf("datalog: %s applied to non-int %v", name, args[0])
	}
	b, ok := args[1].(value.Int)
	if !ok {
		return 0, 0, fmt.Errorf("datalog: %s applied to non-int %v", name, args[1])
	}
	return int64(a), int64(b), nil
}

func boolOp2(name string, f func(a, b bool) bool) Builtin {
	return func(args []value.Value) (value.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("datalog: %s expects 2 arguments, got %d", name, len(args))
		}
		a, ok := args[0].(value.Bool)
		if !ok {
			return nil, fmt.Errorf("datalog: %s applied to non-bool %v", name, args[0])
		}
		b, ok := args[1].(value.Bool)
		if !ok {
			return nil, fmt.Errorf("datalog: %s applied to non-bool %v", name, args[1])
		}
		return value.Bool(f(bool(a), bool(b))), nil
	}
}

func cmpFn(name string, f func(c int) bool) Builtin {
	return func(args []value.Value) (value.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("datalog: %s expects 2 arguments, got %d", name, len(args))
		}
		return value.Bool(f(args[0].Compare(args[1]))), nil
	}
}

func fieldFn(name string, idx int) Builtin {
	return func(args []value.Value) (value.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("datalog: %s expects 1 argument, got %d", name, len(args))
		}
		t, ok := args[0].(value.Tuple)
		if !ok {
			return nil, fmt.Errorf("datalog: %s applied to non-tuple %v", name, args[0])
		}
		if t.Len() < idx {
			return nil, fmt.Errorf("datalog: %s applied to short tuple %v", name, t)
		}
		return t.At(idx - 1), nil
	}
}

// IsBuiltin reports whether fn is a known interpreted function symbol.
func IsBuiltin(fn string) bool {
	_, ok := builtins[fn]
	return ok
}

// EvalTerm evaluates t under binding b, returning the resulting ground value.
// It returns ErrUnbound (wrapped) if a variable of t is not bound, and an
// error for unknown function symbols or ill-kinded applications.
func EvalTerm(t Term, b Binding) (value.Value, error) {
	return EvalTermFn(t, func(v Var) (value.Value, bool) {
		val, ok := b[v]
		return val, ok
	})
}

// EvalTermFn is EvalTerm with an arbitrary variable lookup; the grounding
// engine uses it with a slice-backed binding to avoid map allocation in the
// instantiation hot path.
func EvalTermFn(t Term, lookup func(Var) (value.Value, bool)) (value.Value, error) {
	switch tt := t.(type) {
	case Var:
		v, ok := lookup(tt)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnbound, tt)
		}
		return v, nil
	case Const:
		return tt.V, nil
	case Apply:
		fn, ok := builtins[tt.Fn]
		if !ok {
			return nil, fmt.Errorf("datalog: unknown function symbol %q", tt.Fn)
		}
		args := make([]value.Value, len(tt.Args))
		for i, a := range tt.Args {
			v, err := EvalTermFn(a, lookup)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return fn(args)
	default:
		panic(fmt.Sprintf("datalog: unknown term %T", t))
	}
}

// EvalCmp evaluates a ground comparison between two values.
func EvalCmp(op CmpOp, l, r value.Value) (bool, error) {
	c := l.Compare(r)
	switch op {
	case OpEq:
		return c == 0, nil
	case OpNe:
		return c != 0, nil
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	case OpGe:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("datalog: unknown comparison operator %v", op)
	}
}

// EvalGroundAtom evaluates every argument term of a under b, producing a Fact.
func EvalGroundAtom(a Atom, b Binding) (Fact, error) {
	args := make([]value.Value, len(a.Args))
	for i, t := range a.Args {
		v, err := EvalTerm(t, b)
		if err != nil {
			return Fact{}, err
		}
		args[i] = v
	}
	return Fact{Pred: a.Pred, Args: args}, nil
}
