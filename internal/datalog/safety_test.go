package datalog

import (
	"strings"
	"testing"
)

func mustRule(t *testing.T, src string) Rule {
	t.Helper()
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if len(p.Rules) != 1 {
		t.Fatalf("parse %q: got %d rules", src, len(p.Rules))
	}
	return p.Rules[0]
}

func TestSafetySafeRules(t *testing.T) {
	safe := []string{
		"p(X) :- q(X).",
		"p(X, Y) :- q(X), r(Y).",
		"p(X) :- q(X), not r(X).",
		"p(Y) :- q(X), Y = plus(X, 1).",
		"p(X) :- X = 3.", // basis b: x = ground expression
		"p(X) :- X = plus(1, 2).",
		"p(X) :- q(X), X != 3.",
		"p(X) :- q(X, Y), not r(Y), X < Y.",
		"p(Z) :- q(X), Y = succ(X), Z = plus(X, Y).", // chained assignments
		"p(X) :- q(Y), X = Y.",                       // rule 4 with variable exp
		"zero :- not one.",                           // no variables at all
	}
	for _, src := range safe {
		if err := CheckRuleSafe(mustRule(t, src)); err != nil {
			t.Errorf("rule %q should be safe: %v", src, err)
		}
	}
}

func TestSafetyUnsafeRules(t *testing.T) {
	unsafe := []string{
		"p(X).",                         // head variable unrestricted
		"p(X) :- not q(X).",             // only negative occurrence
		"p(X) :- q(Y).",                 // head variable free
		"p(X) :- X != 3.",               // disequality restricts nothing
		"p(X) :- q(Y), X = plus(X, 1).", // self-referential assignment
		"p(X, Y) :- q(X), not r(X, Y).",
		"p(X) :- Y = X.", // circular: neither side restricted
	}
	for _, src := range unsafe {
		if err := CheckRuleSafe(mustRule(t, src)); err == nil {
			t.Errorf("rule %q should be unsafe", src)
		}
	}
}

func TestCheckProgramSafe(t *testing.T) {
	good := MustParse("p(X) :- q(X).\nq(1).\n")
	if err := CheckProgramSafe(good); err != nil {
		t.Errorf("program should be safe: %v", err)
	}
	bad := MustParse("p(X) :- q(X).\nr(X) :- not q(X).\n")
	err := CheckProgramSafe(bad)
	if err == nil {
		t.Fatal("program should be unsafe")
	}
	if !strings.Contains(err.Error(), "unsafe rule") {
		t.Errorf("error %q should mention the unsafe rule", err)
	}
}

func TestMakeSafe(t *testing.T) {
	// The paper's Section 4 example: Q(x) :- not R(x) is domain dependent;
	// Proposition 4.2 makes it safe by restricting x to the domain predicate.
	p := MustParse("q(X) :- not r(X).\n")
	sp := MakeSafe(p, "dom")
	want := "q(X) :- dom(X), not r(X).\n"
	if got := sp.String(); got != want {
		t.Errorf("MakeSafe = %q, want %q", got, want)
	}
	if err := CheckProgramSafe(sp); err != nil {
		t.Errorf("MakeSafe result should be safe: %v", err)
	}
	// Already-safe rules are unchanged.
	p2 := MustParse("p(X) :- q(X), not r(X).\n")
	if got := MakeSafe(p2, "dom").String(); got != p2.String() {
		t.Errorf("MakeSafe changed a safe rule: %q", got)
	}
	// Multiple unsafe variables are all guarded, in sorted order.
	p3 := MustParse("p(X, Y) :- not r(Y, X).\n")
	want3 := "p(X, Y) :- dom(X), dom(Y), not r(Y, X).\n"
	if got := MakeSafe(p3, "dom").String(); got != want3 {
		t.Errorf("MakeSafe = %q, want %q", got, want3)
	}
}

func TestDomainFacts(t *testing.T) {
	p := MustParse(`
e(1, 2).
e(2, a).
p(X) :- e(X, Y), Y = plus(X, 3), not q(7).
`)
	fs := DomainFacts(p, "dom")
	var keys []string
	for _, f := range fs {
		keys = append(keys, f.Key())
	}
	got := strings.Join(keys, " ")
	want := "dom(1) dom(2) dom(3) dom(7) dom(a)"
	if got != want {
		t.Errorf("DomainFacts = %q, want %q", got, want)
	}
}

func TestRestrictedVarsFixpointOrder(t *testing.T) {
	// Restriction must propagate regardless of literal order: Z depends on Y
	// which depends on X which comes last.
	r := mustRule(t, "p(Z) :- Z = plus(Y, 1), Y = plus(X, 1), q(X).")
	if err := CheckRuleSafe(r); err != nil {
		t.Errorf("fixpoint restriction failed: %v", err)
	}
}
