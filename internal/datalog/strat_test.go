package datalog

import (
	"errors"
	"testing"
)

func TestStratifyPositive(t *testing.T) {
	p := MustParse(`
edge(1, 2).
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- tc(X, Y), edge(Y, Z).
`)
	s, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if s["edge"] != 0 || s["tc"] != 0 {
		t.Errorf("positive program should be single-stratum: %v", s)
	}
}

func TestStratifyLayered(t *testing.T) {
	p := MustParse(`
node(1).
edge(1, 2).
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- tc(X, Y), edge(Y, Z).
unreachable(X, Y) :- node(X), node(Y), not tc(X, Y).
isolated(X) :- node(X), not connected(X).
connected(X) :- tc(X, Y).
deep(X) :- isolated(X), not unreachable(X, X).
`)
	s, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if !(s["tc"] < s["unreachable"] && s["connected"] < s["isolated"] && s["unreachable"] < s["deep"] && s["isolated"] <= s["deep"]) {
		t.Errorf("strata ordering wrong: %v", s)
	}
	if !IsStratified(p) {
		t.Error("IsStratified = false for stratified program")
	}
}

func TestStratifyWinGame(t *testing.T) {
	// The paper's Example 3 WIN game is the canonical non-stratified program.
	p := MustParse(`
move(a, b).
win(X) :- move(X, Y), not win(Y).
`)
	_, err := Stratify(p)
	var ens ErrNotStratified
	if !errors.As(err, &ens) {
		t.Fatalf("expected ErrNotStratified, got %v", err)
	}
	if ens.Pred != "win" {
		t.Errorf("witness predicate = %s, want win", ens.Pred)
	}
	if IsStratified(p) {
		t.Error("IsStratified = true for win game")
	}
}

func TestStratifyMutualNegation(t *testing.T) {
	p := MustParse(`
p(X) :- d(X), not q(X).
q(X) :- d(X), not p(X).
d(1).
`)
	if IsStratified(p) {
		t.Error("mutual negation should not be stratified")
	}
}

func TestDepGraph(t *testing.T) {
	p := MustParse(`
win(X) :- move(X, Y), not win(Y).
`)
	edges := DepGraph(p)
	if len(edges) != 2 {
		t.Fatalf("got %d edges, want 2: %v", len(edges), edges)
	}
	if edges[0] != (DepEdge{From: "win", To: "move", Negative: false}) {
		t.Errorf("edge 0 = %v", edges[0])
	}
	if edges[1] != (DepEdge{From: "win", To: "win", Negative: true}) {
		t.Errorf("edge 1 = %v", edges[1])
	}
}

func TestStrata(t *testing.T) {
	p := MustParse(`
e(1, 2).
tc(X, Y) :- e(X, Y).
co(X, Y) :- n(X), n(Y), not tc(X, Y).
n(1).
`)
	groups, stratum, err := Strata(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("got %d strata, want 2", len(groups))
	}
	if stratum["co"] != 1 || stratum["tc"] != 0 {
		t.Errorf("stratum assignment wrong: %v", stratum)
	}
	for _, r := range groups[1] {
		if r.Head.Pred != "co" {
			t.Errorf("stratum 1 contains rule for %s", r.Head.Pred)
		}
	}
}
