package datalog

import (
	"strings"
	"testing"

	"algrec/internal/value"
)

func TestParseFactsAndRules(t *testing.T) {
	src := `
% transitive closure
edge(1, 2). edge(2, 3).
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- tc(X, Y), edge(Y, Z).
win(X) :- move(X, Y), not win(Y).
big(Y) :- num(X), Y = plus(X, 10), Y >= 12.
str("hello world").
sym(paris, "Tel Aviv").
boolean(true). boolean(false).
zero :- not one.
`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 11 {
		t.Fatalf("got %d rules, want 11", len(p.Rules))
	}
	if !p.Rules[0].IsFact() {
		t.Error("edge(1,2) should be a fact")
	}
	if got := p.Rules[2].String(); got != "tc(X, Y) :- edge(X, Y)." {
		t.Errorf("rule 2 prints as %q", got)
	}
	if got := p.Rules[4].String(); got != "win(X) :- move(X, Y), not win(Y)." {
		t.Errorf("win rule prints as %q", got)
	}
	if got := p.Rules[5].String(); got != "big(Y) :- num(X), Y = plus(X, 10), Y >= 12." {
		t.Errorf("big rule prints as %q", got)
	}
	if got := p.Rules[10].String(); got != "zero :- not one." {
		t.Errorf("zero-arity rule prints as %q", got)
	}
	// Constants carried the right values.
	f := p.Rules[6].Head
	if c, ok := f.Args[0].(Const); !ok || !value.Equal(c.V, value.String("hello world")) {
		t.Errorf("string constant parsed as %v", f.Args[0])
	}
	b := p.Rules[8].Head
	if c, ok := b.Args[0].(Const); !ok || !value.Equal(c.V, value.True) {
		t.Errorf("boolean constant parsed as %v", b.Args[0])
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"edge(1, 2).\n",
		"tc(X, Z) :- tc(X, Y), edge(Y, Z).\n",
		"win(X) :- move(X, Y), not win(Y).\n",
		"p(X) :- d(X), X != 3.\n",
		"q(Y) :- d(X), Y = plus(X, 1), Y < 10.\n",
		"r(X) :- d(X), fst(X) = 1.\n",
		"t(X) :- d(X), X = tup(1, a).\n",
		"neg(-5).\n",
	}
	for _, src := range srcs {
		p, err := ParseProgram(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		if got := p.String(); got != src {
			t.Errorf("round trip: %q -> %q", src, got)
			continue
		}
		// Re-parse the printed form and print again: must be a fixpoint.
		p2, err := ParseProgram(p.String())
		if err != nil {
			t.Errorf("re-parse %q: %v", p.String(), err)
			continue
		}
		if p2.String() != p.String() {
			t.Errorf("print not stable: %q vs %q", p2.String(), p.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"p(X)", "expected '.' or ':-'"},
		{"p(X) :- q(X)", "expected '.'"},
		{"p(X :- q(X).", "expected ')'"},
		{"p(X) :- unknownfn(X) = Y.", "unknown function symbol"},
		{"p(X) :- Y = unknownfn(X).", "unknown function symbol"},
		{`p("unterminated`, "unterminated string"},
		{"p(-).", "expected digit after '-'"},
		{"p(X) : q(X).", "unexpected ':'"},
		{"p(!X).", "unexpected '!'"},
		{"p(#).", "unexpected character"},
		{"p(X) :- q(X), .", "expected a term"},
		{"1(X).", "expected identifier"},
	}
	for _, c := range cases {
		_, err := ParseProgram(c.src)
		if err == nil {
			t.Errorf("parse %q: expected error containing %q, got nil", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("parse %q: error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseTupleAndSetLiterals(t *testing.T) {
	p := MustParse(`
pair((a, 1)).
nested(((1, 2), 3)).
sets({1, 2}, {}).
mix(X, (X, {a})) :- d(X).
d(1).
`)
	f0, err := EvalGroundAtom(p.Rules[0].Head, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(f0.Args[0], value.Pair(value.String("a"), value.Int(1))) {
		t.Errorf("pair constant = %v", f0.Args[0])
	}
	f1, err := EvalGroundAtom(p.Rules[1].Head, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := value.Pair(value.Pair(value.Int(1), value.Int(2)), value.Int(3))
	if !value.Equal(f1.Args[0], want) {
		t.Errorf("nested tuple = %v", f1.Args[0])
	}
	f2, err := EvalGroundAtom(p.Rules[2].Head, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(f2.Args[0], value.NewSet(value.Int(1), value.Int(2))) || !value.Equal(f2.Args[1], value.EmptySet) {
		t.Errorf("set literals = %v", f2.Args)
	}
	// Tuple literals may contain variables (they are tup(...) applications).
	b := Binding{"X": value.Int(7)}
	f3, err := EvalGroundAtom(p.Rules[3].Head, b)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(f3.Args[1], value.Pair(value.Int(7), value.NewSet(value.String("a")))) {
		t.Errorf("tuple with variable = %v", f3.Args[1])
	}
}

// TestFactRoundTripThroughPrinting: facts with tuple and set constants print
// and re-parse to the same values — required for algtrans output fidelity.
func TestFactRoundTripThroughPrinting(t *testing.T) {
	p := &Program{}
	p.AddFacts(
		Fact{Pred: "m", Args: []value.Value{value.Pair(value.String("a"), value.Int(1))}},
		Fact{Pred: "s", Args: []value.Value{value.NewSet(value.Int(1), value.NewTuple(value.Int(2), value.Int(3)))}},
		Fact{Pred: "u", Args: []value.Value{value.NewTuple()}},
	)
	printed := p.String()
	p2, err := ParseProgram(printed)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, printed)
	}
	for i := range p.Rules {
		f1, err1 := EvalGroundAtom(p.Rules[i].Head, nil)
		f2, err2 := EvalGroundAtom(p2.Rules[i].Head, nil)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval: %v %v", err1, err2)
		}
		if f1.Key() != f2.Key() {
			t.Errorf("round trip changed fact: %s vs %s", f1.Key(), f2.Key())
		}
	}
}

func TestParseComments(t *testing.T) {
	p, err := ParseProgram("% nothing here\n% more\np(1). % trailing\n%final")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 {
		t.Fatalf("got %d rules, want 1", len(p.Rules))
	}
}

func TestEvalTerm(t *testing.T) {
	b := Binding{"X": value.Int(4), "T": value.NewTuple(value.Int(7), value.String("a"))}
	cases := []struct {
		t    Term
		want value.Value
	}{
		{CInt(3), value.Int(3)},
		{Var("X"), value.Int(4)},
		{Apply{Fn: "plus", Args: []Term{Var("X"), CInt(1)}}, value.Int(5)},
		{Apply{Fn: "succ", Args: []Term{Var("X")}}, value.Int(5)},
		{Apply{Fn: "times", Args: []Term{Var("X"), Var("X")}}, value.Int(16)},
		{Apply{Fn: "mod", Args: []Term{Var("X"), CInt(3)}}, value.Int(1)},
		{Apply{Fn: "fst", Args: []Term{Var("T")}}, value.Int(7)},
		{Apply{Fn: "snd", Args: []Term{Var("T")}}, value.String("a")},
		{Apply{Fn: "field", Args: []Term{Var("T"), CInt(2)}}, value.String("a")},
		{Apply{Fn: "tup", Args: []Term{CInt(1), CInt(2)}}, value.Pair(value.Int(1), value.Int(2))},
		{Apply{Fn: "set", Args: []Term{CInt(2), CInt(1), CInt(2)}}, value.NewSet(value.Int(1), value.Int(2))},
		{Apply{Fn: "ins", Args: []Term{CInt(3), Apply{Fn: "set", Args: []Term{CInt(1)}}}}, value.NewSet(value.Int(1), value.Int(3))},
	}
	for _, c := range cases {
		got, err := EvalTerm(c.t, b)
		if err != nil {
			t.Errorf("EvalTerm(%s): %v", c.t, err)
			continue
		}
		if !value.Equal(got, c.want) {
			t.Errorf("EvalTerm(%s) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestEvalTermErrors(t *testing.T) {
	cases := []Term{
		Var("Unbound"),
		Apply{Fn: "nosuch", Args: []Term{CInt(1)}},
		Apply{Fn: "plus", Args: []Term{CInt(1)}},
		Apply{Fn: "plus", Args: []Term{CInt(1), CSym("a")}},
		Apply{Fn: "mod", Args: []Term{CInt(1), CInt(0)}},
		Apply{Fn: "fst", Args: []Term{CInt(1)}},
		Apply{Fn: "field", Args: []Term{Apply{Fn: "tup", Args: []Term{CInt(1)}}, CInt(5)}},
		Apply{Fn: "ins", Args: []Term{CInt(1), CInt(2)}},
	}
	for _, tt := range cases {
		if _, err := EvalTerm(tt, Binding{}); err == nil {
			t.Errorf("EvalTerm(%s): expected error", tt)
		}
	}
}

func TestEvalCmp(t *testing.T) {
	one, two := value.Int(1), value.Int(2)
	cases := []struct {
		op   CmpOp
		l, r value.Value
		want bool
	}{
		{OpEq, one, one, true}, {OpEq, one, two, false},
		{OpNe, one, two, true}, {OpNe, one, one, false},
		{OpLt, one, two, true}, {OpLt, two, one, false},
		{OpLe, one, one, true}, {OpLe, two, one, false},
		{OpGt, two, one, true}, {OpGt, one, one, false},
		{OpGe, one, one, true}, {OpGe, one, two, false},
	}
	for _, c := range cases {
		got, err := EvalCmp(c.op, c.l, c.r)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("EvalCmp(%v, %v, %v) = %v, want %v", c.op, c.l, c.r, got, c.want)
		}
	}
}

func TestProgramPredSets(t *testing.T) {
	p := MustParse(`
edge(1, 2).
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- tc(X, Y), edge(Y, Z).
top(X) :- node(X), not tc(X, X).
node(1).
`)
	if got, want := strings.Join(p.Preds(), ","), "edge,node,tc,top"; got != want {
		t.Errorf("Preds = %s, want %s", got, want)
	}
	if got, want := strings.Join(p.IDB(), ","), "tc,top"; got != want {
		t.Errorf("IDB = %s, want %s", got, want)
	}
	if got, want := strings.Join(p.EDB(), ","), "edge,node"; got != want {
		t.Errorf("EDB = %s, want %s", got, want)
	}
}

func TestFactKeyAndSort(t *testing.T) {
	fs := []Fact{
		{Pred: "q", Args: []value.Value{value.Int(1)}},
		{Pred: "p", Args: []value.Value{value.Int(2)}},
		{Pred: "p", Args: []value.Value{value.Int(1)}},
		{Pred: "p", Args: []value.Value{value.Int(1), value.Int(0)}},
	}
	SortFacts(fs)
	want := []string{"p(1)", "p(1, 0)", "p(2)", "q(1)"}
	for i, f := range fs {
		if f.Key() != want[i] {
			t.Errorf("sorted[%d] = %s, want %s", i, f.Key(), want[i])
		}
	}
}

func TestSubst(t *testing.T) {
	b := map[Var]Term{"X": CInt(1)}
	r := Rule{
		Head: Atom{Pred: "p", Args: []Term{Var("X"), Var("Y")}},
		Body: []Literal{Pos("q", Apply{Fn: "succ", Args: []Term{Var("X")}}), Cmp(OpNe, Var("X"), Var("Y"))},
	}
	h := SubstAtom(r.Head, b)
	if h.String() != "p(1, Y)" {
		t.Errorf("SubstAtom = %s", h)
	}
	l0 := SubstLiteral(r.Body[0], b)
	if l0.String() != "q(succ(1))" {
		t.Errorf("SubstLiteral = %s", l0)
	}
	l1 := SubstLiteral(r.Body[1], b)
	if l1.String() != "1 != Y" {
		t.Errorf("SubstLiteral = %s", l1)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := MustParse("p(X) :- q(X).\n")
	q := p.Clone()
	q.Rules[0].Head.Pred = "changed"
	q.Rules[0].Body[0] = Pos("other", Var("X"))
	if p.Rules[0].Head.Pred != "p" || p.Rules[0].Body[0].String() != "q(X)" {
		t.Error("Clone shares mutable state with original")
	}
}

func TestAddFacts(t *testing.T) {
	p := &Program{}
	p.AddFacts(Fact{Pred: "e", Args: []value.Value{value.Int(1), value.Int(2)}})
	if len(p.Rules) != 1 || p.Rules[0].String() != "e(1, 2)." {
		t.Errorf("AddFacts produced %v", p.Rules)
	}
}
