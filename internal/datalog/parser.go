package datalog

import (
	"fmt"
	"strconv"
	"strings"

	"algrec/internal/value"
)

// ParseProgram parses a deductive program in the concrete syntax:
//
//	% transitive closure
//	edge(1, 2).  edge(2, 3).
//	tc(X, Y) :- edge(X, Y).
//	tc(X, Z) :- tc(X, Y), edge(Y, Z).
//	win(X) :- move(X, Y), not win(Y).
//	big(Y)  :- num(X), Y = plus(X, 10), Y >= 12.
//
// Variables are uppercase identifiers, symbols are lowercase identifiers,
// integers and double-quoted strings are constants, and lowercase identifiers
// applied to arguments in term position are interpreted function symbols
// (see funcs.go). `not` negates a body atom.
func ParseProgram(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.kind != tokEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	return prog, nil
}

// MustParse parses src and panics on error; intended for tests and examples.
func MustParse(src string) *Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokVar
	tokInt
	tokString
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokPeriod
	tokImplies // :-
	tokEq
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokInt:
		return "integer"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokPeriod:
		return "'.'"
	case tokImplies:
		return "':-'"
	case tokEq:
		return "'='"
	case tokNe:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	b := l.src[l.pos]
	l.pos++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

func (l *lexer) errf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) lex() (token, error) {
	for {
		b, ok := l.peekByte()
		if !ok {
			return token{kind: tokEOF, line: l.line, col: l.col}, nil
		}
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			l.advance()
			continue
		case b == '%':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
			continue
		}
		break
	}
	line, col := l.line, l.col
	b := l.advance()
	switch {
	case b == '(':
		return token{tokLParen, "(", line, col}, nil
	case b == ')':
		return token{tokRParen, ")", line, col}, nil
	case b == '{':
		return token{tokLBrace, "{", line, col}, nil
	case b == '}':
		return token{tokRBrace, "}", line, col}, nil
	case b == ',':
		return token{tokComma, ",", line, col}, nil
	case b == '.':
		return token{tokPeriod, ".", line, col}, nil
	case b == '=':
		return token{tokEq, "=", line, col}, nil
	case b == '!':
		if c, ok := l.peekByte(); ok && c == '=' {
			l.advance()
			return token{tokNe, "!=", line, col}, nil
		}
		return token{}, l.errf(line, col, "unexpected '!'")
	case b == '<':
		if c, ok := l.peekByte(); ok && c == '=' {
			l.advance()
			return token{tokLe, "<=", line, col}, nil
		}
		return token{tokLt, "<", line, col}, nil
	case b == '>':
		if c, ok := l.peekByte(); ok && c == '=' {
			l.advance()
			return token{tokGe, ">=", line, col}, nil
		}
		return token{tokGt, ">", line, col}, nil
	case b == ':':
		if c, ok := l.peekByte(); ok && c == '-' {
			l.advance()
			return token{tokImplies, ":-", line, col}, nil
		}
		return token{}, l.errf(line, col, "unexpected ':'")
	case b == '"':
		// Collect the raw quoted literal and delegate unescaping to
		// strconv.Unquote, the exact inverse of the strconv.Quote used when
		// printing string values — whatever the printer emits, the lexer
		// reads back.
		var raw strings.Builder
		raw.WriteByte('"')
		for {
			c, ok := l.peekByte()
			if !ok || c == '\n' {
				return token{}, l.errf(line, col, "unterminated string literal")
			}
			l.advance()
			raw.WriteByte(c)
			if c == '\\' {
				e, ok := l.peekByte()
				if !ok {
					return token{}, l.errf(line, col, "unterminated string escape")
				}
				l.advance()
				raw.WriteByte(e)
				continue
			}
			if c == '"' {
				s, err := strconv.Unquote(raw.String())
				if err != nil {
					return token{}, l.errf(line, col, "bad string literal %s: %v", raw.String(), err)
				}
				return token{tokString, s, line, col}, nil
			}
		}
	case b == '-' || (b >= '0' && b <= '9'):
		var sb strings.Builder
		sb.WriteByte(b)
		if b == '-' {
			c, ok := l.peekByte()
			if !ok || c < '0' || c > '9' {
				return token{}, l.errf(line, col, "expected digit after '-'")
			}
		}
		for {
			c, ok := l.peekByte()
			if !ok || c < '0' || c > '9' {
				break
			}
			sb.WriteByte(l.advance())
		}
		return token{tokInt, sb.String(), line, col}, nil
	case isIdentStart(b):
		var sb strings.Builder
		sb.WriteByte(b)
		for {
			c, ok := l.peekByte()
			if !ok || !isIdentPart(c) {
				break
			}
			sb.WriteByte(l.advance())
		}
		text := sb.String()
		if b >= 'A' && b <= 'Z' {
			return token{tokVar, text, line, col}, nil
		}
		return token{tokIdent, text, line, col}, nil
	default:
		return token{}, l.errf(line, col, "unexpected character %q", string(b))
	}
}

func isIdentStart(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || b == '_'
}

func isIdentPart(b byte) bool {
	return isIdentStart(b) || (b >= '0' && b <= '9')
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) next() error {
	t, err := p.lex.lex()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("expected %s, got %s %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.next(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) parseRule() (Rule, error) {
	head, err := p.parseAtom()
	if err != nil {
		return Rule{}, err
	}
	r := Rule{Head: head}
	switch p.tok.kind {
	case tokPeriod:
		if err := p.next(); err != nil {
			return Rule{}, err
		}
		return r, nil
	case tokImplies:
		if err := p.next(); err != nil {
			return Rule{}, err
		}
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return Rule{}, err
			}
			r.Body = append(r.Body, lit)
			if p.tok.kind == tokComma {
				if err := p.next(); err != nil {
					return Rule{}, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokPeriod); err != nil {
			return Rule{}, err
		}
		return r, nil
	default:
		return Rule{}, p.errf("expected '.' or ':-' after rule head, got %s %q", p.tok.kind, p.tok.text)
	}
}

// parseAtom parses pred or pred(t1, ..., tn) where pred is a lowercase
// identifier.
func (p *parser) parseAtom() (Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return Atom{}, err
	}
	a := Atom{Pred: name.text}
	if p.tok.kind != tokLParen {
		return a, nil
	}
	if err := p.next(); err != nil {
		return Atom{}, err
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.tok.kind == tokComma {
			if err := p.next(); err != nil {
				return Atom{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return Atom{}, err
	}
	return a, nil
}

func (p *parser) parseTerm() (Term, error) {
	switch p.tok.kind {
	case tokLParen:
		// Tuple literal (t1, ..., tn) — sugar for tup(t1, ..., tn), needed
		// so printed tuple constants re-parse.
		if err := p.next(); err != nil {
			return nil, err
		}
		app := Apply{Fn: "tup"}
		for p.tok.kind != tokRParen {
			t, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			app.Args = append(app.Args, t)
			if p.tok.kind == tokComma {
				if err := p.next(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return app, nil
	case tokLBrace:
		// Set literal {t1, ..., tn} — sugar for set(t1, ..., tn).
		if err := p.next(); err != nil {
			return nil, err
		}
		app := Apply{Fn: "set"}
		for p.tok.kind != tokRBrace {
			t, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			app.Args = append(app.Args, t)
			if p.tok.kind == tokComma {
				if err := p.next(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
		return app, nil
	case tokVar:
		v := Var(p.tok.text)
		if err := p.next(); err != nil {
			return nil, err
		}
		return v, nil
	case tokInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q: %v", p.tok.text, err)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return Const{V: value.Int(n)}, nil
	case tokString:
		s := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		return Const{V: value.String(s)}, nil
	case tokIdent:
		name := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		switch name {
		case "true":
			return Const{V: value.True}, nil
		case "false":
			return Const{V: value.False}, nil
		}
		if p.tok.kind != tokLParen {
			return Const{V: value.String(name)}, nil
		}
		if !IsBuiltin(name) {
			return nil, p.errf("unknown function symbol %q in term position", name)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		app := Apply{Fn: name}
		for {
			t, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			app.Args = append(app.Args, t)
			if p.tok.kind == tokComma {
				if err := p.next(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return app, nil
	default:
		return nil, p.errf("expected a term, got %s %q", p.tok.kind, p.tok.text)
	}
}

// parseLiteral parses one body literal: `not atom`, an atom, or a comparison
// between terms. The ambiguity between `p(X)` as an atom and as a function
// term is resolved by lookahead: an identifier application followed by a
// comparison operator is a term, otherwise it is an atom.
func (p *parser) parseLiteral() (Literal, error) {
	if p.tok.kind == tokIdent && p.tok.text == "not" {
		if err := p.next(); err != nil {
			return nil, err
		}
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return LitAtom{Neg: true, Atom: a}, nil
	}
	// Lowercase identifier: could be an atom or a term on the left of a
	// comparison. Parse the application generically and decide afterwards.
	if p.tok.kind == tokIdent {
		name := p.tok.text
		line, col := p.tok.line, p.tok.col
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		if op, isCmp := p.cmpOp(); isCmp {
			// It was really a term.
			var l Term
			if len(a.Args) == 0 {
				switch name {
				case "true":
					l = Const{V: value.True}
				case "false":
					l = Const{V: value.False}
				default:
					l = Const{V: value.String(name)}
				}
			} else {
				if !IsBuiltin(name) {
					return nil, fmt.Errorf("%d:%d: unknown function symbol %q on left of comparison", line, col, name)
				}
				l = Apply{Fn: name, Args: a.Args}
			}
			if err := p.next(); err != nil {
				return nil, err
			}
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			return LitCmp{Op: op, L: l, R: r}, nil
		}
		return LitAtom{Atom: a}, nil
	}
	// Otherwise the literal must be a comparison whose left side is a
	// variable or constant term.
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	op, isCmp := p.cmpOp()
	if !isCmp {
		return nil, p.errf("expected comparison operator after term %s", l)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	r, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return LitCmp{Op: op, L: l, R: r}, nil
}

func (p *parser) cmpOp() (CmpOp, bool) {
	switch p.tok.kind {
	case tokEq:
		return OpEq, true
	case tokNe:
		return OpNe, true
	case tokLt:
		return OpLt, true
	case tokLe:
		return OpLe, true
	case tokGt:
		return OpGt, true
	case tokGe:
		return OpGe, true
	default:
		return 0, false
	}
}
