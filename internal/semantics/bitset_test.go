package semantics

import (
	"math/rand"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if len(b) != 3 {
		t.Fatalf("words = %d, want 3", len(b))
	}
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		if b.Get(i) {
			t.Errorf("fresh bitset has bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := b.Popcount(); got != 6 {
		t.Errorf("Popcount = %d, want 6", got)
	}
	b.Unset(64)
	if b.Get(64) || b.Popcount() != 5 {
		t.Errorf("Unset(64) failed: get=%v pop=%d", b.Get(64), b.Popcount())
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 1, 63, 65, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v (increasing order)", got, want)
		}
	}
	b.ClearAll()
	if b.Popcount() != 0 {
		t.Error("ClearAll left bits set")
	}
}

// TestBitsetEqualLengthMismatch is the regression test for the old sameSet,
// which compared only the shorter prefix of two []bool vectors: Equal must
// treat a length mismatch as inequality.
func TestBitsetEqualLengthMismatch(t *testing.T) {
	a := NewBitset(64)
	b := NewBitset(128)
	if a.Equal(b) {
		t.Error("bitsets of different lengths compare equal")
	}
	if b.Equal(a) {
		t.Error("Equal is not symmetric on length mismatch")
	}
	var empty Bitset
	if !empty.Equal(Bitset{}) {
		t.Error("two empty bitsets should be equal")
	}
	c := NewBitset(128)
	if !b.Equal(c) {
		t.Error("equal-length zero bitsets should be equal")
	}
	c.Set(127)
	if b.Equal(c) {
		t.Error("bitsets differing in the last bit compare equal")
	}
}

func TestBitsetWordOps(t *testing.T) {
	const n = 200
	a, b := NewBitset(n), NewBitset(n)
	r := rand.New(rand.NewSource(7))
	av, bv := make([]bool, n), make([]bool, n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			a.Set(i)
			av[i] = true
		}
		if r.Intn(2) == 0 {
			b.Set(i)
			bv[i] = true
		}
	}
	check := func(name string, got Bitset, want func(i int) bool) {
		t.Helper()
		for i := 0; i < n; i++ {
			if got.Get(i) != want(i) {
				t.Fatalf("%s: bit %d = %v, want %v", name, i, got.Get(i), want(i))
			}
		}
	}
	and := NewBitset(n)
	and.CopyFrom(a)
	and.And(b)
	check("And", and, func(i int) bool { return av[i] && bv[i] })
	andNot := NewBitset(n)
	andNot.CopyFrom(a)
	andNot.AndNot(b)
	check("AndNot", andNot, func(i int) bool { return av[i] && !bv[i] })
	or := NewBitset(n)
	or.CopyFrom(a)
	or.Or(b)
	check("Or", or, func(i int) bool { return av[i] || bv[i] })
	orNot := NewBitset(n)
	orNot.CopyFrom(a)
	orNot.OrNot(b)
	orNot.Trim(n)
	check("OrNot+Trim", orNot, func(i int) bool { return av[i] || !bv[i] })
	// Trim must have cleared the tail bits so Popcount stays exact.
	wantPop := 0
	for i := 0; i < n; i++ {
		if av[i] || !bv[i] {
			wantPop++
		}
	}
	if got := orNot.Popcount(); got != wantPop {
		t.Errorf("Popcount after OrNot+Trim = %d, want %d", got, wantPop)
	}
}

func TestBitsetTrimBoundaries(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 127, 128} {
		b := NewBitset(n)
		b.OrNot(NewBitset(n)) // all ones, including tail junk
		b.Trim(n)
		if got := b.Popcount(); got != n {
			t.Errorf("n=%d: Popcount after Trim = %d, want %d", n, got, n)
		}
	}
}
