package semantics

import (
	"errors"
	"fmt"

	"algrec/internal/datalog/ground"
)

// Engine evaluates a ground program under the different semantics. It
// precomputes occurrence indexes so each least-fixpoint pass runs in time
// linear in the size of the ground program.
type Engine struct {
	g      *ground.Program
	posOcc [][]int // atom id -> indices of rules where it occurs positively
	negOcc [][]int // atom id -> indices of rules where it occurs negatively
	hasNeg bool
}

// NewEngine builds an engine for the ground program.
func NewEngine(g *ground.Program) *Engine {
	e := &Engine{
		g:      g,
		posOcc: make([][]int, g.NumAtoms()),
		negOcc: make([][]int, g.NumAtoms()),
	}
	for ri, r := range g.Rules {
		for _, a := range r.Pos {
			e.posOcc[a] = append(e.posOcc[a], ri)
		}
		for _, a := range r.Neg {
			e.negOcc[a] = append(e.negOcc[a], ri)
			e.hasNeg = true
		}
	}
	return e
}

// Ground returns the engine's ground program.
func (e *Engine) Ground() *ground.Program { return e.g }

// lfp computes the least fixpoint of the positive parts of the enabled rules:
// an atom is derived when some enabled rule has all positive body atoms
// derived (negative literals are ignored; callers encode them in enabled).
// seed atoms are derived unconditionally. The returned slice is indexed by
// atom id.
func (e *Engine) lfp(enabled func(ruleIdx int) bool, seed []bool) []bool {
	derived := make([]bool, e.g.NumAtoms())
	missing := make([]int, len(e.g.Rules))
	var queue []int
	deriveAtom := func(a int) {
		if derived[a] {
			return
		}
		derived[a] = true
		queue = append(queue, a)
	}
	for ri, r := range e.g.Rules {
		if !enabled(ri) {
			missing[ri] = -1
			continue
		}
		missing[ri] = len(r.Pos)
		if missing[ri] == 0 {
			deriveAtom(r.Head)
		}
	}
	if seed != nil {
		for a, ok := range seed {
			if ok {
				deriveAtom(a)
			}
		}
	}
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ri := range e.posOcc[a] {
			if missing[ri] <= 0 {
				continue
			}
			missing[ri]--
			if missing[ri] == 0 {
				deriveAtom(e.g.Rules[ri].Head)
			}
		}
	}
	return derived
}

// gamma computes Γ(J): the least fixpoint of the program where a negative
// literal ¬a holds iff a ∉ J. Γ is the antimonotone operator whose
// alternating iteration yields the well-founded model, and which the paper's
// Section 2.2 uses to describe the valid-model computation ("only facts not
// in T are allowed to be used negatively").
func (e *Engine) gamma(j []bool) []bool {
	return e.lfp(func(ri int) bool {
		for _, a := range e.g.Rules[ri].Neg {
			if j[a] {
				return false
			}
		}
		return true
	}, nil)
}

// ErrNotPositive is returned by Minimal and MinimalNaive for programs with
// negative literals.
var ErrNotPositive = errors.New("semantics: program is not positive (has negative literals)")

// Minimal computes the minimal model of a positive ground program by the
// semi-naive least fixpoint.
func (e *Engine) Minimal() (*Interp, error) {
	if e.hasNeg {
		return nil, ErrNotPositive
	}
	derived := e.lfp(func(int) bool { return true }, nil)
	return e.twoValued(derived), nil
}

// MinimalNaive computes the minimal model of a positive ground program by
// naive iteration (full re-application of all rules each round). It exists
// as the baseline for the semi-naive benchmark (experiment P1).
func (e *Engine) MinimalNaive() (*Interp, error) {
	if e.hasNeg {
		return nil, ErrNotPositive
	}
	derived := make([]bool, e.g.NumAtoms())
	for {
		changed := false
		for _, r := range e.g.Rules {
			ok := true
			for _, a := range r.Pos {
				if !derived[a] {
					ok = false
					break
				}
			}
			if ok && !derived[r.Head] {
				derived[r.Head] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return e.twoValued(derived), nil
}

func (e *Engine) twoValued(derived []bool) *Interp {
	in := NewInterp(e.g, False)
	for a, ok := range derived {
		if ok {
			in.Set(a, True)
		}
	}
	return in
}

// Inflationary computes the inflationary fixpoint semantics: starting from
// the database facts (bodyless rules — the given structure, step 0), each
// step fires every rule whose positive body is already derived and whose
// negative body atoms are *not derived so far* (at the start of the step),
// accumulating heads. It returns the model and the number of steps to
// convergence after step 0 (used by the Proposition 5.2 step-index bound,
// whose construction likewise places facts at index 0).
func (e *Engine) Inflationary() (*Interp, int) {
	cur := make([]bool, e.g.NumAtoms())
	for _, r := range e.g.Rules {
		if len(r.Pos) == 0 && len(r.Neg) == 0 {
			cur[r.Head] = true
		}
	}
	steps := 0
	for {
		var added []int
		for _, r := range e.g.Rules {
			if cur[r.Head] {
				continue
			}
			ok := true
			for _, a := range r.Pos {
				if !cur[a] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, a := range r.Neg {
				if cur[a] {
					ok = false
					break
				}
			}
			if ok {
				added = append(added, r.Head)
			}
		}
		newAny := false
		for _, a := range added {
			if !cur[a] {
				cur[a] = true
				newAny = true
			}
		}
		if !newAny {
			break
		}
		steps++
	}
	return e.twoValued(cur), steps
}

// WellFounded computes the well-founded model by the alternating fixpoint:
// T_{k+1} = Γ(Γ(T_k)) ascending from ∅, with U = Γ(T) the final upper bound.
// True atoms are T, false atoms are those outside U, the rest are undefined.
func (e *Engine) WellFounded() *Interp {
	t := make([]bool, e.g.NumAtoms())
	var u []bool
	for {
		u = e.gamma(t)
		t2 := e.gamma(u)
		if sameSet(t, t2) {
			break
		}
		t = t2
	}
	in := NewInterp(e.g, Undef)
	for a := range t {
		switch {
		case t[a]:
			in.Set(a, True)
		case !u[a]:
			in.Set(a, False)
		}
	}
	return in
}

// Valid computes the valid model by the iterative procedure of the paper's
// Section 2.2, kept deliberately close to the prose: starting with all facts
// undefined, repeatedly (i) find every fact derivable in a computation that
// uses negatively only facts not currently true — facts not so derivable are
// certainly false; (ii) derive new true facts using negatively only the
// certainly-false facts; until no more true facts appear.
func (e *Engine) Valid() *Interp {
	n := e.g.NumAtoms()
	t := make([]bool, n) // certainly true
	f := make([]bool, n) // certainly false
	for {
		// (i) possible facts: derivations may use ¬a only when a ∉ T.
		poss := e.gamma(t)
		for a := 0; a < n; a++ {
			if !poss[a] {
				f[a] = true
			}
		}
		// (ii) new true facts: derivations start from T and may use ¬a only
		// when a is certainly false.
		t2 := e.lfp(func(ri int) bool {
			for _, a := range e.g.Rules[ri].Neg {
				if !f[a] {
					return false
				}
			}
			return true
		}, t)
		if sameSet(t, t2) {
			break
		}
		t = t2
	}
	in := NewInterp(e.g, Undef)
	for a := 0; a < n; a++ {
		switch {
		case t[a]:
			in.Set(a, True)
		case f[a]:
			in.Set(a, False)
		}
	}
	return in
}

// Stratified evaluates the program stratum by stratum: the minimal model of
// each stratum is computed with negative literals resolved against the
// completed lower strata. stratumOf maps each predicate to its stratum; it
// comes from datalog.Stratify on the non-ground program.
func (e *Engine) Stratified(stratumOf map[string]int) (*Interp, error) {
	max := 0
	for _, s := range stratumOf {
		if s > max {
			max = s
		}
	}
	headStratum := make([]int, len(e.g.Rules))
	for ri, r := range e.g.Rules {
		s, ok := stratumOf[e.g.Atom(r.Head).Pred]
		if !ok {
			return nil, fmt.Errorf("semantics: predicate %s has no stratum", e.g.Atom(r.Head).Pred)
		}
		headStratum[ri] = s
		for _, a := range r.Neg {
			ns, ok := stratumOf[e.g.Atom(a).Pred]
			if !ok {
				return nil, fmt.Errorf("semantics: predicate %s has no stratum", e.g.Atom(a).Pred)
			}
			if ns >= s {
				return nil, fmt.Errorf("semantics: not a stratification: %s (stratum %d) negated in a rule for stratum %d", e.g.Atom(a).Pred, ns, s)
			}
		}
	}
	derived := make([]bool, e.g.NumAtoms())
	for s := 0; s <= max; s++ {
		stratum := s
		derived = e.lfp(func(ri int) bool {
			if headStratum[ri] > stratum {
				return false
			}
			for _, a := range e.g.Rules[ri].Neg {
				if derived[a] {
					return false
				}
			}
			return true
		}, derived)
	}
	return e.twoValued(derived), nil
}

// ErrTooManyUndef is returned by StableModels when the residual left by the
// well-founded model is larger than the caller's bound.
var ErrTooManyUndef = errors.New("semantics: too many undefined atoms for stable-model search")

// StableModels enumerates all stable models (Gelfond–Lifschitz) of the ground
// program. It first computes the well-founded model — which every stable
// model extends — then searches assignments of the undefined atoms,
// returning one two-valued Interp per stable model, in a deterministic
// order. If more than maxUndef atoms are undefined it returns
// ErrTooManyUndef rather than attempting an exponential search.
func (e *Engine) StableModels(maxUndef int) ([]*Interp, error) {
	wf := e.WellFounded()
	undef := wf.UndefAtoms()
	if len(undef) > maxUndef {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyUndef, len(undef), maxUndef)
	}
	base := make([]bool, e.g.NumAtoms())
	for a := 0; a < e.g.NumAtoms(); a++ {
		if wf.Truth(a) == True {
			base[a] = true
		}
	}
	var models []*Interp
	n := len(undef)
	total := 1 << n
	for mask := 0; mask < total; mask++ {
		cand := make([]bool, len(base))
		copy(cand, base)
		for i, a := range undef {
			if mask&(1<<i) != 0 {
				cand[a] = true
			}
		}
		if e.isStable(cand) {
			models = append(models, e.twoValued(cand))
		}
	}
	return models, nil
}

// isStable checks the Gelfond–Lifschitz condition: the least model of the
// reduct P^M equals M.
func (e *Engine) isStable(m []bool) bool {
	red := e.lfp(func(ri int) bool {
		for _, a := range e.g.Rules[ri].Neg {
			if m[a] {
				return false
			}
		}
		return true
	}, nil)
	return sameSet(red, m)
}

func sameSet(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
