package semantics

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"algrec/internal/datalog/ground"
	"algrec/internal/obsv"
)

// Engine evaluates a ground program under the different semantics. It
// precomputes occurrence indexes so each least-fixpoint pass runs in time
// linear in the size of the ground program, and keeps reusable scratch
// buffers so repeated passes (the alternating gamma iterations of
// WellFounded/Valid, the per-stratum passes of Stratified, the per-candidate
// reduct checks of StableModels) are allocation-free after warm-up.
//
// An Engine's methods are not safe for concurrent use by multiple
// goroutines; StableModels parallelizes internally with per-worker scratch.
type Engine struct {
	g *ground.Program
	// The positive-occurrence index in CSR layout: the rules where atom a
	// occurs positively are posOccFlat[posOccStart[a]:posOccStart[a+1]]. Flat
	// int32 arrays keep the propagation loop's working set dense — on ground
	// programs in the millions of rules the fixpoint is memory-bound, and the
	// pointer-chasing [][]int layout costs ~2x.
	posOccStart []int32
	posOccFlat  []int32
	heads       []int32 // per-rule head atom, so propagation never loads Rule structs
	missingInit []int32 // per-rule positive body size, memcpy'd into scratch each pass
	negRules    []int32 // indices of rules with negative body atoms
	zeroPos     []int32 // indices of rules with empty positive body
	hasNeg      bool
	words       int     // bitset length in words, covering all atom ids
	scr         scratch // buffers for the serial entry points
	// obs receives one event per completed semantics computation; nil means
	// observability is disabled. Events are emitted only from entry-point
	// epilogues — never from the worklist loops — so a disabled collector
	// costs one branch per call and an enabled one costs one event per call.
	obs obsv.Collector
	// intr, when non-nil, is polled between candidate windows of the
	// stable-model search (the only engine entry point whose work is not
	// bounded by the ground program's size): once closed, the search stops
	// with an error wrapping ErrCanceled. See SetInterrupt.
	intr <-chan struct{}
}

// NewEngine builds an engine for the ground program. The engine captures
// the process-default collector (obsv.Default) at construction; use
// SetCollector to override it per engine.
func NewEngine(g *ground.Program) *Engine {
	n := g.NumAtoms()
	e := &Engine{
		g:           g,
		posOccStart: make([]int32, n+1),
		heads:       make([]int32, len(g.Rules)),
		missingInit: make([]int32, len(g.Rules)),
		words:       g.Words64(),
		obs:         obsv.Default(),
	}
	for ri := range g.Rules {
		r := &g.Rules[ri]
		e.heads[ri] = int32(r.Head)
		e.missingInit[ri] = int32(len(r.Pos))
		for _, a := range r.Pos {
			e.posOccStart[a+1]++
		}
		if len(r.Pos) == 0 {
			e.zeroPos = append(e.zeroPos, int32(ri))
		}
		if len(r.Neg) > 0 {
			e.negRules = append(e.negRules, int32(ri))
			e.hasNeg = true
		}
	}
	for a := 0; a < n; a++ {
		e.posOccStart[a+1] += e.posOccStart[a]
	}
	e.posOccFlat = make([]int32, e.posOccStart[n])
	fill := make([]int32, n)
	copy(fill, e.posOccStart[:n])
	for ri := range g.Rules {
		for _, a := range g.Rules[ri].Pos {
			e.posOccFlat[fill[a]] = int32(ri)
			fill[a]++
		}
	}
	return e
}

// Ground returns the engine's ground program.
func (e *Engine) Ground() *ground.Program { return e.g }

// SetCollector attaches an observability collector to the engine, replacing
// the one captured from obsv.Default at construction. A nil collector
// disables observability. Not safe to call concurrently with evaluation.
func (e *Engine) SetCollector(c obsv.Collector) { e.obs = c }

// SetInterrupt attaches a cancellation channel to the engine: once ch is
// closed, an in-progress StableModels search returns an error wrapping
// ErrCanceled at the next candidate-window boundary. The fixpoint entry
// points (Minimal, Inflationary, WellFounded, Valid, Stratified) are bounded
// by the ground program's size and are not interruptible; interrupt their
// callers at grounding time via ground.Budget.Interrupt instead. Not safe to
// call concurrently with evaluation.
func (e *Engine) SetInterrupt(ch <-chan struct{}) { e.intr = ch }

// ErrCanceled is wrapped by errors reporting that a stable-model search
// stopped because the channel given to SetInterrupt fired.
var ErrCanceled = errors.New("semantics: stable-model search canceled")

// stop returns a non-nil error wrapping ErrCanceled once the engine's
// interrupt channel has fired, and nil otherwise.
func (e *Engine) stop() error {
	if e.intr == nil {
		return nil
	}
	select {
	case <-e.intr:
		return fmt.Errorf("%w (interrupt fired between candidate windows)", ErrCanceled)
	default:
		return nil
	}
}

// emitFixpoint reports one completed semantics computation, charging the
// serial scratch's buffer-pool activity since the previous event.
func (e *Engine) emitFixpoint(sem string, passes, derived int, deltas []int) {
	r, a := e.scr.takeCounters()
	e.obs.Fixpoint(obsv.FixpointStats{
		Semantics:        sem,
		Passes:           passes,
		Atoms:            e.g.NumAtoms(),
		Derived:          derived,
		Deltas:           deltas,
		ScratchReused:    r,
		ScratchAllocated: a,
	})
}

// scratch holds the reusable buffers of one evaluation thread. The zero
// value is ready to use: buffers are allocated on first use and recycled
// through a small free list afterwards, so a warm scratch makes the fixpoint
// kernels allocation-free.
type scratch struct {
	missing []int32  // per-rule count of positive body atoms not yet derived
	queue   []int32  // lfp work queue
	pool    []Bitset // recycled truth vectors (all e.words long)
	// reused and allocated count grab calls served from the pool vs freshly
	// allocated; takeCounters drains them into an observability event. grab
	// runs once per fixpoint pass, far off the hot path, so the counters are
	// maintained unconditionally.
	reused    int
	allocated int
}

// takeCounters returns and resets the pool-activity counters.
func (s *scratch) takeCounters() (reused, allocated int) {
	reused, allocated = s.reused, s.allocated
	s.reused, s.allocated = 0, 0
	return reused, allocated
}

// grab returns a truth vector with the given word count, recycling from the
// pool when possible. The contents are unspecified; callers clear or
// overwrite as needed.
func (s *scratch) grab(words int) Bitset {
	if n := len(s.pool); n > 0 && len(s.pool[n-1]) == words {
		b := s.pool[n-1]
		s.pool = s.pool[:n-1]
		s.reused++
		return b
	}
	s.allocated++
	return make(Bitset, words)
}

// release returns a truth vector to the pool.
func (s *scratch) release(b Bitset) { s.pool = append(s.pool, b) }

// lfp computes the least fixpoint of the positive parts of the enabled rules
// into out: an atom is derived when some enabled rule has all positive body
// atoms derived; seed atoms are derived unconditionally. A rule is enabled
// iff none of its negative atoms is set in block (when block != nil), every
// negative atom is set in allow (when allow != nil), and extra(ri) holds
// (when extra != nil). out must be distinct from block, allow and seed.
func (e *Engine) lfp(s *scratch, block, allow Bitset, extra func(int) bool, seed, out Bitset) {
	out.ClearAll()
	rules := e.g.Rules
	if cap(s.missing) < len(rules) {
		s.missing = make([]int32, len(rules))
	}
	missing := s.missing[:len(rules)]
	copy(missing, e.missingInit)
	if extra != nil {
		for ri := range rules {
			if !extra(ri) {
				missing[ri] = -1
			}
		}
	}
	if block != nil || allow != nil {
		// Only rules with negative atoms can be disabled by block/allow;
		// everything else keeps its memcpy'd positive-body count.
		for _, ri := range e.negRules {
			if missing[ri] < 0 {
				continue
			}
			for _, a := range rules[ri].Neg {
				if (block != nil && block.Get(a)) || (allow != nil && !allow.Get(a)) {
					missing[ri] = -1
					break
				}
			}
		}
	}
	queue := s.queue[:0]
	for _, ri := range e.zeroPos {
		if missing[ri] == 0 {
			h := e.heads[ri]
			if !out.Get(int(h)) {
				out.Set(int(h))
				queue = append(queue, h)
			}
		}
	}
	if seed != nil {
		for wi, w := range seed {
			for w != 0 {
				a := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if !out.Get(a) {
					out.Set(a)
					queue = append(queue, int32(a))
				}
			}
		}
	}
	start, flat, heads := e.posOccStart, e.posOccFlat, e.heads
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ri := range flat[start[a]:start[a+1]] {
			if missing[ri] <= 0 {
				continue
			}
			missing[ri]--
			if missing[ri] == 0 {
				h := heads[ri]
				if !out.Get(int(h)) {
					out.Set(int(h))
					queue = append(queue, h)
				}
			}
		}
	}
	s.queue = queue[:0] // keep the grown capacity for the next pass
}

// gamma computes Γ(J) into out: the least fixpoint of the program where a
// negative literal ¬a holds iff a ∉ J. Γ is the antimonotone operator whose
// alternating iteration yields the well-founded model, and which the paper's
// Section 2.2 uses to describe the valid-model computation ("only facts not
// in T are allowed to be used negatively").
func (e *Engine) gamma(s *scratch, j, out Bitset) {
	e.lfp(s, j, nil, nil, nil, out)
}

// ErrNotPositive is returned by Minimal and MinimalNaive for programs with
// negative literals.
var ErrNotPositive = errors.New("semantics: program is not positive (has negative literals)")

// Minimal computes the minimal model of a positive ground program by the
// semi-naive least fixpoint.
func (e *Engine) Minimal() (*Interp, error) {
	if e.hasNeg {
		return nil, ErrNotPositive
	}
	s := &e.scr
	derived := s.grab(e.words)
	e.lfp(s, nil, nil, nil, nil, derived)
	if e.obs != nil {
		e.emitFixpoint("minimal", 1, derived.Popcount(), nil)
	}
	in := e.twoValued(derived)
	s.release(derived)
	return in, nil
}

// MinimalNaive computes the minimal model of a positive ground program by
// naive iteration (full re-application of all rules each round). It exists
// as the baseline for the semi-naive benchmark (experiment P1).
func (e *Engine) MinimalNaive() (*Interp, error) {
	if e.hasNeg {
		return nil, ErrNotPositive
	}
	s := &e.scr
	derived := s.grab(e.words)
	derived.ClearAll()
	rounds := 0
	for {
		changed := false
		for _, r := range e.g.Rules {
			ok := true
			for _, a := range r.Pos {
				if !derived.Get(a) {
					ok = false
					break
				}
			}
			if ok && !derived.Get(r.Head) {
				derived.Set(r.Head)
				changed = true
			}
		}
		rounds++
		if !changed {
			break
		}
	}
	if e.obs != nil {
		e.emitFixpoint("minimal-naive", rounds, derived.Popcount(), nil)
	}
	in := e.twoValued(derived)
	s.release(derived)
	return in, nil
}

func (e *Engine) twoValued(derived Bitset) *Interp {
	in := NewInterp(e.g, False)
	derived.ForEach(func(a int) { in.Set(a, True) })
	return in
}

// Inflationary computes the inflationary fixpoint semantics: starting from
// the database facts (bodyless rules — the given structure, step 0), each
// step fires every rule whose positive body is already derived and whose
// negative body atoms are *not derived so far* (at the start of the step),
// accumulating heads. It returns the model and the number of steps to
// convergence after step 0 (used by the Proposition 5.2 step-index bound,
// whose construction likewise places facts at index 0).
//
// Rules are kept on a worklist rather than rescanned every step: because the
// derived set only grows, a rule whose head is already derived can never add
// anything, and a rule with a derived negative atom can never fire again —
// both drop out permanently as soon as they are observed.
func (e *Engine) Inflationary() (*Interp, int) {
	cur := e.scr.grab(e.words)
	cur.ClearAll()
	for _, r := range e.g.Rules {
		if len(r.Pos) == 0 && len(r.Neg) == 0 {
			cur.Set(r.Head)
		}
	}
	work := make([]int, 0, len(e.g.Rules))
	for ri := range e.g.Rules {
		work = append(work, ri)
	}
	var added []int
	var deltas []int // per-step head counts, collected only when observed
	steps := 0
	for {
		added = added[:0]
		live := work[:0]
		for _, ri := range work {
			r := &e.g.Rules[ri]
			if cur.Get(r.Head) {
				continue // already derived: the rule can never add anything
			}
			blocked := false
			for _, a := range r.Neg {
				if cur.Get(a) {
					blocked = true
					break
				}
			}
			if blocked {
				continue // cur only grows: the rule can never fire again
			}
			ok := true
			for _, a := range r.Pos {
				if !cur.Get(a) {
					ok = false
					break
				}
			}
			if ok {
				added = append(added, r.Head)
				continue // its head becomes derived: the rule is spent
			}
			live = append(live, ri) // still waiting on positive atoms
		}
		work = live
		if len(added) == 0 {
			break
		}
		if e.obs != nil {
			// added can repeat a head (two spent rules, same head, one
			// step); the reported delta is the distinct atoms gained.
			n := 0
			for _, a := range added {
				if !cur.Get(a) {
					n++
				}
				cur.Set(a)
			}
			deltas = append(deltas, n)
		} else {
			for _, a := range added {
				cur.Set(a)
			}
		}
		steps++
	}
	if e.obs != nil {
		e.emitFixpoint("inflationary", steps, cur.Popcount(), deltas)
	}
	in := e.twoValued(cur)
	e.scr.release(cur)
	return in, steps
}

// WellFounded computes the well-founded model by the alternating fixpoint:
// T_{k+1} = Γ(Γ(T_k)) ascending from ∅, with U = Γ(T) the final upper bound.
// True atoms are T, false atoms are those outside U, the rest are undefined.
func (e *Engine) WellFounded() *Interp { return e.wellFounded(&e.scr) }

func (e *Engine) wellFounded(s *scratch) *Interp {
	t := s.grab(e.words)
	u := s.grab(e.words)
	t2 := s.grab(e.words)
	t.ClearAll()
	iters := 0
	for {
		e.gamma(s, t, u)
		e.gamma(s, u, t2)
		iters++
		if t.Equal(t2) {
			break
		}
		t.CopyFrom(t2)
	}
	if e.obs != nil {
		e.emitFixpoint("wellfounded", iters, t2.Popcount(), nil)
	}
	in := NewInterp(e.g, Undef)
	t.ForEach(func(a int) { in.Set(a, True) })
	t2.ClearAll()
	t2.OrNot(u) // atoms outside the upper bound are certainly false
	t2.Trim(e.g.NumAtoms())
	t2.ForEach(func(a int) { in.Set(a, False) })
	s.release(t2)
	s.release(u)
	s.release(t)
	return in
}

// Valid computes the valid model by the iterative procedure of the paper's
// Section 2.2, kept deliberately close to the prose: starting with all facts
// undefined, repeatedly (i) find every fact derivable in a computation that
// uses negatively only facts not currently true — facts not so derivable are
// certainly false; (ii) derive new true facts using negatively only the
// certainly-false facts; until no more true facts appear.
func (e *Engine) Valid() *Interp {
	s := &e.scr
	t := s.grab(e.words)
	f := s.grab(e.words)
	poss := s.grab(e.words)
	t2 := s.grab(e.words)
	t.ClearAll()
	f.ClearAll()
	iters := 0
	for {
		// (i) possible facts: derivations may use ¬a only when a ∉ T.
		e.gamma(s, t, poss)
		f.OrNot(poss)
		f.Trim(e.g.NumAtoms())
		// (ii) new true facts: derivations start from T and may use ¬a only
		// when a is certainly false.
		e.lfp(s, nil, f, nil, t, t2)
		iters++
		if t.Equal(t2) {
			break
		}
		t.CopyFrom(t2)
	}
	if e.obs != nil {
		e.emitFixpoint("valid", iters, t.Popcount(), nil)
	}
	in := NewInterp(e.g, Undef)
	t.ForEach(func(a int) { in.Set(a, True) })
	f.AndNot(t) // true wins where the iteration marked both
	f.ForEach(func(a int) { in.Set(a, False) })
	s.release(t2)
	s.release(poss)
	s.release(f)
	s.release(t)
	return in
}

// Stratified evaluates the program stratum by stratum: the minimal model of
// each stratum is computed with negative literals resolved against the
// completed lower strata. stratumOf maps each predicate to its stratum; it
// comes from datalog.Stratify on the non-ground program.
func (e *Engine) Stratified(stratumOf map[string]int) (*Interp, error) {
	max := 0
	for _, s := range stratumOf {
		if s > max {
			max = s
		}
	}
	headStratum := make([]int, len(e.g.Rules))
	for ri, r := range e.g.Rules {
		s, ok := stratumOf[e.g.Atom(r.Head).Pred]
		if !ok {
			return nil, fmt.Errorf("semantics: predicate %s has no stratum", e.g.Atom(r.Head).Pred)
		}
		headStratum[ri] = s
		for _, a := range r.Neg {
			ns, ok := stratumOf[e.g.Atom(a).Pred]
			if !ok {
				return nil, fmt.Errorf("semantics: predicate %s has no stratum", e.g.Atom(a).Pred)
			}
			if ns >= s {
				return nil, fmt.Errorf("semantics: not a stratification: %s (stratum %d) negated in a rule for stratum %d", e.g.Atom(a).Pred, ns, s)
			}
		}
	}
	s := &e.scr
	derived := s.grab(e.words)
	next := s.grab(e.words)
	derived.ClearAll()
	for st := 0; st <= max; st++ {
		st := st
		e.lfp(s, derived, nil, func(ri int) bool { return headStratum[ri] <= st }, derived, next)
		derived, next = next, derived
	}
	if e.obs != nil {
		e.emitFixpoint("stratified", max+1, derived.Popcount(), nil)
	}
	in := e.twoValued(derived)
	s.release(next)
	s.release(derived)
	return in, nil
}

// ErrTooManyUndef is returned by StableModels when the residual left by the
// well-founded model is larger than the caller's bound.
var ErrTooManyUndef = errors.New("semantics: too many undefined atoms for stable-model search")

// stableInterruptWindow is the number of candidate masks a stable search
// examines between polls of the engine's interrupt channel.
const stableInterruptWindow = 1 << 12

// stableParallelThreshold is the candidate-space size below which
// StableModels stays serial: goroutine fan-out costs more than the search.
const stableParallelThreshold = 256

// StableModels enumerates all stable models (Gelfond–Lifschitz) of the
// ground program. It first computes the well-founded model — which every
// stable model extends — then searches assignments of the undefined atoms,
// returning one two-valued Interp per stable model, in a deterministic order
// (ascending candidate mask). If more than maxUndef atoms are undefined it
// returns ErrTooManyUndef rather than attempting an exponential search.
//
// The search space is partitioned across a GOMAXPROCS-sized worker pool;
// results are merged back in mask order, so the model list is byte-identical
// to a serial run.
func (e *Engine) StableModels(maxUndef int) ([]*Interp, error) {
	return e.StableModelsParallel(maxUndef, 0)
}

// StableModelsParallel is StableModels with an explicit worker count;
// workers <= 0 means runtime.GOMAXPROCS(0). The result is independent of the
// worker count.
func (e *Engine) StableModelsParallel(maxUndef, workers int) ([]*Interp, error) {
	wf := e.WellFounded()
	undef := wf.UndefAtoms()
	if len(undef) > maxUndef {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyUndef, len(undef), maxUndef)
	}
	if len(undef) > 62 {
		return nil, fmt.Errorf("%w: %d undefined atoms overflow the candidate-mask space", ErrTooManyUndef, len(undef))
	}
	total := uint64(1) << uint(len(undef))
	base := NewBitset(e.g.NumAtoms())
	for a := 0; a < e.g.NumAtoms(); a++ {
		if wf.Truth(a) == True {
			base.Set(a)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || total < stableParallelThreshold {
		// Serial search: walk the mask space in windows so the interrupt is
		// polled at a bounded interval even on 2^62-sized spaces.
		var models []*Interp
		for lo := uint64(0); lo < total; lo += stableInterruptWindow {
			if err := e.stop(); err != nil {
				return nil, err
			}
			models = append(models, e.stableRange(&e.scr, base, undef, lo, min(lo+stableInterruptWindow, total))...)
		}
		if e.obs != nil {
			r, a := e.scr.takeCounters()
			e.obs.StableSearch(obsv.StableSearchStats{
				Undef: len(undef), Candidates: total, Models: len(models),
				Workers: 1, Chunks: 1, ScratchReused: r, ScratchAllocated: a,
			})
		}
		return models, nil
	}
	// Partition the mask space into more chunks than workers so an uneven
	// chunk cannot straggle, and hand chunks out through an atomic cursor.
	// Chunk results are merged in chunk order, which is mask order.
	chunks := uint64(workers) * 8
	if chunks > total {
		chunks = total
	}
	chunkSize := (total + chunks - 1) / chunks
	results := make([][]*Interp, chunks)
	// Per-worker scratch: the engine's buffers stay serial-only. The slice
	// (rather than goroutine-local variables) lets the observability
	// epilogue sum the workers' pool counters after the join.
	scratches := make([]scratch, workers)
	var cursor atomic.Uint64
	var canceled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(s *scratch) {
			defer wg.Done()
			for {
				c := cursor.Add(1) - 1
				if c >= chunks {
					return
				}
				hi := min(c*chunkSize+chunkSize, total)
				for lo := c * chunkSize; lo < hi; lo += stableInterruptWindow {
					if e.stop() != nil {
						canceled.Store(true)
						return
					}
					results[c] = append(results[c], e.stableRange(s, base, undef, lo, min(lo+stableInterruptWindow, hi))...)
				}
			}
		}(&scratches[w])
	}
	wg.Wait()
	if canceled.Load() {
		return nil, e.stop()
	}
	var models []*Interp
	for _, ms := range results {
		models = append(models, ms...)
	}
	if e.obs != nil {
		var r, a int
		for i := range scratches {
			dr, da := scratches[i].takeCounters()
			r, a = r+dr, a+da
		}
		e.obs.StableSearch(obsv.StableSearchStats{
			Undef: len(undef), Candidates: total, Models: len(models),
			Workers: workers, Chunks: int(chunks), ScratchReused: r, ScratchAllocated: a,
		})
	}
	return models, nil
}

// stableRange checks the Gelfond–Lifschitz condition for every candidate
// mask in [lo, hi): the least model of the reduct P^M must equal M. Bit i of
// the mask decides undef[i]. Safe for concurrent use with distinct scratch.
func (e *Engine) stableRange(s *scratch, base Bitset, undef []int, lo, hi uint64) []*Interp {
	cand := s.grab(e.words)
	red := s.grab(e.words)
	var models []*Interp
	for mask := lo; mask < hi; mask++ {
		cand.CopyFrom(base)
		for i, a := range undef {
			if mask&(1<<uint(i)) != 0 {
				cand.Set(a)
			}
		}
		e.lfp(s, cand, nil, nil, nil, red)
		if red.Equal(cand) {
			models = append(models, e.twoValued(cand))
		}
	}
	s.release(red)
	s.release(cand)
	return models
}
