package semantics

import "math/bits"

// Bitset is a dense truth vector over atom ids, packed 64 atoms per word.
// It replaces the []bool vectors the fixpoint engines originally used: the
// word representation makes set equality, complement and copy O(n/64), and
// lets the engines keep warm buffers instead of reallocating per pass.
//
// A Bitset sized for n atoms has (n+63)/64 words; bits at positions >= n are
// kept zero by every operation except OrNot, whose callers must Trim.
type Bitset []uint64

// NewBitset returns an all-zero bitset able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)>>6) }

// Get reports whether bit i is set.
func (b Bitset) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Unset clears bit i.
func (b Bitset) Unset(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// ClearAll zeroes every word.
func (b Bitset) ClearAll() { clear(b) }

// CopyFrom overwrites b with o; the sets must have equal length.
func (b Bitset) CopyFrom(o Bitset) { copy(b, o) }

// Equal reports whether b and o have the same length and identical bits.
// Unlike the []bool sameSet it replaces — which silently compared only the
// shorter prefix — a length mismatch is an explicit inequality.
func (b Bitset) Equal(o Bitset) bool {
	if len(b) != len(o) {
		return false
	}
	for i, w := range b {
		if w != o[i] {
			return false
		}
	}
	return true
}

// And intersects b with o in place.
func (b Bitset) And(o Bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

// AndNot removes o's bits from b in place.
func (b Bitset) AndNot(o Bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

// Or unions o into b in place.
func (b Bitset) Or(o Bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// OrNot unions the complement of o into b in place. The complement is taken
// word-wise, so bits beyond the logical size come out set; callers must Trim
// to the atom count afterwards.
func (b Bitset) OrNot(o Bitset) {
	for i := range b {
		b[i] |= ^o[i]
	}
}

// Trim clears every bit at position >= n.
func (b Bitset) Trim(n int) {
	w := n >> 6
	if w >= len(b) {
		return
	}
	b[w] &= (1 << (uint(n) & 63)) - 1
	for i := w + 1; i < len(b); i++ {
		b[i] = 0
	}
}

// Popcount returns the number of set bits.
func (b Bitset) Popcount() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn with each set bit's position in increasing order.
func (b Bitset) ForEach(fn func(int)) {
	for wi, w := range b {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
