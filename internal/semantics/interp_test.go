package semantics

import (
	"testing"

	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
)

// TestSamePred compares interpretations across *different* ground programs:
// facts interned in one but not the other count as certainly false there.
func TestSamePred(t *testing.T) {
	mk := func(src string) *Interp {
		t.Helper()
		p := datalog.MustParse(src)
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		return NewEngine(g).Valid()
	}
	// Same tc relation, derived through different rule shapes (left- vs
	// right-linear recursion) over different ground programs.
	a := mk("e(1, 2). e(2, 3).\ntc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).")
	b := mk("e(1, 2). e(2, 3).\ntc(X, Y) :- e(X, Y).\ntc(X, Z) :- e(X, Y), tc(Y, Z).")
	if !SamePred(a, b, "tc") {
		t.Error("left- and right-linear TC should agree")
	}
	// A genuinely different relation disagrees.
	c := mk("e(1, 2). e(2, 3).\ntc(X, Y) :- e(X, Y).")
	if SamePred(a, c, "tc") {
		t.Error("TC and its base should differ")
	}
	// Undefinedness must match, not just truth.
	d1 := mk("move(a, a).\nwin(X) :- move(X, Y), not win(Y).")
	d2 := mk("move(a, b).\nwin(X) :- move(X, Y), not win(Y).")
	if SamePred(d1, d2, "win") {
		t.Error("undefined win(a) vs true win(a) should differ")
	}
	if !SamePred(d1, d1, "win") {
		t.Error("an interpretation should agree with itself")
	}
}

func TestSameTruthsDifferentSizes(t *testing.T) {
	mk := func(src string) *Interp {
		t.Helper()
		p := datalog.MustParse(src)
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		return NewEngine(g).Valid()
	}
	a := mk("p(1).")
	b := mk("p(1). q(2).")
	if SameTruths(a, b) {
		t.Error("interpretations over different universes must not compare equal")
	}
}
