// Package semantics implements every evaluation semantics the paper uses or
// compares against, over ground programs produced by internal/datalog/ground:
//
//   - minimal model of positive programs (naive and semi-naive least fixpoint)
//   - stratified evaluation (stratum-by-stratum minimal models)
//   - inflationary fixpoint semantics (negation as "not derived so far")
//   - well-founded semantics (Van Gelder–Ross–Schlipf alternating fixpoint)
//   - the valid semantics, implemented literally as the iterative
//     true/false-set procedure described in the paper's Section 2.2
//   - stable models (Gelfond–Lifschitz), by exhaustive search over the atoms
//     left undefined by the well-founded model
//
// All engines share one interned-atom representation and return three-valued
// interpretations (Interp). On the ground programs of this repository the
// Section 2.2 valid procedure and the alternating fixpoint compute the same
// model; both are kept as independent implementations and their agreement is
// property-tested, serving as an executable check of the paper's remark that
// its results transfer between the valid and well-founded semantics.
package semantics

import (
	"sort"

	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
)

// Truth is a three-valued truth value.
type Truth uint8

// The truth values. The zero value is Undef.
const (
	Undef Truth = iota
	True
	False
)

// String returns "true", "false" or "undef".
func (t Truth) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	case Undef:
		return "undef"
	default:
		return "Truth(?)"
	}
}

// Interp is a three-valued interpretation of a ground program: a truth value
// for every interned atom. Atoms that were never interned are certainly false
// (they are not derivable under any semantics), which Interp's accessors
// reflect.
type Interp struct {
	G *ground.Program
	t []Truth
}

// NewInterp returns an interpretation with every atom at the given default.
func NewInterp(g *ground.Program, def Truth) *Interp {
	t := make([]Truth, g.NumAtoms())
	if def != Undef {
		for i := range t {
			t[i] = def
		}
	}
	return &Interp{G: g, t: t}
}

// Truth returns the truth value of the atom with the given id.
func (in *Interp) Truth(id int) Truth { return in.t[id] }

// Set assigns a truth value to the atom with the given id.
func (in *Interp) Set(id int, v Truth) { in.t[id] = v }

// TruthOf returns the truth value of a fact; facts outside the interned
// universe are certainly false.
func (in *Interp) TruthOf(f datalog.Fact) Truth {
	id, ok := in.G.Lookup(f)
	if !ok {
		return False
	}
	return in.t[id]
}

// FactsWith returns the facts of the given predicate with the given truth
// value, sorted. With truth False the result covers only interned atoms; the
// complement of the interned universe is false too but not enumerable.
func (in *Interp) FactsWith(pred string, v Truth) []datalog.Fact {
	var out []datalog.Fact
	for _, id := range in.G.AtomsOf(pred) {
		if in.t[id] == v {
			out = append(out, in.G.Atom(id))
		}
	}
	datalog.SortFacts(out)
	return out
}

// FactKeysWith returns the canonical keys of the predicate's facts with the
// given truth value, in the same fact order as FactsWith. It reads the keys
// interned with the ground program instead of re-serializing each fact.
func (in *Interp) FactKeysWith(pred string, v Truth) []string {
	var ids []int
	for _, id := range in.G.AtomsOf(pred) {
		if in.t[id] == v {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		return datalog.CompareFacts(in.G.Atom(ids[i]), in.G.Atom(ids[j])) < 0
	})
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = in.G.AtomKey(id)
	}
	return out
}

// TrueFacts returns the certainly-true facts of the predicate, sorted.
func (in *Interp) TrueFacts(pred string) []datalog.Fact { return in.FactsWith(pred, True) }

// UndefFacts returns the undefined facts of the predicate, sorted.
func (in *Interp) UndefFacts(pred string) []datalog.Fact { return in.FactsWith(pred, Undef) }

// CountUndef returns the number of undefined atoms.
func (in *Interp) CountUndef() int {
	n := 0
	for _, v := range in.t {
		if v == Undef {
			n++
		}
	}
	return n
}

// IsTotal reports whether no atom is undefined — the executable counterpart
// of the paper's "well-defined" (the valid interpretation is two-valued, so
// an initial valid model exists for the queried part).
func (in *Interp) IsTotal() bool { return in.CountUndef() == 0 }

// UndefAtoms returns the ids of the undefined atoms in increasing order.
func (in *Interp) UndefAtoms() []int {
	var out []int
	for id, v := range in.t {
		if v == Undef {
			out = append(out, id)
		}
	}
	return out
}

// SameTruths reports whether two interpretations over the same ground program
// assign identical truth values.
func SameTruths(a, b *Interp) bool {
	if len(a.t) != len(b.t) {
		return false
	}
	for i := range a.t {
		if a.t[i] != b.t[i] {
			return false
		}
	}
	return true
}

// SamePred reports whether a and b agree (as three-valued relations) on the
// given predicate. The interpretations may come from different ground
// programs: facts interned in one but not the other count as False there.
func SamePred(a, b *Interp, pred string) bool {
	keys := map[string]bool{}
	for _, id := range a.G.AtomsOf(pred) {
		keys[a.G.AtomKey(id)] = true
	}
	for _, id := range b.G.AtomsOf(pred) {
		keys[b.G.AtomKey(id)] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	byKeyA := factTruths(a, pred)
	byKeyB := factTruths(b, pred)
	for _, k := range sorted {
		ta, ok := byKeyA[k]
		if !ok {
			ta = False
		}
		tb, ok := byKeyB[k]
		if !ok {
			tb = False
		}
		if ta != tb {
			return false
		}
	}
	return true
}

func factTruths(in *Interp, pred string) map[string]Truth {
	out := map[string]Truth{}
	for _, id := range in.G.AtomsOf(pred) {
		out[in.G.AtomKey(id)] = in.Truth(id)
	}
	return out
}
