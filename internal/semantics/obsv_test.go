package semantics

import (
	"reflect"
	"testing"

	"algrec/internal/obsv"
)

// capture records every event it receives, for exact-count assertions.
type capture struct {
	obsv.Nop
	fix    []obsv.FixpointStats
	stable []obsv.StableSearchStats
}

func (c *capture) Fixpoint(s obsv.FixpointStats)         { c.fix = append(c.fix, s) }
func (c *capture) StableSearch(s obsv.StableSearchStats) { c.stable = append(c.stable, s) }

// attach builds an engine for src with a capturing collector installed.
func attach(t *testing.T, src string) (*Engine, *capture) {
	t.Helper()
	e := mustEngine(t, src)
	c := &capture{}
	e.SetCollector(c)
	return e, c
}

// TestObsvInflationaryExactCounts pins the inflationary event on a program
// whose evaluation is computable by hand: a is a fact, b fires in step 1,
// c in step 2, each step deriving exactly one new atom.
func TestObsvInflationaryExactCounts(t *testing.T) {
	e, c := attach(t, "a. b :- a. c :- b.")
	_, steps := e.Inflationary()
	if steps != 2 {
		t.Fatalf("steps = %d, want 2", steps)
	}
	if len(c.fix) != 1 {
		t.Fatalf("got %d fixpoint events, want 1", len(c.fix))
	}
	got := c.fix[0]
	want := obsv.FixpointStats{
		Semantics: "inflationary",
		Passes:    2,
		Atoms:     3,
		Derived:   3,
		Deltas:    []int{1, 1},
	}
	got.ScratchReused, got.ScratchAllocated = 0, 0 // pool activity asserted separately
	if !reflect.DeepEqual(got, want) {
		t.Errorf("event = %+v, want %+v", got, want)
	}
}

// TestObsvInflationaryDistinctDeltas: two spent rules deriving the same head
// in one step count as one delta atom, not two.
func TestObsvInflationaryDistinctDeltas(t *testing.T) {
	// step 1: both rules fire, both with head b — one new atom.
	e, c := attach(t, "a. b :- a. b :- not c.")
	e.Inflationary()
	got := c.fix[len(c.fix)-1]
	if got.Passes != 1 || !reflect.DeepEqual(got.Deltas, []int{1}) {
		t.Errorf("passes = %d deltas = %v, want 1 and [1]", got.Passes, got.Deltas)
	}
}

// TestObsvMinimalExactCounts pins the minimal-model event on the 4-node TC
// chain: 3 edge facts + 6 closure atoms derived in one worklist pass, and
// the scratch pool allocating on the first call, reusing on the second.
func TestObsvMinimalExactCounts(t *testing.T) {
	e, c := attach(t, tcSrc)
	if _, err := e.Minimal(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Minimal(); err != nil {
		t.Fatal(err)
	}
	if len(c.fix) != 2 {
		t.Fatalf("got %d fixpoint events, want 2", len(c.fix))
	}
	for i, got := range c.fix {
		if got.Semantics != "minimal" || got.Passes != 1 || got.Atoms != 9 || got.Derived != 9 {
			t.Errorf("event %d = %+v, want minimal/1 pass/9 atoms/9 derived", i, got)
		}
	}
	if c.fix[0].ScratchAllocated == 0 {
		t.Error("first call should allocate scratch")
	}
	if c.fix[1].ScratchAllocated != 0 || c.fix[1].ScratchReused == 0 {
		t.Errorf("second call should only reuse scratch, got %+v", c.fix[1])
	}
}

// TestObsvWellFoundedExactCounts pins the alternating-fixpoint event on the
// 4-position win chain: lose(4) ⇒ win(3) ⇒ lose(2) ⇒ win(1) resolves in 3
// double-gamma iterations; the final truth vector holds the 3 move facts
// plus win(1) and win(3).
func TestObsvWellFoundedExactCounts(t *testing.T) {
	e, c := attach(t, `
move(1, 2). move(2, 3). move(3, 4).
win(X) :- move(X, Y), not win(Y).
`)
	e.WellFounded()
	if len(c.fix) != 1 {
		t.Fatalf("got %d fixpoint events, want 1", len(c.fix))
	}
	got := c.fix[0]
	if got.Semantics != "wellfounded" || got.Passes != 3 || got.Derived != 5 {
		t.Errorf("event = %+v, want wellfounded/3 passes/5 derived", got)
	}
}

// TestObsvStableSearchExactCounts pins the stable-search event on the even
// loop: 2 undefined atoms, 4 candidate masks, 2 stable models, serial path.
func TestObsvStableSearchExactCounts(t *testing.T) {
	e, c := attach(t, "a :- not b. b :- not a.")
	models, err := e.StableModels(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("got %d models, want 2", len(models))
	}
	if len(c.stable) != 1 {
		t.Fatalf("got %d stable events, want 1", len(c.stable))
	}
	got := c.stable[0]
	if got.Undef != 2 || got.Candidates != 4 || got.Models != 2 || got.Workers != 1 || got.Chunks != 1 {
		t.Errorf("event = %+v, want undef 2, candidates 4, models 2, serial", got)
	}
}

// TestObsvDisabledEmitsNothing: a nil collector (the default) must produce
// no events and leave results identical to an observed run.
func TestObsvDisabledEmitsNothing(t *testing.T) {
	eOn, c := attach(t, tcSrc)
	eOff := mustEngine(t, tcSrc)
	eOff.SetCollector(nil)
	inOn, err := eOn.Minimal()
	if err != nil {
		t.Fatal(err)
	}
	inOff, err := eOff.Minimal()
	if err != nil {
		t.Fatal(err)
	}
	if len(inOn.TrueFacts("tc")) != len(inOff.TrueFacts("tc")) {
		t.Error("observed and unobserved runs disagree")
	}
	if len(c.fix) != 1 {
		t.Fatalf("observed engine: got %d events, want 1", len(c.fix))
	}
}
