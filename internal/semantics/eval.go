package semantics

import (
	"fmt"

	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
)

// Semantics selects an evaluation semantics for Eval.
type Semantics uint8

// The available semantics.
const (
	// SemMinimal is the minimal model of a positive program.
	SemMinimal Semantics = iota
	// SemStratified is stratum-by-stratum minimal-model evaluation.
	SemStratified
	// SemInflationary is the inflationary fixpoint semantics, where negation
	// reads "was not derived so far".
	SemInflationary
	// SemWellFounded is the well-founded semantics (alternating fixpoint).
	SemWellFounded
	// SemValid is the valid semantics, computed by the Section 2.2 procedure.
	SemValid
)

// String returns the semantics' conventional name.
func (s Semantics) String() string {
	switch s {
	case SemMinimal:
		return "minimal"
	case SemStratified:
		return "stratified"
	case SemInflationary:
		return "inflationary"
	case SemWellFounded:
		return "well-founded"
	case SemValid:
		return "valid"
	default:
		return fmt.Sprintf("Semantics(%d)", uint8(s))
	}
}

// ParseSemantics maps a name accepted on command lines to a Semantics.
func ParseSemantics(name string) (Semantics, error) {
	switch name {
	case "minimal":
		return SemMinimal, nil
	case "stratified":
		return SemStratified, nil
	case "inflationary":
		return SemInflationary, nil
	case "wellfounded", "well-founded", "wfs":
		return SemWellFounded, nil
	case "valid":
		return SemValid, nil
	default:
		return 0, fmt.Errorf("semantics: unknown semantics %q (want minimal, stratified, inflationary, wellfounded or valid)", name)
	}
}

// Eval grounds the program under the budget and evaluates it under the given
// semantics. For SemStratified the program must be stratifiable.
func Eval(p *datalog.Program, sem Semantics, budget ground.Budget) (*Interp, error) {
	g, err := ground.Ground(p, budget)
	if err != nil {
		return nil, err
	}
	e := NewEngine(g)
	switch sem {
	case SemMinimal:
		return e.Minimal()
	case SemStratified:
		strat, err := datalog.Stratify(p)
		if err != nil {
			return nil, err
		}
		return e.Stratified(strat)
	case SemInflationary:
		in, _ := e.Inflationary()
		return in, nil
	case SemWellFounded:
		return e.WellFounded(), nil
	case SemValid:
		return e.Valid(), nil
	default:
		return nil, fmt.Errorf("semantics: unknown semantics %v", sem)
	}
}
