// The pre-bitset []bool semantics engine, kept verbatim as the test oracle:
// the property tests below check that the word-packed kernel computes
// identical models on random ground programs, and that the parallel
// stable-model search returns the same ordered list as a serial run.
package semantics

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
)

// refEngine is the original []bool implementation: every lfp pass allocates
// its vectors and sameSet compares element-wise.
type refEngine struct {
	g      *ground.Program
	posOcc [][]int
}

func newRefEngine(g *ground.Program) *refEngine {
	e := &refEngine{g: g, posOcc: make([][]int, g.NumAtoms())}
	for ri, r := range g.Rules {
		for _, a := range r.Pos {
			e.posOcc[a] = append(e.posOcc[a], ri)
		}
	}
	return e
}

func (e *refEngine) lfp(enabled func(ruleIdx int) bool, seed []bool) []bool {
	derived := make([]bool, e.g.NumAtoms())
	missing := make([]int, len(e.g.Rules))
	var queue []int
	deriveAtom := func(a int) {
		if derived[a] {
			return
		}
		derived[a] = true
		queue = append(queue, a)
	}
	for ri, r := range e.g.Rules {
		if !enabled(ri) {
			missing[ri] = -1
			continue
		}
		missing[ri] = len(r.Pos)
		if missing[ri] == 0 {
			deriveAtom(r.Head)
		}
	}
	if seed != nil {
		for a, ok := range seed {
			if ok {
				deriveAtom(a)
			}
		}
	}
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ri := range e.posOcc[a] {
			if missing[ri] <= 0 {
				continue
			}
			missing[ri]--
			if missing[ri] == 0 {
				deriveAtom(e.g.Rules[ri].Head)
			}
		}
	}
	return derived
}

func (e *refEngine) gamma(j []bool) []bool {
	return e.lfp(func(ri int) bool {
		for _, a := range e.g.Rules[ri].Neg {
			if j[a] {
				return false
			}
		}
		return true
	}, nil)
}

func refSameSet(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// wellFounded returns (T, U): certainly-true atoms and the upper bound.
func (e *refEngine) wellFounded() (t, u []bool) {
	t = make([]bool, e.g.NumAtoms())
	for {
		u = e.gamma(t)
		t2 := e.gamma(u)
		if refSameSet(t, t2) {
			break
		}
		t = t2
	}
	return t, u
}

// valid returns (T, F): certainly-true and certainly-false atoms of the
// Section 2.2 procedure.
func (e *refEngine) valid() (t, f []bool) {
	n := e.g.NumAtoms()
	t = make([]bool, n)
	f = make([]bool, n)
	for {
		poss := e.gamma(t)
		for a := 0; a < n; a++ {
			if !poss[a] {
				f[a] = true
			}
		}
		t2 := e.lfp(func(ri int) bool {
			for _, a := range e.g.Rules[ri].Neg {
				if !f[a] {
					return false
				}
			}
			return true
		}, t)
		if refSameSet(t, t2) {
			break
		}
		t = t2
	}
	return t, f
}

// stableModels returns the stable models as truth vectors in ascending
// candidate-mask order — the order StableModels must reproduce.
func (e *refEngine) stableModels() [][]bool {
	t, u := e.wellFounded()
	var undef []int
	for a := 0; a < e.g.NumAtoms(); a++ {
		if !t[a] && u[a] {
			undef = append(undef, a)
		}
	}
	var models [][]bool
	for mask := 0; mask < 1<<len(undef); mask++ {
		cand := make([]bool, e.g.NumAtoms())
		copy(cand, t)
		for i, a := range undef {
			if mask&(1<<i) != 0 {
				cand[a] = true
			}
		}
		red := e.lfp(func(ri int) bool {
			for _, a := range e.g.Rules[ri].Neg {
				if cand[a] {
					return false
				}
			}
			return true
		}, nil)
		if refSameSet(red, cand) {
			models = append(models, cand)
		}
	}
	return models
}

func mustGround(t *testing.T, src string) *ground.Program {
	t.Helper()
	p, err := datalog.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ground.Ground(p, ground.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPropertyBitsetMatchesReference drives random ground programs through
// both implementations: lfp (via Minimal on the positive part), gamma,
// WellFounded, Valid and StableModels must agree bit for bit.
func TestPropertyBitsetMatchesReference(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomGroundProgram(r)
		p, err := datalog.ParseProgram(src)
		if err != nil {
			return false
		}
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			return false
		}
		e := NewEngine(g)
		ref := newRefEngine(g)
		n := g.NumAtoms()

		// gamma at a random J, via the engine's scratch machinery.
		j := NewBitset(n)
		jv := make([]bool, n)
		for a := 0; a < n; a++ {
			if r.Intn(3) == 0 {
				j.Set(a)
				jv[a] = true
			}
		}
		out := NewBitset(n)
		e.gamma(&e.scr, j, out)
		gv := ref.gamma(jv)
		for a := 0; a < n; a++ {
			if out.Get(a) != gv[a] {
				t.Logf("gamma differs at %s on:\n%s", g.Atom(a), src)
				return false
			}
		}

		// WellFounded and Valid three-valued models.
		wf := e.WellFounded()
		rt, ru := ref.wellFounded()
		for a := 0; a < n; a++ {
			want := Undef
			switch {
			case rt[a]:
				want = True
			case !ru[a]:
				want = False
			}
			if wf.Truth(a) != want {
				t.Logf("WellFounded differs at %s on:\n%s", g.Atom(a), src)
				return false
			}
		}
		valid := e.Valid()
		vt, vf := ref.valid()
		for a := 0; a < n; a++ {
			want := Undef
			switch {
			case vt[a]:
				want = True
			case vf[a]:
				want = False
			}
			if valid.Truth(a) != want {
				t.Logf("Valid differs at %s on:\n%s", g.Atom(a), src)
				return false
			}
		}

		// StableModels: same models in the same (mask) order.
		models, err := e.StableModels(20)
		if err != nil {
			return false
		}
		refModels := ref.stableModels()
		if len(models) != len(refModels) {
			t.Logf("stable model count %d != %d on:\n%s", len(models), len(refModels), src)
			return false
		}
		for i, m := range models {
			for a := 0; a < n; a++ {
				want := False
				if refModels[i][a] {
					want = True
				}
				if m.Truth(a) != want {
					t.Logf("stable model %d differs at %s on:\n%s", i, g.Atom(a), src)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMinimalMatchesReference covers the positive-program kernel,
// including the semi-naive lfp seed path via Stratified.
func TestPropertyMinimalMatchesReference(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		atoms := []string{"a0", "a1", "a2", "a3", "a4"}
		var sb []byte
		for i := 0; i < 3+r.Intn(8); i++ {
			sb = append(sb, atoms[r.Intn(len(atoms))]...)
			if k := r.Intn(3); k > 0 {
				sb = append(sb, " :- "...)
				for j := 0; j < k; j++ {
					if j > 0 {
						sb = append(sb, ", "...)
					}
					sb = append(sb, atoms[r.Intn(len(atoms))]...)
				}
			}
			sb = append(sb, ".\n"...)
		}
		p, err := datalog.ParseProgram(string(sb))
		if err != nil {
			return false
		}
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			return false
		}
		e := NewEngine(g)
		min, err := e.Minimal()
		if err != nil {
			return false
		}
		refDerived := newRefEngine(g).lfp(func(int) bool { return true }, nil)
		for a := 0; a < g.NumAtoms(); a++ {
			want := False
			if refDerived[a] {
				want = True
			}
			if min.Truth(a) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStableModelsDeterministicAcrossGOMAXPROCS: the parallel search must
// return the same ordered model list regardless of parallelism — both via
// the GOMAXPROCS default and via explicit worker counts.
func TestStableModelsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	// 9 independent 2-cycles: 18 undefined atoms, 2^9 = 512 stable models —
	// comfortably above the engine's serial threshold.
	src := ""
	for i := 0; i < 9; i++ {
		src += "p" + string(rune('0'+i)) + " :- not q" + string(rune('0'+i)) + ".\n"
		src += "q" + string(rune('0'+i)) + " :- not p" + string(rune('0'+i)) + ".\n"
	}
	g := mustGround(t, src)

	run := func(procs int) []*Interp {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		models, err := NewEngine(g).StableModels(20)
		if err != nil {
			t.Fatal(err)
		}
		return models
	}
	serial := run(1)
	parallel := run(8)
	if len(serial) != 512 || len(parallel) != 512 {
		t.Fatalf("model counts: serial=%d parallel=%d, want 512", len(serial), len(parallel))
	}
	for i := range serial {
		if !SameTruths(serial[i], parallel[i]) {
			t.Fatalf("model %d differs between GOMAXPROCS=1 and GOMAXPROCS=8", i)
		}
	}
	// Explicit worker counts must agree too, including a count that does not
	// divide the mask space evenly.
	e := NewEngine(g)
	for _, workers := range []int{1, 2, 3, 8} {
		models, err := e.StableModelsParallel(20, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(models) != len(serial) {
			t.Fatalf("workers=%d: %d models, want %d", workers, len(models), len(serial))
		}
		for i := range models {
			if !SameTruths(models[i], serial[i]) {
				t.Fatalf("workers=%d: model %d differs from serial", workers, i)
			}
		}
	}
}

// TestScratchReuseAcrossCalls exercises repeated evaluations on one engine:
// the scratch pool must not leak state between semantics.
func TestScratchReuseAcrossCalls(t *testing.T) {
	g := mustGround(t, `
move(a, b). move(b, a).
win(X) :- move(X, Y), not win(Y).
`)
	e := NewEngine(g)
	first := e.WellFounded()
	for i := 0; i < 5; i++ {
		if !SameTruths(e.WellFounded(), first) {
			t.Fatal("WellFounded result changed across repeated calls")
		}
		if !SameTruths(e.Valid(), first) {
			t.Fatal("Valid diverged from WellFounded across repeated calls")
		}
		models, err := e.StableModels(20)
		if err != nil {
			t.Fatal(err)
		}
		if len(models) != 2 {
			t.Fatalf("run %d: %d stable models, want 2", i, len(models))
		}
	}
}
