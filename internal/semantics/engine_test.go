package semantics

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/value"
)

func mustEngine(t *testing.T, src string) *Engine {
	t.Helper()
	p, err := datalog.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ground.Ground(p, ground.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(g)
}

func truthOf(in *Interp, pred string, args ...value.Value) Truth {
	return in.TruthOf(datalog.Fact{Pred: pred, Args: args})
}

func sym(s string) value.Value { return value.String(s) }

const tcSrc = `
e(1, 2). e(2, 3). e(3, 4).
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
`

func TestMinimalTC(t *testing.T) {
	e := mustEngine(t, tcSrc)
	in, err := e.Minimal()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(in.TrueFacts("tc")); got != 6 {
		t.Errorf("|tc| = %d, want 6", got)
	}
	if truthOf(in, "tc", value.Int(1), value.Int(4)) != True {
		t.Error("tc(1,4) should be true")
	}
	if truthOf(in, "tc", value.Int(4), value.Int(1)) != False {
		t.Error("tc(4,1) should be false (closed world)")
	}
}

func TestMinimalRejectsNegation(t *testing.T) {
	e := mustEngine(t, "p(1). q(X) :- p(X), not r(X).")
	if _, err := e.Minimal(); !errors.Is(err, ErrNotPositive) {
		t.Fatalf("expected ErrNotPositive, got %v", err)
	}
	if _, err := e.MinimalNaive(); !errors.Is(err, ErrNotPositive) {
		t.Fatalf("expected ErrNotPositive, got %v", err)
	}
}

func TestNaiveEqualsSemiNaive(t *testing.T) {
	e := mustEngine(t, tcSrc)
	a, err := e.Minimal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.MinimalNaive()
	if err != nil {
		t.Fatal(err)
	}
	if !SameTruths(a, b) {
		t.Error("naive and semi-naive minimal models differ")
	}
}

// TestWinGameAcyclic is the paper's Example 3 WIN game on an acyclic MOVE
// relation: the valid interpretation is two-valued.
func TestWinGameAcyclic(t *testing.T) {
	e := mustEngine(t, `
move(a, b). move(b, c). move(b, d).
win(X) :- move(X, Y), not win(Y).
`)
	for name, in := range map[string]*Interp{"valid": e.Valid(), "wfs": e.WellFounded()} {
		// c and d have no moves: lost. b can move to c: won. a can only move
		// to b (won): lost.
		if got := truthOf(in, "win", sym("b")); got != True {
			t.Errorf("%s: win(b) = %v, want true", name, got)
		}
		if got := truthOf(in, "win", sym("a")); got != False {
			t.Errorf("%s: win(a) = %v, want false", name, got)
		}
		if got := truthOf(in, "win", sym("c")); got != False {
			t.Errorf("%s: win(c) = %v, want false", name, got)
		}
		if !in.IsTotal() {
			t.Errorf("%s: acyclic game should be two-valued; %d undefined", name, in.CountUndef())
		}
	}
}

// TestWinGameCyclic: with the tuple [a, a] in MOVE, the paper states the
// membership status of a in WIN is undefined.
func TestWinGameCyclic(t *testing.T) {
	e := mustEngine(t, `
move(a, a). move(a, b).
win(X) :- move(X, Y), not win(Y).
`)
	for name, in := range map[string]*Interp{"valid": e.Valid(), "wfs": e.WellFounded()} {
		// b has no moves: win(b) false. a: move to b (lost) wins... wait,
		// win(a) :- move(a,b), not win(b) derives win(a) TRUE since win(b)
		// is certainly false.
		if got := truthOf(in, "win", sym("a")); got != True {
			t.Errorf("%s: win(a) = %v, want true (a can move to lost b)", name, got)
		}
	}
	// A pure cycle with no escape is genuinely undefined.
	e2 := mustEngine(t, `
move(a, a).
win(X) :- move(X, Y), not win(Y).
`)
	for name, in := range map[string]*Interp{"valid": e2.Valid(), "wfs": e2.WellFounded()} {
		if got := truthOf(in, "win", sym("a")); got != Undef {
			t.Errorf("%s: win(a) = %v, want undef on pure cycle", name, got)
		}
	}
}

// TestExample4 reproduces the paper's Example 4: the translation of
// Q = IFP_{{a}−x} is { r(a);  q(X) :- r(X), not q(X) }. Under inflationary
// semantics q(a) is derived; under the valid (and well-founded) semantics
// q(a) is undefined.
func TestExample4(t *testing.T) {
	e := mustEngine(t, `
r(a).
q(X) :- r(X), not q(X).
`)
	infl, steps := e.Inflationary()
	if got := truthOf(infl, "q", sym("a")); got != True {
		t.Errorf("inflationary: q(a) = %v, want true", got)
	}
	if steps != 1 {
		t.Errorf("inflationary steps = %d, want 1 (r(a) is given at step 0, q(a) fires at step 1)", steps)
	}
	if got := truthOf(e.Valid(), "q", sym("a")); got != Undef {
		t.Errorf("valid: q(a) = %v, want undef", got)
	}
	if got := truthOf(e.WellFounded(), "q", sym("a")); got != Undef {
		t.Errorf("wfs: q(a) = %v, want undef", got)
	}
}

func TestInflationaryFactsAtStepZero(t *testing.T) {
	// Database facts are the step-0 structure: a rule negating a fact must
	// never fire (regression: starting from the empty set instead would
	// derive p at step 1, diverging from the Proposition 5.2 transform and
	// from the standard inflationary semantics).
	e := mustEngine(t, "q. p :- not q.")
	infl, steps := e.Inflationary()
	if got := truthOf(infl, "p"); got != False {
		t.Errorf("p = %v, want false (q is a fact)", got)
	}
	if got := truthOf(infl, "q"); got != True {
		t.Errorf("q = %v, want true", got)
	}
	if steps != 0 {
		t.Errorf("steps = %d, want 0 (nothing fires after step 0)", steps)
	}
	// Negating a derived atom still respects derivation order.
	e2 := mustEngine(t, "q :- r. r. p :- not q.")
	infl2, _ := e2.Inflationary()
	if got := truthOf(infl2, "p"); got != True {
		t.Errorf("p = %v, want true (q not yet derived at step 1)", got)
	}
}

func TestStratifiedEvaluation(t *testing.T) {
	src := `
e(1, 2). e(2, 3).
n(1). n(2). n(3).
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
un(X, Y) :- n(X), n(Y), not tc(X, Y).
`
	p := datalog.MustParse(src)
	strat, err := datalog.Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, src)
	in, err := e.Stratified(strat)
	if err != nil {
		t.Fatal(err)
	}
	if got := truthOf(in, "un", value.Int(3), value.Int(1)); got != True {
		t.Errorf("un(3,1) = %v, want true", got)
	}
	if got := truthOf(in, "un", value.Int(1), value.Int(3)); got != False {
		t.Errorf("un(1,3) = %v, want false", got)
	}
	// Stratified result agrees with valid/WFS on stratified programs.
	if !SameTruths(in, e.Valid()) {
		t.Error("stratified and valid models differ on a stratified program")
	}
	if !SameTruths(in, e.WellFounded()) {
		t.Error("stratified and WFS models differ on a stratified program")
	}
}

func TestStratifiedRejectsBadStrata(t *testing.T) {
	e := mustEngine(t, "p(1). q(X) :- p(X), not r(X). r(1).")
	if _, err := e.Stratified(map[string]int{"p": 0, "q": 0, "r": 0}); err == nil {
		t.Error("expected error for negation within a stratum")
	}
	if _, err := e.Stratified(map[string]int{"p": 0, "q": 1}); err == nil {
		t.Error("expected error for missing stratum")
	}
}

func TestStableModelsWinCycle(t *testing.T) {
	// Pure two-cycle: win(a) :- not win(b) essence; two stable models.
	e := mustEngine(t, `
move(a, b). move(b, a).
win(X) :- move(X, Y), not win(Y).
`)
	models, err := e.StableModels(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("got %d stable models, want 2", len(models))
	}
	// One has win(a), the other win(b), never both.
	seen := map[string]bool{}
	for _, m := range models {
		a := truthOf(m, "win", sym("a")) == True
		b := truthOf(m, "win", sym("b")) == True
		if a == b {
			t.Errorf("stable model has win(a)=%v win(b)=%v", a, b)
		}
		if a {
			seen["a"] = true
		} else {
			seen["b"] = true
		}
	}
	if !seen["a"] || !seen["b"] {
		t.Error("expected one model with win(a) and one with win(b)")
	}
}

func TestStableModelsOddLoop(t *testing.T) {
	// p :- not p has no stable model (and p is undefined in WFS/valid).
	e := mustEngine(t, "p :- not p.")
	models, err := e.StableModels(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 0 {
		t.Errorf("got %d stable models, want 0", len(models))
	}
}

func TestStableModelsBudget(t *testing.T) {
	e := mustEngine(t, `
move(a, b). move(b, a).
win(X) :- move(X, Y), not win(Y).
`)
	_, err := e.StableModels(1)
	if !errors.Is(err, ErrTooManyUndef) {
		t.Fatalf("expected ErrTooManyUndef, got %v", err)
	}
}

func TestWFSTrueInEveryStableModel(t *testing.T) {
	// The well-founded model is the skeptical core of the stable models.
	srcs := []string{
		"move(a, b). move(b, a). move(b, c).\nwin(X) :- move(X, Y), not win(Y).",
		"p :- not q. q :- not p. r :- p. r :- q.",
		"a :- not b. b :- not a. c :- not c, a.",
	}
	for _, src := range srcs {
		e := mustEngine(t, src)
		wf := e.WellFounded()
		models, err := e.StableModels(20)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range models {
			for id := 0; id < e.Ground().NumAtoms(); id++ {
				if wf.Truth(id) == True && m.Truth(id) != True {
					t.Errorf("%s: WFS-true atom %s not in stable model", src, e.Ground().Atom(id))
				}
				if wf.Truth(id) == False && m.Truth(id) != False {
					t.Errorf("%s: WFS-false atom %s true in stable model", src, e.Ground().Atom(id))
				}
			}
		}
	}
}

func TestValidEqualsWFSOnCorpus(t *testing.T) {
	// The Section 2.2 valid procedure and the alternating fixpoint are
	// independently implemented; they must agree on the corpus (the paper's
	// remark that its results adjust between the semantics).
	srcs := []string{
		tcSrc,
		"move(a, a).\nwin(X) :- move(X, Y), not win(Y).",
		"move(a, b). move(b, a). move(b, c).\nwin(X) :- move(X, Y), not win(Y).",
		"r(a).\nq(X) :- r(X), not q(X).",
		"p :- not q. q :- not p.",
		"p :- not p.",
		"d(1). d(2).\np(X) :- d(X), not q(X).\nq(X) :- d(X), not p(X).\nboth(X) :- p(X). both(X) :- q(X).",
	}
	for _, src := range srcs {
		e := mustEngine(t, src)
		if !SameTruths(e.Valid(), e.WellFounded()) {
			t.Errorf("valid and WFS differ on:\n%s", src)
		}
	}
}

func TestInflationaryVsValidOnStratified(t *testing.T) {
	// On a semipositive program, inflationary = stratified = valid
	// (negations on EDB only).
	src := `
d(1). d(2). q(2).
p(X) :- d(X), not q(X).
`
	e := mustEngine(t, src)
	infl, _ := e.Inflationary()
	if !SameTruths(infl, e.Valid()) {
		t.Error("inflationary and valid differ on semipositive program")
	}
}

// randomGroundProgram builds a small random propositional program text.
func randomGroundProgram(r *rand.Rand) string {
	atoms := []string{"a0", "a1", "a2", "a3", "a4", "a5"}
	var sb []byte
	nRules := 3 + r.Intn(8)
	for i := 0; i < nRules; i++ {
		head := atoms[r.Intn(len(atoms))]
		sb = append(sb, head...)
		nBody := r.Intn(3)
		if nBody > 0 {
			sb = append(sb, " :- "...)
			for j := 0; j < nBody; j++ {
				if j > 0 {
					sb = append(sb, ", "...)
				}
				if r.Intn(3) == 0 {
					sb = append(sb, "not "...)
				}
				sb = append(sb, atoms[r.Intn(len(atoms))]...)
			}
		}
		sb = append(sb, ".\n"...)
	}
	return string(sb)
}

func TestPropertyWFSConsistentWithStable(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomGroundProgram(r)
		p, err := datalog.ParseProgram(src)
		if err != nil {
			return false
		}
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			return false
		}
		e := NewEngine(g)
		wf := e.WellFounded()
		valid := e.Valid()
		if !SameTruths(wf, valid) {
			t.Logf("valid != WFS on:\n%s", src)
			return false
		}
		models, err := e.StableModels(20)
		if err != nil {
			return false
		}
		for _, m := range models {
			for id := 0; id < g.NumAtoms(); id++ {
				if wf.Truth(id) == True && m.Truth(id) != True {
					return false
				}
				if wf.Truth(id) == False && m.Truth(id) == True {
					return false
				}
			}
		}
		// If WFS is total it is the unique stable model.
		if wf.IsTotal() {
			if len(models) != 1 || !SameTruths(models[0], wf) {
				t.Logf("total WFS but stable models = %d on:\n%s", len(models), src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInflationaryContainsMinimalOnPositive(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// positive random program: strip negation by regenerating
		atoms := []string{"a0", "a1", "a2", "a3"}
		var sb []byte
		for i := 0; i < 3+r.Intn(6); i++ {
			sb = append(sb, atoms[r.Intn(len(atoms))]...)
			n := r.Intn(3)
			if n > 0 {
				sb = append(sb, " :- "...)
				for j := 0; j < n; j++ {
					if j > 0 {
						sb = append(sb, ", "...)
					}
					sb = append(sb, atoms[r.Intn(len(atoms))]...)
				}
			}
			sb = append(sb, ".\n"...)
		}
		p, err := datalog.ParseProgram(string(sb))
		if err != nil {
			return false
		}
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			return false
		}
		e := NewEngine(g)
		min, err := e.Minimal()
		if err != nil {
			return false
		}
		infl, _ := e.Inflationary()
		wfs := e.WellFounded()
		// On positive programs all semantics coincide with the minimal model.
		return SameTruths(min, infl) && SameTruths(min, wfs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLocallyStratifiedHasTotalWFS is the executable form of the paper's
// Theorem 3.1 proof principle: a locally stratified ground program has a
// two-valued well-founded (hence valid) model. Checked on random programs:
// whenever local stratification holds, WFS must be total.
func TestLocallyStratifiedHasTotalWFS(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomGroundProgram(r)
		p, err := datalog.ParseProgram(src)
		if err != nil {
			return false
		}
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			return false
		}
		e := NewEngine(g)
		wf := e.WellFounded()
		if ground.LocallyStratified(g) && !wf.IsTotal() {
			t.Logf("locally stratified but WFS not total:\n%s", src)
			return false
		}
		// The converse does not hold in general (p :- not p, p. is total but
		// not locally stratified), so only the forward direction is law.
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestEvalConvenience(t *testing.T) {
	p := datalog.MustParse(tcSrc)
	for _, sem := range []Semantics{SemMinimal, SemStratified, SemInflationary, SemWellFounded, SemValid} {
		in, err := Eval(p, sem, ground.Budget{})
		if err != nil {
			t.Fatalf("%v: %v", sem, err)
		}
		if got := len(in.TrueFacts("tc")); got != 6 {
			t.Errorf("%v: |tc| = %d, want 6", sem, got)
		}
	}
	// Minimal rejects programs with negation; stratified rejects win game.
	neg := datalog.MustParse("p(1). q(X) :- p(X), not r(X).")
	if _, err := Eval(neg, SemMinimal, ground.Budget{}); err == nil {
		t.Error("SemMinimal should reject negation")
	}
	win := datalog.MustParse("move(a, a). win(X) :- move(X, Y), not win(Y).")
	if _, err := Eval(win, SemStratified, ground.Budget{}); err == nil {
		t.Error("SemStratified should reject the win game")
	}
}

func TestParseSemantics(t *testing.T) {
	for name, want := range map[string]Semantics{
		"minimal": SemMinimal, "stratified": SemStratified, "inflationary": SemInflationary,
		"wellfounded": SemWellFounded, "well-founded": SemWellFounded, "wfs": SemWellFounded,
		"valid": SemValid,
	} {
		got, err := ParseSemantics(name)
		if err != nil || got != want {
			t.Errorf("ParseSemantics(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseSemantics("nope"); err == nil {
		t.Error("expected error for unknown semantics")
	}
	for _, s := range []Semantics{SemMinimal, SemStratified, SemInflationary, SemWellFounded, SemValid} {
		if s.String() == "" {
			t.Error("empty semantics name")
		}
	}
}

func TestInterpAccessors(t *testing.T) {
	e := mustEngine(t, "move(a, a). win(X) :- move(X, Y), not win(Y).")
	in := e.Valid()
	if in.IsTotal() {
		t.Error("cyclic game should not be total")
	}
	if got := in.CountUndef(); got != 1 {
		t.Errorf("CountUndef = %d, want 1", got)
	}
	un := in.UndefFacts("win")
	if len(un) != 1 || un[0].Key() != "win(a)" {
		t.Errorf("UndefFacts = %v", un)
	}
	if len(in.UndefAtoms()) != 1 {
		t.Errorf("UndefAtoms = %v", in.UndefAtoms())
	}
	if got := truthOf(in, "move", sym("a"), sym("a")); got != True {
		t.Errorf("move(a,a) = %v", got)
	}
	if Truth(0).String() != "undef" || True.String() != "true" || False.String() != "false" {
		t.Error("Truth.String broken")
	}
}
