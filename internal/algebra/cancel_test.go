package algebra

import (
	"errors"
	"testing"
	"time"

	"algrec/internal/value"
)

// divergentIFP is an IFP whose fixpoint is infinite: ifp(s, union({0}, map(s, x+1))).
func divergentIFP() Expr {
	return IFP{Var: "s", Body: Union{
		L: Lit{Set: value.NewSet(value.Int(0))},
		R: Map{Of: Rel{Name: "s"}, Var: "x", Out: FArith{Op: OpPlus, L: FVar{Name: "x"}, R: FConst{V: value.Int(1)}}},
	}}
}

func TestInterruptStopsDivergentIFP(t *testing.T) {
	ch := make(chan struct{})
	close(ch)
	ev := NewEvaluator(DB{}, Budget{Interrupt: ch})
	_, err := ev.Eval(divergentIFP())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestInterruptFiresMidFixpoint(t *testing.T) {
	ch := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		ev := NewEvaluator(DB{}, Budget{MaxIFPIters: 1 << 30, MaxSetSize: 1 << 30, Interrupt: ch})
		_, err := ev.Eval(divergentIFP())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(ch)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("evaluation did not stop within 10s of the interrupt")
	}
}

func TestNoInterruptIsFree(t *testing.T) {
	// A nil Interrupt must not change results: the win-game fixpoint of the
	// paper's Example 3 still converges.
	if err := (Budget{}).Stop(); err != nil {
		t.Fatalf("nil Interrupt reported %v", err)
	}
}
