package algebra

import (
	"errors"
	"strings"
	"testing"

	"algrec/internal/obsv"
	"algrec/internal/value"
)

// rangeSet returns {0, 1, ..., n-1} as a set of integers.
func rangeSet(n int) value.Set {
	b := value.NewSetBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(value.Int(int64(i)))
	}
	return b.Set()
}

// chainSet returns {(i, i+1) | 0 <= i < n}.
func chainSet(n int) value.Set {
	b := value.NewSetBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(value.Pair(value.Int(int64(i)), value.Int(int64(i+1))))
	}
	return b.Set()
}

func fld(v string, idx ...int) FExpr {
	var e FExpr = FVar{Name: v}
	for _, i := range idx {
		e = FField{Of: e, Idx: i}
	}
	return e
}

func parity(e FExpr) FExpr {
	return FCmp{Op: OpEq,
		L: FArith{Op: OpMod, L: e, R: FConst{V: value.Int(2)}},
		R: FConst{V: value.Int(0)}}
}

// equiSelect is the pinned pushdown example: σ_{p.1%2=0 ∧ p.1=p.2}(A×B).
func equiSelect() Expr {
	return Select{
		Of:  Product{L: Rel{Name: "A"}, R: Rel{Name: "B"}},
		Var: "p",
		Test: FAnd{
			L: parity(fld("p", 1)),
			R: FCmp{Op: OpEq, L: fld("p", 1), R: fld("p", 2)},
		},
	}
}

// tcPipelineExpr is transitive closure of E as an IFP over a join pipeline.
func tcPipelineExpr() Expr {
	return IFP{Var: "t", Body: Union{
		L: Rel{Name: "E"},
		R: Map{
			Of: Select{
				Of:   Product{L: Rel{Name: "t"}, R: Rel{Name: "E"}},
				Var:  "u",
				Test: FCmp{Op: OpEq, L: fld("u", 1, 2), R: fld("u", 2, 1)},
			},
			Var: "w",
			Out: FTuple{Elems: []FExpr{fld("w", 1, 1), fld("w", 2, 2)}},
		},
	}}
}

func TestStreamEligible(t *testing.T) {
	prod := Product{L: Rel{Name: "A"}, R: Rel{Name: "B"}}
	cases := []struct {
		e    Expr
		want bool
	}{
		{equiSelect(), true},
		{Select{Of: Rel{Name: "A"}, Var: "p", Test: parity(FVar{Name: "p"})}, false},
		{Map{Of: prod, Var: "p", Out: fld("p", 1)}, true},
		{Map{Of: Rel{Name: "E"}, Var: "p", Out: fld("p", 1)}, false},
		{prod, false}, // bare products stay materialized: no σ/MAP entry point
		{Select{Of: Union{L: prod, R: Rel{Name: "E"}}, Var: "p", Test: parity(fld("p", 1))}, true},
		{Select{Of: Diff{L: prod, R: Rel{Name: "E"}}, Var: "p", Test: parity(fld("p", 1))}, false},
		{tcPipelineExpr(), false}, // the IFP is not a spine; its body streams internally
	}
	for i, c := range cases {
		if got := StreamEligible(c.e); got != c.want {
			t.Errorf("case %d: StreamEligible = %v, want %v", i, got, c.want)
		}
	}
}

func TestPlanJoinPushdownAndEdges(t *testing.T) {
	sel := equiSelect().(Select)
	plan, ok := planJoin(sel.Var, sel.Test, sel.Of.(Product), false)
	if !ok {
		t.Fatal("planJoin refused a two-leaf join")
	}
	if len(plan.leaves) != 2 {
		t.Fatalf("got %d leaves, want 2", len(plan.leaves))
	}
	if len(plan.leaves[0].filters) != 1 || len(plan.leaves[1].filters) != 0 {
		t.Fatalf("pushed filters: leaf0 %d, leaf1 %d; want 1, 0",
			len(plan.leaves[0].filters), len(plan.leaves[1].filters))
	}
	if len(plan.edges) != 1 {
		t.Fatalf("got %d join edges, want 1", len(plan.edges))
	}
	plan.reorder([]int{10, 10})
	// The filtered leaf estimates 10×selEq = 1 < 10, so it drives the scan
	// and the other leaf is bound by a one-key hash join.
	want := "scan leaf 0 [1 pushed filter(s)] est=1.0\nhash-join leaf 1 on 1 key(s) est=10.0\n"
	if got := plan.Explain(); got != want {
		t.Fatalf("Explain:\n%s\nwant:\n%s", got, want)
	}
}

func TestPlanJoinNestedPaths(t *testing.T) {
	// σ over (t×E) with the cross-leaf key u.1.2 = u.2.1: both sides are
	// nested one level below the leaf, so the edge carries inner paths.
	sel := tcPipelineExpr().(IFP).Body.(Union).R.(Map).Of.(Select)
	plan, ok := planJoin(sel.Var, sel.Test, sel.Of.(Product), false)
	if !ok {
		t.Fatal("planJoin refused the TC join")
	}
	if len(plan.edges) != 1 {
		t.Fatalf("got %d edges, want 1", len(plan.edges))
	}
	e := plan.edges[0]
	if e.a.leaf != 0 || len(e.a.path) != 1 || e.a.path[0] != 2 {
		t.Fatalf("edge left side = leaf %d path %v, want leaf 0 path [2]", e.a.leaf, e.a.path)
	}
	if e.b.leaf != 1 || len(e.b.path) != 1 || e.b.path[0] != 1 {
		t.Fatalf("edge right side = leaf %d path %v, want leaf 1 path [1]", e.b.leaf, e.b.path)
	}
	plan.reorder([]int{3, 100})
	if !strings.Contains(plan.Explain(), "hash-join leaf 1 on 1 key(s)") {
		t.Fatalf("Explain lacks the hash-join step:\n%s", plan.Explain())
	}
}

func TestPlanJoinRefusesWideTowers(t *testing.T) {
	var e Expr = Rel{Name: "A"}
	for i := 0; i < maxPlanLeaves; i++ { // maxPlanLeaves+1 leaves total
		e = Product{L: e, R: Rel{Name: "A"}}
	}
	if _, ok := planJoin("", nil, e.(Product), false); ok {
		t.Fatal("planJoin accepted a product wider than maxPlanLeaves")
	}
}

// assertStreamEq evaluates e with the streaming runtime on and off and
// demands identical outcomes.
func assertStreamEq(t *testing.T, e Expr, db DB) {
	t.Helper()
	st, errSt := NewEvaluator(db, Budget{}).Eval(e)
	mat, errMat := NewEvaluator(db, Budget{NoStreaming: true}).Eval(e)
	if (errSt == nil) != (errMat == nil) {
		t.Fatalf("error divergence: streaming %v, materialized %v", errSt, errMat)
	}
	if errSt == nil && !value.Equal(st, mat) {
		t.Fatalf("result divergence:\n  streaming:    %v\n  materialized: %v", st, mat)
	}
}

func TestStreamingMatchesMaterialized(t *testing.T) {
	db := DB{"A": rangeSet(10), "B": rangeSet(7), "E": chainSet(8)}
	prod := Product{L: Rel{Name: "A"}, R: Rel{Name: "B"}}
	cases := []Expr{
		equiSelect(),
		tcPipelineExpr(),
		// no usable key: pure streamed cross with a re-checked range test
		Select{Of: prod, Var: "p", Test: FCmp{Op: OpLt, L: fld("p", 1), R: fld("p", 2)}},
		// σ over a union of a product and a pair relation
		Select{Of: Union{L: prod, R: Rel{Name: "E"}}, Var: "p",
			Test: FCmp{Op: OpGe, L: fld("p", 2), R: fld("p", 1)}},
		// MAP directly over a product
		Map{Of: prod, Var: "p",
			Out: FArith{Op: OpPlus, L: fld("p", 1), R: fld("p", 2)}},
		// empty side
		Select{Of: Product{L: Rel{Name: "A"}, R: Lit{Set: value.Set{}}}, Var: "p",
			Test: FCmp{Op: OpEq, L: fld("p", 1), R: fld("p", 2)}},
		// three-leaf nested product with two keys
		Select{
			Of:  Product{L: Product{L: Rel{Name: "A"}, R: Rel{Name: "B"}}, R: Rel{Name: "A"}},
			Var: "p",
			Test: FAnd{
				L: FCmp{Op: OpEq, L: fld("p", 1, 1), R: fld("p", 2)},
				R: FCmp{Op: OpEq, L: fld("p", 1, 2), R: fld("p", 2)},
			},
		},
	}
	for _, e := range cases {
		assertStreamEq(t, e, db)
	}
}

// TestStreamingMatchesMaterializedOnErrors pins the error-deferral policy:
// a pushed conjunct that errors on a leaf element must not change which
// error-free elements survive, and an erroring test must fail both paths.
func TestStreamingMatchesMaterializedOnErrors(t *testing.T) {
	// B mixes integers with a pair, so p.2 % 2 errors on the pair element.
	b := value.NewSet(value.Int(1), value.Int(2), value.Pair(value.Int(0), value.Int(0)))
	db := DB{"A": rangeSet(3), "B": b}
	e := Select{
		Of:  Product{L: Rel{Name: "A"}, R: Rel{Name: "B"}},
		Var: "p",
		Test: FAnd{
			L: parity(fld("p", 2)),
			R: FCmp{Op: OpEq, L: fld("p", 1), R: fld("p", 2)},
		},
	}
	st, errSt := NewEvaluator(db, Budget{}).Eval(e)
	mat, errMat := NewEvaluator(db, Budget{NoStreaming: true}).Eval(e)
	if (errSt == nil) != (errMat == nil) {
		t.Fatalf("error divergence: streaming %v, materialized %v", errSt, errMat)
	}
	if errSt == nil && !value.Equal(st, mat) {
		t.Fatalf("result divergence:\n  streaming:    %v\n  materialized: %v", st, mat)
	}
}

// TestStreamingBudgetBoundary pins the one intended divergence class: the
// materialized path rejects a product whose intermediate size exceeds the
// budget even when the output is small; the streaming path bounds only the
// collected output, so it succeeds. Both outcomes are ErrBudget-or-success,
// which the differential oracles classify as a skip.
func TestStreamingBudgetBoundary(t *testing.T) {
	db := DB{"A": rangeSet(10), "B": rangeSet(10)}
	e := Select{
		Of:   Product{L: Rel{Name: "A"}, R: Rel{Name: "B"}},
		Var:  "p",
		Test: FCmp{Op: OpLt, L: fld("p", 1), R: fld("p", 2)},
	}
	budget := Budget{MaxSetSize: 50}
	st, errSt := NewEvaluator(db, budget).Eval(e)
	if errSt != nil || st.Len() != 45 {
		t.Fatalf("streaming: got %d elements, err %v; want 45, nil", st.Len(), errSt)
	}
	budget.NoStreaming = true
	if _, errMat := NewEvaluator(db, budget).Eval(e); !errors.Is(errMat, ErrBudget) {
		t.Fatalf("materialized: got %v, want ErrBudget (100-element product over a 50 cap)", errMat)
	}
	// The streamed output itself is still bounded:
	budget = Budget{MaxSetSize: 20}
	if _, err := NewEvaluator(db, budget).Eval(e); !errors.Is(err, ErrBudget) {
		t.Fatalf("streaming over a 20 cap: got %v, want ErrBudget", err)
	}
}

// streamCounters evaluates e and returns the stream.* counters it reported.
func streamCounters(t *testing.T, e Expr, db DB) obsv.Snapshot {
	t.Helper()
	stats := obsv.NewStats()
	ev := NewEvaluator(db, Budget{})
	ev.SetCollector(stats)
	if _, err := ev.Eval(e); err != nil {
		t.Fatal(err)
	}
	return stats.Snapshot()
}

// TestStreamPushdownCounts pins exact event counts on the A=B={0..9}
// example: with the parity conjunct pushed below the join, only the 5 even
// elements of A probe the hash index and only their 5 matches reach the
// complete test — against 10 tested rows when no conjunct is pushable.
func TestStreamPushdownCounts(t *testing.T) {
	db := DB{"A": rangeSet(10), "B": rangeSet(10)}
	snap := streamCounters(t, equiSelect(), db)
	want := obsv.Snapshot{
		"stream.pipelines": 1,
		"stream.scanned":   20, // both leaves are scanned in full, once
		"stream.pushed":    1,
		"stream.hashJoins": 1,
		"stream.tested":    5, // only even A-elements survive the pushed filter
		"stream.emitted":   5,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("%s = %d, want %d (full snapshot %v)", k, snap[k], v, snap)
		}
	}

	// Same join without the pushable conjunct: every A-element probes, so
	// twice as many rows reach the complete test.
	bare := Select{
		Of:   Product{L: Rel{Name: "A"}, R: Rel{Name: "B"}},
		Var:  "p",
		Test: FCmp{Op: OpEq, L: fld("p", 1), R: fld("p", 2)},
	}
	snapBare := streamCounters(t, bare, db)
	if snapBare["stream.tested"] != 10 || snapBare["stream.pushed"] != 0 {
		t.Errorf("unpushed join: tested %d pushed %d, want 10 and 0 (snapshot %v)",
			snapBare["stream.tested"], snapBare["stream.pushed"], snapBare)
	}
	if snap["stream.tested"] >= snapBare["stream.tested"] {
		t.Errorf("pushdown did not reduce tested rows: %d vs %d",
			snap["stream.tested"], snapBare["stream.tested"])
	}

	// NoStreaming reports no pipeline events at all.
	stats := obsv.NewStats()
	ev := NewEvaluator(db, Budget{NoStreaming: true})
	ev.SetCollector(stats)
	if _, err := ev.Eval(equiSelect()); err != nil {
		t.Fatal(err)
	}
	if n := stats.Snapshot()["stream.pipelines"]; n != 0 {
		t.Errorf("NoStreaming still reported %d pipelines", n)
	}
}
