package stream

import (
	"errors"
	"testing"

	"algrec/internal/value"
)

func ints(ns ...int64) []value.Value {
	out := make([]value.Value, len(ns))
	for i, n := range ns {
		out[i] = value.Int(n)
	}
	return out
}

func drain(t *testing.T, it Iterator) []value.Value {
	t.Helper()
	var out []value.Value
	for {
		v, ok, err := it.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func TestFromSetCanonicalOrder(t *testing.T) {
	s := value.NewSet(ints(3, 1, 2, 1)...)
	got := drain(t, FromSet(s))
	if len(got) != 3 {
		t.Fatalf("got %d elements, want 3", len(got))
	}
	for i, v := range got {
		if !value.Equal(v, s.At(i)) {
			t.Fatalf("element %d: got %v, want %v", i, v, s.At(i))
		}
	}
}

func TestFromSlicePreservesOrderAndDuplicates(t *testing.T) {
	in := ints(2, 2, 1)
	got := drain(t, FromSlice(in))
	if len(got) != 3 || got[0] != in[0] || got[2] != in[2] {
		t.Fatalf("got %v, want the slice verbatim", got)
	}
}

func TestFilterTransformConcat(t *testing.T) {
	even := func(v value.Value) (bool, error) {
		return v.(value.Int)%2 == 0, nil
	}
	double := func(v value.Value) (value.Value, error) {
		return value.Int(v.(value.Int) * 2), nil
	}
	it := Concat(
		Transform(Filter(FromSlice(ints(1, 2, 3, 4)), even), double),
		FromSlice(ints(9)),
	)
	got := drain(t, it)
	want := ints(4, 8, 9)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if !value.Equal(got[i], want[i]) {
			t.Fatalf("element %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestErrorsAbort(t *testing.T) {
	boom := errors.New("boom")
	fail := Filter(FromSlice(ints(1)), func(value.Value) (bool, error) { return false, boom })
	if _, _, err := fail.Next(); !errors.Is(err, boom) {
		t.Fatalf("Filter error: got %v, want boom", err)
	}
	fail = Transform(FromSlice(ints(1)), func(value.Value) (value.Value, error) { return nil, boom })
	if _, _, err := fail.Next(); !errors.Is(err, boom) {
		t.Fatalf("Transform error: got %v, want boom", err)
	}
	if _, err := Collect(Concat(FromSlice(ints(2)), fail), 0); err != nil {
		// fail was already drained to its error above; Concat must not
		// resurrect it — but a fresh failing iterator must propagate:
		t.Fatalf("unexpected: %v", err)
	}
}

func TestCounted(t *testing.T) {
	n := 0
	got := drain(t, Counted(FromSlice(ints(5, 6, 7)), &n))
	if n != 3 || len(got) != 3 {
		t.Fatalf("counted %d over %d elements, want 3/3", n, len(got))
	}
}

func TestCollectDedupsAndSorts(t *testing.T) {
	s, err := Collect(FromSlice(ints(3, 1, 3, 2, 1)), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := value.NewSet(ints(1, 2, 3)...)
	if !value.Equal(s, want) {
		t.Fatalf("got %v, want %v", s, want)
	}
}

func TestCollectLimit(t *testing.T) {
	if _, err := Collect(FromSlice(ints(1, 2, 3)), 2); !errors.Is(err, ErrLimit) {
		t.Fatalf("got %v, want ErrLimit", err)
	}
	// Duplicates beyond the limit are fine as long as the deduplicated
	// size fits: the limit is on the collected set, not the stream.
	s, err := Collect(FromSlice(ints(1, 1, 1, 1, 1, 2)), 2)
	if err != nil || s.Len() != 2 {
		t.Fatalf("got %v, %v; want a 2-element set", s, err)
	}
}
