// Package stream is the lazy pull-iterator substrate of the streaming
// execution runtime: a minimal Iterator interface over complex-object
// values, composable filter/transform/concatenation adapters, and a
// bounded Collect that folds a pipeline back into a canonical value.Set.
//
// The package deliberately knows nothing about the algebra: operators that
// need selection tests or MAP bodies (internal/algebra's FExpr) are built
// in internal/algebra on top of these primitives, which keeps the import
// direction acyclic (algebra → stream → value). What lives here is the
// protocol — Next returns (element, true, nil) until the stream is
// exhausted, then (nil, false, nil); an error aborts the pipeline — and
// the adapters that need only the protocol.
//
// Iterators are single-use, not safe for concurrent use, and lazy: no
// element is produced before the first Next, and abandoning an iterator
// midway costs nothing. A pipeline's peak memory is its source sets plus
// the collected output, never a materialized intermediate — that is the
// whole point (see docs/architecture.md for the streaming vs materialized
// execution paths and docs/planner.md for how internal/algebra plans join
// pipelines over this package).
package stream

import (
	"errors"

	"algrec/internal/value"
)

// Iterator is a pull cursor over a finite stream of values. Next returns
// the next element with ok=true, or ok=false once the stream is exhausted.
// A non-nil error aborts the stream; callers must not call Next again
// after either ok=false or an error.
type Iterator interface {
	Next() (v value.Value, ok bool, err error)
}

// ErrLimit is returned by Collect when the collected set would exceed the
// size limit. Callers translate it into their own budget-error type
// (internal/algebra wraps it into ErrBudget).
var ErrLimit = errors.New("stream: collected set exceeds the size limit")

// setIter iterates a value.Set in its canonical sorted order.
type setIter struct {
	s value.Set
	i int
}

// FromSet returns an iterator over the set's elements in canonical order.
func FromSet(s value.Set) Iterator { return &setIter{s: s} }

// Next implements Iterator.
func (it *setIter) Next() (value.Value, bool, error) {
	if it.i >= it.s.Len() {
		return nil, false, nil
	}
	v := it.s.At(it.i)
	it.i++
	return v, true, nil
}

// sliceIter iterates a slice in order. The slice is not copied.
type sliceIter struct {
	vs []value.Value
	i  int
}

// FromSlice returns an iterator over the slice's elements in order. The
// slice is aliased, not copied; the caller must not mutate it while the
// iterator is live.
func FromSlice(vs []value.Value) Iterator { return &sliceIter{vs: vs} }

// Next implements Iterator.
func (it *sliceIter) Next() (value.Value, bool, error) {
	if it.i >= len(it.vs) {
		return nil, false, nil
	}
	v := it.vs[it.i]
	it.i++
	return v, true, nil
}

// filter passes through the elements satisfying the predicate.
type filter struct {
	in   Iterator
	keep func(value.Value) (bool, error)
}

// Filter returns an iterator over in's elements for which keep returns
// true. A predicate error aborts the stream.
func Filter(in Iterator, keep func(value.Value) (bool, error)) Iterator {
	return &filter{in: in, keep: keep}
}

// Next implements Iterator, skipping elements the predicate rejects.
func (it *filter) Next() (value.Value, bool, error) {
	for {
		v, ok, err := it.in.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		keep, err := it.keep(v)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return v, true, nil
		}
	}
}

// transform applies a function to every element.
type transform struct {
	in Iterator
	f  func(value.Value) (value.Value, error)
}

// Transform returns an iterator applying f to every element of in (the
// streaming form of the algebra's MAP). Output elements are not
// deduplicated here; Collect canonicalizes.
func Transform(in Iterator, f func(value.Value) (value.Value, error)) Iterator {
	return &transform{in: in, f: f}
}

// Next implements Iterator, returning f of the next input element.
func (it *transform) Next() (value.Value, bool, error) {
	v, ok, err := it.in.Next()
	if !ok || err != nil {
		return nil, false, err
	}
	out, err := it.f(v)
	if err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// concat drains a sequence of iterators in order.
type concat struct {
	its []Iterator
	i   int
}

// Concat returns an iterator draining each input iterator in order (the
// streaming form of union; duplicates across inputs are resolved by
// Collect's canonicalization).
func Concat(its ...Iterator) Iterator { return &concat{its: its} }

// Next implements Iterator, moving to the next input when one drains.
func (it *concat) Next() (value.Value, bool, error) {
	for it.i < len(it.its) {
		v, ok, err := it.its[it.i].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return v, true, nil
		}
		it.i++
	}
	return nil, false, nil
}

// Counted returns an iterator that increments *n for every element pulled
// through it — the hook the observability layer uses to count scanned and
// emitted elements without the adapters knowing about collectors.
func Counted(in Iterator, n *int) Iterator {
	return Transform(in, func(v value.Value) (value.Value, error) {
		*n++
		return v, nil
	})
}

// Collect drains the iterator into a canonical (sorted, deduplicated)
// value.Set. When maxSize > 0, the collected set is bounded: the buffer is
// compacted to a set whenever it doubles past the limit, and ErrLimit is
// returned as soon as the deduplicated size alone exceeds maxSize, so a
// pipeline over a huge cross product aborts after O(maxSize) buffered
// elements instead of materializing the stream.
func Collect(it Iterator, maxSize int) (value.Set, error) {
	var buf []value.Value
	for {
		v, ok, err := it.Next()
		if err != nil {
			return value.Set{}, err
		}
		if !ok {
			break
		}
		buf = append(buf, v)
		if maxSize > 0 && len(buf) > 2*maxSize {
			s := value.NewSet(buf...)
			if s.Len() > maxSize {
				return value.Set{}, ErrLimit
			}
			buf = append(buf[:0], s.Elems()...)
		}
	}
	s := value.NewSet(buf...)
	if maxSize > 0 && s.Len() > maxSize {
		return value.Set{}, ErrLimit
	}
	return s, nil
}
