package algebra

import (
	"fmt"

	"algrec/internal/obsv"
	"algrec/internal/value"
)

// This file implements the semi-naive delta fixpoint engine for IFP. The
// naive inflationary iteration re-evaluates the whole body on the whole
// accumulator every round, which makes transitive-closure-style workloads
// quadratic or worse in rounds; when the body is *distributive over union*
// in the fixpoint variable, each round only needs the body's value on the
// elements added in the previous round (the delta), because
//
//	body(acc ∪ Δ) = body(acc) ∪ body(Δ)   and   body(acc) ⊆ acc ∪ body(acc),
//
// so the accumulator recurrence acc' = acc ∪ body(acc) collapses to
// acc' = acc ∪ body(Δ). DeltaDistributive decides the condition statically;
// RunIFP runs either engine. Both produce the identical fixpoint — that is
// the point of the analysis — so Budget.NoSemiNaive (experiment A4's
// ablation) only changes cost, never results.

// DeltaDistributive reports whether e, read as a function of the relation
// name (an enclosing IFP's fixpoint variable), distributes over union:
// e(A ∪ B) = e(A) ∪ e(B) for all sets A, B. The analysis is syntactic and
// conservative:
//
//   - a reference to name, and any subexpression not mentioning name free,
//     distribute trivially;
//   - Union, Select, Map and Diff's left operand preserve distributivity
//     (σ and MAP are element-wise — function expressions cannot reference
//     relations — so they always distribute);
//   - Product distributes in one operand when the other does not mention
//     name: (A ∪ B) × R = (A×R) ∪ (B×R); with name on both sides the cross
//     terms A×B are lost, so it is rejected;
//   - name under Diff's right operand is non-monotone and rejected (this
//     subsumes the positivity condition: a delta-evaluable variable occurs
//     positively in the sense of OccursPositively);
//   - name free under a nested IFP or a Call is rejected — an inner fixpoint
//     of a union is not the union of inner fixpoints, and a callee's shape is
//     unknown before inlining;
//   - Flip only changes which environment *other* names read in the
//     three-valued evaluator; the binding of name itself is polarity-
//     independent, so Flip preserves distributivity.
func DeltaDistributive(e Expr, name string) bool {
	switch ee := e.(type) {
	case Rel, Lit:
		return true
	case Union:
		return DeltaDistributive(ee.L, name) && DeltaDistributive(ee.R, name)
	case Diff:
		return DeltaDistributive(ee.L, name) && !occursFree(ee.R, name)
	case Product:
		lFree, rFree := occursFree(ee.L, name), occursFree(ee.R, name)
		switch {
		case lFree && rFree:
			return false
		case lFree:
			return DeltaDistributive(ee.L, name)
		case rFree:
			return DeltaDistributive(ee.R, name)
		default:
			return true
		}
	case Select:
		return DeltaDistributive(ee.Of, name)
	case Map:
		return DeltaDistributive(ee.Of, name)
	case IFP:
		if ee.Var == name {
			return true // shadowed: constant in name
		}
		return !occursFree(ee.Body, name)
	case Call:
		return !occursFree(e, name)
	case Flip:
		return DeltaDistributive(ee.E, name)
	default:
		panic(fmt.Sprintf("algebra: unknown Expr %T", e))
	}
}

// RunIFP computes the inflationary fixpoint of step over the variable
// varName: starting from the empty set, step is applied and its output
// accumulated until nothing new is added. step evaluates the IFP body under
// the given bindings (outer locals with varName rebound each round); it is
// the seam that lets the two-valued evaluator of this package and the
// three-valued dual evaluator of internal/core share one fixpoint loop.
//
// With useDelta (the caller verified DeltaDistributive on the body),
// varName is bound to the per-round delta instead of the whole accumulator;
// results are identical, and the σ(×) hash equi-join fast path inside step
// then probes only delta-sized inputs. The budget must already have defaults
// applied. obs, when non-nil, receives one IFPStats event for the completed
// fixpoint.
func RunIFP(varName string, outer map[string]value.Set, budget Budget, useDelta bool, obs obsv.Collector, step func(local map[string]value.Set) (value.Set, error)) (value.Set, error) {
	acc := value.EmptySet
	delta := value.EmptySet
	var deltas []int
	for iter := 0; ; iter++ {
		if iter >= budget.MaxIFPIters {
			return value.Set{}, fmt.Errorf("%w: IFP did not converge within %d iterations (the fixed point may be an infinite set)", ErrBudget, budget.MaxIFPIters)
		}
		if err := budget.Stop(); err != nil {
			return value.Set{}, err
		}
		inner := make(map[string]value.Set, len(outer)+1)
		for k, v := range outer {
			if k != varName {
				inner[k] = v
			}
		}
		if useDelta {
			inner[varName] = delta
		} else {
			inner[varName] = acc
		}
		out, err := step(inner)
		if err != nil {
			return value.Set{}, err
		}
		next := acc.Union(out)
		if next.Len() > budget.MaxSetSize {
			return value.Set{}, fmt.Errorf("%w: intermediate set of %d elements exceeds MaxSetSize %d", ErrBudget, next.Len(), budget.MaxSetSize)
		}
		grown := next.Len() - acc.Len()
		if obs != nil {
			deltas = append(deltas, grown)
		}
		if grown == 0 {
			if obs != nil {
				mode := "naive"
				if useDelta {
					mode = "seminaive"
				}
				obs.IFP(obsv.IFPStats{Mode: mode, Rounds: iter + 1, Result: next.Len(), Deltas: deltas})
			}
			return next, nil
		}
		if useDelta {
			delta = out.Diff(acc)
		}
		acc = next
	}
}
