package parse

import (
	"strings"
	"testing"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/value"
)

func TestParseWinScript(t *testing.T) {
	script := MustParseScript(`
% the WIN game of Example 3
rel move = {(a, b), (b, c), (b, d)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
query win;
`)
	if len(script.Queries) != 1 || len(script.Program.Defs) != 1 {
		t.Fatalf("script = %d queries, %d defs", len(script.Queries), len(script.Program.Defs))
	}
	res, err := core.EvalValid(script.Program, script.DB, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(res.Set("win"), value.NewSet(value.String("b"))) {
		t.Errorf("win = %v, want {b}", res.Set("win"))
	}
}

func TestParseEvenNumbersScript(t *testing.T) {
	script := MustParseScript(`
def evens = select(union({0}, map(evens, \x -> x + 2)), \x -> x < 10);
`)
	res, err := core.EvalValid(script.Program, script.DB, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	want := value.NewSet(value.Int(0), value.Int(2), value.Int(4), value.Int(6), value.Int(8))
	if !value.Equal(res.Set("evens"), want) {
		t.Errorf("evens = %v", res.Set("evens"))
	}
}

func TestParseParameterizedDefs(t *testing.T) {
	script := MustParseScript(`
rel r = {1, 2, 3};
rel s = {2, 3, 4};
def intersect(x, y) = diff(x, diff(x, y));
def q = intersect(r, s);
`)
	res, err := core.EvalValid(script.Program, script.DB, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(res.Set("q"), value.NewSet(value.Int(2), value.Int(3))) {
		t.Errorf("q = %v", res.Set("q"))
	}
}

func TestParseIFP(t *testing.T) {
	e, err := ParseExpr(`ifp(x, union({1}, map(x, \y -> y * 2)))`)
	if err != nil {
		t.Fatal(err)
	}
	ifp, ok := e.(algebra.IFP)
	if !ok || ifp.Var != "x" {
		t.Fatalf("parsed %T %v", e, e)
	}
	// evaluating with a bound gives powers of two
	bounded, err := ParseExpr(`ifp(x, select(union({1}, map(x, \y -> y * 2)), \y -> y <= 8))`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := algebra.Eval(bounded, algebra.DB{})
	if err != nil {
		t.Fatal(err)
	}
	want := value.NewSet(value.Int(1), value.Int(2), value.Int(4), value.Int(8))
	if !value.Equal(got, want) {
		t.Errorf("powers = %v", got)
	}
}

func TestParseFExprForms(t *testing.T) {
	cases := []struct {
		src  string
		want string // expected value of query on singleton {input}
	}{
		{`map({(1, 2)}, \x -> x.2)`, "{2}"},
		{`map({3}, \x -> (x, x + 1))`, "{(3, 4)}"},
		{`select({1, 2, 3, 4}, \x -> x > 1 and x < 4)`, "{2, 3}"},
		{`select({1, 2, 3}, \x -> x = 1 or x = 3)`, "{1, 3}"},
		{`select({1, 2, 3}, \x -> not (x = 2))`, "{1, 3}"},
		{`select({1, 2, 5}, \x -> x in {1, 5})`, "{1, 5}"},
		{`select({1, 2, 3}, \x -> x != 2)`, "{1, 3}"},
		{`map({10}, \x -> x mod 3)`, "{1}"},
		{`map({10}, \x -> x - 3)`, "{7}"},
		{`select({a, b}, \x -> x = a)`, "{a}"},
		{`select({"A b", c}, \x -> x = "A b")`, `{"A b"}`},
		{`select({true, false}, \x -> x)`, "{true}"},
		{`union(empty, {1})`, "{1}"},
		{`map({((1, 2), 5)}, \x -> x.1.2)`, "{2}"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("parse %q: %v", c.src, err)
			continue
		}
		got, err := algebra.Eval(e, algebra.DB{})
		if err != nil {
			t.Errorf("eval %q: %v", c.src, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("%q = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseValueLiterals(t *testing.T) {
	script := MustParseScript(`
rel mixed = {1, -5, a, "quoted \"str\"", true, (1, (2, 3)), {1, 2}, {}};
`)
	s := script.DB["mixed"]
	if s.Len() != 8 {
		t.Fatalf("mixed has %d elements: %v", s.Len(), s)
	}
	for _, v := range []value.Value{
		value.Int(-5), value.String("a"), value.String(`quoted "str"`), value.True,
		value.NewTuple(value.Int(1), value.NewTuple(value.Int(2), value.Int(3))),
		value.NewSet(value.Int(1), value.Int(2)), value.EmptySet,
	} {
		if !s.Has(v) {
			t.Errorf("missing %v in %v", v, s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`rel r = 5;`, "must be bound to a set"},
		{`rel r = {1}; rel r = {2};`, "defined twice"},
		{`def f = union({1});`, "unexpected token"},
		{`def f = ;`, "expected a set expression"},
		{`frobnicate x;`, "expected 'rel', 'def' or 'query'"},
		{`def f = select({1}, \x -> );`, "expected an element expression"},
		{`def f = map({1}, x -> x);`, "unexpected token"},
		{`rel r = {"unterminated};`, "unterminated string"},
		{`def f = g(h());`, "expected a set expression"}, // h() with no args
		{`def f = {1} !`, "unexpected '!'"},
		{`def f = ifp(x, x) extra`, "unexpected token"},
		{`query union({1}, {2})`, "unexpected token"}, // missing semicolon
		{`def f = map({1}, \x -> x.0);`, "bad projection index"},
		{`def dup = {1}; def dup = {2};`, "duplicate definition"},
		{`def f = undefcall({1});`, "undefined operation"},
	}
	for _, c := range cases {
		_, err := ParseScript(c.src)
		if err == nil {
			t.Errorf("parse %q: expected error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("parse %q: error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseTupleForms(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`{()}`, "{()}"},                            // empty tuple value
		{`map({()}, \x -> (5,))`, "{(5)}"},          // 1-tuple via trailing comma
		{`map({()}, \x -> ())`, "{()}"},             // empty tuple fexpr
		{`map({(7)}, \x -> x.1)`, "{7}"},            // 1-tuple value, projected
		{`map({1}, \x -> (x, x + 1,))`, "{(1, 2)}"}, // trailing comma on n-tuple
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("parse %q: %v", c.src, err)
			continue
		}
		got, err := algebra.Eval(e, algebra.DB{})
		if err != nil {
			t.Errorf("eval %q: %v", c.src, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("%q = %s, want %s", c.src, got, c.want)
		}
	}
}

// TestTranslatorOutputReparses: a translated program printed by algtrans
// re-parses and evaluates to the same result — the printed concrete syntax
// is faithful, including unit sets {()} and 1-tuples (e,).
func TestTranslatorOutputReparses(t *testing.T) {
	orig := MustParseScript(`
rel move = {(a, a), (a, b), (b, c)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
`)
	res, err := core.EvalValid(orig.Program, orig.DB, algebra.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	printed := orig.Program.String()
	reparsed := MustParseScript(printed)
	res2, err := core.EvalValid(reparsed.Program, orig.DB, algebra.Budget{})
	if err != nil {
		t.Fatalf("re-parsed program failed: %v\nprinted:\n%s", err, printed)
	}
	if !value.Equal(res.Set("win"), res2.Set("win")) || !value.Equal(res.UndefElems("win"), res2.UndefElems("win")) {
		t.Errorf("round trip changed semantics: %v/%v vs %v/%v",
			res.Set("win"), res.UndefElems("win"), res2.Set("win"), res2.UndefElems("win"))
	}
}

func TestParseExprTrailing(t *testing.T) {
	if _, err := ParseExpr("union({1}, {2}) junk"); err == nil {
		t.Error("expected trailing-input error")
	}
}

func TestLambdaScoping(t *testing.T) {
	// Outside a lambda binder, identifiers are symbol constants; inside, the
	// bound name is a variable and other names stay constants.
	e, err := ParseExpr(`select({a, b}, \x -> x = b)`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := algebra.Eval(e, algebra.DB{})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, value.NewSet(value.String("b"))) {
		t.Errorf("scoping result = %v", got)
	}
	// Nested lambdas shadow correctly.
	e2, err := ParseExpr(`map({1}, \x -> (x, x))`)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := algebra.Eval(e2, algebra.DB{})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got2, value.NewSet(value.Pair(value.Int(1), value.Int(1)))) {
		t.Errorf("nested = %v", got2)
	}
}
