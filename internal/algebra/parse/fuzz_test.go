package parse

import "testing"

// FuzzParseScript checks that the script parser never panics and that the
// printed form of an accepted program re-parses to the same printed form.
func FuzzParseScript(f *testing.F) {
	seeds := []string{
		"rel r = {1, 2};\n",
		"def win = map(diff(move, product(map(move, \\x -> x.1), win)), \\x -> x.1);\nquery win;\n",
		"def evens = select(union({0}, map(evens, \\x -> x + 2)), \\x -> x < 10);\n",
		"def f(x, y) = diff(x, diff(x, y));\ndef q = f({1}, {2});\n",
		"rel m = {(a, {1, (2, 3)}), \"s\"};\n",
		"def g = ifp(w, union(flip(base), w));\nrel base = {0};\n",
		"query select({1,2}, \\x -> x in {1} or not (x = 2));\n",
		"def b = map({()}, \\x -> (5,));\n",
		"rel r = ;",
		"def = x;",
		"%",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		script, err := ParseScript(src)
		if err != nil {
			return
		}
		printed := script.Program.String()
		// Re-parse the program body alone; relation statements are covered
		// by algtrans round-trip tests.
		script2, err := ParseScript(printed)
		if err != nil {
			t.Fatalf("printed program does not re-parse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if script2.Program.String() != printed {
			t.Fatalf("print not idempotent:\nfirst:  %q\nsecond: %q", printed, script2.Program.String())
		}
	})
}
