// Package parse implements a concrete syntax for algebra= scripts: database
// relations, defining equations, and queries over the operators of
// internal/algebra. A script is a sequence of statements:
//
//	% the WIN game of Example 3
//	rel move = {(a, b), (b, c), (b, d)};
//	def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);
//	query win;
//
//	def intersect(x, y) = diff(x, diff(x, y));   % Example 3's ∩
//	def evens = select(union({0}, map(evens, \x -> x + 2)), \x -> x < 100);
//
// Set expressions are the operators union, diff, product, select, map, ifp
// plus relation/definition names, calls f(e1, ..., en), and set literals.
// Element expressions (after a \x -> binder) support tuple projection x.1,
// arithmetic + - * mod, comparisons = != < <= > >=, boolean and/or/not,
// membership `in` against a set literal, tuple construction (e1, e2), and
// constants.
package parse

import (
	"fmt"
	"strconv"
	"strings"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/value"
)

// Script is a parsed algebra= script.
type Script struct {
	DB      algebra.DB
	Program *core.Program
	Queries []Query
}

// Query is one `query expr;` statement.
type Query struct {
	Expr algebra.Expr
	Src  string
}

// ParseScript parses a full script.
func ParseScript(src string) (*Script, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	out := &Script{DB: algebra.DB{}, Program: &core.Program{}}
	for p.tok.kind != tEOF {
		kw, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		switch kw.text {
		case "rel":
			name, err := p.expect(tIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tEq); err != nil {
				return nil, err
			}
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			s, ok := v.(value.Set)
			if !ok {
				return nil, p.errf("relation %s must be bound to a set literal", name.text)
			}
			if _, dup := out.DB[name.text]; dup {
				return nil, p.errf("relation %s defined twice", name.text)
			}
			out.DB[name.text] = s
			if _, err := p.expect(tSemi); err != nil {
				return nil, err
			}
		case "def":
			name, err := p.expect(tIdent)
			if err != nil {
				return nil, err
			}
			d := core.Def{Name: name.text}
			if p.tok.kind == tLParen {
				if err := p.next(); err != nil {
					return nil, err
				}
				for {
					param, err := p.expect(tIdent)
					if err != nil {
						return nil, err
					}
					d.Params = append(d.Params, param.text)
					if p.tok.kind == tComma {
						if err := p.next(); err != nil {
							return nil, err
						}
						continue
					}
					break
				}
				if _, err := p.expect(tRParen); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tEq); err != nil {
				return nil, err
			}
			body, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Body = body
			out.Program.Defs = append(out.Program.Defs, d)
			if _, err := p.expect(tSemi); err != nil {
				return nil, err
			}
		case "query":
			start := p.tok
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			out.Queries = append(out.Queries, Query{Expr: e, Src: fmt.Sprintf("query at %d:%d", start.line, start.col)})
			if _, err := p.expect(tSemi); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%d:%d: expected 'rel', 'def' or 'query', got %q", kw.line, kw.col, kw.text)
		}
	}
	if err := out.Program.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseExpr parses a single set expression.
func ParseExpr(src string) (algebra.Expr, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, p.errf("unexpected trailing input %q", p.tok.text)
	}
	return e, nil
}

// MustParseScript parses src and panics on error; intended for tests and
// examples.
func MustParseScript(src string) *Script {
	s, err := ParseScript(src)
	if err != nil {
		panic(err)
	}
	return s
}

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tString
	tLParen
	tRParen
	tLBrace
	tRBrace
	tComma
	tSemi
	tEq
	tNe
	tLt
	tLe
	tGt
	tGe
	tPlus
	tMinus
	tStar
	tDot
	tLambda // \
	tArrow  // ->
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) peek() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) adv() byte {
	b := l.src[l.pos]
	l.pos++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

func (l *lexer) lex() (token, error) {
	for {
		b, ok := l.peek()
		if !ok {
			return token{kind: tEOF, line: l.line, col: l.col}, nil
		}
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			l.adv()
			continue
		}
		if b == '%' {
			for {
				c, ok := l.peek()
				if !ok || c == '\n' {
					break
				}
				l.adv()
			}
			continue
		}
		break
	}
	line, col := l.line, l.col
	b := l.adv()
	mk := func(k tokKind, s string) (token, error) { return token{k, s, line, col}, nil }
	switch {
	case b == '(':
		return mk(tLParen, "(")
	case b == ')':
		return mk(tRParen, ")")
	case b == '{':
		return mk(tLBrace, "{")
	case b == '}':
		return mk(tRBrace, "}")
	case b == ',':
		return mk(tComma, ",")
	case b == ';':
		return mk(tSemi, ";")
	case b == '=':
		return mk(tEq, "=")
	case b == '+':
		return mk(tPlus, "+")
	case b == '*':
		return mk(tStar, "*")
	case b == '.':
		return mk(tDot, ".")
	case b == '\\':
		return mk(tLambda, "\\")
	case b == '!':
		if c, ok := l.peek(); ok && c == '=' {
			l.adv()
			return mk(tNe, "!=")
		}
		return token{}, fmt.Errorf("%d:%d: unexpected '!'", line, col)
	case b == '<':
		if c, ok := l.peek(); ok && c == '=' {
			l.adv()
			return mk(tLe, "<=")
		}
		return mk(tLt, "<")
	case b == '>':
		if c, ok := l.peek(); ok && c == '=' {
			l.adv()
			return mk(tGe, ">=")
		}
		return mk(tGt, ">")
	case b == '-':
		if c, ok := l.peek(); ok && c == '>' {
			l.adv()
			return mk(tArrow, "->")
		}
		if c, ok := l.peek(); ok && c >= '0' && c <= '9' {
			var sb strings.Builder
			sb.WriteByte('-')
			for {
				c, ok := l.peek()
				if !ok || c < '0' || c > '9' {
					break
				}
				sb.WriteByte(l.adv())
			}
			return mk(tInt, sb.String())
		}
		return mk(tMinus, "-")
	case b == '"':
		// Collect the raw quoted literal and delegate unescaping to
		// strconv.Unquote, the exact inverse of the strconv.Quote used when
		// printing string values.
		var raw strings.Builder
		raw.WriteByte('"')
		for {
			c, ok := l.peek()
			if !ok || c == '\n' {
				return token{}, fmt.Errorf("%d:%d: unterminated string", line, col)
			}
			l.adv()
			raw.WriteByte(c)
			if c == '\\' {
				e, ok := l.peek()
				if !ok {
					return token{}, fmt.Errorf("%d:%d: unterminated escape", line, col)
				}
				l.adv()
				raw.WriteByte(e)
				continue
			}
			if c == '"' {
				s, err := strconv.Unquote(raw.String())
				if err != nil {
					return token{}, fmt.Errorf("%d:%d: bad string literal %s: %v", line, col, raw.String(), err)
				}
				return mk(tString, s)
			}
		}
	case b >= '0' && b <= '9':
		var sb strings.Builder
		sb.WriteByte(b)
		for {
			c, ok := l.peek()
			if !ok || c < '0' || c > '9' {
				break
			}
			sb.WriteByte(l.adv())
		}
		return mk(tInt, sb.String())
	case isIdentByte(b, true):
		var sb strings.Builder
		sb.WriteByte(b)
		for {
			c, ok := l.peek()
			if !ok || !isIdentByte(c, false) {
				break
			}
			sb.WriteByte(l.adv())
		}
		return mk(tIdent, sb.String())
	default:
		return token{}, fmt.Errorf("%d:%d: unexpected character %q", line, col, string(b))
	}
}

func isIdentByte(b byte, start bool) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_':
		return true
	case b >= '0' && b <= '9':
		return !start
	default:
		return false
	}
}

type parser struct {
	lex *lexer
	tok token
	// element variables currently in scope (lambda binders)
	scope []string
}

func (p *parser) next() error {
	t, err := p.lex.lex()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("unexpected token %q", p.tok.text)
	}
	t := p.tok
	if err := p.next(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) inScope(name string) bool {
	for _, s := range p.scope {
		if s == name {
			return true
		}
	}
	return false
}

// parseExpr parses a set expression.
func (p *parser) parseExpr() (algebra.Expr, error) {
	switch p.tok.kind {
	case tLBrace:
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return algebra.Lit{Set: v.(value.Set)}, nil
	case tIdent:
		name := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		if name == "empty" {
			return algebra.EmptyLit, nil
		}
		if p.tok.kind != tLParen {
			return algebra.Rel{Name: name}, nil
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		switch name {
		case "union", "diff", "product":
			l, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tComma); err != nil {
				return nil, err
			}
			r, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			switch name {
			case "union":
				return algebra.Union{L: l, R: r}, nil
			case "diff":
				return algebra.Diff{L: l, R: r}, nil
			default:
				return algebra.Product{L: l, R: r}, nil
			}
		case "select", "map":
			of, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tComma); err != nil {
				return nil, err
			}
			v, body, err := p.parseLambda()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			if name == "select" {
				return algebra.Select{Of: of, Var: v, Test: body}, nil
			}
			return algebra.Map{Of: of, Var: v, Out: body}, nil
		case "flip":
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			return algebra.Flip{E: inner}, nil
		case "ifp":
			v, err := p.expect(tIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tComma); err != nil {
				return nil, err
			}
			body, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			return algebra.IFP{Var: v.text, Body: body}, nil
		default:
			call := algebra.Call{Name: name}
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.tok.kind == tComma {
					if err := p.next(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
	default:
		return nil, p.errf("expected a set expression, got %q", p.tok.text)
	}
}

// parseLambda parses \x -> fexpr.
func (p *parser) parseLambda() (string, algebra.FExpr, error) {
	if _, err := p.expect(tLambda); err != nil {
		return "", nil, err
	}
	v, err := p.expect(tIdent)
	if err != nil {
		return "", nil, err
	}
	if _, err := p.expect(tArrow); err != nil {
		return "", nil, err
	}
	p.scope = append(p.scope, v.text)
	body, err := p.parseFOr()
	p.scope = p.scope[:len(p.scope)-1]
	if err != nil {
		return "", nil, err
	}
	return v.text, body, nil
}

// FExpr grammar, loosest first: or > and > not > in > cmp > additive >
// multiplicative > postfix projection > primary.
func (p *parser) parseFOr() (algebra.FExpr, error) {
	l, err := p.parseFAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tIdent && p.tok.text == "or" {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseFAnd()
		if err != nil {
			return nil, err
		}
		l = algebra.FOr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseFAnd() (algebra.FExpr, error) {
	l, err := p.parseFNot()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tIdent && p.tok.text == "and" {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseFNot()
		if err != nil {
			return nil, err
		}
		l = algebra.FAnd{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseFNot() (algebra.FExpr, error) {
	if p.tok.kind == tIdent && p.tok.text == "not" {
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseFNot()
		if err != nil {
			return nil, err
		}
		return algebra.FNot{E: e}, nil
	}
	return p.parseFCmp()
}

func (p *parser) parseFCmp() (algebra.FExpr, error) {
	l, err := p.parseFAdd()
	if err != nil {
		return nil, err
	}
	var op algebra.CmpOp
	switch p.tok.kind {
	case tEq:
		op = algebra.OpEq
	case tNe:
		op = algebra.OpNe
	case tLt:
		op = algebra.OpLt
	case tLe:
		op = algebra.OpLe
	case tGt:
		op = algebra.OpGt
	case tGe:
		op = algebra.OpGe
	default:
		if p.tok.kind == tIdent && p.tok.text == "in" {
			if err := p.next(); err != nil {
				return nil, err
			}
			r, err := p.parseFAdd()
			if err != nil {
				return nil, err
			}
			return algebra.FMem{Elem: l, Set: r}, nil
		}
		return l, nil
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	r, err := p.parseFAdd()
	if err != nil {
		return nil, err
	}
	return algebra.FCmp{Op: op, L: l, R: r}, nil
}

func (p *parser) parseFAdd() (algebra.FExpr, error) {
	l, err := p.parseFMul()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tPlus || p.tok.kind == tMinus {
		op := algebra.OpPlus
		if p.tok.kind == tMinus {
			op = algebra.OpMinus
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseFMul()
		if err != nil {
			return nil, err
		}
		l = algebra.FArith{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseFMul() (algebra.FExpr, error) {
	l, err := p.parseFPostfix()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tStar || (p.tok.kind == tIdent && p.tok.text == "mod") {
		op := algebra.OpTimes
		if p.tok.kind == tIdent {
			op = algebra.OpMod
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseFPostfix()
		if err != nil {
			return nil, err
		}
		l = algebra.FArith{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseFPostfix() (algebra.FExpr, error) {
	e, err := p.parseFPrimary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tDot {
		if err := p.next(); err != nil {
			return nil, err
		}
		idx, err := p.expect(tInt)
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(idx.text)
		if err != nil || n < 1 {
			return nil, p.errf("bad projection index %q", idx.text)
		}
		e = algebra.FField{Of: e, Idx: n}
	}
	return e, nil
}

func (p *parser) parseFPrimary() (algebra.FExpr, error) {
	switch p.tok.kind {
	case tInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", p.tok.text)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return algebra.FConst{V: value.Int(n)}, nil
	case tString:
		s := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		return algebra.FConst{V: value.String(s)}, nil
	case tLBrace:
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return algebra.FConst{V: v}, nil
	case tIdent:
		name := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		switch name {
		case "true":
			return algebra.FConst{V: value.True}, nil
		case "false":
			return algebra.FConst{V: value.False}, nil
		}
		if p.inScope(name) {
			return algebra.FVar{Name: name}, nil
		}
		return algebra.FConst{V: value.String(name)}, nil
	case tLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind == tRParen { // () is the empty tuple
			if err := p.next(); err != nil {
				return nil, err
			}
			return algebra.FTuple{}, nil
		}
		first, err := p.parseFOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind == tRParen {
			if err := p.next(); err != nil {
				return nil, err
			}
			return first, nil // grouping
		}
		elems := []algebra.FExpr{first}
		for p.tok.kind == tComma {
			if err := p.next(); err != nil {
				return nil, err
			}
			if p.tok.kind == tRParen {
				break // trailing comma: explicit tuple, e.g. the 1-tuple (e,)
			}
			e, err := p.parseFOr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return algebra.FTuple{Elems: elems}, nil
	default:
		return nil, p.errf("expected an element expression, got %q", p.tok.text)
	}
}

// parseValue parses a ground value literal: int, symbol, string, boolean,
// tuple (v1, v2, ...), or set {v1, ..., vn}.
func (p *parser) parseValue() (value.Value, error) {
	switch p.tok.kind {
	case tInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", p.tok.text)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return value.Int(n), nil
	case tString:
		s := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		return value.String(s), nil
	case tIdent:
		name := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		switch name {
		case "true":
			return value.True, nil
		case "false":
			return value.False, nil
		default:
			return value.String(name), nil
		}
	case tLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		var elems []value.Value
		for p.tok.kind != tRParen {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			elems = append(elems, v)
			if p.tok.kind == tComma {
				if err := p.next(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return value.NewTuple(elems...), nil
	case tLBrace:
		if err := p.next(); err != nil {
			return nil, err
		}
		var elems []value.Value
		if p.tok.kind != tRBrace {
			for {
				v, err := p.parseValue()
				if err != nil {
					return nil, err
				}
				elems = append(elems, v)
				if p.tok.kind == tComma {
					if err := p.next(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
		}
		if _, err := p.expect(tRBrace); err != nil {
			return nil, err
		}
		return value.NewSet(elems...), nil
	default:
		return nil, p.errf("expected a value, got %q", p.tok.text)
	}
}
