package algebra

import (
	"errors"
	"fmt"

	"algrec/internal/algebra/stream"
	"algrec/internal/obsv"
	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// This file is the streaming execution runtime: it compiles an operator
// pipeline — a spine of σ/MAP/∪/× nodes — into a lazy iterator over
// internal/algebra/stream, planning σ-over-product subtrees with the
// cost-based join planner (planner.go) so the product is never
// materialized. Subexpressions outside the spine (relations, literals,
// differences, IFPs, calls) are evaluated by the host evaluator through the
// LeafEval seam and scanned as sets, which is what lets both the two-valued
// evaluator (eval.go) and internal/core's three-valued dual evaluator share
// one runtime: the spine operators are polarity-transparent, so the host
// closes polarity (and local IFP bindings) into its LeafEval.
//
// Results are identical to the materialized path on error-free evaluations:
// the pipeline only ever prunes product pairs via pushed conjuncts and join
// keys, both of which are implied by the complete test, and the complete
// test is re-checked on every reconstructed element. Budget boundaries
// differ by design — the materialized path rejects a huge intermediate
// product even when the output is small; the streaming path bounds only
// buffered output — so a budget error on one path may be a success on the
// other. Budget.NoStreaming (the cmd/bench -nostreaming ablation) restores
// the materialized path bit-for-bit.

// LeafEval evaluates a subexpression the streaming compiler treats as an
// opaque leaf. The host evaluator closes its environment (database, local
// IFP bindings, polarity) into this function.
type LeafEval func(Expr) (value.Set, error)

// StreamEligible reports whether e is a pipeline the streaming runtime
// accepts as an entry point: a σ or MAP whose operator spine (σ/MAP/∪
// nodes) reaches a product. Plain selections and maps over already-small
// sets stay on the materialized path, where the canonical set operations
// are cheaper than re-sorting a stream.
func StreamEligible(e Expr) bool {
	switch e.(type) {
	case Select, Map:
		return spineHasProduct(e)
	default:
		return false
	}
}

// spineHasProduct walks the operator spine the compiler streams (σ, MAP, ∪)
// looking for a product to pipeline.
func spineHasProduct(e Expr) bool {
	switch ee := e.(type) {
	case Product:
		return true
	case Select:
		return spineHasProduct(ee.Of)
	case Map:
		return spineHasProduct(ee.Of)
	case Union:
		return spineHasProduct(ee.L) || spineHasProduct(ee.R)
	default:
		return false
	}
}

// pipeProfile accumulates the counters of one streamed pipeline, emitted as
// a single obsv.Stream event by StreamEval.
type pipeProfile struct {
	leaves    int // leaf scans feeding the pipeline
	scanned   int // elements read from leaf scans
	tested    int // complete-test evaluations (post pushdown and join keys)
	emitted   int // elements surviving their selection tests
	hashJoins int // hash-join steps built
	pushed    int // conjuncts pushed into leaf scans
}

// StreamEval evaluates an eligible pipeline lazily and collects the result
// into a canonical set, reporting one obsv.Stream event per call. The leaf
// function evaluates opaque subexpressions; budget caps the collected
// output size (the streaming counterpart of the materialized path's
// intermediate-set checks).
func StreamEval(e Expr, budget Budget, obs obsv.Collector, leaf LeafEval) (value.Set, error) {
	prof := &pipeProfile{}
	c := &streamCompiler{budget: budget, leaf: leaf, prof: prof}
	it, err := c.compile(e)
	if err != nil {
		return value.Set{}, err
	}
	out, err := stream.Collect(it, budget.MaxSetSize)
	if err != nil {
		if errors.Is(err, stream.ErrLimit) {
			return value.Set{}, fmt.Errorf("%w: streamed result exceeds MaxSetSize %d", ErrBudget, budget.MaxSetSize)
		}
		return value.Set{}, err
	}
	if obs != nil {
		obs.Stream(obsv.StreamStats{
			Op: opName(e), Leaves: prof.leaves, Scanned: prof.scanned,
			Tested: prof.tested, Emitted: prof.emitted, Result: out.Len(),
			HashJoins: prof.hashJoins, Pushed: prof.pushed,
		})
	}
	return out, nil
}

// opName names the pipeline's root operator for the observability event.
func opName(e Expr) string {
	switch e.(type) {
	case Select:
		return "select"
	case Map:
		return "map"
	case Union:
		return "union"
	case Product:
		return "product"
	default:
		return "expr"
	}
}

// streamCompiler turns spine expressions into iterators.
type streamCompiler struct {
	budget Budget
	leaf   LeafEval
	prof   *pipeProfile
}

func (c *streamCompiler) compile(e Expr) (stream.Iterator, error) {
	switch ee := e.(type) {
	case Select:
		if prod, isProd := ee.Of.(Product); isProd {
			it, ok, err := c.compileJoin(ee.Var, ee.Test, prod)
			if ok || err != nil {
				return it, err
			}
		}
		in, err := c.compile(ee.Of)
		if err != nil {
			return nil, err
		}
		// Iterators are single-use and pulled sequentially, so one
		// environment can be reused across elements.
		env := FEnv{}
		return stream.Filter(in, func(v value.Value) (bool, error) {
			c.prof.tested++
			env[ee.Var] = v
			keep, err := EvalTest(ee.Test, env)
			if err != nil {
				return false, err
			}
			if keep {
				c.prof.emitted++
			}
			return keep, nil
		}), nil
	case Map:
		in, err := c.compile(ee.Of)
		if err != nil {
			return nil, err
		}
		env := FEnv{}
		return stream.Transform(in, func(v value.Value) (value.Value, error) {
			env[ee.Var] = v
			return EvalF(ee.Out, env)
		}), nil
	case Union:
		l, err := c.compile(ee.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compile(ee.R)
		if err != nil {
			return nil, err
		}
		return stream.Concat(l, r), nil
	case Product:
		it, ok, err := c.compileJoin("", nil, ee)
		if ok || err != nil {
			return it, err
		}
		return c.scanLeaf(e)
	default:
		return c.scanLeaf(e)
	}
}

// scanLeaf materializes an opaque subexpression and scans it.
func (c *streamCompiler) scanLeaf(e Expr) (stream.Iterator, error) {
	s, err := c.leaf(e)
	if err != nil {
		return nil, err
	}
	c.prof.leaves++
	c.prof.scanned += s.Len()
	return stream.FromSet(s), nil
}

// compileJoin plans and instantiates a σ-over-product (or bare product)
// pipeline. ok=false means the planner refused the shape and the caller
// should fall back to scanning the materialized subexpression.
func (c *streamCompiler) compileJoin(v string, test FExpr, prod Product) (stream.Iterator, bool, error) {
	plan, ok := planJoin(v, test, prod, c.budget.NoHashJoin)
	if !ok {
		return nil, false, nil
	}
	// Evaluate every leaf in tree (in-)order — the order the materialized
	// path evaluates them, so leaf errors surface identically.
	n := len(plan.leaves)
	sets := make([]value.Set, n)
	sizes := make([]int, n)
	for i, l := range plan.leaves {
		s, err := c.leaf(l.expr)
		if err != nil {
			return nil, true, err
		}
		sets[i] = s
		sizes[i] = s.Len()
	}
	c.prof.leaves += n
	plan.reorder(sizes)
	// Apply the pushed filters while materializing each leaf's scan. A
	// filter error keeps the element: the complete re-check reproduces
	// whatever the materialized evaluation would have raised for the pairs
	// it actually forms.
	elems := make([][]value.Value, n)
	for i := range plan.leaves {
		l := &plan.leaves[i]
		c.prof.scanned += sets[i].Len()
		c.prof.pushed += len(l.filters)
		if len(l.filters) == 0 {
			elems[i] = sets[i].Elems()
			continue
		}
		kept := make([]value.Value, 0, sets[i].Len())
		env := FEnv{}
		for j := 0; j < sets[i].Len(); j++ {
			el := sets[i].At(j)
			env[plan.v] = el
			keep := true
			for _, f := range l.filters {
				ok, err := EvalTest(f, env)
				if err != nil {
					keep = true
					break
				}
				if !ok {
					keep = false
					break
				}
			}
			if keep {
				kept = append(kept, el)
			}
		}
		elems[i] = kept
	}
	it := &joinIter{plan: plan, elems: elems, prof: c.prof}
	it.idx = make([]*hashIndex, len(plan.steps))
	for si := 1; si < len(plan.steps); si++ {
		st := plan.steps[si]
		if len(st.buildKeys) == 0 {
			continue
		}
		it.idx[si] = buildIndex(elems[st.leaf], st.buildKeys)
		c.prof.hashJoins++
	}
	it.init()
	return it, true, nil
}

// hashIndex buckets one leaf's elements by their composite join key. The
// key representation — interned ID or canonical string, exactly the
// encodings of join.go — is fixed at build time so a concurrent flip of the
// process-wide interning switch cannot split build and probe across
// representations. Elements whose key fails to apply (a kind or arity
// mismatch) land in the loose bucket and join every probe, deferring the
// error or mismatch to the complete-test re-check.
type hashIndex struct {
	interned bool
	byID     map[intern.ID][]value.Value
	byStr    map[string][]value.Value
	loose    []value.Value
}

// buildIndex hashes elems on the composite key paths.
func buildIndex(elems []value.Value, keys []KeyPath) *hashIndex {
	idx := &hashIndex{interned: value.InterningEnabled()}
	if idx.interned {
		idx.byID = make(map[intern.ID][]value.Value, len(elems))
		in := intern.Global()
		var buf []intern.ID
		for _, e := range elems {
			id, ok := joinKeyID(in, e, keys, &buf)
			if !ok {
				idx.loose = append(idx.loose, e)
				continue
			}
			idx.byID[id] = append(idx.byID[id], e)
		}
		return idx
	}
	idx.byStr = make(map[string][]value.Value, len(elems))
	for _, e := range elems {
		k, ok := joinKey(e, keys)
		if !ok {
			idx.loose = append(idx.loose, e)
			continue
		}
		idx.byStr[k] = append(idx.byStr[k], e)
	}
	return idx
}

// probe looks up the candidates matching the row's probe keys, appending
// the loose bucket. ok=false when a probe key fails to apply to the bound
// row, in which case the caller must fall back to the full leaf scan.
func (idx *hashIndex) probe(row []value.Value, keys []leafPath, parts *[]value.Value, ids *[]intern.ID) ([]value.Value, bool) {
	ps := (*parts)[:0]
	for _, k := range keys {
		v, ok := applyPath(row[k.leaf], k.path)
		if !ok {
			*parts = ps
			return nil, false
		}
		ps = append(ps, v)
	}
	*parts = ps
	var bucket []value.Value
	if idx.interned {
		in := intern.Global()
		var id intern.ID
		if len(ps) == 1 {
			id = in.Intern(ps[0])
		} else {
			is := (*ids)[:0]
			for _, v := range ps {
				is = append(is, in.Intern(v))
			}
			*ids = is
			id = in.InternTuple(is...)
		}
		bucket = idx.byID[id]
	} else {
		var key string
		if len(ps) == 1 {
			key = ps[0].String()
		} else {
			key = value.NewTuple(ps...).String()
		}
		bucket = idx.byStr[key]
	}
	if len(idx.loose) == 0 {
		return bucket, true
	}
	out := make([]value.Value, 0, len(bucket)+len(idx.loose))
	out = append(out, bucket...)
	out = append(out, idx.loose...)
	return out, true
}

// joinIter enumerates the join pipeline's rows with a cursor stack — one
// level per plan step — reconstructing the original nested product element
// and re-checking the complete test before emitting.
type joinIter struct {
	plan  *joinPlan
	elems [][]value.Value
	idx   []*hashIndex
	prof  *pipeProfile

	row   []value.Value   // current element per leaf
	cand  [][]value.Value // candidate list per step depth
	pos   []int           // cursor per step depth
	depth int
	done  bool
	env   FEnv          // complete-test environment, reused per row
	parts []value.Value // probe scratch
	ids   []intern.ID   // probe scratch
}

func (it *joinIter) init() {
	it.row = make([]value.Value, len(it.plan.leaves))
	it.cand = make([][]value.Value, len(it.plan.steps))
	it.pos = make([]int, len(it.plan.steps))
	it.cand[0] = it.elems[it.plan.steps[0].leaf]
	it.env = FEnv{}
}

// Next implements stream.Iterator: it advances the join odometer to the
// next row of the reordered leaves whose hash-probed candidates survive the
// complete selection test, reconstructing the original product shape before
// testing so pruning can never change the result.
func (it *joinIter) Next() (value.Value, bool, error) {
	if it.done {
		return nil, false, nil
	}
	d := it.depth
	for {
		if it.pos[d] >= len(it.cand[d]) {
			d--
			if d < 0 {
				it.done = true
				return nil, false, nil
			}
			continue
		}
		st := it.plan.steps[d]
		it.row[st.leaf] = it.cand[d][it.pos[d]]
		it.pos[d]++
		if d+1 < len(it.plan.steps) {
			next := it.plan.steps[d+1]
			if it.idx[d+1] != nil {
				c, ok := it.idx[d+1].probe(it.row, next.probeKeys, &it.parts, &it.ids)
				if !ok {
					c = it.elems[next.leaf]
				}
				it.cand[d+1] = c
			} else {
				it.cand[d+1] = it.elems[next.leaf]
			}
			it.pos[d+1] = 0
			d++
			continue
		}
		out := reconstruct(it.plan.shape, it.row)
		if it.plan.test != nil {
			it.prof.tested++
			it.env[it.plan.v] = out
			keep, err := EvalTest(it.plan.test, it.env)
			if err != nil {
				it.done = true
				return nil, false, err
			}
			if !keep {
				continue
			}
		}
		it.prof.emitted++
		it.depth = d
		return out, true, nil
	}
}
