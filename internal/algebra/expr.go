package algebra

import (
	"fmt"
	"sort"
	"strings"

	"algrec/internal/value"
)

// Expr is a set-valued algebra expression. It is a sealed interface; the
// variants are exactly the operators of the paper's Section 3.1 plus Call,
// which applies an operation defined by an algebra= equation (Section 3.2).
type Expr interface {
	String() string
	isExpr()
}

// Rel names a set: a database relation, a defined constant, a definition
// parameter, or the recursion variable of an enclosing IFP.
type Rel struct{ Name string }

// Lit is a literal finite set (EMPTY, {0}, {(a,b), (b,c)}, ...).
type Lit struct{ Set value.Set }

// Union is L ∪ R.
type Union struct{ L, R Expr }

// Diff is L − R: the algebra's only source of negation, which is why the
// paper must study recursion and negation together.
type Diff struct{ L, R Expr }

// Product is the cartesian product L × R, producing pairs.
type Product struct{ L, R Expr }

// Select is σ_test(Of): the elements of Of for which the test holds. Var
// names the element inside Test.
type Select struct {
	Of   Expr
	Var  string
	Test FExpr
}

// Map is MAP_f(Of): Of restructured element-wise by Out. Var names the
// element inside Out.
type Map struct {
	Of  Expr
	Var string
	Out FExpr
}

// IFP is the inflationary fixed point IFP_exp: starting from the empty set,
// Body is applied to the accumulated result (bound to Var) and the output is
// accumulated, until nothing new is added.
type IFP struct {
	Var  string
	Body Expr
}

// Call applies a named operation defined by an algebra= equation
// f(x1, ..., xn) = exp to argument expressions.
type Call struct {
	Name string
	Args []Expr
}

// Flip is a polarity annotation: on total databases it is the identity, and
// the two-valued evaluator treats it as such. Under the three-valued
// (lower/upper bound) evaluation of internal/core, Flip{E} evaluates E at
// the opposite of the incoming polarity. Its purpose is correlation: the
// anti-join encoding of a negated atom, env − π(σ(env × Q)), mentions env
// twice, and without the annotation the copy inside the subtrahend would be
// read at flipped polarity, decorrelating the two occurrences and losing
// precision (elements whose match status is decided would be reported
// undefined). Wrapping the inner copy as Flip{env} makes both bounds exact:
//
//	lower(env − π(σ(Flip(env) × Q))) = lower(env) − π(σ(lower(env) × upper(Q)))
//	upper(env − π(σ(Flip(env) × Q))) = upper(env) − π(σ(upper(env) × lower(Q)))
//
// which per element x reads: x certainly survives iff x is certainly in env
// and x possibly matches nothing in Q — the exact three-valued semantics of
// the original rule.
type Flip struct {
	E Expr
}

func (Rel) isExpr()     {}
func (Lit) isExpr()     {}
func (Union) isExpr()   {}
func (Diff) isExpr()    {}
func (Product) isExpr() {}
func (Select) isExpr()  {}
func (Map) isExpr()     {}
func (IFP) isExpr()     {}
func (Call) isExpr()    {}
func (Flip) isExpr()    {}

// String implements Expr.
func (e Rel) String() string { return e.Name }

// String implements Expr.
func (e Lit) String() string { return e.Set.String() }

// String implements Expr.
func (e Union) String() string {
	return "union(" + e.L.String() + ", " + e.R.String() + ")"
}

// String implements Expr.
func (e Diff) String() string {
	return "diff(" + e.L.String() + ", " + e.R.String() + ")"
}

// String implements Expr.
func (e Product) String() string {
	return "product(" + e.L.String() + ", " + e.R.String() + ")"
}

// String implements Expr.
func (e Select) String() string {
	return "select(" + e.Of.String() + ", \\" + e.Var + " -> " + e.Test.String() + ")"
}

// String implements Expr.
func (e Map) String() string {
	return "map(" + e.Of.String() + ", \\" + e.Var + " -> " + e.Out.String() + ")"
}

// String implements Expr.
func (e IFP) String() string {
	return "ifp(" + e.Var + ", " + e.Body.String() + ")"
}

// String implements Expr.
func (e Call) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// String implements Expr.
func (e Flip) String() string { return "flip(" + e.E.String() + ")" }

// Proj returns the paper's π_i shorthand: MAP_{x.i}(of).
func Proj(of Expr, i int) Map {
	return Map{Of: of, Var: "x", Out: FField{Of: FVar{Name: "x"}, Idx: i}}
}

// EmptyLit is the EMPTY constant as an expression.
var EmptyLit = Lit{Set: value.EmptySet}

// Singleton returns the literal set {v}.
func Singleton(v value.Value) Lit { return Lit{Set: value.NewSet(v)} }

// FreeRels returns the free relation names of e, sorted: every Rel name not
// bound by an enclosing IFP variable. Call names are reported separately by
// CallNames; they are not free relations.
func FreeRels(e Expr) []string {
	seen := map[string]bool{}
	var walk func(Expr, map[string]bool)
	walk = func(e Expr, bound map[string]bool) {
		switch ee := e.(type) {
		case Rel:
			if !bound[ee.Name] {
				seen[ee.Name] = true
			}
		case Lit:
		case Union:
			walk(ee.L, bound)
			walk(ee.R, bound)
		case Diff:
			walk(ee.L, bound)
			walk(ee.R, bound)
		case Product:
			walk(ee.L, bound)
			walk(ee.R, bound)
		case Select:
			walk(ee.Of, bound)
		case Map:
			walk(ee.Of, bound)
		case IFP:
			inner := map[string]bool{}
			for k := range bound {
				inner[k] = true
			}
			inner[ee.Var] = true
			walk(ee.Body, inner)
		case Call:
			for _, a := range ee.Args {
				walk(a, bound)
			}
		case Flip:
			walk(ee.E, bound)
		default:
			panic(fmt.Sprintf("algebra: unknown Expr %T", e))
		}
	}
	walk(e, map[string]bool{})
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CallNames returns the names of operations applied by Call nodes in e,
// sorted.
func CallNames(e Expr) []string {
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch ee := e.(type) {
		case Rel, Lit:
		case Union:
			walk(ee.L)
			walk(ee.R)
		case Diff:
			walk(ee.L)
			walk(ee.R)
		case Product:
			walk(ee.L)
			walk(ee.R)
		case Select:
			walk(ee.Of)
		case Map:
			walk(ee.Of)
		case IFP:
			walk(ee.Body)
		case Call:
			seen[ee.Name] = true
			for _, a := range ee.Args {
				walk(a)
			}
		case Flip:
			walk(ee.E)
		default:
			panic(fmt.Sprintf("algebra: unknown Expr %T", e))
		}
	}
	walk(e)
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// OccursPositively reports whether every free occurrence of name in e is
// positive: not inside the right operand of an odd number of enclosing
// subtractions. This is the syntactic condition of the paper's positive
// IFP-algebra ("the variable does not appear negatively, i.e. does not
// appear in a sub-expression being subtracted"), which guarantees
// monotonicity in the sense of Definition 3.3 and hence, by Proposition 3.4,
// agreement between the recursive equation S = exp(S) and IFP_exp.
func OccursPositively(e Expr, name string) bool {
	var walk func(Expr, bool, map[string]bool) bool
	walk = func(e Expr, positive bool, bound map[string]bool) bool {
		switch ee := e.(type) {
		case Rel:
			if ee.Name == name && !bound[name] && !positive {
				return false
			}
			return true
		case Lit:
			return true
		case Union:
			return walk(ee.L, positive, bound) && walk(ee.R, positive, bound)
		case Diff:
			return walk(ee.L, positive, bound) && walk(ee.R, !positive, bound)
		case Product:
			return walk(ee.L, positive, bound) && walk(ee.R, positive, bound)
		case Select:
			return walk(ee.Of, positive, bound)
		case Map:
			return walk(ee.Of, positive, bound)
		case IFP:
			if ee.Var == name {
				return true // inner occurrences refer to the IFP variable
			}
			return walk(ee.Body, positive, bound)
		case Call:
			// Without the callee's definition the occurrence polarity is
			// unknown; conservatively reject any occurrence under a call and
			// let callers expand non-recursive definitions first
			// (core.Program.Inline).
			for _, a := range ee.Args {
				if occursFree(a, name) {
					return false
				}
			}
			return true
		case Flip:
			return walk(ee.E, !positive, bound)
		default:
			panic(fmt.Sprintf("algebra: unknown Expr %T", e))
		}
	}
	return walk(e, true, map[string]bool{})
}

func occursFree(e Expr, name string) bool {
	for _, r := range FreeRels(e) {
		if r == name {
			return true
		}
	}
	return false
}

// IsPositiveIFP reports whether every IFP subexpression of e binds a
// variable that occurs only positively in its body — the defining condition
// of the paper's positive IFP-algebra (Theorem 4.3).
func IsPositiveIFP(e Expr) bool {
	ok := true
	var walk func(Expr)
	walk = func(e Expr) {
		switch ee := e.(type) {
		case Rel, Lit:
		case Union:
			walk(ee.L)
			walk(ee.R)
		case Diff:
			walk(ee.L)
			walk(ee.R)
		case Product:
			walk(ee.L)
			walk(ee.R)
		case Select:
			walk(ee.Of)
		case Map:
			walk(ee.Of)
		case IFP:
			if !OccursPositively(ee.Body, ee.Var) {
				ok = false
			}
			walk(ee.Body)
		case Call:
			for _, a := range ee.Args {
				walk(a)
			}
		case Flip:
			walk(ee.E)
		default:
			panic(fmt.Sprintf("algebra: unknown Expr %T", e))
		}
	}
	walk(e)
	return ok
}

// HasIFP reports whether e contains an IFP operator; expressions without one
// belong to the paper's plain "algebra".
func HasIFP(e Expr) bool {
	found := false
	var walk func(Expr)
	walk = func(e Expr) {
		switch ee := e.(type) {
		case Rel, Lit:
		case Union:
			walk(ee.L)
			walk(ee.R)
		case Diff:
			walk(ee.L)
			walk(ee.R)
		case Product:
			walk(ee.L)
			walk(ee.R)
		case Select:
			walk(ee.Of)
		case Map:
			walk(ee.Of)
		case IFP:
			found = true
		case Call:
			for _, a := range ee.Args {
				walk(a)
			}
		case Flip:
			walk(ee.E)
		default:
			panic(fmt.Sprintf("algebra: unknown Expr %T", e))
		}
	}
	walk(e)
	return found
}
