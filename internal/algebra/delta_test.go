package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"algrec/internal/obsv"
	"algrec/internal/value"
)

func relx() Expr { return Rel{Name: "x"} }
func rele() Expr { return Rel{Name: "e"} }

func TestDeltaDistributive(t *testing.T) {
	sel := func(of Expr) Expr {
		return Select{Of: of, Var: "v", Test: FCmp{Op: OpLt, L: FVar{Name: "v"}, R: FConst{V: value.Int(100)}}}
	}
	mp := func(of Expr) Expr {
		return Map{Of: of, Var: "v", Out: FArith{Op: OpPlus, L: FVar{Name: "v"}, R: FConst{V: value.Int(1)}}}
	}
	cases := []struct {
		name string
		e    Expr
		want bool
	}{
		{"var itself", relx(), true},
		{"no occurrence", rele(), true},
		{"union", Union{L: relx(), R: rele()}, true},
		{"select of var", sel(relx()), true},
		{"map of var", mp(relx()), true},
		{"diff left", Diff{L: relx(), R: rele()}, true},
		{"diff right", Diff{L: rele(), R: relx()}, false},
		{"diff both", Diff{L: relx(), R: relx()}, false},
		{"product one side", Product{L: relx(), R: rele()}, true},
		{"product other side", Product{L: rele(), R: relx()}, true},
		{"product both sides", Product{L: relx(), R: relx()}, false},
		{"product neither side", Product{L: rele(), R: rele()}, true},
		{"nested ifp shadowing", IFP{Var: "x", Body: Union{L: relx(), R: rele()}}, true},
		{"nested ifp capturing", IFP{Var: "y", Body: Union{L: Rel{Name: "y"}, R: relx()}}, false},
		{"flip", Flip{E: relx()}, true},
		{"flip of diff right", Flip{E: Diff{L: rele(), R: relx()}}, false},
		{"call mentioning var", Call{Name: "f", Args: []Expr{relx()}}, false},
		{"call not mentioning var", Call{Name: "f", Args: []Expr{rele()}}, true},
		{"tc step", Union{L: rele(), R: Product{L: relx(), R: rele()}}, true},
	}
	for _, c := range cases {
		if got := DeltaDistributive(c.e, "x"); got != c.want {
			t.Errorf("%s: DeltaDistributive(%v, x) = %v, want %v", c.name, c.e, got, c.want)
		}
	}
}

// TestDeltaDistributiveSemantics checks the analysis against its defining
// equation: whenever DeltaDistributive claims e distributes over union in x,
// e(A ∪ B) must equal e(A) ∪ e(B) on random splits.
func TestDeltaDistributiveSemantics(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		body := randIFPBody(r, 3)
		if !DeltaDistributive(body, "x") {
			return true
		}
		db := DB{"e": randIntSet(r, 6, 20)}
		union := randIntSet(r, 8, 20)
		var aElems, bElems []value.Value
		for _, v := range union.Elems() {
			if r.Intn(2) == 0 {
				aElems = append(aElems, v)
			} else {
				bElems = append(bElems, v)
			}
		}
		a, b := value.NewSet(aElems...), value.NewSet(bElems...)
		evalWith := func(s value.Set) (value.Set, error) {
			ev := NewEvaluator(db, Budget{MaxIFPIters: 500, MaxSetSize: 20000})
			return ev.eval(body, map[string]value.Set{"x": s})
		}
		whole, err1 := evalWith(union)
		onA, err2 := evalWith(a)
		onB, err3 := evalWith(b)
		if err1 != nil || err2 != nil || err3 != nil {
			return err1 != nil // a failing body may fail on the parts too
		}
		if !value.Equal(whole, onA.Union(onB)) {
			t.Logf("seed %d: body %v: e(A∪B)=%v but e(A)∪e(B)=%v", seed, body, whole, onA.Union(onB))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randIFPBody generates a random body for IFP_x, mixing distributive and
// non-distributive shapes (Diff with x on the right, Product with x on both
// sides, nested IFPs).
func randIFPBody(r *rand.Rand, depth int) Expr {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return relx()
		case 1:
			return rele()
		default:
			return Lit{Set: randIntSet(r, 3, 7)}
		}
	}
	v := FVar{Name: "v"}
	switch r.Intn(7) {
	case 0:
		return Union{L: randIFPBody(r, depth-1), R: randIFPBody(r, depth-1)}
	case 1:
		return Diff{L: randIFPBody(r, depth-1), R: randIFPBody(r, depth-1)}
	case 2:
		return Select{Of: randIFPBody(r, depth-1), Var: "v",
			Test: FCmp{Op: OpLt, L: v, R: FConst{V: value.Int(int64(r.Intn(12)))}}}
	case 3:
		// +1 mod m keeps the fixpoint finite while forcing several rounds
		return Map{Of: randIFPBody(r, depth-1), Var: "v",
			Out: FArith{Op: OpMod, L: FArith{Op: OpPlus, L: v, R: FConst{V: value.Int(1)}}, R: FConst{V: value.Int(int64(2 + r.Intn(9)))}}}
	case 4:
		return Product{L: randIFPBody(r, depth-1), R: randIFPBody(r, depth-1)}
	case 5:
		return IFP{Var: "y", Body: Union{L: Rel{Name: "y"}, R: randIFPBody(r, depth-1)}}
	default:
		return Flip{E: randIFPBody(r, depth-1)}
	}
}

func randIntSet(r *rand.Rand, n, bound int) value.Set {
	elems := make([]value.Value, 0, n)
	for i := 0; i < r.Intn(n+1); i++ {
		elems = append(elems, value.Int(int64(r.Intn(bound))))
	}
	return value.NewSet(elems...)
}

// TestPropertySemiNaiveIFPEquivalence: on random IFP bodies, the semi-naive
// delta engine and the naive engine compute the same fixpoint — the whole
// point of the DeltaDistributive analysis.
func TestPropertySemiNaiveIFPEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := IFP{Var: "x", Body: randIFPBody(r, 3)}
		db := DB{"e": randIntSet(r, 6, 20)}
		budget := Budget{MaxIFPIters: 500, MaxSetSize: 20000}
		naiveB := budget
		naiveB.NoSemiNaive = true
		semi, errS := NewEvaluator(db, budget).Eval(e)
		naive, errN := NewEvaluator(db, naiveB).Eval(e)
		if errS != nil || errN != nil {
			// A budget blowup may hit the naive engine at a larger
			// intermediate than the semi-naive one; either failing is a draw.
			return true
		}
		if !value.Equal(semi, naive) {
			t.Logf("seed %d: IFP body %v: semi-naive %v != naive %v", seed, e.Body, semi, naive)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// ifpRecorder captures IFPStats events.
type ifpRecorder struct {
	obsv.Nop
	events []obsv.IFPStats
}

func (c *ifpRecorder) IFP(s obsv.IFPStats) { c.events = append(c.events, s) }

// chainTC returns the transitive-closure IFP over a length-n chain plus the
// expected per-round deltas: round r adds the n−r paths of length r+1, and a
// final round adds nothing.
func chainTC(n int) (Expr, DB, []int) {
	elems := make([]value.Value, 0, n)
	for i := 0; i < n; i++ {
		elems = append(elems, value.Pair(value.Int(int64(i)), value.Int(int64(i+1))))
	}
	p := FVar{Name: "p"}
	step := Select{
		Of:  Product{L: Rel{Name: "x"}, R: Rel{Name: "e"}},
		Var: "p",
		Test: FCmp{Op: OpEq,
			L: FField{Of: FField{Of: p, Idx: 1}, Idx: 2},
			R: FField{Of: FField{Of: p, Idx: 2}, Idx: 1}},
	}
	body := Union{L: Rel{Name: "e"}, R: Map{Of: step, Var: "p",
		Out: FTuple{Elems: []FExpr{FField{Of: FField{Of: p, Idx: 1}, Idx: 1}, FField{Of: FField{Of: p, Idx: 2}, Idx: 2}}}}}
	deltas := make([]int, 0, n+1)
	for r := 0; r < n; r++ {
		deltas = append(deltas, n-r)
	}
	deltas = append(deltas, 0)
	return IFP{Var: "x", Body: body}, DB{"e": value.NewSet(elems...)}, deltas
}

// TestIFPDeltaCounts pins the observability of the delta engine on a
// hand-computed workload: transitive closure of a length-6 chain takes 7
// rounds with per-round growth [6, 5, 4, 3, 2, 1, 0] and a 21-pair result,
// in all three modes (the accumulator trajectory is identical; only the
// bound input and its representation differ).
func TestIFPDeltaCounts(t *testing.T) {
	e, db, wantDeltas := chainTC(6)
	for _, mode := range []string{"idsets", "seminaive", "naive"} {
		rec := &ifpRecorder{}
		ev := NewEvaluator(db, Budget{
			NoSemiNaive: mode == "naive",
			NoIDSets:    mode != "idsets",
		})
		ev.SetCollector(rec)
		got, err := ev.Eval(e)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if got.Len() != 21 {
			t.Fatalf("%s: |tc| = %d, want 21", mode, got.Len())
		}
		if len(rec.events) != 1 {
			t.Fatalf("%s: %d IFP events, want 1", mode, len(rec.events))
		}
		ev1 := rec.events[0]
		if ev1.Mode != mode {
			t.Errorf("mode = %q, want %q", ev1.Mode, mode)
		}
		if ev1.Rounds != 7 || ev1.Result != 21 {
			t.Errorf("%s: rounds/result = %d/%d, want 7/21", mode, ev1.Rounds, ev1.Result)
		}
		if len(ev1.Deltas) != len(wantDeltas) {
			t.Fatalf("%s: deltas %v, want %v", mode, ev1.Deltas, wantDeltas)
		}
		for i := range wantDeltas {
			if ev1.Deltas[i] != wantDeltas[i] {
				t.Fatalf("%s: deltas %v, want %v", mode, ev1.Deltas, wantDeltas)
			}
		}
	}
}

// TestIFPStatsCounters folds the same workload through the Stats collector
// and checks the counter vocabulary.
func TestIFPStatsCounters(t *testing.T) {
	e, db, _ := chainTC(6)
	st := obsv.NewStats()
	ev := NewEvaluator(db, Budget{})
	ev.SetCollector(st)
	if _, err := ev.Eval(e); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	want := map[string]int64{
		"ifp.idsets.calls":      1,
		"ifp.idsets.rounds":     7,
		"ifp.idsets.deltaElems": 21,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("%s = %d, want %d (snapshot %v)", k, snap[k], v, snap)
		}
	}
}
