package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"algrec/internal/value"
)

func TestEquiJoinKeys(t *testing.T) {
	p := FVar{Name: "p"}
	f := func(side int, idxs ...int) FExpr {
		e := FExpr(FField{Of: p, Idx: side})
		for _, i := range idxs {
			e = FField{Of: e, Idx: i}
		}
		return e
	}
	// p.1.2 = p.2.1
	test := FCmp{Op: OpEq, L: f(1, 2), R: f(2, 1)}
	lks, rks, ok := EquiJoinKeys("p", test)
	if !ok || len(lks) != 1 || len(rks) != 1 {
		t.Fatalf("keys = %v %v %v", lks, rks, ok)
	}
	if lks[0][0] != 2 || rks[0][0] != 1 {
		t.Errorf("paths = %v %v", lks, rks)
	}
	// swapped sides
	if _, _, ok := EquiJoinKeys("p", FCmp{Op: OpEq, L: f(2, 1), R: f(1, 2)}); !ok {
		t.Error("swapped sides not detected")
	}
	// conjunction with extra conditions
	and := FAnd{L: test, R: FCmp{Op: OpLt, L: f(1, 1), R: FConst{V: value.Int(5)}}}
	if lks, _, ok := EquiJoinKeys("p", and); !ok || len(lks) != 1 {
		t.Error("conjunct extraction failed")
	}
	// two equi conjuncts
	and2 := FAnd{L: test, R: FCmp{Op: OpEq, L: f(1, 1), R: f(2, 2)}}
	if lks, rks, ok := EquiJoinKeys("p", and2); !ok || len(lks) != 2 || len(rks) != 2 {
		t.Error("multi-key extraction failed")
	}
	// no equi conjunct
	for _, bad := range []FExpr{
		FCmp{Op: OpNe, L: f(1, 1), R: f(2, 1)},
		FCmp{Op: OpEq, L: f(1, 1), R: f(1, 2)}, // same side
		FCmp{Op: OpEq, L: f(1, 1), R: FConst{V: value.Int(3)}},
		FConst{V: value.True},
		FCmp{Op: OpEq, L: FVar{Name: "other"}, R: f(2, 1)},
	} {
		if _, _, ok := EquiJoinKeys("p", bad); ok {
			t.Errorf("false positive on %s", bad)
		}
	}
}

// TestHashJoinEqualsNaive: the fast path must compute exactly the naive
// σ(×) result on random tuple relations.
func TestHashJoinEqualsNaive(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mkRel := func(n int) value.Set {
			elems := make([]value.Value, n)
			for i := range elems {
				elems[i] = value.Pair(value.Int(int64(r.Intn(5))), value.Int(int64(r.Intn(5))))
			}
			return value.NewSet(elems...)
		}
		db := DB{"l": mkRel(r.Intn(12)), "r": mkRel(r.Intn(12))}
		p := FVar{Name: "p"}
		test := FAnd{
			L: FCmp{Op: OpEq,
				L: FField{Of: FField{Of: p, Idx: 1}, Idx: 2},
				R: FField{Of: FField{Of: p, Idx: 2}, Idx: 1}},
			R: FCmp{Op: OpLe,
				L: FField{Of: FField{Of: p, Idx: 1}, Idx: 1},
				R: FConst{V: value.Int(3)}},
		}
		e := Select{Of: Product{L: Rel{Name: "l"}, R: Rel{Name: "r"}}, Var: "p", Test: test}
		fast, err := NewEvaluator(db, Budget{}).Eval(e)
		if err != nil {
			return false
		}
		slow, err := NewEvaluator(db, Budget{NoHashJoin: true}).Eval(e)
		if err != nil {
			return false
		}
		return value.Equal(fast, slow)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestHashJoinFallback: elements where a key path does not apply force the
// naive path, so kind errors surface exactly as before.
func TestHashJoinFallback(t *testing.T) {
	// l contains a non-tuple: the key path .2 cannot apply, so evaluation
	// falls back to the naive product, whose test errors on projection.
	db := DB{
		"l": value.NewSet(value.Int(7)),
		"r": value.NewSet(value.Pair(value.Int(1), value.Int(2))),
	}
	p := FVar{Name: "p"}
	e := Select{
		Of:  Product{L: Rel{Name: "l"}, R: Rel{Name: "r"}},
		Var: "p",
		Test: FCmp{Op: OpEq,
			L: FField{Of: FField{Of: p, Idx: 1}, Idx: 2},
			R: FField{Of: FField{Of: p, Idx: 2}, Idx: 1}},
	}
	_, errFast := NewEvaluator(db, Budget{}).Eval(e)
	_, errSlow := NewEvaluator(db, Budget{NoHashJoin: true}).Eval(e)
	if (errFast == nil) != (errSlow == nil) {
		t.Errorf("error behaviour diverged: fast=%v slow=%v", errFast, errSlow)
	}
}

func TestHashJoinTCEquivalence(t *testing.T) {
	// End to end: the TC IFP expression evaluates identically with and
	// without the fast path.
	elems := make([]value.Value, 0, 20)
	for i := 0; i < 20; i++ {
		elems = append(elems, value.Pair(value.Int(int64(i)), value.Int(int64(i+1))))
	}
	db := DB{"move": value.NewSet(elems...)}
	e := tcExpr("move")
	fast, err := NewEvaluator(db, Budget{}).Eval(e)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewEvaluator(db, Budget{NoHashJoin: true}).Eval(e)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(fast, slow) {
		t.Errorf("fast %d elems vs slow %d elems", fast.Len(), slow.Len())
	}
	if fast.Len() != 20*21/2 {
		t.Errorf("|tc| = %d, want 210", fast.Len())
	}
}
