package algebra

import (
	"fmt"

	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// This file implements a hash equi-join fast path. The algebra has no join
// operator — the paper builds joins from ×, σ and MAP — so every join in a
// translated program has the shape
//
//	σ_test(L × R)  with test containing conjuncts  p.1.⟨path⟩ = p.2.⟨path⟩.
//
// Materializing the full product makes that quadratic. When the shape is
// detected, the evaluators instead hash R on its key paths and probe with
// L's key paths, re-checking the *complete* original test on each candidate
// pair, so results are identical to the naive evaluation. If any key path
// fails to apply to an element (a kind or arity mismatch the naive product
// would have surfaced as an error inside the test), the caller falls back
// to the naive path, so error behaviour is preserved too.
//
// Budget.NoHashJoin disables the fast path; the A3 ablation benchmark
// measures the difference.

// KeyPath is a sequence of 1-based tuple projections applied to one side of
// a product element.
type KeyPath []int

// EquiJoinKeys inspects a selection test over product elements (bound to
// var v) and extracts equi-join key paths: conjuncts of the form
// side1-path = side2-path. It returns ok=false when no such conjunct exists.
func EquiJoinKeys(v string, test FExpr) (lks, rks []KeyPath, ok bool) {
	var conjuncts func(e FExpr)
	var atoms []FExpr
	conjuncts = func(e FExpr) {
		if and, isAnd := e.(FAnd); isAnd {
			conjuncts(and.L)
			conjuncts(and.R)
			return
		}
		atoms = append(atoms, e)
	}
	conjuncts(test)
	for _, a := range atoms {
		cmp, isCmp := a.(FCmp)
		if !isCmp || cmp.Op != OpEq {
			continue
		}
		ls, lp, lok := sidePath(cmp.L, v)
		rs, rp, rok := sidePath(cmp.R, v)
		if !lok || !rok {
			continue
		}
		switch {
		case ls == 1 && rs == 2:
			lks = append(lks, lp)
			rks = append(rks, rp)
		case ls == 2 && rs == 1:
			lks = append(lks, rp)
			rks = append(rks, lp)
		}
	}
	return lks, rks, len(lks) > 0
}

// sidePath decomposes a field-projection chain rooted at the product
// element variable: p.side.i1.i2...  →  (side, [i1, i2, ...], true).
func sidePath(e FExpr, v string) (side int, path KeyPath, ok bool) {
	var rev []int
	for {
		switch ee := e.(type) {
		case FField:
			rev = append(rev, ee.Idx)
			e = ee.Of
		case FVar:
			if ee.Name != v || len(rev) == 0 {
				return 0, nil, false
			}
			side = rev[len(rev)-1]
			if side != 1 && side != 2 {
				return 0, nil, false
			}
			path = make(KeyPath, 0, len(rev)-1)
			for i := len(rev) - 2; i >= 0; i-- {
				path = append(path, rev[i])
			}
			return side, path, true
		default:
			return 0, nil, false
		}
	}
}

// applyPath projects a value along the path; ok=false on a kind or range
// mismatch.
func applyPath(val value.Value, path KeyPath) (value.Value, bool) {
	for _, idx := range path {
		t, isTuple := val.(value.Tuple)
		if !isTuple || idx < 1 || idx > t.Len() {
			return nil, false
		}
		val = t.At(idx - 1)
	}
	return val, true
}

// HashJoin evaluates σ_test(l × r) by hashing r on rks and probing with
// lks, re-checking the complete test on every candidate pair. It returns
// ok=false (and no error) when a key path fails to apply, signalling the
// caller to fall back to the naive product.
//
// With interning enabled the index is keyed by the hash-consed ID of each
// key projection (integer map operations, no key string is ever built);
// otherwise by the canonical string encoding. Both give the same buckets —
// IDs are canonical and the encoding is injective — and the complete test is
// re-checked either way, so results are bit-for-bit identical.
func HashJoin(l, r value.Set, v string, test FExpr, lks, rks []KeyPath, maxSize int) (value.Set, bool, error) {
	if value.InterningEnabled() {
		return hashJoinID(l, r, v, test, lks, rks, maxSize)
	}
	index := make(map[string][]value.Value, r.Len())
	for i := 0; i < r.Len(); i++ {
		re := r.At(i)
		key, ok := joinKey(re, rks)
		if !ok {
			return value.Set{}, false, nil
		}
		index[key] = append(index[key], re)
	}
	var out []value.Value
	for i := 0; i < l.Len(); i++ {
		le := l.At(i)
		key, ok := joinKey(le, lks)
		if !ok {
			return value.Set{}, false, nil
		}
		for _, re := range index[key] {
			pair := value.Pair(le, re)
			keep, err := EvalTest(test, FEnv{v: pair})
			if err != nil {
				return value.Set{}, false, err
			}
			if keep {
				out = append(out, pair)
				if len(out) > maxSize {
					return value.Set{}, false, fmt.Errorf("%w: join result exceeds MaxSetSize %d", ErrBudget, maxSize)
				}
			}
		}
	}
	return value.NewSet(out...), true, nil
}

// hashJoinID is HashJoin's interned fast path: ID-keyed index, same shape.
func hashJoinID(l, r value.Set, v string, test FExpr, lks, rks []KeyPath, maxSize int) (value.Set, bool, error) {
	in := intern.Global()
	index := make(map[intern.ID][]value.Value, r.Len())
	var buf []intern.ID
	for i := 0; i < r.Len(); i++ {
		re := r.At(i)
		key, ok := joinKeyID(in, re, rks, &buf)
		if !ok {
			return value.Set{}, false, nil
		}
		index[key] = append(index[key], re)
	}
	var out []value.Value
	for i := 0; i < l.Len(); i++ {
		le := l.At(i)
		key, ok := joinKeyID(in, le, lks, &buf)
		if !ok {
			return value.Set{}, false, nil
		}
		for _, re := range index[key] {
			pair := value.Pair(le, re)
			keep, err := EvalTest(test, FEnv{v: pair})
			if err != nil {
				return value.Set{}, false, err
			}
			if keep {
				out = append(out, pair)
				if len(out) > maxSize {
					return value.Set{}, false, fmt.Errorf("%w: join result exceeds MaxSetSize %d", ErrBudget, maxSize)
				}
			}
		}
	}
	return value.NewSet(out...), true, nil
}

// joinKey builds the composite key string for an element.
func joinKey(e value.Value, paths []KeyPath) (string, bool) {
	if len(paths) == 1 {
		v, ok := applyPath(e, paths[0])
		if !ok {
			return "", false
		}
		return v.String(), true
	}
	parts := make([]value.Value, len(paths))
	for i, p := range paths {
		v, ok := applyPath(e, p)
		if !ok {
			return "", false
		}
		parts[i] = v
	}
	return value.NewTuple(parts...).String(), true
}

// joinKeyID conses an element's composite key to its canonical ID. buf is
// scratch reused across calls (InternTuple copies what it keeps).
func joinKeyID(in *intern.Interner, e value.Value, paths []KeyPath, buf *[]intern.ID) (intern.ID, bool) {
	if len(paths) == 1 {
		v, ok := applyPath(e, paths[0])
		if !ok {
			return 0, false
		}
		return in.Intern(v), true
	}
	ids := (*buf)[:0]
	for _, p := range paths {
		v, ok := applyPath(e, p)
		if !ok {
			*buf = ids
			return 0, false
		}
		ids = append(ids, in.Intern(v))
	}
	*buf = ids
	return in.InternTuple(ids...), true
}
