package algebra

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"algrec/internal/value"
)

func ints(ns ...int64) value.Set {
	elems := make([]value.Value, len(ns))
	for i, n := range ns {
		elems[i] = value.Int(n)
	}
	return value.NewSet(elems...)
}

func pairs(ps ...[2]string) value.Set {
	elems := make([]value.Value, len(ps))
	for i, p := range ps {
		elems[i] = value.Pair(value.String(p[0]), value.String(p[1]))
	}
	return value.NewSet(elems...)
}

func x() FVar { return FVar{Name: "x"} }

func TestEvalBasicOperators(t *testing.T) {
	db := DB{"r": ints(1, 2, 3), "s": ints(3, 4)}
	cases := []struct {
		e    Expr
		want value.Set
	}{
		{Rel{Name: "r"}, ints(1, 2, 3)},
		{Lit{Set: ints(9)}, ints(9)},
		{EmptyLit, value.EmptySet},
		{Union{L: Rel{Name: "r"}, R: Rel{Name: "s"}}, ints(1, 2, 3, 4)},
		{Diff{L: Rel{Name: "r"}, R: Rel{Name: "s"}}, ints(1, 2)},
		{Diff{L: Rel{Name: "s"}, R: Rel{Name: "r"}}, ints(4)},
		{Select{Of: Rel{Name: "r"}, Var: "x", Test: FCmp{Op: OpGe, L: x(), R: FConst{V: value.Int(2)}}}, ints(2, 3)},
		{Map{Of: Rel{Name: "r"}, Var: "x", Out: FArith{Op: OpTimes, L: x(), R: FConst{V: value.Int(10)}}}, ints(10, 20, 30)},
	}
	for _, c := range cases {
		got, err := Eval(c.e, db)
		if err != nil {
			t.Errorf("Eval(%s): %v", c.e, err)
			continue
		}
		if !value.Equal(got, c.want) {
			t.Errorf("Eval(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestEvalProduct(t *testing.T) {
	db := DB{"a": ints(1, 2), "b": ints(7)}
	got, err := Eval(Product{L: Rel{Name: "a"}, R: Rel{Name: "b"}}, db)
	if err != nil {
		t.Fatal(err)
	}
	want := value.NewSet(value.Pair(value.Int(1), value.Int(7)), value.Pair(value.Int(2), value.Int(7)))
	if !value.Equal(got, want) {
		t.Errorf("product = %v, want %v", got, want)
	}
}

func TestEvalProj(t *testing.T) {
	db := DB{"move": pairs([2]string{"a", "b"}, [2]string{"b", "c"})}
	got, err := Eval(Proj(Rel{Name: "move"}, 1), db)
	if err != nil {
		t.Fatal(err)
	}
	want := value.NewSet(value.String("a"), value.String("b"))
	if !value.Equal(got, want) {
		t.Errorf("pi_1(move) = %v, want %v", got, want)
	}
}

// TestEvalIFPTransitiveClosure: the standard IFP use: TC of a relation.
// exp(x) = move ∪ { (a,c) | (a,b) ∈ x, (b,c) ∈ move } expressed with
// product, select and map.
func tcExpr(edges string) Expr {
	joinVar := FVar{Name: "p"}
	// p ranges over pairs ((a,b),(b',c)) from x × edges
	join := Select{
		Of:  Product{L: Rel{Name: "x"}, R: Rel{Name: edges}},
		Var: "p",
		Test: FCmp{Op: OpEq,
			L: FField{Of: FField{Of: joinVar, Idx: 1}, Idx: 2},
			R: FField{Of: FField{Of: joinVar, Idx: 2}, Idx: 1}},
	}
	compose := Map{
		Of:  join,
		Var: "p",
		Out: FTuple{Elems: []FExpr{
			FField{Of: FField{Of: joinVar, Idx: 1}, Idx: 1},
			FField{Of: FField{Of: joinVar, Idx: 2}, Idx: 2},
		}},
	}
	return IFP{Var: "x", Body: Union{L: Rel{Name: edges}, R: compose}}
}

func TestEvalIFPTransitiveClosure(t *testing.T) {
	db := DB{"move": pairs([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})}
	got, err := Eval(tcExpr("move"), db)
	if err != nil {
		t.Fatal(err)
	}
	want := pairs(
		[2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"},
		[2]string{"a", "c"}, [2]string{"b", "d"}, [2]string{"a", "d"},
	)
	if !value.Equal(got, want) {
		t.Errorf("tc = %v, want %v", got, want)
	}
}

// TestEvalIFPNonMonotone is the paper's Section 3.2 example: IFP_{{a}−x}
// evaluates to {a} under the inflationary interpretation ("({a}−EMPTY) ∪
// ({a}−({a}−EMPTY)) ∪ ... = {a}"), even though the expression is not
// monotone.
func TestEvalIFPNonMonotone(t *testing.T) {
	a := value.String("a")
	e := IFP{Var: "x", Body: Diff{L: Singleton(a), R: Rel{Name: "x"}}}
	got, err := Eval(e, DB{})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, value.NewSet(a)) {
		t.Errorf("IFP_{{a}-x} = %v, want {a}", got)
	}
	if IsPositiveIFP(e) {
		t.Error("IFP_{{a}-x} should not be positive")
	}
}

// TestEvalEvenNumbersBounded: Example 1/3's S^e = {0} ∪ MAP_{+2}(S^e); the
// unbounded fixpoint is the infinite set of even numbers, so IFP with a
// bound selection yields its finite prefix, and without a bound the budget
// fires.
func evenExpr(bound int64) Expr {
	step := Map{Of: Rel{Name: "s"}, Var: "x", Out: FArith{Op: OpPlus, L: x(), R: FConst{V: value.Int(2)}}}
	var body Expr = Union{L: Singleton(value.Int(0)), R: step}
	if bound > 0 {
		body = Select{Of: body, Var: "x", Test: FCmp{Op: OpLt, L: x(), R: FConst{V: value.Int(bound)}}}
	}
	return IFP{Var: "s", Body: body}
}

func TestEvalEvenNumbersBounded(t *testing.T) {
	got, err := Eval(evenExpr(10), DB{})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, ints(0, 2, 4, 6, 8)) {
		t.Errorf("bounded evens = %v", got)
	}
	// MEM is total on the result: every even < 10 in, every odd out.
	for i := int64(0); i < 10; i++ {
		if got.Has(value.Int(i)) != (i%2 == 0) {
			t.Errorf("membership of %d wrong", i)
		}
	}
}

func TestEvalEvenNumbersDiverges(t *testing.T) {
	ev := NewEvaluator(DB{}, Budget{MaxIFPIters: 50})
	_, err := ev.Eval(evenExpr(0))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	if !strings.Contains(err.Error(), "IFP") {
		t.Errorf("error %q should mention IFP", err)
	}
}

func TestEvalSetSizeBudget(t *testing.T) {
	db := DB{"r": ints(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)}
	ev := NewEvaluator(db, Budget{MaxSetSize: 50})
	_, err := ev.Eval(Product{L: Product{L: Rel{Name: "r"}, R: Rel{Name: "r"}}, R: Rel{Name: "r"}})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func TestEvalErrors(t *testing.T) {
	db := DB{"r": ints(1)}
	cases := []Expr{
		Rel{Name: "nosuch"},
		Call{Name: "f"},
		Select{Of: Rel{Name: "r"}, Var: "x", Test: x()},                                        // non-boolean test
		Map{Of: Rel{Name: "r"}, Var: "x", Out: FField{Of: x(), Idx: 1}},                        // project non-tuple
		Select{Of: Rel{Name: "r"}, Var: "x", Test: FCmp{Op: OpEq, L: FVar{Name: "y"}, R: x()}}, // unbound var
	}
	for _, e := range cases {
		if _, err := Eval(e, db); err == nil {
			t.Errorf("Eval(%s): expected error", e)
		}
	}
}

func TestEvalFOperators(t *testing.T) {
	env := FEnv{"x": value.Int(6), "t": value.NewTuple(value.Int(1), value.String("a"))}
	cases := []struct {
		e    FExpr
		want value.Value
	}{
		{FArith{Op: OpPlus, L: x(), R: FConst{V: value.Int(2)}}, value.Int(8)},
		{FArith{Op: OpMinus, L: x(), R: FConst{V: value.Int(2)}}, value.Int(4)},
		{FArith{Op: OpTimes, L: x(), R: x()}, value.Int(36)},
		{FArith{Op: OpMod, L: x(), R: FConst{V: value.Int(4)}}, value.Int(2)},
		{FAnd{L: FConst{V: value.True}, R: FConst{V: value.False}}, value.False},
		{FOr{L: FConst{V: value.False}, R: FConst{V: value.True}}, value.True},
		{FNot{E: FConst{V: value.False}}, value.True},
		{FField{Of: FVar{Name: "t"}, Idx: 2}, value.String("a")},
		{FTuple{Elems: []FExpr{x(), x()}}, value.Pair(value.Int(6), value.Int(6))},
		{FMem{Elem: FConst{V: value.Int(1)}, Set: FConst{V: ints(1, 2)}}, value.True},
		{FMem{Elem: FConst{V: value.Int(9)}, Set: FConst{V: ints(1, 2)}}, value.False},
		{FCmp{Op: OpNe, L: x(), R: FConst{V: value.Int(6)}}, value.False},
	}
	for _, c := range cases {
		got, err := EvalF(c.e, env)
		if err != nil {
			t.Errorf("EvalF(%s): %v", c.e, err)
			continue
		}
		if !value.Equal(got, c.want) {
			t.Errorf("EvalF(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestEvalFShortCircuit(t *testing.T) {
	// And/Or short-circuit: the bad right operand is never evaluated.
	bad := FField{Of: FConst{V: value.Int(1)}, Idx: 1}
	if v, err := EvalF(FAnd{L: FConst{V: value.False}, R: bad}, nil); err != nil || !value.Equal(v, value.False) {
		t.Errorf("FAnd short-circuit: %v, %v", v, err)
	}
	if v, err := EvalF(FOr{L: FConst{V: value.True}, R: bad}, nil); err != nil || !value.Equal(v, value.True) {
		t.Errorf("FOr short-circuit: %v, %v", v, err)
	}
}

func TestEvalFErrors(t *testing.T) {
	cases := []FExpr{
		FVar{Name: "unbound"},
		FField{Of: FConst{V: value.Int(1)}, Idx: 1},
		FField{Of: FConst{V: value.NewTuple(value.Int(1))}, Idx: 3},
		FArith{Op: OpPlus, L: FConst{V: value.String("a")}, R: FConst{V: value.Int(1)}},
		FArith{Op: OpMod, L: FConst{V: value.Int(1)}, R: FConst{V: value.Int(0)}},
		FAnd{L: FConst{V: value.Int(1)}, R: FConst{V: value.True}},
		FNot{E: FConst{V: value.Int(0)}},
		FMem{Elem: FConst{V: value.Int(1)}, Set: FConst{V: value.Int(2)}},
	}
	for _, e := range cases {
		if _, err := EvalF(e, FEnv{}); err == nil {
			t.Errorf("EvalF(%s): expected error", e)
		}
	}
}

func TestFreeRelsAndCallNames(t *testing.T) {
	e := Union{
		L: IFP{Var: "x", Body: Union{L: Rel{Name: "base"}, R: Rel{Name: "x"}}},
		R: Call{Name: "f", Args: []Expr{Rel{Name: "arg"}}},
	}
	if got := strings.Join(FreeRels(e), ","); got != "arg,base" {
		t.Errorf("FreeRels = %s, want arg,base", got)
	}
	if got := strings.Join(CallNames(e), ","); got != "f" {
		t.Errorf("CallNames = %s, want f", got)
	}
}

func TestOccursPositively(t *testing.T) {
	s := Rel{Name: "s"}
	cases := []struct {
		e    Expr
		want bool
	}{
		{Union{L: s, R: Lit{}}, true},
		{Diff{L: s, R: Lit{}}, true},
		{Diff{L: Lit{}, R: s}, false},
		{Diff{L: Lit{}, R: Diff{L: Lit{}, R: s}}, true}, // double negation
		{Product{L: s, R: s}, true},
		{Select{Of: s, Var: "x", Test: FConst{V: value.True}}, true},
		{Map{Of: Diff{L: Lit{}, R: s}, Var: "x", Out: x()}, false},
		{IFP{Var: "s", Body: Diff{L: Lit{}, R: s}}, true}, // bound occurrence
		{IFP{Var: "y", Body: Diff{L: Rel{Name: "y"}, R: s}}, false},
		{Call{Name: "f", Args: []Expr{s}}, false}, // unknown polarity under call
		{Call{Name: "f", Args: []Expr{Rel{Name: "other"}}}, true},
	}
	for _, c := range cases {
		if got := OccursPositively(c.e, "s"); got != c.want {
			t.Errorf("OccursPositively(%s, s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestIsPositiveIFPAndHasIFP(t *testing.T) {
	tc := tcExpr("move")
	if !IsPositiveIFP(tc) {
		t.Error("TC expression should be positive IFP")
	}
	if !HasIFP(tc) {
		t.Error("TC expression contains IFP")
	}
	nonPos := IFP{Var: "x", Body: Diff{L: Singleton(value.String("a")), R: Rel{Name: "x"}}}
	if IsPositiveIFP(nonPos) {
		t.Error("{a}-x IFP should not be positive")
	}
	plain := Union{L: Rel{Name: "r"}, R: Rel{Name: "s"}}
	if HasIFP(plain) {
		t.Error("plain union has no IFP")
	}
	if !IsPositiveIFP(plain) {
		t.Error("expression with no IFP is vacuously positive")
	}
}

func TestExprStrings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Rel{Name: "r"}, "r"},
		{Singleton(value.Int(0)), "{0}"},
		{Union{L: Rel{Name: "a"}, R: Rel{Name: "b"}}, "union(a, b)"},
		{Diff{L: Rel{Name: "a"}, R: Rel{Name: "b"}}, "diff(a, b)"},
		{Product{L: Rel{Name: "a"}, R: Rel{Name: "b"}}, "product(a, b)"},
		{Select{Of: Rel{Name: "a"}, Var: "x", Test: FCmp{Op: OpLt, L: x(), R: FConst{V: value.Int(3)}}}, `select(a, \x -> x < 3)`},
		{Map{Of: Rel{Name: "a"}, Var: "x", Out: FField{Of: x(), Idx: 1}}, `map(a, \x -> x.1)`},
		{IFP{Var: "x", Body: Union{L: Rel{Name: "e"}, R: Rel{Name: "x"}}}, "ifp(x, union(e, x))"},
		{Call{Name: "f", Args: []Expr{Rel{Name: "a"}, Rel{Name: "b"}}}, "f(a, b)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestCallResolver(t *testing.T) {
	// The extension hook: resolve calls to externally-defined operations.
	db := DB{"r": ints(1, 2, 3)}
	ev := NewEvaluator(db, Budget{})
	ev.Call = func(name string, args []value.Set) (value.Set, error) {
		switch name {
		case "double":
			return args[0].Map(func(v value.Value) (value.Value, error) {
				return value.Int(int64(v.(value.Int)) * 2), nil
			})
		default:
			return value.Set{}, fmt.Errorf("no such op %q", name)
		}
	}
	got, err := ev.Eval(Call{Name: "double", Args: []Expr{Rel{Name: "r"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, ints(2, 4, 6)) {
		t.Errorf("resolved call = %v", got)
	}
	if _, err := ev.Eval(Call{Name: "nosuch"}); err == nil {
		t.Error("resolver error not propagated")
	}
	// Depth budget guards runaway resolution.
	evLoop := NewEvaluator(db, Budget{MaxDepth: 5})
	evLoop.Call = func(string, []value.Set) (value.Set, error) {
		return evLoop.Eval(Call{Name: "loop"})
	}
	if _, err := evLoop.Eval(Call{Name: "loop"}); !errors.Is(err, ErrBudget) {
		t.Errorf("expected depth budget error, got %v", err)
	}
}

func TestFlip(t *testing.T) {
	// Two-valued evaluation: Flip is the identity.
	db := DB{"r": ints(1, 2, 3)}
	got, err := Eval(Flip{E: Rel{Name: "r"}}, db)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, ints(1, 2, 3)) {
		t.Errorf("Flip eval = %v", got)
	}
	fl := Flip{E: Rel{Name: "r"}}
	if fl.String() != "flip(r)" {
		t.Errorf("Flip.String = %q", fl.String())
	}
	// Polarity analysis: Flip restores polarity under a subtraction.
	s := Rel{Name: "s"}
	if !OccursPositively(Diff{L: Lit{}, R: Flip{E: s}}, "s") {
		t.Error("s under Diff-R inside Flip should count as positive")
	}
	if OccursPositively(Flip{E: s}, "s") {
		t.Error("s directly under Flip at top level flips to negative")
	}
	// Walkers traverse Flip.
	e := Flip{E: Union{L: s, R: Call{Name: "f"}}}
	if got := strings.Join(FreeRels(e), ","); got != "s" {
		t.Errorf("FreeRels through Flip = %s", got)
	}
	if got := strings.Join(CallNames(e), ","); got != "f" {
		t.Errorf("CallNames through Flip = %s", got)
	}
	if HasIFP(e) {
		t.Error("HasIFP through Flip wrong")
	}
	if !HasIFP(Flip{E: IFP{Var: "x", Body: Rel{Name: "x"}}}) {
		t.Error("HasIFP should see IFP inside Flip")
	}
}

func TestIFPShadowsOuterBinding(t *testing.T) {
	// Nested IFPs with the same variable name: inner binding shadows outer.
	inner := IFP{Var: "x", Body: Union{L: Singleton(value.Int(1)), R: Rel{Name: "x"}}}
	outer := IFP{Var: "x", Body: Union{L: inner, R: Rel{Name: "x"}}}
	got, err := Eval(outer, DB{})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, ints(1)) {
		t.Errorf("nested IFP = %v, want {1}", got)
	}
}

func TestIntersectionViaExample3(t *testing.T) {
	// Example 3: x ∩ y = x − (x − y) as an algebra expression.
	db := DB{"x": ints(1, 2, 3), "y": ints(2, 3, 4)}
	e := Diff{L: Rel{Name: "x"}, R: Diff{L: Rel{Name: "x"}, R: Rel{Name: "y"}}}
	got, err := Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, ints(2, 3)) {
		t.Errorf("intersection = %v", got)
	}
	// xor: (x − y) ∪ (y − x)
	e2 := Union{L: Diff{L: Rel{Name: "x"}, R: Rel{Name: "y"}}, R: Diff{L: Rel{Name: "y"}, R: Rel{Name: "x"}}}
	got2, err := Eval(e2, db)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got2, ints(1, 4)) {
		t.Errorf("xor = %v", got2)
	}
}
