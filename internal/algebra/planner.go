package algebra

import (
	"fmt"
	"strings"

	"algrec/internal/value"
)

// This file is the cost-based planner of the streaming runtime: it compiles
// σ_test over a tree of products into a pushdown + hash-join pipeline. The
// algebra has no join operator — the paper builds joins from ×, σ and MAP —
// so every join arrives as a selection over a (possibly nested) product.
// The planner
//
//   - flattens the product tree into leaves,
//   - splits the test into conjuncts, pushes single-leaf conjuncts into the
//     leaf scans, and turns leaf-to-leaf equality conjuncts into hash-join
//     edges (keyed by interned IDs when interning is on, reusing the PR 6
//     fast path),
//   - orders the leaves greedily by estimated cardinality (exact leaf sizes
//     × selectivity defaults — see docs/planner.md for the model),
//   - and re-checks the complete original test on every reconstructed
//     element, so the result set is exactly σ_test(product).
//
// Pruning is conservative about errors: a pushed conjunct that errors on a
// leaf element keeps the element (the final re-check surfaces whatever the
// naive evaluation would have), and elements whose join key fails to apply
// go to an always-probed overflow bucket instead of being dropped.

// maxPlanLeaves caps the flattened product width: beyond it the planner
// refuses and the evaluator falls back to the materialized path. Translated
// programs produce two-leaf joins; the cap only guards degenerate towers.
const maxPlanLeaves = 8

// Selectivity defaults, multiplied per pushed conjunct onto the exact leaf
// cardinality. The absolute values matter less than the ordering: equality
// prunes hardest, negation barely at all.
const (
	selEq      = 0.1
	selNe      = 0.9
	selRange   = 0.4
	selMember  = 0.3
	selGeneric = 0.7
)

// prodNode is the shape of the flattened product tree: either a leaf index
// or an internal pair node. It drives element reconstruction.
type prodNode struct {
	leaf int // leaf index when l == nil
	l, r *prodNode
}

// planLeaf is one scan of the join pipeline: an opaque subexpression, the
// conjuncts pushed into its scan (rewritten onto the bare leaf element),
// and its post-filter cardinality estimate (filled during ordering).
type planLeaf struct {
	expr    Expr
	filters []FExpr
	est     float64
}

// leafPath addresses a projection of one leaf's element: leaf index plus a
// field path within the element.
type leafPath struct {
	leaf int
	path KeyPath
}

// joinEdge is one cross-leaf equality conjunct usable as a hash-join key.
type joinEdge struct {
	a, b leafPath // a.leaf < b.leaf
}

// planStep binds one more leaf into the pipeline. With keys present the
// step is a hash join: probe with probeKeys computed over already-bound
// leaves, build on buildKeys over the new leaf. Without keys it is a
// nested-loop cross step.
type planStep struct {
	leaf      int
	probeKeys []leafPath
	buildKeys []KeyPath
}

// joinPlan is the compiled strategy for one σ-over-product pipeline.
type joinPlan struct {
	v      string // the selection's element variable ("" for a bare product)
	test   FExpr  // the complete original test (nil for a bare product)
	leaves []planLeaf
	shape  *prodNode
	edges  []joinEdge // cross-leaf equality conjuncts, in conjunct order
	steps  []planStep // steps[0] is the driving scan (no keys)
}

// planJoin compiles σ_test(prod) — or, with v == "" and test == nil, a bare
// product — into a joinPlan. ok=false means the shape is out of scope (too
// many leaves) and the caller must materialize. noHash disables join edges
// (Budget.NoHashJoin), leaving pushdown and the streaming cross product.
func planJoin(v string, test FExpr, prod Product, noHash bool) (*joinPlan, bool) {
	p := &joinPlan{v: v, test: test}
	p.shape = p.flatten(prod)
	if len(p.leaves) > maxPlanLeaves {
		return nil, false
	}
	if test != nil {
		p.edges = p.analyze(test, noHash)
	}
	return p, true
}

// flatten records the leaves of a product tree in evaluation (in-)order and
// returns its shape.
func (p *joinPlan) flatten(e Expr) *prodNode {
	if prod, isProd := e.(Product); isProd {
		l := p.flatten(prod.L)
		r := p.flatten(prod.R)
		return &prodNode{l: l, r: r}
	}
	p.leaves = append(p.leaves, planLeaf{expr: e})
	return &prodNode{leaf: len(p.leaves) - 1}
}

// resolve maps a field path rooted at the product element onto a leaf: the
// tree prefix selects the leaf, the suffix projects within its element.
// ok=false when the path stops inside the tree (it spans several leaves).
func (p *joinPlan) resolve(path []int) (lp leafPath, ok bool) {
	n := p.shape
	i := 0
	for n.l != nil {
		if i >= len(path) {
			return leafPath{}, false // addresses a whole subtree
		}
		switch path[i] {
		case 1:
			n = n.l
		case 2:
			n = n.r
		default:
			return leafPath{}, false // projects a pair out of range
		}
		i++
	}
	return leafPath{leaf: n.leaf, path: KeyPath(path[i:])}, true
}

// analyze splits the test into conjuncts and classifies each: single-leaf
// conjuncts are rewritten and pushed into that leaf's filters, cross-leaf
// equalities of pure projection chains become join edges, everything else
// is left to the final re-check.
func (p *joinPlan) analyze(test FExpr, noHash bool) []joinEdge {
	var atoms []FExpr
	var split func(e FExpr)
	split = func(e FExpr) {
		if and, isAnd := e.(FAnd); isAnd {
			split(and.L)
			split(and.R)
			return
		}
		atoms = append(atoms, e)
	}
	split(test)
	var edges []joinEdge
	for _, a := range atoms {
		if f, leaf, ok := p.rewriteAtom(a); ok {
			p.leaves[leaf].filters = append(p.leaves[leaf].filters, f)
			continue
		}
		if noHash {
			continue
		}
		cmp, isCmp := a.(FCmp)
		if !isCmp || cmp.Op != OpEq {
			continue
		}
		lp, lok := p.chainPath(cmp.L)
		rp, rok := p.chainPath(cmp.R)
		if !lok || !rok || lp.leaf == rp.leaf {
			continue
		}
		if lp.leaf > rp.leaf {
			lp, rp = rp, lp
		}
		edges = append(edges, joinEdge{a: lp, b: rp})
	}
	return edges
}

// chainPath decomposes an FExpr that is exactly a field-projection chain
// rooted at the element variable and resolves it to a single leaf.
func (p *joinPlan) chainPath(e FExpr) (leafPath, bool) {
	var rev []int
	for {
		switch ee := e.(type) {
		case FField:
			rev = append(rev, ee.Idx)
			e = ee.Of
		case FVar:
			if ee.Name != p.v {
				return leafPath{}, false
			}
			path := make([]int, len(rev))
			for i, idx := range rev {
				path[len(rev)-1-i] = idx
			}
			return p.resolve(path)
		default:
			return leafPath{}, false
		}
	}
}

// rewriteAtom rebuilds an atom with every element-variable projection chain
// re-rooted on the bare leaf element, provided all chains land in the same
// leaf. ok=false when the atom touches several leaves, addresses a subtree,
// references the whole element, or mentions a foreign variable.
func (p *joinPlan) rewriteAtom(a FExpr) (out FExpr, leaf int, ok bool) {
	leaf = -1
	var rw func(e FExpr) (FExpr, bool)
	rebuildChain := func(e FExpr) (FExpr, bool) {
		lp, ok := p.chainPath(e)
		if !ok {
			return nil, false
		}
		if leaf == -1 {
			leaf = lp.leaf
		} else if leaf != lp.leaf {
			return nil, false
		}
		var out FExpr = FVar{Name: p.v}
		for _, idx := range lp.path {
			out = FField{Of: out, Idx: idx}
		}
		return out, true
	}
	rw = func(e FExpr) (FExpr, bool) {
		switch ee := e.(type) {
		case FVar:
			return nil, false // the whole element, or a foreign variable
		case FConst:
			return ee, true
		case FField:
			return rebuildChain(ee)
		case FTuple:
			elems := make([]FExpr, len(ee.Elems))
			for i, sub := range ee.Elems {
				s, ok := rw(sub)
				if !ok {
					return nil, false
				}
				elems[i] = s
			}
			return FTuple{Elems: elems}, true
		case FCmp:
			l, lok := rw(ee.L)
			r, rok := rw(ee.R)
			if !lok || !rok {
				return nil, false
			}
			return FCmp{Op: ee.Op, L: l, R: r}, true
		case FArith:
			l, lok := rw(ee.L)
			r, rok := rw(ee.R)
			if !lok || !rok {
				return nil, false
			}
			return FArith{Op: ee.Op, L: l, R: r}, true
		case FAnd:
			l, lok := rw(ee.L)
			r, rok := rw(ee.R)
			if !lok || !rok {
				return nil, false
			}
			return FAnd{L: l, R: r}, true
		case FOr:
			l, lok := rw(ee.L)
			r, rok := rw(ee.R)
			if !lok || !rok {
				return nil, false
			}
			return FOr{L: l, R: r}, true
		case FNot:
			s, ok := rw(ee.E)
			if !ok {
				return nil, false
			}
			return FNot{E: s}, true
		case FMem:
			s, ok := rw(ee.Elem)
			if !ok {
				return nil, false
			}
			t, ok := rw(ee.Set)
			if !ok {
				return nil, false
			}
			return FMem{Elem: s, Set: t}, true
		default:
			return nil, false
		}
	}
	out, ok = rw(a)
	if !ok || leaf == -1 {
		return nil, 0, false
	}
	return out, leaf, true
}

// selectivity estimates the fraction of elements a pushed conjunct keeps.
func selectivity(f FExpr) float64 {
	switch ff := f.(type) {
	case FCmp:
		switch ff.Op {
		case OpEq:
			return selEq
		case OpNe:
			return selNe
		default:
			return selRange
		}
	case FMem:
		return selMember
	case FNot:
		return 1 - selectivity(ff.E)
	default:
		return selGeneric
	}
}

// estimate returns the planner's cardinality estimate for a leaf with n
// elements: the exact size shrunk by the selectivity of each pushed filter.
func estimate(n int, filters []FExpr) float64 {
	est := float64(n)
	for _, f := range filters {
		est *= selectivity(f)
	}
	return est
}

// reorder fixes the leaf visit order greedily from exact leaf sizes: start
// at the leaf with the smallest estimate (size × pushed-filter
// selectivities), then repeatedly bind the leaf minimizing the estimated
// intermediate size — joining over available edges when possible (each key
// multiplies by selEq), crossing otherwise. Ties break on the lower leaf
// index, so plans are deterministic. The executor calls this after
// evaluating the leaf sets, which is when exact cardinalities exist.
func (p *joinPlan) reorder(sizes []int) {
	n := len(p.leaves)
	for i := range p.leaves {
		p.leaves[i].est = estimate(sizes[i], p.leaves[i].filters)
	}
	bound := make([]bool, n)
	start := 0
	for i := 1; i < n; i++ {
		if p.leaves[i].est < p.leaves[start].est {
			start = i
		}
	}
	bound[start] = true
	p.steps = []planStep{{leaf: start}}
	cur := p.leaves[start].est
	for len(p.steps) < n {
		best, bestCost := -1, 0.0
		var bestStep planStep
		for cand := 0; cand < n; cand++ {
			if bound[cand] {
				continue
			}
			step := planStep{leaf: cand}
			cost := cur * p.leaves[cand].est
			for _, e := range p.edges {
				var here, there leafPath
				switch {
				case e.a.leaf == cand && bound[e.b.leaf]:
					here, there = e.a, e.b
				case e.b.leaf == cand && bound[e.a.leaf]:
					here, there = e.b, e.a
				default:
					continue
				}
				step.buildKeys = append(step.buildKeys, here.path)
				step.probeKeys = append(step.probeKeys, there)
				cost *= selEq
			}
			if best == -1 || cost < bestCost {
				best, bestCost, bestStep = cand, cost, step
			}
		}
		bound[best] = true
		p.steps = append(p.steps, bestStep)
		cur = bestCost
		if cur < 1 {
			cur = 1
		}
	}
}

// Explain renders the plan one step per line, for tests and docs: the
// driving scan, then each join/cross step with its keys and pushed-filter
// counts.
func (p *joinPlan) Explain() string {
	var sb strings.Builder
	for i, st := range p.steps {
		l := p.leaves[st.leaf]
		switch {
		case i == 0:
			fmt.Fprintf(&sb, "scan leaf %d", st.leaf)
		case len(st.buildKeys) > 0:
			fmt.Fprintf(&sb, "hash-join leaf %d on %d key(s)", st.leaf, len(st.buildKeys))
		default:
			fmt.Fprintf(&sb, "cross leaf %d", st.leaf)
		}
		if len(l.filters) > 0 {
			fmt.Fprintf(&sb, " [%d pushed filter(s)]", len(l.filters))
		}
		fmt.Fprintf(&sb, " est=%.1f\n", l.est)
	}
	return sb.String()
}

// reconstruct rebuilds the original nested product element from a row of
// per-leaf bindings, following the tree shape.
func reconstruct(n *prodNode, row []value.Value) value.Value {
	if n.l == nil {
		return row[n.leaf]
	}
	return value.Pair(reconstruct(n.l, row), reconstruct(n.r, row))
}

