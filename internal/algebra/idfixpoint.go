package algebra

import (
	"errors"
	"fmt"

	"algrec/internal/value"
	"algrec/internal/value/idset"
	"algrec/internal/value/intern"
)

// This file implements the ID-native semi-naive fixpoint engine: when
// interning is on and the IFP body is delta-distributive, the per-round
// delta, the accumulator and every intermediate set are idset.Sets of
// interned IDs instead of materialized value.Sets. The body is compiled once
// per fixpoint into a small tree of ID-space operators:
//
//   - the fixpoint variable reads the current delta directly;
//   - every variable-free subexpression is evaluated once (through the host
//     evaluator, so core's polarity environments apply) and frozen as a
//     constant ID set — the value path re-evaluates it every round;
//   - union children that are constants are emitted only in round 0: a
//     distributive body's constant contributions are absorbed by the round-0
//     accumulator, so later rounds produce the same accumulator and delta
//     without them (the profiled source of the old ifpTCChain inversion,
//     where re-merging the base relation every round swamped the delta win);
//   - σ(L × R) whose test is exactly a conjunction of side-to-side equality
//     paths becomes an ID hash join: the constant side is indexed once per
//     fixpoint (the value path rebuilds the index every round) and probed
//     with delta elements, and an enclosing MAP of pure projection paths is
//     fused into the probe so the intermediate pair values are never built —
//     each output element is one InternTuple call over element IDs;
//   - general σ/MAP fall back to per-element EvalTest/EvalF on the interner's
//     canonical values (a lock-free Lookup, no set materialization).
//
// Equivalence contract: pure-equality join tests cannot fail (Compare is
// total), and every operation that could observe a difference from the value
// path — a projection path that does not apply, an element-level evaluation
// error — aborts the ID engine, which then reports "not run" so the caller
// re-runs the value path and reproduces its exact result or error. The ID
// engine itself only raises the round-aligned budget and interrupt errors
// RunIFP would raise on the same round. As with the streaming runtime, only
// budget *boundaries* can differ (the value path also caps intermediate sets
// inside the body); Budget.NoIDSets restores the value path bit-for-bit.

// errIDAbort signals that the ID engine cannot reproduce the value path's
// behavior for this evaluation; the caller falls back to RunIFP.
var errIDAbort = errors.New("algebra: id fixpoint abort")

// idNode is one compiled ID-space operator. eval returns the node's value on
// the current round, and whether the caller owns the result (must release it
// to the round scratch) or is borrowing a persistent set.
type idNode interface {
	eval(ctx *idCtx) (s idset.Set, owned bool, err error)
}

// idCtx is the per-fixpoint evaluation context: the interner, the buffer
// scratch, the current delta and round, and reusable emission buffers.
type idCtx struct {
	in     *intern.Interner
	sc     *idset.Scratch
	delta  idset.Set
	round  int
	max    int // Budget.MaxSetSize
	raw    []intern.ID // emission buffer, consumed by Build before returning
	keyBuf []intern.ID
	env    FEnv // single-binding environment reused across elements
}

// idDelta reads the current per-round delta (the fixpoint variable).
type idDelta struct{}

func (idDelta) eval(ctx *idCtx) (idset.Set, bool, error) { return ctx.delta, false, nil }

// idConst is a variable-free subexpression, evaluated once at compile time.
type idConst struct{ set idset.Set }

func (n *idConst) eval(ctx *idCtx) (idset.Set, bool, error) { return n.set, false, nil }

// idUnion merges its parts. Constant parts are emitted only in round 0: in a
// delta-distributive body every constant union child contributes the same
// set every round, and round 0 (delta = ∅) already folded it into the
// accumulator, so the engine's acc ∪ out and out − acc are unchanged.
type idUnion struct{ parts []idNode }

func (n *idUnion) eval(ctx *idCtx) (idset.Set, bool, error) {
	cur, owned := idset.Empty, false
	for _, p := range n.parts {
		if _, isConst := p.(*idConst); isConst && ctx.round > 0 {
			continue
		}
		s, po, err := p.eval(ctx)
		if err != nil {
			if owned {
				ctx.sc.Release(cur)
			}
			return idset.Empty, false, err
		}
		switch {
		case s.IsEmpty():
			if po {
				ctx.sc.Release(s)
			}
		case cur.IsEmpty():
			if owned {
				ctx.sc.Release(cur)
			}
			cur, owned = s, po
		default:
			merged := ctx.sc.Union(cur, s)
			if owned {
				ctx.sc.Release(cur)
			}
			if po {
				ctx.sc.Release(s)
			}
			cur, owned = merged, true
		}
	}
	return cur, owned, nil
}

// idDiff subtracts a constant subtrahend (delta-distributivity guarantees
// the right operand is variable-free).
type idDiff struct {
	l   idNode
	sub idset.Set
}

func (n *idDiff) eval(ctx *idCtx) (idset.Set, bool, error) {
	l, owned, err := n.l.eval(ctx)
	if err != nil {
		return idset.Empty, false, err
	}
	out := ctx.sc.Diff(l, n.sub)
	if owned {
		ctx.sc.Release(l)
	}
	return out, true, nil
}

// idProduct emits the pair tuples of L × R (one side is constant; the value
// path's division-based size guard is preserved).
type idProduct struct{ l, r idNode }

func (n *idProduct) eval(ctx *idCtx) (idset.Set, bool, error) {
	l, lo, err := n.l.eval(ctx)
	if err != nil {
		return idset.Empty, false, err
	}
	r, ro, err := n.r.eval(ctx)
	if err != nil {
		if lo {
			ctx.sc.Release(l)
		}
		return idset.Empty, false, err
	}
	defer func() {
		if lo {
			ctx.sc.Release(l)
		}
		if ro {
			ctx.sc.Release(r)
		}
	}()
	if l.Len() > 0 && r.Len() > ctx.max/l.Len() {
		return idset.Empty, false, fmt.Errorf("%w: product of %d x %d elements exceeds MaxSetSize %d", ErrBudget, l.Len(), r.Len(), ctx.max)
	}
	raw := ctx.raw[:0]
	for i := 0; i < l.Len(); i++ {
		for j := 0; j < r.Len(); j++ {
			raw = append(raw, ctx.in.InternTuple(l.At(i), r.At(j)))
		}
	}
	out, rest := ctx.sc.Build(raw)
	ctx.raw = rest
	return out, true, nil
}

// idSelect filters a compiled operand with a general test, evaluated on the
// interner's canonical value for each element ID.
type idSelect struct {
	of   idNode
	v    string
	test FExpr
}

func (n *idSelect) eval(ctx *idCtx) (idset.Set, bool, error) {
	of, owned, err := n.of.eval(ctx)
	if err != nil {
		return idset.Empty, false, err
	}
	raw := ctx.raw[:0]
	for i := 0; i < of.Len(); i++ {
		id := of.At(i)
		ctx.env[n.v] = ctx.in.Lookup(id)
		keep, err := EvalTest(n.test, ctx.env)
		if err != nil {
			ctx.raw = raw
			if owned {
				ctx.sc.Release(of)
			}
			return idset.Empty, false, errIDAbort
		}
		if keep {
			raw = append(raw, id)
		}
	}
	out, rest := ctx.sc.Build(raw)
	ctx.raw = rest
	if owned {
		ctx.sc.Release(of)
	}
	return out, true, nil
}

// idMapPath is MAP of a pure projection path: each element maps to the ID at
// the path, navigated through the interner's element-ID tables without
// touching values. A path that does not apply aborts (the value path reports
// the projection error).
type idMapPath struct {
	of   idNode
	path KeyPath
}

func (n *idMapPath) eval(ctx *idCtx) (idset.Set, bool, error) {
	of, owned, err := n.of.eval(ctx)
	if err != nil {
		return idset.Empty, false, err
	}
	raw := ctx.raw[:0]
	for i := 0; i < of.Len(); i++ {
		id, ok := pathID(ctx.in, of.At(i), n.path)
		if !ok {
			ctx.raw = raw
			if owned {
				ctx.sc.Release(of)
			}
			return idset.Empty, false, errIDAbort
		}
		raw = append(raw, id)
	}
	out, rest := ctx.sc.Build(raw)
	ctx.raw = rest
	if owned {
		ctx.sc.Release(of)
	}
	return out, true, nil
}

// idMap is the general MAP: evaluate the restructuring function on the
// canonical value and intern the result.
type idMap struct {
	of  idNode
	v   string
	out FExpr
}

func (n *idMap) eval(ctx *idCtx) (idset.Set, bool, error) {
	of, owned, err := n.of.eval(ctx)
	if err != nil {
		return idset.Empty, false, err
	}
	raw := ctx.raw[:0]
	for i := 0; i < of.Len(); i++ {
		ctx.env[n.v] = ctx.in.Lookup(of.At(i))
		v, err := EvalF(n.out, ctx.env)
		if err != nil {
			ctx.raw = raw
			if owned {
				ctx.sc.Release(of)
			}
			return idset.Empty, false, errIDAbort
		}
		raw = append(raw, ctx.in.Intern(v))
	}
	out, rest := ctx.sc.Build(raw)
	ctx.raw = rest
	if owned {
		ctx.sc.Release(of)
	}
	return out, true, nil
}

// projSpec is one fused output component: a projection path on the left or
// right element of a joined pair.
type projSpec struct {
	left bool
	path KeyPath
}

// idJoin is the σ(L × R) equi-join, with an optional fused MAP projection.
// The constant side was indexed at compile time; the probe side is compiled.
// The test is exactly a conjunction of side-to-side equality paths, which
// key equality decides completely (Compare is total, so pure equality
// conjuncts cannot error), so matched pairs need no re-check.
type idJoin struct {
	probe     idNode
	probeLeft bool                      // the probe side is the product's left operand
	index     map[intern.ID][]intern.ID // constant-side key -> element IDs
	probeKeys []KeyPath
	outs      []projSpec // nil: emit the (l, r) pair tuples
	outSingle bool       // the MAP body was a bare path, not a tuple
}

func (n *idJoin) eval(ctx *idCtx) (idset.Set, bool, error) {
	probe, owned, err := n.probe.eval(ctx)
	if err != nil {
		return idset.Empty, false, err
	}
	raw := ctx.raw[:0]
	abort := func() (idset.Set, bool, error) {
		ctx.raw = raw
		if owned {
			ctx.sc.Release(probe)
		}
		return idset.Empty, false, errIDAbort
	}
	for i := 0; i < probe.Len(); i++ {
		pe := probe.At(i)
		key, ok := joinKeyIDPath(ctx, pe, n.probeKeys)
		if !ok {
			return abort()
		}
		for _, me := range n.index[key] {
			l, r := pe, me
			if !n.probeLeft {
				l, r = me, pe
			}
			var out intern.ID
			switch {
			case n.outs == nil:
				out = ctx.in.InternTuple(l, r)
			case n.outSingle:
				out, ok = projectSpec(ctx.in, l, r, n.outs[0])
				if !ok {
					return abort()
				}
			default:
				parts := ctx.keyBuf[:0]
				for _, spec := range n.outs {
					p, ok := projectSpec(ctx.in, l, r, spec)
					if !ok {
						ctx.keyBuf = parts
						return abort()
					}
					parts = append(parts, p)
				}
				ctx.keyBuf = parts
				out = ctx.in.InternTuple(parts...)
			}
			raw = append(raw, out)
			if len(raw) > ctx.max {
				ctx.raw = raw
				if owned {
					ctx.sc.Release(probe)
				}
				return idset.Empty, false, fmt.Errorf("%w: join result exceeds MaxSetSize %d", ErrBudget, ctx.max)
			}
		}
	}
	res, rest := ctx.sc.Build(raw)
	ctx.raw = rest
	if owned {
		ctx.sc.Release(probe)
	}
	return res, true, nil
}

func projectSpec(in *intern.Interner, l, r intern.ID, spec projSpec) (intern.ID, bool) {
	if spec.left {
		return pathID(in, l, spec.path)
	}
	return pathID(in, r, spec.path)
}

// pathID navigates a projection path through interned element-ID tables:
// the ID-space counterpart of applyPath. ok=false on a non-tuple or an
// out-of-range index.
func pathID(in *intern.Interner, id intern.ID, path KeyPath) (intern.ID, bool) {
	for _, idx := range path {
		if in.Lookup(id).Kind() != value.KindTuple {
			return 0, false
		}
		sub := in.Elems(id)
		if idx < 1 || idx > len(sub) {
			return 0, false
		}
		id = sub[idx-1]
	}
	return id, true
}

// joinKeyIDPath conses an element's composite join key in ID space.
func joinKeyIDPath(ctx *idCtx, id intern.ID, paths []KeyPath) (intern.ID, bool) {
	if len(paths) == 1 {
		return pathID(ctx.in, id, paths[0])
	}
	parts := ctx.keyBuf[:0]
	for _, p := range paths {
		k, ok := pathID(ctx.in, id, p)
		if !ok {
			ctx.keyBuf = parts
			return 0, false
		}
		parts = append(parts, k)
	}
	ctx.keyBuf = parts
	return ctx.in.InternTuple(parts...), true
}
