package algebra

import (
	"errors"
	"fmt"

	"algrec/internal/obsv"
	"algrec/internal/value"
)

// Budget caps evaluation work. Because the paper's framework has functions
// on domains ("the fixed point operator may generate infinite sets"),
// fixpoint iteration can diverge; the budget turns divergence into a typed
// error.
type Budget struct {
	MaxIFPIters int // maximum iterations of any single IFP (0 = default)
	MaxSetSize  int // maximum cardinality of any intermediate set (0 = default)
	MaxDepth    int // maximum Call nesting depth (0 = default)
	// NoHashJoin disables the σ(×) hash equi-join fast path (see join.go);
	// used by the A3 ablation benchmark.
	NoHashJoin bool
	// NoSemiNaive disables the semi-naive delta fixpoint engine (see
	// delta.go): every IFP iterates naively, and internal/core falls back to
	// its unscheduled sequential evaluation of defining equations. Results
	// are identical either way; the A4 ablation benchmark measures the cost.
	// WithDefaults ORs in DefaultBudget.NoSemiNaive, so cmd/bench
	// -noseminaive can disable the engine process-wide.
	NoSemiNaive bool
	// NoStreaming disables the streaming execution runtime (see
	// streameval.go): σ/MAP pipelines over products are fully materialized
	// operator by operator instead of planned into lazy hash-join iterators.
	// Results are identical either way on error-free evaluations; only
	// budget boundaries differ (the materialized path also bounds
	// intermediate products). WithDefaults ORs in
	// DefaultBudget.NoStreaming, so cmd/bench -nostreaming can disable the
	// runtime process-wide; the P9 experiment measures the cost.
	NoStreaming bool
	// NoIDSets disables the ID-native semi-naive fixpoint engine (see
	// idfixpoint.go): delta rounds union/diff materialized value.Sets
	// instead of interned-ID sets. Results are identical either way on
	// error-free evaluations; only budget boundaries can differ, as with
	// NoStreaming. WithDefaults ORs in DefaultBudget.NoIDSets, so cmd/bench
	// -noidsets can disable the engine process-wide; the P10 experiment
	// measures the cost. The engine also requires value.InterningEnabled.
	NoIDSets bool
	// NoIVM disables incremental view maintenance (internal/ivm): every
	// ivm.View falls back to from-scratch re-evaluation on each mutation
	// batch instead of counting/DRed delta maintenance. Results are
	// identical either way — the maintained interpretation is pinned
	// bit-for-bit against recomputation by the dlog-ivm oracle. WithDefaults
	// ORs in DefaultBudget.NoIVM, so cmd/bench -noivm can disable
	// maintenance process-wide; the P11 experiment measures the cost. Like
	// NoIDSets, the incremental engine also requires value.InterningEnabled.
	NoIVM bool
	// Interrupt, when non-nil, is polled between fixpoint rounds (never
	// inside one): once the channel is closed, evaluation stops with an
	// error wrapping ErrCanceled. Callers with a context map ctx.Done()
	// here, which turns a deadline or client disconnect into a structured
	// outcome instead of a wedged evaluation. Round granularity bounds the
	// reaction time by the cost of one body evaluation.
	Interrupt <-chan struct{}
}

// DefaultBudget is used for zero-valued Budget fields.
var DefaultBudget = Budget{MaxIFPIters: 100_000, MaxSetSize: 5_000_000, MaxDepth: 1_000}

// WithDefaults returns b with every zero-valued cap replaced by the
// corresponding DefaultBudget value, and NoSemiNaive ORed with
// DefaultBudget.NoSemiNaive (the process-wide ablation switch).
func (b Budget) WithDefaults() Budget {
	if b.MaxIFPIters <= 0 {
		b.MaxIFPIters = DefaultBudget.MaxIFPIters
	}
	if b.MaxSetSize <= 0 {
		b.MaxSetSize = DefaultBudget.MaxSetSize
	}
	if b.MaxDepth <= 0 {
		b.MaxDepth = DefaultBudget.MaxDepth
	}
	b.NoSemiNaive = b.NoSemiNaive || DefaultBudget.NoSemiNaive
	b.NoStreaming = b.NoStreaming || DefaultBudget.NoStreaming
	b.NoIDSets = b.NoIDSets || DefaultBudget.NoIDSets
	b.NoIVM = b.NoIVM || DefaultBudget.NoIVM
	return b
}

// ErrBudget is wrapped by all budget-exhaustion errors from evaluation.
var ErrBudget = errors.New("algebra: evaluation budget exceeded")

// ErrCanceled is wrapped by errors reporting that evaluation stopped because
// Budget.Interrupt fired (a timeout or an explicit cancellation).
var ErrCanceled = errors.New("algebra: evaluation canceled")

// Stop returns a non-nil error wrapping ErrCanceled once Interrupt has
// fired, and nil otherwise (including when no Interrupt is set). Fixpoint
// loops call it once per round.
func (b Budget) Stop() error {
	if b.Interrupt == nil {
		return nil
	}
	select {
	case <-b.Interrupt:
		return fmt.Errorf("%w (interrupt fired during a fixpoint round)", ErrCanceled)
	default:
		return nil
	}
}

// DB is a database: named finite sets ("a collection of named sets (every
// set is a database 'relation')").
type DB map[string]value.Set

// Clone returns a shallow copy (sets are immutable, so shallow is deep).
func (db DB) Clone() DB {
	out := make(DB, len(db))
	for k, v := range db {
		out[k] = v
	}
	return out
}

// CallResolver resolves a Call node to a result set. It is an extension
// hook for embedding the evaluator with externally-defined operations;
// plain evaluation leaves it nil and rejects Call nodes. Note that algebra=
// programs do NOT go through this hook: internal/core expands definitions
// as macros and gives recursive constants their valid-model semantics.
type CallResolver func(name string, args []value.Set) (value.Set, error)

// Evaluator evaluates algebra expressions against a database.
type Evaluator struct {
	DB     DB
	Budget Budget
	Call   CallResolver

	depth int
	obs   obsv.Collector
}

// NewEvaluator returns an evaluator over db with the given budget. The
// process-default observability collector is captured at construction.
func NewEvaluator(db DB, budget Budget) *Evaluator {
	return &Evaluator{DB: db, Budget: budget.WithDefaults(), obs: obsv.Default()}
}

// SetCollector replaces the observability collector captured at
// construction; nil disables event reporting.
func (ev *Evaluator) SetCollector(c obsv.Collector) { ev.obs = c }

// Eval evaluates the expression to a finite set.
func (ev *Evaluator) Eval(e Expr) (value.Set, error) {
	return ev.eval(e, nil)
}

// eval evaluates under local bindings of IFP variables (nil-safe lookup
// chain kept as a simple map copied on IFP entry — IFP nesting is shallow in
// practice).
func (ev *Evaluator) eval(e Expr, local map[string]value.Set) (value.Set, error) {
	switch ee := e.(type) {
	case Rel:
		if s, ok := local[ee.Name]; ok {
			return s, nil
		}
		if s, ok := ev.DB[ee.Name]; ok {
			return s, nil
		}
		return value.Set{}, fmt.Errorf("algebra: unknown relation %q", ee.Name)
	case Lit:
		return ee.Set, nil
	case Union:
		l, err := ev.eval(ee.L, local)
		if err != nil {
			return value.Set{}, err
		}
		r, err := ev.eval(ee.R, local)
		if err != nil {
			return value.Set{}, err
		}
		return ev.checkSize(l.Union(r))
	case Diff:
		l, err := ev.eval(ee.L, local)
		if err != nil {
			return value.Set{}, err
		}
		r, err := ev.eval(ee.R, local)
		if err != nil {
			return value.Set{}, err
		}
		return l.Diff(r), nil
	case Product:
		l, err := ev.eval(ee.L, local)
		if err != nil {
			return value.Set{}, err
		}
		r, err := ev.eval(ee.R, local)
		if err != nil {
			return value.Set{}, err
		}
		// Division-based comparison: l.Len()*r.Len() can overflow int and
		// silently skip the guard.
		if l.Len() > 0 && r.Len() > ev.Budget.MaxSetSize/l.Len() {
			return value.Set{}, fmt.Errorf("%w: product of %d x %d elements exceeds MaxSetSize %d", ErrBudget, l.Len(), r.Len(), ev.Budget.MaxSetSize)
		}
		return l.Product(r), nil
	case Select:
		if !ev.Budget.NoStreaming && StreamEligible(e) {
			return StreamEval(e, ev.Budget, ev.obs, func(sub Expr) (value.Set, error) {
				return ev.eval(sub, local)
			})
		}
		if prod, isProd := ee.Of.(Product); isProd && !ev.Budget.NoHashJoin {
			if lks, rks, ok := EquiJoinKeys(ee.Var, ee.Test); ok {
				l, err := ev.eval(prod.L, local)
				if err != nil {
					return value.Set{}, err
				}
				r, err := ev.eval(prod.R, local)
				if err != nil {
					return value.Set{}, err
				}
				out, done, err := HashJoin(l, r, ee.Var, ee.Test, lks, rks, ev.Budget.MaxSetSize)
				if err != nil {
					return value.Set{}, err
				}
				if done {
					return out, nil
				}
				// a key path failed to apply: fall through to the naive
				// product so kind errors surface exactly as without the
				// fast path
			}
		}
		of, err := ev.eval(ee.Of, local)
		if err != nil {
			return value.Set{}, err
		}
		return of.Select(func(v value.Value) (bool, error) {
			return EvalTest(ee.Test, FEnv{ee.Var: v})
		})
	case Map:
		if !ev.Budget.NoStreaming && StreamEligible(e) {
			return StreamEval(e, ev.Budget, ev.obs, func(sub Expr) (value.Set, error) {
				return ev.eval(sub, local)
			})
		}
		of, err := ev.eval(ee.Of, local)
		if err != nil {
			return value.Set{}, err
		}
		return of.Map(func(v value.Value) (value.Value, error) {
			return EvalF(ee.Out, FEnv{ee.Var: v})
		})
	case IFP:
		useDelta := !ev.Budget.NoSemiNaive && DeltaDistributive(ee.Body, ee.Var)
		if useDelta && !ev.Budget.NoIDSets && value.InterningEnabled() {
			out, ok, err := RunIFPIDSets(ee.Var, ev.Budget, ev.obs, ee.Body, func(sub Expr) (value.Set, error) {
				return ev.eval(sub, local)
			})
			if ok {
				return out, err
			}
		}
		return RunIFP(ee.Var, local, ev.Budget, useDelta, ev.obs, func(inner map[string]value.Set) (value.Set, error) {
			return ev.eval(ee.Body, inner)
		})
	case Flip:
		// Identity on total databases; the annotation only matters to the
		// three-valued evaluator in internal/core.
		return ev.eval(ee.E, local)
	case Call:
		if ev.Call == nil {
			return value.Set{}, fmt.Errorf("algebra: call to %q but no definitions are in scope (use internal/core for algebra= programs)", ee.Name)
		}
		if ev.depth >= ev.Budget.MaxDepth {
			return value.Set{}, fmt.Errorf("%w: call nesting exceeded MaxDepth %d", ErrBudget, ev.Budget.MaxDepth)
		}
		args := make([]value.Set, len(ee.Args))
		for i, a := range ee.Args {
			s, err := ev.eval(a, local)
			if err != nil {
				return value.Set{}, err
			}
			args[i] = s
		}
		ev.depth++
		out, err := ev.Call(ee.Name, args)
		ev.depth--
		return out, err
	default:
		panic(fmt.Sprintf("algebra: unknown Expr %T", e))
	}
}

func (ev *Evaluator) checkSize(s value.Set) (value.Set, error) {
	if s.Len() > ev.Budget.MaxSetSize {
		return value.Set{}, fmt.Errorf("%w: intermediate set of %d elements exceeds MaxSetSize %d", ErrBudget, s.Len(), ev.Budget.MaxSetSize)
	}
	return s, nil
}

// Eval is a convenience wrapper: evaluate e against db with the default
// budget and no definitions in scope.
func Eval(e Expr, db DB) (value.Set, error) {
	return NewEvaluator(db, Budget{}).Eval(e)
}
