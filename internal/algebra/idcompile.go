package algebra

import (
	"errors"
	"fmt"

	"algrec/internal/obsv"
	"algrec/internal/value"
	"algrec/internal/value/idset"
	"algrec/internal/value/intern"
)

// idCompiler translates a delta-distributive IFP body into an idNode tree.
// Compilation is per fixpoint execution: variable-free subexpressions are
// evaluated through leaf (the host evaluator, closing over its environment
// and, in core, its polarity) and frozen. compile returns nil when the shape
// cannot be ID-compiled or a leaf evaluation failed; the caller then falls
// back to the value-space RunIFP, which reproduces the value path's exact
// result or error.
type idCompiler struct {
	in      *intern.Interner
	varName string
	leaf    LeafEval
}

func (c *idCompiler) constSet(e Expr) (idset.Set, bool) {
	s, err := c.leaf(e)
	if err != nil {
		return idset.Empty, false
	}
	return idset.FromValueSet(c.in, s), true
}

func (c *idCompiler) compile(e Expr) idNode {
	if !occursFree(e, c.varName) {
		s, ok := c.constSet(e)
		if !ok {
			return nil
		}
		return &idConst{set: s}
	}
	switch ee := e.(type) {
	case Rel:
		// occursFree and Rel imply ee.Name == varName.
		return idDelta{}
	case Union:
		l, r := c.compile(ee.L), c.compile(ee.R)
		if l == nil || r == nil {
			return nil
		}
		return &idUnion{parts: []idNode{l, r}}
	case Diff:
		if occursFree(ee.R, c.varName) {
			return nil // not delta-distributive; defensive
		}
		l := c.compile(ee.L)
		if l == nil {
			return nil
		}
		sub, ok := c.constSet(ee.R)
		if !ok {
			return nil
		}
		return &idDiff{l: l, sub: sub}
	case Product:
		l, r := c.compile(ee.L), c.compile(ee.R)
		if l == nil || r == nil {
			return nil
		}
		return &idProduct{l: l, r: r}
	case Select:
		if prod, isProd := ee.Of.(Product); isProd {
			// A join-shaped selection either compiles as an indexed ID join
			// or refuses outright: compiling it as σ over an interned full
			// product would cons every pair, a regression against the value
			// path's own hash join.
			return c.compileJoin(prod, ee.Var, ee.Test, nil, false)
		}
		of := c.compile(ee.Of)
		if of == nil {
			return nil
		}
		return &idSelect{of: of, v: ee.Var, test: ee.Test}
	case Map:
		if sel, isSel := ee.Of.(Select); isSel {
			if prod, isProd := sel.Of.(Product); isProd {
				outs, single, ok := projSpecs(ee.Out, ee.Var)
				if !ok {
					return nil
				}
				return c.compileJoin(prod, sel.Var, sel.Test, outs, single)
			}
		}
		of := c.compile(ee.Of)
		if of == nil {
			return nil
		}
		if path, ok := varPath(ee.Out, ee.Var); ok {
			return &idMapPath{of: of, path: path}
		}
		return &idMap{of: of, v: ee.Var, out: ee.Out}
	default:
		// Flip would detach nested constants from the host's polarity; IFP
		// and Call with the variable free are not delta-distributive. All
		// are variable-free here or not compiled.
		return nil
	}
}

// compileJoin builds an idJoin for σ_test(L × R) when the test is exactly a
// conjunction of side-to-side equality paths and exactly one product side is
// variable-free. outs/single carry a fused MAP projection (nil: emit pairs).
func (c *idCompiler) compileJoin(prod Product, v string, test FExpr, outs []projSpec, single bool) idNode {
	lks, rks, ok := allEquiKeys(v, test)
	if !ok {
		return nil
	}
	lFree, rFree := !occursFree(prod.L, c.varName), !occursFree(prod.R, c.varName)
	var probe idNode
	var constExpr Expr
	var probeKeys, constKeys []KeyPath
	var probeLeft bool
	switch {
	case rFree && !lFree:
		probe, probeLeft = c.compile(prod.L), true
		probeKeys, constKeys = lks, rks
		constExpr = prod.R
	case lFree && !rFree:
		probe, probeLeft = c.compile(prod.R), false
		probeKeys, constKeys = rks, lks
		constExpr = prod.L
	default:
		return nil
	}
	if probe == nil {
		return nil
	}
	side, ok := c.constSet(constExpr)
	if !ok {
		return nil
	}
	index := make(map[intern.ID][]intern.ID, side.Len())
	buildCtx := &idCtx{in: c.in}
	for i := 0; i < side.Len(); i++ {
		id := side.At(i)
		key, ok := joinKeyIDPath(buildCtx, id, constKeys)
		if !ok {
			return nil // a key path does not apply: the value path decides
		}
		index[key] = append(index[key], id)
	}
	return &idJoin{
		probe: probe, probeLeft: probeLeft, index: index,
		probeKeys: probeKeys, outs: outs, outSingle: single,
	}
}

// allEquiKeys is the strict variant of EquiJoinKeys: it succeeds only when
// EVERY conjunct of the test is a side1-path = side2-path equality. Such a
// test is completely decided by join-key equality and, where the key paths
// apply, cannot error (Compare is total), so the ID join needs no re-check.
func allEquiKeys(v string, test FExpr) (lks, rks []KeyPath, ok bool) {
	var atoms []FExpr
	var conjuncts func(e FExpr)
	conjuncts = func(e FExpr) {
		if and, isAnd := e.(FAnd); isAnd {
			conjuncts(and.L)
			conjuncts(and.R)
			return
		}
		atoms = append(atoms, e)
	}
	conjuncts(test)
	for _, a := range atoms {
		cmp, isCmp := a.(FCmp)
		if !isCmp || cmp.Op != OpEq {
			return nil, nil, false
		}
		ls, lp, lok := sidePath(cmp.L, v)
		rs, rp, rok := sidePath(cmp.R, v)
		if !lok || !rok {
			return nil, nil, false
		}
		switch {
		case ls == 1 && rs == 2:
			lks = append(lks, lp)
			rks = append(rks, rp)
		case ls == 2 && rs == 1:
			lks = append(lks, rp)
			rks = append(rks, lp)
		default:
			return nil, nil, false
		}
	}
	return lks, rks, len(lks) > 0
}

// projSpecs decomposes a MAP body over join pairs into per-side projection
// paths: a tuple of paths, or (single=true) one bare path.
func projSpecs(out FExpr, v string) (specs []projSpec, single, ok bool) {
	if tup, isTup := out.(FTuple); isTup {
		for _, el := range tup.Elems {
			side, path, ok := sidePath(el, v)
			if !ok {
				return nil, false, false
			}
			specs = append(specs, projSpec{left: side == 1, path: path})
		}
		return specs, false, len(specs) > 0
	}
	side, path, pok := sidePath(out, v)
	if !pok {
		return nil, false, false
	}
	return []projSpec{{left: side == 1, path: path}}, true, true
}

// varPath decomposes a MAP body that is a pure projection chain on the
// element variable: v.i1.i2... (or v itself, the identity path).
func varPath(e FExpr, v string) (KeyPath, bool) {
	var rev []int
	for {
		switch ee := e.(type) {
		case FField:
			rev = append(rev, ee.Idx)
			e = ee.Of
		case FVar:
			if ee.Name != v {
				return nil, false
			}
			path := make(KeyPath, 0, len(rev))
			for i := len(rev) - 1; i >= 0; i-- {
				path = append(path, rev[i])
			}
			return path, true
		default:
			return nil, false
		}
	}
}

// RunIFPIDSets attempts the ID-native semi-naive fixpoint of body over
// varName. It returns ok=false — with no error and no observable effect
// beyond compile-time leaf evaluations — when the body does not ID-compile
// or the engine aborted to preserve equivalence; the caller then runs the
// value-space RunIFP. When ok is true the result (or the round-aligned
// budget/interrupt error) is exactly what RunIFP would produce. The caller
// has already checked DeltaDistributive, Budget.NoIDSets and
// value.InterningEnabled.
func RunIFPIDSets(varName string, budget Budget, obs obsv.Collector, body Expr, leaf LeafEval) (value.Set, bool, error) {
	in := intern.Global()
	c := &idCompiler{in: in, varName: varName, leaf: leaf}
	root := c.compile(body)
	if root == nil {
		return value.Set{}, false, nil
	}
	sc := &idset.Scratch{}
	ctx := &idCtx{in: in, sc: sc, max: budget.MaxSetSize, env: make(FEnv, 1)}
	acc, delta := idset.Empty, idset.Empty
	var deltas []int
	for iter := 0; ; iter++ {
		if iter >= budget.MaxIFPIters {
			return value.Set{}, true, fmt.Errorf("%w: IFP did not converge within %d iterations (the fixed point may be an infinite set)", ErrBudget, budget.MaxIFPIters)
		}
		if err := budget.Stop(); err != nil {
			return value.Set{}, true, err
		}
		ctx.delta, ctx.round = delta, iter
		out, owned, err := root.eval(ctx)
		if err != nil {
			if errors.Is(err, errIDAbort) {
				return value.Set{}, false, nil
			}
			return value.Set{}, true, err
		}
		next := sc.Union(acc, out)
		if next.Len() > budget.MaxSetSize {
			return value.Set{}, true, fmt.Errorf("%w: intermediate set of %d elements exceeds MaxSetSize %d", ErrBudget, next.Len(), budget.MaxSetSize)
		}
		grown := next.Len() - acc.Len()
		if obs != nil {
			deltas = append(deltas, grown)
		}
		if grown == 0 {
			result := next.Materialize(in)
			if obs != nil {
				obs.IFP(obsv.IFPStats{Mode: "idsets", Rounds: iter + 1, Result: next.Len(), Deltas: deltas})
			}
			return result, true, nil
		}
		// out − acc MUST be computed before acc's buffer is recycled; the old
		// delta dies here (out may alias it, in which case owned is false and
		// the single release below covers both names).
		newDelta := sc.Diff(out, acc)
		sc.Release(acc)
		sc.Release(delta)
		if owned {
			sc.Release(out)
		}
		acc, delta = next, newDelta
	}
}
