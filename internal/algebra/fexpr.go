// Package algebra implements the paper's algebra and IFP-algebra (Section
// 3.1): generic set operators ∪, −, ×, σ_test, MAP_f and the inflationary
// fixed point IFP_exp, over the complex-object value universe of
// internal/value.
//
// Two expression languages live here. FExpr is the first-order language of
// element-level functions and tests that parameterizes σ and MAP — the
// concrete counterpart of the paper's "a special specification must be
// provided for every specific function". Expr is the language of set-valued
// algebra expressions.
//
// The package evaluates non-recursive expressions (plus IFP) against a
// database of named finite sets. Recursive *definitions* — the algebra= of
// Section 3.2, the paper's contribution — live in internal/core, which gives
// them their valid-model semantics; algebra only supplies the operator
// evaluation core and the syntactic analyses (free relation names, positive
// occurrence) the rest of the system needs.
package algebra

import (
	"fmt"
	"strconv"
	"strings"

	"algrec/internal/value"
)

// CmpOp is a comparison operator in tests.
type CmpOp uint8

// The comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the concrete syntax of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// ArithOp is an arithmetic operator on integers.
type ArithOp uint8

// The arithmetic operators.
const (
	OpPlus ArithOp = iota
	OpMinus
	OpTimes
	OpMod
)

// String returns the concrete syntax of the operator.
func (op ArithOp) String() string {
	switch op {
	case OpPlus:
		return "+"
	case OpMinus:
		return "-"
	case OpTimes:
		return "*"
	case OpMod:
		return "%"
	default:
		return fmt.Sprintf("ArithOp(%d)", uint8(op))
	}
}

// FExpr is an element-level expression: the body of a selection test or a
// MAP restructuring function. It is evaluated against an environment binding
// element variables to values. FExpr is a sealed interface.
type FExpr interface {
	String() string
	isFExpr()
}

// FVar references a bound element variable (the σ/MAP element, or a tuple
// component brought into scope by the evaluator).
type FVar struct{ Name string }

// FConst is a constant value.
type FConst struct{ V value.Value }

// FField projects the Idx-th component (1-based) of a tuple-valued
// subexpression; the paper writes this x.i.
type FField struct {
	Of  FExpr
	Idx int
}

// FTuple builds a tuple from component expressions.
type FTuple struct{ Elems []FExpr }

// FCmp compares two subexpressions under the total order on values.
type FCmp struct {
	Op   CmpOp
	L, R FExpr
}

// FArith applies integer arithmetic.
type FArith struct {
	Op   ArithOp
	L, R FExpr
}

// FAnd is boolean conjunction.
type FAnd struct{ L, R FExpr }

// FOr is boolean disjunction.
type FOr struct{ L, R FExpr }

// FNot is boolean negation. Note this negates a *test over elements*; it is
// unrelated to the negation-as-subtraction the paper's semantics is about.
type FNot struct{ E FExpr }

// FMem tests membership of an element in a set value (the paper's MEM as a
// boolean-valued function on finite set values).
type FMem struct{ Elem, Set FExpr }

func (FVar) isFExpr()   {}
func (FConst) isFExpr() {}
func (FField) isFExpr() {}
func (FTuple) isFExpr() {}
func (FCmp) isFExpr()   {}
func (FArith) isFExpr() {}
func (FAnd) isFExpr()   {}
func (FOr) isFExpr()    {}
func (FNot) isFExpr()   {}
func (FMem) isFExpr()   {}

// String implements FExpr.
func (e FVar) String() string { return e.Name }

// String implements FExpr.
func (e FConst) String() string { return e.V.String() }

// String implements FExpr.
func (e FField) String() string { return maybeParen(e.Of) + "." + strconv.Itoa(e.Idx) }

// String implements FExpr. A 1-tuple prints with a trailing comma, "(e,)",
// to stay distinguishable from parenthesized grouping when re-parsed.
func (e FTuple) String() string {
	parts := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		parts[i] = el.String()
	}
	if len(parts) == 1 {
		return "(" + parts[0] + ",)"
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// String implements FExpr.
func (e FCmp) String() string {
	return maybeParen(e.L) + " " + e.Op.String() + " " + maybeParen(e.R)
}

// String implements FExpr.
func (e FArith) String() string {
	return maybeParen(e.L) + " " + e.Op.String() + " " + maybeParen(e.R)
}

// String implements FExpr.
func (e FAnd) String() string { return maybeParen(e.L) + " and " + maybeParen(e.R) }

// String implements FExpr.
func (e FOr) String() string { return maybeParen(e.L) + " or " + maybeParen(e.R) }

// String implements FExpr.
func (e FNot) String() string { return "not " + maybeParen(e.E) }

// String implements FExpr.
func (e FMem) String() string { return maybeParen(e.Elem) + " in " + maybeParen(e.Set) }

func maybeParen(e FExpr) string {
	switch e.(type) {
	case FVar, FConst, FField, FTuple:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// FEnv binds element variables during FExpr evaluation.
type FEnv map[string]value.Value

// EvalF evaluates an element-level expression. Kind errors (projecting a
// non-tuple, arithmetic on non-integers, boolean operators on non-booleans)
// are reported as errors, never panics: the languages here are dynamically
// kinded, mirroring the paper's untyped presentation.
func EvalF(e FExpr, env FEnv) (value.Value, error) {
	switch ee := e.(type) {
	case FVar:
		v, ok := env[ee.Name]
		if !ok {
			return nil, fmt.Errorf("algebra: unbound element variable %q", ee.Name)
		}
		return v, nil
	case FConst:
		return ee.V, nil
	case FField:
		v, err := EvalF(ee.Of, env)
		if err != nil {
			return nil, err
		}
		t, ok := v.(value.Tuple)
		if !ok {
			return nil, fmt.Errorf("algebra: projection .%d applied to non-tuple %v", ee.Idx, v)
		}
		if ee.Idx < 1 || ee.Idx > t.Len() {
			return nil, fmt.Errorf("algebra: projection .%d out of range for %v", ee.Idx, t)
		}
		return t.At(ee.Idx - 1), nil
	case FTuple:
		elems := make([]value.Value, len(ee.Elems))
		for i, el := range ee.Elems {
			v, err := EvalF(el, env)
			if err != nil {
				return nil, err
			}
			elems[i] = v
		}
		return value.NewTuple(elems...), nil
	case FCmp:
		l, err := EvalF(ee.L, env)
		if err != nil {
			return nil, err
		}
		r, err := EvalF(ee.R, env)
		if err != nil {
			return nil, err
		}
		c := l.Compare(r)
		var out bool
		switch ee.Op {
		case OpEq:
			out = c == 0
		case OpNe:
			out = c != 0
		case OpLt:
			out = c < 0
		case OpLe:
			out = c <= 0
		case OpGt:
			out = c > 0
		case OpGe:
			out = c >= 0
		default:
			return nil, fmt.Errorf("algebra: unknown comparison %v", ee.Op)
		}
		return value.Bool(out), nil
	case FArith:
		l, err := evalInt(ee.L, env)
		if err != nil {
			return nil, err
		}
		r, err := evalInt(ee.R, env)
		if err != nil {
			return nil, err
		}
		switch ee.Op {
		case OpPlus:
			return value.Int(l + r), nil
		case OpMinus:
			return value.Int(l - r), nil
		case OpTimes:
			return value.Int(l * r), nil
		case OpMod:
			if r == 0 {
				return nil, fmt.Errorf("algebra: mod by zero")
			}
			return value.Int(l % r), nil
		default:
			return nil, fmt.Errorf("algebra: unknown arithmetic operator %v", ee.Op)
		}
	case FAnd:
		l, err := evalBool(ee.L, env)
		if err != nil {
			return nil, err
		}
		if !l {
			return value.False, nil
		}
		r, err := evalBool(ee.R, env)
		if err != nil {
			return nil, err
		}
		return value.Bool(r), nil
	case FOr:
		l, err := evalBool(ee.L, env)
		if err != nil {
			return nil, err
		}
		if l {
			return value.True, nil
		}
		r, err := evalBool(ee.R, env)
		if err != nil {
			return nil, err
		}
		return value.Bool(r), nil
	case FNot:
		b, err := evalBool(ee.E, env)
		if err != nil {
			return nil, err
		}
		return value.Bool(!b), nil
	case FMem:
		el, err := EvalF(ee.Elem, env)
		if err != nil {
			return nil, err
		}
		sv, err := EvalF(ee.Set, env)
		if err != nil {
			return nil, err
		}
		s, ok := sv.(value.Set)
		if !ok {
			return nil, fmt.Errorf("algebra: membership test against non-set %v", sv)
		}
		return value.Bool(s.Has(el)), nil
	default:
		panic(fmt.Sprintf("algebra: unknown FExpr %T", e))
	}
}

func evalInt(e FExpr, env FEnv) (int64, error) {
	v, err := EvalF(e, env)
	if err != nil {
		return 0, err
	}
	i, ok := v.(value.Int)
	if !ok {
		return 0, fmt.Errorf("algebra: expected an integer, got %v", v)
	}
	return int64(i), nil
}

func evalBool(e FExpr, env FEnv) (bool, error) {
	v, err := EvalF(e, env)
	if err != nil {
		return false, err
	}
	b, ok := v.(value.Bool)
	if !ok {
		return false, fmt.Errorf("algebra: expected a boolean, got %v", v)
	}
	return bool(b), nil
}

// EvalTest evaluates a selection test to a boolean.
func EvalTest(e FExpr, env FEnv) (bool, error) { return evalBool(e, env) }

// FVarsOf returns the free element variables of e.
func FVarsOf(e FExpr) map[string]bool {
	out := map[string]bool{}
	var walk func(FExpr)
	walk = func(e FExpr) {
		switch ee := e.(type) {
		case FVar:
			out[ee.Name] = true
		case FConst:
		case FField:
			walk(ee.Of)
		case FTuple:
			for _, el := range ee.Elems {
				walk(el)
			}
		case FCmp:
			walk(ee.L)
			walk(ee.R)
		case FArith:
			walk(ee.L)
			walk(ee.R)
		case FAnd:
			walk(ee.L)
			walk(ee.R)
		case FOr:
			walk(ee.L)
			walk(ee.R)
		case FNot:
			walk(ee.E)
		case FMem:
			walk(ee.Elem)
			walk(ee.Set)
		default:
			panic(fmt.Sprintf("algebra: unknown FExpr %T", e))
		}
	}
	walk(e)
	return out
}
