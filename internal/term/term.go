// Package term implements many-sorted first-order terms over a signature —
// the raw material of algebraic specifications (the paper's Section 2.1).
// A signature declares sort names and operation symbols with arities in
// S* → S; terms are variables or operation applications; the ground terms
// over a signature form its Herbrand universe, whose quotient modulo the
// equations' invariance relation is the initial algebra.
package term

import (
	"fmt"
	"sort"
	"strings"
)

// OpDecl declares an operation symbol: argument sorts and result sort.
type OpDecl struct {
	Name   string
	Args   []string
	Result string
}

// Arity returns the number of arguments.
func (d OpDecl) Arity() int { return len(d.Args) }

// String renders the declaration as "NAME: s1, s2 -> s".
func (d OpDecl) String() string {
	if len(d.Args) == 0 {
		return d.Name + ": -> " + d.Result
	}
	return d.Name + ": " + strings.Join(d.Args, ", ") + " -> " + d.Result
}

// Signature is a set of sort names and operation declarations.
type Signature struct {
	sorts map[string]bool
	ops   map[string]OpDecl
}

// NewSignature returns an empty signature.
func NewSignature() *Signature {
	return &Signature{sorts: map[string]bool{}, ops: map[string]OpDecl{}}
}

// AddSort declares a sort name; redeclaration is a no-op.
func (sig *Signature) AddSort(name string) { sig.sorts[name] = true }

// HasSort reports whether the sort is declared.
func (sig *Signature) HasSort(name string) bool { return sig.sorts[name] }

// Sorts returns the declared sort names, sorted.
func (sig *Signature) Sorts() []string {
	out := make([]string, 0, len(sig.sorts))
	for s := range sig.sorts {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// AddOp declares an operation symbol. It returns an error for duplicate
// names or undeclared sorts.
func (sig *Signature) AddOp(name string, args []string, result string) error {
	if _, ok := sig.ops[name]; ok {
		return fmt.Errorf("term: operation %q already declared", name)
	}
	for _, a := range args {
		if !sig.sorts[a] {
			return fmt.Errorf("term: operation %q uses undeclared sort %q", name, a)
		}
	}
	if !sig.sorts[result] {
		return fmt.Errorf("term: operation %q has undeclared result sort %q", name, result)
	}
	sig.ops[name] = OpDecl{Name: name, Args: append([]string(nil), args...), Result: result}
	return nil
}

// Op returns the declaration of the named operation.
func (sig *Signature) Op(name string) (OpDecl, bool) {
	d, ok := sig.ops[name]
	return d, ok
}

// Ops returns all operation declarations, sorted by name.
func (sig *Signature) Ops() []OpDecl {
	out := make([]OpDecl, 0, len(sig.ops))
	for _, d := range sig.ops {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Constants returns the 0-ary operations of the given sort, sorted by name;
// with sort "" it returns all constants.
func (sig *Signature) Constants(ofSort string) []OpDecl {
	var out []OpDecl
	for _, d := range sig.Ops() {
		if d.Arity() == 0 && (ofSort == "" || d.Result == ofSort) {
			out = append(out, d)
		}
	}
	return out
}

// Extend returns a copy of the signature including everything from other;
// conflicting operation declarations cause an error (the paper's
// specification import "nat + bool + ...").
func (sig *Signature) Extend(other *Signature) (*Signature, error) {
	out := NewSignature()
	for s := range sig.sorts {
		out.AddSort(s)
	}
	for s := range other.sorts {
		out.AddSort(s)
	}
	for _, d := range sig.Ops() {
		out.ops[d.Name] = d
	}
	for _, d := range other.Ops() {
		if prev, ok := out.ops[d.Name]; ok {
			if prev.String() != d.String() {
				return nil, fmt.Errorf("term: conflicting declarations of %q: %s vs %s", d.Name, prev, d)
			}
			continue
		}
		out.ops[d.Name] = d
	}
	return out, nil
}

// Term is a many-sorted term: a variable or an operation application. It is
// a sealed interface.
type Term interface {
	String() string
	isTerm()
}

// Var is a term variable with an explicit sort.
type Var struct {
	Name string
	Sort string
}

// App is an application of an operation symbol to argument terms. Constants
// are 0-ary applications.
type App struct {
	Op   string
	Args []Term
}

func (Var) isTerm() {}
func (App) isTerm() {}

// String implements Term.
func (v Var) String() string { return v.Name }

// String implements Term.
func (a App) String() string {
	if len(a.Args) == 0 {
		return a.Op
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Op + "(" + strings.Join(parts, ", ") + ")"
}

// Const returns the 0-ary application of op.
func Const(op string) App { return App{Op: op} }

// Mk returns the application of op to the arguments.
func Mk(op string, args ...Term) App { return App{Op: op, Args: args} }

// Equal reports structural equality of terms.
func Equal(a, b Term) bool {
	switch at := a.(type) {
	case Var:
		bt, ok := b.(Var)
		return ok && at.Name == bt.Name && at.Sort == bt.Sort
	case App:
		bt, ok := b.(App)
		if !ok || at.Op != bt.Op || len(at.Args) != len(bt.Args) {
			return false
		}
		for i := range at.Args {
			if !Equal(at.Args[i], bt.Args[i]) {
				return false
			}
		}
		return true
	default:
		panic(fmt.Sprintf("term: unknown term %T", a))
	}
}

// Compare orders terms: variables before applications, then by name/op and
// recursively by arguments. The order is arbitrary but total on ground
// terms; the rewriter uses it for ordered rewriting of permutative equations
// (INS commutativity).
func Compare(a, b Term) int {
	av, aIsVar := a.(Var)
	bv, bIsVar := b.(Var)
	switch {
	case aIsVar && bIsVar:
		if c := strings.Compare(av.Name, bv.Name); c != 0 {
			return c
		}
		return strings.Compare(av.Sort, bv.Sort)
	case aIsVar:
		return -1
	case bIsVar:
		return 1
	}
	aa, ba := a.(App), b.(App)
	if c := strings.Compare(aa.Op, ba.Op); c != 0 {
		return c
	}
	n := len(aa.Args)
	if len(ba.Args) < n {
		n = len(ba.Args)
	}
	for i := 0; i < n; i++ {
		if c := Compare(aa.Args[i], ba.Args[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(aa.Args) < len(ba.Args):
		return -1
	case len(aa.Args) > len(ba.Args):
		return 1
	default:
		return 0
	}
}

// IsGround reports whether the term contains no variables.
func IsGround(t Term) bool {
	switch tt := t.(type) {
	case Var:
		return false
	case App:
		for _, a := range tt.Args {
			if !IsGround(a) {
				return false
			}
		}
		return true
	default:
		panic(fmt.Sprintf("term: unknown term %T", t))
	}
}

// Vars returns the variables of t keyed by name.
func Vars(t Term) map[string]Var {
	out := map[string]Var{}
	var walk func(Term)
	walk = func(t Term) {
		switch tt := t.(type) {
		case Var:
			out[tt.Name] = tt
		case App:
			for _, a := range tt.Args {
				walk(a)
			}
		}
	}
	walk(t)
	return out
}

// Size returns the number of nodes in the term.
func Size(t Term) int {
	switch tt := t.(type) {
	case Var:
		return 1
	case App:
		n := 1
		for _, a := range tt.Args {
			n += Size(a)
		}
		return n
	default:
		panic(fmt.Sprintf("term: unknown term %T", t))
	}
}

// SortOf infers the sort of a term under the signature, checking
// well-sortedness along the way.
func SortOf(t Term, sig *Signature) (string, error) {
	switch tt := t.(type) {
	case Var:
		if !sig.HasSort(tt.Sort) {
			return "", fmt.Errorf("term: variable %s has undeclared sort %q", tt.Name, tt.Sort)
		}
		return tt.Sort, nil
	case App:
		d, ok := sig.Op(tt.Op)
		if !ok {
			return "", fmt.Errorf("term: undeclared operation %q", tt.Op)
		}
		if len(tt.Args) != d.Arity() {
			return "", fmt.Errorf("term: %q expects %d arguments, got %d", tt.Op, d.Arity(), len(tt.Args))
		}
		for i, a := range tt.Args {
			s, err := SortOf(a, sig)
			if err != nil {
				return "", err
			}
			if s != d.Args[i] {
				return "", fmt.Errorf("term: argument %d of %q has sort %s, want %s", i+1, tt.Op, s, d.Args[i])
			}
		}
		return d.Result, nil
	default:
		panic(fmt.Sprintf("term: unknown term %T", t))
	}
}

// Subst maps variable names to terms.
type Subst map[string]Term

// Apply replaces variables in t by their images under s.
func (s Subst) Apply(t Term) Term {
	switch tt := t.(type) {
	case Var:
		if r, ok := s[tt.Name]; ok {
			return r
		}
		return tt
	case App:
		args := make([]Term, len(tt.Args))
		for i, a := range tt.Args {
			args[i] = s.Apply(a)
		}
		return App{Op: tt.Op, Args: args}
	default:
		panic(fmt.Sprintf("term: unknown term %T", t))
	}
}

// Match finds a substitution s with s(pattern) == t, treating variables in
// the pattern as match variables; t is typically ground. It reports whether
// the match succeeded.
func Match(pattern, t Term) (Subst, bool) {
	s := Subst{}
	if matchInto(pattern, t, s) {
		return s, true
	}
	return nil, false
}

func matchInto(pattern, t Term, s Subst) bool {
	switch p := pattern.(type) {
	case Var:
		if prev, ok := s[p.Name]; ok {
			return Equal(prev, t)
		}
		s[p.Name] = t
		return true
	case App:
		ta, ok := t.(App)
		if !ok || ta.Op != p.Op || len(ta.Args) != len(p.Args) {
			return false
		}
		for i := range p.Args {
			if !matchInto(p.Args[i], ta.Args[i], s) {
				return false
			}
		}
		return true
	default:
		panic(fmt.Sprintf("term: unknown term %T", pattern))
	}
}

// Unify computes a most general unifier of a and b, if one exists. The
// returned substitution is fully resolved (idempotent): applying it once
// yields the unified instance.
func Unify(a, b Term) (Subst, bool) {
	s := Subst{}
	if !unifyInto(a, b, s) {
		return nil, false
	}
	out := make(Subst, len(s))
	for k := range s {
		out[k] = resolve(s[k], s)
	}
	return out, true
}

// resolve applies the triangular substitution s exhaustively; the occurs
// check in unifyInto guarantees termination.
func resolve(t Term, s Subst) Term {
	switch tt := walk(t, s).(type) {
	case Var:
		return tt
	case App:
		args := make([]Term, len(tt.Args))
		for i, a := range tt.Args {
			args[i] = resolve(a, s)
		}
		return App{Op: tt.Op, Args: args}
	default:
		panic(fmt.Sprintf("term: unknown term %T", t))
	}
}

func unifyInto(a, b Term, s Subst) bool {
	a = walk(a, s)
	b = walk(b, s)
	if av, ok := a.(Var); ok {
		if bv, ok := b.(Var); ok && av.Name == bv.Name {
			return true
		}
		if occurs(av.Name, b, s) {
			return false
		}
		s[av.Name] = b
		return true
	}
	if _, ok := b.(Var); ok {
		return unifyInto(b, a, s)
	}
	aa, ba := a.(App), b.(App)
	if aa.Op != ba.Op || len(aa.Args) != len(ba.Args) {
		return false
	}
	for i := range aa.Args {
		if !unifyInto(aa.Args[i], ba.Args[i], s) {
			return false
		}
	}
	return true
}

func walk(t Term, s Subst) Term {
	for {
		v, ok := t.(Var)
		if !ok {
			return t
		}
		r, ok := s[v.Name]
		if !ok {
			return t
		}
		t = r
	}
}

func occurs(name string, t Term, s Subst) bool {
	switch tt := walk(t, s).(type) {
	case Var:
		return tt.Name == name
	case App:
		for _, a := range tt.Args {
			if occurs(name, a, s) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("term: unknown term %T", t))
	}
}
