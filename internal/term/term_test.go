package term

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sigNat(t *testing.T) *Signature {
	t.Helper()
	sig := NewSignature()
	sig.AddSort("nat")
	sig.AddSort("bool")
	for _, d := range []struct {
		name   string
		args   []string
		result string
	}{
		{"ZERO", nil, "nat"},
		{"SUCC", []string{"nat"}, "nat"},
		{"PLUS", []string{"nat", "nat"}, "nat"},
		{"EQ", []string{"nat", "nat"}, "bool"},
		{"TRUE", nil, "bool"},
	} {
		if err := sig.AddOp(d.name, d.args, d.result); err != nil {
			t.Fatal(err)
		}
	}
	return sig
}

func nat(n int) Term {
	t := Term(Const("ZERO"))
	for i := 0; i < n; i++ {
		t = Mk("SUCC", t)
	}
	return t
}

func TestSignature(t *testing.T) {
	sig := sigNat(t)
	if got := strings.Join(sig.Sorts(), ","); got != "bool,nat" {
		t.Errorf("Sorts = %s", got)
	}
	if d, ok := sig.Op("PLUS"); !ok || d.Arity() != 2 || d.Result != "nat" {
		t.Errorf("Op(PLUS) = %v, %v", d, ok)
	}
	if d, _ := sig.Op("PLUS"); d.String() != "PLUS: nat, nat -> nat" {
		t.Errorf("OpDecl.String = %q", d.String())
	}
	if d, _ := sig.Op("ZERO"); d.String() != "ZERO: -> nat" {
		t.Errorf("constant OpDecl.String = %q", d.String())
	}
	consts := sig.Constants("nat")
	if len(consts) != 1 || consts[0].Name != "ZERO" {
		t.Errorf("Constants(nat) = %v", consts)
	}
	if len(sig.Constants("")) != 2 {
		t.Errorf("Constants() = %v", sig.Constants(""))
	}
	// error cases
	if err := sig.AddOp("PLUS", nil, "nat"); err == nil {
		t.Error("duplicate op accepted")
	}
	if err := sig.AddOp("BAD", []string{"nosort"}, "nat"); err == nil {
		t.Error("undeclared arg sort accepted")
	}
	if err := sig.AddOp("BAD", nil, "nosort"); err == nil {
		t.Error("undeclared result sort accepted")
	}
}

func TestSignatureExtend(t *testing.T) {
	a := NewSignature()
	a.AddSort("s")
	if err := a.AddOp("c", nil, "s"); err != nil {
		t.Fatal(err)
	}
	b := NewSignature()
	b.AddSort("s")
	b.AddSort("t")
	if err := b.AddOp("d", nil, "t"); err != nil {
		t.Fatal(err)
	}
	m, err := a.Extend(b)
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasSort("t") {
		t.Error("merged signature missing sort t")
	}
	if _, ok := m.Op("c"); !ok {
		t.Error("merged signature missing op c")
	}
	// conflicting redeclaration
	c := NewSignature()
	c.AddSort("s")
	c.AddSort("t")
	if err := c.AddOp("c", nil, "t"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Extend(c); err == nil {
		t.Error("conflicting op declarations accepted")
	}
}

func TestSortOf(t *testing.T) {
	sig := sigNat(t)
	cases := []struct {
		t    Term
		want string
	}{
		{nat(3), "nat"},
		{Mk("PLUS", nat(1), nat(2)), "nat"},
		{Mk("EQ", nat(1), nat(2)), "bool"},
		{Var{Name: "x", Sort: "nat"}, "nat"},
	}
	for _, c := range cases {
		got, err := SortOf(c.t, sig)
		if err != nil {
			t.Errorf("SortOf(%s): %v", c.t, err)
			continue
		}
		if got != c.want {
			t.Errorf("SortOf(%s) = %s, want %s", c.t, got, c.want)
		}
	}
	bad := []Term{
		Mk("PLUS", nat(1)),                           // wrong arity
		Mk("PLUS", nat(1), Mk("EQ", nat(1), nat(1))), // wrong arg sort
		Mk("NOSUCH"),                                 // undeclared op
		Var{Name: "x", Sort: "nosort"},               // undeclared sort
		Mk("SUCC", Var{Name: "b", Sort: "bool"}),     // wrong var sort
	}
	for _, b := range bad {
		if _, err := SortOf(b, sig); err == nil {
			t.Errorf("SortOf(%s): expected error", b)
		}
	}
}

func TestTermBasics(t *testing.T) {
	x := Var{Name: "x", Sort: "nat"}
	tm := Mk("PLUS", x, nat(2))
	if tm.String() != "PLUS(x, SUCC(SUCC(ZERO)))" {
		t.Errorf("String = %q", tm.String())
	}
	if IsGround(tm) || !IsGround(nat(2)) {
		t.Error("IsGround wrong")
	}
	if Size(nat(3)) != 4 {
		t.Errorf("Size = %d", Size(nat(3)))
	}
	vs := Vars(tm)
	if len(vs) != 1 || vs["x"].Sort != "nat" {
		t.Errorf("Vars = %v", vs)
	}
	if !Equal(tm, Mk("PLUS", x, nat(2))) || Equal(tm, Mk("PLUS", x, nat(3))) {
		t.Error("Equal wrong")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	mk := func(seed int64) Term {
		r := rand.New(rand.NewSource(seed))
		var gen func(depth int) Term
		gen = func(depth int) Term {
			if depth == 0 || r.Intn(3) == 0 {
				if r.Intn(4) == 0 {
					return Var{Name: string(rune('x' + r.Intn(3))), Sort: "nat"}
				}
				return Const("ZERO")
			}
			ops := []string{"SUCC", "PLUS"}
			op := ops[r.Intn(len(ops))]
			if op == "SUCC" {
				return Mk(op, gen(depth-1))
			}
			return Mk(op, gen(depth-1), gen(depth-1))
		}
		return gen(3)
	}
	prop := func(s1, s2 int64) bool {
		a, b := mk(s1), mk(s2)
		if Compare(a, a) != 0 || Compare(b, b) != 0 {
			return false
		}
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		return (Compare(a, b) == 0) == Equal(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSubstApply(t *testing.T) {
	x := Var{Name: "x", Sort: "nat"}
	y := Var{Name: "y", Sort: "nat"}
	s := Subst{"x": nat(1)}
	got := s.Apply(Mk("PLUS", x, y))
	want := Mk("PLUS", nat(1), y)
	if !Equal(got, want) {
		t.Errorf("Apply = %s, want %s", got, want)
	}
}

func TestMatch(t *testing.T) {
	x := Var{Name: "x", Sort: "nat"}
	y := Var{Name: "y", Sort: "nat"}
	pat := Mk("PLUS", x, y)
	s, ok := Match(pat, Mk("PLUS", nat(1), nat(2)))
	if !ok || !Equal(s["x"], nat(1)) || !Equal(s["y"], nat(2)) {
		t.Errorf("Match = %v, %v", s, ok)
	}
	// nonlinear pattern
	pat2 := Mk("PLUS", x, x)
	if _, ok := Match(pat2, Mk("PLUS", nat(1), nat(2))); ok {
		t.Error("nonlinear match should fail on different args")
	}
	if s, ok := Match(pat2, Mk("PLUS", nat(1), nat(1))); !ok || !Equal(s["x"], nat(1)) {
		t.Error("nonlinear match should succeed on equal args")
	}
	if _, ok := Match(Mk("SUCC", x), nat(0)); ok {
		t.Error("mismatched op should fail")
	}
}

func TestUnify(t *testing.T) {
	x := Var{Name: "x", Sort: "nat"}
	y := Var{Name: "y", Sort: "nat"}
	s, ok := Unify(Mk("PLUS", x, nat(1)), Mk("PLUS", nat(2), y))
	if !ok || !Equal(s.Apply(x), nat(2)) || !Equal(s.Apply(y), nat(1)) {
		t.Errorf("Unify = %v, %v", s, ok)
	}
	// occurs check
	if _, ok := Unify(x, Mk("SUCC", x)); ok {
		t.Error("occurs check failed")
	}
	// same variable
	if _, ok := Unify(x, x); !ok {
		t.Error("x ~ x should unify")
	}
	// chained bindings
	s2, ok := Unify(Mk("PLUS", x, x), Mk("PLUS", y, nat(3)))
	if !ok || !Equal(s2.Apply(x), nat(3)) || !Equal(s2.Apply(y), nat(3)) {
		t.Errorf("chained Unify = %v, %v", s2, ok)
	}
	if _, ok := Unify(Const("ZERO"), Mk("SUCC", x)); ok {
		t.Error("ZERO ~ SUCC(x) should fail")
	}
}
