package expt

// EXPERIMENTS.md's tables are generated from the committed record of the
// last full bench run, so `go generate ./...` is deterministic and CI can
// diff the result against the committed document. To refresh the record
// itself, re-run the experiments first:
//
//	go run algrec/cmd/bench -json internal/expt/recorded/run.json
//	go generate ./internal/expt
//
//go:generate go run algrec/cmd/bench -render recorded/run.json -update ../../EXPERIMENTS.md
