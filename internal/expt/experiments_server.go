package expt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"time"

	"algrec/internal/server"
)

// serverTCChain is the number of nodes in the chain graph whose transitive
// closure the P7 query computes.
const serverTCChain = 8

// serverTCQuery builds an ifp-algebra query that computes the transitive
// closure of an 8-node chain and subtracts an inline exclusion list: the
// pairs reachable from the first node plus m filler pairs. Inlining a large
// constant list into an otherwise small recursive query is the classic
// plan-cache workload — the client bakes its parameters into the text, so
// compilation (lexing, parsing, and materializing the literal into a set)
// dominates the per-request cost, while evaluation only probes the small
// closure against the already-materialized set.
func serverTCQuery(m int) string {
	var ed strings.Builder
	for i := 0; i < serverTCChain-1; i++ {
		if i > 0 {
			ed.WriteString(", ")
		}
		fmt.Fprintf(&ed, "(a%d, a%d)", i, i+1)
	}
	edges := ed.String()
	var ex strings.Builder
	for i := 1; i < serverTCChain; i++ {
		if i > 1 {
			ex.WriteString(", ")
		}
		fmt.Fprintf(&ex, "(a0, a%d)", i)
	}
	for i := 0; i < m; i++ {
		fmt.Fprintf(&ex, ", (x%d, y%d)", i, i)
	}
	return fmt.Sprintf(
		`diff(ifp(s, union({%s}, map(select(product(s, {%s}), \p -> p.1.2 = p.2.1), \p -> (p.1.1, p.2.2)))), {%s})`,
		edges, edges, ex.String())
}

// serveTC stands up an in-process query service with the given plan-cache
// capacity, issues one warm-up request plus n timed requests for the same
// transitive-closure query, and returns the total wall time of the timed
// requests, the result value, and the number of plan compilations the
// server performed. Requests are driven straight into the handler
// (httptest.ResponseRecorder), so the measurement covers the full service
// path — routing, body decode, cache, evaluation, response encode —
// without loopback-TCP noise.
func serveTC(src string, n, cacheCap int) (time.Duration, string, int64, error) {
	s := server.New(server.Config{CacheCap: cacheCap})
	h := s.Handler()
	body, err := json.Marshal(map[string]any{
		"language": "ifp-algebra", "semantics": "valid", "query": src,
	})
	if err != nil {
		return 0, "", 0, err
	}
	post := func() (*httptest.ResponseRecorder, error) {
		req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return nil, fmt.Errorf("expt: P7 query failed with status %d", rec.Code)
		}
		return rec, nil
	}
	// Warm-up request: decode the full response once to capture the result
	// value for the cold/cached agreement check. The timed loop below only
	// checks the status — client-side response decoding is measurement
	// overhead, not server work.
	rec, err := post()
	if err != nil {
		return 0, "", 0, err
	}
	var out struct {
		Result struct {
			Value string `json:"value"`
		} `json:"result"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
		return 0, "", 0, err
	}
	value := out.Result.Value
	runtime.GC()
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := post(); err != nil {
			return 0, "", 0, err
		}
	}
	elapsed := time.Since(start)
	return elapsed, value, s.Stats().Snapshot()["server.compiles"], nil
}

// RunP7 measures the serving layer's plan cache: requests/sec for the same
// transitive-closure query against a server with the compiled-plan LRU
// enabled (one compile, then cache hits) versus one with caching disabled
// (cold compile on every request). Everything else — HTTP surface,
// evaluation, JSON rendering — is identical, so the speedup isolates what
// plan reuse buys a resident service over the CLIs' compile-per-invocation
// behavior.
func RunP7(sizes []int) (*Table, error) {
	t := &Table{ID: "P7", Title: "server plan cache: cached vs cold-compiled requests/sec (performance)", OK: true,
		Header: []string{"workload", "requests", "coldCompiles", "cold req/s", "cached req/s", "speedup", "agree"}}
	const reqs = 30
	const reps = 5
	for _, m := range sizes {
		src := serverTCQuery(m)
		var dCold, dCached time.Duration
		var vCold, vCached string
		var coldCompiles int64
		var err error
		run := func(cacheCap int) (time.Duration, string, int64) {
			var best time.Duration
			var val string
			var compiles int64
			for i := 0; i < reps; i++ {
				var d time.Duration
				d, val, compiles, err = serveTC(src, reqs, cacheCap)
				if err != nil {
					return 0, "", 0
				}
				if best == 0 || d < best {
					best = d
				}
			}
			return best, val, compiles
		}
		dCold, vCold, coldCompiles = run(-1)
		if err != nil {
			return nil, err
		}
		dCached, vCached, _ = run(0)
		if err != nil {
			return nil, err
		}
		agree := vCold == vCached && vCold != ""
		if !agree {
			t.OK = false
		}
		rps := func(d time.Duration) string {
			return fmt.Sprintf("%.0f", float64(reqs)/d.Seconds())
		}
		t.Add(fmt.Sprintf("tcText(%d)", m), reqs, int(coldCompiles), rps(dCold), rps(dCached), speedup(dCold, dCached), agree)
	}
	return t, nil
}
