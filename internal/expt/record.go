package expt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// Record is the machine-readable report of one full cmd/bench run: every
// experiment's result table plus the run cost and observability counters
// collected while it executed. It is the evidence EXPERIMENTS.md is
// generated from — cmd/bench -json writes one, the committed copy lives at
// internal/expt/recorded/run.json, and `go generate ./internal/expt`
// renders the generated section of EXPERIMENTS.md from it (deterministic:
// same record, same markdown).
type Record struct {
	Stamp       string           `json:"stamp"` // RFC 3339 run time
	Scale       int              `json:"scale"`
	Parallel    bool             `json:"parallel"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	WallNS      int64            `json:"wall_ns"`               // overall run wall time
	CPUNS       int64            `json:"cpu_ns,omitempty"`      // overall process CPU time
	Utilization float64          `json:"utilization,omitempty"` // parallel runs: pool busy fraction
	Counters    map[string]int64 `json:"counters,omitempty"`    // whole-run observability counters
	Suites      []RecordSuite    `json:"suites"`
}

// RecordSuite is one experiment's slice of a Record.
type RecordSuite struct {
	ID         string           `json:"id"`
	Title      string           `json:"title"`
	OK         bool             `json:"ok"`
	WallNS     int64            `json:"wall_ns"`               // parallel runs: summed shard time
	CPUNS      int64            `json:"cpu_ns,omitempty"`      // serial runs only
	AllocBytes uint64           `json:"alloc_bytes,omitempty"` // serial runs only
	Mallocs    uint64           `json:"mallocs,omitempty"`     // serial runs only
	Shards     int              `json:"shards,omitempty"`      // tasks the suite split into
	Counters   map[string]int64 `json:"counters,omitempty"`    // serial runs: per-suite observability counters
	Header     []string         `json:"header"`
	Rows       [][]string       `json:"rows"`
	Notes      []string         `json:"notes,omitempty"`
}

// LoadRecord reads a Record from a JSON file written by cmd/bench -json.
func LoadRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("expt: parsing record %s: %w", path, err)
	}
	return &rec, nil
}

// Markers delimiting the generated section of EXPERIMENTS.md. Everything
// between them is owned by RenderGenerated; prose outside survives
// regeneration.
const (
	beginMarker = "<!-- BEGIN GENERATED TABLES (go generate ./internal/expt — edits here are overwritten) -->"
	endMarker   = "<!-- END GENERATED TABLES -->"
)

// RenderGenerated renders the generated section of EXPERIMENTS.md from a
// record: the per-experiment result tables, the run-cost table, and the
// observability counter digest. The output is a pure function of the record,
// so regeneration from the committed record is deterministic and CI can
// check the committed EXPERIMENTS.md is fresh.
func RenderGenerated(rec *Record) string {
	var sb strings.Builder
	mode := "serial"
	if rec.Parallel {
		mode = fmt.Sprintf("parallel, utilization %.0f%%", rec.Utilization*100)
	}
	fmt.Fprintf(&sb, "## Recorded run\n\n")
	fmt.Fprintf(&sb, "Recorded %s — scale %d, %s, GOMAXPROCS=%d, total wall %s",
		rec.Stamp, rec.Scale, mode, rec.GoMaxProcs, formatDuration(time.Duration(rec.WallNS)))
	if rec.CPUNS > 0 {
		fmt.Fprintf(&sb, ", CPU %s", formatDuration(time.Duration(rec.CPUNS)))
	}
	sb.WriteString(".\n\n")
	for _, s := range rec.Suites {
		t := &Table{ID: s.ID, Title: s.Title, OK: s.OK, Header: s.Header, Rows: s.Rows, Notes: s.Notes}
		sb.WriteString(t.Markdown())
	}
	sb.WriteString(renderRunCost(rec))
	sb.WriteString(renderCounters(rec))
	return sb.String()
}

// renderRunCost renders the per-experiment cost table from the record.
func renderRunCost(rec *Record) string {
	var sb strings.Builder
	sb.WriteString("## Run cost per experiment\n\n")
	if rec.Parallel {
		sb.WriteString("Wall times are summed shard times on a contended pool; allocation and CPU\ncolumns are unattributable under the parallel runner.\n\n")
	}
	sb.WriteString("| ID | wall | cpu | allocated | mallocs | shards |\n")
	sb.WriteString("|---|---|---|---|---|---|\n")
	for _, s := range rec.Suites {
		cpu, alloc, mallocs := "-", "-", "-"
		if s.CPUNS > 0 {
			cpu = formatDuration(time.Duration(s.CPUNS))
		}
		if s.AllocBytes > 0 {
			alloc = humanBytes(s.AllocBytes)
			mallocs = fmt.Sprint(s.Mallocs)
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %d |\n",
			s.ID, formatDuration(time.Duration(s.WallNS)), cpu, alloc, mallocs, s.Shards)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// counterColumns defines the counter digest table: column label → the
// counter-name predicate whose matching counters sum into the column.
var counterColumns = []struct {
	label string
	match func(name string) bool
}{
	{"fixpoints", func(n string) bool { return strings.HasPrefix(n, "fixpoint.") && strings.HasSuffix(n, ".calls") }},
	{"passes", func(n string) bool { return strings.HasPrefix(n, "fixpoint.") && strings.HasSuffix(n, ".passes") }},
	{"derived", func(n string) bool { return strings.HasPrefix(n, "fixpoint.") && strings.HasSuffix(n, ".derived") }},
	{"groundRules", func(n string) bool { return n == "ground.rules" }},
	{"deltaHits", func(n string) bool { return n == "ground.deltaHits" }},
	{"deltaSkips", func(n string) bool { return n == "ground.deltaSkips" }},
	{"stableCands", func(n string) bool { return n == "stable.candidates" }},
	{"scratchReuse", func(n string) bool { return n == "scratch.reused" }},
	{"scratchAlloc", func(n string) bool { return n == "scratch.allocated" }},
}

// renderCounters renders the observability digest: one row per experiment
// (serial records attribute counters per suite) plus a totals row, and an
// appendix listing every whole-run counter. Omitted entirely when the
// record carries no counters (e.g. a parallel run with no collector).
func renderCounters(rec *Record) string {
	anySuite := false
	for _, s := range rec.Suites {
		if len(s.Counters) > 0 {
			anySuite = true
			break
		}
	}
	if !anySuite && len(rec.Counters) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("## Engine counters (observability)\n\n")
	sb.WriteString("Collected by the `internal/obsv` layer during the recorded run: fixpoint\ncalls/passes and atoms derived across all semantics, ground rules emitted,\ndelta-window hits vs skips during grounding, stable-search candidates, and\nscratch-pool reuse vs fresh allocation.\n\n")
	if anySuite {
		sb.WriteString("| ID |")
		for _, c := range counterColumns {
			sb.WriteString(" " + c.label + " |")
		}
		sb.WriteString("\n|---|")
		sb.WriteString(strings.Repeat("---|", len(counterColumns)))
		sb.WriteString("\n")
		writeRow := func(id string, counters map[string]int64) {
			fmt.Fprintf(&sb, "| %s |", id)
			for _, c := range counterColumns {
				var sum int64
				for name, v := range counters {
					if c.match(name) {
						sum += v
					}
				}
				fmt.Fprintf(&sb, " %d |", sum)
			}
			sb.WriteString("\n")
		}
		totals := map[string]int64{}
		for _, s := range rec.Suites {
			writeRow(s.ID, s.Counters)
			for k, v := range s.Counters {
				totals[k] += v
			}
		}
		writeRow("**total**", totals)
		sb.WriteByte('\n')
	}
	if len(rec.Counters) > 0 {
		sb.WriteString("<details><summary>All whole-run counters</summary>\n\n")
		sb.WriteString("| counter | value |\n|---|---|\n")
		keys := make([]string, 0, len(rec.Counters))
		for k := range rec.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "| %s | %d |\n", k, rec.Counters[k])
		}
		sb.WriteString("\n</details>\n\n")
	}
	return sb.String()
}

// SpliceGenerated replaces the marker-delimited generated section of an
// EXPERIMENTS.md document with generated content, preserving all prose
// outside the markers. It errors when the markers are missing or out of
// order — regeneration must never silently clobber hand-written prose.
func SpliceGenerated(doc string, generated string) (string, error) {
	lo := strings.Index(doc, beginMarker)
	hi := strings.Index(doc, endMarker)
	if lo < 0 || hi < 0 || hi < lo {
		return "", fmt.Errorf("expt: generated-section markers missing or malformed (want %q before %q)", beginMarker, endMarker)
	}
	var sb strings.Builder
	sb.WriteString(doc[:lo])
	sb.WriteString(beginMarker)
	sb.WriteString("\n\n")
	sb.WriteString(strings.TrimRight(generated, "\n"))
	sb.WriteString("\n\n")
	sb.WriteString(doc[hi:])
	return sb.String(), nil
}

// humanBytes formats a byte count with a binary-unit suffix.
func humanBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
