//go:build unix

package expt

import "syscall"

// processCPU returns the process's cumulative user+system CPU time in
// nanoseconds, or 0 when the platform cannot report it. Deltas across a
// serial experiment attribute its CPU cost; under the parallel runner the
// counter is process-wide and deltas are not attributed.
func processCPU() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
