package expt

import (
	"fmt"
	"reflect"

	"algrec/internal/algebra"
	"algrec/internal/datalog"
	"algrec/internal/ivm"
	"algrec/internal/query"
	"algrec/internal/value"
)

// p11Inserts is the number of single-edge insert batches each P11 row
// replays against its views.
const p11Inserts = 8

// tcChainPlan compiles the transitive-closure program (EDB relation e) as a
// stratified datalog query plan — the subscription workload of P11.
func tcChainPlan() *query.Plan {
	return &query.Plan{
		Language:  query.LangDatalog,
		Semantics: query.SemStratified,
		Source:    "tc(X, Y) :- e(X, Y). tc(X, Z) :- tc(X, Y), e(Y, Z).",
		Program: datalog.MustParse(`
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
`),
	}
}

// p11Schedule returns the insert batches extending an n-edge chain by one
// edge at a time: each insert makes one new node reachable from every
// earlier one, so the incremental engine derives O(n) facts per batch while
// a recompute re-derives all O(n²).
func p11Schedule(n int) [][]datalog.Fact {
	batches := make([][]datalog.Fact, p11Inserts)
	for i := range batches {
		k := int64(n + i)
		batches[i] = []datalog.Fact{{Pred: "e", Args: []value.Value{value.Int(k), value.Int(k + 1)}}}
	}
	return batches
}

// RunP11 measures incremental view maintenance against from-scratch
// re-evaluation (the -noivm ablation) on the deductive transitive-closure
// chain. Both sides replay the same insert schedule through ivm.View; the
// baseline views carry Budget.NoIVM so each Apply re-executes the plan and
// diffs the outcomes, while the optimized views run the counting/DRed delta
// engine. Timings cover only the Apply loop — view construction (the cold
// initial evaluation, identical for both) stays outside the clock. Both
// modes must produce identical per-batch deltas and identical final
// outcomes (the dlog-ivm oracle contract); the comparison is purely about
// cost.
func RunP11(sizes []int) (*Table, error) {
	t := &Table{ID: "P11", Title: "Incremental view maintenance vs from-scratch recompute (performance)", OK: true,
		Header: []string{"workload", "size", "noivm", "ivm", "speedup", "agree"}}
	if algebra.DefaultBudget.NoIVM || !value.InterningEnabled() {
		t.Notes = append(t.Notes, "-noivm or -nointern is set: the ivm column also runs the recompute baseline")
	}
	t.Notes = append(t.Notes,
		"A/B via per-view Budget.NoIVM — no process-wide flips; timings are authoritative in serial runs",
		fmt.Sprintf("each row replays %d single-edge inserts extending the chain; deltas and outcomes must agree bit-for-bit", p11Inserts))
	plan := tcChainPlan()
	const reps = 3
	for _, n := range sizes {
		db := FactsDB("e", ChainEdges("e", n))
		schedule := p11Schedule(n)
		mkViews := func(b algebra.Budget) ([]*ivm.View, error) {
			views := make([]*ivm.View, reps)
			for i := range views {
				v, err := ivm.New(plan, db, query.Options{Budget: b})
				if err != nil {
					return nil, err
				}
				views[i] = v
			}
			return views, nil
		}
		replay := func(v *ivm.View) ([]*ivm.ResultDelta, error) {
			deltas := make([]*ivm.ResultDelta, len(schedule))
			for i, batch := range schedule {
				d, err := v.Apply(batch, nil)
				if err != nil {
					return nil, err
				}
				deltas[i] = d
			}
			return deltas, nil
		}

		baseViews, err := mkViews(algebra.Budget{NoIVM: true})
		if err != nil {
			return nil, err
		}
		var bDeltas []*ivm.ResultDelta
		var bErr error
		rep := 0
		settle()
		dB := minTimed(reps, func() { bDeltas, bErr = replay(baseViews[rep]); rep++ })
		if bErr != nil {
			return nil, bErr
		}

		optViews, err := mkViews(algebra.Budget{})
		if err != nil {
			return nil, err
		}
		var oDeltas []*ivm.ResultDelta
		var oErr error
		rep = 0
		settle()
		dO := minTimed(reps, func() { oDeltas, oErr = replay(optViews[rep]); rep++ })
		if oErr != nil {
			return nil, oErr
		}

		bOut, err := baseViews[reps-1].Outcome()
		if err != nil {
			return nil, err
		}
		oOut, err := optViews[reps-1].Outcome()
		if err != nil {
			return nil, err
		}
		agree := reflect.DeepEqual(bDeltas, oDeltas) && reflect.DeepEqual(bOut, oOut)
		if !agree {
			t.OK = false
		}
		tcLen := 0
		if d := oOut.Datalog; d != nil {
			for _, pf := range d.Preds {
				if pf.Pred == "tc" {
					tcLen = len(pf.True)
				}
			}
		}
		t.Add(fmt.Sprintf("ivmInsertChain(%d)", n), tcLen, dB, dO, speedup(dB, dO), agree)
	}
	return t, nil
}
