package expt

import (
	"fmt"
	"runtime"

	"algrec/internal/algebra"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
	"algrec/internal/value"
)

// settle runs a GC so each timed block starts from a clean heap: the two
// modes allocate very differently, and without the barrier each measurement
// inherits the previous mode's GC pacing — the dominant noise source in the
// A/B deltas.
func settle() { runtime.GC() }

// RunP8 measures hash-consed value interning against the string-keyed
// baseline (the -nointern ablation) on two existing macro workloads. The
// dlogTCChain rows run the full Datalog pipeline — grounding transitive
// closure on a chain, then the semi-naive minimal model — where the ID mode
// replaces every fact-dedup key string and index probe string with consed-ID
// operations. The ifpTCChain rows evaluate the same closure as an algebra
// IFP, where the hash join keys its index by interned IDs. Both modes must
// produce identical results (that is the -nointern golden-equivalence
// contract); the comparison is purely about cost.
func RunP8(sizes []int) (*Table, error) {
	t := &Table{ID: "P8", Title: "hash-consed interning vs string-keyed evaluation (performance)", OK: true,
		Header: []string{"workload", "size", "nointern", "intern", "speedup", "agree"}}
	ambient := value.InterningEnabled()
	defer value.SetInterning(ambient)
	if !ambient {
		t.Notes = append(t.Notes, "-nointern is set: the intern column also runs the string-keyed baseline")
	}
	t.Notes = append(t.Notes,
		"flips the process-wide interning switch around each measurement; timings are authoritative in serial runs",
		"intern timings are steady-state: the process-global arena stays warm across repetitions, as it does across server requests")
	budget := ground.Budget{MaxAtoms: 8_000_000, MaxRules: 16_000_000}
	const reps = 3
	for _, n := range sizes {
		// Grounding + minimal model of the TC chain (the P4 pipeline's front
		// half plus its kernel): fact interning and index probes dominate.
		p := TCProgram(ChainEdges("e", n))
		run := func() (*semantics.Interp, error) {
			g, err := ground.Ground(p, budget)
			if err != nil {
				return nil, err
			}
			return semantics.NewEngine(g).Minimal()
		}
		var base, opt *semantics.Interp
		var err error
		value.SetInterning(false)
		settle()
		dBase := minTimed(reps, func() { base, err = run() })
		if err != nil {
			return nil, err
		}
		value.SetInterning(ambient)
		settle()
		dOpt := minTimed(reps, func() { opt, err = run() })
		if err != nil {
			return nil, err
		}
		agree := base.G.NumAtoms() == opt.G.NumAtoms() && semantics.SameTruths(base, opt)
		if !agree {
			t.OK = false
		}
		t.Add(fmt.Sprintf("dlogTCChain(%d)", n), opt.G.NumAtoms(), dBase, dOpt, speedup(dBase, dOpt), agree)

		// The same closure as an algebra IFP (the P6 workload): the hash
		// join's index keys are the interned IDs of the join columns.
		m := n / 2
		db := FactsDB("move", ChainEdges("move", m))
		e := TCIFPExpr("move")
		var bset, oset value.Set
		value.SetInterning(false)
		settle()
		dB := minTimed(reps, func() { bset, err = algebra.NewEvaluator(db, algebra.Budget{}).Eval(e) })
		if err != nil {
			return nil, err
		}
		value.SetInterning(ambient)
		settle()
		dO := minTimed(reps, func() { oset, err = algebra.NewEvaluator(db, algebra.Budget{}).Eval(e) })
		if err != nil {
			return nil, err
		}
		agreeIFP := value.Equal(bset, oset)
		if !agreeIFP {
			t.OK = false
		}
		t.Add(fmt.Sprintf("ifpTCChain(%d)", m), oset.Len(), dB, dO, speedup(dB, dO), agreeIFP)
	}
	return t, nil
}
