package expt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"time"

	"algrec/internal/algebra"
	"algrec/internal/query"
	"algrec/internal/server"
	"algrec/internal/storage"
	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// p12Requests is the number of timed requests per serving measurement, and
// p12Reps the min-of repetitions for the bulk-load round-trips.
const (
	p12Requests = 24
	p12Reps     = 5
)

// minLatency runs f n times and returns the smallest single-call duration —
// the noise-robust statistic the gated serve rows compare (a GC pause or
// scheduler hiccup inflates some calls, never deflates the best one).
func minLatency(n int, f func() error) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// p12Script builds the database script PUT to the server: an n-edge integer
// chain in the relation edge.
func p12Script(n int) string {
	var sb strings.Builder
	sb.WriteString("rel edge = {")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i+1)
	}
	sb.WriteString("};\n")
	return sb.String()
}

// p12Query is the served workload: the transitive closure of edge, narrowed
// to the pairs leaving node 0 so evaluation stays quadratic while the
// response body stays linear — the measurement is the storage and serving
// path, not JSON rendering of the full closure.
const p12Query = `select(ifp(s, union(edge, map(select(product(s, edge), \p -> p.1.2 = p.2.1), \p -> (p.1.1, p.2.2)))), \p -> p.1 = 0)`

// p12Serve stands up a server (disk-backed when storageDir is non-empty),
// loads the chain database, and times p12Requests identical queries driven
// straight into the handler after one warm-up (which also populates the plan
// cache and, for disk, the materialization cache). It returns the best total
// over p12Reps repetitions plus the result value for the agreement check.
func p12Serve(storageDir, script string) (time.Duration, string, error) {
	cfg := server.Config{}
	if storageDir != "" {
		cfg.Storage = &server.StorageConfig{Dir: storageDir}
	}
	s := server.New(cfg)
	defer s.Close()
	if storageDir != "" {
		if _, err := s.OpenStorage(); err != nil {
			return 0, "", err
		}
	}
	h := s.Handler()

	put := httptest.NewRequest(http.MethodPut, "/v1/dbs/g", strings.NewReader(script))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, put)
	if rec.Code != http.StatusOK {
		return 0, "", fmt.Errorf("expt: P12 db load failed with status %d: %s", rec.Code, rec.Body.String())
	}

	body, err := json.Marshal(map[string]any{
		"db": "g", "language": "ifp-algebra", "semantics": "valid", "query": p12Query,
	})
	if err != nil {
		return 0, "", err
	}
	post := func() (*httptest.ResponseRecorder, error) {
		req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return nil, fmt.Errorf("expt: P12 query failed with status %d: %s", rec.Code, rec.Body.String())
		}
		return rec, nil
	}
	rec, err = post()
	if err != nil {
		return 0, "", err
	}
	var out struct {
		Result struct {
			Value string `json:"value"`
		} `json:"result"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
		return 0, "", err
	}
	settle()
	d, err := minLatency(p12Requests, func() error {
		_, err := post()
		return err
	})
	if err != nil {
		return 0, "", err
	}
	return d, out.Result.Value, nil
}

// RunP12 measures what the pluggable storage engine costs the serving path
// and what the disk backend costs over the memory backend. Three rows per
// chain size n:
//
//   - storageMemServe: the P7-style service workload (full HTTP surface,
//     plan-cache warm) against the copy-on-write memory registry, compared
//     with evaluating the same compiled plan directly over the same
//     database. The gated floor (benchcheck P12:storageMemServe:0.95)
//     asserts the registry indirection, snapshot machinery, and response
//     encoding cost at most 5% over raw evaluation.
//   - storageDiskServe: the same workload served from the disk backend with
//     a warm materialization cache — the steady-state cost of keeping the
//     database on disk (advisory).
//   - storageBulkLoad: StoreDB+LoadDB round-trip of the chain database
//     through the memory backend versus the disk backend — the write-path
//     and recovery-read cost of durability (advisory).
func RunP12(sizes []int) (*Table, error) {
	t := &Table{ID: "P12", Title: "pluggable storage: serving and bulk load, memory vs disk backend (performance)", OK: true,
		Header: []string{"workload", "n", "base", "with storage", "speedup", "agree"}}
	t.Notes = append(t.Notes,
		"serve rows: base = direct query.Execute over the materialized database, with storage = the full service path (HTTP handler, registry, plan cache warm)",
		"bulk row: base = memory-backend StoreDB+LoadDB round-trip, with storage = the same round-trip through the disk backend (fsync off)",
		fmt.Sprintf("serve rows report best-of-%d single-request latency; bulk rows best-of-%d round-trips; all three paths must produce the same result value", p12Requests, p12Reps))
	for _, n := range sizes {
		script := p12Script(n)
		db := FactsDB("edge", ChainEdges("edge", n))
		// Warm the interner the way database registration does, so the
		// direct baseline evaluates over the same hash-consed vocabulary as
		// the served paths.
		if value.InterningEnabled() {
			for _, set := range db {
				intern.Global().Intern(set)
			}
		}
		plan, err := query.Compile(query.LangIFPAlgebra, query.SemValid, p12Query)
		if err != nil {
			return nil, err
		}
		var out *query.Outcome
		settle()
		dDirect, err := minLatency(p12Requests, func() error {
			var eerr error
			out, eerr = query.Execute(plan, db, query.Options{})
			return eerr
		})
		if err != nil {
			return nil, err
		}
		directVal := ""
		if out != nil && out.HasValue {
			directVal = out.Value.String()
		}

		dMem, memVal, err := p12Serve("", script)
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "algrec-p12-*")
		if err != nil {
			return nil, err
		}
		dDisk, diskVal, err := p12Serve(dir, script)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		agree := directVal != "" && memVal == directVal && diskVal == directVal
		if !agree {
			t.OK = false
		}
		t.Add(fmt.Sprintf("storageMemServe(%d)", n), n, dDirect, dMem, speedup(dDirect, dMem), agree)
		t.Add(fmt.Sprintf("storageDiskServe(%d)", n), n, dDirect, dDisk, speedup(dDirect, dDisk), agree)

		dMemLoad, dDiskLoad, loadAgree, err := p12BulkLoad(db)
		if err != nil {
			return nil, err
		}
		if !loadAgree {
			t.OK = false
		}
		t.Add(fmt.Sprintf("storageBulkLoad(%d)", n), n, dMemLoad, dDiskLoad, speedup(dMemLoad, dDiskLoad), loadAgree)
	}
	return t, nil
}

// p12BulkLoad times a StoreDB+LoadDB round-trip of db through a fresh memory
// backend and a fresh disk backend, checking both loads render back to the
// original database.
func p12BulkLoad(db algebra.DB) (time.Duration, time.Duration, bool, error) {
	in := intern.Global()
	roundtrip := func(open func() (storage.Store, func(), error)) (time.Duration, string, error) {
		var rendered string
		var rerr error
		settle()
		d := minTimed(p12Reps, func() {
			st, done, err := open()
			if err != nil {
				rerr = err
				return
			}
			defer done()
			if err := storage.StoreDB(st, in, db); err != nil {
				rerr = err
				return
			}
			loaded, err := storage.LoadDB(st, in, 1)
			if err != nil {
				rerr = err
				return
			}
			rendered = renderDBSets(loaded)
		})
		return d, rendered, rerr
	}
	dMem, memR, err := roundtrip(func() (storage.Store, func(), error) {
		return storage.NewMem(in), func() {}, nil
	})
	if err != nil {
		return 0, 0, false, err
	}
	dDisk, diskR, err := roundtrip(func() (storage.Store, func(), error) {
		dir, err := os.MkdirTemp("", "algrec-p12-load-*")
		if err != nil {
			return nil, nil, err
		}
		st, err := storage.OpenDisk(dir, storage.DiskOptions{Interner: in})
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		return st, func() { st.Close(); os.RemoveAll(dir) }, nil
	})
	if err != nil {
		return 0, 0, false, err
	}
	want := renderDBSets(db)
	return dMem, dDisk, memR == want && diskR == want && want != "", nil
}

// renderDBSets renders a database to a canonical string, for round-trip
// agreement checks.
func renderDBSets(db map[string]value.Set) string {
	names := make([]string, 0, len(db))
	for n := range db {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%s = %s\n", n, db[n].String())
	}
	return sb.String()
}
