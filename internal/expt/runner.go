package expt

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"algrec/internal/obsv"
)

// Suite describes one experiment. Run produces the whole table serially;
// Shards, when present, split the experiment into independently runnable
// pieces (one per workload size) whose tables concatenate, in shard order,
// to the serial table — the unit of parallelism for RunSuites.
type Suite struct {
	ID     string
	Run    func() (*Table, error)
	Shards []func() (*Table, error)
}

// whole builds a Suite that the parallel runner treats as a single task —
// for experiments that emit fixed rows outside their per-size loop, which
// would duplicate under sharding.
func whole[S any](id string, sizes []S, run func([]S) (*Table, error)) Suite {
	return Suite{ID: id, Run: func() (*Table, error) { return run(sizes) }}
}

// sharded builds a Suite whose shards run one workload size each.
func sharded[S any](id string, sizes []S, run func([]S) (*Table, error)) Suite {
	shards := make([]func() (*Table, error), len(sizes))
	for i, n := range sizes {
		n := n
		shards[i] = func() (*Table, error) { return run([]S{n}) }
	}
	return Suite{
		ID:     id,
		Run:    func() (*Table, error) { return run(sizes) },
		Shards: shards,
	}
}

// DefaultSuites returns the full experiment suite at the given scale factor
// (1 = the sizes recorded in EXPERIMENTS.md; smaller values shrink the
// workloads proportionally for quick runs).
func DefaultSuites(scale int) []Suite {
	if scale < 1 {
		scale = 1
	}
	sz := func(ns ...int) []int {
		out := make([]int, len(ns))
		for i, n := range ns {
			v := n * scale
			if v < 2 {
				v = 2
			}
			out[i] = v
		}
		return out
	}
	return []Suite{
		sharded("E1", []int{8, 16, 24, 32}, RunE1),
		sharded("E2", []int64{64, 256, 1024, 4096}, RunE2),
		whole("E3", []int{4, 6, 8, 10}, RunE3),
		sharded("E4", sz(16, 32, 64), RunE4),
		whole("E5", sz(16, 32, 64), RunE5),
		sharded("E6", sz(16, 64, 128), RunE6),
		whole("E7", sz(8, 16, 32), RunE7),
		sharded("E8", sz(4, 8, 16), RunE8),
		sharded("E9", sz(8, 16, 32), RunE9),
		sharded("E10", []int{6, 10}, RunE10),
		whole("E11", sz(3, 5), RunE11),
		sharded("P1", sz(64, 128, 256), RunP1),
		sharded("P2", sz(16, 32, 64), RunP2),
		sharded("P3", []int{2, 4, 8, 12}, RunP3),
		sharded("P4", sz(256, 512, 1024), RunP4),
		sharded("P5", []int{4, 8, 10}, RunP5),
		sharded("P6", sz(24, 48, 96), RunP6),
		sharded("P7", []int{1500, 3000}, RunP7),
		sharded("P8", sz(128, 256, 384), RunP8),
		sharded("P9", sz(128, 256, 384), RunP9),
		sharded("P10", sz(128, 256, 384), RunP10),
		sharded("P11", sz(128, 256, 384), RunP11),
		sharded("P12", []int{48, 96}, RunP12),
		sharded("A1", []int{100, 300}, RunA1),
		sharded("A2", sz(16, 48), RunA2),
		sharded("A3", sz(16, 32, 48), RunA3),
		sharded("A4", sz(16, 32), RunA4),
	}
}

// RunAll runs every experiment serially and returns the tables in suite
// order.
func RunAll(scale int) ([]*Table, error) {
	var out []*Table
	for _, s := range DefaultSuites(scale) {
		tbl, err := s.Run()
		if err != nil {
			return out, fmt.Errorf("expt: %s: %w", s.ID, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// SuiteResult is one experiment's table plus run cost, for the machine-
// readable bench report.
type SuiteResult struct {
	Table      *Table
	Wall       time.Duration // serial: wall time; parallel: summed shard time
	CPU        time.Duration // process CPU time attributed to the run (serial only)
	AllocBytes uint64        // heap bytes allocated during the run (serial only)
	Mallocs    uint64        // heap objects allocated during the run (serial only)
	Shards     int           // tasks the suite split into (1 = whole-suite run)
}

// RunInstrumented runs one suite serially, recording wall time, CPU time and
// the heap allocation delta across the run, and reporting an Experiment
// event to the process-default collector.
func RunInstrumented(s Suite) (SuiteResult, error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	cpu0 := processCPU()
	start := time.Now()
	tbl, err := s.Run()
	wall := time.Since(start)
	cpu := time.Duration(processCPU() - cpu0)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return SuiteResult{}, err
	}
	if c := obsv.Default(); c != nil {
		c.Experiment(obsv.ExperimentStats{ID: s.ID, Shard: -1, WallNS: wall.Nanoseconds(), CPUNS: cpu.Nanoseconds()})
	}
	return SuiteResult{
		Table:      tbl,
		Wall:       wall,
		CPU:        cpu,
		AllocBytes: m1.TotalAlloc - m0.TotalAlloc,
		Mallocs:    m1.Mallocs - m0.Mallocs,
		Shards:     1,
	}, nil
}

// RunStats is the whole-run cost of one RunSuites call: overall wall time
// and, for parallel runs, how well the worker pool was utilized.
type RunStats struct {
	Wall    time.Duration // overall wall-clock time of the run
	CPU     time.Duration // process CPU time across the run
	Workers int           // worker pool size (1 = serial)
	Tasks   int           // tasks executed (suites + shards)
	// Utilization is summed task time / (Workers × Wall) for parallel runs:
	// 1.0 means every worker was busy the whole run, lower values measure
	// shard imbalance and scheduling gaps. 0 for serial runs (meaningless
	// there — the single worker is busy by construction).
	Utilization float64
}

// RunSuites runs the given suites with the given worker count and returns
// results in suite order. With workers <= 1 each suite runs serially and
// instrumented. With workers > 1 every shard of every suite becomes a task
// on a bounded worker pool — independent suites and workload sizes run
// concurrently — and each suite's shard tables are merged back in shard
// order, so tables are identical in content to a serial run; per-suite
// timings then measure summed shard cost, not wall time, and allocation
// deltas are not attributed.
func RunSuites(suites []Suite, workers int) ([]SuiteResult, error) {
	out, _, err := RunSuitesStats(suites, workers)
	return out, err
}

// RunSuitesStats is RunSuites with whole-run cost reporting: overall wall
// and CPU time, and — for parallel runs — worker-pool utilization.
func RunSuitesStats(suites []Suite, workers int) ([]SuiteResult, RunStats, error) {
	overallStart := time.Now()
	cpu0 := processCPU()
	stats := RunStats{Workers: workers}
	finish := func() RunStats {
		stats.Wall = time.Since(overallStart)
		stats.CPU = time.Duration(processCPU() - cpu0)
		return stats
	}
	if workers <= 1 {
		stats.Workers = 1
		out := make([]SuiteResult, 0, len(suites))
		for _, s := range suites {
			res, err := RunInstrumented(s)
			if err != nil {
				return nil, finish(), fmt.Errorf("expt: %s: %w", s.ID, err)
			}
			out = append(out, res)
			stats.Tasks++
		}
		return out, finish(), nil
	}
	type task struct {
		suite, shard int
		run          func() (*Table, error)
	}
	var tasks []task
	shardTables := make([][]*Table, len(suites))
	shardWalls := make([][]time.Duration, len(suites))
	shardErrs := make([][]error, len(suites))
	for si, s := range suites {
		nShards := len(s.Shards)
		if nShards == 0 {
			nShards = 1
			tasks = append(tasks, task{si, 0, s.Run})
		} else {
			for hi, run := range s.Shards {
				tasks = append(tasks, task{si, hi, run})
			}
		}
		shardTables[si] = make([]*Table, nShards)
		shardWalls[si] = make([]time.Duration, nShards)
		shardErrs[si] = make([]error, nShards)
	}
	obs := obsv.Default()
	ch := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range ch {
				start := time.Now()
				tbl, err := tk.run()
				// Each (suite, shard) slot is written by exactly one task.
				shardWalls[tk.suite][tk.shard] = time.Since(start)
				shardErrs[tk.suite][tk.shard] = err
				shardTables[tk.suite][tk.shard] = tbl
				if obs != nil {
					obs.Experiment(obsv.ExperimentStats{
						ID:     suites[tk.suite].ID,
						Shard:  tk.shard,
						WallNS: shardWalls[tk.suite][tk.shard].Nanoseconds(),
					})
				}
			}
		}()
	}
	for _, tk := range tasks {
		ch <- tk
	}
	close(ch)
	wg.Wait()
	stats.Tasks = len(tasks)
	out := make([]SuiteResult, 0, len(suites))
	var busy time.Duration
	for si, s := range suites {
		for _, err := range shardErrs[si] {
			if err != nil {
				return nil, finish(), fmt.Errorf("expt: %s: %w", s.ID, err)
			}
		}
		res := SuiteResult{Table: mergeTables(shardTables[si]), Shards: len(shardWalls[si])}
		for _, d := range shardWalls[si] {
			res.Wall += d
		}
		busy += res.Wall
		out = append(out, res)
	}
	st := finish()
	if st.Wall > 0 {
		st.Utilization = float64(busy) / (float64(workers) * float64(st.Wall))
	}
	return out, st, nil
}

// mergeTables concatenates shard tables of one experiment: rows append in
// shard order, OK is the conjunction, notes are deduplicated.
func mergeTables(tables []*Table) *Table {
	out := &Table{OK: true}
	seenNotes := map[string]bool{}
	for _, t := range tables {
		if t == nil {
			continue
		}
		if out.ID == "" {
			out.ID, out.Title, out.Header = t.ID, t.Title, t.Header
		}
		out.Rows = append(out.Rows, t.Rows...)
		out.OK = out.OK && t.OK
		for _, n := range t.Notes {
			if !seenNotes[n] {
				seenNotes[n] = true
				out.Notes = append(out.Notes, n)
			}
		}
	}
	return out
}
