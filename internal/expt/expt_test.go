package expt

import (
	"strings"
	"testing"
)

// TestExperimentsPass runs the whole suite at a reduced scale and requires
// every agreement check to pass — the experiment harness is itself the
// integration test of the repository.
func TestExperimentsPass(t *testing.T) {
	suites := []Suite{
		{"E1", func() (*Table, error) { return RunE1([]int{6, 10}) }},
		{"E2", func() (*Table, error) { return RunE2([]int64{32, 128}) }},
		{"E3", func() (*Table, error) { return RunE3([]int{4, 6}) }},
		{"E4", func() (*Table, error) { return RunE4([]int{8, 16}) }},
		{"E5", func() (*Table, error) { return RunE5([]int{8, 16}) }},
		{"E6", func() (*Table, error) { return RunE6([]int{8, 24}) }},
		{"E7", func() (*Table, error) { return RunE7([]int{4, 8}) }},
		{"E8", func() (*Table, error) { return RunE8([]int{4, 8}) }},
		{"E9", func() (*Table, error) { return RunE9([]int{4, 8}) }},
		{"E10", func() (*Table, error) { return RunE10([]int{4, 6}) }},
		{"E11", func() (*Table, error) { return RunE11([]int{4}) }},
		{"P1", func() (*Table, error) { return RunP1([]int{16, 32}) }},
		{"P2", func() (*Table, error) { return RunP2([]int{8, 16}) }},
		{"P3", func() (*Table, error) { return RunP3([]int{2, 4}) }},
		{"A1", func() (*Table, error) { return RunA1([]int{60}) }},
		{"A2", func() (*Table, error) { return RunA2([]int{8, 16}) }},
		{"A3", func() (*Table, error) { return RunA3([]int{8, 16}) }},
	}
	for _, s := range suites {
		tbl, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if !tbl.OK {
			t.Errorf("%s failed:\n%s", s.ID, tbl)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", s.ID)
		}
	}
}

func TestWorkloadGenerators(t *testing.T) {
	if got := len(ChainEdges("e", 5)); got != 5 {
		t.Errorf("chain(5) has %d edges", got)
	}
	if got := len(CycleEdges("e", 5)); got != 5 {
		t.Errorf("cycle(5) has %d edges", got)
	}
	if got := len(GridEdges("e", 3, 3)); got != 12 {
		t.Errorf("grid(3,3) has %d edges", got)
	}
	if got := len(RandomGraph("e", 10, 20, 1)); got != 20 {
		t.Errorf("random has %d edges", got)
	}
	for _, f := range RandomDAG("e", 10, 30, 1) {
		a, b := f.Args[0].String(), f.Args[1].String()
		if a >= b && len(a) == len(b) {
			t.Fatalf("DAG edge %s -> %s is not forward", a, b)
		}
	}
	if got := nativeTC(ChainEdges("e", 4)); got != 10 {
		t.Errorf("nativeTC(chain4) = %d, want 10", got)
	}
	sg := SameGenProgram(3)
	if len(sg.Rules) < 10 {
		t.Errorf("same-gen program too small: %d rules", len(sg.Rules))
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "T", Title: "demo", OK: true, Header: []string{"a", "bb"}}
	tbl.Add(1, true)
	tbl.Add("xy", false)
	tbl.Notes = append(tbl.Notes, "a note")
	s := tbl.String()
	for _, want := range []string{"== T: demo [PASS]", "a note", "NO", "yes"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
	md := tbl.Markdown()
	for _, want := range []string{"### T — demo (PASS)", "| a | bb |", "| 1 | yes |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
	tbl.OK = false
	if !strings.Contains(tbl.String(), "[FAIL]") {
		t.Error("FAIL verdict missing")
	}
}
