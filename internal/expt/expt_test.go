package expt

import (
	"strings"
	"testing"
)

// testSuites is the whole experiment suite at a reduced scale.
func testSuites() []Suite {
	return []Suite{
		sharded("E1", []int{6, 10}, RunE1),
		sharded("E2", []int64{32, 128}, RunE2),
		whole("E3", []int{4, 6}, RunE3),
		sharded("E4", []int{8, 16}, RunE4),
		whole("E5", []int{8, 16}, RunE5),
		sharded("E6", []int{8, 24}, RunE6),
		whole("E7", []int{4, 8}, RunE7),
		sharded("E8", []int{4, 8}, RunE8),
		sharded("E9", []int{4, 8}, RunE9),
		sharded("E10", []int{4, 6}, RunE10),
		whole("E11", []int{4}, RunE11),
		sharded("P1", []int{16, 32}, RunP1),
		sharded("P2", []int{8, 16}, RunP2),
		sharded("P3", []int{2, 4}, RunP3),
		sharded("P4", []int{32, 64}, RunP4),
		sharded("P5", []int{3, 5}, RunP5),
		sharded("P6", []int{8, 16}, RunP6),
		sharded("A1", []int{60}, RunA1),
		sharded("A2", []int{8, 16}, RunA2),
		sharded("A3", []int{8, 16}, RunA3),
		sharded("A4", []int{8, 16}, RunA4),
	}
}

// TestExperimentsPass runs the whole suite at a reduced scale and requires
// every agreement check to pass — the experiment harness is itself the
// integration test of the repository.
func TestExperimentsPass(t *testing.T) {
	suites := testSuites()
	for _, s := range suites {
		tbl, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if !tbl.OK {
			t.Errorf("%s failed:\n%s", s.ID, tbl)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", s.ID)
		}
	}
}

func TestWorkloadGenerators(t *testing.T) {
	if got := len(ChainEdges("e", 5)); got != 5 {
		t.Errorf("chain(5) has %d edges", got)
	}
	if got := len(CycleEdges("e", 5)); got != 5 {
		t.Errorf("cycle(5) has %d edges", got)
	}
	if got := len(GridEdges("e", 3, 3)); got != 12 {
		t.Errorf("grid(3,3) has %d edges", got)
	}
	if got := len(RandomGraph("e", 10, 20, 1)); got != 20 {
		t.Errorf("random has %d edges", got)
	}
	for _, f := range RandomDAG("e", 10, 30, 1) {
		a, b := f.Args[0].String(), f.Args[1].String()
		if a >= b && len(a) == len(b) {
			t.Fatalf("DAG edge %s -> %s is not forward", a, b)
		}
	}
	if got := nativeTC(ChainEdges("e", 4)); got != 10 {
		t.Errorf("nativeTC(chain4) = %d, want 10", got)
	}
	sg := SameGenProgram(3)
	if len(sg.Rules) < 10 {
		t.Errorf("same-gen program too small: %d rules", len(sg.Rules))
	}
}

// TestRunSuitesParallelMatchesSerial runs a slice of the suite both ways:
// the parallel sharded runner must produce tables with identical ids,
// headers and rows (timing cells differ only where a duration column exists,
// so the comparison uses experiments whose cells are deterministic).
func TestRunSuitesParallelMatchesSerial(t *testing.T) {
	suites := []Suite{
		whole("E3", []int{4, 6}, RunE3),
		sharded("P3", []int{2, 3, 4}, RunP3),
		sharded("P5", []int{2, 3}, RunP5),
	}
	serial, err := RunSuites(suites, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSuites(suites, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		st, pt := serial[i].Table, parallel[i].Table
		if st.ID != pt.ID || !st.OK || !pt.OK {
			t.Errorf("suite %s: id/OK mismatch (parallel id %s, OK %v/%v)", st.ID, pt.ID, st.OK, pt.OK)
		}
		if len(st.Rows) != len(pt.Rows) {
			t.Errorf("%s: row counts differ: %d vs %d", st.ID, len(st.Rows), len(pt.Rows))
			continue
		}
		// Deterministic (non-duration) cells must match exactly; row order
		// must follow shard (= size) order.
		for r := range st.Rows {
			if st.Rows[r][0] != pt.Rows[r][0] {
				t.Errorf("%s row %d: first cell %q vs %q (shard order broken)", st.ID, r, st.Rows[r][0], pt.Rows[r][0])
			}
		}
	}
	if serial[0].Wall <= 0 {
		t.Error("serial result missing wall time")
	}
	if serial[0].Mallocs == 0 {
		t.Error("serial result missing allocation counts")
	}
}

func TestMergeTables(t *testing.T) {
	a := &Table{ID: "X", Title: "x", OK: true, Header: []string{"h"}, Notes: []string{"n1"}}
	a.Add("r1")
	b := &Table{ID: "X", Title: "x", OK: false, Header: []string{"h"}, Notes: []string{"n1", "n2"}}
	b.Add("r2")
	m := mergeTables([]*Table{a, b})
	if m.ID != "X" || m.OK || len(m.Rows) != 2 || m.Rows[0][0] != "r1" || m.Rows[1][0] != "r2" {
		t.Errorf("bad merge: %+v", m)
	}
	if len(m.Notes) != 2 {
		t.Errorf("notes not deduplicated+merged: %v", m.Notes)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "T", Title: "demo", OK: true, Header: []string{"a", "bb"}}
	tbl.Add(1, true)
	tbl.Add("xy", false)
	tbl.Notes = append(tbl.Notes, "a note")
	s := tbl.String()
	for _, want := range []string{"== T: demo [PASS]", "a note", "NO", "yes"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
	md := tbl.Markdown()
	for _, want := range []string{"### T — demo (PASS)", "| a | bb |", "| 1 | yes |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
	tbl.OK = false
	if !strings.Contains(tbl.String(), "[FAIL]") {
		t.Error("FAIL verdict missing")
	}
}
