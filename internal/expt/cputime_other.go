//go:build !unix

package expt

// processCPU reports 0 on platforms without Getrusage; CPU columns render
// as unattributed there.
func processCPU() int64 { return 0 }
