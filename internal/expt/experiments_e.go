package expt

import (
	"fmt"
	"math/rand"
	"time"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/rewrite"
	"algrec/internal/semantics"
	"algrec/internal/spec"
	"algrec/internal/spec/validspec"
	"algrec/internal/term"
	"algrec/internal/translate"
	"algrec/internal/value"
)

// RunE1 checks the Section 2.1 SET(nat) specification by rewriting: random
// insertion sequences normalize to canonical sets and MEM is total and
// correct. Sizes are small because numerals are unary SUCC chains.
func RunE1(sizes []int) (*Table, error) {
	t := &Table{ID: "E1", Title: "SET(nat) specification behaves as finite sets (§2.1)", OK: true,
		Header: []string{"n", "rewriteSteps", "memChecks", "correct", "time"}}
	sp, err := spec.SetSpec(spec.NatSpec(), "nat", "EQ")
	if err != nil {
		return nil, err
	}
	for _, n := range sizes {
		r := rand.New(rand.NewSource(int64(n)))
		rw := rewrite.New(sp, 0)
		correct := true
		var steps, checks int
		d := timed(func() {
			in := map[int]bool{}
			elems := make([]term.Term, 0, n)
			for i := 0; i < n; i++ {
				v := r.Intn(2 * n)
				in[v] = true
				elems = append(elems, spec.NatTerm(v))
			}
			setT, err := rw.Normalize(spec.SetTerm(elems...))
			if err != nil {
				correct = false
				return
			}
			for probe := 0; probe < 2*n; probe += 1 + r.Intn(3) {
				got, err := rw.Normalize(term.Mk("MEM", spec.NatTerm(probe), setT))
				if err != nil {
					correct = false
					return
				}
				checks++
				want := "FALSE"
				if in[probe] {
					want = "TRUE"
				}
				if !term.Equal(got, term.Const(want)) {
					correct = false
					return
				}
			}
			steps = rw.Steps()
		})
		if !correct {
			t.OK = false
		}
		t.Add(n, steps, checks, correct, d)
	}
	return t, nil
}

// RunE2 checks Example 1/3's even-numbers set on bounded prefixes: the valid
// interpretation is two-valued and MEM returns true exactly on the evens.
func RunE2(bounds []int64) (*Table, error) {
	t := &Table{ID: "E2", Title: "S^e = {0} ∪ MAP_{+2}(S^e): MEM total on bounded prefix (Ex. 1/3)", OK: true,
		Header: []string{"bound", "|S^e|", "wellDefined", "memCorrect", "time"}}
	for _, b := range bounds {
		prog := EvenSetProgram(b)
		var res *core.Result
		var err error
		d := timed(func() {
			res, err = core.EvalValid(prog, algebra.DB{}, algebra.Budget{})
		})
		if err != nil {
			return nil, err
		}
		correct := true
		for i := int64(0); i < b; i++ {
			want := core.False
			if i%2 == 0 {
				want = core.True
			}
			if res.Member("se", value.Int(i)) != want {
				correct = false
			}
		}
		wd := res.WellDefined()
		if !wd || !correct {
			t.OK = false
		}
		t.Add(b, res.Set("se").Len(), wd, correct, d)
	}
	return t, nil
}

// RunE3 exercises the Proposition 2.3(2) decision procedure: Example 2 plus
// random constant-only specifications.
func RunE3(constCounts []int) (*Table, error) {
	t := &Table{ID: "E3", Title: "initial-valid-model decision for constant specs (Prop 2.3(2), Ex. 2)", OK: true,
		Header: []string{"case", "consts", "clauses", "models", "valid", "initial", "time"}}
	ex2 := &validspec.ConstSpec{
		Consts: []string{"a", "b", "c"},
		Clauses: []validspec.Clause{
			{Conds: []validspec.Lit{{A: "a", B: "b", Negated: true}}, A: "a", B: "c"},
			{Conds: []validspec.Lit{{A: "a", B: "c", Negated: true}}, A: "a", B: "b"},
		},
	}
	models, err := ex2.Models()
	if err != nil {
		return nil, err
	}
	valid, err := ex2.ValidModels()
	if err != nil {
		return nil, err
	}
	var hasInit bool
	d := timed(func() { _, hasInit, err = ex2.InitialValidModel() })
	if err != nil {
		return nil, err
	}
	// The paper: 3 models, all valid, no initial one.
	if len(models) != 3 || len(valid) != 3 || hasInit {
		t.OK = false
	}
	t.Add("Example 2", 3, 2, len(models), len(valid), hasInit, d)
	for _, n := range constCounts {
		r := rand.New(rand.NewSource(int64(n)))
		consts := make([]string, n)
		for i := range consts {
			consts[i] = fmt.Sprintf("c%d", i)
		}
		pick := func() string { return consts[r.Intn(n)] }
		cs := &validspec.ConstSpec{Consts: consts}
		for i := 0; i < n; i++ {
			cl := validspec.Clause{A: pick(), B: pick()}
			for j := r.Intn(2); j >= 0; j-- {
				cl.Conds = append(cl.Conds, validspec.Lit{A: pick(), B: pick(), Negated: r.Intn(2) == 0})
			}
			cs.Clauses = append(cs.Clauses, cl)
		}
		var nm, nv int
		var hasInit bool
		d := timed(func() {
			ms, err1 := cs.Models()
			vs, err2 := cs.ValidModels()
			_, hi, err3 := cs.InitialValidModel()
			if err1 != nil || err2 != nil || err3 != nil {
				t.OK = false
				return
			}
			nm, nv, hasInit = len(ms), len(vs), hi
		})
		t.Add(fmt.Sprintf("random(%d)", n), n, len(cs.Clauses), nm, nv, hasInit, d)
	}
	return t, nil
}

// nativeTC computes the transitive closure of binary int facts in plain Go,
// as the reference for E4.
func nativeTC(edges []datalog.Fact) int {
	adj := map[int64][]int64{}
	nodes := map[int64]bool{}
	for _, f := range edges {
		a, b := int64(f.Args[0].(value.Int)), int64(f.Args[1].(value.Int))
		adj[a] = append(adj[a], b)
		nodes[a], nodes[b] = true, true
	}
	count := 0
	for start := range nodes {
		seen := map[int64]bool{}
		stack := append([]int64(nil), adj[start]...)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[x] {
				continue
			}
			seen[x] = true
			count++
			stack = append(stack, adj[x]...)
		}
	}
	return count
}

// RunE4 checks Theorem 3.1 on IFP-algebra queries: TC via IFP is always
// two-valued (well defined) and matches a native reference closure.
func RunE4(sizes []int) (*Table, error) {
	t := &Table{ID: "E4", Title: "IFP-algebra queries are well defined (Thm 3.1): TC workloads", OK: true,
		Header: []string{"workload", "n", "|tc|", "correct", "time"}}
	type wl struct {
		name  string
		edges []datalog.Fact
	}
	for _, n := range sizes {
		workloads := []wl{
			{fmt.Sprintf("chain(%d)", n), ChainEdges("e", n)},
			{fmt.Sprintf("cycle(%d)", n), CycleEdges("e", n)},
			{fmt.Sprintf("random(%d,%d)", n, 2*n), RandomGraph("e", n, 2*n, int64(n))},
		}
		for _, w := range workloads {
			db := FactsDB("e", w.edges)
			var got value.Set
			var err error
			d := timed(func() { got, err = algebra.Eval(TCIFPExpr("e"), db) })
			if err != nil {
				return nil, err
			}
			want := nativeTC(w.edges)
			ok := got.Len() == want
			if !ok {
				t.OK = false
			}
			t.Add(w.name, n, got.Len(), ok, d)
		}
	}
	return t, nil
}

// RunE5 checks Proposition 3.4 and its counterexample: for the monotone TC
// equation, S = exp(S) agrees with IFP_exp; for the non-monotone {a} − S the
// equation is undefined while IFP_{{a}−x} = {a}.
func RunE5(sizes []int) (*Table, error) {
	t := &Table{ID: "E5", Title: "monotone: S=exp(S) ≡ IFP_exp; non-monotone: they diverge (Prop 3.4)", OK: true,
		Header: []string{"case", "agree", "detail", "time"}}
	for _, n := range sizes {
		db := FactsDB("e", ChainEdges("e", n))
		prog := TCEquationProgram("e")
		var agree bool
		var detail string
		d := timed(func() {
			res, err := core.EvalValid(prog, db, algebra.Budget{})
			if err != nil {
				detail = err.Error()
				return
			}
			ifpRes, err := algebra.Eval(TCIFPExpr("e"), db)
			if err != nil {
				detail = err.Error()
				return
			}
			agree = res.WellDefined() && value.Equal(res.Set("tc"), ifpRes)
			detail = fmt.Sprintf("|tc|=%d", ifpRes.Len())
		})
		if !agree {
			t.OK = false
		}
		t.Add(fmt.Sprintf("monotone tc chain(%d)", n), agree, detail, d)
	}
	// Non-monotone counterexample.
	a := value.String("a")
	eqProg := &core.Program{Defs: []core.Def{{Name: "s",
		Body: algebra.Diff{L: algebra.Singleton(a), R: algebra.Rel{Name: "s"}}}}}
	var divergeOK bool
	var detail string
	d := timed(func() {
		res, err := core.EvalValid(eqProg, algebra.DB{}, algebra.Budget{})
		if err != nil {
			detail = err.Error()
			return
		}
		ifpRes, err := algebra.Eval(algebra.IFP{Var: "x",
			Body: algebra.Diff{L: algebra.Singleton(a), R: algebra.Rel{Name: "x"}}}, algebra.DB{})
		if err != nil {
			detail = err.Error()
			return
		}
		// Expected divergence: equation undefined on a, operator yields {a}.
		divergeOK = res.Member("s", a) == core.Undef && value.Equal(ifpRes, value.NewSet(a))
		detail = fmt.Sprintf("MEM(a,S)=%v, IFP=%v", res.Member("s", a), ifpRes)
	})
	if !divergeOK {
		t.OK = false
	}
	t.Add("non-monotone S={a}-S", divergeOK, detail, d)
	return t, nil
}

// RunE6 checks Theorem 4.3: stratified safe programs and their positive
// IFP-algebra translations compute the same relations.
func RunE6(sizes []int) (*Table, error) {
	t := &Table{ID: "E6", Title: "stratified deduction ≡ positive IFP-algebra (Thm 4.3)", OK: true,
		Header: []string{"n", "|r|", "|unreached|", "agree", "datalogTime", "algebraTime"}}
	for _, n := range sizes {
		p := StratifiedReachProgram(RandomDAG("e", n, 2*n, int64(n)), n)
		var in *semantics.Interp
		var err error
		dDatalog := timed(func() {
			in, err = semantics.Eval(p, semantics.SemStratified, ground.Budget{})
		})
		if err != nil {
			return nil, err
		}
		var res *core.Result
		dAlgebra := timed(func() {
			cp, db, terr := translate.StratifiedToPositiveIFP(p)
			if terr != nil {
				err = terr
				return
			}
			res, err = core.EvalValid(cp, db, algebra.Budget{})
		})
		if err != nil {
			return nil, err
		}
		agree := true
		for _, pred := range []string{"r", "unreached"} {
			if !value.Equal(res.Set(pred), translate.TrueSet(in, pred)) {
				agree = false
			}
		}
		if !agree || !res.WellDefined() {
			t.OK = false
		}
		t.Add(n, res.Set("r").Len(), res.Set("unreached").Len(), agree, dDatalog, dAlgebra)
	}
	return t, nil
}

// RunE7 checks Proposition 5.1 and Example 4: the algebra-to-deduction
// translation preserves IFP queries under the inflationary semantics, and
// the {a}−x query diverges under the valid semantics exactly as the paper
// describes.
func RunE7(sizes []int) (*Table, error) {
	t := &Table{ID: "E7", Title: "IFP-algebra → deduction under inflationary semantics (Prop 5.1, Ex. 4)", OK: true,
		Header: []string{"case", "agree", "detail", "time"}}
	for _, n := range sizes {
		edges := ChainEdges("move", n)
		db := FactsDB("move", edges)
		var agree bool
		var detail string
		d := timed(func() {
			want, err := algebra.Eval(TCIFPExpr("move"), db)
			if err != nil {
				detail = err.Error()
				return
			}
			prog, err := translate.AlgebraToDatalog(TCIFPExpr("move"), "result", nil)
			if err != nil {
				detail = err.Error()
				return
			}
			prog.AddFacts(translate.DBFacts(db)...)
			in, err := semantics.Eval(prog, semantics.SemInflationary, ground.Budget{})
			if err != nil {
				detail = err.Error()
				return
			}
			got := translate.TrueSet(in, "result")
			agree = value.Equal(got, want)
			detail = fmt.Sprintf("|tc|=%d", got.Len())
		})
		if !agree {
			t.OK = false
		}
		t.Add(fmt.Sprintf("tc chain(%d)", n), agree, detail, d)
	}
	// Example 4: inflationary derives, valid leaves undefined.
	a := value.String("a")
	q := algebra.IFP{Var: "x", Body: algebra.Diff{L: algebra.Singleton(a), R: algebra.Rel{Name: "x"}}}
	var ok bool
	var detail string
	d := timed(func() {
		prog, err := translate.AlgebraToDatalog(q, "result", nil)
		if err != nil {
			detail = err.Error()
			return
		}
		infl, err := semantics.Eval(prog, semantics.SemInflationary, ground.Budget{})
		if err != nil {
			detail = err.Error()
			return
		}
		valid, err := semantics.Eval(prog, semantics.SemValid, ground.Budget{})
		if err != nil {
			detail = err.Error()
			return
		}
		f := datalog.Fact{Pred: "result", Args: []value.Value{a}}
		ok = infl.TruthOf(f) == semantics.True && valid.TruthOf(f) == semantics.Undef
		detail = fmt.Sprintf("inflationary=%v valid=%v", infl.TruthOf(f), valid.TruthOf(f))
	})
	if !ok {
		t.OK = false
	}
	t.Add("Example 4: IFP_{{a}-x}", ok, detail, d)
	return t, nil
}

// RunE8 checks Proposition 5.2: the step-index transform embeds the
// inflationary semantics into the valid semantics.
func RunE8(sizes []int) (*Table, error) {
	t := &Table{ID: "E8", Title: "inflationary(P) ≡ valid(StepIndex(P)) (Prop 5.2)", OK: true,
		Header: []string{"program", "atoms", "inflSteps", "agree", "time"}}
	progs := []struct {
		name string
		p    *datalog.Program
	}{
		{"example4", datalog.MustParse("r(a).\nq(X) :- r(X), not q(X).")},
	}
	for _, n := range sizes {
		progs = append(progs,
			struct {
				name string
				p    *datalog.Program
			}{fmt.Sprintf("winCycle(%d)", n), WinProgram(CycleEdges("move", n))},
			struct {
				name string
				p    *datalog.Program
			}{fmt.Sprintf("randomNeg(%d)", n), RandomNegProgram(int64(n), n, 2*n)},
		)
	}
	for _, pr := range progs {
		var agree bool
		var atoms, steps int
		d := timed(func() {
			g, err := ground.Ground(pr.p, ground.Budget{})
			if err != nil {
				return
			}
			atoms = g.NumAtoms()
			infl, s := semantics.NewEngine(g).Inflationary()
			steps = s
			transformed := translate.StepIndex(pr.p, int64(s)+1)
			valid, err := semantics.Eval(transformed, semantics.SemValid, ground.Budget{})
			if err != nil {
				return
			}
			agree = valid.CountUndef() == 0
			for _, pred := range pr.p.Preds() {
				if !value.Equal(translate.TrueSet(infl, pred), translate.TrueSet(valid, pred)) {
					agree = false
				}
			}
		})
		if !agree {
			t.OK = false
		}
		t.Add(pr.name, atoms, steps, agree, d)
	}
	return t, nil
}

// RunE9 checks Proposition 6.1 / Theorem 6.2: safe deduction under the valid
// semantics equals the translated algebra= program, on acyclic games (two
// valued) and cyclic games (undefined positions), including round trips.
func RunE9(sizes []int) (*Table, error) {
	t := &Table{ID: "E9", Title: "valid deduction ≡ algebra= via simulation functions (Prop 6.1, Thm 6.2)", OK: true,
		Header: []string{"workload", "true", "undef", "agree", "roundTrip", "datalogTime", "algebraTime"}}
	type wl struct {
		name  string
		moves []datalog.Fact
	}
	for _, n := range sizes {
		workloads := []wl{
			{fmt.Sprintf("moveChain(%d)", n), ChainEdges("move", n)},
			{fmt.Sprintf("moveCycle(%d)", n), CycleEdges("move", n)},
			{fmt.Sprintf("moveRandom(%d)", n), RandomGraph("move", n, 2*n, int64(n))},
		}
		for _, w := range workloads {
			p := WinProgram(w.moves)
			var in *semantics.Interp
			var err error
			dDatalog := timed(func() { in, err = semantics.Eval(p, semantics.SemValid, ground.Budget{}) })
			if err != nil {
				return nil, err
			}
			var res *core.Result
			dAlgebra := timed(func() {
				cp, db, terr := translate.DatalogToCore(p)
				if terr != nil {
					err = terr
					return
				}
				res, err = core.EvalValid(cp, db, algebra.Budget{})
			})
			if err != nil {
				return nil, err
			}
			trueSet := translate.TrueSet(in, "win")
			undefSet := translate.UndefSet(in, "win")
			agree := value.Equal(res.Set("win"), trueSet) && value.Equal(res.UndefElems("win"), undefSet)
			// Round trip back to deduction.
			roundTrip := false
			cp, db, terr := translate.DatalogToCore(p)
			if terr == nil {
				back, berr := translate.CoreToDatalog(cp)
				if berr == nil {
					back.AddFacts(translate.DBFacts(db)...)
					in2, verr := semantics.Eval(back, semantics.SemValid, ground.Budget{})
					if verr == nil {
						roundTrip = value.Equal(translate.TrueSet(in2, "win"), trueSet) &&
							value.Equal(translate.UndefSet(in2, "win"), undefSet)
					}
				}
			}
			if !agree || !roundTrip {
				t.OK = false
			}
			t.Add(w.name, trueSet.Len(), undefSet.Len(), agree, roundTrip, dDatalog, dAlgebra)
		}
	}
	return t, nil
}

// RunE10 compares the semantics landscape: valid vs well-founded vs stable
// vs inflationary vs stratified on shared programs, verifying exactly the
// agreements and divergences the theory predicts.
func RunE10(sizes []int) (*Table, error) {
	t := &Table{ID: "E10", Title: "semantics landscape: valid, WFS, stable, inflationary (§2.2, §4, §5)", OK: true,
		Header: []string{"program", "true", "undef", "valid=wfs", "stableModels", "wfs⊆stable", "time"}}
	progs := []struct {
		name string
		p    *datalog.Program
	}{
		{"winAcyclic", WinProgram(ChainEdges("move", 6))},
		{"oddLoop", datalog.MustParse("p :- not p.")},
		{"evenLoop", datalog.MustParse("p :- not q. q :- not p.")},
	}
	for _, n := range sizes {
		progs = append(progs, struct {
			name string
			p    *datalog.Program
		}{fmt.Sprintf("winCycle(%d)", n), WinProgram(CycleEdges("move", n))},
			struct {
				name string
				p    *datalog.Program
			}{fmt.Sprintf("randomNeg(%d)", n), RandomNegProgram(int64(3*n), n, 2*n)})
	}
	for _, pr := range progs {
		var nTrue, nUndef, nStable int
		var validEqWFS, wfsInStable bool
		var d time.Duration
		d = timed(func() {
			g, err := ground.Ground(pr.p, ground.Budget{})
			if err != nil {
				return
			}
			e := semantics.NewEngine(g)
			valid := e.Valid()
			wfs := e.WellFounded()
			validEqWFS = semantics.SameTruths(valid, wfs)
			nUndef = wfs.CountUndef()
			for id := 0; id < g.NumAtoms(); id++ {
				if wfs.Truth(id) == semantics.True {
					nTrue++
				}
			}
			models, err := e.StableModels(22)
			if err != nil {
				nStable = -1
				wfsInStable = true // search skipped; not a failure
				return
			}
			nStable = len(models)
			wfsInStable = true
			for _, m := range models {
				for id := 0; id < g.NumAtoms(); id++ {
					if wfs.Truth(id) == semantics.True && m.Truth(id) != semantics.True {
						wfsInStable = false
					}
					if wfs.Truth(id) == semantics.False && m.Truth(id) == semantics.True {
						wfsInStable = false
					}
				}
			}
		})
		if !validEqWFS || !wfsInStable {
			t.OK = false
		}
		t.Add(pr.name, nTrue, nUndef, validEqWFS, nStable, wfsInStable, d)
	}
	t.Notes = append(t.Notes,
		"stableModels = -1 means the residual exceeded the search bound and enumeration was skipped",
		"oddLoop has 0 stable models; evenLoop has 2; a total WFS is the unique stable model")
	return t, nil
}
