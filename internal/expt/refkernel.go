package expt

import "algrec/internal/datalog/ground"

// refKernel is the frozen pre-bitset fixpoint kernel over []bool truth
// vectors, allocating its vectors on every pass — the baseline that
// experiment P4 measures the word-packed semantics.Engine against (the same
// role semantics.Engine.MinimalNaive plays for P1). A second, independent
// copy lives in internal/semantics's tests as the property-test oracle.
type refKernel struct {
	g      *ground.Program
	posOcc [][]int
}

func newRefKernel(g *ground.Program) *refKernel {
	e := &refKernel{g: g, posOcc: make([][]int, g.NumAtoms())}
	for ri, r := range g.Rules {
		for _, a := range r.Pos {
			e.posOcc[a] = append(e.posOcc[a], ri)
		}
	}
	return e
}

func (e *refKernel) lfp(enabled func(ruleIdx int) bool, seed []bool) []bool {
	derived := make([]bool, e.g.NumAtoms())
	missing := make([]int, len(e.g.Rules))
	var queue []int
	deriveAtom := func(a int) {
		if derived[a] {
			return
		}
		derived[a] = true
		queue = append(queue, a)
	}
	for ri, r := range e.g.Rules {
		if !enabled(ri) {
			missing[ri] = -1
			continue
		}
		missing[ri] = len(r.Pos)
		if missing[ri] == 0 {
			deriveAtom(r.Head)
		}
	}
	if seed != nil {
		for a, ok := range seed {
			if ok {
				deriveAtom(a)
			}
		}
	}
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ri := range e.posOcc[a] {
			if missing[ri] <= 0 {
				continue
			}
			missing[ri]--
			if missing[ri] == 0 {
				deriveAtom(e.g.Rules[ri].Head)
			}
		}
	}
	return derived
}

// minimal is the semi-naive minimal model of a positive program.
func (e *refKernel) minimal() []bool {
	return e.lfp(func(int) bool { return true }, nil)
}

func (e *refKernel) gamma(j []bool) []bool {
	return e.lfp(func(ri int) bool {
		for _, a := range e.g.Rules[ri].Neg {
			if j[a] {
				return false
			}
		}
		return true
	}, nil)
}

func refSame(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// wellFounded runs the alternating fixpoint, returning (T, U).
func (e *refKernel) wellFounded() (t, u []bool) {
	t = make([]bool, e.g.NumAtoms())
	for {
		u = e.gamma(t)
		t2 := e.gamma(u)
		if refSame(t, t2) {
			break
		}
		t = t2
	}
	return t, u
}
