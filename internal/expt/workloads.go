// Package expt provides the experiment harness for this reproduction: the
// paper has no tables or figures (it is an expressiveness paper), so the
// experiment suite instead makes every stated theorem and proposition
// executable on parameterized workloads and reports agreement plus timings.
// DESIGN.md's per-experiment index (E1–E10, P1–P3) maps each experiment to
// the paper result it checks; EXPERIMENTS.md records a full run.
package expt

import (
	"fmt"
	"math/rand"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/value"
)

// ChainEdges returns edge facts e(i, i+1) for i in [0, n).
func ChainEdges(pred string, n int) []datalog.Fact {
	out := make([]datalog.Fact, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, datalog.Fact{Pred: pred, Args: []value.Value{value.Int(int64(i)), value.Int(int64(i + 1))}})
	}
	return out
}

// CycleEdges returns edge facts forming one n-cycle.
func CycleEdges(pred string, n int) []datalog.Fact {
	out := make([]datalog.Fact, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, datalog.Fact{Pred: pred, Args: []value.Value{value.Int(int64(i)), value.Int(int64((i + 1) % n))}})
	}
	return out
}

// GridEdges returns right/down edges of a w×h grid, nodes numbered row-major.
func GridEdges(pred string, w, h int) []datalog.Fact {
	var out []datalog.Fact
	id := func(x, y int) value.Value { return value.Int(int64(y*w + x)) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				out = append(out, datalog.Fact{Pred: pred, Args: []value.Value{id(x, y), id(x+1, y)}})
			}
			if y+1 < h {
				out = append(out, datalog.Fact{Pred: pred, Args: []value.Value{id(x, y), id(x, y+1)}})
			}
		}
	}
	return out
}

// RandomGraph returns m random edges over n nodes (duplicates deduped by the
// fact representation downstream; self-loops allowed — they matter for the
// win game).
func RandomGraph(pred string, n, m int, seed int64) []datalog.Fact {
	r := rand.New(rand.NewSource(seed))
	out := make([]datalog.Fact, 0, m)
	for i := 0; i < m; i++ {
		a := value.Int(int64(r.Intn(n)))
		b := value.Int(int64(r.Intn(n)))
		out = append(out, datalog.Fact{Pred: pred, Args: []value.Value{a, b}})
	}
	return out
}

// RandomDAG returns m random forward edges over n nodes (i → j only when
// i < j), guaranteeing acyclicity.
func RandomDAG(pred string, n, m int, seed int64) []datalog.Fact {
	r := rand.New(rand.NewSource(seed))
	out := make([]datalog.Fact, 0, m)
	for i := 0; i < m; i++ {
		a := r.Intn(n - 1)
		b := a + 1 + r.Intn(n-a-1)
		out = append(out, datalog.Fact{Pred: pred, Args: []value.Value{value.Int(int64(a)), value.Int(int64(b))}})
	}
	return out
}

// TCProgram returns the transitive-closure program over the given edges.
func TCProgram(edges []datalog.Fact) *datalog.Program {
	p := datalog.MustParse(`
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
`)
	p.AddFacts(edges...)
	return p
}

// WinProgram returns the paper's Example 3 game over the given move facts:
// win(X) :- move(X, Y), not win(Y).
func WinProgram(moves []datalog.Fact) *datalog.Program {
	p := datalog.MustParse("win(X) :- move(X, Y), not win(Y).\n")
	p.AddFacts(moves...)
	return p
}

// SameGenProgram returns the same-generation program over a complete binary
// ancestry tree of the given depth.
func SameGenProgram(depth int) *datalog.Program {
	p := datalog.MustParse(`
sg(X, Y) :- par(X, Z), par(Y, Z).
sg(X, Y) :- par(X, W), sg(W, V), par(Y, V).
`)
	// node k has children 2k+1, 2k+2; par(child, parent)
	var facts []datalog.Fact
	total := 1<<(depth+1) - 1
	for k := 0; 2*k+2 < total; k++ {
		facts = append(facts,
			datalog.Fact{Pred: "par", Args: []value.Value{value.Int(int64(2*k + 1)), value.Int(int64(k))}},
			datalog.Fact{Pred: "par", Args: []value.Value{value.Int(int64(2*k + 2)), value.Int(int64(k))}})
	}
	p.AddFacts(facts...)
	return p
}

// StratifiedReachProgram returns a two-stratum program: reachability from
// node 0 plus its negation-guarded complement.
func StratifiedReachProgram(edges []datalog.Fact, n int) *datalog.Program {
	p := datalog.MustParse(`
r(X) :- e(0, X).
r(Y) :- r(X), e(X, Y).
unreached(X) :- node(X), not r(X).
`)
	p.AddFacts(edges...)
	for i := 0; i < n; i++ {
		p.AddFacts(datalog.Fact{Pred: "node", Args: []value.Value{value.Int(int64(i))}})
	}
	return p
}

// RandomNegProgram returns a random propositional program with negation —
// the stress corpus for the semantics comparisons (E10, P3).
func RandomNegProgram(seed int64, atoms, rules int) *datalog.Program {
	r := rand.New(rand.NewSource(seed))
	name := func(i int) string { return fmt.Sprintf("a%d", i) }
	p := &datalog.Program{}
	for i := 0; i < rules; i++ {
		head := datalog.Atom{Pred: name(r.Intn(atoms))}
		var body []datalog.Literal
		for j := r.Intn(3); j > 0; j-- {
			body = append(body, datalog.LitAtom{Neg: r.Intn(3) == 0, Atom: datalog.Atom{Pred: name(r.Intn(atoms))}})
		}
		p.Rules = append(p.Rules, datalog.Rule{Head: head, Body: body})
	}
	return p
}

// FactsDB converts binary facts into an algebra database relation of pairs.
func FactsDB(name string, facts []datalog.Fact) algebra.DB {
	elems := make([]value.Value, 0, len(facts))
	for _, f := range facts {
		elems = append(elems, value.NewTuple(f.Args...))
	}
	return algebra.DB{name: value.NewSet(elems...)}
}

// TCIFPExpr returns the transitive-closure IFP expression over the named
// binary relation: IFP_x(rel ∪ compose(x, rel)).
func TCIFPExpr(rel string) algebra.Expr {
	return algebra.IFP{Var: "x", Body: tcStep("x", rel)}
}

// TCEquationProgram returns the algebra= equation tc = rel ∪ compose(tc, rel)
// — the monotone recursive-definition counterpart of TCIFPExpr for the
// Proposition 3.4 experiment.
func TCEquationProgram(rel string) *core.Program {
	return &core.Program{Defs: []core.Def{{Name: "tc", Body: tcStep("tc", rel)}}}
}

func tcStep(acc, rel string) algebra.Expr {
	p := algebra.FVar{Name: "p"}
	join := algebra.Select{
		Of:  algebra.Product{L: algebra.Rel{Name: acc}, R: algebra.Rel{Name: rel}},
		Var: "p",
		Test: algebra.FCmp{Op: algebra.OpEq,
			L: algebra.FField{Of: algebra.FField{Of: p, Idx: 1}, Idx: 2},
			R: algebra.FField{Of: algebra.FField{Of: p, Idx: 2}, Idx: 1}},
	}
	compose := algebra.Map{Of: join, Var: "p", Out: algebra.FTuple{Elems: []algebra.FExpr{
		algebra.FField{Of: algebra.FField{Of: p, Idx: 1}, Idx: 1},
		algebra.FField{Of: algebra.FField{Of: p, Idx: 2}, Idx: 2},
	}}}
	return algebra.Union{L: algebra.Rel{Name: rel}, R: compose}
}

// WinCoreProgram returns Example 3's WIN equation:
// WIN = π1(MOVE − ((π1 MOVE) × WIN)).
func WinCoreProgram() *core.Program {
	body := algebra.Proj(
		algebra.Diff{
			L: algebra.Rel{Name: "move"},
			R: algebra.Product{L: algebra.Proj(algebra.Rel{Name: "move"}, 1), R: algebra.Rel{Name: "win"}},
		}, 1)
	return &core.Program{Defs: []core.Def{{Name: "win", Body: body}}}
}

// EvenSetProgram returns Example 3's S_c^e = {0} ∪ MAP_{+2}(S_c^e), bounded
// below the given limit so the fixed point is finite.
func EvenSetProgram(bound int64) *core.Program {
	x := algebra.FVar{Name: "x"}
	step := algebra.Map{Of: algebra.Rel{Name: "se"}, Var: "x",
		Out: algebra.FArith{Op: algebra.OpPlus, L: x, R: algebra.FConst{V: value.Int(2)}}}
	body := algebra.Select{
		Of:   algebra.Union{L: algebra.Singleton(value.Int(0)), R: step},
		Var:  "x",
		Test: algebra.FCmp{Op: algebra.OpLt, L: x, R: algebra.FConst{V: value.Int(bound)}},
	}
	return &core.Program{Defs: []core.Def{{Name: "se", Body: body}}}
}
