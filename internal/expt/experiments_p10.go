package expt

import (
	"fmt"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/translate"
	"algrec/internal/value"
)

// BOMProgram returns a bill-of-materials program over a complete binary
// containment tree of n parts rooted at part 0 — the examples/bom query at
// benchmark scale: transitive containment plus the negation-guarded "parts
// the root does not contain". Stratified, so it also runs through the
// Theorem 4.3 positive-IFP translation.
func BOMProgram(n int) *datalog.Program {
	p := datalog.MustParse(`
contains(X, Y) :- sub(X, Y).
contains(X, Z) :- contains(X, Y), sub(Y, Z).
reach(Y) :- root(X), contains(X, Y).
missing(Y) :- part(Y), not reach(Y).
`)
	var facts []datalog.Fact
	facts = append(facts, datalog.Fact{Pred: "root", Args: []value.Value{value.Int(0)}})
	for k := 0; k < n; k++ {
		facts = append(facts, datalog.Fact{Pred: "part", Args: []value.Value{value.Int(int64(k))}})
		for _, c := range []int{2*k + 1, 2*k + 2} {
			if c < n {
				facts = append(facts, datalog.Fact{Pred: "sub", Args: []value.Value{value.Int(int64(k)), value.Int(int64(c))}})
			}
		}
	}
	p.AddFacts(facts...)
	return p
}

// equalSetMaps reports whether two named-set maps hold identical sets.
func equalSetMaps(a, b map[string]value.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || !value.Equal(av, bv) {
			return false
		}
	}
	return true
}

// RunP10 measures the ID-native delta fixpoint kernels against value-space
// delta rounds (the -noidsets ablation) on three workloads. The ifpTCChain
// rows isolate the kernels on a single algebra IFP: sorted-ID galloping
// union/diff, a join index built once per fixpoint instead of once per
// round, and constant union arms folded into round 0. The dlogBOM and
// dlogWinGame rows run full deductive pipelines — the examples/ programs at
// benchmark scale, translated to algebra= (Theorem 4.3 / Proposition 6.1)
// and evaluated under the valid semantics — so every recursive definition's
// rounds go through the kernels. Both modes must produce identical results
// (the -noidsets golden-equivalence contract); the comparison is purely
// about cost.
func RunP10(sizes []int) (*Table, error) {
	t := &Table{ID: "P10", Title: "ID-native delta fixpoint kernels vs value-space rounds (performance)", OK: true,
		Header: []string{"workload", "size", "noidsets", "idsets", "speedup", "agree"}}
	if algebra.DefaultBudget.NoIDSets || !value.InterningEnabled() {
		t.Notes = append(t.Notes, "-noidsets or -nointern is set: the idsets column also runs the value-space baseline")
	}
	t.Notes = append(t.Notes,
		"A/B via per-call Budget.NoIDSets — no process-wide flips; timings are authoritative in serial runs",
		"dlogWinGame's Γ alternation re-enters many small fixpoints whose per-fixpoint setup (const conversion, join index) is not amortized — the ID kernels roughly break even there")
	base := algebra.Budget{NoIDSets: true}
	opt := algebra.Budget{}
	const reps = 3
	for _, n := range sizes {
		// Transitive closure of a chain as one algebra IFP — the kernel
		// microbenchmark (same workload as the P8/P9 ifpTCChain rows).
		m := n / 2
		db := FactsDB("move", ChainEdges("move", m))
		e := TCIFPExpr("move")
		var bset, oset value.Set
		var err error
		settle()
		dB := minTimed(reps, func() { bset, err = algebra.NewEvaluator(db, base).Eval(e) })
		if err != nil {
			return nil, err
		}
		settle()
		dO := minTimed(reps, func() { oset, err = algebra.NewEvaluator(db, opt).Eval(e) })
		if err != nil {
			return nil, err
		}
		agree := value.Equal(bset, oset)
		if !agree {
			t.OK = false
		}
		t.Add(fmt.Sprintf("ifpTCChain(%d)", m), oset.Len(), dB, dO, speedup(dB, dO), agree)

		// Bill of materials end to end: stratified program → positive
		// IFP-algebra (Theorem 4.3) → valid evaluation.
		bom := BOMProgram(m)
		cp, bdb, err := translate.StratifiedToPositiveIFP(bom)
		if err != nil {
			return nil, err
		}
		var bRes, oRes *core.Result
		settle()
		dBB := minTimed(reps, func() { bRes, err = core.EvalValid(cp, bdb, base) })
		if err != nil {
			return nil, err
		}
		settle()
		dBO := minTimed(reps, func() { oRes, err = core.EvalValid(cp, bdb, opt) })
		if err != nil {
			return nil, err
		}
		agreeBOM := equalSetMaps(bRes.Lower, oRes.Lower) && equalSetMaps(bRes.Upper, oRes.Upper)
		if !agreeBOM {
			t.OK = false
		}
		t.Add(fmt.Sprintf("dlogBOM(%d)", m), oRes.Lower["contains"].Len(), dBB, dBO, speedup(dBB, dBO), agreeBOM)

		// The win game end to end: non-stratified program → algebra=
		// (Proposition 6.1) → three-valued valid evaluation.
		win := WinProgram(RandomGraph("move", m, 2*m, 7))
		wp, wdb, err := translate.DatalogToCore(win)
		if err != nil {
			return nil, err
		}
		var bWin, oWin *core.Result
		settle()
		dWB := minTimed(reps, func() { bWin, err = core.EvalValid(wp, wdb, base) })
		if err != nil {
			return nil, err
		}
		settle()
		dWO := minTimed(reps, func() { oWin, err = core.EvalValid(wp, wdb, opt) })
		if err != nil {
			return nil, err
		}
		agreeWin := equalSetMaps(bWin.Lower, oWin.Lower) && equalSetMaps(bWin.Upper, oWin.Upper)
		if !agreeWin {
			t.OK = false
		}
		t.Add(fmt.Sprintf("dlogWinGame(%d)", m), oWin.Lower["win"].Len(), dWB, dWO, speedup(dWB, dWO), agreeWin)
	}
	return t, nil
}
