package expt

import (
	"fmt"

	"algrec/internal/algebra"
	"algrec/internal/value"
)

// intRangeSet returns {0, 1, ..., n-1} as a set of integers.
func intRangeSet(n int) value.Set {
	b := value.NewSetBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(value.Int(int64(i)))
	}
	return b.Set()
}

// productSelectExpr is σ_{p.1%7=0 ∧ p.1<p.2}(A×B): one pushable equality on
// the left leaf and a cross-leaf range conjunct. No equi key exists, so the
// materialized path must build the full n² product and select over it, while
// the streaming path pushes the modulus filter below the cross step and
// never materializes an intermediate — the shape where pipelining pays most.
func productSelectExpr() algebra.Expr {
	p := algebra.FVar{Name: "p"}
	f1 := algebra.FField{Of: p, Idx: 1}
	f2 := algebra.FField{Of: p, Idx: 2}
	return algebra.Select{
		Of:  algebra.Product{L: algebra.Rel{Name: "A"}, R: algebra.Rel{Name: "B"}},
		Var: "p",
		Test: algebra.FAnd{
			L: algebra.FCmp{Op: algebra.OpEq,
				L: algebra.FArith{Op: algebra.OpMod, L: f1, R: algebra.FConst{V: value.Int(7)}},
				R: algebra.FConst{V: value.Int(0)}},
			R: algebra.FCmp{Op: algebra.OpLt, L: f1, R: f2},
		},
	}
}

// RunP9 measures the streaming execution runtime against full operator-by-
// operator materialization (the -nostreaming ablation) on two pipelines.
// The productSelect rows are the pushdown showcase described on
// productSelectExpr. The ifpTCChain rows run transitive closure as an
// algebra IFP, where the materialized baseline already uses the symmetric
// hash join, so they isolate the iterator pipeline (planned probe order,
// no intermediate product) against set-materialized join output. Both
// modes must produce identical results (the -nostreaming golden-equivalence
// contract); the comparison is purely about cost.
func RunP9(sizes []int) (*Table, error) {
	t := &Table{ID: "P9", Title: "streaming pipeline runtime vs materialized evaluation (performance)", OK: true,
		Header: []string{"workload", "size", "materialized", "streaming", "speedup", "agree"}}
	if algebra.DefaultBudget.NoStreaming {
		t.Notes = append(t.Notes, "-nostreaming is set: the streaming column also runs the materialized baseline")
	}
	t.Notes = append(t.Notes,
		"A/B via per-call Budget.NoStreaming — no process-wide flips; timings are authoritative in serial runs")
	base := algebra.Budget{NoStreaming: true}
	opt := algebra.Budget{}
	const reps = 3
	for _, n := range sizes {
		db := algebra.DB{"A": intRangeSet(n), "B": intRangeSet(n)}
		sel := productSelectExpr()
		var bset, oset value.Set
		var err error
		settle()
		dBase := minTimed(reps, func() { bset, err = algebra.NewEvaluator(db, base).Eval(sel) })
		if err != nil {
			return nil, err
		}
		settle()
		dOpt := minTimed(reps, func() { oset, err = algebra.NewEvaluator(db, opt).Eval(sel) })
		if err != nil {
			return nil, err
		}
		agree := value.Equal(bset, oset)
		if !agree {
			t.OK = false
		}
		t.Add(fmt.Sprintf("productSelect(%d)", n), oset.Len(), dBase, dOpt, speedup(dBase, dOpt), agree)

		m := n / 2
		db2 := FactsDB("move", ChainEdges("move", m))
		e := TCIFPExpr("move")
		var bTC, oTC value.Set
		settle()
		dB := minTimed(reps, func() { bTC, err = algebra.NewEvaluator(db2, base).Eval(e) })
		if err != nil {
			return nil, err
		}
		settle()
		dO := minTimed(reps, func() { oTC, err = algebra.NewEvaluator(db2, opt).Eval(e) })
		if err != nil {
			return nil, err
		}
		agreeTC := value.Equal(bTC, oTC)
		if !agreeTC {
			t.OK = false
		}
		t.Add(fmt.Sprintf("ifpTCChain(%d)", m), oTC.Len(), dB, dO, speedup(dB, dO), agreeTC)
	}
	return t, nil
}
