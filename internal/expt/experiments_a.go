package expt

import (
	"fmt"
	"math/rand"
	"time"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
	"algrec/internal/translate"
	"algrec/internal/value"
)

// randomSafeProgram mirrors the generator used by the translate property
// tests: EDB facts over small integers, IDB rules with positive atoms
// binding all variables followed by optional comparisons and negated atoms.
func randomSafeProgram(r *rand.Rand) *datalog.Program {
	p := &datalog.Program{}
	type rel struct {
		name  string
		arity int
	}
	edb := []rel{{"d", 1}, {"e", 2}}
	idb := []rel{{"p", 1}, {"q", 1}, {"s", 2}}
	nConst := 3 + r.Intn(3)
	for i := 0; i < 4+r.Intn(6); i++ {
		re := edb[r.Intn(len(edb))]
		args := make([]value.Value, re.arity)
		for j := range args {
			args[j] = value.Int(int64(r.Intn(nConst)))
		}
		p.AddFacts(datalog.Fact{Pred: re.name, Args: args})
	}
	vars := []datalog.Var{"X", "Y", "Z"}
	all := append(append([]rel{}, edb...), idb...)
	for i := 0; i < 3+r.Intn(5); i++ {
		head := idb[r.Intn(len(idb))]
		var body []datalog.Literal
		bound := map[datalog.Var]bool{}
		var boundList []datalog.Var
		for j := 0; j < 1+r.Intn(2); j++ {
			re := all[r.Intn(len(all))]
			args := make([]datalog.Term, re.arity)
			for k := range args {
				v := vars[r.Intn(len(vars))]
				args[k] = v
				if !bound[v] {
					bound[v] = true
					boundList = append(boundList, v)
				}
			}
			body = append(body, datalog.LitAtom{Atom: datalog.Atom{Pred: re.name, Args: args}})
		}
		for j := r.Intn(2); j > 0 && len(boundList) > 0; j-- {
			re := all[r.Intn(len(all))]
			args := make([]datalog.Term, re.arity)
			for k := range args {
				args[k] = boundList[r.Intn(len(boundList))]
			}
			body = append(body, datalog.LitAtom{Neg: true, Atom: datalog.Atom{Pred: re.name, Args: args}})
		}
		headArgs := make([]datalog.Term, head.arity)
		for k := range headArgs {
			if len(boundList) > 0 {
				headArgs[k] = boundList[r.Intn(len(boundList))]
			} else {
				headArgs[k] = datalog.CInt(0)
			}
		}
		p.Rules = append(p.Rules, datalog.Rule{Head: datalog.Atom{Pred: head.name, Args: headArgs}, Body: body})
	}
	return p
}

// RunA1 measures the Flip-annotation ablation: on random safe programs, how
// often does the un-annotated anti-join translation lose precision against
// the ground valid model, and is the annotated translation always exact?
func RunA1(batches []int) (*Table, error) {
	t := &Table{ID: "A1", Title: "ablation: anti-join polarity annotation (algebra.Flip) on/off", OK: true,
		Header: []string{"programs", "flipExact", "noFlipExact", "noFlipImprecise", "noFlipUnsound", "time"}}
	seed := int64(1)
	for _, n := range batches {
		var flipExact, noFlipExact, noFlipImprecise, noFlipUnsound int
		d := timed(func() {
			for i := 0; i < n; i++ {
				seed++
				p := randomSafeProgram(rand.New(rand.NewSource(seed)))
				in, err := semantics.Eval(p, semantics.SemValid, ground.Budget{})
				if err != nil {
					continue
				}
				check := func(res *core.Result) (exact, sound bool) {
					exact, sound = true, true
					for _, pred := range p.IDB() {
						truth := translate.TrueSet(in, pred)
						undef := translate.UndefSet(in, pred)
						if !value.Equal(res.Set(pred), truth) || !value.Equal(res.UndefElems(pred), undef) {
							exact = false
						}
						if !res.Set(pred).Subset(truth) || !truth.Union(undef).Subset(res.Upper[pred]) {
							sound = false
						}
					}
					return exact, sound
				}
				cp, db, err := translate.DatalogToCore(p)
				if err != nil {
					continue
				}
				res, err := core.EvalValid(cp, db, algebra.Budget{})
				if err != nil {
					continue
				}
				if exact, _ := check(res); exact {
					flipExact++
				}
				cpN, dbN, err := translate.DatalogToCoreNoFlip(p)
				if err != nil {
					continue
				}
				resN, err := core.EvalValid(cpN, dbN, algebra.Budget{})
				if err != nil {
					continue
				}
				exact, sound := check(resN)
				switch {
				case exact:
					noFlipExact++
				case sound:
					noFlipImprecise++
				default:
					noFlipUnsound++
				}
			}
		})
		// The annotated translation must be exact on every program, and the
		// un-annotated one must never be unsound.
		if flipExact != n || noFlipUnsound > 0 {
			t.OK = false
		}
		t.Add(n, flipExact, noFlipExact, noFlipImprecise, noFlipUnsound, d)
	}
	t.Notes = append(t.Notes,
		"noFlipImprecise counts programs where dropping the annotation turns decided memberships into undefined ones")
	return t, nil
}

// RunE11 checks Theorem 3.5 / Corollary 3.6: IFP-algebra ⊂ algebra= — every
// IFP expression is expressible without the operator, via the paper's
// Prop 5.1 → Prop 5.2 → Prop 6.1 pipeline (translate.EliminateIFP).
func RunE11(sizes []int) (*Table, error) {
	t := &Table{ID: "E11", Title: "IFP elimination: IFP-algebra ⊂ algebra= (Thm 3.5, Cor 3.6)", OK: true,
		Header: []string{"case", "|result|", "wellDefined", "agree", "time"}}
	type tc struct {
		name string
		expr algebra.Expr
		db   algebra.DB
	}
	cases := []tc{{
		name: "IFP_{{a}-x}",
		expr: algebra.IFP{Var: "x", Body: algebra.Diff{L: algebra.Singleton(value.String("a")), R: algebra.Rel{Name: "x"}}},
		db:   algebra.DB{},
	}}
	for _, n := range sizes {
		cases = append(cases, tc{
			name: fmt.Sprintf("tcChain(%d)", n),
			expr: TCIFPExpr("move"),
			db:   FactsDB("move", ChainEdges("move", n)),
		})
	}
	for _, c := range cases {
		var agree, wd bool
		var size int
		d := timed(func() {
			want, err := algebra.Eval(c.expr, c.db)
			if err != nil {
				return
			}
			cp, cdb, result, err := translate.EliminateIFP(c.expr, c.db)
			if err != nil {
				return
			}
			res, err := core.EvalValid(cp, cdb, algebra.Budget{})
			if err != nil {
				return
			}
			wd = res.IsTotal(result)
			agree = value.Equal(res.Set(result), want)
			size = res.Set(result).Len()
		})
		if !agree || !wd {
			t.OK = false
		}
		t.Add(c.name, size, wd, agree, d)
	}
	return t, nil
}

// RunA3 measures the hash equi-join fast path ablation: the σ(×) shape is
// the only join the paper's algebra can express, so the fast path is the
// difference between quadratic and near-linear joins. Both modes must agree.
func RunA3(sizes []int) (*Table, error) {
	t := &Table{ID: "A3", Title: "ablation: hash equi-join fast path for σ(L × R) on/off", OK: true,
		Header: []string{"workload", "|tc|", "hashJoin", "naiveProduct", "agree"}}
	for _, n := range sizes {
		db := FactsDB("move", ChainEdges("move", n))
		e := TCIFPExpr("move")
		var fast, slow value.Set
		var err error
		dFast := timed(func() {
			fast, err = algebra.NewEvaluator(db, algebra.Budget{}).Eval(e)
		})
		if err != nil {
			return nil, err
		}
		dSlow := timed(func() {
			slow, err = algebra.NewEvaluator(db, algebra.Budget{NoHashJoin: true}).Eval(e)
		})
		if err != nil {
			return nil, err
		}
		agree := value.Equal(fast, slow)
		if !agree {
			t.OK = false
		}
		t.Add(fmt.Sprintf("tcChain(%d)", n), fast.Len(), dFast, dSlow, agree)
	}
	return t, nil
}

// RunA4 measures the Budget.NoSemiNaive ablation across every engine the
// delta machinery touches: IFP expressions (semi-naive delta rounds), the
// valid semantics of algebra= programs (SCC-stratified Γ with delta-tracked
// skipping), and the inflationary semantics (global rounds with skipping and
// a parallel worker pool). The two modes must agree everywhere — the
// optimizations are proven result-preserving, so the ablation measures only
// cost.
func RunA4(sizes []int) (*Table, error) {
	t := &Table{ID: "A4", Title: "ablation: semi-naive delta fixpoint engine on/off", OK: true,
		Header: []string{"workload", "semiNaive", "naive", "agree"}}
	semiB := algebra.Budget{}
	naiveB := algebra.Budget{NoSemiNaive: true}
	for _, n := range sizes {
		// IFP transitive closure in the two-valued evaluator.
		db := FactsDB("move", ChainEdges("move", n))
		e := TCIFPExpr("move")
		var semiS, naiveS value.Set
		var err error
		dSemi := timed(func() { semiS, err = algebra.NewEvaluator(db, semiB).Eval(e) })
		if err != nil {
			return nil, err
		}
		dNaive := timed(func() { naiveS, err = algebra.NewEvaluator(db, naiveB).Eval(e) })
		if err != nil {
			return nil, err
		}
		agree := value.Equal(semiS, naiveS)
		if !agree {
			t.OK = false
		}
		t.Add(fmt.Sprintf("ifpTC(%d)", n), dSemi, dNaive, agree)

		// Valid semantics of the win game on a cycle (an undefined region, so
		// Lower and Upper both matter).
		wdb := FactsDB("move", CycleEdges("move", n))
		wp := WinCoreProgram()
		var semiR, naiveR *core.Result
		dSemiW := timed(func() { semiR, err = core.EvalValid(wp, wdb, semiB) })
		if err != nil {
			return nil, err
		}
		dNaiveW := timed(func() { naiveR, err = core.EvalValid(wp, wdb, naiveB) })
		if err != nil {
			return nil, err
		}
		agreeW := value.Equal(semiR.Lower["win"], naiveR.Lower["win"]) &&
			value.Equal(semiR.Upper["win"], naiveR.Upper["win"])
		if !agreeW {
			t.OK = false
		}
		t.Add(fmt.Sprintf("validWinCycle(%d)", n), dSemiW, dNaiveW, agreeW)

		// Inflationary semantics of the TC equation program.
		tdb := FactsDB("e", ChainEdges("e", n))
		tp := TCEquationProgram("e")
		var semiM, naiveM map[string]value.Set
		dSemiI := timed(func() { semiM, err = core.EvalInflationary(tp, tdb, semiB) })
		if err != nil {
			return nil, err
		}
		dNaiveI := timed(func() { naiveM, err = core.EvalInflationary(tp, tdb, naiveB) })
		if err != nil {
			return nil, err
		}
		agreeI := value.Equal(semiM["tc"], naiveM["tc"])
		if !agreeI {
			t.OK = false
		}
		t.Add(fmt.Sprintf("inflTC(%d)", n), dSemiI, dNaiveI, agreeI)
	}
	return t, nil
}

// RunA2 compares the two independent valid-model implementations — the
// literal Section 2.2 procedure and the WFS alternating fixpoint — for
// agreement and relative cost.
func RunA2(sizes []int) (*Table, error) {
	t := &Table{ID: "A2", Title: "ablation: §2.2 valid procedure vs WFS alternating fixpoint", OK: true,
		Header: []string{"program", "atoms", "agree", "validTime", "wfsTime"}}
	progs := []struct {
		name string
		p    *datalog.Program
	}{}
	for _, n := range sizes {
		progs = append(progs,
			struct {
				name string
				p    *datalog.Program
			}{fmt.Sprintf("winCycle(%d)", n), WinProgram(CycleEdges("move", n))},
			struct {
				name string
				p    *datalog.Program
			}{fmt.Sprintf("randomNeg(%d)", n), RandomNegProgram(int64(n), n, 3*n)},
			struct {
				name string
				p    *datalog.Program
			}{fmt.Sprintf("tcChain(%d)", n), TCProgram(ChainEdges("e", n))},
		)
	}
	for _, pr := range progs {
		g, err := ground.Ground(pr.p, ground.Budget{})
		if err != nil {
			return nil, err
		}
		e := semantics.NewEngine(g)
		var valid, wfs *semantics.Interp
		var dValid, dWFS time.Duration
		dValid = timed(func() { valid = e.Valid() })
		dWFS = timed(func() { wfs = e.WellFounded() })
		agree := semantics.SameTruths(valid, wfs)
		if !agree {
			t.OK = false
		}
		t.Add(pr.name, g.NumAtoms(), agree, dValid, dWFS)
	}
	return t, nil
}
