package expt

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's report: a titled grid of result rows plus an
// overall agreement verdict.
type Table struct {
	ID     string // experiment id from DESIGN.md (E1..E10, P1..P3)
	Title  string // the paper result being checked
	Header []string
	Rows   [][]string
	OK     bool
	Notes  []string
}

// Add appends a row, stringifying the cells.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = formatDuration(v)
		case bool:
			if v {
				row[i] = "yes"
			} else {
				row[i] = "NO"
			}
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d.Microseconds()))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	verdict := "PASS"
	if !t.OK {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "== %s: %s [%s]\n", t.ID, t.Title, verdict)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table for
// EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var sb strings.Builder
	verdict := "PASS"
	if !t.OK {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "### %s — %s (%s)\n\n", t.ID, t.Title, verdict)
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		sb.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		sb.WriteString("\n*" + n + "*\n")
	}
	sb.WriteByte('\n')
	return sb.String()
}

// timed runs f and returns its duration.
func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
