package expt

import (
	"fmt"
	"runtime"
	"time"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
	"algrec/internal/translate"
	"algrec/internal/value"
)

// RunP1 measures naive vs semi-naive minimal-model evaluation on transitive
// closure (performance experiment; both must agree on the result).
func RunP1(sizes []int) (*Table, error) {
	t := &Table{ID: "P1", Title: "naive vs semi-naive minimal-model evaluation (performance)", OK: true,
		Header: []string{"workload", "atoms", "rules", "naive", "semiNaive", "agree"}}
	for _, n := range sizes {
		for _, w := range []struct {
			name  string
			edges []datalog.Fact
		}{
			{fmt.Sprintf("chain(%d)", n), ChainEdges("e", n)},
			{fmt.Sprintf("grid(%dx%d)", n/8+2, 8), GridEdges("e", n/8+2, 8)},
		} {
			p := TCProgram(w.edges)
			g, err := ground.Ground(p, ground.Budget{})
			if err != nil {
				return nil, err
			}
			e := semantics.NewEngine(g)
			var naive, semi *semantics.Interp
			dNaive := timed(func() { naive, err = e.MinimalNaive() })
			if err != nil {
				return nil, err
			}
			dSemi := timed(func() { semi, err = e.Minimal() })
			if err != nil {
				return nil, err
			}
			agree := semantics.SameTruths(naive, semi)
			if !agree {
				t.OK = false
			}
			t.Add(w.name, g.NumAtoms(), len(g.Rules), dNaive, dSemi, agree)
		}
	}
	return t, nil
}

// RunP2 measures the two evaluation paths for algebra= programs: the direct
// three-valued set evaluator of internal/core vs translating to deduction
// and evaluating under the valid semantics (they must agree — that is
// Theorem 6.2 — so the comparison is purely about cost).
func RunP2(sizes []int) (*Table, error) {
	t := &Table{ID: "P2", Title: "direct algebra= evaluator vs translate-to-deduction pipeline (performance)", OK: true,
		Header: []string{"workload", "direct", "translate+valid", "agree"}}
	for _, n := range sizes {
		for _, w := range []struct {
			name  string
			moves []datalog.Fact
		}{
			{fmt.Sprintf("moveChain(%d)", n), ChainEdges("move", n)},
			{fmt.Sprintf("moveRandom(%d)", n), RandomGraph("move", n, 2*n, int64(n))},
		} {
			db := FactsDB("move", w.moves)
			prog := WinCoreProgram()
			var res *core.Result
			var err error
			dDirect := timed(func() { res, err = core.EvalValid(prog, db, algebra.Budget{}) })
			if err != nil {
				return nil, err
			}
			var in *semantics.Interp
			dPipeline := timed(func() {
				dp, terr := translate.CoreToDatalog(prog)
				if terr != nil {
					err = terr
					return
				}
				dp.AddFacts(translate.DBFacts(db)...)
				in, err = semantics.Eval(dp, semantics.SemValid, ground.Budget{})
			})
			if err != nil {
				return nil, err
			}
			agree := value.Equal(res.Set("win"), translate.TrueSet(in, "win")) &&
				value.Equal(res.UndefElems("win"), translate.UndefSet(in, "win"))
			if !agree {
				t.OK = false
			}
			t.Add(w.name, dDirect, dPipeline, agree)
		}
	}
	return t, nil
}

// RunP3 measures stable-model search cost against the number of atoms left
// undefined by the well-founded model: k independent 2-cycles leave 2k
// undefined atoms and have 2^k stable models.
func RunP3(ks []int) (*Table, error) {
	t := &Table{ID: "P3", Title: "stable-model search cost vs residual size (performance)", OK: true,
		Header: []string{"cycles", "undef", "stableModels", "expected", "time"}}
	for _, k := range ks {
		p := &datalog.Program{}
		for i := 0; i < k; i++ {
			a := fmt.Sprintf("p%d", i)
			b := fmt.Sprintf("q%d", i)
			p.Rules = append(p.Rules,
				datalog.Rule{Head: datalog.Atom{Pred: a}, Body: []datalog.Literal{datalog.Neg(b)}},
				datalog.Rule{Head: datalog.Atom{Pred: b}, Body: []datalog.Literal{datalog.Neg(a)}})
		}
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			return nil, err
		}
		e := semantics.NewEngine(g)
		wfs := e.WellFounded()
		var models []*semantics.Interp
		d := timed(func() { models, err = e.StableModels(2 * k) })
		if err != nil {
			return nil, err
		}
		expected := 1 << k
		ok := len(models) == expected && wfs.CountUndef() == 2*k
		if !ok {
			t.OK = false
		}
		t.Add(k, wfs.CountUndef(), len(models), expected, d)
	}
	return t, nil
}

// RunP4 measures the word-packed bitset fixpoint kernel against the frozen
// []bool reference kernel (refkernel.go) on the P1 workloads: the semi-naive
// minimal model of transitive closure on chains, and the alternating-fixpoint
// well-founded model of the win game on move chains (whose Θ(n) gamma
// iterations stress set equality and reuse hardest). Both kernels must agree
// on every atom; the comparison is purely about cost.
func RunP4(sizes []int) (*Table, error) {
	t := &Table{ID: "P4", Title: "bitset vs bool fixpoint kernel (performance)", OK: true,
		Header: []string{"workload", "atoms", "rules", "boolKernel", "bitsetKernel", "speedup", "agree"}}
	budget := ground.Budget{MaxAtoms: 8_000_000, MaxRules: 16_000_000}
	const reps = 3
	for _, n := range sizes {
		// Semi-naive minimal model on the TC chain.
		g, err := ground.Ground(TCProgram(ChainEdges("e", n)), budget)
		if err != nil {
			return nil, err
		}
		ref := newRefKernel(g)
		e := semantics.NewEngine(g)
		var refDerived []bool
		var in *semantics.Interp
		if in, err = e.Minimal(); err != nil { // warm the scratch buffers
			return nil, err
		}
		dBool := minTimed(reps, func() { refDerived = ref.minimal() })
		dBit := minTimed(reps, func() { in, err = e.Minimal() })
		if err != nil {
			return nil, err
		}
		agree := true
		for a := 0; a < g.NumAtoms(); a++ {
			if refDerived[a] != (in.Truth(a) == semantics.True) {
				agree = false
			}
		}
		if !agree {
			t.OK = false
		}
		t.Add(fmt.Sprintf("tcChain(%d)", n), g.NumAtoms(), len(g.Rules), dBool, dBit, speedup(dBool, dBit), agree)

		// Alternating fixpoint on the win chain.
		gw, err := ground.Ground(WinProgram(ChainEdges("move", n)), budget)
		if err != nil {
			return nil, err
		}
		refW := newRefKernel(gw)
		ew := semantics.NewEngine(gw)
		var wt, wu []bool
		var win *semantics.Interp
		win = ew.WellFounded() // warm the scratch buffers
		dBoolW := minTimed(reps, func() { wt, wu = refW.wellFounded() })
		dBitW := minTimed(reps, func() { win = ew.WellFounded() })
		agreeW := true
		for a := 0; a < gw.NumAtoms(); a++ {
			want := semantics.Undef
			switch {
			case wt[a]:
				want = semantics.True
			case !wu[a]:
				want = semantics.False
			}
			if win.Truth(a) != want {
				agreeW = false
			}
		}
		if !agreeW {
			t.OK = false
		}
		t.Add(fmt.Sprintf("winChain(%d)", n), gw.NumAtoms(), len(gw.Rules), dBoolW, dBitW, speedup(dBoolW, dBitW), agreeW)
	}
	return t, nil
}

// RunP5 measures parallel vs serial stable-model search on the P3 workload
// (k independent 2-cycles: 2k undefined atoms, 2^k stable models). The two
// runs must return byte-identical ordered model lists — the parallel search
// merges its chunks back in candidate-mask order.
func RunP5(ks []int) (*Table, error) {
	workers := runtime.GOMAXPROCS(0)
	t := &Table{ID: "P5", Title: "parallel vs serial stable-model search (performance)", OK: true,
		Header: []string{"cycles", "undef", "models", "serial", fmt.Sprintf("parallel(%d)", workers), "speedup", "identical"}}
	if workers == 1 {
		t.Notes = append(t.Notes, "GOMAXPROCS=1: the worker pool degenerates to the serial path; run on more cores to see the speedup")
	}
	const reps = 3
	for _, k := range ks {
		p := &datalog.Program{}
		for i := 0; i < k; i++ {
			a := fmt.Sprintf("p%d", i)
			b := fmt.Sprintf("q%d", i)
			p.Rules = append(p.Rules,
				datalog.Rule{Head: datalog.Atom{Pred: a}, Body: []datalog.Literal{datalog.Neg(b)}},
				datalog.Rule{Head: datalog.Atom{Pred: b}, Body: []datalog.Literal{datalog.Neg(a)}})
		}
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			return nil, err
		}
		e := semantics.NewEngine(g)
		var serial, parallel []*semantics.Interp
		dSerial := minTimed(reps, func() { serial, err = e.StableModelsParallel(2*k, 1) })
		if err != nil {
			return nil, err
		}
		dParallel := minTimed(reps, func() { parallel, err = e.StableModelsParallel(2*k, workers) })
		if err != nil {
			return nil, err
		}
		identical := len(serial) == len(parallel) && len(serial) == 1<<k
		if identical {
			for i := range serial {
				if !semantics.SameTruths(serial[i], parallel[i]) {
					identical = false
					break
				}
			}
		}
		if !identical {
			t.OK = false
		}
		t.Add(k, 2*k, len(serial), dSerial, dParallel, speedup(dSerial, dParallel), identical)
	}
	return t, nil
}

// RunP6 measures the semi-naive delta engine for IFP evaluation against the
// naive engine on transitive-closure workloads: the naive engine re-derives
// every path in every round (Θ(n) rounds over a Θ(n²)-pair closure on the
// chain), the delta engine touches each pair once plus a delta-sized probe
// per round. Both must agree — DeltaDistributive guarantees the identical
// fixpoint — so the comparison is purely about cost.
func RunP6(sizes []int) (*Table, error) {
	t := &Table{ID: "P6", Title: "naive vs semi-naive delta IFP evaluation (performance)", OK: true,
		Header: []string{"workload", "|tc|", "naive", "semiNaive", "speedup", "agree"}}
	if algebra.DefaultBudget.NoSemiNaive {
		t.Notes = append(t.Notes, "-noseminaive is set: the semiNaive column also runs the naive engine")
	}
	const reps = 3
	for _, n := range sizes {
		for _, w := range []struct {
			name  string
			edges []datalog.Fact
		}{
			{fmt.Sprintf("tcChain(%d)", n), ChainEdges("move", n)},
			{fmt.Sprintf("tcRandom(%d)", n), RandomGraph("move", n, 2*n, int64(n))},
		} {
			db := FactsDB("move", w.edges)
			e := TCIFPExpr("move")
			var naive, semi value.Set
			var err error
			dNaive := minTimed(reps, func() {
				naive, err = algebra.NewEvaluator(db, algebra.Budget{NoSemiNaive: true}).Eval(e)
			})
			if err != nil {
				return nil, err
			}
			dSemi := minTimed(reps, func() {
				semi, err = algebra.NewEvaluator(db, algebra.Budget{}).Eval(e)
			})
			if err != nil {
				return nil, err
			}
			agree := value.Equal(naive, semi)
			if !agree {
				t.OK = false
			}
			t.Add(w.name, semi.Len(), dNaive, dSemi, speedup(dNaive, dSemi), agree)
		}
	}
	return t, nil
}

// minTimed runs f reps times and returns the fastest run — the standard
// guard against one-off GC or scheduler noise in the P-series timings.
func minTimed(reps int, f func()) time.Duration {
	best := timed(f)
	for i := 1; i < reps; i++ {
		if d := timed(f); d < best {
			best = d
		}
	}
	return best
}

func speedup(base, opt time.Duration) string {
	if opt <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(opt))
}
