package expt

import (
	"fmt"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
	"algrec/internal/translate"
	"algrec/internal/value"
)

// RunP1 measures naive vs semi-naive minimal-model evaluation on transitive
// closure (performance experiment; both must agree on the result).
func RunP1(sizes []int) (*Table, error) {
	t := &Table{ID: "P1", Title: "naive vs semi-naive minimal-model evaluation (performance)", OK: true,
		Header: []string{"workload", "atoms", "rules", "naive", "semiNaive", "agree"}}
	for _, n := range sizes {
		for _, w := range []struct {
			name  string
			edges []datalog.Fact
		}{
			{fmt.Sprintf("chain(%d)", n), ChainEdges("e", n)},
			{fmt.Sprintf("grid(%dx%d)", n/8+2, 8), GridEdges("e", n/8+2, 8)},
		} {
			p := TCProgram(w.edges)
			g, err := ground.Ground(p, ground.Budget{})
			if err != nil {
				return nil, err
			}
			e := semantics.NewEngine(g)
			var naive, semi *semantics.Interp
			dNaive := timed(func() { naive, err = e.MinimalNaive() })
			if err != nil {
				return nil, err
			}
			dSemi := timed(func() { semi, err = e.Minimal() })
			if err != nil {
				return nil, err
			}
			agree := semantics.SameTruths(naive, semi)
			if !agree {
				t.OK = false
			}
			t.Add(w.name, g.NumAtoms(), len(g.Rules), dNaive, dSemi, agree)
		}
	}
	return t, nil
}

// RunP2 measures the two evaluation paths for algebra= programs: the direct
// three-valued set evaluator of internal/core vs translating to deduction
// and evaluating under the valid semantics (they must agree — that is
// Theorem 6.2 — so the comparison is purely about cost).
func RunP2(sizes []int) (*Table, error) {
	t := &Table{ID: "P2", Title: "direct algebra= evaluator vs translate-to-deduction pipeline (performance)", OK: true,
		Header: []string{"workload", "direct", "translate+valid", "agree"}}
	for _, n := range sizes {
		for _, w := range []struct {
			name  string
			moves []datalog.Fact
		}{
			{fmt.Sprintf("moveChain(%d)", n), ChainEdges("move", n)},
			{fmt.Sprintf("moveRandom(%d)", n), RandomGraph("move", n, 2*n, int64(n))},
		} {
			db := FactsDB("move", w.moves)
			prog := WinCoreProgram()
			var res *core.Result
			var err error
			dDirect := timed(func() { res, err = core.EvalValid(prog, db, algebra.Budget{}) })
			if err != nil {
				return nil, err
			}
			var in *semantics.Interp
			dPipeline := timed(func() {
				dp, terr := translate.CoreToDatalog(prog)
				if terr != nil {
					err = terr
					return
				}
				dp.AddFacts(translate.DBFacts(db)...)
				in, err = semantics.Eval(dp, semantics.SemValid, ground.Budget{})
			})
			if err != nil {
				return nil, err
			}
			agree := value.Equal(res.Set("win"), translate.TrueSet(in, "win")) &&
				value.Equal(res.UndefElems("win"), translate.UndefSet(in, "win"))
			if !agree {
				t.OK = false
			}
			t.Add(w.name, dDirect, dPipeline, agree)
		}
	}
	return t, nil
}

// RunP3 measures stable-model search cost against the number of atoms left
// undefined by the well-founded model: k independent 2-cycles leave 2k
// undefined atoms and have 2^k stable models.
func RunP3(ks []int) (*Table, error) {
	t := &Table{ID: "P3", Title: "stable-model search cost vs residual size (performance)", OK: true,
		Header: []string{"cycles", "undef", "stableModels", "expected", "time"}}
	for _, k := range ks {
		p := &datalog.Program{}
		for i := 0; i < k; i++ {
			a := fmt.Sprintf("p%d", i)
			b := fmt.Sprintf("q%d", i)
			p.Rules = append(p.Rules,
				datalog.Rule{Head: datalog.Atom{Pred: a}, Body: []datalog.Literal{datalog.Neg(b)}},
				datalog.Rule{Head: datalog.Atom{Pred: b}, Body: []datalog.Literal{datalog.Neg(a)}})
		}
		g, err := ground.Ground(p, ground.Budget{})
		if err != nil {
			return nil, err
		}
		e := semantics.NewEngine(g)
		wfs := e.WellFounded()
		var models []*semantics.Interp
		d := timed(func() { models, err = e.StableModels(2 * k) })
		if err != nil {
			return nil, err
		}
		expected := 1 << k
		ok := len(models) == expected && wfs.CountUndef() == 2*k
		if !ok {
			t.OK = false
		}
		t.Add(k, wfs.CountUndef(), len(models), expected, d)
	}
	return t, nil
}

// Suite describes one experiment run by RunAll.
type Suite struct {
	ID  string
	Run func() (*Table, error)
}

// DefaultSuites returns the full experiment suite at the given scale factor
// (1 = the sizes recorded in EXPERIMENTS.md; smaller values shrink the
// workloads proportionally for quick runs).
func DefaultSuites(scale int) []Suite {
	if scale < 1 {
		scale = 1
	}
	sz := func(ns ...int) []int {
		out := make([]int, len(ns))
		for i, n := range ns {
			v := n * scale
			if v < 2 {
				v = 2
			}
			out[i] = v
		}
		return out
	}
	return []Suite{
		{"E1", func() (*Table, error) { return RunE1([]int{8, 16, 24, 32}) }},
		{"E2", func() (*Table, error) {
			return RunE2([]int64{64, 256, 1024, 4096})
		}},
		{"E3", func() (*Table, error) { return RunE3([]int{4, 6, 8, 10}) }},
		{"E4", func() (*Table, error) { return RunE4(sz(16, 32, 64)) }},
		{"E5", func() (*Table, error) { return RunE5(sz(16, 32, 64)) }},
		{"E6", func() (*Table, error) { return RunE6(sz(16, 64, 128)) }},
		{"E7", func() (*Table, error) { return RunE7(sz(8, 16, 32)) }},
		{"E8", func() (*Table, error) { return RunE8(sz(4, 8, 16)) }},
		{"E9", func() (*Table, error) { return RunE9(sz(8, 16, 32)) }},
		{"E10", func() (*Table, error) { return RunE10([]int{6, 10}) }},
		{"E11", func() (*Table, error) { return RunE11(sz(3, 5)) }},
		{"P1", func() (*Table, error) { return RunP1(sz(64, 128, 256)) }},
		{"P2", func() (*Table, error) { return RunP2(sz(16, 32, 64)) }},
		{"P3", func() (*Table, error) { return RunP3([]int{2, 4, 8, 12}) }},
		{"A1", func() (*Table, error) { return RunA1([]int{100, 300}) }},
		{"A2", func() (*Table, error) { return RunA2(sz(16, 48)) }},
		{"A3", func() (*Table, error) { return RunA3(sz(16, 32, 48)) }},
	}
}

// RunAll runs every experiment and returns the tables in suite order.
func RunAll(scale int) ([]*Table, error) {
	var out []*Table
	for _, s := range DefaultSuites(scale) {
		tbl, err := s.Run()
		if err != nil {
			return out, fmt.Errorf("expt: %s: %w", s.ID, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}
