package diffcheck

import (
	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/translate"
)

// checkCoreValid evaluates an algebra= program under the valid semantics
// with the scheduled semi-naive Γ and with the naive reference Γ, demanding
// identical lower and upper bounds. The scheduled engine may itself decide
// the program is unsafe for scheduling and fall back — that is fine; the
// oracle checks the outcome, not the route.
func checkCoreValid(p *core.Program, db algebra.DB) error {
	const oracle = "core-valid"
	ref, errR := core.EvalValid(p, db, noSemiNaive(ExprBudget))
	opt, errO := core.EvalValid(p, db, ExprBudget)
	if done, err := pairErr(oracle, "naive", "scheduled", errR, errO); done {
		return err
	}
	if err := diffSetMaps(oracle, "lower bound", ref.Lower, opt.Lower); err != nil {
		return err
	}
	return diffSetMaps(oracle, "upper bound", ref.Upper, opt.Upper)
}

// checkCoreInflationary is checkCoreValid for the inflationary semantics:
// scheduled rounds vs naive Jacobi rounds must accumulate the same sets.
func checkCoreInflationary(p *core.Program, db algebra.DB) error {
	const oracle = "core-inflationary"
	ref, errR := core.EvalInflationary(p, db, noSemiNaive(ExprBudget))
	opt, errO := core.EvalInflationary(p, db, ExprBudget)
	if done, err := pairErr(oracle, "naive", "scheduled", errR, errO); done {
		return err
	}
	return diffSetMaps(oracle, "inflationary fixpoint", ref, opt)
}

// checkCoreWellFounded compares the valid interpretation computed natively
// by core.EvalValid with the well-founded reading obtained by translating
// the program to deduction (Proposition 5.4) and running the deductive
// well-founded engine. Both compute the alternating fixpoint, so certain
// and possible parts must coincide. Flip-free programs only: the
// translation reads Flip as identity while the core engine flips polarity,
// so annotated programs are not comparable across this boundary.
//
// The scope is limited to programs where the two readings provably
// coincide — see coreWFComparable for the two fuzzer-found boundaries that
// are excluded.
func checkCoreWellFounded(p *core.Program, db algebra.DB) error {
	const oracle = "core-wellfounded"
	if !coreWFComparable(p) {
		return nil
	}
	res, errV := core.EvalValid(p, db, ExprBudget)
	lower, upper, errW := translate.WellFoundedSets(p, db)
	if errW != nil {
		return nil // translation gap or grounding budget: not comparable
	}
	if errV != nil {
		if skippable(errV) {
			return nil
		}
		return diverge(oracle, "core valid failed where the well-founded reading succeeded: %v", errV)
	}
	if err := diffSetMaps(oracle, "certain part", res.Lower, lower); err != nil {
		return err
	}
	return diffSetMaps(oracle, "possible part", res.Upper, upper)
}

// coreWFComparable reports whether the deductive well-founded reading of
// the program is expected to coincide with the native valid interpretation.
// Differential fuzzing found two boundaries where the equivalence genuinely
// fails, and instances past them are scope exclusions, not bugs:
//
//   - Non-monotone IFP bodies. The translation encodes ifp(v, E) as the
//     flat recursion p ← E[v:=p], equivalent to the inflationary operator
//     only when v occurs positively in E (counterexample: ifp(v, diff(a, v))).
//
//   - Recursive names under a double subtrahend. The algebra computes with
//     exact sets, so double negation cancels and the occurrence is
//     positive; the translation names the inner difference with an
//     auxiliary predicate whose three-valued well-founded evaluation keeps
//     both negations. def s = diff(m, diff(a, s)) is the minimal witness:
//     m∖a-elements are certain natively but undefined deductively.
func coreWFComparable(p *core.Program) bool {
	rec := map[string]bool{}
	for _, d := range p.Defs {
		rec[d.Name] = true
	}
	for _, d := range p.Defs {
		if !algebra.IsPositiveIFP(d.Body) || deepNegRec(d.Body, rec, 0) {
			return false
		}
	}
	return true
}

// deepNegRec reports whether any recursive name — a defined set or an
// enclosing IFP variable — occurs in e under two or more difference
// subtrahends; depth counts the subtrahend nesting accumulated so far.
func deepNegRec(e algebra.Expr, rec map[string]bool, depth int) bool {
	switch ee := e.(type) {
	case algebra.Rel:
		return depth >= 2 && rec[ee.Name]
	case algebra.Lit:
		return false
	case algebra.Union:
		return deepNegRec(ee.L, rec, depth) || deepNegRec(ee.R, rec, depth)
	case algebra.Diff:
		return deepNegRec(ee.L, rec, depth) || deepNegRec(ee.R, rec, depth+1)
	case algebra.Product:
		return deepNegRec(ee.L, rec, depth) || deepNegRec(ee.R, rec, depth)
	case algebra.Select:
		return deepNegRec(ee.Of, rec, depth)
	case algebra.Map:
		return deepNegRec(ee.Of, rec, depth)
	case algebra.IFP:
		inner := make(map[string]bool, len(rec)+1)
		for k := range rec {
			inner[k] = true
		}
		inner[ee.Var] = true
		return deepNegRec(ee.Body, inner, depth)
	case algebra.Flip:
		return deepNegRec(ee.E, rec, depth)
	case algebra.Call:
		// Inlining substitutes arguments into unknown polarity contexts, so
		// any recursive name inside an argument is conservatively too deep.
		for _, a := range ee.Args {
			for _, r := range algebra.FreeRels(a) {
				if rec[r] {
					return true
				}
			}
		}
		return false
	}
	return false
}
