package diffcheck

import (
	"fmt"

	"algrec/internal/value"
)

// Fault selects a deliberate bug to plant in one side of an oracle pair.
// Faults exist to validate the harness itself: a differential fuzzer that
// has never caught anything proves nothing, so the tests (and cmd/fuzzdiff
// -inject) plant a fault, confirm the oracle catches it, and confirm the
// shrinker reduces the witness to a handful of atoms.
type Fault uint8

const (
	// FaultNone plants nothing; the shipped default.
	FaultNone Fault = iota
	// FaultDropMax drops the greatest element from the semi-naive side of
	// the expr-seminaive oracle whenever the result has at least two
	// elements — the observable signature of a delta-window off-by-one that
	// loses the last round's contribution.
	FaultDropMax
)

// String returns the fault's command-line name.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDropMax:
		return "drop-max"
	default:
		return "Fault(?)"
	}
}

// ParseFault parses a fault's command-line name.
func ParseFault(name string) (Fault, error) {
	switch name {
	case "", "none":
		return FaultNone, nil
	case "drop-max":
		return FaultDropMax, nil
	default:
		return FaultNone, fmt.Errorf("diffcheck: unknown fault %q (want none or drop-max)", name)
	}
}

// injected is the currently planted fault. Package-global rather than
// per-instance so the fuzz targets and the campaign driver share one switch;
// tests that plant faults must not run in parallel with each other.
var injected = FaultNone

// InjectFault plants a fault and returns a restore function, for
// defer-friendly use in tests.
func InjectFault(f Fault) (restore func()) {
	prev := injected
	injected = f
	return func() { injected = prev }
}

// CurrentFault returns the currently planted fault.
func CurrentFault() Fault { return injected }

// applyDropMax corrupts a set per FaultDropMax when that fault is planted.
func applyDropMax(s value.Set) value.Set {
	if injected != FaultDropMax || s.Len() < 2 {
		return s
	}
	elems := s.Elems()
	return value.NewSet(elems[:len(elems)-1]...)
}
