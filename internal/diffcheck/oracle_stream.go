package diffcheck

import (
	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/translate"
)

// The stream oracles pin the streaming execution runtime's contract: the
// per-budget NoStreaming switch (the cmd/bench -nostreaming ablation)
// changes cost only, never results. Unlike the intern oracles, no
// process-wide flip is involved — NoStreaming travels in the Budget — so no
// serialization lock is needed; when the process itself runs with
// -nostreaming, both sides of the pair materialize and the oracle degrades
// to a (still sound) self-comparison.

// noStreaming returns the budget with the streaming runtime disabled — the
// materialized reference side of each stream oracle.
func noStreaming(b algebra.Budget) algebra.Budget {
	b.NoStreaming = true
	return b
}

// checkExprStream evaluates one expression through the streaming pipeline
// runtime and through full operator-by-operator materialization; the
// planned pushdown/hash-join iterators must not change the value.
func checkExprStream(e algebra.Expr, db algebra.DB) error {
	const oracle = "expr-stream"
	st, errSt := algebra.NewEvaluator(db, ExprBudget).Eval(e)
	mat, errMat := algebra.NewEvaluator(db, noStreaming(ExprBudget)).Eval(e)
	if done, err := pairErr(oracle, "streaming", "materialized", errSt, errMat); done {
		return err
	}
	return diffSets(oracle, "streaming vs materialized result", st, mat)
}

// checkDlogStream translates one free-polarity program to algebra=
// (Proposition 6.1) and evaluates its valid model with and without the
// streaming runtime: the three-valued dual evaluator must compute identical
// certain and possible parts either way.
func checkDlogStream(p *datalog.Program) error {
	const oracle = "dlog-stream"
	cp, db, errT := translate.DatalogToCore(p)
	if errT != nil {
		return nil // translation gap: not comparable
	}
	st, errSt := core.EvalValid(cp, db, ExprBudget)
	mat, errMat := core.EvalValid(cp, db, noStreaming(ExprBudget))
	if done, err := pairErr(oracle, "streaming valid", "materialized valid", errSt, errMat); done {
		return err
	}
	if err := diffSetMaps(oracle, "certain (lower) part", st.Lower, mat.Lower); err != nil {
		return err
	}
	return diffSetMaps(oracle, "possible (upper) part", st.Upper, mat.Upper)
}
