package diffcheck

import (
	"testing"

	"algrec/internal/randgen"
)

// TestStreamOracleSweep is the streaming ≡ materialized property test: a
// deeper seed sweep than TestOraclesCleanSweep over the two stream oracles,
// at the generator sizes where randgen's joinPipeline shapes (multi-leaf
// products with cross-leaf keys and pushable conjuncts) appear often. Any
// divergence is a planner or executor bug — pruning that dropped a row the
// complete test accepts, or a key encoding that separated equal values.
func TestStreamOracleSweep(t *testing.T) {
	for _, name := range []string{"expr-stream", "dlog-stream"} {
		o, ok := ByName(name)
		if !ok {
			t.Fatalf("oracle %q not registered", name)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 150; seed++ {
				g := randgen.New(seed, randgen.Config{Size: 1 + int(seed%4)})
				in := Generate(o, g)
				if err := in.Check(); err != nil {
					t.Fatalf("seed %d: %v\ninstance:\n%s", seed, err, in.Render())
				}
			}
		})
	}
}
