package diffcheck

import (
	"testing"

	"algrec/internal/randgen"
)

// TestIDSetOracleSweep is the id-space ≡ value-space property test: a deeper
// seed sweep than TestOraclesCleanSweep over the two idset oracles. The expr
// side draws IFP-guaranteed instances so every seed actually enters a
// fixpoint; any divergence is a kernel or compiler bug — a galloping merge
// that dropped an ID, a const-skip that was unsound for the body shape, or a
// join index that went stale across rounds.
func TestIDSetOracleSweep(t *testing.T) {
	for _, name := range []string{"expr-idset", "dlog-idset"} {
		o, ok := ByName(name)
		if !ok {
			t.Fatalf("oracle %q not registered", name)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 150; seed++ {
				g := randgen.New(seed, randgen.Config{Size: 1 + int(seed%4)})
				in := Generate(o, g)
				if err := in.Check(); err != nil {
					t.Fatalf("seed %d: %v\ninstance:\n%s", seed, err, in.Render())
				}
			}
		})
	}
}
