package diffcheck

import (
	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/translate"
)

// The idset oracles pin the ID-native delta fixpoint kernels' contract: the
// per-budget NoIDSets switch (the cmd/bench -noidsets ablation) changes cost
// only, never results. Like NoStreaming — and unlike the intern oracles — no
// process-wide flip is involved, so no serialization lock is needed; when
// interning itself is disabled process-wide the ID engine declines every
// fixpoint and the oracle degrades to a (still sound) self-comparison.

// noIDSets returns the budget with the ID-native fixpoint kernels disabled —
// the value-space reference side of each idset oracle.
func noIDSets(b algebra.Budget) algebra.Budget {
	b.NoIDSets = true
	return b
}

// checkExprIDSet evaluates one IFP-bearing expression with the ID-native
// delta kernels enabled and with the value-space delta rounds; the galloping
// ID kernels and the per-fixpoint join index must not change the value.
func checkExprIDSet(e algebra.Expr, db algebra.DB) error {
	const oracle = "expr-idset"
	id, errID := algebra.NewEvaluator(db, ExprBudget).Eval(e)
	vs, errVS := algebra.NewEvaluator(db, noIDSets(ExprBudget)).Eval(e)
	if done, err := pairErr(oracle, "id-space", "value-space", errID, errVS); done {
		return err
	}
	return diffSets(oracle, "id-space vs value-space result", id, vs)
}

// checkDlogIDSet translates one free-polarity program to algebra=
// (Proposition 6.1) and evaluates its valid model with and without the
// ID-native kernels: the three-valued dual evaluator must compute identical
// certain and possible parts either way.
func checkDlogIDSet(p *datalog.Program) error {
	const oracle = "dlog-idset"
	cp, db, errT := translate.DatalogToCore(p)
	if errT != nil {
		return nil // translation gap: not comparable
	}
	id, errID := core.EvalValid(cp, db, ExprBudget)
	vs, errVS := core.EvalValid(cp, db, noIDSets(ExprBudget))
	if done, err := pairErr(oracle, "id-space valid", "value-space valid", errID, errVS); done {
		return err
	}
	if err := diffSetMaps(oracle, "certain (lower) part", id.Lower, vs.Lower); err != nil {
		return err
	}
	return diffSetMaps(oracle, "possible (upper) part", id.Upper, vs.Upper)
}
