package diffcheck

import (
	"strings"
	"testing"

	"algrec/internal/datalog"
	"algrec/internal/randgen"
)

// findDiverging sweeps seeds until the oracle reports a divergence,
// returning the instance and its seed.
func findDiverging(t *testing.T, o *Oracle, maxSeed int64) *Instance {
	t.Helper()
	for seed := int64(0); seed < maxSeed; seed++ {
		in := Generate(o, randgen.New(seed, randgen.Config{Size: 3}))
		if _, ok := IsDivergence(in.Check()); ok {
			return in
		}
	}
	t.Fatalf("no divergence for oracle %q in %d seeds", o.Name, maxSeed)
	return nil
}

// TestShrinkPlantedFault is the end-to-end acceptance check of the
// harness: plant the delta-window fault, catch a divergence, and shrink the
// witness to at most 10 atoms while it keeps diverging.
func TestShrinkPlantedFault(t *testing.T) {
	defer InjectFault(FaultDropMax)()
	o, _ := ByName("expr-seminaive")
	in := findDiverging(t, o, 40)
	small := in.Shrink()
	if small.Size() > in.Size() {
		t.Fatalf("shrinking grew the instance: %d -> %d", in.Size(), small.Size())
	}
	if _, ok := IsDivergence(small.Check()); !ok {
		t.Fatalf("shrunk instance no longer diverges:\n%s", small.Render())
	}
	if small.Size() > 10 {
		t.Fatalf("shrunk witness still has %d atoms, want <= 10:\n%s", small.Size(), small.Render())
	}
}

// TestShrinkNonDiverging checks that a passing instance is returned as-is.
func TestShrinkNonDiverging(t *testing.T) {
	o, _ := ByName("expr-seminaive")
	in := Generate(o, randgen.New(3, randgen.Config{Size: 2}))
	if err := in.Check(); err != nil {
		t.Fatalf("instance unexpectedly diverges: %v", err)
	}
	if got := in.Shrink(); got != in {
		t.Fatal("Shrink rewrote a non-diverging instance")
	}
}

// TestShrinkDatalog drives the deductive shrinker with a synthetic oracle
// that "diverges" whenever the program still derives anything for p: the
// shrinker must reduce a whole generated program to a single-literal core
// while keeping every intermediate candidate safe.
func TestShrinkDatalog(t *testing.T) {
	synthetic := &Oracle{Name: "synthetic-p", Doc: "test oracle", Kind: KindDatalogFree,
		checkDatalog: func(p *datalog.Program) error {
			if err := datalog.CheckProgramSafe(p); err != nil {
				t.Fatalf("shrinker offered an unsafe candidate: %v\n%s", err, p)
			}
			for _, r := range p.Rules {
				if r.Head.Pred == "p" {
					return diverge("synthetic-p", "program still mentions p")
				}
			}
			return nil
		}}
	for seed := int64(0); seed < 20; seed++ {
		in := Generate(synthetic, randgen.New(seed, randgen.Config{Size: 3}))
		if _, ok := IsDivergence(in.Check()); !ok {
			continue // this seed derived nothing for p
		}
		small := in.Shrink()
		if _, ok := IsDivergence(small.Check()); !ok {
			t.Fatalf("seed %d: shrunk instance no longer diverges", seed)
		}
		if small.Size() > 2 {
			t.Errorf("seed %d: want a near-minimal program (size <= 2), got size %d:\n%s",
				seed, small.Size(), small.Render())
		}
		if !strings.Contains(small.Render(), "p") {
			t.Errorf("seed %d: shrunk program lost the diverging predicate:\n%s", seed, small.Render())
		}
		return
	}
	t.Fatal("no seed produced a program deriving p")
}

// TestShrinkExprCandidatesWellFormed checks the expression rewriter: every
// candidate of a generated instance has strictly smaller or equal size and
// renders without panicking.
func TestShrinkExprCandidatesWellFormed(t *testing.T) {
	o, _ := ByName("expr-seminaive")
	for seed := int64(0); seed < 10; seed++ {
		in := Generate(o, randgen.New(seed, randgen.Config{Size: 3}))
		for _, c := range in.candidates() {
			if c.Render() == "" {
				t.Fatalf("seed %d: empty candidate rendering", seed)
			}
		}
	}
}
