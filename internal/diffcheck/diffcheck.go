// Package diffcheck is the differential oracle layer over the repository's
// theorem inventory: it runs one random instance (from internal/randgen)
// through paired evaluation pipelines that the paper — or an engine
// invariant — proves equivalent, and demands bit-identical results.
//
// The oracle matrix pairs, per instance family:
//
//   - expressions: the semi-naive delta IFP engine vs the naive engine
//     (Budget.NoSemiNaive), and the Theorem 3.5 constructive IFP elimination
//     vs direct evaluation;
//   - algebra= programs: the scheduled semi-naive core engines vs the naive
//     reference engines, for both the valid and the inflationary semantics,
//     and the valid interpretation vs the well-founded reading through the
//     Proposition 5.4 deductive translation;
//   - deductive programs: the Proposition 6.1/Theorem 6.2 algebra=
//     translation vs direct valid evaluation, the Theorem 4.3 positive-IFP
//     translation vs stratified evaluation, semi-naive vs naive minimal
//     models (plus the inflationary and valid collapses on positive
//     programs), the three-way stratified/well-founded/valid agreement on
//     stratifiable programs, and sequential vs parallel stable-model search;
//   - engine ablations: the hash-consed interning switch (expr-intern,
//     dlog-intern), the streaming pipeline runtime (expr-stream,
//     dlog-stream) and the ID-native delta fixpoint kernels (expr-idset,
//     dlog-idset) must change cost only, never results;
//   - incremental view maintenance: replaying a random insert/delete
//     schedule through the counting/DRed delta engine (internal/ivm) must
//     match from-scratch recompute (Budget.NoIVM) bit-for-bit, per-step
//     deltas and outcomes alike (dlog-ivm).
//
// A disagreement is reported as a *Divergence. Resource exhaustion (a
// budget error from either pipeline) skips the instance: the budgets turn
// the paper's undecidability concessions into typed errors, and a pipeline
// hitting its cap earlier than its partner is not a soundness bug. Both
// pipelines failing is likewise agreement.
//
// The package also provides greedy instance minimization (Instance.Shrink)
// and a deliberate fault hook (InjectFault) used to validate that the
// harness catches and shrinks a planted engine bug — see cmd/fuzzdiff for
// campaign driving and docs/fuzzing.md for operation.
package diffcheck

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/randgen"
	"algrec/internal/value"
)

// Divergence reports that two pipelines the theorems prove equivalent
// disagreed on an instance. It is the only error kind Instance.Check
// returns; anything else an oracle encounters is a skip.
type Divergence struct {
	// Oracle is the name of the oracle pair that disagreed.
	Oracle string
	// Detail describes the disagreement, including both sides' values.
	Detail string
}

// Error implements error.
func (d *Divergence) Error() string { return "diffcheck: " + d.Oracle + ": " + d.Detail }

// diverge builds a *Divergence.
func diverge(oracle, format string, args ...any) error {
	return &Divergence{Oracle: oracle, Detail: fmt.Sprintf(format, args...)}
}

// IsDivergence reports whether err is a *Divergence, returning it.
func IsDivergence(err error) (*Divergence, bool) {
	var d *Divergence
	if errors.As(err, &d) {
		return d, true
	}
	return nil, false
}

// Kind identifies the instance family an oracle consumes.
type Kind uint8

// The instance families. Core instances come in two flavors because the
// Flip polarity annotation is engine-visible but translation-transparent:
// oracles that cross the translation boundary need Flip-free programs.
const (
	// KindExpr is a database plus an algebra/IFP-algebra expression.
	KindExpr Kind = iota
	// KindIFPExpr is KindExpr with at least one IFP operator guaranteed.
	KindIFPExpr
	// KindCore is a database plus an algebra= program (may contain Flip).
	KindCore
	// KindCoreNoFlip is KindCore restricted to Flip-free programs.
	KindCoreNoFlip
	// KindDatalogPositive is a negation-free deductive program.
	KindDatalogPositive
	// KindDatalogStratified is a stratifiable deductive program.
	KindDatalogStratified
	// KindDatalogFree is a deductive program with unrestricted safe negation.
	KindDatalogFree
	// KindDatalogIVM is a stratifiable deductive program plus a random
	// insert/delete schedule over its extensional schema.
	KindDatalogIVM
)

// Oracle is one differential oracle pair: a named equivalence with the
// instance family it consumes and the paired-pipeline check.
type Oracle struct {
	// Name identifies the oracle on command lines and in reports.
	Name string
	// Doc is a one-line statement of the equivalence being checked.
	Doc string
	// Kind is the instance family the oracle consumes.
	Kind Kind

	checkExpr    func(e algebra.Expr, db algebra.DB) error
	checkCore    func(p *core.Program, db algebra.DB) error
	checkDatalog func(p *datalog.Program) error
	checkDlogIVM func(p *datalog.Program, sched []randgen.FactBatch) error
}

// Oracles is the oracle matrix, in stable presentation order.
var Oracles = []*Oracle{
	{Name: "expr-seminaive", Kind: KindExpr,
		Doc:       "semi-naive delta IFP engine computes the same sets as the naive engine",
		checkExpr: checkExprSemiNaive},
	{Name: "expr-ifp-elim", Kind: KindIFPExpr,
		Doc:       "Theorem 3.5: eliminating IFP through the deductive pipeline preserves the value",
		checkExpr: checkExprIFPElim},
	{Name: "core-valid", Kind: KindCore,
		Doc:       "scheduled semi-naive valid evaluation matches the naive Γ alternation",
		checkCore: checkCoreValid},
	{Name: "core-inflationary", Kind: KindCore,
		Doc:       "scheduled inflationary evaluation matches naive Jacobi rounds",
		checkCore: checkCoreInflationary},
	{Name: "core-wellfounded", Kind: KindCoreNoFlip,
		Doc:       "valid interpretation matches the well-founded reading via Proposition 5.4",
		checkCore: checkCoreWellFounded},
	{Name: "dlog-theorem62", Kind: KindDatalogFree,
		Doc:          "Theorem 6.2: the algebra= translation preserves certain and undefined parts",
		checkDatalog: checkDlogTheorem62},
	{Name: "dlog-theorem43", Kind: KindDatalogStratified,
		Doc:          "Theorem 4.3: the positive-IFP translation matches stratified evaluation",
		checkDatalog: checkDlogTheorem43},
	{Name: "dlog-minimal", Kind: KindDatalogPositive,
		Doc:          "positive programs: semi-naive = naive minimal = inflationary = valid",
		checkDatalog: checkDlogMinimal},
	{Name: "dlog-stratified", Kind: KindDatalogStratified,
		Doc:          "stratifiable programs: stratified = well-founded = valid, all total",
		checkDatalog: checkDlogStratified},
	{Name: "dlog-stable", Kind: KindDatalogFree,
		Doc:          "stable-model search is worker-count independent",
		checkDatalog: checkDlogStable},
	{Name: "expr-intern", Kind: KindExpr,
		Doc:       "hash-consed interning changes cost only: interned and string-keyed evaluation agree",
		checkExpr: checkExprIntern},
	{Name: "dlog-intern", Kind: KindDatalogFree,
		Doc:          "interned grounding is bit-for-bit the string-keyed ground program, well-founded models equal",
		checkDatalog: checkDlogIntern},
	{Name: "expr-stream", Kind: KindExpr,
		Doc:       "streaming pipeline runtime changes cost only: streamed and materialized evaluation agree",
		checkExpr: checkExprStream},
	{Name: "dlog-stream", Kind: KindDatalogFree,
		Doc:          "valid models through Prop 6.1 agree with and without the streaming runtime",
		checkDatalog: checkDlogStream},
	{Name: "expr-idset", Kind: KindIFPExpr,
		Doc:       "ID-native delta kernels change cost only: id-space and value-space fixpoints agree",
		checkExpr: checkExprIDSet},
	{Name: "dlog-idset", Kind: KindDatalogFree,
		Doc:          "valid models through Prop 6.1 agree with and without the ID-native kernels",
		checkDatalog: checkDlogIDSet},
	{Name: "dlog-ivm", Kind: KindDatalogIVM,
		Doc:          "incremental view maintenance replays a mutation schedule bit-for-bit like from-scratch recompute",
		checkDlogIVM: checkDlogIVM},
	{Name: "dlog-storage", Kind: KindDatalogIVM,
		Doc:          "memory and disk storage backends stay bit-for-bit identical under a mutation schedule, through evaluation and reopen",
		checkDlogIVM: checkDlogStorage},
}

// ByName returns the oracle with the given name.
func ByName(name string) (*Oracle, bool) {
	for _, o := range Oracles {
		if o.Name == name {
			return o, true
		}
	}
	return nil, false
}

// ExprBudget bounds the algebra/core pipelines inside every oracle. The caps
// are deliberately modest: instances are small, and a cheap cap turns the
// occasional divergent fixpoint into a skip instead of a stall.
var ExprBudget = algebra.Budget{MaxIFPIters: 500, MaxSetSize: 100_000, MaxDepth: 200}

// GroundBudget bounds grounding inside every deductive pipeline.
var GroundBudget = ground.Budget{MaxAtoms: 60_000, MaxRules: 250_000}

// noSemiNaive returns the budget with the semi-naive engines disabled — the
// reference side of every engine-pair oracle.
func noSemiNaive(b algebra.Budget) algebra.Budget {
	b.NoSemiNaive = true
	return b
}

// skippable reports whether the error is resource exhaustion (an algebra or
// grounding budget) rather than a comparable outcome.
func skippable(err error) bool {
	var be *ground.BudgetError
	return errors.Is(err, algebra.ErrBudget) || errors.As(err, &be)
}

// pairErr folds the error results of two paired pipelines into the oracle
// verdict for the error dimension: skip (nil, done=true) when either side
// exhausted a budget or both failed, a Divergence when exactly one side
// failed outright, and done=false when both succeeded and the caller should
// compare values.
func pairErr(oracle, left, right string, errL, errR error) (done bool, err error) {
	if errL == nil && errR == nil {
		return false, nil
	}
	if skippable(errL) || skippable(errR) {
		return true, nil
	}
	if errL != nil && errR != nil {
		return true, nil // agreeing failure (e.g. both reject the instance)
	}
	if errL != nil {
		return true, diverge(oracle, "%s failed where %s succeeded: %v", left, right, errL)
	}
	return true, diverge(oracle, "%s failed where %s succeeded: %v", right, left, errR)
}

// diffSets returns a Divergence when two sets differ, naming what they are.
func diffSets(oracle, what string, a, b value.Set) error {
	if value.Equal(a, b) {
		return nil
	}
	return diverge(oracle, "%s differs:\n  left:  %v\n  right: %v\n  left−right: %v\n  right−left: %v",
		what, a, b, a.Diff(b), b.Diff(a))
}

// diffSetMaps compares two named-set maps key by key (and requires equal key
// sets).
func diffSetMaps(oracle, what string, a, b map[string]value.Set) error {
	names := map[string]bool{}
	for k := range a {
		names[k] = true
	}
	for k := range b {
		names[k] = true
	}
	keys := make([]string, 0, len(names))
	for k := range names {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		av, aok := a[k]
		bv, bok := b[k]
		if aok != bok {
			return diverge(oracle, "%s: set %q present on one side only", what, k)
		}
		if err := diffSets(oracle, fmt.Sprintf("%s: set %q", what, k), av, bv); err != nil {
			return err
		}
	}
	return nil
}

// Instance is one generated instance bound to its oracle. Exactly the
// fields matching the oracle's Kind are set.
type Instance struct {
	// Oracle is the oracle pair this instance feeds.
	Oracle *Oracle
	// Expr and DB are set for the expression kinds.
	Expr algebra.Expr
	// Core and DB are set for the algebra= kinds.
	Core *core.Program
	// Dlog is set for the deductive kinds.
	Dlog *datalog.Program
	// Sched is the mutation schedule for KindDatalogIVM.
	Sched []randgen.FactBatch
	// DB is the database for the expression and algebra= kinds.
	DB algebra.DB
}

// Generate draws the oracle's instance family from the generator.
func Generate(o *Oracle, g *randgen.Gen) *Instance {
	in := &Instance{Oracle: o}
	switch o.Kind {
	case KindExpr:
		ei := g.ExprInstance()
		in.Expr, in.DB = ei.Expr, ei.DB
	case KindIFPExpr:
		ei := g.IFPExprInstance()
		in.Expr, in.DB = ei.Expr, ei.DB
	case KindCore:
		ci := g.CoreInstance(true)
		in.Core, in.DB = ci.Prog, ci.DB
	case KindCoreNoFlip:
		ci := g.CoreInstance(false)
		in.Core, in.DB = ci.Prog, ci.DB
	case KindDatalogPositive:
		in.Dlog = g.Datalog(randgen.DlogPositive)
	case KindDatalogStratified:
		in.Dlog = g.Datalog(randgen.DlogStratified)
	case KindDatalogFree:
		in.Dlog = g.Datalog(randgen.DlogFree)
	case KindDatalogIVM:
		// The schedule draws from the same Gen after the program, extending
		// the deterministic stream without touching other kinds' output.
		in.Dlog = g.Datalog(randgen.DlogStratified)
		in.Sched = g.FactSchedule()
	default:
		panic(fmt.Sprintf("diffcheck: unknown kind %d", o.Kind))
	}
	return in
}

// Check runs the instance through the oracle's paired pipelines. It returns
// nil when they agree (or the instance was skipped on a budget), and a
// *Divergence when they disagree.
func (in *Instance) Check() error {
	switch {
	case in.Oracle.checkExpr != nil:
		return in.Oracle.checkExpr(in.Expr, in.DB)
	case in.Oracle.checkCore != nil:
		return in.Oracle.checkCore(in.Core, in.DB)
	case in.Oracle.checkDlogIVM != nil:
		return in.Oracle.checkDlogIVM(in.Dlog, in.Sched)
	default:
		return in.Oracle.checkDatalog(in.Dlog)
	}
}

// Size is the instance's size in atoms: expression AST nodes plus database
// elements for the algebraic kinds, rules plus body literals for the
// deductive kinds. Shrinking minimizes this metric.
func (in *Instance) Size() int {
	switch {
	case in.Expr != nil:
		return countNodes(in.Expr) + dbElems(in.DB)
	case in.Core != nil:
		n := 0
		for _, d := range in.Core.Defs {
			n += 1 + countNodes(d.Body)
		}
		return n + dbElems(in.DB)
	default:
		n := 0
		for _, r := range in.Dlog.Rules {
			n += 1 + len(r.Body)
		}
		for _, b := range in.Sched {
			n += len(b.Insert) + len(b.Delete)
		}
		return n
	}
}

// Render returns a stable, human-readable dump of the instance for repro
// files: database relations in sorted name order, then the program or
// expression text.
func (in *Instance) Render() string {
	var sb strings.Builder
	if in.DB != nil {
		names := make([]string, 0, len(in.DB))
		for n := range in.DB {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&sb, "%s = %s\n", n, in.DB[n])
		}
	}
	switch {
	case in.Expr != nil:
		fmt.Fprintf(&sb, "expr: %s\n", in.Expr)
	case in.Core != nil:
		sb.WriteString(in.Core.String())
	default:
		sb.WriteString(in.Dlog.String())
		if len(in.Sched) > 0 {
			sb.WriteString(randgen.RenderSchedule(in.Sched))
		}
	}
	return sb.String()
}

// dbElems counts the elements across all database relations.
func dbElems(db algebra.DB) int {
	n := 0
	for _, s := range db {
		n += s.Len()
	}
	return n
}
