package diffcheck

import (
	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/translate"
)

// checkExprSemiNaive runs one expression through the delta (semi-naive) IFP
// engine and through the naive engine, demanding identical sets. This is the
// engine pair every IFP in the repository rides on; the delta side is also
// where FaultDropMax plants its corruption.
func checkExprSemiNaive(e algebra.Expr, db algebra.DB) error {
	const oracle = "expr-seminaive"
	naive, errN := algebra.NewEvaluator(db, noSemiNaive(ExprBudget)).Eval(e)
	delta, errD := algebra.NewEvaluator(db, ExprBudget).Eval(e)
	if done, err := pairErr(oracle, "naive", "semi-naive", errN, errD); done {
		return err
	}
	delta = applyDropMax(delta)
	return diffSets(oracle, "IFP engine result", naive, delta)
}

// checkExprIFPElim runs an IFP expression directly and through the Theorem
// 3.5 pipeline — translate to deduction (Prop 5.1), step-index away the
// recursion (Prop 5.2), translate back to IFP-free algebra= (Prop 6.1) —
// then evaluates the translated program under the valid semantics. The
// theorem demands the result be total and equal to the direct value. A
// translation error is a skip (a feature gap, not an engine disagreement);
// anything after a successful translation must line up.
func checkExprIFPElim(e algebra.Expr, db algebra.DB) error {
	const oracle = "expr-ifp-elim"
	direct, errD := algebra.NewEvaluator(db, ExprBudget).Eval(e)
	cp, cdb, resultName, errT := translate.EliminateIFP(e, db)
	if errT != nil {
		return nil // translation gap or grounding budget: not comparable
	}
	res, errV := core.EvalValid(cp, cdb, ExprBudget)
	if done, err := pairErr(oracle, "direct eval", "eliminated program", errD, errV); done {
		return err
	}
	if !res.IsTotal(resultName) {
		return diverge(oracle, "eliminated program left %q three-valued: undef %v",
			resultName, res.UndefElems(resultName))
	}
	return diffSets(oracle, "IFP value", direct, res.Set(resultName))
}
