package diffcheck

import (
	"testing"

	"algrec/internal/randgen"
)

// fuzzOracle wires one oracle pair as a native fuzz target. The fuzzed
// input is the generator's (seed, size) pair: Go's fuzzer mutates those two
// scalars, and randgen turns them deterministically into well-typed
// instances, so every mutation is a valid instance and the corpus stays
// two-line files. On divergence the witness is shrunk before reporting, so
// the failure message itself is the repro.
//
// The committed corpus under testdata/fuzz/<target> is replayed by plain
// `go test` (no -fuzz flag needed), which makes every corpus entry a pinned
// regression test; `go test -fuzz <target>` explores beyond it.
func fuzzOracle(f *testing.F, name string) {
	o, ok := ByName(name)
	if !ok {
		f.Fatalf("unknown oracle %q", name)
	}
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, byte(seed))
	}
	f.Fuzz(func(t *testing.T, seed int64, size byte) {
		g := randgen.New(seed, randgen.Config{Size: 1 + int(size)%4})
		in := Generate(o, g)
		err := in.Check()
		if err == nil {
			return
		}
		small := in.Shrink()
		t.Fatalf("%v\nshrunk witness (size %d):\n%s\noriginal instance:\n%s",
			err, small.Size(), small.Render(), in.Render())
	})
}

func FuzzExprSemiNaive(f *testing.F)    { fuzzOracle(f, "expr-seminaive") }
func FuzzExprIFPElim(f *testing.F)      { fuzzOracle(f, "expr-ifp-elim") }
func FuzzCoreValid(f *testing.F)        { fuzzOracle(f, "core-valid") }
func FuzzCoreInflationary(f *testing.F) { fuzzOracle(f, "core-inflationary") }
func FuzzCoreWellFounded(f *testing.F)  { fuzzOracle(f, "core-wellfounded") }
func FuzzDlogTheorem62(f *testing.F)    { fuzzOracle(f, "dlog-theorem62") }
func FuzzDlogTheorem43(f *testing.F)    { fuzzOracle(f, "dlog-theorem43") }
func FuzzDlogMinimal(f *testing.F)      { fuzzOracle(f, "dlog-minimal") }
func FuzzDlogStratified(f *testing.F)   { fuzzOracle(f, "dlog-stratified") }
func FuzzDlogStable(f *testing.F)       { fuzzOracle(f, "dlog-stable") }
func FuzzExprIntern(f *testing.F)       { fuzzOracle(f, "expr-intern") }
func FuzzDlogIntern(f *testing.F)       { fuzzOracle(f, "dlog-intern") }
func FuzzExprStream(f *testing.F)       { fuzzOracle(f, "expr-stream") }
func FuzzDlogStream(f *testing.F)       { fuzzOracle(f, "dlog-stream") }
func FuzzExprIDSet(f *testing.F)        { fuzzOracle(f, "expr-idset") }
func FuzzDlogIDSet(f *testing.F)        { fuzzOracle(f, "dlog-idset") }
func FuzzDlogIVM(f *testing.F)          { fuzzOracle(f, "dlog-ivm") }
func FuzzDlogStorage(f *testing.F)      { fuzzOracle(f, "dlog-storage") }
