package diffcheck

import (
	"encoding/json"
	"fmt"
	"reflect"

	"algrec/internal/datalog"
	"algrec/internal/ivm"
	"algrec/internal/query"
	"algrec/internal/randgen"
)

// The dlog-ivm oracle pins the incremental view maintenance contract
// (internal/ivm): replaying an arbitrary insert/delete schedule through the
// counting/DRed delta engine must leave the maintained outcome — and every
// per-step ResultDelta — bit-for-bit identical to a view that re-executes
// the plan from scratch on each batch (Budget.NoIVM, the cmd/bench -noivm
// ablation). The A/B is per-view, so no process-wide flip or serialization
// lock is involved; when interning is disabled process-wide both sides run
// the recompute fallback and the oracle degrades to a (still sound)
// self-comparison.

// checkDlogIVM builds one incremental and one recompute view of the same
// stratified program and replays the schedule through both, comparing each
// step's delta and outcome. A budget error on either side skips the
// instance (a half-maintained incremental view is poisoned, not wrong).
func checkDlogIVM(p *datalog.Program, sched []randgen.FactBatch) error {
	const oracle = "dlog-ivm"
	plan := &query.Plan{
		Language:  query.LangDatalog,
		Semantics: query.SemStratified,
		Source:    p.String(),
		Program:   p,
	}
	opts := func(noIVM bool) query.Options {
		b := ExprBudget
		b.NoIVM = noIVM
		return query.Options{Budget: b, Ground: GroundBudget}
	}
	inc, errI := ivm.New(plan, nil, opts(false))
	rec, errR := ivm.New(plan, nil, opts(true))
	if done, err := pairErr(oracle, "incremental build", "recompute build", errI, errR); done {
		return err
	}
	oI, _ := inc.Outcome()
	oR, _ := rec.Outcome()
	if !reflect.DeepEqual(oI, oR) {
		return diverge(oracle, "initial outcome mismatch (%s vs %s):\nincremental: %s\nrecompute:   %s",
			inc.Mode(), rec.Mode(), renderJSON(oI.Datalog), renderJSON(oR.Datalog))
	}
	for step, b := range sched {
		dI, errI := inc.Apply(b.Insert, b.Delete)
		dR, errR := rec.Apply(b.Insert, b.Delete)
		left := fmt.Sprintf("incremental step %d", step)
		right := fmt.Sprintf("recompute step %d", step)
		if done, err := pairErr(oracle, left, right, errI, errR); done {
			return err
		}
		if !reflect.DeepEqual(dI, dR) {
			return diverge(oracle, "step %d (%s) delta mismatch:\nincremental: %s\nrecompute:   %s",
				step, b, renderJSON(dI), renderJSON(dR))
		}
		oI, errI := inc.Outcome()
		oR, errR := rec.Outcome()
		if done, err := pairErr(oracle, left+" outcome", right+" outcome", errI, errR); done {
			return err
		}
		if !reflect.DeepEqual(oI, oR) {
			return diverge(oracle, "step %d (%s) outcome mismatch:\nincremental: %s\nrecompute:   %s",
				step, b, renderJSON(oI.Datalog), renderJSON(oR.Datalog))
		}
	}
	return nil
}

// renderJSON renders a delta or model for divergence messages; the ivm wire
// types carry JSON tags, which keeps the dump stable and diffable.
func renderJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%+v", v)
	}
	return string(b)
}
