package diffcheck

import (
	"testing"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/translate"
	"algrec/internal/value"
)

// pairs builds the diagonal relation {(v, v) : v in vs}.
func pairs(vs ...int64) value.Set {
	s := value.EmptySet
	for _, v := range vs {
		s = s.Insert(value.Pair(value.Int(v), value.Int(v)))
	}
	return s
}

// TestCoreWellFoundedScope pins the two fuzzer-found boundaries excluded
// from the core-wellfounded oracle: on each minimal witness the native
// valid interpretation and the translated well-founded reading genuinely
// differ, so the oracle must classify the program as out of scope — and
// must keep a plain single-negation recursion in scope.
func TestCoreWellFoundedScope(t *testing.T) {
	rel := func(n string) algebra.Expr { return algebra.Rel{Name: n} }
	db := algebra.DB{"m": pairs(0, 1, 2), "a": pairs(0)}

	cases := []struct {
		name       string
		body       algebra.Expr
		comparable bool
	}{
		// def s = diff(m, diff(a, s)): double subtrahend cancels for exact
		// sets but not through the translation's auxiliary predicate.
		{"double-subtrahend", algebra.Diff{L: rel("m"), R: algebra.Diff{L: rel("a"), R: rel("s")}}, false},
		// Same shape with the recursion through an IFP variable.
		{"double-subtrahend-ifp",
			algebra.IFP{Var: "v", Body: algebra.Diff{L: rel("m"), R: algebra.Diff{L: rel("a"), R: rel("v")}}}, false},
		// Non-monotone IFP: flat recursion is not the inflationary operator.
		{"non-monotone-ifp", algebra.IFP{Var: "v", Body: algebra.Diff{L: rel("m"), R: rel("v")}}, false},
		// Single negation over the recursion stays in scope.
		{"single-subtrahend", algebra.Diff{L: rel("m"), R: rel("s")}, true},
		{"positive-ifp", algebra.IFP{Var: "v", Body: algebra.Union{L: rel("a"), R: rel("v")}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &core.Program{Defs: []core.Def{{Name: "s", Body: tc.body}}}
			if got := coreWFComparable(p); got != tc.comparable {
				t.Fatalf("coreWFComparable = %v, want %v", got, tc.comparable)
			}
			if err := checkCoreWellFounded(p, db); err != nil {
				t.Fatalf("oracle reported a divergence: %v", err)
			}
			if tc.comparable {
				return
			}
			// Out-of-scope witnesses must actually differ across the
			// boundary — otherwise the scope exclusion is too wide.
			res, errV := core.EvalValid(p, db, ExprBudget)
			lower, upper, errW := translate.WellFoundedSets(p, db)
			if errV != nil || errW != nil {
				t.Skipf("engines rejected the witness: valid=%v wf=%v", errV, errW)
			}
			if value.Equal(res.Lower["s"], lower["s"]) && value.Equal(res.Upper["s"], upper["s"]) {
				t.Errorf("witness does not separate the semantics:\nvalid  lower=%v upper=%v\nwf     lower=%v upper=%v",
					res.Lower["s"], res.Upper["s"], lower["s"], upper["s"])
			}
		})
	}
}
