package diffcheck

import (
	"sort"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/randgen"
	"algrec/internal/value"
)

// Shrink greedily minimizes a diverging instance: it repeatedly tries
// one-step reductions (replace an expression node by a child or by EMPTY,
// drop a database element, drop a definition, drop a rule or body literal)
// and keeps any strictly smaller candidate that still diverges. The result
// still fails Check; instances that do not diverge are returned unchanged.
//
// Candidates with dangling relation names or unsafe rules are filtered
// before Check (see candidates); remaining uninteresting breakage
// self-filters because both pipelines reject it, which Check reports as
// agreement.
func (in *Instance) Shrink() *Instance {
	cur := in
	if _, diverging := IsDivergence(cur.Check()); !diverging {
		return cur
	}
	for {
		improved := false
		for _, cand := range cur.candidates() {
			if cand.Size() >= cur.Size() {
				continue
			}
			if _, diverging := IsDivergence(cand.Check()); diverging {
				cur, improved = cand, true
				break
			}
		}
		if !improved {
			return cur
		}
	}
}

// candidates returns every one-step reduction of the instance. Reductions
// that leave a relation name dangling are dropped by closed: stripping an
// IFP binder or a defining equation can free its variable, and the engines
// disagree only on how they reject such programs (core errors on the
// unknown relation, the deductive translation reads it as empty), which
// would surface as a bogus divergence rather than a smaller witness.
func (in *Instance) candidates() []*Instance {
	var out []*Instance
	add := func(c *Instance) {
		if c.closed() {
			out = append(out, c)
		}
	}
	switch {
	case in.Expr != nil:
		for _, e := range exprCandidates(in.Expr) {
			add(&Instance{Oracle: in.Oracle, Expr: e, DB: in.DB})
		}
		for _, db := range dbCandidates(in.DB) {
			add(&Instance{Oracle: in.Oracle, Expr: in.Expr, DB: db})
		}
	case in.Core != nil:
		for _, p := range coreCandidates(in.Core) {
			add(&Instance{Oracle: in.Oracle, Core: p, DB: in.DB})
		}
		for _, db := range dbCandidates(in.DB) {
			add(&Instance{Oracle: in.Oracle, Core: in.Core, DB: db})
		}
	default:
		for _, p := range dlogCandidates(in.Dlog) {
			add(&Instance{Oracle: in.Oracle, Dlog: p, Sched: in.Sched})
		}
		for _, s := range schedCandidates(in.Sched) {
			add(&Instance{Oracle: in.Oracle, Dlog: in.Dlog, Sched: s})
		}
	}
	return out
}

// schedCandidates returns every one-step reduction of a mutation schedule:
// drop one whole batch, or drop one inserted or deleted fact from a batch.
func schedCandidates(sched []randgen.FactBatch) [][]randgen.FactBatch {
	var out [][]randgen.FactBatch
	clone := func() []randgen.FactBatch {
		c := make([]randgen.FactBatch, len(sched))
		copy(c, sched)
		return c
	}
	for i := range sched {
		c := clone()
		out = append(out, append(c[:i:i], c[i+1:]...))
	}
	dropFact := func(fs []datalog.Fact, j int) []datalog.Fact {
		c := make([]datalog.Fact, 0, len(fs)-1)
		c = append(c, fs[:j]...)
		return append(c, fs[j+1:]...)
	}
	for i, b := range sched {
		for j := range b.Insert {
			c := clone()
			c[i].Insert = dropFact(b.Insert, j)
			out = append(out, c)
		}
		for j := range b.Delete {
			c := clone()
			c[i].Delete = dropFact(b.Delete, j)
			out = append(out, c)
		}
	}
	return out
}

// closed reports whether every free relation name of the instance resolves:
// to a database relation, a defined equation, or (inside a definition body)
// one of the definition's own parameters.
func (in *Instance) closed() bool {
	known := map[string]bool{}
	for n := range in.DB {
		known[n] = true
	}
	switch {
	case in.Expr != nil:
		for _, r := range algebra.FreeRels(in.Expr) {
			if !known[r] {
				return false
			}
		}
	case in.Core != nil:
		for _, d := range in.Core.Defs {
			known[d.Name] = true
		}
		for _, d := range in.Core.Defs {
			params := map[string]bool{}
			for _, p := range d.Params {
				params[p] = true
			}
			for _, r := range algebra.FreeRels(d.Body) {
				if !known[r] && !params[r] {
					return false
				}
			}
		}
	}
	return true
}

// children returns the set-valued subexpressions of an expression node.
func children(e algebra.Expr) []algebra.Expr {
	switch v := e.(type) {
	case algebra.Union:
		return []algebra.Expr{v.L, v.R}
	case algebra.Diff:
		return []algebra.Expr{v.L, v.R}
	case algebra.Product:
		return []algebra.Expr{v.L, v.R}
	case algebra.Select:
		return []algebra.Expr{v.Of}
	case algebra.Map:
		return []algebra.Expr{v.Of}
	case algebra.IFP:
		return []algebra.Expr{v.Body}
	case algebra.Flip:
		return []algebra.Expr{v.E}
	case algebra.Call:
		return v.Args
	default:
		return nil
	}
}

// rebuild reconstructs an expression node with replaced children, in the
// same order children returned them.
func rebuild(e algebra.Expr, kids []algebra.Expr) algebra.Expr {
	switch v := e.(type) {
	case algebra.Union:
		return algebra.Union{L: kids[0], R: kids[1]}
	case algebra.Diff:
		return algebra.Diff{L: kids[0], R: kids[1]}
	case algebra.Product:
		return algebra.Product{L: kids[0], R: kids[1]}
	case algebra.Select:
		return algebra.Select{Of: kids[0], Var: v.Var, Test: v.Test}
	case algebra.Map:
		return algebra.Map{Of: kids[0], Var: v.Var, Out: v.Out}
	case algebra.IFP:
		return algebra.IFP{Var: v.Var, Body: kids[0]}
	case algebra.Flip:
		return algebra.Flip{E: kids[0]}
	case algebra.Call:
		return algebra.Call{Name: v.Name, Args: kids}
	default:
		return e
	}
}

// countNodes counts the set-valued nodes of an expression; literal sets
// additionally count their elements, so replacing a literal by EMPTY is a
// strict reduction.
func countNodes(e algebra.Expr) int {
	if l, ok := e.(algebra.Lit); ok {
		return 1 + l.Set.Len()
	}
	n := 1
	for _, k := range children(e) {
		n += countNodes(k)
	}
	return n
}

// exprCandidates returns all one-step reductions of an expression: the node
// itself replaced by one of its children or by EMPTY, or the same reduction
// applied at any subexpression.
func exprCandidates(e algebra.Expr) []algebra.Expr {
	kids := children(e)
	out := append([]algebra.Expr{}, kids...)
	if l, isLit := e.(algebra.Lit); !isLit || l.Set.Len() > 0 {
		out = append(out, algebra.EmptyLit)
	}
	for i, k := range kids {
		for _, kc := range exprCandidates(k) {
			nk := append([]algebra.Expr{}, kids...)
			nk[i] = kc
			out = append(out, rebuild(e, nk))
		}
	}
	return out
}

// dbCandidates returns copies of the database with one element removed, in
// sorted relation order.
func dbCandidates(db algebra.DB) []algebra.DB {
	names := make([]string, 0, len(db))
	for n := range db {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []algebra.DB
	for _, n := range names {
		for _, el := range db[n].Elems() {
			nd := algebra.DB{}
			for k, s := range db {
				nd[k] = s
			}
			nd[n] = db[n].Diff(value.NewSet(el))
			out = append(out, nd)
		}
	}
	return out
}

// coreCandidates returns one-step reductions of an algebra= program: a
// definition dropped, or one definition body reduced.
func coreCandidates(p *core.Program) []*core.Program {
	var out []*core.Program
	for i := range p.Defs {
		q := &core.Program{Defs: append(append([]core.Def{}, p.Defs[:i]...), p.Defs[i+1:]...)}
		out = append(out, q)
	}
	for i, d := range p.Defs {
		for _, bc := range exprCandidates(d.Body) {
			defs := append([]core.Def{}, p.Defs...)
			defs[i] = core.Def{Name: d.Name, Params: d.Params, Body: bc}
			out = append(out, &core.Program{Defs: defs})
		}
	}
	return out
}

// dlogCandidates returns one-step reductions of a deductive program: a rule
// (or fact) dropped, or one body literal dropped. Candidates that violate
// Definition 4.1 safety are filtered here so every oracle sees well-formed
// programs.
func dlogCandidates(p *datalog.Program) []*datalog.Program {
	var out []*datalog.Program
	add := func(q *datalog.Program) {
		if datalog.CheckProgramSafe(q) == nil {
			out = append(out, q)
		}
	}
	for i := range p.Rules {
		add(&datalog.Program{Rules: append(append([]datalog.Rule{}, p.Rules[:i]...), p.Rules[i+1:]...)})
	}
	for i, r := range p.Rules {
		for j := range r.Body {
			body := append(append([]datalog.Literal{}, r.Body[:j]...), r.Body[j+1:]...)
			rules := append([]datalog.Rule{}, p.Rules...)
			rules[i] = datalog.Rule{Head: r.Head, Body: body}
			add(&datalog.Program{Rules: rules})
		}
	}
	return out
}
