package diffcheck

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"sort"

	"algrec/internal/algebra"
	"algrec/internal/datalog"
	"algrec/internal/query"
	"algrec/internal/randgen"
	"algrec/internal/storage"
	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// The dlog-storage oracle pins the pluggable storage layer's cross-backend
// contract (internal/storage): replaying a random fact insert/delete
// schedule — encoded through the same per-predicate mutation logic the
// server uses, including the RearityBatch fallback for shape-changing
// mutations — against the memory backend and the disk backend must leave the
// two stores bit-for-bit identical after every step: same relations, same
// arities, same rows in the same scan order. At the end, the materialized
// databases must be equal, the datalog program must evaluate identically
// over both, and closing and reopening the disk store (the recovery path)
// must reproduce the state exactly.

// checkDlogStorage replays the schedule through both backends.
func checkDlogStorage(p *datalog.Program, sched []randgen.FactBatch) error {
	const oracle = "dlog-storage"
	in := intern.Global()
	mem := storage.NewMem(in)
	dir, err := os.MkdirTemp("", "algrec-diffcheck-storage-*")
	if err != nil {
		return nil // environment trouble, not a divergence
	}
	defer os.RemoveAll(dir)
	disk, err := storage.OpenDisk(dir, storage.DiskOptions{Interner: in})
	if err != nil {
		return diverge(oracle, "opening an empty disk store failed: %v", err)
	}
	defer func() {
		if disk != nil {
			disk.Close()
		}
	}()

	for step, b := range sched {
		// The batches are derived per backend from that backend's current
		// state; equal states must derive equal batches and stay equal.
		errM := applySchedBatch(mem, in, b)
		errD := applySchedBatch(disk, in, b)
		if (errM == nil) != (errD == nil) {
			return diverge(oracle, "step %d (%s): memory err %v, disk err %v", step, b, errM, errD)
		}
		if errM != nil {
			continue // agreeing rejection
		}
		if err := diffStores(oracle, fmt.Sprintf("step %d (%s)", step, b), mem, disk); err != nil {
			return err
		}
	}

	// The materialized databases agree, and the program evaluates
	// identically over both.
	dbM, errM := storage.LoadDB(mem, in, 1)
	dbD, errD := storage.LoadDB(disk, in, 1)
	if done, err := pairErr(oracle, "memory load", "disk load", errM, errD); done {
		return err
	}
	if err := diffSetMaps(oracle, "materialized database", dbM, dbD); err != nil {
		return err
	}
	plan := &query.Plan{
		Language:  query.LangDatalog,
		Semantics: query.SemStratified,
		Source:    p.String(),
		Program:   p,
	}
	opts := query.Options{Budget: ExprBudget, Ground: GroundBudget}
	outM, errM := query.Execute(plan, algebra.DB(dbM), opts)
	outD, errD := query.Execute(plan, algebra.DB(dbD), opts)
	if done, err := pairErr(oracle, "evaluation over memory", "evaluation over disk", errM, errD); done {
		return err
	}
	if !reflect.DeepEqual(outM, outD) {
		return diverge(oracle, "program outcome differs over equal databases:\nmemory: %s\ndisk:   %s",
			renderJSON(outM.Datalog), renderJSON(outD.Datalog))
	}

	// Recovery: reopen the disk store and compare against memory again.
	if err := disk.Close(); err != nil {
		return diverge(oracle, "closing the disk store failed: %v", err)
	}
	disk = nil
	disk2, err := storage.OpenDisk(dir, storage.DiskOptions{Interner: in})
	if err != nil {
		return diverge(oracle, "reopening the disk store failed: %v", err)
	}
	defer disk2.Close()
	return diffStores(oracle, "after reopen", mem, disk2)
}

// applySchedBatch encodes one fact batch as a single-mutation-per-predicate
// storage batch against the store's current shapes (the serving layer's
// convention) and applies it, falling back to RearityBatch when a mutation's
// shape disagrees with the stored relation.
func applySchedBatch(st storage.Store, in *intern.Interner, b randgen.FactBatch) error {
	sb, err := schedBatch(st, in, b)
	if err != nil {
		return err
	}
	if len(sb) == 0 {
		return nil
	}
	if err := st.Apply(sb); err != nil {
		if !errors.Is(err, storage.ErrArityMismatch) {
			return err
		}
		rb, rerr := storage.RearityBatch(st, in, sb)
		if rerr != nil {
			return rerr
		}
		return st.Apply(rb)
	}
	return nil
}

// schedFactValue is the element a fact contributes: one argument stands
// alone, several form a tuple (ivm.ApplyDB's convention).
func schedFactValue(f datalog.Fact) value.Value {
	if len(f.Args) == 1 {
		return f.Args[0]
	}
	return value.NewTuple(f.Args...)
}

// schedBatch builds the per-predicate mutations for one fact batch.
func schedBatch(st storage.Store, in *intern.Interner, b randgen.FactBatch) (storage.Batch, error) {
	type predMut struct{ ins, del []value.Value }
	preds := map[string]*predMut{}
	at := func(p string) *predMut {
		pm, ok := preds[p]
		if !ok {
			pm = &predMut{}
			preds[p] = pm
		}
		return pm
	}
	for _, f := range b.Delete {
		pm := at(f.Pred)
		pm.del = append(pm.del, schedFactValue(f))
	}
	for _, f := range b.Insert {
		pm := at(f.Pred)
		pm.ins = append(pm.ins, schedFactValue(f))
	}
	names := make([]string, 0, len(preds))
	for n := range preds {
		names = append(names, n)
	}
	sort.Strings(names)

	var out storage.Batch
	for _, n := range names {
		pm := preds[n]
		r, exists, err := st.Rel(n)
		if err != nil {
			return nil, err
		}
		if !exists && len(pm.ins) == 0 {
			continue // deletes against an absent relation are no-ops
		}
		arity := 1
		if exists {
			arity = r.Arity()
		} else if k := uniformTupleWidth(pm.ins); k > 1 {
			arity = k
		}
		fit := true
		for _, v := range pm.ins {
			if _, ok := schedRow(in, v, arity); !ok {
				fit = false
				break
			}
		}
		if !fit {
			arity = 1 // mixed shapes: heterogeneous encoding, Rearity fixes
		}
		m := storage.Mutation{Rel: n, Arity: arity}
		for _, v := range pm.del {
			if row, ok := schedRow(in, v, arity); ok {
				m.Delete = append(m.Delete, row)
			}
		}
		for _, v := range pm.ins {
			row, _ := schedRow(in, v, arity)
			m.Insert = append(m.Insert, row)
		}
		out = append(out, m)
	}
	return out, nil
}

// uniformTupleWidth returns the common width when every element is a tuple
// of one width >= 2, else 0.
func uniformTupleWidth(elems []value.Value) int {
	k := -1
	for _, v := range elems {
		t, ok := v.(value.Tuple)
		if !ok || t.Len() < 2 || (k >= 0 && t.Len() != k) {
			return 0
		}
		k = t.Len()
	}
	if k < 0 {
		return 0
	}
	return k
}

// schedRow encodes one element as a row of the given arity (matching
// storage.RowsOfSet); ok=false when it does not fit.
func schedRow(in *intern.Interner, v value.Value, arity int) ([]intern.ID, bool) {
	if arity == 1 {
		return []intern.ID{in.Intern(v)}, true
	}
	t, ok := v.(value.Tuple)
	if !ok || t.Len() != arity {
		return nil, false
	}
	id := in.Intern(v)
	row := make([]intern.ID, arity)
	copy(row, in.Elems(id))
	return row, true
}

// diffStores compares two stores' observable state: relation listings, then
// every relation's rows in scan order.
func diffStores(oracle, what string, a, b storage.Store) error {
	ia, errA := a.Rels()
	ib, errB := b.Rels()
	if errA != nil || errB != nil {
		return diverge(oracle, "%s: listing failed: %v / %v", what, errA, errB)
	}
	if !reflect.DeepEqual(ia, ib) {
		return diverge(oracle, "%s: relation listings differ:\n  left:  %+v\n  right: %+v", what, ia, ib)
	}
	for _, info := range ia {
		ra, _, errA := a.Rel(info.Name)
		rb, _, errB := b.Rel(info.Name)
		if errA != nil || errB != nil {
			return diverge(oracle, "%s: opening %q failed: %v / %v", what, info.Name, errA, errB)
		}
		rowsA, errA := scanRows(ra)
		rowsB, errB := scanRows(rb)
		if errA != nil || errB != nil {
			return diverge(oracle, "%s: scanning %q failed: %v / %v", what, info.Name, errA, errB)
		}
		if !reflect.DeepEqual(rowsA, rowsB) {
			return diverge(oracle, "%s: relation %q rows differ:\n  left:  %v\n  right: %v",
				what, info.Name, rowsA, rowsB)
		}
	}
	return nil
}

// scanRows collects a relation's rows in scan order.
func scanRows(r storage.Relation) ([][]intern.ID, error) {
	var rows [][]intern.ID
	err := r.Scan(func(row []intern.ID) bool {
		cp := make([]intern.ID, len(row))
		copy(cp, row)
		rows = append(rows, cp)
		return true
	})
	return rows, err
}
