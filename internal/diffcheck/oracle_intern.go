package diffcheck

import (
	"sync"

	"algrec/internal/algebra"
	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
	"algrec/internal/value"
)

// The intern oracles pin the hash-consing contract: the process-wide
// interning switch (value.SetInterning, the cmd/bench -nointern ablation)
// changes cost only, never results. Each oracle runs one instance with the
// hash-consed representation and with the string-keyed baseline and demands
// bit-for-bit identical outcomes.
//
// internFlip serializes the oracles' ablation windows so two intern oracles
// in parallel subtests don't interleave their flips. Other oracles may still
// observe a flip mid-run; that is harmless — by the very invariant checked
// here, both settings compute identical results — but a divergence found
// while a flip was interleaved would be misattributed, hence the lock.
var internFlip sync.Mutex

// checkExprIntern evaluates one expression with interning on and off; the
// interned hash join and the cached-ID comparison fast paths must not change
// the value.
func checkExprIntern(e algebra.Expr, db algebra.DB) error {
	const oracle = "expr-intern"
	internFlip.Lock()
	defer internFlip.Unlock()
	was := value.SetInterning(true)
	defer value.SetInterning(was)
	on, errOn := algebra.NewEvaluator(db, ExprBudget).Eval(e)
	value.SetInterning(false)
	off, errOff := algebra.NewEvaluator(db, ExprBudget).Eval(e)
	if done, err := pairErr(oracle, "interned", "string-keyed", errOn, errOff); done {
		return err
	}
	return diffSets(oracle, "interned vs string-keyed result", on, off)
}

// checkDlogIntern grounds one free-polarity program with each representation
// and demands the two ground programs be bit-for-bit identical — same atom
// ids in the same first-sight order, same canonical keys, same rules in the
// same firing order — and that the well-founded models over them assign every
// atom the same truth value.
func checkDlogIntern(p *datalog.Program) error {
	const oracle = "dlog-intern"
	internFlip.Lock()
	defer internFlip.Unlock()
	was := value.SetInterning(true)
	defer value.SetInterning(was)
	gOn, errOn := ground.Ground(p, GroundBudget)
	value.SetInterning(false)
	gOff, errOff := ground.Ground(p, GroundBudget)
	if done, err := pairErr(oracle, "interned grounding", "string-keyed grounding", errOn, errOff); done {
		return err
	}
	if gOn.NumAtoms() != gOff.NumAtoms() {
		return diverge(oracle, "atom count differs: interned %d, string-keyed %d", gOn.NumAtoms(), gOff.NumAtoms())
	}
	for id := 0; id < gOn.NumAtoms(); id++ {
		if gOn.AtomKey(id) != gOff.AtomKey(id) {
			return diverge(oracle, "atom id %d differs: interned %q, string-keyed %q", id, gOn.AtomKey(id), gOff.AtomKey(id))
		}
	}
	if len(gOn.Rules) != len(gOff.Rules) {
		return diverge(oracle, "rule count differs: interned %d, string-keyed %d", len(gOn.Rules), len(gOff.Rules))
	}
	for ri := range gOn.Rules {
		a, b := &gOn.Rules[ri], &gOff.Rules[ri]
		if a.Head != b.Head || !idSlicesEqual(a.Pos, b.Pos) || !idSlicesEqual(a.Neg, b.Neg) {
			return diverge(oracle, "rule %d differs: interned %+v, string-keyed %+v", ri, *a, *b)
		}
	}
	wfOn := semantics.NewEngine(gOn).WellFounded()
	wfOff := semantics.NewEngine(gOff).WellFounded()
	for id := 0; id < gOn.NumAtoms(); id++ {
		if wfOn.Truth(id) != wfOff.Truth(id) {
			return diverge(oracle, "well-founded truth of %v differs: interned %v, string-keyed %v",
				gOn.Atom(id), wfOn.Truth(id), wfOff.Truth(id))
		}
	}
	return nil
}

// idSlicesEqual compares two atom-id lists elementwise, treating nil and
// empty as equal (the two grounding modes store empty bodies differently).
func idSlicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
