package diffcheck

import (
	"strings"
	"testing"

	"algrec/internal/randgen"
)

// TestOracleRegistry checks the matrix's bookkeeping: unique names, docs,
// exactly one check function per oracle, and ByName round-trips.
func TestOracleRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, o := range Oracles {
		if o.Name == "" || o.Doc == "" {
			t.Errorf("oracle %+v: missing name or doc", o)
		}
		if seen[o.Name] {
			t.Errorf("duplicate oracle name %q", o.Name)
		}
		seen[o.Name] = true
		n := 0
		if o.checkExpr != nil {
			n++
		}
		if o.checkCore != nil {
			n++
		}
		if o.checkDatalog != nil {
			n++
		}
		if o.checkDlogIVM != nil {
			n++
		}
		if n != 1 {
			t.Errorf("oracle %q: %d check functions, want exactly 1", o.Name, n)
		}
		got, ok := ByName(o.Name)
		if !ok || got != o {
			t.Errorf("ByName(%q) did not return the registered oracle", o.Name)
		}
	}
	if _, ok := ByName("no-such-oracle"); ok {
		t.Error("ByName accepted an unknown name")
	}
}

// TestGenerateMatchesKind checks Generate populates exactly the fields the
// oracle's kind calls for.
func TestGenerateMatchesKind(t *testing.T) {
	for _, o := range Oracles {
		in := Generate(o, randgen.New(7, randgen.Config{Size: 2}))
		switch o.Kind {
		case KindExpr, KindIFPExpr:
			if in.Expr == nil || in.DB == nil || in.Core != nil || in.Dlog != nil {
				t.Errorf("oracle %q: wrong fields for an expression instance", o.Name)
			}
		case KindCore, KindCoreNoFlip:
			if in.Core == nil || in.DB == nil || in.Expr != nil || in.Dlog != nil {
				t.Errorf("oracle %q: wrong fields for a core instance", o.Name)
			}
		case KindDatalogIVM:
			if in.Dlog == nil || len(in.Sched) == 0 || in.Expr != nil || in.Core != nil {
				t.Errorf("oracle %q: wrong fields for an ivm instance", o.Name)
			}
		default:
			if in.Dlog == nil || in.Expr != nil || in.Core != nil || in.Sched != nil {
				t.Errorf("oracle %q: wrong fields for a deductive instance", o.Name)
			}
		}
		if in.Size() <= 0 {
			t.Errorf("oracle %q: non-positive size %d", o.Name, in.Size())
		}
		if in.Render() == "" {
			t.Errorf("oracle %q: empty rendering", o.Name)
		}
	}
}

// TestOraclesCleanSweep is the corpus the fuzz targets grow from: every
// oracle over a spread of seeds and sizes, expecting agreement everywhere.
// A failure here is a real engine (or theorem-implementation) bug — the
// rendered witness is the repro.
func TestOraclesCleanSweep(t *testing.T) {
	for _, o := range Oracles {
		o := o
		t.Run(o.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 60; seed++ {
				g := randgen.New(seed, randgen.Config{Size: 1 + int(seed%3)})
				in := Generate(o, g)
				if err := in.Check(); err != nil {
					t.Fatalf("seed %d: %v\ninstance:\n%s", seed, err, in.Render())
				}
			}
		})
	}
}

// TestPlantedFaultIsCaught validates the harness end to end: with
// FaultDropMax planted, the expr-seminaive oracle must report divergences
// on a healthy engine pair, and the Divergence must carry the oracle name.
func TestPlantedFaultIsCaught(t *testing.T) {
	defer InjectFault(FaultDropMax)()
	o, _ := ByName("expr-seminaive")
	caught := 0
	for seed := int64(0); seed < 40; seed++ {
		in := Generate(o, randgen.New(seed, randgen.Config{Size: 2}))
		err := in.Check()
		if err == nil {
			continue
		}
		d, ok := IsDivergence(err)
		if !ok {
			t.Fatalf("seed %d: non-divergence error %v", seed, err)
		}
		if d.Oracle != "expr-seminaive" {
			t.Fatalf("divergence names oracle %q", d.Oracle)
		}
		if !strings.Contains(d.Detail, "left") {
			t.Fatalf("divergence detail does not show both sides: %s", d.Detail)
		}
		caught++
	}
	if caught == 0 {
		t.Fatal("planted FaultDropMax was never caught in 40 seeds; the oracle is blind")
	}
}

// TestFaultRoundTrip checks the fault switch plumbing used by cmd/fuzzdiff.
func TestFaultRoundTrip(t *testing.T) {
	for _, f := range []Fault{FaultNone, FaultDropMax} {
		got, err := ParseFault(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFault(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFault("bogus"); err == nil {
		t.Error("ParseFault accepted an unknown fault")
	}
	restore := InjectFault(FaultDropMax)
	if CurrentFault() != FaultDropMax {
		t.Error("InjectFault did not take effect")
	}
	restore()
	if CurrentFault() != FaultNone {
		t.Error("restore did not reset the fault")
	}
}
