package diffcheck

import (
	"errors"

	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
	"algrec/internal/translate"
)

// diffInterpPred compares one predicate of a deductive interpretation
// against the lower/undef reading of a core result for the same predicate.
func diffInterpPred(oracle, pred string, in *semantics.Interp, res *core.Result) error {
	if err := diffSets(oracle, "certain part of "+pred, translate.TrueSet(in, pred), res.Set(pred)); err != nil {
		return err
	}
	return diffSets(oracle, "undefined part of "+pred, translate.UndefSet(in, pred), res.UndefElems(pred))
}

// checkDlogTheorem62 runs a free-polarity deductive program under the valid
// semantics directly, and through the Theorem 6.2 route: translate to
// algebra= (Proposition 6.1 machinery) and evaluate with core.EvalValid.
// Certain and undefined parts of every IDB predicate must coincide.
func checkDlogTheorem62(p *datalog.Program) error {
	const oracle = "dlog-theorem62"
	in, errD := semantics.Eval(p, semantics.SemValid, GroundBudget)
	cp, db, errT := translate.DatalogToCore(p)
	if errT != nil {
		return nil // translation gap: not comparable
	}
	res, errC := core.EvalValid(cp, db, ExprBudget)
	if done, err := pairErr(oracle, "deductive valid", "algebra= valid", errD, errC); done {
		return err
	}
	for _, pred := range p.IDB() {
		if err := diffInterpPred(oracle, pred, in, res); err != nil {
			return err
		}
	}
	return nil
}

// checkDlogTheorem43 runs a stratifiable program through stratified
// evaluation and through the constructive direction of Theorem 4.3: the
// positive-IFP translation evaluated under the valid semantics. The theorem
// demands the translated program be total on every IDB predicate and agree
// with the stratified model.
func checkDlogTheorem43(p *datalog.Program) error {
	const oracle = "dlog-theorem43"
	strat, err := datalog.Stratify(p)
	if err != nil {
		return nil // generator contract violated elsewhere; not this oracle's bug
	}
	g, errG := ground.Ground(p, GroundBudget)
	var in *semantics.Interp
	var errD error
	if errG != nil {
		errD = errG
	} else {
		in, errD = semantics.NewEngine(g).Stratified(strat)
	}
	cp, db, errT := translate.StratifiedToPositiveIFP(p)
	if errT != nil {
		return nil // translation gap: not comparable
	}
	res, errC := core.EvalValid(cp, db, ExprBudget)
	if done, err := pairErr(oracle, "stratified", "positive-IFP", errD, errC); done {
		return err
	}
	for _, pred := range p.IDB() {
		if !res.IsTotal(pred) {
			return diverge(oracle, "positive-IFP program left %q three-valued: undef %v",
				pred, res.UndefElems(pred))
		}
		if err := diffSets(oracle, "stratum content of "+pred,
			translate.TrueSet(in, pred), res.Set(pred)); err != nil {
			return err
		}
	}
	return nil
}

// groundEngine grounds a program under GroundBudget and returns a fresh
// engine over it. Each pipeline gets its own engine so no scratch state is
// shared between the sides being compared.
func groundEngine(p *datalog.Program) (*ground.Program, error) {
	return ground.Ground(p, GroundBudget)
}

// diffInterps compares two interpretations of the same ground program on
// every IDB predicate, by certain and undefined parts.
func diffInterps(oracle, left, right string, p *datalog.Program, a, b *semantics.Interp) error {
	for _, pred := range p.IDB() {
		if err := diffSets(oracle, left+" vs "+right+": certain part of "+pred,
			translate.TrueSet(a, pred), translate.TrueSet(b, pred)); err != nil {
			return err
		}
		if err := diffSets(oracle, left+" vs "+right+": undefined part of "+pred,
			translate.UndefSet(a, pred), translate.UndefSet(b, pred)); err != nil {
			return err
		}
	}
	return nil
}

// checkDlogMinimal checks the positive-program collapse: semi-naive and
// naive minimal-model computation are bit-identical, and on negation-free
// programs the inflationary and valid semantics compute that same model
// (the valid one totally).
func checkDlogMinimal(p *datalog.Program) error {
	const oracle = "dlog-minimal"
	g, err := groundEngine(p)
	if err != nil {
		return nil // grounding budget
	}
	min, errM := semantics.NewEngine(g).Minimal()
	ref, errR := semantics.NewEngine(g).MinimalNaive()
	if done, err := pairErr(oracle, "semi-naive minimal", "naive minimal", errM, errR); done {
		return err
	}
	if err := diffInterps(oracle, "semi-naive", "naive", p, min, ref); err != nil {
		return err
	}
	infl, _ := semantics.NewEngine(g).Inflationary()
	if err := diffInterps(oracle, "minimal", "inflationary", p, min, infl); err != nil {
		return err
	}
	valid := semantics.NewEngine(g).Valid()
	if !valid.IsTotal() {
		return diverge(oracle, "valid semantics is partial on a positive program: %d undef atoms", valid.CountUndef())
	}
	return diffInterps(oracle, "minimal", "valid", p, min, valid)
}

// checkDlogStratified checks the stratifiable-program collapse: stratified,
// well-founded and valid evaluation agree and are total. (The inflationary
// semantics is deliberately absent: it disagrees with stratified evaluation
// even on stratifiable programs — deriving q from "q :- not r" before r's
// rule fires is not undone later.)
func checkDlogStratified(p *datalog.Program) error {
	const oracle = "dlog-stratified"
	strat, err := datalog.Stratify(p)
	if err != nil {
		return nil
	}
	g, err := groundEngine(p)
	if err != nil {
		return nil
	}
	st, errS := semantics.NewEngine(g).Stratified(strat)
	if errS != nil {
		return diverge(oracle, "stratified evaluation rejected a stratifiable program: %v", errS)
	}
	wf := semantics.NewEngine(g).WellFounded()
	if !wf.IsTotal() {
		return diverge(oracle, "well-founded model is partial on a stratifiable program: %d undef atoms", wf.CountUndef())
	}
	valid := semantics.NewEngine(g).Valid()
	if !valid.IsTotal() {
		return diverge(oracle, "valid model is partial on a stratifiable program: %d undef atoms", valid.CountUndef())
	}
	if err := diffInterps(oracle, "stratified", "well-founded", p, st, wf); err != nil {
		return err
	}
	return diffInterps(oracle, "stratified", "valid", p, st, valid)
}

// stableMaxUndef bounds the residual for the stable-model oracle: programs
// whose well-founded residual is larger are skipped rather than searched.
const stableMaxUndef = 14

// checkDlogStable checks that stable-model search is independent of the
// worker count: the sequential search and a 3-worker search must return the
// same models in the same order.
func checkDlogStable(p *datalog.Program) error {
	const oracle = "dlog-stable"
	g, err := groundEngine(p)
	if err != nil {
		return nil
	}
	seq, errS := semantics.NewEngine(g).StableModels(stableMaxUndef)
	par, errP := semantics.NewEngine(g).StableModelsParallel(stableMaxUndef, 3)
	if errors.Is(errS, semantics.ErrTooManyUndef) || errors.Is(errP, semantics.ErrTooManyUndef) {
		if (errS == nil) != (errP == nil) {
			return diverge(oracle, "residual-size rejection differs: sequential %v, parallel %v", errS, errP)
		}
		return nil
	}
	if done, err := pairErr(oracle, "sequential", "parallel", errS, errP); done {
		return err
	}
	if len(seq) != len(par) {
		return diverge(oracle, "model count differs: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		for id := 0; id < g.NumAtoms(); id++ {
			if seq[i].Truth(id) != par[i].Truth(id) {
				return diverge(oracle, "model %d differs on atom %v: sequential %v, parallel %v",
					i, g.Atom(id), seq[i].Truth(id), par[i].Truth(id))
			}
		}
	}
	return nil
}
