package query

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"algrec/internal/algebra"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
)

const (
	tcScript = `rel edge = {(a, b), (b, c), (c, d)};
def tc = union(edge, map(select(product(tc, edge), \p -> p.1.2 = p.2.1), \p -> (p.1.1, p.2.2)));
query tc;`
	winCycle = `rel move = {(a, b), (b, a)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);`
	winDatalog = `move(a, a). move(a, b). move(b, c).
win(X) :- move(X, Y), not win(Y).`
	tcClosure = "{(a, b), (a, c), (a, d), (b, c), (b, d), (c, d)}"
)

func mustCompile(t *testing.T, lang Language, sem Semantics, src string) *Plan {
	t.Helper()
	p, err := Compile(lang, sem, src)
	if err != nil {
		t.Fatalf("Compile(%s, %s): %v", lang, sem, err)
	}
	return p
}

func mustExecute(t *testing.T, p *Plan, db algebra.DB, opts Options) *Outcome {
	t.Helper()
	out, err := Execute(p, db, opts)
	if err != nil {
		t.Fatalf("Execute(%s, %s): %v", p.Language, p.Semantics, err)
	}
	return out
}

func TestParseLanguageAndSemantics(t *testing.T) {
	for name, want := range map[string]Language{
		"algebra": LangAlgebra, "ifp": LangIFPAlgebra, "ifp-algebra": LangIFPAlgebra,
		"algebra=": LangAlgebraEq, "algebra-eq": LangAlgebraEq, "core": LangAlgebraEq,
		"datalog": LangDatalog, "dlog": LangDatalog,
	} {
		if got, err := ParseLanguage(name); err != nil || got != want {
			t.Errorf("ParseLanguage(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseLanguage("sql"); err == nil {
		t.Error("ParseLanguage(sql) should fail")
	}
	for name, want := range map[string]Semantics{
		"": SemValid, "valid": SemValid, "wellfounded": SemWellFounded,
		"well-founded": SemWellFounded, "wfs": SemWellFounded, "stable": SemStable,
		"inflationary": SemInflationary, "stratified": SemStratified, "minimal": SemMinimal,
	} {
		if got, err := ParseSemantics(name); err != nil || got != want {
			t.Errorf("ParseSemantics(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseSemantics("vibes"); err == nil {
		t.Error("ParseSemantics(vibes) should fail")
	}
}

func TestCompatibleSemantics(t *testing.T) {
	if got := CompatibleSemantics(LangAlgebraEq); len(got) != 4 {
		t.Fatalf("algebra= supports %v, want 4 semantics", got)
	}
	for _, lang := range []Language{LangAlgebra, LangIFPAlgebra, LangDatalog} {
		if got := CompatibleSemantics(lang); len(got) != 6 {
			t.Fatalf("%s supports %v, want all 6", lang, got)
		}
	}
	if CompatibleSemantics("fortran") != nil {
		t.Fatal("unknown language must support nothing")
	}
	if _, err := Compile(LangAlgebraEq, SemMinimal, winCycle); !errors.Is(err, ErrUnsupportedSemantics) {
		t.Fatalf("algebra= under minimal: %v, want ErrUnsupportedSemantics", err)
	}
}

func TestCompileRejections(t *testing.T) {
	if _, err := Compile(LangAlgebra, SemValid, `ifp(s, union({0}, s))`); err == nil {
		t.Fatal("plain algebra must reject the ifp operator")
	}
	if _, err := Compile(LangIFPAlgebra, SemValid, `ifp(s, union({0}, s))`); err != nil {
		t.Fatalf("ifp-algebra must accept the ifp operator: %v", err)
	}
	if _, err := Compile(LangDatalog, SemStratified, winDatalog); !errors.Is(err, ErrUnsupportedSemantics) {
		t.Fatalf("stratified over unstratifiable program: %v, want ErrUnsupportedSemantics", err)
	}
	if _, err := Compile(LangDatalog, SemValid, "p(a"); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := Compile(LangAlgebraEq, SemValid, "def ("); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := Compile("fortran", SemValid, "x"); err == nil {
		t.Fatal("want unknown-language error")
	}
}

func TestExecuteExpressionLanguages(t *testing.T) {
	db, err := Compile(LangAlgebraEq, SemValid, `rel edge = {(a, b), (b, c), (c, d)};`)
	if err != nil {
		t.Fatal(err)
	}
	edges := db.Script.DB
	p := mustCompile(t, LangAlgebra, SemValid, `diff(edge, {(a, b)})`)
	if out := mustExecute(t, p, edges, Options{}); !out.HasValue || out.Value.String() != "{(b, c), (c, d)}" {
		t.Fatalf("algebra value = %+v", out)
	}
	tc := mustCompile(t, LangIFPAlgebra, SemStable,
		`ifp(s, union(edge, map(select(product(s, edge), \p -> p.1.2 = p.2.1), \p -> (p.1.1, p.2.2))))`)
	if out := mustExecute(t, tc, edges, Options{}); out.Value.String() != tcClosure {
		t.Fatalf("ifp closure = %s", out.Value)
	}
	// The plan is database-independent: the same plan over an empty db.
	p2 := mustCompile(t, LangAlgebra, SemValid, `union({1}, {2})`)
	if out := mustExecute(t, p2, nil, Options{}); out.Value.String() != "{1, 2}" {
		t.Fatalf("value = %s", out.Value)
	}
}

func TestExecuteAlgebraEqAllSemantics(t *testing.T) {
	for _, sem := range []Semantics{SemValid, SemInflationary, SemWellFounded} {
		p := mustCompile(t, LangAlgebraEq, sem, tcScript)
		out := mustExecute(t, p, nil, Options{})
		if len(out.Queries) != 1 || out.Queries[0].Set.String() != tcClosure {
			t.Fatalf("%s: queries = %+v", sem, out.Queries)
		}
		if !out.WellDefined {
			t.Fatalf("%s: tc must be well defined", sem)
		}
	}
	p := mustCompile(t, LangAlgebraEq, SemStable, winCycle)
	out := mustExecute(t, p, nil, Options{})
	if len(out.Models) != 2 {
		t.Fatalf("stable readings = %+v, want 2", out.Models)
	}
	var sets []string
	for _, m := range out.Models {
		sets = append(sets, m[0].Set.String())
	}
	if fmt.Sprint(sets) != "[{a} {b}]" && fmt.Sprint(sets) != "[{b} {a}]" {
		t.Fatalf("stable win sets = %v", sets)
	}
	// The cyclic game has no two-valued valid reading: win is undefined.
	pv := mustCompile(t, LangAlgebraEq, SemValid, winCycle)
	ov := mustExecute(t, pv, nil, Options{})
	if ov.WellDefined {
		t.Fatal("cyclic WIN must not be well defined under valid")
	}
	pw := mustCompile(t, LangAlgebraEq, SemWellFounded, winCycle)
	ow := mustExecute(t, pw, nil, Options{})
	if ow.WellDefined || len(ow.Defs) != 1 || ow.Defs[0].Undef.IsEmpty() {
		t.Fatalf("wellfounded cyclic WIN = %+v", ow.Defs)
	}
}

func TestExecuteDatalogAllSemantics(t *testing.T) {
	find := func(m *DatalogModel, pred string) *PredFacts {
		for i := range m.Preds {
			if m.Preds[i].Pred == pred {
				return &m.Preds[i]
			}
		}
		return nil
	}
	for _, tc := range []struct {
		sem        Semantics
		wantTrue   string
		wantUndef  string
		wellDefind bool
	}{
		{SemValid, "[win(b)]", "[win(a)]", false},
		{SemWellFounded, "[win(b)]", "[win(a)]", false},
		{SemInflationary, "[win(a) win(b)]", "[]", true},
	} {
		p := mustCompile(t, LangDatalog, tc.sem, winDatalog)
		out := mustExecute(t, p, nil, Options{})
		pf := find(out.Datalog, "win")
		if fmt.Sprint(pf.True) != tc.wantTrue || fmt.Sprint(pf.Undef) != tc.wantUndef {
			t.Fatalf("%s: win = %+v", tc.sem, pf)
		}
		if out.WellDefined != tc.wellDefind {
			t.Fatalf("%s: wellDefined = %v", tc.sem, out.WellDefined)
		}
	}
	// Stable: the odd loop move(a,a) kills every model.
	p := mustCompile(t, LangDatalog, SemStable, winDatalog)
	if out := mustExecute(t, p, nil, Options{}); len(out.DatalogModels) != 0 {
		t.Fatalf("stable models = %+v, want none", out.DatalogModels)
	}
	// Minimal over the positive fragment.
	pm := mustCompile(t, LangDatalog, SemMinimal, "e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).")
	om := mustExecute(t, pm, nil, Options{})
	if pf := find(om.Datalog, "t"); len(pf.True) != 3 {
		t.Fatalf("minimal t = %+v", pf)
	}
	if fmt.Sprint(om.IDB) != "[t]" {
		t.Fatalf("IDB = %v", om.IDB)
	}
}

// TestExecuteDatalogOverDB pins that a registered database's relations
// become facts without mutating the cached plan.
func TestExecuteDatalogOverDB(t *testing.T) {
	dbScript, err := Compile(LangAlgebraEq, SemValid, `rel edge = {(a, b), (b, c)};`)
	if err != nil {
		t.Fatal(err)
	}
	db := dbScript.Script.DB
	p := mustCompile(t, LangDatalog, SemMinimal, "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).")
	rules := len(p.Program.Rules)
	out := mustExecute(t, p, db, Options{})
	var tcFacts []string
	for _, pf := range out.Datalog.Preds {
		if pf.Pred == "tc" {
			tcFacts = pf.True
		}
	}
	if len(tcFacts) != 3 {
		t.Fatalf("tc = %v, want 3 facts", tcFacts)
	}
	if len(p.Program.Rules) != rules {
		t.Fatalf("Execute mutated the cached plan: %d rules, was %d", len(p.Program.Rules), rules)
	}
	// Re-executing the same plan over a different database must not see
	// the first database's facts.
	out2 := mustExecute(t, p, nil, Options{})
	for _, pf := range out2.Datalog.Preds {
		if pf.Pred == "tc" && len(pf.True) != 0 {
			t.Fatalf("plan leaked facts across executions: %v", pf.True)
		}
	}
}

func TestWriteAlgqText(t *testing.T) {
	p := mustCompile(t, LangAlgebraEq, SemStable, winCycle)
	out := mustExecute(t, p, nil, Options{})
	var buf bytes.Buffer
	WriteAlgqText(&buf, out, false)
	want := "% stable reading 1 of 2\n"
	if !strings.HasPrefix(buf.String(), want) {
		t.Fatalf("stable rendering = %q", buf.String())
	}
	// An expression outcome renders as the bare set.
	pe := mustCompile(t, LangAlgebra, SemValid, `{1, 2}`)
	buf.Reset()
	WriteAlgqText(&buf, mustExecute(t, pe, nil, Options{}), false)
	if buf.String() != "{1, 2}\n" {
		t.Fatalf("value rendering = %q", buf.String())
	}
}

func TestWriteDlogText(t *testing.T) {
	p := mustCompile(t, LangDatalog, SemValid, winDatalog)
	out := mustExecute(t, p, nil, Options{})
	var buf bytes.Buffer
	WriteDlogText(&buf, out, "", true)
	if got := buf.String(); got != "win(b).\n% undefined: win(a)\n" {
		t.Fatalf("rendering = %q", got)
	}
	buf.Reset()
	WriteDlogText(&buf, out, "move", false)
	if got := buf.String(); got != "move(a, a).\nmove(a, b).\nmove(b, c).\n" {
		t.Fatalf("-pred move rendering = %q", got)
	}
	ps := mustCompile(t, LangDatalog, SemStable, winDatalog)
	buf.Reset()
	WriteDlogText(&buf, mustExecute(t, ps, nil, Options{}), "", false)
	if buf.String() != "% no stable models\n" {
		t.Fatalf("no-models rendering = %q", buf.String())
	}
}

func TestErrorCode(t *testing.T) {
	for _, tc := range []struct {
		err     error
		compile bool
		want    string
	}{
		{fmt.Errorf("wrap: %w", algebra.ErrCanceled), false, "canceled"},
		{fmt.Errorf("wrap: %w", ground.ErrCanceled), false, "canceled"},
		{fmt.Errorf("wrap: %w", semantics.ErrCanceled), false, "canceled"},
		{fmt.Errorf("wrap: %w", algebra.ErrBudget), false, "budget-exceeded"},
		{&ground.BudgetError{What: "atoms", Limit: 1}, false, "budget-exceeded"},
		{fmt.Errorf("wrap: %w", semantics.ErrTooManyUndef), false, "budget-exceeded"},
		{fmt.Errorf("wrap: %w", ErrUnsupportedSemantics), true, "unsupported-semantics"},
		{errors.New("bad syntax"), true, "parse-error"},
		{errors.New("unknown relation"), false, "eval-error"},
	} {
		if got := ErrorCode(tc.err, tc.compile); got != tc.want {
			t.Errorf("ErrorCode(%v, %v) = %q, want %q", tc.err, tc.compile, got, tc.want)
		}
	}
}

func TestExecuteCancellation(t *testing.T) {
	ch := make(chan struct{})
	close(ch)
	p := mustCompile(t, LangIFPAlgebra, SemValid, `ifp(s, union({0}, map(s, \x -> x + 1)))`)
	_, err := Execute(p, nil, Options{Budget: algebra.Budget{Interrupt: ch}})
	if ErrorCode(err, false) != "canceled" {
		t.Fatalf("divergent IFP under closed interrupt: %v", err)
	}
}

func TestReadInput(t *testing.T) {
	if got, err := ReadInput("", strings.NewReader("from stdin")); err != nil || got != "from stdin" {
		t.Fatalf("ReadInput stdin = %q, %v", got, err)
	}
	if got, err := ReadInput("-", strings.NewReader("dash")); err != nil || got != "dash" {
		t.Fatalf("ReadInput dash = %q, %v", got, err)
	}
	if _, err := ReadInput("/nonexistent/path", nil); err == nil {
		t.Fatal("ReadInput on a missing file should fail")
	}
}
