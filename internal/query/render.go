package query

import (
	"fmt"
	"io"
	"sort"
)

// WriteAlgqText renders an algebra= (or expression) Outcome in cmd/algq's
// text format. showDefs forces every defined constant to print even when the
// script has query statements (the -defs flag); defined constants always
// print when there are no queries. The stable reading ignores showDefs, as
// the CLI does.
func WriteAlgqText(w io.Writer, o *Outcome, showDefs bool) {
	if o.HasValue {
		fmt.Fprintln(w, o.Value)
		return
	}
	switch o.Semantics {
	case SemStable:
		if len(o.Models) == 0 {
			fmt.Fprintln(w, "% no stable readings")
			return
		}
		for i, m := range o.Models {
			fmt.Fprintf(w, "%% stable reading %d of %d\n", i+1, len(o.Models))
			for _, d := range m {
				fmt.Fprintf(w, "%s = %s\n", d.Name, d.Set)
			}
		}
	case SemInflationary:
		if showDefs || len(o.Queries) == 0 {
			for _, d := range o.Defs {
				fmt.Fprintf(w, "%s = %s\n", d.Name, d.Set)
			}
		}
		for _, q := range o.Queries {
			fmt.Fprintf(w, "%s = %s\n", q.Src, q.Set)
		}
	default: // SemValid and SemWellFounded share the three-valued format.
		if o.Semantics == SemValid && !o.WellDefined {
			fmt.Fprintln(w, "% warning: the program is not well defined on this database (no initial valid model);")
			fmt.Fprintln(w, "% undefined memberships are reported per set below")
		}
		if showDefs || len(o.Queries) == 0 {
			for _, d := range o.Defs {
				fmt.Fprintf(w, "%s = %s", d.Name, d.Set)
				if !d.Undef.IsEmpty() {
					fmt.Fprintf(w, "  %% undefined: %s", d.Undef)
				}
				fmt.Fprintln(w)
			}
		}
		for _, q := range o.Queries {
			fmt.Fprintf(w, "%s = %s", q.Src, q.Set)
			if !q.Undef.IsEmpty() {
				fmt.Fprintf(w, "  %% undefined: %s", q.Undef)
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteDlogText renders a datalog Outcome in cmd/dlog's text format. pred
// restricts the output to one predicate (the -pred flag; "" prints every
// derived predicate) and undef also lists undefined atoms (the -undef flag,
// ignored for stable models, as the CLI does).
func WriteDlogText(w io.Writer, o *Outcome, pred string, undef bool) {
	if o.Semantics == SemStable {
		if len(o.DatalogModels) == 0 {
			fmt.Fprintln(w, "% no stable models")
			return
		}
		for i, m := range o.DatalogModels {
			fmt.Fprintf(w, "%% stable model %d of %d\n", i+1, len(o.DatalogModels))
			writeDlogModel(w, o, &m, pred, false)
		}
		return
	}
	writeDlogModel(w, o, o.Datalog, pred, undef)
}

// writeDlogModel prints one interpretation: true facts of the selected
// predicates, then (optionally) the undefined atoms.
func writeDlogModel(w io.Writer, o *Outcome, m *DatalogModel, pred string, undef bool) {
	preds := o.IDB
	if pred != "" {
		preds = []string{pred}
	}
	preds = append([]string(nil), preds...)
	sort.Strings(preds)
	byName := map[string]*PredFacts{}
	for i := range m.Preds {
		byName[m.Preds[i].Pred] = &m.Preds[i]
	}
	for _, q := range preds {
		if pf := byName[q]; pf != nil {
			for _, key := range pf.True {
				fmt.Fprintln(w, key+".")
			}
		}
	}
	if undef {
		any := false
		for _, q := range preds {
			if pf := byName[q]; pf != nil {
				for _, key := range pf.Undef {
					fmt.Fprintln(w, "% undefined: "+key)
					any = true
				}
			}
		}
		if !any {
			fmt.Fprintln(w, "% undefined: (none)")
		}
	}
}
