package query

import (
	"errors"
	"fmt"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/datalog"
	"algrec/internal/datalog/ground"
	"algrec/internal/semantics"
	"algrec/internal/translate"
	"algrec/internal/value"
)

// Options are the per-request knobs of one Execute call. The zero value
// applies the engines' default budgets, no cancellation, and the CLIs'
// default stable-search bound.
type Options struct {
	// Budget caps the algebra-side evaluation (IFP iterations, set sizes,
	// call depth) and carries the Interrupt cancellation channel polled
	// between fixpoint rounds.
	Budget algebra.Budget
	// Ground caps grounding for the deductive pipelines (datalog, and the
	// translation-based wellfounded/stable readings of algebra=); its
	// Interrupt channel also cancels the stable-model search.
	Ground ground.Budget
	// MaxUndef bounds the residual size of a stable-model search
	// (0 = the CLIs' default of 24).
	MaxUndef int
}

// DefaultMaxUndef is the stable-search residual bound used when
// Options.MaxUndef is zero — the same default as the -max-undef CLI flag.
const DefaultMaxUndef = 24

// NamedSet is one defined constant's content in an Outcome: the certain
// elements and, under three-valued semantics, the elements whose membership
// is undefined.
type NamedSet struct {
	Name  string
	Set   value.Set
	Undef value.Set
}

// QueryAnswer is the answer to one `query` statement of an algebra= script.
type QueryAnswer struct {
	Src   string
	Set   value.Set
	Undef value.Set
}

// PredFacts is one predicate's content in a datalog Outcome, as fact keys
// ("tc(a, b)") in the engines' deterministic order.
type PredFacts struct {
	Pred  string
	True  []string
	Undef []string
}

// DatalogModel is one interpretation of a datalog program: the facts of
// every predicate occurring in the program, sorted by predicate.
type DatalogModel struct {
	Preds []PredFacts
}

// Outcome is the structured result of one Execute call. Which fields are
// populated depends on the plan's language and semantics:
//
//   - expression languages: Value (HasValue true);
//   - algebra= under valid/inflationary/wellfounded: Defs, Queries,
//     WellDefined;
//   - algebra= under stable: Models (one per stable reading);
//   - datalog under non-stable semantics: Datalog, IDB;
//   - datalog under stable: DatalogModels, IDB.
type Outcome struct {
	Language  Language
	Semantics Semantics
	// WellDefined reports whether every defined set is total (algebra=
	// under the valid semantics; true elsewhere).
	WellDefined bool
	// HasValue and Value carry the single result set of an expression.
	HasValue bool
	Value    value.Set
	// Defs lists the zero-parameter defined constants in program order.
	Defs []NamedSet
	// Queries answers the script's query statements in order. Under the
	// wellfounded reading the answers are evaluated over the certain
	// (lower-bound) sets, with no undefined part reported.
	Queries []QueryAnswer
	// Models are the stable readings of an algebra= program.
	Models [][]NamedSet
	// Datalog is the interpretation of a datalog program; DatalogModels
	// are its stable models.
	Datalog       *DatalogModel
	DatalogModels []DatalogModel
	// IDB is the sorted list of derived predicates — the default set a
	// renderer prints.
	IDB []string
}

// Execute runs a compiled plan against a database under the given options.
// db may be nil (an empty database); the plan is never mutated, so one plan
// can execute concurrently against many databases. For algebra= scripts the
// script's own rel statements overlay the database on name collisions.
func Execute(plan *Plan, db algebra.DB, opts Options) (*Outcome, error) {
	if opts.MaxUndef <= 0 {
		opts.MaxUndef = DefaultMaxUndef
	}
	out := &Outcome{Language: plan.Language, Semantics: plan.Semantics, WellDefined: true}
	switch plan.Language {
	case LangAlgebra, LangIFPAlgebra:
		ev := algebra.NewEvaluator(db, opts.Budget)
		v, err := ev.Eval(plan.Expr)
		if err != nil {
			return nil, err
		}
		out.HasValue = true
		out.Value = v
		return out, nil
	case LangAlgebraEq:
		return executeScript(plan, db, opts, out)
	case LangDatalog:
		return executeDatalog(plan, db, opts, out)
	default:
		return nil, fmt.Errorf("query: unknown language %q", plan.Language)
	}
}

// executeScript evaluates an algebra= script under the plan's semantics.
func executeScript(plan *Plan, db algebra.DB, opts Options, out *Outcome) (*Outcome, error) {
	script := plan.Script
	merged := algebra.DB{}
	for k, v := range db {
		merged[k] = v
	}
	for k, v := range script.DB {
		merged[k] = v
	}
	switch plan.Semantics {
	case SemValid:
		res, err := core.EvalValid(script.Program, merged, opts.Budget)
		if err != nil {
			return nil, err
		}
		out.WellDefined = res.WellDefined()
		for _, d := range script.Program.Defs {
			if len(d.Params) > 0 {
				continue
			}
			out.Defs = append(out.Defs, NamedSet{Name: d.Name, Set: res.Set(d.Name), Undef: res.UndefElems(d.Name)})
		}
		for _, q := range script.Queries {
			lo, err := res.QueryLower(q.Expr)
			if err != nil {
				return nil, err
			}
			up, err := res.QueryUpper(q.Expr)
			if err != nil {
				return nil, err
			}
			out.Queries = append(out.Queries, QueryAnswer{Src: q.Src, Set: lo, Undef: up.Diff(lo)})
		}
		return out, nil
	case SemInflationary:
		sets, err := core.EvalInflationary(script.Program, merged, opts.Budget)
		if err != nil {
			return nil, err
		}
		for _, d := range script.Program.Defs {
			if len(d.Params) > 0 {
				continue
			}
			out.Defs = append(out.Defs, NamedSet{Name: d.Name, Set: sets[d.Name]})
		}
		for _, q := range script.Queries {
			qdb := merged.Clone()
			for name, s := range sets {
				qdb[name] = s
			}
			got, err := algebra.NewEvaluator(qdb, opts.Budget).Eval(q.Expr)
			if err != nil {
				return nil, err
			}
			out.Queries = append(out.Queries, QueryAnswer{Src: q.Src, Set: got})
		}
		return out, nil
	case SemWellFounded:
		lower, upper, err := translate.WellFoundedSetsBudget(script.Program, merged, opts.Ground)
		if err != nil {
			return nil, err
		}
		for _, d := range script.Program.Defs {
			if len(d.Params) > 0 {
				continue
			}
			und := upper[d.Name].Diff(lower[d.Name])
			if !und.IsEmpty() {
				out.WellDefined = false
			}
			out.Defs = append(out.Defs, NamedSet{Name: d.Name, Set: lower[d.Name], Undef: und})
		}
		for _, q := range script.Queries {
			qdb := merged.Clone()
			for name, s := range lower {
				qdb[name] = s
			}
			got, err := algebra.NewEvaluator(qdb, opts.Budget).Eval(q.Expr)
			if err != nil {
				return nil, err
			}
			out.Queries = append(out.Queries, QueryAnswer{Src: q.Src, Set: got})
		}
		return out, nil
	case SemStable:
		models, err := translate.StableSetsBudget(script.Program, merged, opts.MaxUndef, opts.Ground)
		if err != nil {
			return nil, err
		}
		for _, m := range models {
			var sets []NamedSet
			for _, d := range script.Program.Defs {
				if len(d.Params) > 0 {
					continue
				}
				sets = append(sets, NamedSet{Name: d.Name, Set: m[d.Name]})
			}
			out.Models = append(out.Models, sets)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: %s under %s", ErrUnsupportedSemantics, plan.Language, plan.Semantics)
	}
}

// executeDatalog evaluates a datalog program under the plan's semantics,
// appending the database's relations as facts (translate.DBFacts).
func executeDatalog(plan *Plan, db algebra.DB, opts Options, out *Outcome) (*Outcome, error) {
	prog := plan.Program
	if len(db) > 0 {
		merged := &datalog.Program{Rules: append([]datalog.Rule{}, prog.Rules...)}
		merged.AddFacts(DBFacts(db)...)
		prog = merged
	}
	out.IDB = prog.IDB()
	if plan.Semantics == SemStable {
		g, err := ground.Ground(prog, opts.Ground)
		if err != nil {
			return nil, err
		}
		e := semantics.NewEngine(g)
		e.SetInterrupt(opts.Ground.Interrupt)
		models, err := e.StableModels(opts.MaxUndef)
		if err != nil {
			return nil, err
		}
		for _, m := range models {
			out.DatalogModels = append(out.DatalogModels, snapshotInterp(prog, m))
		}
		return out, nil
	}
	sem, err := mapDatalogSemantics(plan.Semantics)
	if err != nil {
		return nil, err
	}
	in, err := semantics.Eval(prog, sem, opts.Ground)
	if err != nil {
		return nil, err
	}
	m := snapshotInterp(prog, in)
	out.Datalog = &m
	for _, pf := range m.Preds {
		if len(pf.Undef) > 0 {
			out.WellDefined = false
		}
	}
	return out, nil
}

// DBFacts converts a database to datalog facts in the relational idiom:
// each tuple element becomes one fact with the tuple's components as
// arguments (an n-ary relation), each scalar element a unary fact. This
// differs from translate.DBFacts, whose unary complex-object encoding
// serves the paper's simulation theorems — a user writing `edge(X, Y)`
// against a database relation of pairs expects the relational reading.
// It is exported because the incremental engine (internal/ivm) and the
// server's mutation surface must agree with Execute on this mapping.
func DBFacts(db algebra.DB) []datalog.Fact {
	var out []datalog.Fact
	for name, s := range db {
		for _, e := range s.Elems() {
			if t, ok := e.(value.Tuple); ok {
				out = append(out, datalog.Fact{Pred: name, Args: t.Elems()})
				continue
			}
			out = append(out, datalog.Fact{Pred: name, Args: []value.Value{e}})
		}
	}
	datalog.SortFacts(out)
	return out
}

// snapshotInterp converts an interpretation into the Outcome's wire form:
// per-predicate fact keys, every predicate of the program, sorted.
func snapshotInterp(p *datalog.Program, in *semantics.Interp) DatalogModel {
	var m DatalogModel
	for _, pred := range p.Preds() {
		pf := PredFacts{Pred: pred}
		pf.True = append(pf.True, in.FactKeysWith(pred, semantics.True)...)
		pf.Undef = append(pf.Undef, in.FactKeysWith(pred, semantics.Undef)...)
		m.Preds = append(m.Preds, pf)
	}
	return m
}

// ErrorCode classifies an error from Compile or Execute into the structured
// outcome codes of the serving layer:
//
//	"canceled"              the Interrupt channel fired (the server refines
//	                        this to "timeout" when a deadline caused it)
//	"budget-exceeded"       an evaluation or grounding budget was exhausted,
//	                        or a stable search exceeded its residual bound
//	"unsupported-semantics" the (language, semantics) pair has no reading
//	"parse-error"           Compile rejected the query text
//	"eval-error"            anything else (unknown relation, type error, ...)
func ErrorCode(err error, compile bool) string {
	var be *ground.BudgetError
	switch {
	case errors.Is(err, algebra.ErrCanceled), errors.Is(err, ground.ErrCanceled), errors.Is(err, semantics.ErrCanceled):
		return "canceled"
	case errors.Is(err, algebra.ErrBudget), errors.As(err, &be), errors.Is(err, semantics.ErrTooManyUndef):
		return "budget-exceeded"
	case errors.Is(err, ErrUnsupportedSemantics):
		return "unsupported-semantics"
	case compile:
		return "parse-error"
	default:
		return "eval-error"
	}
}
