// Package query is the shared parse/validate/evaluate pipeline behind every
// entry point that runs user queries: the one-shot CLIs (cmd/algq, cmd/dlog)
// and the resident HTTP query service (internal/server, cmd/algrecd). It
// factors the previously duplicated input handling of the CLIs into one
// place and splits evaluation into the two phases a serving layer needs:
//
//   - Compile turns (language, semantics, source text) into a Plan — parsed,
//     validated, and independent of any database, so a plan can be cached
//     and shared by concurrent requests against different databases;
//   - Execute runs a Plan against a database under per-request Options
//     (budgets, cancellation, stable-search bound) and returns a structured
//     Outcome that renders to the CLIs' exact text format (WriteAlgqText,
//     WriteDlogText) or serializes to the server's JSON schema.
//
// The four languages are the paper's: "algebra" (a single recursion-free
// expression), "ifp-algebra" (an expression with the inflationary fixpoint
// operator), "algebra=" (recursive defining equations, Section 3), and
// "datalog" (the deductive language with negation, Section 4). The six
// semantics are valid, wellfounded, stable, inflationary, stratified and
// minimal; CompatibleSemantics says which pairs are evaluable.
//
// docs/architecture.md walks the full lifecycle — parse, translate, plan,
// ground, fixpoint, result — through this package's Compile/Execute split,
// including where the streaming execution runtime and the engine ablation
// switches (-noseminaive, -nointern, -nostreaming) plug in.
package query

import (
	"fmt"
	"io"
	"os"

	"algrec/internal/algebra"
	"algrec/internal/algebra/parse"
	"algrec/internal/datalog"
	"algrec/internal/semantics"
)

// Language identifies one of the paper's four query languages.
type Language string

// The four query languages.
const (
	// LangAlgebra is a single algebra expression without recursion: the
	// operators ∪ − × σ MAP over complex objects (Section 2.3).
	LangAlgebra Language = "algebra"
	// LangIFPAlgebra extends LangAlgebra with the inflationary fixpoint
	// operator ifp(x, e) (Section 3.1).
	LangIFPAlgebra Language = "ifp-algebra"
	// LangAlgebraEq is the algebra= language: scripts of rel/def/query
	// statements whose recursive definitions are read under a chosen
	// semantics (Section 3.2).
	LangAlgebraEq Language = "algebra="
	// LangDatalog is the deductive language with negation (Section 4).
	LangDatalog Language = "datalog"
)

// ParseLanguage maps a name accepted on command lines and in requests to a
// Language. Accepted aliases: "ifp" for ifp-algebra, "algebra-eq" and
// "core" for algebra=, "dlog" for datalog.
func ParseLanguage(name string) (Language, error) {
	switch name {
	case "algebra":
		return LangAlgebra, nil
	case "ifp-algebra", "ifp":
		return LangIFPAlgebra, nil
	case "algebra=", "algebra-eq", "core":
		return LangAlgebraEq, nil
	case "datalog", "dlog":
		return LangDatalog, nil
	default:
		return "", fmt.Errorf("query: unknown language %q (want algebra, ifp-algebra, algebra= or datalog)", name)
	}
}

// Semantics identifies one of the six evaluation semantics.
type Semantics string

// The six semantics.
const (
	// SemValid is the paper's valid semantics (Section 2.2).
	SemValid Semantics = "valid"
	// SemWellFounded is the well-founded (alternating fixpoint) semantics.
	SemWellFounded Semantics = "wellfounded"
	// SemStable is the stable-model semantics; evaluation may return any
	// number of models.
	SemStable Semantics = "stable"
	// SemInflationary reads negation as "was not derived so far".
	SemInflationary Semantics = "inflationary"
	// SemStratified is stratum-by-stratum minimal-model evaluation.
	SemStratified Semantics = "stratified"
	// SemMinimal is the minimal model of a positive program.
	SemMinimal Semantics = "minimal"
)

// ParseSemantics maps a name accepted on command lines and in requests to a
// Semantics. The empty string defaults to SemValid; "well-founded" and
// "wfs" are accepted for SemWellFounded.
func ParseSemantics(name string) (Semantics, error) {
	switch name {
	case "", "valid":
		return SemValid, nil
	case "wellfounded", "well-founded", "wfs":
		return SemWellFounded, nil
	case "stable":
		return SemStable, nil
	case "inflationary":
		return SemInflationary, nil
	case "stratified":
		return SemStratified, nil
	case "minimal":
		return SemMinimal, nil
	default:
		return "", fmt.Errorf("query: unknown semantics %q (want valid, wellfounded, stable, inflationary, stratified or minimal)", name)
	}
}

// ErrUnsupportedSemantics is wrapped by Compile errors rejecting a
// (language, semantics) pair outside CompatibleSemantics.
var ErrUnsupportedSemantics = fmt.Errorf("query: semantics not supported for this language")

// CompatibleSemantics returns the semantics under which the language can be
// evaluated. The expression languages are deterministic — every semantics
// agrees — so all six are accepted and evaluate identically. algebra=
// programs evaluate natively under valid and inflationary and, through the
// Proposition 5.4 translation to deduction, under wellfounded and stable;
// minimal and stratified have no algebra= reading (defining equations have
// no strata). Datalog supports all six.
func CompatibleSemantics(lang Language) []Semantics {
	switch lang {
	case LangAlgebra, LangIFPAlgebra, LangDatalog:
		return []Semantics{SemValid, SemWellFounded, SemStable, SemInflationary, SemStratified, SemMinimal}
	case LangAlgebraEq:
		return []Semantics{SemValid, SemWellFounded, SemStable, SemInflationary}
	default:
		return nil
	}
}

// Plan is a compiled query: parsed and validated, independent of any
// database. Plans are immutable after Compile and safe to share between
// concurrent Execute calls — that is what makes them cacheable.
type Plan struct {
	// Language and Semantics are the pair the plan was compiled for.
	Language  Language
	Semantics Semantics
	// Source is the original query text.
	Source string

	// Expr is the compiled expression for LangAlgebra and LangIFPAlgebra.
	Expr algebra.Expr
	// Script is the compiled script for LangAlgebraEq: inline relations,
	// the program of defining equations, and query statements.
	Script *parse.Script
	// Program is the compiled program for LangDatalog.
	Program *datalog.Program
}

// Compile parses and validates src as a query in the given language under
// the given semantics. The result is database-independent; run it with
// Execute. Compile errors are syntax or validation errors (including an
// ErrUnsupportedSemantics pair); they are not cached by the serving layer.
func Compile(lang Language, sem Semantics, src string) (*Plan, error) {
	supported := false
	for _, s := range CompatibleSemantics(lang) {
		if s == sem {
			supported = true
			break
		}
	}
	if !supported {
		return nil, fmt.Errorf("%w: %s under %s (supported: %v)", ErrUnsupportedSemantics, lang, sem, CompatibleSemantics(lang))
	}
	p := &Plan{Language: lang, Semantics: sem, Source: src}
	switch lang {
	case LangAlgebra, LangIFPAlgebra:
		e, err := parse.ParseExpr(src)
		if err != nil {
			return nil, err
		}
		if lang == LangAlgebra {
			if bad := findIFP(e); bad {
				return nil, fmt.Errorf("query: the algebra language has no ifp operator; compile the query as ifp-algebra")
			}
		}
		p.Expr = e
	case LangAlgebraEq:
		s, err := parse.ParseScript(src)
		if err != nil {
			return nil, err
		}
		p.Script = s
	case LangDatalog:
		prog, err := datalog.ParseProgram(src)
		if err != nil {
			return nil, err
		}
		if sem == SemStratified {
			if !datalog.IsStratified(prog) {
				return nil, fmt.Errorf("%w: the program is not stratifiable", ErrUnsupportedSemantics)
			}
		}
		p.Program = prog
	default:
		return nil, fmt.Errorf("query: unknown language %q", lang)
	}
	return p, nil
}

// findIFP reports whether the expression contains an IFP operator.
func findIFP(e algebra.Expr) bool {
	switch ee := e.(type) {
	case algebra.Rel, algebra.Lit:
		return false
	case algebra.Union:
		return findIFP(ee.L) || findIFP(ee.R)
	case algebra.Diff:
		return findIFP(ee.L) || findIFP(ee.R)
	case algebra.Product:
		return findIFP(ee.L) || findIFP(ee.R)
	case algebra.Select:
		return findIFP(ee.Of)
	case algebra.Map:
		return findIFP(ee.Of)
	case algebra.IFP:
		return true
	case algebra.Flip:
		return findIFP(ee.E)
	case algebra.Call:
		for _, a := range ee.Args {
			if findIFP(a) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("query: unknown Expr %T", e))
	}
}

// mapDatalogSemantics converts a query Semantics to the engine-level
// semantics.Semantics (SemStable is dispatched separately).
func mapDatalogSemantics(sem Semantics) (semantics.Semantics, error) {
	switch sem {
	case SemValid:
		return semantics.SemValid, nil
	case SemWellFounded:
		return semantics.SemWellFounded, nil
	case SemInflationary:
		return semantics.SemInflationary, nil
	case SemStratified:
		return semantics.SemStratified, nil
	case SemMinimal:
		return semantics.SemMinimal, nil
	default:
		return 0, fmt.Errorf("query: no engine semantics for %q", sem)
	}
}

// ReadInput reads a query from path, or from stdin when path is "" or "-".
// It is the shared input convention of cmd/algq and cmd/dlog.
func ReadInput(path string, stdin io.Reader) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
