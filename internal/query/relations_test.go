package query

import (
	"reflect"
	"testing"
)

func planRels(t *testing.T, lang Language, src string) ([]string, bool) {
	t.Helper()
	p, err := Compile(lang, SemValid, src)
	if err != nil {
		t.Fatalf("Compile(%s, %q): %v", lang, src, err)
	}
	return p.Relations()
}

func TestRelationsAlgebra(t *testing.T) {
	names, all := planRels(t, LangAlgebra, "product(union(e, r), s)")
	if all {
		t.Fatal("algebra plan claims to need the whole database")
	}
	if want := []string{"e", "r", "s"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
}

func TestRelationsIFPBoundExcluded(t *testing.T) {
	// The ifp-bound variable x is not an external relation.
	names, all := planRels(t, LangIFPAlgebra, "ifp(x, union(x, e))")
	if all {
		t.Fatal("ifp plan claims to need the whole database")
	}
	if want := []string{"e"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
}

func TestRelationsAlgebraEq(t *testing.T) {
	src := `rel base = {1, 2};
def t = union(e, t);
query union(t, ext);
query base;`
	names, all := planRels(t, LangAlgebraEq, src)
	if all {
		t.Fatal("algebra= plan claims to need the whole database")
	}
	// t is defined by the script, base is an inline rel: both excluded.
	if want := []string{"e", "ext"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
}

func TestRelationsDatalogNeedsAll(t *testing.T) {
	names, all := planRels(t, LangDatalog, "p(x) :- e(x, y).")
	if !all || names != nil {
		t.Fatalf("datalog plan = (%v, %v), want (nil, true)", names, all)
	}
}
