package query

import (
	"sort"

	"algrec/internal/algebra"
)

// Relations reports which database relations Execute may read for this plan.
// When all is false, names is the sorted, duplicate-free list of external
// relation names the plan can touch; loading exactly those from a backing
// store yields the same Outcome as loading the whole database. When all is
// true the plan's evaluation depends on the entire database (names is nil):
// datalog execution merges every database relation into the program's fact
// base and renders every predicate of the merged program, so no sound subset
// exists short of the full database.
//
// The serving layer uses this to materialize only the needed relations from
// a disk-backed database before Execute.
func (p *Plan) Relations() (names []string, all bool) {
	switch p.Language {
	case LangAlgebra, LangIFPAlgebra:
		return algebra.FreeRels(p.Expr), false
	case LangAlgebraEq:
		set := map[string]bool{}
		if p.Script.Program != nil {
			for _, n := range p.Script.Program.BaseRels() {
				set[n] = true
			}
		}
		for _, q := range p.Script.Queries {
			for _, n := range algebra.FreeRels(q.Expr) {
				set[n] = true
			}
		}
		// Names defined by the script itself never come from the database.
		if p.Script.Program != nil {
			for _, d := range p.Script.Program.Defs {
				delete(set, d.Name)
			}
		}
		// Inline rel statements shadow the external database.
		for n := range p.Script.DB {
			delete(set, n)
		}
		names = make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		return names, false
	default: // LangDatalog
		return nil, true
	}
}
