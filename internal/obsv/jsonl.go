package obsv

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// JSONL is a Collector that streams every event as one JSON object per line
// (JSON Lines), for offline analysis of a run (cmd/bench -trace). Each line
// carries the event kind, milliseconds since the collector was created, and
// the event's fields. Writes are serialized by a mutex, so one JSONL may be
// shared by concurrent reporters.
type JSONL struct {
	mu    sync.Mutex
	enc   *json.Encoder
	start time.Time
}

// NewJSONL returns a collector streaming events to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w), start: time.Now()}
}

// event is the wire form of one JSONL line.
type event struct {
	Kind string  `json:"event"`
	MS   float64 `json:"ms"` // milliseconds since the trace started
	Data any     `json:"data"`
}

func (j *JSONL) emit(kind string, data any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Encoding errors are deliberately dropped: a broken trace sink must
	// never fail the computation it observes.
	_ = j.enc.Encode(event{Kind: kind, MS: float64(time.Since(j.start).Microseconds()) / 1000, Data: data})
}

// Fixpoint implements Collector.
func (j *JSONL) Fixpoint(s FixpointStats) { j.emit("fixpoint", s) }

// IFP implements Collector.
func (j *JSONL) IFP(s IFPStats) { j.emit("ifp", s) }

// CoreEval implements Collector.
func (j *JSONL) CoreEval(s CoreEvalStats) { j.emit("core_eval", s) }

// StableSearch implements Collector.
func (j *JSONL) StableSearch(s StableSearchStats) { j.emit("stable_search", s) }

// Ground implements Collector.
func (j *JSONL) Ground(s GroundStats) { j.emit("ground", s) }

// Translate implements Collector.
func (j *JSONL) Translate(s TranslateStats) { j.emit("translate", s) }

// Experiment implements Collector.
func (j *JSONL) Experiment(s ExperimentStats) { j.emit("experiment", s) }

// Server implements Collector.
func (j *JSONL) Server(s ServerStats) { j.emit("server", s) }

// Subscription implements Collector.
func (j *JSONL) Subscription(s SubscriptionStats) { j.emit("subscription", s) }

// Stream implements Collector.
func (j *JSONL) Stream(s StreamStats) { j.emit("stream", s) }
