package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestStatsFoldsAndSnapshots(t *testing.T) {
	s := NewStats()
	s.Fixpoint(FixpointStats{Semantics: "minimal", Passes: 1, Derived: 5, ScratchAllocated: 1})
	s.Fixpoint(FixpointStats{Semantics: "minimal", Passes: 1, Derived: 3, ScratchReused: 1})
	s.Fixpoint(FixpointStats{Semantics: "inflationary", Passes: 4, Deltas: []int{2, 1, 1, 0}})
	s.Ground(GroundStats{Atoms: 10, Rules: 20, Passes: 3, DeltaHits: 7, DeltaSkips: 2})
	s.Translate(TranslateStats{Op: "stepindex", InSize: 4, OutSize: 12, Steps: 3})
	s.StableSearch(StableSearchStats{Undef: 4, Candidates: 16, Models: 4, Workers: 1, Chunks: 1})

	snap := s.Snapshot()
	want := map[string]int64{
		"fixpoint.minimal.calls":           2,
		"fixpoint.minimal.passes":          2,
		"fixpoint.minimal.derived":         8,
		"fixpoint.inflationary.calls":      1,
		"fixpoint.inflationary.passes":     4,
		"fixpoint.inflationary.deltaAtoms": 4,
		"scratch.reused":                   1,
		"scratch.allocated":                1,
		"ground.calls":                     1,
		"ground.atoms":                     10,
		"ground.rules":                     20,
		"ground.passes":                    3,
		"ground.deltaHits":                 7,
		"ground.deltaSkips":                2,
		"translate.stepindex.calls":        1,
		"translate.stepindex.inSize":       4,
		"translate.stepindex.outSize":      12,
		"stable.searches":                  1,
		"stable.candidates":                16,
		"stable.models":                    4,
		"stable.chunks":                    1,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("counter %s = %d, want %d", k, snap[k], v)
		}
	}

	before := snap
	s.Fixpoint(FixpointStats{Semantics: "minimal", Passes: 1, Derived: 2})
	d := s.Snapshot().Sub(before)
	if d["fixpoint.minimal.calls"] != 1 || d["fixpoint.minimal.derived"] != 2 {
		t.Errorf("snapshot delta wrong: %v", d)
	}
	if _, ok := d["ground.calls"]; ok {
		t.Errorf("unchanged counter survived Sub: %v", d)
	}
}

func TestStatsConcurrent(t *testing.T) {
	s := NewStats()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Fixpoint(FixpointStats{Semantics: "minimal", Passes: 1})
			}
		}()
	}
	wg.Wait()
	if got := s.Snapshot()["fixpoint.minimal.calls"]; got != 800 {
		t.Fatalf("lost updates: calls = %d, want 800", got)
	}
}

func TestJSONLEmitsOneObjectPerEvent(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Fixpoint(FixpointStats{Semantics: "valid", Passes: 2, Derived: 7})
	j.Ground(GroundStats{Atoms: 3, Rules: 4})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var ev struct {
		Kind string          `json:"event"`
		Data json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "fixpoint" {
		t.Fatalf("first event kind = %q, want fixpoint", ev.Kind)
	}
	var fp FixpointStats
	if err := json.Unmarshal(ev.Data, &fp); err != nil {
		t.Fatal(err)
	}
	if fp.Semantics != "valid" || fp.Passes != 2 || fp.Derived != 7 {
		t.Fatalf("fixpoint payload round-trip lost data: %+v", fp)
	}
}

func TestMultiAndDefault(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of nothing should be nil")
	}
	a, b := NewStats(), NewStats()
	if got := Multi(nil, a); got != Collector(a) {
		t.Fatal("Multi of one collector should return it directly")
	}
	m := Multi(a, b)
	m.Fixpoint(FixpointStats{Semantics: "minimal"})
	if a.Snapshot()["fixpoint.minimal.calls"] != 1 || b.Snapshot()["fixpoint.minimal.calls"] != 1 {
		t.Fatal("Multi did not fan out")
	}

	if Default() != nil {
		t.Fatal("default collector should start nil")
	}
	SetDefault(a)
	if Default() != Collector(a) {
		t.Fatal("SetDefault did not take")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) did not disable")
	}
}
