package obsv

import (
	"maps"
	"sort"
	"sync"
)

// Stats is a Collector that folds every event into named counters. It is
// safe for concurrent use. Counter names are dotted paths; the fixed
// vocabulary is documented on Snapshot.
type Stats struct {
	mu sync.Mutex
	c  map[string]int64
}

// NewStats returns an empty counter collector.
func NewStats() *Stats { return &Stats{c: map[string]int64{}} }

func (s *Stats) add(kvs ...any) {
	s.mu.Lock()
	for i := 0; i+1 < len(kvs); i += 2 {
		s.c[kvs[i].(string)] += kvs[i+1].(int64)
	}
	s.mu.Unlock()
}

// Fixpoint implements Collector.
func (s *Stats) Fixpoint(f FixpointStats) {
	p := "fixpoint." + f.Semantics
	var deltaSum int64
	for _, d := range f.Deltas {
		deltaSum += int64(d)
	}
	s.add(
		p+".calls", int64(1),
		p+".passes", int64(f.Passes),
		p+".derived", int64(f.Derived),
		p+".deltaAtoms", deltaSum,
		"scratch.reused", int64(f.ScratchReused),
		"scratch.allocated", int64(f.ScratchAllocated),
	)
}

// IFP implements Collector.
func (s *Stats) IFP(f IFPStats) {
	p := "ifp." + f.Mode
	var deltaSum int64
	for _, d := range f.Deltas {
		deltaSum += int64(d)
	}
	s.add(
		p+".calls", int64(1),
		p+".rounds", int64(f.Rounds),
		p+".deltaElems", deltaSum,
	)
}

// CoreEval implements Collector.
func (s *Stats) CoreEval(c CoreEvalStats) {
	p := "core." + c.Semantics
	s.add(
		p+".calls", int64(1),
		p+".rounds", int64(c.Rounds),
		p+".evals", int64(c.Evals),
		p+".skips", int64(c.Skips),
	)
}

// StableSearch implements Collector.
func (s *Stats) StableSearch(st StableSearchStats) {
	s.add(
		"stable.searches", int64(1),
		"stable.candidates", int64(st.Candidates),
		"stable.models", int64(st.Models),
		"stable.chunks", int64(st.Chunks),
		"scratch.reused", int64(st.ScratchReused),
		"scratch.allocated", int64(st.ScratchAllocated),
	)
}

// Ground implements Collector.
func (s *Stats) Ground(g GroundStats) {
	s.add(
		"ground.calls", int64(1),
		"ground.atoms", int64(g.Atoms),
		"ground.rules", int64(g.Rules),
		"ground.passes", int64(g.Passes),
		"ground.deltaHits", int64(g.DeltaHits),
		"ground.deltaSkips", int64(g.DeltaSkips),
	)
}

// Translate implements Collector.
func (s *Stats) Translate(t TranslateStats) {
	p := "translate." + t.Op
	s.add(
		p+".calls", int64(1),
		p+".inSize", int64(t.InSize),
		p+".outSize", int64(t.OutSize),
	)
}

// Experiment implements Collector.
func (s *Stats) Experiment(e ExperimentStats) {
	s.add(
		"expt.runs", int64(1),
		"expt.wallNS", e.WallNS,
		"expt.cpuNS", e.CPUNS,
	)
}

// Server implements Collector.
func (s *Stats) Server(v ServerStats) {
	kvs := []any{
		"server." + v.Route + ".requests", int64(1),
		"server.wallNS", v.WallNS,
	}
	if v.Code != "" {
		kvs = append(kvs, "server.errors."+v.Code, int64(1))
	}
	if v.CacheLookup {
		if v.CacheHit {
			kvs = append(kvs, "server.cache.hits", int64(1))
		} else {
			kvs = append(kvs, "server.cache.misses", int64(1))
		}
		if v.Compiled {
			kvs = append(kvs, "server.compiles", int64(1))
		}
	}
	s.add(kvs...)
}

// Subscription implements Collector.
func (s *Stats) Subscription(v SubscriptionStats) {
	s.add(
		"server.subscriptions", int64(1),
		"server.subscription.events", int64(v.Events),
		"server.subscription.coalesced", int64(v.Coalesced),
		"server.subscription.ends."+v.Reason, int64(1),
		"server.subscription.wallNS", v.WallNS,
	)
}

// Stream implements Collector.
func (s *Stats) Stream(v StreamStats) {
	s.add(
		"stream.pipelines", int64(1),
		"stream.scanned", int64(v.Scanned),
		"stream.tested", int64(v.Tested),
		"stream.emitted", int64(v.Emitted),
		"stream.hashJoins", int64(v.HashJoins),
		"stream.pushed", int64(v.Pushed),
	)
}

// Snapshot is an immutable copy of a Stats collector's counters. The
// counter vocabulary:
//
//	fixpoint.<semantics>.calls|passes|derived|deltaAtoms
//	ifp.<mode>.calls|rounds|deltaElems
//	core.<semantics>.calls|rounds|evals|skips
//	stable.searches|candidates|models|chunks
//	scratch.reused|allocated
//	ground.calls|atoms|rules|passes|deltaHits|deltaSkips
//	translate.<op>.calls|inSize|outSize
//	expt.runs|wallNS|cpuNS
//	server.<route>.requests, server.wallNS, server.errors.<code>,
//	server.cache.hits|misses, server.compiles
//	server.subscriptions, server.subscription.events|coalesced|wallNS,
//	server.subscription.ends.<reason>
//	stream.pipelines|scanned|tested|emitted|hashJoins|pushed
type Snapshot map[string]int64

// Snapshot returns a copy of the current counters.
func (s *Stats) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return maps.Clone(map[string]int64(s.c))
}

// Sub returns a − b per counter, dropping zero results: the events recorded
// between two snapshots of the same collector.
func (a Snapshot) Sub(b Snapshot) Snapshot {
	out := Snapshot{}
	for k, v := range a {
		if d := v - b[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// Keys returns the counter names in sorted order, for deterministic
// rendering.
func (a Snapshot) Keys() []string {
	out := make([]string, 0, len(a))
	for k := range a {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
