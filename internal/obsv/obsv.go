// Package obsv is the observability layer of the repository: a small event
// vocabulary describing what the engines did — fixpoint passes, delta sizes,
// scratch-buffer reuse, grounding passes and delta-window hits, translation
// sizes, experiment run cost — plus collectors that aggregate or stream
// those events.
//
// Instrumented code holds a Collector and reports events at *call*
// granularity (one event per fixpoint computation, one per grounding, one
// per translation), never from inside a hot loop; a nil Collector means
// disabled, and every instrumentation site is guarded by a nil check, so the
// kernels pay nothing when observability is off. That contract is
// benchmark-verified: BenchmarkP4CollectorOff (repository root) must stay
// within noise of the pre-instrumentation kernel.
//
// Collectors:
//
//   - *Stats folds events into named counters (thread-safe; Snapshot /
//     Snapshot.Sub give per-phase deltas). cmd/bench attributes counters to
//     experiments with it and embeds them in the machine-readable record
//     that EXPERIMENTS.md's tables are generated from.
//   - *JSONL streams every event as one JSON object per line (cmd/bench
//     -trace).
//   - Multi fans one event out to several collectors.
//
// The process-wide default collector (SetDefault / Default) is how events
// escape code that constructs its own engines internally: engine
// constructors capture Default() at construction time, so installing a
// collector before a run observes everything the run does, at zero cost to
// runs that never install one.
package obsv

import "sync/atomic"

// FixpointStats describes one completed fixpoint computation of a semantics
// engine: one call to Minimal, MinimalNaive, Inflationary, WellFounded,
// Valid or Stratified.
type FixpointStats struct {
	// Semantics names the entry point: "minimal", "minimal-naive",
	// "inflationary", "wellfounded", "valid", "stratified".
	Semantics string
	// Passes counts the semantics' own iteration unit: alternating gamma
	// iterations for wellfounded/valid, inflationary steps after step 0,
	// strata for stratified, full-program rounds for minimal-naive, and 1
	// for the single worklist pass of minimal.
	Passes int
	// Atoms is the size of the ground program's atom universe.
	Atoms int
	// Derived is the number of atoms true in the computed model (the
	// popcount of the final truth vector; for three-valued semantics, the
	// certainly-true set).
	Derived int
	// Deltas holds per-pass growth where the semantics computes it anyway
	// (the inflationary engine's per-step head counts). Nil when the
	// semantics has no per-pass delta.
	Deltas []int
	// ScratchReused and ScratchAllocated count truth-vector requests served
	// from the engine's scratch pool vs freshly allocated during this call.
	ScratchReused    int
	ScratchAllocated int
}

// StableSearchStats describes one StableModels search.
type StableSearchStats struct {
	Undef      int    // residual size after the well-founded model
	Candidates uint64 // candidate masks checked (2^Undef)
	Models     int    // stable models found
	Workers    int    // worker goroutines used (1 = serial path)
	Chunks     int    // mask-space chunks handed out (1 = serial path)
	// ScratchReused and ScratchAllocated aggregate over all workers.
	ScratchReused    int
	ScratchAllocated int
}

// IFPStats describes one completed IFP fixpoint evaluation of a set
// expression — by the two-valued evaluator of internal/algebra or the
// three-valued dual evaluator of internal/core.
type IFPStats struct {
	// Mode is "seminaive" when the delta engine evaluated the body only on
	// the per-round delta (the body is distributive over union in the
	// fixpoint variable), "naive" when every round re-evaluated the body on
	// the full accumulator.
	Mode string
	// Rounds counts body evaluations, including the final unchanged round
	// that detects the fixpoint.
	Rounds int
	// Result is the cardinality of the fixpoint.
	Result int
	// Deltas holds the per-round growth of the accumulator (the delta sizes
	// driving the semi-naive engine; the last entry is always 0).
	Deltas []int
}

// CoreEvalStats describes one algebra= program evaluation by internal/core:
// one EvalValid or EvalInflationary call.
type CoreEvalStats struct {
	// Semantics is "valid" or "inflationary".
	Semantics string
	// Defs is the number of defined constants after inlining.
	Defs int
	// Strata is the number of strongly-connected components the scheduler
	// evaluated in topological order; 0 for the naive engine
	// (Budget.NoSemiNaive), which has no schedule.
	Strata int
	// Gammas counts Γ passes: two per alternation round for "valid", always
	// 1 for "inflationary" (its rounds are global).
	Gammas int
	// Rounds is the total number of evaluation rounds summed over strata and
	// Γ passes.
	Rounds int
	// Evals counts definition bodies evaluated; Skips counts (definition,
	// round) pairs the delta tracker proved redundant — no input set of the
	// definition changed in the previous round — and skipped.
	Evals int
	Skips int
	// Workers is the largest worker-pool size used to evaluate independent
	// same-stratum definitions concurrently (1 = everything ran serially).
	Workers int
}

// GroundStats describes one grounding (ground.Ground call).
type GroundStats struct {
	Atoms      int // ground atoms interned
	Rules      int // ground rules emitted
	Passes     int // delta-driven passes after pass 0
	DeltaHits  int // (rule, delta-literal) enumerations attempted
	DeltaSkips int // (rule, delta-literal) enumerations skipped: empty delta window
}

// TranslateStats describes one translation between the paradigms.
type TranslateStats struct {
	// Op names the translation: "alg2dlog" (Prop 5.1), "core2dlog"
	// (Prop 5.4), "dlog2core" (Prop 6.1), "stepindex" (Prop 5.2),
	// "strat2ifp" (Thm 4.3), "elimifp" (Thm 3.5).
	Op string
	// InSize and OutSize measure the syntactic object on each side of the
	// translation: rule counts for deductive programs, definition counts
	// for algebra= programs, and — for the expression input of "alg2dlog" —
	// the number of subexpressions translated (one fresh predicate each).
	InSize  int
	OutSize int
	// Steps is the step-index bound for "stepindex" and "elimifp"; 0
	// elsewhere.
	Steps int
}

// ServerStats describes one HTTP request completed by the resident query
// service (internal/server): the route, the query's language and semantics,
// the structured outcome, how the request interacted with the compiled-plan
// cache, and its wall time. One event per request, emitted from the
// handler's epilogue.
type ServerStats struct {
	// Route is the endpoint that served the request: "query", "dbs",
	// "metrics" or "healthz".
	Route string
	// Language and Semantics echo the query request ("" on non-query
	// routes and on requests rejected before decoding).
	Language  string
	Semantics string
	// Code is "" for a successful request, else the structured error code
	// of the JSON error body ("parse-error", "unknown-database",
	// "budget-exceeded", "timeout", ...).
	Code string
	// CacheLookup reports that the request consulted the plan cache at
	// all — false for requests rejected before the lookup (malformed
	// body, unknown database, draining), so hit/miss counters only cover
	// requests that could have hit.
	CacheLookup bool
	// CacheHit reports that the compiled plan was served from the LRU
	// cache; Compiled reports that this request performed the compilation
	// (the singleflight leader — concurrent identical queries see
	// Compiled on exactly one request).
	CacheHit bool
	Compiled bool
	// WallNS is the request's wall-clock time in nanoseconds.
	WallNS int64
}

// SubscriptionStats describes one completed long-lived query subscription
// (internal/server POST /v1/subscribe): how the standing query was
// maintained, how many deltas the client received, and how backpressure was
// resolved. One event per subscription, emitted when its stream closes.
type SubscriptionStats struct {
	// Language and Semantics echo the subscribed query.
	Language  string
	Semantics string
	// Mode is the ivm.View maintenance mode: "incremental" or "recompute".
	Mode string
	// Events counts delta events written to the client (the initial
	// snapshot event included).
	Events int
	// Coalesced counts database versions folded into an already-pending
	// delta because the client had not drained the previous event yet.
	Coalesced int
	// Reason says why the subscription ended: "client-gone" (the client
	// disconnected or its context expired), "drain" (server shutdown),
	// "slow-consumer" (the pending delta outgrew the backpressure cap),
	// "db-replaced" (the database was re-registered wholesale), or "error"
	// (maintenance failed).
	Reason string
	// WallNS is the subscription's total lifetime in nanoseconds.
	WallNS int64
}

// StreamStats describes one streamed pipeline evaluation by the streaming
// execution runtime (internal/algebra StreamEval): one σ/MAP pipeline over a
// product compiled into lazy iterators, with pushdown and hash-join steps.
// One event per pipeline, emitted after the result set is collected.
type StreamStats struct {
	// Op names the pipeline's root operator: "select", "map", "union",
	// "product".
	Op string
	// Leaves counts the materialized leaf scans feeding the pipeline.
	Leaves int
	// Scanned counts elements read from leaf scans — the unit the pushdown
	// tests assert on: pushing a selective conjunct below a join shrinks the
	// candidate lists without changing Scanned, while Tested shrinks because
	// fewer full rows reach the complete test.
	Scanned int
	// Tested counts complete-test evaluations on assembled elements; Emitted
	// counts elements that passed.
	Tested  int
	Emitted int
	// Result is the cardinality of the collected (deduplicated) output.
	Result int
	// HashJoins counts hash-join steps in the chosen plan; Pushed counts
	// conjuncts pushed into leaf scans.
	HashJoins int
	Pushed    int
}

// ExperimentStats describes one experiment (or one shard of one) run by the
// internal/expt harness.
type ExperimentStats struct {
	ID     string // experiment id (E1..E11, P1..P6, A1..A4)
	Shard  int    // shard index, -1 for a whole-suite run
	WallNS int64  // wall-clock nanoseconds
	CPUNS  int64  // process CPU nanoseconds (0 when unattributable)
}

// Collector receives observability events. Implementations must be safe for
// concurrent use: the parallel experiment runner and the stable-model worker
// pool report from multiple goroutines.
//
// A nil Collector means observability is disabled; instrumented code checks
// for nil before building an event, so disabled instrumentation costs one
// predictable branch per engine call.
type Collector interface {
	Fixpoint(FixpointStats)
	IFP(IFPStats)
	CoreEval(CoreEvalStats)
	StableSearch(StableSearchStats)
	Ground(GroundStats)
	Translate(TranslateStats)
	Experiment(ExperimentStats)
	Server(ServerStats)
	Subscription(SubscriptionStats)
	Stream(StreamStats)
}

// Nop is a Collector that discards every event. Embed it to implement only
// the events a custom collector cares about. The disabled state is a nil
// Collector, not a Nop: nil lets instrumentation skip event construction
// entirely.
type Nop struct{}

// Fixpoint implements Collector.
func (Nop) Fixpoint(FixpointStats) {}

// IFP implements Collector.
func (Nop) IFP(IFPStats) {}

// CoreEval implements Collector.
func (Nop) CoreEval(CoreEvalStats) {}

// StableSearch implements Collector.
func (Nop) StableSearch(StableSearchStats) {}

// Ground implements Collector.
func (Nop) Ground(GroundStats) {}

// Translate implements Collector.
func (Nop) Translate(TranslateStats) {}

// Experiment implements Collector.
func (Nop) Experiment(ExperimentStats) {}

// Server implements Collector.
func (Nop) Server(ServerStats) {}

// Subscription implements Collector.
func (Nop) Subscription(SubscriptionStats) {}

// Stream implements Collector.
func (Nop) Stream(StreamStats) {}

// multi fans events out to several collectors in order.
type multi []Collector

// Multi returns a Collector that forwards every event to each non-nil
// collector in cs, in order. With zero or one non-nil collectors it returns
// nil or that collector directly.
func Multi(cs ...Collector) Collector {
	var live multi
	for _, c := range cs {
		if c != nil {
			live = append(live, c)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

func (m multi) Fixpoint(s FixpointStats) {
	for _, c := range m {
		c.Fixpoint(s)
	}
}

func (m multi) IFP(s IFPStats) {
	for _, c := range m {
		c.IFP(s)
	}
}

func (m multi) CoreEval(s CoreEvalStats) {
	for _, c := range m {
		c.CoreEval(s)
	}
}

func (m multi) StableSearch(s StableSearchStats) {
	for _, c := range m {
		c.StableSearch(s)
	}
}

func (m multi) Ground(s GroundStats) {
	for _, c := range m {
		c.Ground(s)
	}
}

func (m multi) Translate(s TranslateStats) {
	for _, c := range m {
		c.Translate(s)
	}
}

func (m multi) Experiment(s ExperimentStats) {
	for _, c := range m {
		c.Experiment(s)
	}
}

func (m multi) Server(s ServerStats) {
	for _, c := range m {
		c.Server(s)
	}
}

func (m multi) Subscription(s SubscriptionStats) {
	for _, c := range m {
		c.Subscription(s)
	}
}

func (m multi) Stream(s StreamStats) {
	for _, c := range m {
		c.Stream(s)
	}
}

// holder wraps a Collector so a nil value can round-trip through
// atomic.Value (which rejects nil and requires a consistent concrete type).
type holder struct{ c Collector }

var def atomic.Value // holder

// SetDefault installs the process-wide default collector; nil disables it.
// Engine constructors and package-level entry points capture Default() when
// they start, so SetDefault takes effect for engines built afterwards.
func SetDefault(c Collector) { def.Store(holder{c}) }

// Default returns the process-wide default collector, or nil when none is
// installed — the zero-overhead disabled state.
func Default() Collector {
	if h, ok := def.Load().(holder); ok {
		return h.c
	}
	return nil
}
