// Package spec implements abstract data type specifications SPEC = (S, OP, E)
// (the paper's Definition 2.1): sort names, operation symbols, and
// (generalized conditional) equations. Negated conditions — disequations —
// are the Section 2.2 extension that makes negation available in the
// algebraic paradigm; specifications using them are interpreted under the
// valid-model approach (see the validspec subpackage for the constant-only
// decision procedure and internal/rewrite for executable specifications).
//
// The package also provides the paper's running specifications as builders:
// booleans, natural numbers, and the parameterized SET(data) specification of
// Section 2.1 with EMPTY, INS and MEM.
package spec

import (
	"fmt"
	"strings"

	"algrec/internal/term"
)

// Cond is one premise of a conditional equation: L = R, or L ≠ R when
// Negated (a generalized conditional equation in the paper's sense).
type Cond struct {
	L, R    term.Term
	Negated bool
}

// String renders the condition.
func (c Cond) String() string {
	op := " = "
	if c.Negated {
		op = " != "
	}
	return c.L.String() + op + c.R.String()
}

// Equation is a (generalized conditional) equation: Conds → Lhs = Rhs.
type Equation struct {
	Conds []Cond
	Lhs   term.Term
	Rhs   term.Term
	// Ordered marks a permutative equation (like INS commutativity) that the
	// rewriter applies only when it decreases the term order, keeping
	// rewriting terminating.
	Ordered bool
}

// String renders the equation.
func (e Equation) String() string {
	var sb strings.Builder
	if len(e.Conds) > 0 {
		parts := make([]string, len(e.Conds))
		for i, c := range e.Conds {
			parts[i] = c.String()
		}
		sb.WriteString(strings.Join(parts, ", "))
		sb.WriteString(" -> ")
	}
	sb.WriteString(e.Lhs.String())
	sb.WriteString(" = ")
	sb.WriteString(e.Rhs.String())
	return sb.String()
}

// HasNegation reports whether the equation has a disequation premise.
func (e Equation) HasNegation() bool {
	for _, c := range e.Conds {
		if c.Negated {
			return true
		}
	}
	return false
}

// Spec is an abstract data type specification.
type Spec struct {
	Name string
	Sig  *term.Signature
	Eqns []Equation
}

// HasNegation reports whether any equation has a disequation premise; such
// specifications need the valid-model semantics (Section 2.2) since an
// initial model need not exist.
func (s *Spec) HasNegation() bool {
	for _, e := range s.Eqns {
		if e.HasNegation() {
			return true
		}
	}
	return false
}

// Validate checks that every equation is well-sorted and that both sides of
// each (dis)equation have the same sort.
func (s *Spec) Validate() error {
	checkPair := func(what string, l, r term.Term) error {
		ls, err := term.SortOf(l, s.Sig)
		if err != nil {
			return fmt.Errorf("spec %s: %s: %w", s.Name, what, err)
		}
		rs, err := term.SortOf(r, s.Sig)
		if err != nil {
			return fmt.Errorf("spec %s: %s: %w", s.Name, what, err)
		}
		if ls != rs {
			return fmt.Errorf("spec %s: %s: sorts %s and %s differ", s.Name, what, ls, rs)
		}
		return nil
	}
	for _, e := range s.Eqns {
		if err := checkPair("equation "+e.String(), e.Lhs, e.Rhs); err != nil {
			return err
		}
		for _, c := range e.Conds {
			if err := checkPair("condition "+c.String(), c.L, c.R); err != nil {
				return err
			}
		}
	}
	return nil
}

// Import combines specifications (the paper's "nat + bool + ..."): the
// result has the union of sorts, operations and equations.
func Import(name string, specs ...*Spec) (*Spec, error) {
	sig := term.NewSignature()
	out := &Spec{Name: name, Sig: sig}
	for _, sp := range specs {
		merged, err := sig.Extend(sp.Sig)
		if err != nil {
			return nil, fmt.Errorf("spec: importing %s into %s: %w", sp.Name, name, err)
		}
		sig = merged
		out.Eqns = append(out.Eqns, sp.Eqns...)
	}
	out.Sig = sig
	return out, nil
}

// String renders the specification in the paper's layout.
func (s *Spec) String() string {
	var sb strings.Builder
	sb.WriteString(s.Name)
	sb.WriteString("\nsorts: ")
	sb.WriteString(strings.Join(s.Sig.Sorts(), ", "))
	sb.WriteString("\nopns:\n")
	for _, d := range s.Sig.Ops() {
		sb.WriteString("  " + d.String() + "\n")
	}
	sb.WriteString("eqns:\n")
	for _, e := range s.Eqns {
		sb.WriteString("  " + e.String() + "\n")
	}
	return sb.String()
}
