// Package validspec implements the valid-model machinery of the paper's
// Section 2.2 for the decidable fragment singled out by Proposition 2.3(2):
// specifications whose operations are all constants (0-ary), with
// generalized conditional equations over them.
//
// For this fragment everything is finite: an algebra is a partition of the
// constants, the valid interpretation is computable exactly by the Section
// 2.2 alternating procedure on equality atoms, and the existence of an
// initial valid model is decidable — an initial valid model is a valid model
// whose partition refines every other valid model's (the refinement gives
// the unique homomorphism). The paper's Example 2 (constants a, b, c with
// a≠b → a=c and a≠c → a=b) has three valid models and no least one, hence no
// initial valid model; TestExample2 reproduces this. For specifications with
// non-constant operations the question is undecidable (Proposition 2.3(1)),
// which is why this package does not attempt it.
package validspec

import (
	"fmt"
	"strings"
)

// Lit is one condition over constants: A = B, or A ≠ B when Negated.
type Lit struct {
	A, B    string
	Negated bool
}

// String renders the condition.
func (l Lit) String() string {
	if l.Negated {
		return l.A + " != " + l.B
	}
	return l.A + " = " + l.B
}

// Clause is a generalized conditional equation over constants:
// Conds → A = B.
type Clause struct {
	Conds []Lit
	A, B  string
}

// String renders the clause.
func (c Clause) String() string {
	if len(c.Conds) == 0 {
		return c.A + " = " + c.B
	}
	parts := make([]string, len(c.Conds))
	for i, l := range c.Conds {
		parts[i] = l.String()
	}
	return strings.Join(parts, ", ") + " -> " + c.A + " = " + c.B
}

// ConstSpec is a constant-only specification of one sort.
type ConstSpec struct {
	Consts  []string
	Clauses []Clause
}

// Validate checks that every constant mentioned in a clause is declared.
func (cs *ConstSpec) Validate() error {
	idx := map[string]bool{}
	for _, c := range cs.Consts {
		if idx[c] {
			return fmt.Errorf("validspec: duplicate constant %q", c)
		}
		idx[c] = true
	}
	check := func(n string) error {
		if !idx[n] {
			return fmt.Errorf("validspec: undeclared constant %q", n)
		}
		return nil
	}
	for _, cl := range cs.Clauses {
		if err := check(cl.A); err != nil {
			return err
		}
		if err := check(cl.B); err != nil {
			return err
		}
		for _, l := range cl.Conds {
			if err := check(l.A); err != nil {
				return err
			}
			if err := check(l.B); err != nil {
				return err
			}
		}
	}
	return nil
}

// Partition is an equivalence relation on the spec's constants, represented
// by class labels in restricted-growth form: label[i] is the class of
// Consts[i], labels are assigned in first-occurrence order starting at 0.
type Partition []int

// Same reports whether constants at positions i and j are identified.
func (p Partition) Same(i, j int) bool { return p[i] == p[j] }

// Refines reports whether p identifies at most what q identifies — exactly
// the condition for a (necessarily unique) homomorphism from p's quotient to
// q's to exist.
func (p Partition) Refines(q Partition) bool {
	for i := range p {
		for j := i + 1; j < len(p); j++ {
			if p[i] == p[j] && q[i] != q[j] {
				return false
			}
		}
	}
	return true
}

// Equal reports whether two partitions are the same equivalence relation.
func (p Partition) Equal(q Partition) bool {
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders the partition as blocks, e.g. "{a, c} {b}".
func (p Partition) render(consts []string) string {
	max := -1
	for _, c := range p {
		if c > max {
			max = c
		}
	}
	blocks := make([][]string, max+1)
	for i, c := range p {
		blocks[c] = append(blocks[c], consts[i])
	}
	parts := make([]string, len(blocks))
	for i, b := range blocks {
		parts[i] = "{" + strings.Join(b, ", ") + "}"
	}
	return strings.Join(parts, " ")
}

// Render returns the partition's block form using the spec's constant names.
func (cs *ConstSpec) Render(p Partition) string { return p.render(cs.Consts) }

func (cs *ConstSpec) indexOf() map[string]int {
	idx := map[string]int{}
	for i, c := range cs.Consts {
		idx[c] = i
	}
	return idx
}

// satisfies reports whether the partition is a model of the clauses: for
// every clause whose conditions hold in the partition, the conclusion holds.
func (cs *ConstSpec) satisfies(p Partition, idx map[string]int) bool {
	for _, cl := range cs.Clauses {
		holds := true
		for _, l := range cl.Conds {
			same := p.Same(idx[l.A], idx[l.B])
			if l.Negated {
				same = !same
			}
			if !same {
				holds = false
				break
			}
		}
		if holds && !p.Same(idx[cl.A], idx[cl.B]) {
			return false
		}
	}
	return true
}

// Models enumerates all total algebras (partitions) satisfying the clauses.
// The enumeration is exponential in the number of constants (Bell numbers);
// MaxConsts guards it.
const MaxConsts = 12

// Models returns every model partition, in enumeration order.
func (cs *ConstSpec) Models() ([]Partition, error) {
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	if len(cs.Consts) > MaxConsts {
		return nil, fmt.Errorf("validspec: %d constants exceed the enumeration bound %d", len(cs.Consts), MaxConsts)
	}
	idx := cs.indexOf()
	var out []Partition
	n := len(cs.Consts)
	p := make(Partition, n)
	var rec func(i, maxLabel int)
	rec = func(i, maxLabel int) {
		if i == n {
			if cs.satisfies(p, idx) {
				out = append(out, append(Partition(nil), p...))
			}
			return
		}
		for c := 0; c <= maxLabel+1; c++ {
			p[i] = c
			next := maxLabel
			if c > maxLabel {
				next = c
			}
			rec(i+1, next)
		}
	}
	if n > 0 {
		rec(0, -1)
	}
	return out, nil
}

// uf is a small union-find over constant indices.
type uf []int

func newUF(n int) uf {
	u := make(uf, n)
	for i := range u {
		u[i] = i
	}
	return u
}

func (u uf) find(i int) int {
	for u[i] != i {
		u[i] = u[u[i]]
		i = u[i]
	}
	return i
}

func (u uf) union(i, j int) bool {
	ri, rj := u.find(i), u.find(j)
	if ri == rj {
		return false
	}
	u[ri] = rj
	return true
}

func (u uf) clone() uf {
	return append(uf(nil), u...)
}

func (u uf) toPartition() Partition {
	p := make(Partition, len(u))
	label := map[int]int{}
	next := 0
	for i := range u {
		r := u.find(i)
		l, ok := label[r]
		if !ok {
			l = next
			label[r] = l
			next++
		}
		p[i] = l
	}
	return p
}

// gamma computes one Γ step of the Section 2.2 procedure on equality atoms:
// the closure of the clauses (plus the equality axioms, maintained by the
// union-find) where a disequation condition a ≠ b may be used only when
// a = b does NOT hold in j, and derivation starts from the identifications
// in seed.
func (cs *ConstSpec) gamma(j uf, seed uf, idx map[string]int) uf {
	cur := seed.clone()
	for changed := true; changed; {
		changed = false
		for _, cl := range cs.Clauses {
			ok := true
			for _, l := range cl.Conds {
				if l.Negated {
					if j.find(idx[l.A]) == j.find(idx[l.B]) {
						ok = false
						break
					}
				} else {
					if cur.find(idx[l.A]) != cur.find(idx[l.B]) {
						ok = false
						break
					}
				}
			}
			if ok && cur.union(idx[cl.A], idx[cl.B]) {
				changed = true
			}
		}
	}
	return cur
}

// ValidInterpretation computes the valid interpretation of the spec: the
// certainly-equal partition T, and the possibly-equal partition U; pairs
// separated in U are certainly unequal, pairs identified in U but not in T
// have undefined equality status.
func (cs *ConstSpec) ValidInterpretation() (T, U Partition, err error) {
	if err := cs.Validate(); err != nil {
		return nil, nil, err
	}
	idx := cs.indexOf()
	n := len(cs.Consts)
	t := newUF(n)
	var u uf
	for {
		u = cs.gamma(t, t, idx)
		t2 := cs.gamma(u, t, idx)
		same := true
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (t.find(i) == t.find(j)) != (t2.find(i) == t2.find(j)) {
					same = false
				}
			}
		}
		if same {
			break
		}
		t = t2
	}
	return t.toPartition(), u.toPartition(), nil
}

// ValidModels returns the models that agree with the valid interpretation's
// true facts: every pair certainly equal is identified (Definition 2.2).
func (cs *ConstSpec) ValidModels() ([]Partition, error) {
	t, _, err := cs.ValidInterpretation()
	if err != nil {
		return nil, err
	}
	models, err := cs.Models()
	if err != nil {
		return nil, err
	}
	var out []Partition
	for _, m := range models {
		if t.Refines(m) {
			out = append(out, m)
		}
	}
	return out, nil
}

// InitialValidModel decides whether the spec has an initial valid model
// (Proposition 2.3(2)): a valid model with a unique homomorphism to every
// valid model, i.e. a least valid model under refinement. It returns the
// model and true, or nil and false when none exists (as in Example 2).
func (cs *ConstSpec) InitialValidModel() (Partition, bool, error) {
	valid, err := cs.ValidModels()
	if err != nil {
		return nil, false, err
	}
	for _, cand := range valid {
		least := true
		for _, other := range valid {
			if !cand.Refines(other) {
				least = false
				break
			}
		}
		if least {
			return cand, true, nil
		}
	}
	return nil, false, nil
}
