package validspec

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// example2 is the paper's Example 2: constants a, b, c with
// a ≠ b → a = c  and  a ≠ c → a = b.
func example2() *ConstSpec {
	return &ConstSpec{
		Consts: []string{"a", "b", "c"},
		Clauses: []Clause{
			{Conds: []Lit{{A: "a", B: "b", Negated: true}}, A: "a", B: "c"},
			{Conds: []Lit{{A: "a", B: "c", Negated: true}}, A: "a", B: "b"},
		},
	}
}

// TestExample2 reproduces the paper's Example 2 exactly: "SPEC has three
// such models: a model where a = b = c, a model where a = b ≠ c, and a model
// where a = c ≠ b. However, none of these are initial."
func TestExample2(t *testing.T) {
	cs := example2()
	models, err := cs.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 3 {
		for _, m := range models {
			t.Logf("model: %s", cs.Render(m))
		}
		t.Fatalf("got %d models, want 3", len(models))
	}
	rendered := map[string]bool{}
	for _, m := range models {
		rendered[cs.Render(m)] = true
	}
	for _, want := range []string{"{a, b, c}", "{a, b} {c}", "{a, c} {b}"} {
		if !rendered[want] {
			t.Errorf("missing model %s; have %v", want, rendered)
		}
	}
	// "All the models of SPEC are valid, since no equalities can be derived
	// in a valid manner."
	valid, err := cs.ValidModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(valid) != 3 {
		t.Errorf("got %d valid models, want 3", len(valid))
	}
	T, _, err := cs.ValidInterpretation()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Render(T) != "{a} {b} {c}" {
		t.Errorf("certainly-equal partition = %s, want discrete", cs.Render(T))
	}
	// "However, none of these are initial."
	if m, ok, err := cs.InitialValidModel(); err != nil || ok {
		t.Errorf("Example 2 should have no initial valid model; got %v, %v, %v", m, ok, err)
	}
}

func TestUnconditionalEquation(t *testing.T) {
	cs := &ConstSpec{
		Consts:  []string{"a", "b", "c"},
		Clauses: []Clause{{A: "a", B: "b"}},
	}
	T, U, err := cs.ValidInterpretation()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Render(T) != "{a, b} {c}" {
		t.Errorf("T = %s", cs.Render(T))
	}
	if !T.Equal(U) {
		t.Errorf("interpretation should be two-valued: T=%s U=%s", cs.Render(T), cs.Render(U))
	}
	m, ok, err := cs.InitialValidModel()
	if err != nil || !ok {
		t.Fatalf("expected initial valid model, got %v, %v", ok, err)
	}
	if cs.Render(m) != "{a, b} {c}" {
		t.Errorf("initial valid model = %s, want {a, b} {c}", cs.Render(m))
	}
}

func TestPositiveConditionalChain(t *testing.T) {
	// a=b → b=c, plus a=b: the derivation chains.
	cs := &ConstSpec{
		Consts: []string{"a", "b", "c"},
		Clauses: []Clause{
			{A: "a", B: "b"},
			{Conds: []Lit{{A: "a", B: "b"}}, A: "b", B: "c"},
		},
	}
	T, _, err := cs.ValidInterpretation()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Render(T) != "{a, b, c}" {
		t.Errorf("T = %s, want all equal", cs.Render(T))
	}
	m, ok, _ := cs.InitialValidModel()
	if !ok || cs.Render(m) != "{a, b, c}" {
		t.Errorf("initial valid model = %v, %v", m, ok)
	}
}

func TestNegativeConditionUsedValidly(t *testing.T) {
	// a ≠ b cannot ever be derived as equal, so the disequation holds
	// certainly and c = d follows.
	cs := &ConstSpec{
		Consts: []string{"a", "b", "c", "d"},
		Clauses: []Clause{
			{Conds: []Lit{{A: "a", B: "b", Negated: true}}, A: "c", B: "d"},
		},
	}
	T, _, err := cs.ValidInterpretation()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Render(T) != "{a} {b} {c, d}" {
		t.Errorf("T = %s", cs.Render(T))
	}
	m, ok, _ := cs.InitialValidModel()
	if !ok || cs.Render(m) != "{a} {b} {c, d}" {
		t.Errorf("initial valid model = %v, %v", m, ok)
	}
}

func TestSelfBlockingClause(t *testing.T) {
	// a ≠ b → a = b: deriving a = b would invalidate its own premise; the
	// equality status is undefined and the valid interpretation 3-valued,
	// but a total model must satisfy the clause, which forces a = b.
	cs := &ConstSpec{
		Consts: []string{"a", "b"},
		Clauses: []Clause{
			{Conds: []Lit{{A: "a", B: "b", Negated: true}}, A: "a", B: "b"},
		},
	}
	T, U, err := cs.ValidInterpretation()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Render(T) != "{a} {b}" || cs.Render(U) != "{a, b}" {
		t.Errorf("T = %s, U = %s", cs.Render(T), cs.Render(U))
	}
	models, err := cs.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || cs.Render(models[0]) != "{a, b}" {
		t.Errorf("models = %v", models)
	}
	m, ok, _ := cs.InitialValidModel()
	if !ok || cs.Render(m) != "{a, b}" {
		t.Errorf("initial valid model = %v, %v", m, ok)
	}
}

func TestPartitionOps(t *testing.T) {
	fine := Partition{0, 1, 2}
	mid := Partition{0, 0, 1}
	coarse := Partition{0, 0, 0}
	if !fine.Refines(mid) || !mid.Refines(coarse) || !fine.Refines(coarse) {
		t.Error("refinement chain broken")
	}
	if coarse.Refines(mid) || mid.Refines(fine) {
		t.Error("reverse refinement should fail")
	}
	other := Partition{0, 1, 0}
	if mid.Refines(other) || other.Refines(mid) {
		t.Error("incomparable partitions compared")
	}
	if !mid.Equal(Partition{0, 0, 1}) || mid.Equal(other) {
		t.Error("Equal wrong")
	}
	if !mid.Same(0, 1) || mid.Same(0, 2) {
		t.Error("Same wrong")
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []*ConstSpec{
		{Consts: []string{"a", "a"}},
		{Consts: []string{"a"}, Clauses: []Clause{{A: "a", B: "zzz"}}},
		{Consts: []string{"a", "b"}, Clauses: []Clause{{Conds: []Lit{{A: "q", B: "a"}}, A: "a", B: "b"}}},
	}
	for _, cs := range bad {
		if err := cs.Validate(); err == nil {
			t.Errorf("spec %+v should fail validation", cs)
		}
	}
	big := &ConstSpec{Consts: make([]string, MaxConsts+1)}
	for i := range big.Consts {
		big.Consts[i] = "c" + string(rune('a'+i))
	}
	if _, err := big.Models(); err == nil || !strings.Contains(err.Error(), "enumeration bound") {
		t.Errorf("oversized spec should be rejected, got %v", err)
	}
}

func TestLitClauseStrings(t *testing.T) {
	l := Lit{A: "a", B: "b", Negated: true}
	if l.String() != "a != b" {
		t.Errorf("Lit.String = %q", l.String())
	}
	c := Clause{Conds: []Lit{l}, A: "a", B: "c"}
	if c.String() != "a != b -> a = c" {
		t.Errorf("Clause.String = %q", c.String())
	}
	if (Clause{A: "x", B: "y"}).String() != "x = y" {
		t.Error("unconditional Clause.String wrong")
	}
}

// TestPropertyInitialIsLeast: whenever InitialValidModel succeeds, the
// result refines every valid model and is itself valid; whenever two
// incomparable minimal valid models exist, it fails.
func TestPropertyInitialIsLeast(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		consts := []string{"a", "b", "c", "d"}[:2+r.Intn(3)]
		n := 1 + r.Intn(4)
		cs := &ConstSpec{Consts: consts}
		pick := func() string { return consts[r.Intn(len(consts))] }
		for i := 0; i < n; i++ {
			cl := Clause{A: pick(), B: pick()}
			for j := r.Intn(3); j > 0; j-- {
				cl.Conds = append(cl.Conds, Lit{A: pick(), B: pick(), Negated: r.Intn(2) == 0})
			}
			cs.Clauses = append(cs.Clauses, cl)
		}
		valid, err := cs.ValidModels()
		if err != nil {
			return false
		}
		m, ok, err := cs.InitialValidModel()
		if err != nil {
			return false
		}
		if ok {
			for _, v := range valid {
				if !m.Refines(v) {
					return false
				}
			}
			found := false
			for _, v := range valid {
				if v.Equal(m) {
					found = true
				}
			}
			return found
		}
		// No initial model: no valid model refines all others.
		for _, cand := range valid {
			least := true
			for _, v := range valid {
				if !cand.Refines(v) {
					least = false
					break
				}
			}
			if least {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
