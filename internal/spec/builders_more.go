package spec

import (
	"fmt"

	"algrec/internal/term"
)

// This file adds the other structured types the paper's Section 2.1 names —
// "structured types like sets, lists, stacks, and so on, can be so defined"
// — plus the machinery its footnote 1 alludes to: a specification for sets
// over an element type may contain MEM iff equality is definable on the
// type, and defining equality on set(nat) lets SET be instantiated at
// set(nat) itself, giving nested sets.

// BoolOpsSpec extends BOOL with AND and OR; list/stack equality and the
// subset-based set equality need them.
func BoolOpsSpec() *Spec {
	b := BoolSpec()
	mustOp(b.Sig, "AND", []string{"bool", "bool"}, "bool")
	mustOp(b.Sig, "OR", []string{"bool", "bool"}, "bool")
	x := term.Var{Name: "x", Sort: "bool"}
	tr, fa := term.Const("TRUE"), term.Const("FALSE")
	b.Eqns = append(b.Eqns,
		Equation{Lhs: term.Mk("AND", tr, x), Rhs: x},
		Equation{Lhs: term.Mk("AND", fa, x), Rhs: term.Term(fa)},
		Equation{Lhs: term.Mk("OR", tr, x), Rhs: term.Term(tr)},
		Equation{Lhs: term.Mk("OR", fa, x), Rhs: x},
	)
	b.Name = "BOOLOPS"
	return b
}

// ListSpec returns the specification of finite lists over the element
// specification: NIL, CONS, HEADORD (head-or-default), TAIL, APPEND, LEN (as
// nat) and elementwise equality EQLIST (definable because eqOp is equality
// on the elements).
func ListSpec(elem *Spec, dataSort, eqOp string) (*Spec, error) {
	if !elem.Sig.HasSort(dataSort) {
		return nil, fmt.Errorf("spec: element spec %s does not define sort %q", elem.Name, dataSort)
	}
	if _, ok := elem.Sig.Op(eqOp); !ok {
		return nil, fmt.Errorf("spec: element spec %s does not define equality %q", elem.Name, eqOp)
	}
	listSort := "list(" + dataSort + ")"
	sig := term.NewSignature()
	sig.AddSort(dataSort)
	sig.AddSort("bool")
	sig.AddSort("nat")
	sig.AddSort(listSort)
	mustOp(sig, "NIL", nil, listSort)
	mustOp(sig, "CONS", []string{dataSort, listSort}, listSort)
	mustOp(sig, "APPEND", []string{listSort, listSort}, listSort)
	mustOp(sig, "LEN", []string{listSort}, "nat")
	mustOp(sig, "EQLIST", []string{listSort, listSort}, "bool")
	d := term.Var{Name: "d", Sort: dataSort}
	d2 := term.Var{Name: "d2", Sort: dataSort}
	l := term.Var{Name: "l", Sort: listSort}
	l2 := term.Var{Name: "l2", Sort: listSort}
	nilT := term.Const("NIL")
	core := &Spec{
		Name: "LIST(" + dataSort + ")",
		Sig:  sig,
		Eqns: []Equation{
			{Lhs: term.Mk("APPEND", nilT, l), Rhs: l},
			{Lhs: term.Mk("APPEND", term.Mk("CONS", d, l), l2), Rhs: term.Mk("CONS", d, term.Mk("APPEND", l, l2))},
			{Lhs: term.Mk("LEN", nilT), Rhs: term.Const("ZERO")},
			{Lhs: term.Mk("LEN", term.Mk("CONS", d, l)), Rhs: term.Mk("SUCC", term.Mk("LEN", l))},
			{Lhs: term.Mk("EQLIST", nilT, nilT), Rhs: term.Const("TRUE")},
			{Lhs: term.Mk("EQLIST", nilT, term.Mk("CONS", d, l)), Rhs: term.Const("FALSE")},
			{Lhs: term.Mk("EQLIST", term.Mk("CONS", d, l), nilT), Rhs: term.Const("FALSE")},
			{Lhs: term.Mk("EQLIST", term.Mk("CONS", d, l), term.Mk("CONS", d2, l2)),
				Rhs: term.Mk("AND", term.Mk(eqOp, d, d2), term.Mk("EQLIST", l, l2))},
		},
	}
	return Import("LIST("+dataSort+")", elem, BoolOpsSpec(), NatSpec(), core)
}

// StackSpec returns the classic stack over the element specification:
// EMPTYSTK, PUSH, POP, TOPORD (top-or-default, total via a default element),
// ISEMPTY. POP(EMPTYSTK) = EMPTYSTK and TOPORD(EMPTYSTK) = default keep the
// operations total, the usual algebraic treatment.
func StackSpec(elem *Spec, dataSort, defaultConst string) (*Spec, error) {
	if !elem.Sig.HasSort(dataSort) {
		return nil, fmt.Errorf("spec: element spec %s does not define sort %q", elem.Name, dataSort)
	}
	dd, ok := elem.Sig.Op(defaultConst)
	if !ok || dd.Arity() != 0 || dd.Result != dataSort {
		return nil, fmt.Errorf("spec: %q is not a constant of sort %s", defaultConst, dataSort)
	}
	stkSort := "stack(" + dataSort + ")"
	sig := term.NewSignature()
	sig.AddSort(dataSort)
	sig.AddSort("bool")
	sig.AddSort(stkSort)
	mustOp(sig, "EMPTYSTK", nil, stkSort)
	mustOp(sig, "PUSH", []string{dataSort, stkSort}, stkSort)
	mustOp(sig, "POP", []string{stkSort}, stkSort)
	mustOp(sig, "TOPORD", []string{stkSort}, dataSort)
	mustOp(sig, "ISEMPTY", []string{stkSort}, "bool")
	d := term.Var{Name: "d", Sort: dataSort}
	s := term.Var{Name: "s", Sort: stkSort}
	empty := term.Const("EMPTYSTK")
	core := &Spec{
		Name: "STACK(" + dataSort + ")",
		Sig:  sig,
		Eqns: []Equation{
			{Lhs: term.Mk("POP", empty), Rhs: term.Term(empty)},
			{Lhs: term.Mk("POP", term.Mk("PUSH", d, s)), Rhs: s},
			{Lhs: term.Mk("TOPORD", empty), Rhs: term.Const(defaultConst)},
			{Lhs: term.Mk("TOPORD", term.Mk("PUSH", d, s)), Rhs: d},
			{Lhs: term.Mk("ISEMPTY", empty), Rhs: term.Const("TRUE")},
			{Lhs: term.Mk("ISEMPTY", term.Mk("PUSH", d, s)), Rhs: term.Const("FALSE")},
		},
	}
	return Import("STACK("+dataSort+")", elem, BoolSpec(), core)
}

// WithSetEquality extends a SET(data) specification with subset and set
// equality: SUBSET and EQSET. EQSET is the definable equality the paper's
// footnote 1 requires before SET can be instantiated at set(data) itself —
// see NestedSetSpec.
func WithSetEquality(setSpec *Spec, dataSort string) (*Spec, error) {
	setSort := "set(" + dataSort + ")"
	if !setSpec.Sig.HasSort(setSort) {
		return nil, fmt.Errorf("spec: %s does not define %s", setSpec.Name, setSort)
	}
	sig := term.NewSignature()
	sig.AddSort(dataSort)
	sig.AddSort("bool")
	sig.AddSort(setSort)
	mustOp(sig, "SUBSET", []string{setSort, setSort}, "bool")
	mustOp(sig, "EQSET", []string{setSort, setSort}, "bool")
	d := term.Var{Name: "d", Sort: dataSort}
	s1 := term.Var{Name: "s1", Sort: setSort}
	s2 := term.Var{Name: "s2", Sort: setSort}
	core := &Spec{
		Name: "SETEQ(" + dataSort + ")",
		Sig:  sig,
		Eqns: []Equation{
			{Lhs: term.Mk("SUBSET", term.Const("EMPTY"), s2), Rhs: term.Const("TRUE")},
			{Lhs: term.Mk("SUBSET", term.Mk("INS", d, s1), s2),
				Rhs: term.Mk("AND", term.Mk("MEM", d, s2), term.Mk("SUBSET", s1, s2))},
			{Lhs: term.Mk("EQSET", s1, s2),
				Rhs: term.Mk("AND", term.Mk("SUBSET", s1, s2), term.Mk("SUBSET", s2, s1))},
		},
	}
	return Import(setSpec.Name+"+EQ", setSpec, BoolOpsSpec(), core)
}

// NestedSetSpec instantiates the parameterized SET specification at
// set(nat): sets of sets of naturals, with membership decided by the
// *definable* set equality EQSET — the instantiation the paper's
// parameterization story promises ("which can be instantiated by
// substituting a concrete type for data").
//
// One caveat mirrors the footnote: INS at the outer level compares inner
// sets with structural equality of canonical forms, so inner sets must be
// normalized before being inserted; the rewriter does that automatically
// because rewriting is innermost.
func NestedSetSpec() (*Spec, error) {
	inner, err := SetSpec(NatSpec(), "nat", "EQ")
	if err != nil {
		return nil, err
	}
	innerEq, err := WithSetEquality(inner, "nat")
	if err != nil {
		return nil, err
	}
	return setSpecNamed(innerEq, "set(nat)", "EQSET", "INS2", "MEM2", "EMPTY2")
}

// setSpecNamed is SetSpec with renamed operations, needed when instantiating
// SET at a sort whose spec already uses the names EMPTY/INS/MEM.
func setSpecNamed(elem *Spec, dataSort, eqOp, insName, memName, emptyName string) (*Spec, error) {
	setSort := "set(" + dataSort + ")"
	sig := term.NewSignature()
	sig.AddSort(dataSort)
	sig.AddSort("bool")
	sig.AddSort(setSort)
	mustOp(sig, emptyName, nil, setSort)
	mustOp(sig, insName, []string{dataSort, setSort}, setSort)
	mustOp(sig, memName, []string{dataSort, setSort}, "bool")
	dv := term.Var{Name: "d", Sort: dataSort}
	dv2 := term.Var{Name: "d2", Sort: dataSort}
	sv := term.Var{Name: "s", Sort: setSort}
	core := &Spec{
		Name: "SET(" + dataSort + ")",
		Sig:  sig,
		Eqns: []Equation{
			{Lhs: term.Mk(insName, dv, term.Mk(insName, dv, sv)), Rhs: term.Mk(insName, dv, sv)},
			{Lhs: term.Mk(insName, dv, term.Mk(insName, dv2, sv)),
				Rhs: term.Mk(insName, dv2, term.Mk(insName, dv, sv)), Ordered: true},
			{Lhs: term.Mk(memName, dv, term.Const(emptyName)), Rhs: term.Const("FALSE")},
			{Lhs: term.Mk(memName, dv, term.Mk(insName, dv2, sv)),
				Rhs: term.Mk("IF", term.Mk(eqOp, dv, dv2), term.Const("TRUE"), term.Mk(memName, dv, sv))},
		},
	}
	return Import("SET("+dataSort+")", elem, BoolSpec(), core)
}
