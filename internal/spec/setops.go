package spec

import (
	"fmt"

	"algrec/internal/term"
)

// SetOpsSpec extends a SET(data) specification with the algebraic set
// operators defined *by equations*, the way the paper's Section 3.1 says all
// algebra operators are given ("All the operations are defined in [5] using
// parameterized specifications"): UNION, DEL (delete one element), DIFF and
// INTERSECT, plus the conditional IFSET on the set sort that DIFF's
// definition needs. Together with internal/rewrite this makes the algebra's
// set operators executable at the specification level; a property test
// checks them against the value-level operators of internal/value — the two
// layers describe one data type.
func SetOpsSpec(setSpec *Spec, dataSort, eqOp string) (*Spec, error) {
	setSort := "set(" + dataSort + ")"
	if !setSpec.Sig.HasSort(setSort) {
		return nil, fmt.Errorf("spec: %s does not define %s", setSpec.Name, setSort)
	}
	if _, ok := setSpec.Sig.Op(eqOp); !ok {
		return nil, fmt.Errorf("spec: %s does not define equality %q", setSpec.Name, eqOp)
	}
	sig := term.NewSignature()
	sig.AddSort(dataSort)
	sig.AddSort("bool")
	sig.AddSort(setSort)
	mustOp(sig, "IFSET", []string{"bool", setSort, setSort}, setSort)
	mustOp(sig, "UNION", []string{setSort, setSort}, setSort)
	mustOp(sig, "DEL", []string{dataSort, setSort}, setSort)
	mustOp(sig, "DIFF", []string{setSort, setSort}, setSort)
	mustOp(sig, "INTERSECT", []string{setSort, setSort}, setSort)
	d := term.Var{Name: "d", Sort: dataSort}
	d2 := term.Var{Name: "d2", Sort: dataSort}
	s := term.Var{Name: "s", Sort: setSort}
	s1 := term.Var{Name: "s1", Sort: setSort}
	s2 := term.Var{Name: "s2", Sort: setSort}
	empty := term.Const("EMPTY")
	core := &Spec{
		Name: "SETOPS(" + dataSort + ")",
		Sig:  sig,
		Eqns: []Equation{
			// the conditional on sets
			{Lhs: term.Mk("IFSET", term.Const("TRUE"), s1, s2), Rhs: s1},
			{Lhs: term.Mk("IFSET", term.Const("FALSE"), s1, s2), Rhs: s2},
			// UNION(EMPTY, s) = s;  UNION(INS(d, s1), s2) = INS(d, UNION(s1, s2))
			{Lhs: term.Mk("UNION", empty, s), Rhs: s},
			{Lhs: term.Mk("UNION", term.Mk("INS", d, s1), s2),
				Rhs: term.Mk("INS", d, term.Mk("UNION", s1, s2))},
			// DEL removes every occurrence of one element
			{Lhs: term.Mk("DEL", d, empty), Rhs: term.Term(empty)},
			{Lhs: term.Mk("DEL", d, term.Mk("INS", d2, s)),
				Rhs: term.Mk("IFSET", term.Mk(eqOp, d, d2),
					term.Mk("DEL", d, s),
					term.Mk("INS", d2, term.Mk("DEL", d, s)))},
			// DIFF peels the subtrahend element by element
			{Lhs: term.Mk("DIFF", s, empty), Rhs: s},
			{Lhs: term.Mk("DIFF", s1, term.Mk("INS", d, s2)),
				Rhs: term.Mk("DIFF", term.Mk("DEL", d, s1), s2)},
			// the paper's Example 3: x ∩ y = x − (x − y)
			{Lhs: term.Mk("INTERSECT", s1, s2),
				Rhs: term.Mk("DIFF", s1, term.Mk("DIFF", s1, s2))},
		},
	}
	return Import(setSpec.Name+"+OPS", setSpec, core)
}
