package spec

import (
	"strings"
	"testing"

	"algrec/internal/term"
)

func TestBoolSpec(t *testing.T) {
	b := BoolSpec()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.HasNegation() {
		t.Error("BOOL has no disequation premises")
	}
	if _, ok := b.Sig.Op("IF"); !ok {
		t.Error("BOOL missing IF")
	}
	if len(b.Eqns) != 4 {
		t.Errorf("BOOL has %d equations, want 4", len(b.Eqns))
	}
}

func TestNatSpec(t *testing.T) {
	n := NatSpec()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// The import merged BOOL: IF must be present alongside EQ and PLUS.
	for _, op := range []string{"ZERO", "SUCC", "PLUS", "EQ", "TRUE", "FALSE", "IF"} {
		if _, ok := n.Sig.Op(op); !ok {
			t.Errorf("NAT missing %s", op)
		}
	}
	if got, err := term.SortOf(NatTerm(3), n.Sig); err != nil || got != "nat" {
		t.Errorf("SortOf(3) = %s, %v", got, err)
	}
}

func TestSetSpecStructure(t *testing.T) {
	sp, err := SetSpec(NatSpec(), "nat", "EQ")
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sp.Sig.HasSort("set(nat)") {
		t.Error("missing set(nat) sort")
	}
	d, ok := sp.Sig.Op("MEM")
	if !ok || d.Result != "bool" {
		t.Errorf("MEM decl = %v, %v", d, ok)
	}
	// Exactly one equation is marked Ordered: INS commutativity.
	ordered := 0
	for _, e := range sp.Eqns {
		if e.Ordered {
			ordered++
		}
	}
	if ordered != 1 {
		t.Errorf("got %d ordered equations, want 1", ordered)
	}
	// SetTerm builds the paper's {x1, ..., xn} shorthand.
	st := SetTerm(NatTerm(1), NatTerm(2))
	if got, err := term.SortOf(st, sp.Sig); err != nil || got != "set(nat)" {
		t.Errorf("SortOf(SetTerm) = %s, %v", got, err)
	}
	if !strings.HasPrefix(st.String(), "INS(") {
		t.Errorf("SetTerm = %s", st)
	}
}

func TestSetSpecErrors(t *testing.T) {
	if _, err := SetSpec(BoolSpec(), "nat", "EQ"); err == nil {
		t.Error("missing element sort accepted")
	}
	if _, err := SetSpec(NatSpec(), "nat", "PLUS"); err == nil {
		t.Error("PLUS accepted as equality (wrong result sort)")
	}
	if _, err := SetSpec(NatSpec(), "nat", "nosuch"); err == nil {
		t.Error("missing equality accepted")
	}
}

func TestImportConflict(t *testing.T) {
	a := term.NewSignature()
	a.AddSort("s")
	if err := a.AddOp("C", nil, "s"); err != nil {
		t.Fatal(err)
	}
	b := term.NewSignature()
	b.AddSort("s")
	b.AddSort("t")
	if err := b.AddOp("C", nil, "t"); err != nil {
		t.Fatal(err)
	}
	_, err := Import("X", &Spec{Name: "A", Sig: a}, &Spec{Name: "B", Sig: b})
	if err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Errorf("expected conflict error, got %v", err)
	}
}

func TestEquationStrings(t *testing.T) {
	x := term.Var{Name: "x", Sort: "nat"}
	e := Equation{
		Conds: []Cond{{L: x, R: term.Const("ZERO"), Negated: true}},
		Lhs:   term.Mk("F", x),
		Rhs:   term.Const("TRUE"),
	}
	if got := e.String(); got != "x != ZERO -> F(x) = TRUE" {
		t.Errorf("Equation.String = %q", got)
	}
	if !e.HasNegation() {
		t.Error("HasNegation = false")
	}
	tot := MemTotalityEquation("nat")
	if got := tot.String(); got != "MEM(x, y) != TRUE -> MEM(x, y) = FALSE" {
		t.Errorf("totality equation = %q", got)
	}
}
