package spec

import (
	"testing"

	"algrec/internal/term"
)

// Structure-level tests for the extended builders; their rewriting behaviour
// is tested in internal/rewrite.

func TestBoolOpsSpec(t *testing.T) {
	b := BoolOpsSpec()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"AND", "OR", "NOT", "IF"} {
		if _, ok := b.Sig.Op(op); !ok {
			t.Errorf("BOOLOPS missing %s", op)
		}
	}
}

func TestListSpecStructure(t *testing.T) {
	sp, err := ListSpec(NatSpec(), "nat", "EQ")
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sp.Sig.HasSort("list(nat)") {
		t.Error("missing list sort")
	}
	d, ok := sp.Sig.Op("EQLIST")
	if !ok || d.Result != "bool" {
		t.Errorf("EQLIST = %v, %v", d, ok)
	}
	if d, _ := sp.Sig.Op("LEN"); d.Result != "nat" {
		t.Errorf("LEN result = %s", d.Result)
	}
}

func TestStackSpecStructure(t *testing.T) {
	sp, err := StackSpec(NatSpec(), "nat", "ZERO")
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sp.Sig.HasSort("stack(nat)") {
		t.Error("missing stack sort")
	}
	for _, op := range []string{"EMPTYSTK", "PUSH", "POP", "TOPORD", "ISEMPTY"} {
		if _, ok := sp.Sig.Op(op); !ok {
			t.Errorf("STACK missing %s", op)
		}
	}
}

func TestWithSetEqualityStructure(t *testing.T) {
	base, err := SetSpec(NatSpec(), "nat", "EQ")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := WithSetEquality(base, "nat")
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	d, ok := sp.Sig.Op("EQSET")
	if !ok || d.Result != "bool" || d.Args[0] != "set(nat)" {
		t.Errorf("EQSET = %v, %v", d, ok)
	}
	// error path: no set sort in the input spec
	if _, err := WithSetEquality(NatSpec(), "nat"); err == nil {
		t.Error("WithSetEquality accepted a spec without the set sort")
	}
}

func TestNestedSetSpecStructure(t *testing.T) {
	sp, err := NestedSetSpec()
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sp.Sig.HasSort("set(set(nat))") {
		t.Error("missing nested set sort")
	}
	d, ok := sp.Sig.Op("MEM2")
	if !ok || d.Args[0] != "set(nat)" || d.Args[1] != "set(set(nat))" {
		t.Errorf("MEM2 = %v, %v", d, ok)
	}
	// The instantiation kept the inner operations too.
	if _, ok := sp.Sig.Op("MEM"); !ok {
		t.Error("inner MEM lost")
	}
	// SetTerm at nested sort type-checks.
	inner := SetTerm(NatTerm(1))
	outer := term.Mk("INS2", inner, term.Const("EMPTY2"))
	if got, err := term.SortOf(outer, sp.Sig); err != nil || got != "set(set(nat))" {
		t.Errorf("SortOf(nested) = %s, %v", got, err)
	}
}

func TestSetOpsSpecStructure(t *testing.T) {
	base, err := SetSpec(NatSpec(), "nat", "EQ")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SetOpsSpec(base, "nat", "EQ")
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"UNION", "DEL", "DIFF", "INTERSECT", "IFSET"} {
		if _, ok := sp.Sig.Op(op); !ok {
			t.Errorf("SETOPS missing %s", op)
		}
	}
}
