package spec

import (
	"fmt"

	"algrec/internal/term"
)

// BoolSpec returns the specification of the booleans: sort bool with
// constants TRUE and FALSE, NOT, and the conditional IF: bool,bool,bool→bool
// used by MEM. Booleans are ordinary values here — which is precisely why
// the paper needs negation to define MEM totally.
func BoolSpec() *Spec {
	sig := term.NewSignature()
	sig.AddSort("bool")
	mustOp(sig, "TRUE", nil, "bool")
	mustOp(sig, "FALSE", nil, "bool")
	mustOp(sig, "NOT", []string{"bool"}, "bool")
	mustOp(sig, "IF", []string{"bool", "bool", "bool"}, "bool")
	b := func(n string) term.Term { return term.Const(n) }
	x := term.Var{Name: "x", Sort: "bool"}
	y := term.Var{Name: "y", Sort: "bool"}
	return &Spec{
		Name: "BOOL",
		Sig:  sig,
		Eqns: []Equation{
			{Lhs: term.Mk("NOT", b("TRUE")), Rhs: b("FALSE")},
			{Lhs: term.Mk("NOT", b("FALSE")), Rhs: b("TRUE")},
			{Lhs: term.Mk("IF", b("TRUE"), x, y), Rhs: x},
			{Lhs: term.Mk("IF", b("FALSE"), x, y), Rhs: y},
		},
	}
}

// NatSpec returns the specification of the natural numbers with ZERO, SUCC,
// PLUS and the equality predicate EQ: nat,nat→bool (a specification for sets
// of some element type may contain MEM iff equality is definable on the
// type — the paper's footnote 1).
func NatSpec() *Spec {
	b, err := Import("NAT", BoolSpec(), natOnly())
	if err != nil {
		panic(err) // static specification; cannot fail
	}
	return b
}

func natOnly() *Spec {
	sig := term.NewSignature()
	sig.AddSort("nat")
	sig.AddSort("bool")
	mustOp(sig, "ZERO", nil, "nat")
	mustOp(sig, "SUCC", []string{"nat"}, "nat")
	mustOp(sig, "PLUS", []string{"nat", "nat"}, "nat")
	mustOp(sig, "EQ", []string{"nat", "nat"}, "bool")
	x := term.Var{Name: "x", Sort: "nat"}
	y := term.Var{Name: "y", Sort: "nat"}
	z := term.Const("ZERO")
	s := func(t term.Term) term.Term { return term.Mk("SUCC", t) }
	return &Spec{
		Name: "NATCORE",
		Sig:  sig,
		Eqns: []Equation{
			{Lhs: term.Mk("PLUS", z, y), Rhs: y},
			{Lhs: term.Mk("PLUS", s(x), y), Rhs: s(term.Mk("PLUS", x, y))},
			{Lhs: term.Mk("EQ", z, z), Rhs: term.Const("TRUE")},
			{Lhs: term.Mk("EQ", s(x), z), Rhs: term.Const("FALSE")},
			{Lhs: term.Mk("EQ", z, s(y)), Rhs: term.Const("FALSE")},
			{Lhs: term.Mk("EQ", s(x), s(y)), Rhs: term.Mk("EQ", x, y)},
		},
	}
}

// NatTerm builds the numeral SUCC^n(ZERO).
func NatTerm(n int) term.Term {
	t := term.Term(term.Const("ZERO"))
	for i := 0; i < n; i++ {
		t = term.Mk("SUCC", t)
	}
	return t
}

// SetSpec returns the paper's parameterized SET(data) specification
// instantiated at the given element specification: sort set(data) with
// EMPTY, INS and MEM, and the four equations of Section 2.1. The element
// specification must define the given sort and an equality operation
// eqOp: data,data → bool. The INS commutativity equation is marked Ordered
// so rewriting terminates with a canonical (sorted) insertion chain.
func SetSpec(elem *Spec, dataSort, eqOp string) (*Spec, error) {
	if !elem.Sig.HasSort(dataSort) {
		return nil, fmt.Errorf("spec: element spec %s does not define sort %q", elem.Name, dataSort)
	}
	d, ok := elem.Sig.Op(eqOp)
	if !ok {
		return nil, fmt.Errorf("spec: element spec %s does not define equality %q", elem.Name, eqOp)
	}
	if len(d.Args) != 2 || d.Args[0] != dataSort || d.Args[1] != dataSort || d.Result != "bool" {
		return nil, fmt.Errorf("spec: %q is not an equality on %s (have %s)", eqOp, dataSort, d)
	}
	setSort := "set(" + dataSort + ")"
	sig := term.NewSignature()
	sig.AddSort(dataSort)
	sig.AddSort("bool")
	sig.AddSort(setSort)
	mustOp(sig, "EMPTY", nil, setSort)
	mustOp(sig, "INS", []string{dataSort, setSort}, setSort)
	mustOp(sig, "MEM", []string{dataSort, setSort}, "bool")
	dv := term.Var{Name: "d", Sort: dataSort}
	dv2 := term.Var{Name: "d2", Sort: dataSort}
	sv := term.Var{Name: "s", Sort: setSort}
	setCore := &Spec{
		Name: "SET(" + dataSort + ")",
		Sig:  sig,
		Eqns: []Equation{
			// INS(d, INS(d, s)) = INS(d, s)
			{Lhs: term.Mk("INS", dv, term.Mk("INS", dv, sv)), Rhs: term.Mk("INS", dv, sv)},
			// INS(d, INS(d2, s)) = INS(d2, INS(d, s)), applied only when it
			// decreases the term order (permutative equation).
			{Lhs: term.Mk("INS", dv, term.Mk("INS", dv2, sv)),
				Rhs: term.Mk("INS", dv2, term.Mk("INS", dv, sv)), Ordered: true},
			// MEM(d, EMPTY) = FALSE
			{Lhs: term.Mk("MEM", dv, term.Const("EMPTY")), Rhs: term.Const("FALSE")},
			// MEM(d, INS(d2, s)) = IF EQ(d, d2) THEN TRUE ELSE MEM(d, s)
			{Lhs: term.Mk("MEM", dv, term.Mk("INS", dv2, sv)),
				Rhs: term.Mk("IF", term.Mk(eqOp, dv, dv2), term.Const("TRUE"), term.Mk("MEM", dv, sv))},
		},
	}
	return Import("SET("+dataSort+")", elem, BoolSpec(), setCore)
}

// MemTotalityEquation returns the Section 2.2 generalized conditional
// equation MEM(x, y) ≠ TRUE → MEM(x, y) = FALSE, which the paper adds as "a
// fixed part of the specification of sets and set operations" so MEM is
// total on infinite sets too. It brings negation into the specification, so
// a spec containing it must be interpreted under the valid-model semantics.
func MemTotalityEquation(dataSort string) Equation {
	x := term.Var{Name: "x", Sort: dataSort}
	y := term.Var{Name: "y", Sort: "set(" + dataSort + ")"}
	mem := term.Mk("MEM", x, y)
	return Equation{
		Conds: []Cond{{L: mem, R: term.Const("TRUE"), Negated: true}},
		Lhs:   mem,
		Rhs:   term.Const("FALSE"),
	}
}

// SetTerm builds the term INS(e1, INS(e2, ..., EMPTY)) — the paper's
// {x1, ..., xn} shorthand.
func SetTerm(elems ...term.Term) term.Term {
	t := term.Term(term.Const("EMPTY"))
	for i := len(elems) - 1; i >= 0; i-- {
		t = term.Mk("INS", elems[i], t)
	}
	return t
}

func mustOp(sig *term.Signature, name string, args []string, result string) {
	if err := sig.AddOp(name, args, result); err != nil {
		panic(err) // static specifications; cannot fail
	}
}
