package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestConcurrentReadersDuringBulkLoad is the copy-on-write isolation test
// (run under -race in CI): while a writer replaces the database wholesale in
// a loop, concurrent query readers must always observe one of the two
// complete states — never a partial load — and subscribers must either
// stream consistently or be closed with the db-replaced goodbye. Exercised
// against both the memory registry and the disk backend.
func TestConcurrentReadersDuringBulkLoad(t *testing.T) {
	scriptA := chainScript(24)
	scriptB := `rel edge = {(z0, z1), (z1, z2), (z2, z3), (z3, z4)};`

	for _, mode := range []string{"memory", "disk"} {
		t.Run(mode, func(t *testing.T) {
			var ts *httptest.Server
			if mode == "disk" {
				_, ts = newDiskServer(t, t.TempDir(), 8)
			} else {
				s := New(Config{})
				ts = httptest.NewServer(s.Handler())
				t.Cleanup(ts.Close)
			}

			// Quiesced ground truth for both states.
			expect := func(script string) string {
				t.Helper()
				putDBScript(t, ts, "g", script)
				status, ok, bad := postQuery(t, ts, queryRequest{DB: "g", Language: "ifp-algebra", Query: tcIFP})
				if status != http.StatusOK {
					t.Fatalf("query: status %d, error %+v", status, bad)
				}
				return ok.Result.Value
			}
			closureA := expect(scriptA)
			closureB := expect(scriptB)
			if closureA == closureB {
				t.Fatal("the two states must be distinguishable")
			}

			const (
				loads   = 12
				readers = 4
				subs    = 2
			)
			var wg sync.WaitGroup
			errs := make(chan string, readers+subs+1)
			done := make(chan struct{})

			// Open the subscriptions before the first load: each stream must
			// deliver a consistent snapshot and then the db-replaced goodbye
			// once a load overtakes it.
			streams := make([]*subStream, subs)
			for i := range streams {
				streams[i] = openSub(t, ts, dlogSub("g", tcProgram))
			}

			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(done)
				for i := 0; i < loads; i++ {
					script := scriptA
					if i%2 == 0 {
						script = scriptB
					}
					putDBScript(t, ts, "g", script)
				}
			}()

			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						status, ok, bad := postQuery(t, ts, queryRequest{DB: "g", Language: "ifp-algebra", Query: tcIFP})
						if status != http.StatusOK {
							errs <- bad.Error.Code
							return
						}
						if v := ok.Result.Value; v != closureA && v != closureB {
							errs <- "torn read: " + v
							return
						}
					}
				}()
			}

			for _, st := range streams {
				st := st
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer st.resp.Body.Close()
					for {
						line, err := st.rd.ReadString('\n')
						if err != nil {
							errs <- "subscription read: " + err.Error()
							return
						}
						var e subEventJSON
						if err := json.Unmarshal([]byte(line), &e); err != nil {
							errs <- "subscription decode: " + err.Error()
							return
						}
						if e.Event == "bye" {
							if e.Reason != reasonReplaced {
								errs <- "bye reason " + e.Reason
							}
							return
						}
					}
				}()
			}

			wg.Wait()
			close(errs)
			for e := range errs {
				t.Errorf("concurrent failure: %s", e)
			}
		})
	}
}
