package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// tcProgram is the datalog subscription workload over the registered edge
// relation: the transitive closure, recomputed incrementally as edges come
// and go.
const tcProgram = `tc(X, Y) :- edge(X, Y).
tc(X, Z) :- tc(X, Y), edge(Y, Z).`

// postFacts posts a mutation batch to /v1/dbs/{name}/facts.
func postFacts(t *testing.T, ts *httptest.Server, name string, req mutateRequest) (int, mutateResponse, errorBody) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/dbs/"+name+"/facts", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST facts: %v", err)
	}
	defer resp.Body.Close()
	var okBody mutateResponse
	var bad errorBody
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&okBody); err != nil {
			t.Fatalf("decode mutate response: %v", err)
		}
	} else if err := dec.Decode(&bad); err != nil {
		t.Fatalf("decode mutate error: %v", err)
	}
	return resp.StatusCode, okBody, bad
}

// insFact / delFact build single-fact batches with string arguments.
func jsonFact(pred string, args ...any) factJSON { return factJSON{Pred: pred, Args: args} }

// subStream is an open subscription: the response body plus a line reader.
type subStream struct {
	resp *http.Response
	rd   *bufio.Reader
}

// openSub subscribes and returns the live stream (status must be 200).
func openSub(t *testing.T, ts *httptest.Server, req subscribeRequest) *subStream {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/subscribe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/subscribe: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		var bad errorBody
		_ = json.NewDecoder(resp.Body).Decode(&bad)
		resp.Body.Close()
		t.Fatalf("subscribe: status %d, error %+v", resp.StatusCode, bad)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return &subStream{resp: resp, rd: bufio.NewReader(resp.Body)}
}

// next reads one ndjson event from the stream (blocking).
func (st *subStream) next(t *testing.T) subEventJSON {
	t.Helper()
	line, err := st.rd.ReadString('\n')
	if err != nil {
		t.Fatalf("read event: %v (got %q)", err, line)
	}
	var e subEventJSON
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("decode event %q: %v", line, err)
	}
	return e
}

// subscribeFailure posts a subscription expected to fail and returns its
// structured error.
func subscribeFailure(t *testing.T, ts *httptest.Server, req subscribeRequest) (int, errorBody) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/subscribe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/subscribe: %v", err)
	}
	defer resp.Body.Close()
	var bad errorBody
	if err := json.NewDecoder(resp.Body).Decode(&bad); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	return resp.StatusCode, bad
}

// waitCounter polls the server's stats until the counter reaches want.
func waitCounter(t *testing.T, s *Server, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := s.Stats().Snapshot()[name]; got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("counter %s never reached %d (snapshot: %v)", name, want, s.Stats().Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func dlogSub(db, query string) subscribeRequest {
	return subscribeRequest{queryRequest: queryRequest{
		DB: db, Language: "datalog", Semantics: "stratified", Query: query,
	}}
}

// TestMutateFacts drives the mutation endpoint without subscriptions:
// inserts and deletes must be visible to subsequent queries, versions must
// advance, and malformed batches must be rejected with structured errors.
func TestMutateFacts(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, okBody, _ := postFacts(t, ts, "g", mutateRequest{
		Insert: []factJSON{jsonFact("edge", "d", "e")},
		Delete: []factJSON{jsonFact("edge", "a", "b")},
	})
	if status != http.StatusOK || !okBody.OK {
		t.Fatalf("mutate: status %d body %+v", status, okBody)
	}
	if okBody.Version != 2 || okBody.Inserted != 1 || okBody.Deleted != 1 {
		t.Fatalf("mutate response: %+v", okBody)
	}

	qstatus, qresp, _ := postQuery(t, ts, queryRequest{DB: "g", Language: "algebra", Query: "edge"})
	if qstatus != http.StatusOK {
		t.Fatalf("query after mutation: status %d", qstatus)
	}
	if want := "{(b, c), (c, d), (d, e)}"; qresp.Result.Value != want {
		t.Fatalf("edge after mutation = %s, want %s", qresp.Result.Value, want)
	}

	// Deleting a missing fact and inserting a duplicate are no-ops on the
	// contents but still bump the version (the batch was applied).
	status, okBody, _ = postFacts(t, ts, "g", mutateRequest{
		Insert: []factJSON{jsonFact("edge", "b", "c")},
		Delete: []factJSON{jsonFact("edge", "x", "y")},
	})
	if status != http.StatusOK || okBody.Version != 3 {
		t.Fatalf("no-op mutate: status %d body %+v", status, okBody)
	}

	// Tuple-valued and integer arguments round-trip through the JSON
	// mapping.
	status, _, _ = postFacts(t, ts, "g", mutateRequest{
		Insert: []factJSON{jsonFact("weights", "a", 3), jsonFact("pairs", []any{1, 2}, true)},
	})
	if status != http.StatusOK {
		t.Fatalf("typed mutate: status %d", status)
	}
	qstatus, qresp, _ = postQuery(t, ts, queryRequest{DB: "g", Language: "algebra", Query: "weights"})
	if qstatus != http.StatusOK || qresp.Result.Value != "{(a, 3)}" {
		t.Fatalf("weights = %q (status %d)", qresp.Result.Value, qstatus)
	}

	for _, tc := range []struct {
		name string
		db   string
		req  mutateRequest
		code string
	}{
		{"unknown db", "nope", mutateRequest{Insert: []factJSON{jsonFact("e", "a")}}, codeUnknownDB},
		{"empty batch", "g", mutateRequest{}, codeBadRequest},
		{"missing pred", "g", mutateRequest{Insert: []factJSON{{Args: []any{"a"}}}}, codeBadRequest},
		{"zero args", "g", mutateRequest{Insert: []factJSON{{Pred: "e"}}}, codeBadRequest},
		{"float arg", "g", mutateRequest{Insert: []factJSON{jsonFact("e", 1.5)}}, codeBadRequest},
		{"null arg", "g", mutateRequest{Insert: []factJSON{jsonFact("e", nil)}}, codeBadRequest},
	} {
		status, _, bad := postFacts(t, ts, tc.db, tc.req)
		if status == http.StatusOK || bad.Error.Code != tc.code {
			t.Errorf("%s: status %d code %q, want code %q", tc.name, status, bad.Error.Code, tc.code)
		}
	}
}

// TestSubscribeLifecycle is the full happy path: register a recursive query,
// get the snapshot, mutate the database twice, observe incremental deltas,
// disconnect, and see the subscription drain out of the server's gauges.
func TestSubscribeLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	st := openSub(t, ts, dlogSub("g", tcProgram))

	snap := st.next(t)
	if snap.Event != "snapshot" || snap.Result == nil {
		t.Fatalf("first event = %+v, want snapshot", snap)
	}
	tc := predByName(snap.Result.Preds, "tc")
	if tc == nil || !reflect.DeepEqual(tc.True, []string{
		"tc(a, b)", "tc(a, c)", "tc(a, d)", "tc(b, c)", "tc(b, d)", "tc(c, d)",
	}) {
		t.Fatalf("snapshot tc = %+v", tc)
	}

	if _, _, bad := postFacts(t, ts, "g", mutateRequest{
		Insert: []factJSON{jsonFact("edge", "d", "e")},
	}); bad.Error.Code != "" {
		t.Fatalf("mutate: %+v", bad)
	}
	d := st.next(t)
	if d.Event != "delta" || d.Version != 2 {
		t.Fatalf("second event = %+v, want delta @v2", d)
	}
	wantPreds := []struct {
		pred  string
		added []string
	}{
		{"edge", []string{"edge(d, e)"}},
		{"tc", []string{"tc(a, e)", "tc(b, e)", "tc(c, e)", "tc(d, e)"}},
	}
	if len(d.Preds) != len(wantPreds) {
		t.Fatalf("delta preds = %+v", d.Preds)
	}
	for i, w := range wantPreds {
		if d.Preds[i].Pred != w.pred || !reflect.DeepEqual(d.Preds[i].Added, w.added) || len(d.Preds[i].Removed) != 0 {
			t.Fatalf("delta pred %d = %+v, want added %v", i, d.Preds[i], w.added)
		}
	}

	if _, _, bad := postFacts(t, ts, "g", mutateRequest{
		Delete: []factJSON{jsonFact("edge", "a", "b")},
	}); bad.Error.Code != "" {
		t.Fatalf("mutate: %+v", bad)
	}
	d = st.next(t)
	if d.Event != "delta" || d.Version != 3 {
		t.Fatalf("third event = %+v, want delta @v3", d)
	}
	tcd := d.Preds[len(d.Preds)-1]
	wantRemoved := []string{"tc(a, b)", "tc(a, c)", "tc(a, d)", "tc(a, e)"}
	if tcd.Pred != "tc" || !reflect.DeepEqual(tcd.Removed, wantRemoved) || len(tcd.Added) != 0 {
		t.Fatalf("delete delta = %+v, want removed %v", tcd, wantRemoved)
	}

	// A mutation that does not change the subscribed view produces no event:
	// the next event after it must be the delta of the following mutation.
	if _, _, bad := postFacts(t, ts, "g", mutateRequest{
		Delete: []factJSON{jsonFact("edge", "x", "z")},
	}); bad.Error.Code != "" {
		t.Fatalf("mutate: %+v", bad)
	}
	if _, _, bad := postFacts(t, ts, "g", mutateRequest{
		Insert: []factJSON{jsonFact("edge", "a", "b")},
	}); bad.Error.Code != "" {
		t.Fatalf("mutate: %+v", bad)
	}
	d = st.next(t)
	if d.Event != "delta" || d.Version != 5 {
		t.Fatalf("fourth event = %+v, want delta @v5", d)
	}

	// Client disconnect: the writer observes the dead context and the
	// subscription drains out with reason "client-gone".
	st.resp.Body.Close()
	waitCounter(t, s, "server.subscription.ends.client-gone", 1)
	if n := s.activeSubs.Load(); n != 0 {
		t.Fatalf("activeSubs after disconnect = %d", n)
	}
	snapCounters := s.Stats().Snapshot()
	if snapCounters["server.subscriptions"] != 1 || snapCounters["server.subscription.events"] != 4 {
		t.Fatalf("subscription counters: %v", snapCounters)
	}
}

// TestSubscribeSSE checks the SSE wire format and the drain goodbye: events
// arrive as event:/data: frames and BeginDrain ends the stream with a "bye"
// carrying reason "drain".
func TestSubscribeSSE(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := dlogSub("g", tcProgram)
	req.Format = "sse"
	st := openSub(t, ts, req)
	if ct := st.resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	readFrame := func() (kind string, e subEventJSON) {
		t.Helper()
		ev, err := st.rd.ReadString('\n')
		if err != nil {
			t.Fatalf("read event line: %v", err)
		}
		data, err := st.rd.ReadString('\n')
		if err != nil {
			t.Fatalf("read data line: %v", err)
		}
		blank, err := st.rd.ReadString('\n')
		if err != nil || strings.TrimRight(blank, "\n") != "" {
			t.Fatalf("frame not blank-terminated: %q, %v", blank, err)
		}
		kind = strings.TrimRight(strings.TrimPrefix(ev, "event: "), "\n")
		payload := strings.TrimRight(strings.TrimPrefix(data, "data: "), "\n")
		if err := json.Unmarshal([]byte(payload), &e); err != nil {
			t.Fatalf("decode %q: %v", payload, err)
		}
		return kind, e
	}

	kind, e := readFrame()
	if kind != "snapshot" || e.Event != "snapshot" {
		t.Fatalf("first frame = %q %+v", kind, e)
	}
	postFacts(t, ts, "g", mutateRequest{Insert: []factJSON{jsonFact("edge", "d", "e")}})
	kind, e = readFrame()
	if kind != "delta" || len(e.Preds) == 0 {
		t.Fatalf("second frame = %q %+v", kind, e)
	}

	s.BeginDrain()
	kind, e = readFrame()
	if kind != "bye" || e.Reason != reasonDrain {
		t.Fatalf("drain frame = %q %+v, want bye/drain", kind, e)
	}
	waitCounter(t, s, "server.subscription.ends.drain", 1)

	// A draining server refuses new subscriptions and mutations.
	if status, bad := subscribeFailure(t, ts, dlogSub("g", tcProgram)); status != http.StatusServiceUnavailable || bad.Error.Code != codeShuttingDown {
		t.Fatalf("subscribe while draining: %d %+v", status, bad)
	}
	if status, _, bad := postFacts(t, ts, "g", mutateRequest{Insert: []factJSON{jsonFact("edge", "q", "r")}}); status != http.StatusServiceUnavailable || bad.Error.Code != codeShuttingDown {
		t.Fatalf("mutate while draining: %d %+v", status, bad)
	}
}

// TestSubscribeCoalescing holds the writer between events (via the test
// hook) while two mutations land: the subscriber must fold them into one
// delta event and count the fold.
func TestSubscribeCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	gate := make(chan struct{})
	s.testHookSubEvent = func() { <-gate }

	st := openSub(t, ts, dlogSub("g", tcProgram))
	gate <- struct{}{} // release iteration 1: the snapshot write
	snap := st.next(t)
	if snap.Event != "snapshot" {
		t.Fatalf("first event = %+v", snap)
	}

	// The writer is now parked in iteration 2's hook. Land two mutations —
	// the second folds into the pending delta of the first. The second
	// mutation also removes a fact the first added, so the fold must
	// cancel it.
	postFacts(t, ts, "g", mutateRequest{Insert: []factJSON{jsonFact("edge", "d", "e"), jsonFact("edge", "p", "q")}})
	postFacts(t, ts, "g", mutateRequest{Delete: []factJSON{jsonFact("edge", "p", "q")}})

	gate <- struct{}{} // release iteration 2: deliver the folded delta
	d := st.next(t)
	if d.Event != "delta" || d.Version != 3 {
		t.Fatalf("folded event = %+v, want delta @v3", d)
	}
	edge := d.Preds[0]
	if edge.Pred != "edge" || !reflect.DeepEqual(edge.Added, []string{"edge(d, e)"}) || len(edge.Removed) != 0 {
		t.Fatalf("folded edge delta = %+v, want only edge(d, e) added", edge)
	}

	close(gate) // the writer is parked in the next iteration's hook; free it for good
	st.resp.Body.Close()
	waitCounter(t, s, "server.subscription.ends.client-gone", 1)
	if got := s.Stats().Snapshot()["server.subscription.coalesced"]; got != 1 {
		t.Fatalf("coalesced = %d, want 1", got)
	}
}

// TestSubscribeSlowConsumer caps the pending delta low and lands mutations
// while the writer is parked: the subscription must be closed with reason
// "slow-consumer" instead of buffering without bound.
func TestSubscribeSlowConsumer(t *testing.T) {
	s, ts := newTestServer(t, Config{SubMaxPending: 3})
	gate := make(chan struct{})
	s.testHookSubEvent = func() { <-gate }

	st := openSub(t, ts, dlogSub("g", tcProgram))
	gate <- struct{}{}
	if snap := st.next(t); snap.Event != "snapshot" {
		t.Fatalf("first event = %+v", snap)
	}

	// Parked writer; each mutation adds one edge fact plus tc facts, so the
	// folded pending crosses the 3-entry cap on the second mutation.
	postFacts(t, ts, "g", mutateRequest{Insert: []factJSON{jsonFact("edge", "x1", "y1")}})
	postFacts(t, ts, "g", mutateRequest{Insert: []factJSON{jsonFact("edge", "x2", "y2")}})

	gate <- struct{}{}
	bye := st.next(t)
	if bye.Event != "bye" || bye.Reason != reasonSlowConsumer {
		t.Fatalf("event = %+v, want bye/slow-consumer", bye)
	}
	waitCounter(t, s, "server.subscription.ends.slow-consumer", 1)
	if n := s.activeSubs.Load(); n != 0 {
		t.Fatalf("activeSubs = %d", n)
	}
}

// TestSubscribeDBReplaced replaces the database wholesale under a live
// subscription: the stream must end with reason "db-replaced".
func TestSubscribeDBReplaced(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	st := openSub(t, ts, dlogSub("g", tcProgram))
	if snap := st.next(t); snap.Event != "snapshot" {
		t.Fatalf("first event = %+v", snap)
	}

	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/dbs/g", strings.NewReader(`rel edge = {(p, q)};`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT db: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT db: status %d", resp.StatusCode)
	}

	bye := st.next(t)
	if bye.Event != "bye" || bye.Reason != reasonReplaced {
		t.Fatalf("event = %+v, want bye/db-replaced", bye)
	}
	waitCounter(t, s, "server.subscription.ends.db-replaced", 1)
}

// TestSubscribeInterruptOnDisconnect wires the client's disappearance into
// view maintenance: with the writer parked, a disconnected client's context
// cancels through the Budget/Ground Interrupt hooks, so the next mutation's
// maintenance fails and closes the subscription with reason "error".
func TestSubscribeInterruptOnDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	gate := make(chan struct{})
	s.testHookSubEvent = func() { <-gate }

	st := openSub(t, ts, dlogSub("g", tcProgram))

	// The writer is parked in its first iteration's hook, before even the
	// snapshot write — it can never reach its own disconnect check, so the
	// only way the subscription can close is maintenance observing the
	// canceled request context through the Budget/Ground Interrupt hooks.
	entry, ok := s.reg.entry("g")
	if !ok {
		t.Fatal("entry g missing")
	}
	entry.mu.Lock()
	var sub *subscriber
	for candidate := range entry.subs {
		sub = candidate
	}
	entry.mu.Unlock()
	if sub == nil {
		t.Fatal("no registered subscriber")
	}

	// Drop the client, then keep mutating until maintenance trips over the
	// interrupt (cancellation propagates to the request context
	// asynchronously, hence the loop).
	st.resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		postFacts(t, ts, "g", mutateRequest{Insert: []factJSON{jsonFact("edge", fmt.Sprintf("n%d", i), fmt.Sprintf("m%d", i))}})
		sub.mu.Lock()
		reason := sub.reason
		sub.mu.Unlock()
		if reason == reasonError {
			break
		}
		if reason != "" {
			t.Fatalf("subscription closed with reason %q, want %q", reason, reasonError)
		}
		if time.Now().After(deadline) {
			t.Fatal("maintenance never observed the interrupt")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(gate) // release the parked writer so it can say goodbye and exit
	waitCounter(t, s, "server.subscription.ends.error", 1)
	if n := s.activeSubs.Load(); n != 0 {
		t.Fatalf("activeSubs = %d", n)
	}
}

// TestSubscribeErrorPaths covers the request-validation failures.
func TestSubscribeErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name string
		req  subscribeRequest
		code string
	}{
		{"anonymous db", dlogSub("", tcProgram), codeBadRequest},
		{"unknown db", dlogSub("nope", tcProgram), codeUnknownDB},
		{"bad format", func() subscribeRequest {
			r := dlogSub("g", tcProgram)
			r.Format = "xml"
			return r
		}(), codeBadRequest},
		{"bad language", subscribeRequest{queryRequest: queryRequest{DB: "g", Language: "prolog", Query: "x."}}, codeBadRequest},
		{"missing query", subscribeRequest{queryRequest: queryRequest{DB: "g", Language: "datalog"}}, codeBadRequest},
		{"parse error", dlogSub("g", "tc(X :- edge"), codeParseError},
	} {
		if _, bad := subscribeFailure(t, ts, tc.req); bad.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, bad.Error.Code, tc.code)
		}
	}
}

// TestSubscribeRecomputeMode subscribes a non-incrementalizable plan (the
// algebra language has no delta rules): maintenance must fall back to
// recompute-and-diff, and snapshots of unchanged queries must not produce
// spurious events.
func TestSubscribeRecomputeMode(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := subscribeRequest{queryRequest: queryRequest{
		DB: "g", Language: "algebra", Query: "edge",
	}}
	st := openSub(t, ts, req)
	snap := st.next(t)
	if snap.Event != "snapshot" || snap.Result == nil || snap.Result.Value != "{(a, b), (b, c), (c, d)}" {
		t.Fatalf("snapshot = %+v", snap)
	}

	postFacts(t, ts, "g", mutateRequest{Insert: []factJSON{jsonFact("edge", "d", "e")}})
	d := st.next(t)
	if d.Event != "delta" || len(d.Preds) != 1 || d.Preds[0].Pred != "value" ||
		!reflect.DeepEqual(d.Preds[0].Added, []string{"(d, e)"}) {
		t.Fatalf("recompute delta = %+v", d)
	}

	st.resp.Body.Close()
	waitCounter(t, s, "server.subscription.ends.client-gone", 1)
	if got := s.Stats().Snapshot()["server.subscriptions"]; got != 1 {
		t.Fatalf("subscriptions = %d", got)
	}
}
