package server

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"algrec/internal/obsv"
)

// snapshotRequest is the POST /v1/dbs/{name}/snapshot and .../restore body.
type snapshotRequest struct {
	Snapshot string `json:"snapshot"`
}

// snapshotResponse is both endpoints' success body.
type snapshotResponse struct {
	OK       bool   `json:"ok"`
	Name     string `json:"name"`
	Snapshot string `json:"snapshot"`
	Version  uint64 `json:"version"`
}

// handleSnapshot serves POST /v1/dbs/{name}/snapshot: labels the database's
// current contents as a restorable version. Snapshots are copy-on-write —
// for memory databases, taking one retains the current state pointer in
// O(1); disk databases also checkpoint and compact their store.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.handleSnapshotOp(w, r, "snapshot", s.reg.snapshot)
}

// handleRestore serves POST /v1/dbs/{name}/restore: replaces the database's
// contents with a labeled snapshot's, bumping the version and closing live
// subscriptions with reason "db-restored". The snapshot remains.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	s.handleSnapshotOp(w, r, "restore", s.reg.restore)
}

func (s *Server) handleSnapshotOp(w http.ResponseWriter, r *http.Request, route string, op func(name, label string) (uint64, error)) {
	start := time.Now()
	ev := obsv.ServerStats{Route: route}
	defer func() {
		ev.WallNS = time.Since(start).Nanoseconds()
		s.col.Server(ev)
	}()
	fail := func(code, msg string) {
		ev.Code = code
		writeError(w, code, msg)
	}
	if s.draining.Load() {
		fail(codeShuttingDown, fmt.Sprintf("the server is draining and refuses new %s requests", route))
		return
	}
	name := r.PathValue("name")
	var req snapshotRequest
	if code, msg := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); code != "" {
		fail(code, msg)
		return
	}
	if req.Snapshot == "" {
		fail(codeBadRequest, "missing \"snapshot\" field (the snapshot label)")
		return
	}
	version, err := op(name, req.Snapshot)
	if err != nil {
		switch {
		case errors.Is(err, errDBNotFound):
			fail(codeUnknownDB, err.Error())
		case errors.Is(err, errSnapshotNotFound):
			fail(codeUnknownSnap, err.Error())
		default:
			fail(codeStorage, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{OK: true, Name: name, Snapshot: req.Snapshot, Version: version})
}
