// Package server is the resident query service behind cmd/algrecd: an
// HTTP/JSON surface that keeps named databases in an in-memory registry and
// evaluates algebra, ifp-algebra, algebra= and datalog queries under any of
// the six semantics, concurrently, through the shared internal/query
// pipeline.
//
// The serving machinery the one-shot CLIs lack:
//
//   - a compiled-plan LRU cache keyed by (language, query text, semantics)
//     with singleflight deduplication, so identical in-flight queries
//     compile exactly once and repeated queries skip parsing entirely;
//   - per-request budgets (the engines' Budget types, field-wise overridable
//     per request) plus context-based timeouts whose cancellation is polled
//     between fixpoint rounds, so a runaway query returns a structured
//     "budget-exceeded" or "timeout" error instead of wedging a worker;
//   - incremental mutations: POST /v1/dbs/{name}/facts applies fact
//     insert/delete batches to a registered database, bumping its version;
//   - live subscriptions: POST /v1/subscribe registers a compiled query and
//     streams its result deltas (SSE or ndjson) as the database changes,
//     maintained incrementally by internal/ivm with per-subscription
//     backpressure accounting;
//   - graceful shutdown: BeginDrain makes the service refuse new work with
//     a "shutting-down" error while in-flight requests run to completion
//     and live subscriptions end with a "drain" goodbye;
//   - observability: every request emits one obsv.ServerStats event, every
//     subscription one obsv.SubscriptionStats event, and /metrics exposes
//     the server's counter snapshot.
//
// See docs/server.md for the HTTP API and the request/response schemas.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"algrec/internal/algebra"
	"algrec/internal/algebra/parse"
	"algrec/internal/datalog/ground"
	"algrec/internal/obsv"
	"algrec/internal/query"
)

// Config tunes a Server. The zero value gets sensible defaults: a 128-plan
// cache, a 1 MiB body limit, a 30-second default timeout, and the engines'
// default budgets.
type Config struct {
	// CacheCap is the compiled-plan LRU capacity (0 = default 128; negative
	// disables caching, keeping only singleflight deduplication).
	CacheCap int
	// MaxBodyBytes caps the request body; larger bodies get the structured
	// "oversized-body" error (0 = default 1 MiB).
	MaxBodyBytes int64
	// DefaultTimeout applies to requests that set no timeoutMS
	// (0 = default 30s; negative = no default timeout).
	DefaultTimeout time.Duration
	// Budget and Ground are the server-side default evaluation budgets;
	// request budget fields override them field-wise when positive. Their
	// Interrupt channels are ignored — the server wires per-request
	// cancellation itself.
	Budget algebra.Budget
	Ground ground.Budget
	// MaxUndef is the default stable-search residual bound
	// (0 = query.DefaultMaxUndef).
	MaxUndef int
	// SubMaxPending caps the coalesced undelivered delta a subscription may
	// accumulate (in fact keys) before it is closed as a slow consumer
	// (0 = default 4096).
	SubMaxPending int
	// Collector receives a copy of every observability event the server
	// emits, in addition to the server's own /metrics counters.
	Collector obsv.Collector
	// Storage, when non-nil, backs named databases with on-disk stores
	// under Storage.Dir instead of keeping relations in memory; call
	// OpenStorage before serving to recover databases persisted by earlier
	// runs, and Close on shutdown to flush them.
	Storage *StorageConfig
}

// Server is the resident query service. Create one with New, register
// databases with RegisterDB, and mount Handler on an http.Server.
type Server struct {
	cfg        Config
	cache      *planCache
	reg        *registry
	stats      *obsv.Stats
	col        obsv.Collector
	mux        *http.ServeMux
	draining   atomic.Bool
	drainCh    chan struct{} // closed by BeginDrain; ends live subscriptions
	drainOnce  sync.Once
	activeSubs atomic.Int64

	// testHookEval, when set, runs between plan lookup and evaluation —
	// test instrumentation for deterministic drain/concurrency tests.
	testHookEval func()
	// testHookSubEvent, when set, runs at the top of each subscription
	// writer iteration — test instrumentation for deterministic
	// coalescing and slow-consumer tests.
	testHookSubEvent func()
}

// New returns a Server ready to serve. Apply Config defaults here so tests
// can read the effective values back.
func New(cfg Config) *Server {
	if cfg.CacheCap == 0 {
		cfg.CacheCap = 128
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.SubMaxPending == 0 {
		cfg.SubMaxPending = 4096
	}
	s := &Server{
		cfg:     cfg,
		cache:   newPlanCache(cfg.CacheCap),
		reg:     newRegistry(),
		stats:   obsv.NewStats(),
		drainCh: make(chan struct{}),
	}
	if cfg.Storage != nil {
		s.reg.storage = cfg.Storage.withDefaults()
	}
	s.col = obsv.Multi(s.stats, cfg.Collector)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/dbs", s.handleListDBs)
	s.mux.HandleFunc("PUT /v1/dbs/{name}", s.handlePutDB)
	s.mux.HandleFunc("POST /v1/dbs/{name}/facts", s.handleMutateFacts)
	s.mux.HandleFunc("POST /v1/dbs/{name}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/dbs/{name}/restore", s.handleRestore)
	s.mux.HandleFunc("POST /v1/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Collector returns the collector the server reports to: its own /metrics
// counters fanned out with Config.Collector. Install it as the process
// default (obsv.SetDefault) to surface engine-internal events — fixpoint
// rounds, grounding passes, stable searches — on /metrics too.
func (s *Server) Collector() obsv.Collector { return s.col }

// Stats returns the server's counter collector (the /metrics source).
func (s *Server) Stats() *obsv.Stats { return s.stats }

// RegisterDB registers (or replaces) a named database. With disk storage
// configured the load lands in the database's on-disk store, which can fail;
// without it the error is always nil.
func (s *Server) RegisterDB(name string, db algebra.DB) error {
	return s.reg.set(name, db)
}

// OpenStorage recovers the databases persisted under Config.Storage.Dir by
// earlier runs, returning their names. A no-op (nil, nil) without a storage
// config. Call it once, before serving.
func (s *Server) OpenStorage() ([]string, error) {
	if s.reg.storage == nil {
		return nil, nil
	}
	return s.reg.openDisk()
}

// Close flushes and closes every database's disk store (a no-op for
// memory-resident databases). Call it after the HTTP server has shut down.
func (s *Server) Close() error {
	return s.reg.closeStores()
}

// BeginDrain puts the server into draining mode: query, registration,
// mutation and subscription requests are refused with the "shutting-down"
// error while requests already past the drain check run to completion
// (http.Server.Shutdown waits for them). Live subscriptions are closed with
// a "bye" event carrying reason "drain". Draining is one-way.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Error codes of the JSON error body, beyond those of query.ErrorCode.
const (
	codeBadRequest    = "bad-request"
	codeUnknownDB     = "unknown-database"
	codeOversized     = "oversized-body"
	codeShuttingDown  = "shutting-down"
	codeTimeout       = "timeout"
	codeParseError    = "parse-error"
	codeBudgetExceed  = "budget-exceeded"
	codeCanceled      = "canceled"
	codeUnsupportedSm = "unsupported-semantics"
	codeUnknownSnap   = "unknown-snapshot"
	codeStorage       = "storage-error"
)

// httpStatus maps a structured error code to its HTTP status.
func httpStatus(code string) int {
	switch code {
	case codeBadRequest:
		return http.StatusBadRequest
	case codeUnknownDB, codeUnknownSnap:
		return http.StatusNotFound
	case codeStorage:
		return http.StatusInternalServerError
	case codeOversized:
		return http.StatusRequestEntityTooLarge
	case codeShuttingDown:
		return http.StatusServiceUnavailable
	case codeTimeout:
		return http.StatusGatewayTimeout
	case codeCanceled:
		// The nginx convention for "client closed the connection": nobody
		// is left to read the response, but logs and metrics see the code.
		return 499
	default: // parse-error, unsupported-semantics, budget-exceeded, eval-error
		return http.StatusUnprocessableEntity
	}
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	OK    bool     `json:"ok"`
	Error errorObj `json:"error"`
}

// errorObj carries the structured code and the human-readable message.
type errorObj struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeJSON writes v with the given status; encoding errors are dropped
// (the connection is gone, nothing sensible remains to do).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the structured error body for code.
func writeError(w http.ResponseWriter, code, msg string) {
	writeJSON(w, httpStatus(code), errorBody{Error: errorObj{Code: code, Message: msg}})
}

// budgetJSON is the request's budget override block; zero fields keep the
// server defaults.
type budgetJSON struct {
	MaxIFPIters int `json:"maxIFPIters"`
	MaxSetSize  int `json:"maxSetSize"`
	MaxDepth    int `json:"maxDepth"`
	MaxAtoms    int `json:"maxAtoms"`
	MaxRules    int `json:"maxRules"`
}

// queryRequest is the POST /v1/query body.
type queryRequest struct {
	DB        string      `json:"db"`
	Language  string      `json:"language"`
	Semantics string      `json:"semantics"`
	Query     string      `json:"query"`
	TimeoutMS int64       `json:"timeoutMS"`
	MaxUndef  int         `json:"maxUndef"`
	Budget    *budgetJSON `json:"budget"`
}

// namedSetJSON is one defined constant in a query response; sets render in
// the algebra's literal syntax.
type namedSetJSON struct {
	Name  string `json:"name"`
	Set   string `json:"set"`
	Undef string `json:"undef,omitempty"`
}

// queryAnswerJSON is one `query` statement's answer.
type queryAnswerJSON struct {
	Query string `json:"query"`
	Set   string `json:"set"`
	Undef string `json:"undef,omitempty"`
}

// predFactsJSON is one predicate's facts in a datalog response.
type predFactsJSON struct {
	Pred  string   `json:"pred"`
	True  []string `json:"true,omitempty"`
	Undef []string `json:"undef,omitempty"`
}

// resultJSON is the language-dependent payload of a successful query.
type resultJSON struct {
	// Value is the expression languages' single result set.
	Value string `json:"value,omitempty"`
	// Defs, Queries and Models carry algebra= outcomes.
	Defs    []namedSetJSON    `json:"defs,omitempty"`
	Queries []queryAnswerJSON `json:"queries,omitempty"`
	Models  [][]namedSetJSON  `json:"models,omitempty"`
	// IDB, Preds and DatalogModels carry datalog outcomes.
	IDB           []string          `json:"idb,omitempty"`
	Preds         []predFactsJSON   `json:"preds,omitempty"`
	DatalogModels [][]predFactsJSON `json:"datalogModels,omitempty"`
}

// queryResponse is the POST /v1/query success body.
type queryResponse struct {
	OK          bool       `json:"ok"`
	Language    string     `json:"language"`
	Semantics   string     `json:"semantics"`
	WellDefined bool       `json:"wellDefined"`
	CacheHit    bool       `json:"cacheHit"`
	Result      resultJSON `json:"result"`
	WallMS      float64    `json:"wallMS"`
}

// handleQuery serves POST /v1/query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ev := obsv.ServerStats{Route: "query"}
	defer func() {
		ev.WallNS = time.Since(start).Nanoseconds()
		s.col.Server(ev)
	}()
	fail := func(code, msg string) {
		ev.Code = code
		writeError(w, code, msg)
	}
	if s.draining.Load() {
		fail(codeShuttingDown, "the server is draining and refuses new queries")
		return
	}
	var req queryRequest
	if code, msg := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); code != "" {
		fail(code, msg)
		return
	}
	lang, err := query.ParseLanguage(req.Language)
	if err != nil {
		fail(codeBadRequest, err.Error())
		return
	}
	sem, err := query.ParseSemantics(req.Semantics)
	if err != nil {
		fail(codeBadRequest, err.Error())
		return
	}
	ev.Language, ev.Semantics = string(lang), string(sem)
	if req.Query == "" {
		fail(codeBadRequest, "missing \"query\" field")
		return
	}
	ev.CacheLookup = true
	plan, hit, compiled, err := s.cache.get(cacheKey{lang: lang, sem: sem, src: req.Query})
	ev.CacheHit, ev.Compiled = hit, compiled
	if err != nil {
		fail(query.ErrorCode(err, true), err.Error())
		return
	}

	// The plan determines which relations a disk-backed database must
	// materialize, so the database is resolved after plan lookup.
	db, ok, err := s.reg.dbForPlan(req.DB, plan)
	if !ok {
		fail(codeUnknownDB, fmt.Sprintf("no database named %q is registered", req.DB))
		return
	}
	if err != nil {
		fail(codeStorage, err.Error())
		return
	}

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	opts := s.requestOptions(&req, ctx)

	if s.testHookEval != nil {
		s.testHookEval()
	}
	out, err := query.Execute(plan, db, opts)
	if err != nil {
		code := query.ErrorCode(err, false)
		if code == codeCanceled && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			code = codeTimeout
		}
		fail(code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		OK:          true,
		Language:    string(lang),
		Semantics:   string(sem),
		WellDefined: out.WellDefined,
		CacheHit:    hit,
		Result:      renderResult(out),
		WallMS:      float64(time.Since(start).Microseconds()) / 1000,
	})
}

// requestOptions merges the request's budget overrides over the server
// defaults and wires the request context's cancellation into both engines'
// Interrupt channels (polled between fixpoint rounds).
func (s *Server) requestOptions(req *queryRequest, ctx context.Context) query.Options {
	opts := query.Options{Budget: s.cfg.Budget, Ground: s.cfg.Ground, MaxUndef: s.cfg.MaxUndef}
	if req.MaxUndef > 0 {
		opts.MaxUndef = req.MaxUndef
	}
	if b := req.Budget; b != nil {
		if b.MaxIFPIters > 0 {
			opts.Budget.MaxIFPIters = b.MaxIFPIters
		}
		if b.MaxSetSize > 0 {
			opts.Budget.MaxSetSize = b.MaxSetSize
		}
		if b.MaxDepth > 0 {
			opts.Budget.MaxDepth = b.MaxDepth
		}
		if b.MaxAtoms > 0 {
			opts.Ground.MaxAtoms = b.MaxAtoms
		}
		if b.MaxRules > 0 {
			opts.Ground.MaxRules = b.MaxRules
		}
	}
	opts.Budget.Interrupt = ctx.Done()
	opts.Ground.Interrupt = ctx.Done()
	return opts
}

// decodeBody decodes the request body into v under the body-size cap,
// returning a structured error code ("" on success).
func decodeBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) (code, msg string) {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return codeOversized, fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit)
		}
		return codeBadRequest, "malformed JSON body: " + err.Error()
	}
	return "", ""
}

// renderResult converts a query Outcome to the response's JSON payload.
func renderResult(o *query.Outcome) resultJSON {
	var res resultJSON
	if o.HasValue {
		res.Value = o.Value.String()
		return res
	}
	toSets := func(defs []query.NamedSet) []namedSetJSON {
		out := make([]namedSetJSON, 0, len(defs))
		for _, d := range defs {
			j := namedSetJSON{Name: d.Name, Set: d.Set.String()}
			if !d.Undef.IsEmpty() {
				j.Undef = d.Undef.String()
			}
			out = append(out, j)
		}
		return out
	}
	toPreds := func(m *query.DatalogModel) []predFactsJSON {
		out := make([]predFactsJSON, 0, len(m.Preds))
		for _, pf := range m.Preds {
			out = append(out, predFactsJSON{Pred: pf.Pred, True: pf.True, Undef: pf.Undef})
		}
		return out
	}
	res.Defs = toSets(o.Defs)
	for _, q := range o.Queries {
		j := queryAnswerJSON{Query: q.Src, Set: q.Set.String()}
		if !q.Undef.IsEmpty() {
			j.Undef = q.Undef.String()
		}
		res.Queries = append(res.Queries, j)
	}
	for _, m := range o.Models {
		res.Models = append(res.Models, toSets(m))
	}
	res.IDB = o.IDB
	if o.Datalog != nil {
		res.Preds = toPreds(o.Datalog)
	}
	for i := range o.DatalogModels {
		res.DatalogModels = append(res.DatalogModels, toPreds(&o.DatalogModels[i]))
	}
	return res
}

// handleListDBs serves GET /v1/dbs.
func (s *Server) handleListDBs(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ev := obsv.ServerStats{Route: "dbs"}
	defer func() {
		ev.WallNS = time.Since(start).Nanoseconds()
		s.col.Server(ev)
	}()
	writeJSON(w, http.StatusOK, struct {
		OK  bool     `json:"ok"`
		DBs []dbInfo `json:"dbs"`
	}{OK: true, DBs: s.reg.list()})
}

// handlePutDB serves PUT /v1/dbs/{name}: the body is an algebra= script
// whose rel statements become the database's relations.
func (s *Server) handlePutDB(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ev := obsv.ServerStats{Route: "dbs"}
	defer func() {
		ev.WallNS = time.Since(start).Nanoseconds()
		s.col.Server(ev)
	}()
	fail := func(code, msg string) {
		ev.Code = code
		writeError(w, code, msg)
	}
	if s.draining.Load() {
		fail(codeShuttingDown, "the server is draining and refuses new registrations")
		return
	}
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	src, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			fail(codeOversized, fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit))
		} else {
			fail(codeBadRequest, err.Error())
		}
		return
	}
	db, err := LoadDBScript(string(src))
	if err != nil {
		fail(codeParseError, err.Error())
		return
	}
	if err := s.reg.set(name, db); err != nil {
		fail(codeStorage, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		OK        bool   `json:"ok"`
		Name      string `json:"name"`
		Relations int    `json:"relations"`
	}{OK: true, Name: name, Relations: len(db)})
}

// LoadDBScript parses src as an algebra= script and returns its relation
// declarations as a database — the on-disk and over-the-wire database
// format of the service (definitions and queries are rejected: a database
// is data, not a program).
func LoadDBScript(src string) (algebra.DB, error) {
	script, err := parse.ParseScript(src)
	if err != nil {
		return nil, err
	}
	if len(script.Program.Defs) > 0 || len(script.Queries) > 0 {
		return nil, fmt.Errorf("server: a database script may contain only rel statements")
	}
	return script.DB, nil
}

// handleHealthz serves GET /healthz: 200 while serving, 503 once draining,
// so load balancers stop routing to a server that is shutting down.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ev := obsv.ServerStats{Route: "healthz"}
	defer func() {
		ev.WallNS = time.Since(start).Nanoseconds()
		s.col.Server(ev)
	}()
	status, state := http.StatusOK, "serving"
	if s.draining.Load() {
		status, state = http.StatusServiceUnavailable, "draining"
	}
	writeJSON(w, status, struct {
		OK     bool   `json:"ok"`
		Status string `json:"status"`
	}{OK: status == http.StatusOK, Status: state})
}

// handleMetrics serves GET /metrics: the server's counter snapshot (see
// obsv.Snapshot for the vocabulary) plus the plan cache's current size.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ev := obsv.ServerStats{Route: "metrics"}
	defer func() {
		ev.WallNS = time.Since(start).Nanoseconds()
		s.col.Server(ev)
	}()
	writeJSON(w, http.StatusOK, struct {
		OK         bool          `json:"ok"`
		Counters   obsv.Snapshot `json:"counters"`
		CachedPlan int           `json:"cachedPlans"`
		ActiveSubs int64         `json:"activeSubscriptions"`
	}{OK: true, Counters: s.stats.Snapshot(), CachedPlan: s.cache.len(), ActiveSubs: s.activeSubs.Load()})
}
