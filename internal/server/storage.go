package server

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"algrec/internal/algebra"
	"algrec/internal/datalog"
	"algrec/internal/storage"
	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// StorageConfig switches the server's named databases from memory-resident
// relations to on-disk stores (storage.OpenDisk): each database becomes a
// directory under Dir holding its log-structured segments, so the working
// set can exceed RAM — queries materialize only the relations their plan
// reads, through a bounded per-database cache.
type StorageConfig struct {
	// Dir is the root directory; one subdirectory per database.
	Dir string
	// Sync fsyncs the log after every mutation batch (durability over
	// throughput; off by default, matching storage.DiskOptions).
	Sync bool
	// MatBudgetRows caps the total rows held by one database's
	// materialization cache (0 = default 1<<20). A single relation larger
	// than the budget is still materialized — it just is not retained.
	MatBudgetRows int
	// ScanWorkers is the shard-scan parallelism used when materializing
	// relations (0 = GOMAXPROCS).
	ScanWorkers int
}

// withDefaults returns a copy with zero fields defaulted.
func (c StorageConfig) withDefaults() *StorageConfig {
	if c.MatBudgetRows == 0 {
		c.MatBudgetRows = 1 << 20
	}
	return &c
}

// dbDirPrefix/dbDirHexPrefix prefix database directory names: names made of
// safe characters keep their spelling ("db-" + name), anything else is hex
// encoded ("dbx-" + hex). Distinct prefixes keep the two injections from
// colliding.
const (
	dbDirPrefix    = "db-"
	dbDirHexPrefix = "dbx-"
)

func dbDirName(name string) string {
	safe := name != "" && !strings.HasPrefix(name, ".")
	for _, c := range name {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '_' || c == '-') {
			safe = false
			break
		}
	}
	if safe {
		return dbDirPrefix + name
	}
	return dbDirHexPrefix + hex.EncodeToString([]byte(name))
}

// dbNameOfDir inverts dbDirName; ok=false for directories that are not
// database directories (strays are ignored, not errors).
func dbNameOfDir(dir string) (string, bool) {
	if rest, ok := strings.CutPrefix(dir, dbDirPrefix); ok {
		return rest, rest != ""
	}
	if rest, ok := strings.CutPrefix(dir, dbDirHexPrefix); ok {
		b, err := hex.DecodeString(rest)
		if err != nil || len(b) == 0 {
			return "", false
		}
		return string(b), true
	}
	return "", false
}

// open opens (creating if needed) the disk store for one database.
func (c *StorageConfig) open(name string) (*entryStore, error) {
	dir := filepath.Join(c.Dir, dbDirName(name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: storage dir for %q: %w", name, err)
	}
	st, err := storage.OpenDisk(dir, storage.DiskOptions{Sync: c.Sync})
	if err != nil {
		return nil, fmt.Errorf("server: open storage for %q: %w", name, err)
	}
	return &entryStore{
		st:      st,
		in:      intern.Global(),
		budget:  c.MatBudgetRows,
		workers: c.ScanWorkers,
		mat:     map[string]value.Set{},
	}, nil
}

// openDisk scans cfg.Dir for existing database directories and registers a
// disk-backed entry for each, returning the recovered database names. Called
// once at startup, before the server accepts requests.
func (r *registry) openDisk() ([]string, error) {
	cfg := r.storage
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	dirents, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range dirents {
		if !de.IsDir() {
			continue
		}
		name, ok := dbNameOfDir(de.Name())
		if !ok {
			continue
		}
		st, err := cfg.open(name)
		if err != nil {
			return nil, err
		}
		e := newDBEntry(name)
		e.store = st
		e.cur.Store(&dbState{version: 1})
		r.mu.Lock()
		r.dbs[name] = e
		r.mu.Unlock()
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// entryStore is one disk-backed database: the storage.Store plus a bounded
// materialization cache of value.Set relations. The store itself is safe for
// concurrent readers; the cache is guarded by mu, which is never held while
// scanning the store — a cache miss materializes unlocked and publishes
// under an epoch check, so a mutation landing mid-scan simply discards the
// stale result instead of blocking.
type entryStore struct {
	st      storage.Store
	in      *intern.Interner
	budget  int
	workers int

	mu      sync.Mutex
	epoch   uint64 // bumped by every mutation; stale materializations are dropped
	mat     map[string]value.Set
	matRows int
}

// materialize returns the named relations (or every relation when all is
// set) as a database map. Relations absent from the store are omitted —
// exactly as a memory-resident database would not contain them.
func (es *entryStore) materialize(names []string, all bool) (algebra.DB, error) {
	if all {
		infos, err := es.st.Rels()
		if err != nil {
			return nil, err
		}
		names = make([]string, len(infos))
		for i, ri := range infos {
			names[i] = ri.Name
		}
	}
	db := make(algebra.DB, len(names))

	es.mu.Lock()
	epoch := es.epoch
	var miss []string
	for _, n := range names {
		if s, ok := es.mat[n]; ok {
			db[n] = s
		} else {
			miss = append(miss, n)
		}
	}
	es.mu.Unlock()

	for _, n := range miss {
		r, ok, err := es.st.Rel(n)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		s, err := storage.MaterializeSet(es.in, r, es.workers)
		if err != nil {
			return nil, err
		}
		db[n] = s
		es.cache(n, s, epoch)
	}
	return db, nil
}

// cache retains one materialized relation if it was read at the current
// epoch and fits the row budget, evicting older entries to make room.
func (es *entryStore) cache(name string, s value.Set, epoch uint64) {
	if s.Len() > es.budget {
		return
	}
	es.mu.Lock()
	defer es.mu.Unlock()
	if es.epoch != epoch {
		return // a mutation landed while we scanned; the copy may be stale
	}
	if _, ok := es.mat[name]; ok {
		return
	}
	for n, old := range es.mat {
		if es.matRows+s.Len() <= es.budget {
			break
		}
		es.matRows -= old.Len()
		delete(es.mat, n)
	}
	if es.matRows+s.Len() > es.budget {
		return
	}
	es.mat[name] = s
	es.matRows += s.Len()
}

// invalidate drops the named relations from the cache and bumps the epoch,
// so in-flight materializations cannot publish pre-mutation copies.
func (es *entryStore) invalidate(names []string) {
	es.mu.Lock()
	defer es.mu.Unlock()
	es.epoch++
	for _, n := range names {
		if s, ok := es.mat[n]; ok {
			es.matRows -= s.Len()
			delete(es.mat, n)
		}
	}
}

// invalidateAll empties the cache and bumps the epoch.
func (es *entryStore) invalidateAll() {
	es.mu.Lock()
	defer es.mu.Unlock()
	es.epoch++
	es.mat = map[string]value.Set{}
	es.matRows = 0
}

// replace swaps the store's entire contents for db in one atomic batch:
// relations not in db are dropped, the rest reset to their new rows, sorted
// so the log is deterministic.
func (es *entryStore) replace(db algebra.DB) error {
	infos, err := es.st.Rels()
	if err != nil {
		return err
	}
	var b storage.Batch
	for _, ri := range infos {
		if _, keep := db[ri.Name]; !keep {
			b = append(b, storage.Mutation{Rel: ri.Name, Drop: true})
		}
	}
	names := make([]string, 0, len(db))
	for name := range db {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rows, arity := storage.RowsOfSet(es.in, db[name])
		b = append(b, storage.Mutation{Rel: name, Arity: arity, Reset: true, Insert: rows})
	}
	if err := es.st.Apply(b); err != nil {
		return err
	}
	es.invalidateAll()
	return nil
}

// applyFacts applies one fact mutation (deletes before inserts, matching
// ivm.ApplyDB) to the store. Facts whose shape disagrees with the stored
// relation's arity fall back to storage.RearityBatch, which re-encodes the
// relation in the heterogeneous arity-1 form. Called under the entry mutex.
func (es *entryStore) applyFacts(ins, del []datalog.Fact) error {
	b, touched, err := es.factsBatch(ins, del)
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return nil
	}
	if err := es.st.Apply(b); err != nil {
		if !errors.Is(err, storage.ErrArityMismatch) {
			return err
		}
		rb, rerr := storage.RearityBatch(es.st, es.in, b)
		if rerr != nil {
			return rerr
		}
		if err := es.st.Apply(rb); err != nil {
			return err
		}
	}
	es.invalidate(touched)
	return nil
}

// factValue is the element a fact contributes to its predicate's relation:
// a single argument stands alone, several form a tuple (ivm.ApplyDB's
// convention).
func factValue(f datalog.Fact) value.Value {
	if len(f.Args) == 1 {
		return f.Args[0]
	}
	return value.NewTuple(f.Args...)
}

// factsBatch encodes a fact mutation as one storage mutation per predicate
// (RearityBatch requires at most one mutation per relation), choosing each
// predicate's arity to match the stored relation — or, for new predicates,
// the relational encoding when every inserted element is a tuple of one
// width >= 2. Elements that cannot fit a relational arity demote the whole
// predicate to the arity-1 encoding; the resulting arity mismatch is the
// caller's RearityBatch fallback. Returns the touched predicate names.
func (es *entryStore) factsBatch(ins, del []datalog.Fact) (storage.Batch, []string, error) {
	type predMut struct {
		ins, del []value.Value
	}
	preds := map[string]*predMut{}
	at := func(p string) *predMut {
		pm, ok := preds[p]
		if !ok {
			pm = &predMut{}
			preds[p] = pm
		}
		return pm
	}
	for _, f := range del {
		pm := at(f.Pred)
		pm.del = append(pm.del, factValue(f))
	}
	for _, f := range ins {
		pm := at(f.Pred)
		pm.ins = append(pm.ins, factValue(f))
	}

	names := make([]string, 0, len(preds))
	for n := range preds {
		names = append(names, n)
	}
	sort.Strings(names)

	var b storage.Batch
	for _, n := range names {
		pm := preds[n]
		arity := es.predArity(n, pm.ins)
		m := storage.Mutation{Rel: n, Arity: arity}
		// A predicate absent from the store with only deletes: nothing to do.
		if _, ok, err := es.st.Rel(n); err != nil {
			return nil, nil, err
		} else if !ok && len(pm.ins) == 0 {
			continue
		}
		fit := true
		for _, v := range pm.ins {
			if _, ok := rowOfElem(es.in, v, arity); !ok {
				fit = false
				break
			}
		}
		if !fit {
			// Mixed shapes: encode the whole predicate heterogeneously.
			arity = 1
			m.Arity = 1
		}
		for _, v := range pm.del {
			if row, ok := rowOfElem(es.in, v, arity); ok {
				m.Delete = append(m.Delete, row)
			}
			// An element that cannot fit the stored arity cannot be present
			// at that arity either — skipping the delete is exact. (If the
			// batch demotes to arity 1 via RearityBatch, the re-encode pass
			// re-reads these delete rows from the rebuilt mutation.)
		}
		for _, v := range pm.ins {
			row, _ := rowOfElem(es.in, v, arity)
			m.Insert = append(m.Insert, row)
		}
		b = append(b, m)
	}
	return b, names, nil
}

// predArity picks the storage arity for one predicate's mutation: the stored
// relation's arity when it exists, otherwise the relational width of the
// inserted elements (all tuples of one width >= 2), otherwise 1.
func (es *entryStore) predArity(name string, ins []value.Value) int {
	if r, ok, err := es.st.Rel(name); err == nil && ok {
		return r.Arity()
	}
	k := -1
	for _, v := range ins {
		t, ok := v.(value.Tuple)
		if !ok || t.Len() < 2 || (k >= 0 && t.Len() != k) {
			return 1
		}
		k = t.Len()
	}
	if k < 0 {
		return 1
	}
	return k
}

// rowOfElem encodes one set element as a row of the given arity, matching
// storage.RowsOfSet's encoding; ok=false when the element does not fit
// (not a tuple of that width).
func rowOfElem(in *intern.Interner, v value.Value, arity int) ([]intern.ID, bool) {
	if arity == 1 {
		return []intern.ID{in.Intern(v)}, true
	}
	t, ok := v.(value.Tuple)
	if !ok || t.Len() != arity {
		return nil, false
	}
	id := in.Intern(v)
	row := make([]intern.ID, arity)
	copy(row, in.Elems(id))
	return row, true
}

// checkpoint durably snapshots and compacts the underlying store.
func (es *entryStore) checkpoint() error { return es.st.Snapshot() }

// relInfo lists the store's relations (empty on a read error — listings are
// best-effort).
func (es *entryStore) relInfo() []storage.RelInfo {
	infos, err := es.st.Rels()
	if err != nil {
		return nil
	}
	return infos
}

func (es *entryStore) close() error { return es.st.Close() }
