package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// Known-answer workloads shared by the end-to-end matrix: a small edge
// relation as the registered database, plus query texts per language.
const (
	// tcExpr computes one extension step of the registered edge relation.
	joinExpr = `map(select(product(edge, edge), \p -> p.1.2 = p.2.1), \p -> (p.1.1, p.2.2))`
	// tcIFP computes the transitive closure of edge with the ifp operator.
	tcIFP = `ifp(s, union(edge, map(select(product(s, edge), \p -> p.1.2 = p.2.1), \p -> (p.1.1, p.2.2))))`
	// tcScript computes the same closure as a recursive defining equation
	// over the registered edge relation.
	tcScript = `def tc = union(edge, map(select(product(tc, edge), \p -> p.1.2 = p.2.1), \p -> (p.1.1, p.2.2)));
query tc;`
	// winCycleScript is the WIN game on a 2-cycle: no valid two-valued
	// reading, two stable readings.
	winCycleScript = `rel move = {(a, b), (b, a)};
def win = map(diff(move, product(map(move, \x -> x.1), win)), \x -> x.1);`
	// tcDatalog is the deductive transitive closure with inline facts.
	tcDatalog = `edge(a, b). edge(b, c). edge(c, d).
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- tc(X, Y), edge(Y, Z).`
	// bomDatalog is the bill-of-materials workload with stratified negation.
	bomDatalog = `sub(bike, frame). sub(bike, wheel). sub(wheel, rim). sub(wheel, spoke).
sub(wheel, hub). sub(hub, axle). sub(hub, bearing). sub(lamp, bulb). sub(lamp, battery).
part(bike). part(frame). part(wheel). part(rim). part(spoke).
part(hub). part(axle). part(bearing). part(lamp). part(bulb). part(battery).
contains(X, Y) :- sub(X, Y).
contains(X, Z) :- contains(X, Y), sub(Y, Z).
missing(Y) :- part(Y), not contains(bike, Y), Y != bike.`
	// winDatalog is the WIN game on a cyclic MOVE: win(a) is undefined
	// under the three-valued semantics and kills every stable model.
	winDatalog = `move(a, a). move(a, b). move(b, c).
win(X) :- move(X, Y), not win(Y).`

	tcClosure = "{(a, b), (a, c), (a, d), (b, c), (b, d), (c, d)}"
)

// newTestServer builds a server with the edge database registered and
// returns it with its httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	db, err := LoadDBScript(`rel edge = {(a, b), (b, c), (c, d)};`)
	if err != nil {
		t.Fatalf("LoadDBScript: %v", err)
	}
	s.RegisterDB("g", db)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postQuery posts a /v1/query request and decodes the JSON response.
func postQuery(t *testing.T, ts *httptest.Server, req queryRequest) (int, queryResponse, errorBody) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return postRaw(t, ts, body)
}

// postRaw posts raw bytes to /v1/query and decodes the JSON response into
// both the success and error shapes (one of them stays zero).
func postRaw(t *testing.T, ts *httptest.Server, body []byte) (int, queryResponse, errorBody) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	var ok queryResponse
	var bad errorBody
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &ok); err != nil {
			t.Fatalf("decode success body %q: %v", buf.String(), err)
		}
	} else if err := json.Unmarshal(buf.Bytes(), &bad); err != nil {
		t.Fatalf("decode error body %q: %v", buf.String(), err)
	}
	return resp.StatusCode, ok, bad
}

// predByName finds one predicate's facts in a rendered datalog result.
func predByName(preds []predFactsJSON, name string) *predFactsJSON {
	for i := range preds {
		if preds[i].Pred == name {
			return &preds[i]
		}
	}
	return nil
}

// TestE2EMatrix drives every (language × semantics) pair through the HTTP
// surface against known-answer workloads; unsupported pairs must be
// rejected with the structured unsupported-semantics error.
func TestE2EMatrix(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	sortedCopy := func(xs []string) []string {
		out := append([]string(nil), xs...)
		sort.Strings(out)
		return out
	}
	wantStrs := func(t *testing.T, what string, got, want []string) {
		t.Helper()
		if fmt.Sprint(sortedCopy(got)) != fmt.Sprint(sortedCopy(want)) {
			t.Fatalf("%s = %v, want %v", what, got, want)
		}
	}

	type check func(t *testing.T, r queryResponse)
	valueIs := func(want string) check {
		return func(t *testing.T, r queryResponse) {
			t.Helper()
			if r.Result.Value != want {
				t.Fatalf("value = %q, want %q", r.Result.Value, want)
			}
		}
	}
	tcQueryAnswer := func(t *testing.T, r queryResponse) {
		t.Helper()
		if len(r.Result.Queries) != 1 || r.Result.Queries[0].Set != tcClosure {
			t.Fatalf("queries = %+v, want one answer %s", r.Result.Queries, tcClosure)
		}
		if !r.WellDefined {
			t.Fatalf("tc program should be well defined")
		}
	}
	winTrue := func(wantTrue, wantUndef []string) check {
		return func(t *testing.T, r queryResponse) {
			t.Helper()
			pf := predByName(r.Result.Preds, "win")
			if pf == nil {
				t.Fatalf("no win predicate in %+v", r.Result.Preds)
			}
			wantStrs(t, "win true", pf.True, wantTrue)
			wantStrs(t, "win undef", pf.Undef, wantUndef)
		}
	}

	tests := []struct {
		lang, sem, db, query string
		wantCode             string // "" = expect 200
		check                check
	}{
		// algebra: recursion-free, every semantics agrees.
		{"algebra", "valid", "g", joinExpr, "", valueIs("{(a, c), (b, d)}")},
		{"algebra", "wellfounded", "g", joinExpr, "", valueIs("{(a, c), (b, d)}")},
		{"algebra", "stable", "g", joinExpr, "", valueIs("{(a, c), (b, d)}")},
		{"algebra", "inflationary", "g", joinExpr, "", valueIs("{(a, c), (b, d)}")},
		{"algebra", "stratified", "g", joinExpr, "", valueIs("{(a, c), (b, d)}")},
		{"algebra", "minimal", "g", joinExpr, "", valueIs("{(a, c), (b, d)}")},

		// ifp-algebra: the transitive closure, every semantics agrees.
		{"ifp-algebra", "valid", "g", tcIFP, "", valueIs(tcClosure)},
		{"ifp-algebra", "wellfounded", "g", tcIFP, "", valueIs(tcClosure)},
		{"ifp-algebra", "stable", "g", tcIFP, "", valueIs(tcClosure)},
		{"ifp-algebra", "inflationary", "g", tcIFP, "", valueIs(tcClosure)},
		{"ifp-algebra", "stratified", "g", tcIFP, "", valueIs(tcClosure)},
		{"ifp-algebra", "minimal", "g", tcIFP, "", valueIs(tcClosure)},

		// algebra=: tc over the registered database under the evaluable
		// semantics; the 2-cycle WIN game under stable; the two
		// incompatible pairs rejected.
		{"algebra=", "valid", "g", tcScript, "", tcQueryAnswer},
		{"algebra=", "wellfounded", "g", tcScript, "", tcQueryAnswer},
		{"algebra=", "inflationary", "g", tcScript, "", tcQueryAnswer},
		{"algebra=", "stable", "", winCycleScript, "", func(t *testing.T, r queryResponse) {
			t.Helper()
			if len(r.Result.Models) != 2 {
				t.Fatalf("models = %+v, want 2 stable readings", r.Result.Models)
			}
			var got []string
			for _, m := range r.Result.Models {
				if len(m) != 1 || m[0].Name != "win" {
					t.Fatalf("model = %+v, want one win set", m)
				}
				got = append(got, m[0].Set)
			}
			wantStrs(t, "stable win sets", got, []string{"{a}", "{b}"})
		}},
		{"algebra=", "stratified", "", winCycleScript, "unsupported-semantics", nil},
		{"algebra=", "minimal", "", winCycleScript, "unsupported-semantics", nil},

		// datalog: all six semantics over the three paper workloads.
		{"datalog", "minimal", "", tcDatalog, "", func(t *testing.T, r queryResponse) {
			t.Helper()
			pf := predByName(r.Result.Preds, "tc")
			if pf == nil {
				t.Fatalf("no tc predicate in %+v", r.Result.Preds)
			}
			wantStrs(t, "tc", pf.True, []string{
				"tc(a, b)", "tc(a, c)", "tc(a, d)", "tc(b, c)", "tc(b, d)", "tc(c, d)",
			})
		}},
		{"datalog", "stratified", "", bomDatalog, "", func(t *testing.T, r queryResponse) {
			t.Helper()
			pf := predByName(r.Result.Preds, "missing")
			if pf == nil {
				t.Fatalf("no missing predicate in %+v", r.Result.Preds)
			}
			wantStrs(t, "missing", pf.True, []string{"missing(battery)", "missing(bulb)", "missing(lamp)"})
		}},
		{"datalog", "valid", "", winDatalog, "", winTrue([]string{"win(b)"}, []string{"win(a)"})},
		{"datalog", "wellfounded", "", winDatalog, "", winTrue([]string{"win(b)"}, []string{"win(a)"})},
		{"datalog", "inflationary", "", winDatalog, "", winTrue([]string{"win(a)", "win(b)"}, nil)},
		{"datalog", "stable", "", winDatalog, "", func(t *testing.T, r queryResponse) {
			t.Helper()
			if len(r.Result.DatalogModels) != 0 {
				t.Fatalf("models = %+v, want none (odd loop)", r.Result.DatalogModels)
			}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.lang+"/"+tc.sem, func(t *testing.T) {
			status, ok, bad := postQuery(t, ts, queryRequest{
				DB: tc.db, Language: tc.lang, Semantics: tc.sem, Query: tc.query,
			})
			if tc.wantCode != "" {
				if status == http.StatusOK {
					t.Fatalf("status = 200, want error %q", tc.wantCode)
				}
				if bad.Error.Code != tc.wantCode {
					t.Fatalf("error code = %q (%s), want %q", bad.Error.Code, bad.Error.Message, tc.wantCode)
				}
				return
			}
			if status != http.StatusOK {
				t.Fatalf("status = %d (%s: %s), want 200", status, bad.Error.Code, bad.Error.Message)
			}
			if !ok.OK || ok.Language != tc.lang || ok.Semantics != tc.sem {
				t.Fatalf("response envelope = %+v", ok)
			}
			tc.check(t, ok)
		})
	}
}

// TestE2EErrorPaths asserts the JSON error shape of every rejection the
// query endpoint can produce before evaluation.
func TestE2EErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})

	t.Run("malformed-json", func(t *testing.T) {
		status, _, bad := postRaw(t, ts, []byte(`{"language": `))
		if status != http.StatusBadRequest || bad.Error.Code != codeBadRequest {
			t.Fatalf("got %d %+v, want 400 bad-request", status, bad)
		}
		if bad.OK || bad.Error.Message == "" {
			t.Fatalf("error body must carry ok=false and a message: %+v", bad)
		}
	})
	t.Run("unknown-language", func(t *testing.T) {
		status, _, bad := postQuery(t, ts, queryRequest{Language: "sql", Query: "x"})
		if status != http.StatusBadRequest || bad.Error.Code != codeBadRequest {
			t.Fatalf("got %d %+v, want 400 bad-request", status, bad)
		}
	})
	t.Run("unknown-semantics", func(t *testing.T) {
		status, _, bad := postQuery(t, ts, queryRequest{Language: "datalog", Semantics: "vibes", Query: "p(a)."})
		if status != http.StatusBadRequest || bad.Error.Code != codeBadRequest {
			t.Fatalf("got %d %+v, want 400 bad-request", status, bad)
		}
	})
	t.Run("missing-query", func(t *testing.T) {
		status, _, bad := postQuery(t, ts, queryRequest{Language: "algebra"})
		if status != http.StatusBadRequest || bad.Error.Code != codeBadRequest {
			t.Fatalf("got %d %+v, want 400 bad-request", status, bad)
		}
	})
	t.Run("unknown-database", func(t *testing.T) {
		status, _, bad := postQuery(t, ts, queryRequest{DB: "nope", Language: "algebra", Query: "edge"})
		if status != http.StatusNotFound || bad.Error.Code != codeUnknownDB {
			t.Fatalf("got %d %+v, want 404 unknown-database", status, bad)
		}
	})
	t.Run("oversized-body", func(t *testing.T) {
		big := queryRequest{Language: "datalog", Query: strings.Repeat("p(a). ", 200)}
		body, _ := json.Marshal(big)
		status, _, bad := postRaw(t, ts, body)
		if status != http.StatusRequestEntityTooLarge || bad.Error.Code != codeOversized {
			t.Fatalf("got %d %+v, want 413 oversized-body", status, bad)
		}
	})
	t.Run("parse-error", func(t *testing.T) {
		status, _, bad := postQuery(t, ts, queryRequest{Language: "datalog", Query: "p(a"})
		if status != http.StatusUnprocessableEntity || bad.Error.Code != codeParseError {
			t.Fatalf("got %d %+v, want 422 parse-error", status, bad)
		}
	})
	t.Run("ifp-in-plain-algebra", func(t *testing.T) {
		status, _, bad := postQuery(t, ts, queryRequest{DB: "g", Language: "algebra", Query: tcIFP})
		if status != http.StatusUnprocessableEntity || bad.Error.Code != codeParseError {
			t.Fatalf("got %d %+v, want 422 parse-error", status, bad)
		}
	})
	t.Run("method-not-allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/query")
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/query = %d, want 405", resp.StatusCode)
		}
	})
	t.Run("budget-exceeded", func(t *testing.T) {
		status, _, bad := postQuery(t, ts, queryRequest{
			DB: "g", Language: "ifp-algebra", Query: tcIFP,
			Budget: &budgetJSON{MaxIFPIters: 1},
		})
		if status != http.StatusUnprocessableEntity || bad.Error.Code != codeBudgetExceed {
			t.Fatalf("got %d %+v, want 422 budget-exceeded", status, bad)
		}
	})
}

// TestDBRegistryEndpoints exercises GET /v1/dbs, PUT /v1/dbs/{name},
// /healthz and /metrics.
func TestDBRegistryEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	get := func(t *testing.T, path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		return resp.StatusCode, m
	}

	status, m := get(t, "/v1/dbs")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/dbs = %d", status)
	}
	if dbs := m["dbs"].([]any); len(dbs) != 1 || dbs[0].(map[string]any)["name"] != "g" {
		t.Fatalf("dbs = %v, want [g]", m["dbs"])
	}

	putReq, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/dbs/h", strings.NewReader(`rel r = {1, 2, 3};`))
	resp, err := http.DefaultClient.Do(putReq)
	if err != nil {
		t.Fatalf("PUT: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /v1/dbs/h = %d", resp.StatusCode)
	}
	status, ok, bad := postQuery(t, ts, queryRequest{DB: "h", Language: "algebra", Query: "r"})
	if status != http.StatusOK {
		t.Fatalf("query over registered db = %d (%+v)", status, bad)
	}
	if ok.Result.Value != "{1, 2, 3}" {
		t.Fatalf("r = %q", ok.Result.Value)
	}

	// A database script must not smuggle in a program.
	putReq, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/dbs/bad", strings.NewReader(`def d = d;`))
	resp, err = http.DefaultClient.Do(putReq)
	if err != nil {
		t.Fatalf("PUT: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("PUT program as db = %d, want 422", resp.StatusCode)
	}

	if status, m = get(t, "/healthz"); status != http.StatusOK || m["status"] != "serving" {
		t.Fatalf("healthz = %d %v", status, m)
	}
	status, m = get(t, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics = %d", status)
	}
	counters := m["counters"].(map[string]any)
	if counters["server.query.requests"].(float64) < 1 {
		t.Fatalf("metrics counters missing query requests: %v", counters)
	}

	// A request rejected before the plan-cache lookup must not count as a
	// cache miss: misses and compiles stay in lockstep here because every
	// query in this test compiled fresh.
	misses := counters["server.cache.misses"].(float64)
	if _, _, bad := postQuery(t, ts, queryRequest{Language: "nope", Query: "r"}); bad.Error.Code != "bad-request" {
		t.Fatalf("unknown language code = %q", bad.Error.Code)
	}
	_, m = get(t, "/metrics")
	counters = m["counters"].(map[string]any)
	if got := counters["server.cache.misses"].(float64); got != misses {
		t.Fatalf("bad-request bumped cache misses: %v -> %v", misses, got)
	}
	if got := counters["server.compiles"].(float64); got != misses {
		t.Fatalf("compiles = %v, want %v (one per miss in this test)", got, misses)
	}
}

// TestLoadDBScriptFile pins the bundled example database (the file `make
// serve` registers) as a loadable relation-only script.
func TestLoadDBScriptFile(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "graph.alg"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := LoadDBScript(string(src))
	if err != nil {
		t.Fatalf("LoadDBScript: %v", err)
	}
	if got := db["edge"].String(); got != "{(a, b), (b, c), (c, d)}" {
		t.Fatalf("edge = %s", got)
	}
}
