package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestSingleflightExactlyOneCompile proves the singleflight contract:
// N concurrent identical queries perform exactly one compilation. The test
// blocks the singleflight leader inside the compile hook until every other
// request has joined the flight, so the assertion is deterministic — no
// interleaving can produce a second compile.
func TestSingleflightExactlyOneCompile(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const n = 16
	release := make(chan struct{})
	s.cache.testHookCompile = func() { <-release }

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, ok, bad := postQuery(t, ts, queryRequest{
				DB: "g", Language: "ifp-algebra", Query: tcIFP,
			})
			if status != http.StatusOK {
				errs <- fmt.Errorf("status %d: %+v", status, bad)
				return
			}
			if ok.Result.Value != tcClosure {
				errs <- fmt.Errorf("value %q", ok.Result.Value)
			}
		}()
	}
	// Release the leader only after the other n-1 requests are provably
	// blocked on its flight; the flight stays registered until the leader
	// finishes, so every one of them shares the single compilation.
	deadline := time.Now().Add(10 * time.Second)
	for s.cache.waiters.Load() != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests joined the flight", s.cache.waiters.Load(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	snap := s.Stats().Snapshot()
	if got := snap["server.compiles"]; got != 1 {
		t.Fatalf("server.compiles = %d, want exactly 1", got)
	}
	if got := snap["server.cache.misses"]; got != 1 {
		t.Fatalf("server.cache.misses = %d, want 1 (the leader)", got)
	}
	if got := snap["server.cache.hits"]; got != n-1 {
		t.Fatalf("server.cache.hits = %d, want %d (the followers)", got, n-1)
	}

	// A second wave hits the now-cached plan: still exactly one compile.
	s.cache.testHookCompile = nil
	for i := 0; i < 4; i++ {
		if status, _, bad := postQuery(t, ts, queryRequest{DB: "g", Language: "ifp-algebra", Query: tcIFP}); status != http.StatusOK {
			t.Fatalf("cached query failed: %+v", bad)
		}
	}
	if got := s.Stats().Snapshot()["server.compiles"]; got != 1 {
		t.Fatalf("server.compiles after cached wave = %d, want 1", got)
	}
}

// TestEvictionNeverServesWrongPlan hammers a capacity-1 cache with two
// queries that evict each other; every response must carry its own query's
// answer. Run under -race in CI, this also exercises the cache's locking.
func TestEvictionNeverServesWrongPlan(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheCap: 1})
	queries := []struct{ text, want string }{
		{`union(edge, {(z, z)})`, "{(a, b), (b, c), (c, d), (z, z)}"},
		{`diff(edge, {(a, b)})`, "{(b, c), (c, d)}"},
	}
	const workers = 8
	const rounds = 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				q := queries[(w+i)%2]
				status, ok, bad := postQuery(t, ts, queryRequest{DB: "g", Language: "algebra", Query: q.text})
				if status != http.StatusOK {
					errs <- fmt.Errorf("worker %d round %d: %+v", w, i, bad)
					return
				}
				if ok.Result.Value != q.want {
					errs <- fmt.Errorf("worker %d round %d: query %q got %q, want %q — wrong plan served",
						w, i, q.text, ok.Result.Value, q.want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := s.cache.len(); n > 1 {
		t.Fatalf("cache holds %d plans, capacity is 1", n)
	}
}

// TestCacheLRUOrder pins the cache's eviction policy: least recently used
// goes first, and a get refreshes recency.
func TestCacheLRUOrder(t *testing.T) {
	c := newPlanCache(2)
	k := func(src string) cacheKey { return cacheKey{lang: "datalog", sem: "valid", src: src} }
	for _, src := range []string{"a(x).", "b(x).", "a(x)."} {
		if _, _, _, err := c.get(k(src)); err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
	}
	// Cache is [a, b] with a most recent; inserting c evicts b.
	if _, _, _, err := c.get(k("c(x).")); err != nil {
		t.Fatal(err)
	}
	if _, hit, _, _ := c.get(k("a(x).")); !hit {
		t.Fatal("a should have survived: it was refreshed before c was inserted")
	}
	if _, hit, compiled, _ := c.get(k("b(x).")); hit || !compiled {
		t.Fatal("b should have been evicted as least recently used")
	}
	// A compile error is returned but never cached.
	if _, _, _, err := c.get(k("broken(")); err == nil {
		t.Fatal("want compile error")
	}
	if _, hit, compiled, err := c.get(k("broken(")); err == nil || hit || !compiled {
		t.Fatalf("a failed compile must not be cached: hit=%v compiled=%v err=%v", hit, compiled, err)
	}
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
}
