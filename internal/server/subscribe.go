package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"algrec/internal/datalog"
	"algrec/internal/ivm"
	"algrec/internal/obsv"
	"algrec/internal/query"
	"algrec/internal/value"
)

// Close reasons of a subscription, reported in the "bye" event and in
// obsv.SubscriptionStats.Reason.
const (
	reasonClientGone   = "client-gone"   // the client disconnected
	reasonDrain        = "drain"         // the server began draining
	reasonSlowConsumer = "slow-consumer" // the pending delta outgrew SubMaxPending
	reasonReplaced     = "db-replaced"   // PUT /v1/dbs/{name} swapped the database
	reasonRestored     = "db-restored"   // POST /v1/dbs/{name}/restore swapped the database
	reasonError        = "error"         // view maintenance failed (budget, interrupt)
)

// subscriber is one live subscription: a compiled query registered against a
// named database, whose incremental view (ivm.View) is maintained on the
// mutator's goroutine under the dbEntry mutex while a writer goroutine (the
// HTTP handler) streams the resulting events to the client.
//
// Backpressure accounting: at most one undelivered event is held per
// subscriber. Deltas arriving while the previous one is still pending are
// folded into it (coalesced); if the folded delta grows past maxPending
// entries the subscription is closed with reason "slow-consumer" instead of
// buffering without bound.
type subscriber struct {
	entry *dbEntry
	view  *ivm.View

	mu        sync.Mutex
	pending   *subEventJSON // coalesced undelivered event, nil when none
	events    int64         // events written to the client
	coalesced int64         // deltas folded into an already-pending event
	reason    string        // non-empty once the subscription is closing
	notify    chan struct{} // capacity 1: "pending or reason changed" poke
}

// subEventJSON is the wire form of one subscription event. "snapshot" events
// carry the full query result (sent once at registration, and again whenever
// a delta cannot be expressed incrementally); "delta" events carry per-pred
// fact changes; the final "bye" event carries the close reason.
type subEventJSON struct {
	Event   string          `json:"event"` // snapshot | delta | bye
	Version uint64          `json:"version,omitempty"`
	Result  *resultJSON     `json:"result,omitempty"`
	Preds   []ivm.PredDelta `json:"preds,omitempty"`
	Reason  string          `json:"reason,omitempty"`
}

// poke wakes the writer goroutine without blocking the mutator.
func (sub *subscriber) poke() {
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// close marks the subscription as closing; the first reason wins.
func (sub *subscriber) close(reason string) {
	sub.mu.Lock()
	if sub.reason == "" {
		sub.reason = reason
	}
	sub.mu.Unlock()
	sub.poke()
}

// take hands the pending event (if any) and the close reason (if set) to the
// writer, clearing the pending slot.
func (sub *subscriber) take() (*subEventJSON, string) {
	sub.mu.Lock()
	e, reason := sub.pending, sub.reason
	sub.pending = nil
	sub.mu.Unlock()
	return e, reason
}

// countEvent records one event delivered to the client.
func (sub *subscriber) countEvent() {
	sub.mu.Lock()
	sub.events++
	sub.mu.Unlock()
}

// stats returns the final per-subscription counters for the obsv event.
func (sub *subscriber) stats() (events, coalesced int64, reason string) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.events, sub.coalesced, sub.reason
}

// push folds one maintenance result into the pending slot. Called on the
// mutator's goroutine under the dbEntry mutex (so sub.view is safe to read).
// Snapshot deltas — and any delta arriving while a snapshot is pending — are
// delivered as a fresh full-result snapshot: a rendered snapshot cannot be
// patched, and the view already holds the current outcome.
func (sub *subscriber) push(version uint64, d *ivm.ResultDelta, maxPending int) {
	sub.mu.Lock()
	defer func() { sub.mu.Unlock(); sub.poke() }()
	if sub.reason != "" {
		return
	}
	if sub.pending != nil {
		sub.coalesced++
	}
	switch {
	case d.Snapshot, sub.pending != nil && sub.pending.Event == "snapshot":
		out, err := sub.view.Outcome()
		if err != nil {
			sub.reason = reasonError
			sub.pending = nil
			return
		}
		res := renderResult(out)
		sub.pending = &subEventJSON{Event: "snapshot", Version: version, Result: &res}
	case sub.pending == nil:
		sub.pending = &subEventJSON{Event: "delta", Version: version, Preds: d.Preds}
	default:
		sub.pending.Version = version
		sub.pending.Preds = mergePredDeltas(sub.pending.Preds, d.Preds)
		if len(sub.pending.Preds) == 0 {
			// The folded deltas cancelled out — nothing to deliver.
			sub.pending = nil
			return
		}
	}
	if sub.pending.Event == "delta" && deltaEntries(sub.pending.Preds) > maxPending {
		sub.reason = reasonSlowConsumer
		sub.pending = nil
	}
}

// deltaEntries counts the fact keys a delta carries — the unit of the
// slow-consumer bound.
func deltaEntries(preds []ivm.PredDelta) int {
	n := 0
	for _, p := range preds {
		n += len(p.Added) + len(p.Removed) + len(p.UndefAdded) + len(p.UndefRemoved)
	}
	return n
}

// mergePredDeltas folds delta b (later) over delta a (earlier) with set
// semantics: a fact added then removed (or vice versa) cancels out. Both
// inputs describe consistent consecutive transitions, so the fold is exact.
func mergePredDeltas(a, b []ivm.PredDelta) []ivm.PredDelta {
	type predState struct {
		added, removed, uAdded, uRemoved map[string]bool
	}
	states := map[string]*predState{}
	state := func(pred string) *predState {
		st, ok := states[pred]
		if !ok {
			st = &predState{map[string]bool{}, map[string]bool{}, map[string]bool{}, map[string]bool{}}
			states[pred] = st
		}
		return st
	}
	// fold applies one signed change: an entry cancels its opposite if
	// present, otherwise records itself.
	fold := func(pos, neg map[string]bool, keys []string) {
		for _, k := range keys {
			if neg[k] {
				delete(neg, k)
			} else {
				pos[k] = true
			}
		}
	}
	for _, d := range [][]ivm.PredDelta{a, b} {
		for _, p := range d {
			st := state(p.Pred)
			fold(st.added, st.removed, p.Added)
			fold(st.removed, st.added, p.Removed)
			fold(st.uAdded, st.uRemoved, p.UndefAdded)
			fold(st.uRemoved, st.uAdded, p.UndefRemoved)
		}
	}
	names := make([]string, 0, len(states))
	for name := range states {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ivm.PredDelta, 0, len(names))
	for _, name := range names {
		st := states[name]
		p := ivm.PredDelta{
			Pred:         name,
			Added:        sortedSetKeys(st.added),
			Removed:      sortedSetKeys(st.removed),
			UndefAdded:   sortedSetKeys(st.uAdded),
			UndefRemoved: sortedSetKeys(st.uRemoved),
		}
		if len(p.Added)+len(p.Removed)+len(p.UndefAdded)+len(p.UndefRemoved) > 0 {
			out = append(out, p)
		}
	}
	return out
}

func sortedSetKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// factJSON is one fact in a mutation batch: a predicate name and ground
// argument values. Arguments map onto the value domain: integers become
// value.Int, strings value.String, booleans value.Bool, arrays value.Tuple
// (recursively). Floats and nulls are rejected — they are not in the domain.
type factJSON struct {
	Pred string `json:"pred"`
	Args []any  `json:"args"`
}

// mutateRequest is the POST /v1/dbs/{name}/facts body. Deletions apply
// before insertions, matching ivm.ApplyDB.
type mutateRequest struct {
	Insert []factJSON `json:"insert"`
	Delete []factJSON `json:"delete"`
}

// mutateResponse is its success body.
type mutateResponse struct {
	OK       bool   `json:"ok"`
	Name     string `json:"name"`
	Version  uint64 `json:"version"`
	Inserted int    `json:"inserted"`
	Deleted  int    `json:"deleted"`
}

// decodeFacts converts a JSON fact batch to datalog facts.
func decodeFacts(batch []factJSON) ([]datalog.Fact, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	out := make([]datalog.Fact, 0, len(batch))
	for i, fj := range batch {
		if fj.Pred == "" {
			return nil, fmt.Errorf("fact %d: missing \"pred\"", i)
		}
		if len(fj.Args) == 0 {
			return nil, fmt.Errorf("fact %d (%s): facts need at least one argument", i, fj.Pred)
		}
		args := make([]value.Value, len(fj.Args))
		for j, a := range fj.Args {
			v, err := valueFromJSON(a)
			if err != nil {
				return nil, fmt.Errorf("fact %d (%s) argument %d: %w", i, fj.Pred, j, err)
			}
			args[j] = v
		}
		out = append(out, datalog.Fact{Pred: fj.Pred, Args: args})
	}
	return out, nil
}

// valueFromJSON maps one JSON argument to a ground value.
func valueFromJSON(a any) (value.Value, error) {
	switch x := a.(type) {
	case json.Number:
		n, err := strconv.ParseInt(string(x), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%v is not an integer", x)
		}
		return value.Int(n), nil
	case string:
		return value.String(x), nil
	case bool:
		return value.Bool(x), nil
	case []any:
		elems := make([]value.Value, len(x))
		for i, e := range x {
			v, err := valueFromJSON(e)
			if err != nil {
				return nil, err
			}
			elems[i] = v
		}
		return value.NewTuple(elems...), nil
	default:
		return nil, fmt.Errorf("unsupported argument type %T", a)
	}
}

// handleMutateFacts serves POST /v1/dbs/{name}/facts: an incremental fact
// mutation of a registered database. Deletions apply before insertions; the
// database version is bumped once per batch and every live subscription's
// view is maintained (and its clients notified) before the response returns.
func (s *Server) handleMutateFacts(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ev := obsv.ServerStats{Route: "facts"}
	defer func() {
		ev.WallNS = time.Since(start).Nanoseconds()
		s.col.Server(ev)
	}()
	fail := func(code, msg string) {
		ev.Code = code
		writeError(w, code, msg)
	}
	if s.draining.Load() {
		fail(codeShuttingDown, "the server is draining and refuses new mutations")
		return
	}
	name := r.PathValue("name")
	entry, ok := s.reg.entry(name)
	if !ok {
		fail(codeUnknownDB, fmt.Sprintf("no database named %q is registered", name))
		return
	}
	var req mutateRequest
	if code, msg := decodeBodyNumbers(w, r, s.cfg.MaxBodyBytes, &req); code != "" {
		fail(code, msg)
		return
	}
	if len(req.Insert)+len(req.Delete) == 0 {
		fail(codeBadRequest, "empty mutation: provide \"insert\" and/or \"delete\" fact batches")
		return
	}
	ins, err := decodeFacts(req.Insert)
	if err != nil {
		fail(codeBadRequest, "insert: "+err.Error())
		return
	}
	del, err := decodeFacts(req.Delete)
	if err != nil {
		fail(codeBadRequest, "delete: "+err.Error())
		return
	}

	entry.mu.Lock()
	st := entry.cur.Load()
	version := st.version + 1
	if entry.store != nil {
		if err := entry.store.applyFacts(ins, del); err != nil {
			entry.mu.Unlock()
			fail(codeStorage, err.Error())
			return
		}
		entry.cur.Store(&dbState{version: version})
	} else {
		entry.cur.Store(&dbState{db: ivm.ApplyDB(st.db, ins, del), version: version})
	}
	for sub := range entry.subs {
		d, applyErr := sub.view.Apply(ins, del)
		if applyErr != nil {
			sub.close(reasonError)
			continue
		}
		if d.Empty() {
			continue
		}
		sub.push(version, d, s.cfg.SubMaxPending)
	}
	entry.mu.Unlock()

	writeJSON(w, http.StatusOK, mutateResponse{
		OK: true, Name: name, Version: version,
		Inserted: len(ins), Deleted: len(del),
	})
}

// subscribeRequest is the POST /v1/subscribe body: a query request (whose
// timeoutMS is ignored — subscriptions are long-lived) plus the stream
// format, "ndjson" (default) or "sse".
type subscribeRequest struct {
	queryRequest
	Format string `json:"format"`
}

// handleSubscribe serves POST /v1/subscribe: registers the query as a live
// subscription against a named database and streams its result — an initial
// "snapshot" event, then one "delta" (or "snapshot") event per observed
// database change, then a final "bye" event with the close reason. The
// response never ends until the client disconnects, the server drains, the
// database is replaced, the consumer falls too far behind, or maintenance
// fails.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ev := obsv.ServerStats{Route: "subscribe"}
	defer func() {
		ev.WallNS = time.Since(start).Nanoseconds()
		s.col.Server(ev)
	}()
	fail := func(code, msg string) {
		ev.Code = code
		writeError(w, code, msg)
	}
	if s.draining.Load() {
		fail(codeShuttingDown, "the server is draining and refuses new subscriptions")
		return
	}
	var req subscribeRequest
	if code, msg := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); code != "" {
		fail(code, msg)
		return
	}
	format := req.Format
	if format == "" {
		format = "ndjson"
	}
	if format != "ndjson" && format != "sse" {
		fail(codeBadRequest, fmt.Sprintf("unknown stream format %q (want \"ndjson\" or \"sse\")", req.Format))
		return
	}
	lang, err := query.ParseLanguage(req.Language)
	if err != nil {
		fail(codeBadRequest, err.Error())
		return
	}
	sem, err := query.ParseSemantics(req.Semantics)
	if err != nil {
		fail(codeBadRequest, err.Error())
		return
	}
	ev.Language, ev.Semantics = string(lang), string(sem)
	if req.Query == "" {
		fail(codeBadRequest, "missing \"query\" field")
		return
	}
	if req.DB == "" {
		fail(codeBadRequest, "subscriptions require a named database")
		return
	}
	entry, ok := s.reg.entry(req.DB)
	if !ok {
		fail(codeUnknownDB, fmt.Sprintf("no database named %q is registered", req.DB))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		fail(codeBadRequest, "the connection does not support streaming responses")
		return
	}

	ev.CacheLookup = true
	plan, hit, compiled, err := s.cache.get(cacheKey{lang: lang, sem: sem, src: req.Query})
	ev.CacheHit, ev.Compiled = hit, compiled
	if err != nil {
		fail(query.ErrorCode(err, true), err.Error())
		return
	}

	ctx := r.Context()
	opts := s.requestOptions(&req.queryRequest, ctx)

	// Register under the entry mutex: the initial snapshot and every later
	// delta observe the same totally-ordered mutation sequence, with no
	// window for a lost update between view construction and registration.
	entry.mu.Lock()
	db, verr := entry.planDB(plan)
	var view *ivm.View
	if verr == nil {
		view, verr = ivm.New(plan, db, opts)
	}
	var sub *subscriber
	if verr == nil {
		var out *query.Outcome
		out, verr = view.Outcome()
		if verr == nil {
			res := renderResult(out)
			sub = &subscriber{entry: entry, view: view, notify: make(chan struct{}, 1)}
			sub.pending = &subEventJSON{Event: "snapshot", Version: entry.cur.Load().version, Result: &res}
			entry.subs[sub] = true
		}
	}
	entry.mu.Unlock()
	if verr != nil {
		fail(query.ErrorCode(verr, false), verr.Error())
		return
	}

	s.activeSubs.Add(1)
	defer func() {
		entry.mu.Lock()
		delete(entry.subs, sub)
		entry.mu.Unlock()
		s.activeSubs.Add(-1)
		events, coalesced, reason := sub.stats()
		s.col.Subscription(obsv.SubscriptionStats{
			Language:  string(lang),
			Semantics: string(sem),
			Mode:      string(view.Mode()),
			Events:    int(events),
			Coalesced: int(coalesced),
			Reason:    reason,
			WallNS:    time.Since(start).Nanoseconds(),
		})
	}()

	if format == "sse" {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	// Flush the headers immediately so the client sees the stream open
	// before the first event (which test instrumentation may delay).
	flusher.Flush()
	write := func(e *subEventJSON) error {
		payload, merr := json.Marshal(e)
		if merr != nil {
			return merr
		}
		var werr error
		if format == "sse" {
			_, werr = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Event, payload)
		} else {
			_, werr = fmt.Fprintf(w, "%s\n", payload)
		}
		if werr == nil {
			flusher.Flush()
		}
		return werr
	}

	for {
		if s.testHookSubEvent != nil {
			s.testHookSubEvent()
		}
		e, reason := sub.take()
		if e != nil {
			if werr := write(e); werr != nil {
				sub.close(reasonClientGone)
				if reason == "" {
					continue
				}
			} else {
				sub.countEvent()
			}
		}
		if reason != "" {
			// Best-effort goodbye; the connection may already be gone.
			_ = write(&subEventJSON{Event: "bye", Reason: reason})
			return
		}
		select {
		case <-ctx.Done():
			sub.close(reasonClientGone)
		case <-s.drainCh:
			sub.close(reasonDrain)
		case <-sub.notify:
		}
	}
}

// decodeBodyNumbers is decodeBody with json.Number decoding, so integer fact
// arguments survive without a float64 round-trip.
func decodeBodyNumbers(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) (code, msg string) {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(body)
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return codeOversized, fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit)
		}
		return codeBadRequest, "malformed JSON body: " + err.Error()
	}
	return "", ""
}
