package server

import (
	"sort"
	"sync"

	"algrec/internal/algebra"
	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// registry is the in-memory store of named databases. Each entry carries a
// version counter and the set of live subscriptions watching it: mutations
// (POST /v1/dbs/{name}/facts) and wholesale replacements (PUT /v1/dbs/{name})
// bump the version and notify subscribers under the entry's mutex, so every
// subscription observes the same totally-ordered sequence of database states.
// Readers get the current snapshot by reference and must not mutate it
// (query.Execute never does; fact mutations build a fresh copy-on-write DB).
type registry struct {
	mu  sync.RWMutex
	dbs map[string]*dbEntry
}

// dbEntry is one named database. The entry outlives any particular database
// value: replacing the database keeps the entry (and its subscriber set)
// while swapping db and bumping version.
type dbEntry struct {
	name string

	// mu serializes mutations and subscription registration, and guards
	// every field below. Incremental view maintenance for each subscriber
	// runs under it, which makes the delta sequence each client sees a
	// deterministic function of the mutation order.
	mu      sync.Mutex
	db      algebra.DB
	version uint64
	subs    map[*subscriber]bool
}

func newRegistry() *registry {
	return &registry{dbs: map[string]*dbEntry{}}
}

// get returns the current database snapshot registered under name. The empty
// name is always present and empty: queries that carry their own data
// (algebra= rel statements, datalog facts) need no registered database.
func (r *registry) get(name string) (algebra.DB, bool) {
	if name == "" {
		return nil, true
	}
	e, ok := r.entry(name)
	if !ok {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.db, true
}

// entry returns the registry entry for name ("" has no entry: the anonymous
// empty database cannot be mutated or subscribed to).
func (r *registry) entry(name string) (*dbEntry, bool) {
	if name == "" {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.dbs[name]
	return e, ok
}

// set registers (or replaces) a database under name. The database's values
// are interned eagerly (outside any lock): the process-global interner is
// shared by every named database and every concurrent execution, so warming
// it at registration means each fact is hash-consed once per database load
// rather than on some request's critical path. Replacing an existing entry
// closes its live subscriptions with reason "db-replaced" — their incremental
// views were built against the old contents and a wholesale swap is not a
// fact delta.
func (r *registry) set(name string, db algebra.DB) {
	if value.InterningEnabled() {
		in := intern.Global()
		for _, set := range db {
			in.Intern(set)
		}
	}
	r.mu.Lock()
	e, ok := r.dbs[name]
	if !ok {
		e = &dbEntry{name: name, subs: map[*subscriber]bool{}}
		r.dbs[name] = e
	}
	r.mu.Unlock()

	e.mu.Lock()
	e.db = db
	e.version++
	for sub := range e.subs {
		sub.close(reasonReplaced)
	}
	e.mu.Unlock()
}

// dbInfo is one registry entry's listing: the name, its mutation version,
// and its relations with cardinalities.
type dbInfo struct {
	Name      string         `json:"name"`
	Version   uint64         `json:"version"`
	Relations map[string]int `json:"relations"`
}

// list returns every registered database sorted by name.
func (r *registry) list() []dbInfo {
	r.mu.RLock()
	entries := make([]*dbEntry, 0, len(r.dbs))
	for _, e := range r.dbs {
		entries = append(entries, e)
	}
	r.mu.RUnlock()

	out := make([]dbInfo, 0, len(entries))
	for _, e := range entries {
		e.mu.Lock()
		info := dbInfo{Name: e.name, Version: e.version, Relations: map[string]int{}}
		for rel, set := range e.db {
			info.Relations[rel] = set.Len()
		}
		e.mu.Unlock()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
