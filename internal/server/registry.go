package server

import (
	"sort"
	"sync"

	"algrec/internal/algebra"
	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// registry is the in-memory store of named databases. Databases are
// immutable once registered: Register replaces the whole value, readers get
// the map by reference and must not mutate it (query.Execute never does).
type registry struct {
	mu  sync.RWMutex
	dbs map[string]algebra.DB
}

func newRegistry() *registry {
	return &registry{dbs: map[string]algebra.DB{}}
}

// get returns the database registered under name. The empty name is always
// present and empty: queries that carry their own data (algebra= rel
// statements, datalog facts) need no registered database.
func (r *registry) get(name string) (algebra.DB, bool) {
	if name == "" {
		return nil, true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	db, ok := r.dbs[name]
	return db, ok
}

// set registers (or replaces) a database under name. The database's values
// are interned eagerly (outside the lock): the process-global interner is
// shared by every named database and every concurrent execution, so warming
// it at registration means each fact is hash-consed once per database load
// rather than on some request's critical path.
func (r *registry) set(name string, db algebra.DB) {
	if value.InterningEnabled() {
		in := intern.Global()
		for _, set := range db {
			in.Intern(set)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dbs[name] = db
}

// dbInfo is one registry entry's listing: the name and its relations with
// cardinalities.
type dbInfo struct {
	Name      string         `json:"name"`
	Relations map[string]int `json:"relations"`
}

// list returns every registered database sorted by name.
func (r *registry) list() []dbInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]dbInfo, 0, len(r.dbs))
	for name, db := range r.dbs {
		info := dbInfo{Name: name, Relations: map[string]int{}}
		for rel, set := range db {
			info.Relations[rel] = set.Len()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
