package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"algrec/internal/algebra"
	"algrec/internal/query"
	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// registry is the store of named databases. Each entry carries a version
// counter and the set of live subscriptions watching it: mutations
// (POST /v1/dbs/{name}/facts), wholesale replacements (PUT /v1/dbs/{name})
// and restores bump the version and notify subscribers under the entry's
// writer mutex, so every subscription observes the same totally-ordered
// sequence of database states.
//
// Reads are copy-on-write: the current (db, version) pair is an immutable
// dbState behind an atomic pointer, so queries and listings load it without
// taking any entry lock and are never blocked by a bulk load — a writer
// builds the next state aside and swaps the pointer when done. Snapshots
// (labeled database versions) are O(1) retained pointers for the same
// reason: no database value is ever mutated in place.
//
// With a disk backend configured (Config.Storage), an entry's relation data
// lives in its storage.Store instead of cur.db (which stays nil); readers
// materialize only the relations a plan needs, through the entry's
// materialization cache. storage.Store serializes writers internally and
// never blocks concurrent readers, preserving the same property.
type registry struct {
	// storage, when non-nil, backs every database with an on-disk store
	// under storage.Dir instead of keeping relations resident.
	storage *StorageConfig

	mu  sync.RWMutex
	dbs map[string]*dbEntry
}

// dbState is one immutable (database, version) pair. For disk-backed entries
// db is nil — the data lives in the entry's store — and only version is
// meaningful.
type dbState struct {
	db      algebra.DB
	version uint64
}

// dbEntry is one named database. The entry outlives any particular database
// value: replacing the database keeps the entry (and its subscriber set)
// while swapping cur and bumping the version.
type dbEntry struct {
	name string

	// cur is the current state, readable lock-free. Writers replace it
	// under mu.
	cur atomic.Pointer[dbState]

	// mu serializes writers (mutations, replacement, snapshot, restore) and
	// subscription registration, and guards subs and snaps. Incremental view
	// maintenance for each subscriber runs under it, which makes the delta
	// sequence each client sees a deterministic function of the mutation
	// order.
	mu    sync.Mutex
	subs  map[*subscriber]bool
	snaps map[string]algebra.DB
	store *entryStore // nil: memory-resident
}

func newRegistry() *registry {
	return &registry{dbs: map[string]*dbEntry{}}
}

func newDBEntry(name string) *dbEntry {
	e := &dbEntry{name: name, subs: map[*subscriber]bool{}, snaps: map[string]algebra.DB{}}
	e.cur.Store(&dbState{})
	return e
}

// entry returns the registry entry for name ("" has no entry: the anonymous
// empty database cannot be mutated or subscribed to).
func (r *registry) entry(name string) (*dbEntry, bool) {
	if name == "" {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.dbs[name]
	return e, ok
}

// dbForPlan returns the database state the plan should execute against:
// ok=false when no database of that name exists (the empty name is always
// present and empty). For memory entries this is the lock-free current
// snapshot; for disk entries, a materialization of exactly the relations the
// plan can read (all of them for datalog, which folds the whole database
// into its fact base).
func (r *registry) dbForPlan(name string, plan *query.Plan) (db algebra.DB, ok bool, err error) {
	if name == "" {
		return nil, true, nil
	}
	e, ok := r.entry(name)
	if !ok {
		return nil, false, nil
	}
	db, err = e.planDB(plan)
	return db, true, err
}

// planDB is dbForPlan for one entry; safe without the entry mutex.
func (e *dbEntry) planDB(plan *query.Plan) (algebra.DB, error) {
	if e.store == nil {
		return e.cur.Load().db, nil
	}
	names, all := plan.Relations()
	return e.store.materialize(names, all)
}

// fullDB returns the entry's complete current database (materializing every
// relation of a disk entry). Safe without the entry mutex; writers that need
// a consistent copy call it under mu.
func (e *dbEntry) fullDB() (algebra.DB, error) {
	if e.store == nil {
		return e.cur.Load().db, nil
	}
	return e.store.materialize(nil, true)
}

// set registers (or replaces) a database under name. The database's values
// are interned eagerly (outside any lock): the process-global interner is
// shared by every named database and every concurrent execution, so warming
// it at registration means each fact is hash-consed once per database load
// rather than on some request's critical path. Replacing an existing entry
// closes its live subscriptions with reason "db-replaced" — their incremental
// views were built against the old contents and a wholesale swap is not a
// fact delta. With a disk backend, the load lands in the entry's store;
// concurrent readers keep seeing the pre-replacement state until the single
// atomic batch applies.
func (r *registry) set(name string, db algebra.DB) error {
	if value.InterningEnabled() {
		in := intern.Global()
		for _, set := range db {
			in.Intern(set)
		}
	}
	r.mu.Lock()
	e, existed := r.dbs[name]
	if !existed {
		e = newDBEntry(name)
		r.dbs[name] = e
	}
	r.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if r.storage != nil {
		if e.store == nil {
			st, err := r.storage.open(name)
			if err != nil {
				if !existed {
					r.mu.Lock()
					delete(r.dbs, name)
					r.mu.Unlock()
				}
				return err
			}
			e.store = st
		}
		if err := e.store.replace(db); err != nil {
			return err
		}
		db = nil // the store holds the data; keep nothing resident
	}
	e.cur.Store(&dbState{db: db, version: e.cur.Load().version + 1})
	for sub := range e.subs {
		sub.close(reasonReplaced)
	}
	return nil
}

// snapshot labels the entry's current database contents. Memory entries
// retain the current state pointer — O(1), since no database value is ever
// mutated in place; disk entries materialize a full copy and also checkpoint
// (and compact) the underlying store. Re-using a label overwrites it.
func (r *registry) snapshot(name, label string) (version uint64, err error) {
	e, ok := r.entry(name)
	if !ok {
		return 0, errUnknownDB(name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	db, err := e.fullDB()
	if err != nil {
		return 0, err
	}
	if e.store != nil {
		if err := e.store.checkpoint(); err != nil {
			return 0, err
		}
	}
	e.snaps[label] = db
	return e.cur.Load().version, nil
}

// restore replaces the entry's database with a labeled snapshot's contents.
// The snapshot remains (restore is repeatable). Live subscriptions close
// with reason "db-restored" — a wholesale swap, like replacement.
func (r *registry) restore(name, label string) (version uint64, err error) {
	e, ok := r.entry(name)
	if !ok {
		return 0, errUnknownDB(name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	db, ok := e.snaps[label]
	if !ok {
		return 0, fmt.Errorf("%w: database %q has no snapshot labeled %q", errSnapshotNotFound, name, label)
	}
	if e.store != nil {
		if err := e.store.replace(db); err != nil {
			return 0, err
		}
		db = nil
	}
	v := e.cur.Load().version + 1
	e.cur.Store(&dbState{db: db, version: v})
	for sub := range e.subs {
		sub.close(reasonRestored)
	}
	return v, nil
}

// Sentinel errors the snapshot/restore handlers map to structured codes.
var (
	errDBNotFound       = errors.New("unknown database")
	errSnapshotNotFound = errors.New("unknown snapshot")
)

func errUnknownDB(name string) error {
	return fmt.Errorf("%w: no database named %q is registered", errDBNotFound, name)
}

// dbInfo is one registry entry's listing: the name, its mutation version,
// its relations with cardinalities, and its snapshot labels.
type dbInfo struct {
	Name      string         `json:"name"`
	Version   uint64         `json:"version"`
	Relations map[string]int `json:"relations"`
	Snapshots []string       `json:"snapshots,omitempty"`
}

// list returns every registered database sorted by name. Relation
// cardinalities come from the lock-free current state (memory) or the
// store's index (disk) — listing never blocks a bulk load either way.
func (r *registry) list() []dbInfo {
	r.mu.RLock()
	entries := make([]*dbEntry, 0, len(r.dbs))
	for _, e := range r.dbs {
		entries = append(entries, e)
	}
	r.mu.RUnlock()

	out := make([]dbInfo, 0, len(entries))
	for _, e := range entries {
		info := dbInfo{Name: e.name, Version: e.cur.Load().version, Relations: map[string]int{}}
		if e.store != nil {
			for _, ri := range e.store.relInfo() {
				info.Relations[ri.Name] = ri.Len
			}
		} else {
			for rel, set := range e.cur.Load().db {
				info.Relations[rel] = set.Len()
			}
		}
		e.mu.Lock()
		for label := range e.snaps {
			info.Snapshots = append(info.Snapshots, label)
		}
		e.mu.Unlock()
		sort.Strings(info.Snapshots)
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// closeStores closes every entry's disk store (no-op for memory entries).
func (r *registry) closeStores() error {
	r.mu.RLock()
	entries := make([]*dbEntry, 0, len(r.dbs))
	for _, e := range r.dbs {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	var first error
	for _, e := range entries {
		e.mu.Lock()
		if e.store != nil {
			if err := e.store.close(); err != nil && first == nil {
				first = err
			}
		}
		e.mu.Unlock()
	}
	return first
}
