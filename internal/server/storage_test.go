package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// chainScript builds a database script with an n-edge chain relation.
func chainScript(n int) string {
	var sb strings.Builder
	sb.WriteString("rel edge = {")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(n%03d, n%03d)", i, i+1)
	}
	sb.WriteString("};\n")
	return sb.String()
}

// putDBScript PUTs a database script to /v1/dbs/{name}.
func putDBScript(t *testing.T, ts *httptest.Server, name, script string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/dbs/"+name, strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT db: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var bad errorBody
		_ = json.NewDecoder(resp.Body).Decode(&bad)
		t.Fatalf("PUT db: status %d, error %+v", resp.StatusCode, bad)
	}
}

// postSnapshotOp posts to /v1/dbs/{name}/snapshot or /restore.
func postSnapshotOp(t *testing.T, ts *httptest.Server, name, op, label string) (int, snapshotResponse, errorBody) {
	t.Helper()
	body, _ := json.Marshal(snapshotRequest{Snapshot: label})
	resp, err := http.Post(ts.URL+"/v1/dbs/"+name+"/"+op, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", op, err)
	}
	defer resp.Body.Close()
	var okBody snapshotResponse
	var bad errorBody
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&okBody); err != nil {
			t.Fatalf("decode %s response: %v", op, err)
		}
	} else if err := dec.Decode(&bad); err != nil {
		t.Fatalf("decode %s error: %v", op, err)
	}
	return resp.StatusCode, okBody, bad
}

// newDiskServer builds a disk-backed server over dir with a tiny
// materialization budget, so databases larger than the cache still answer.
func newDiskServer(t *testing.T, dir string, budget int) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Storage: &StorageConfig{Dir: dir, MatBudgetRows: budget}})
	if _, err := s.OpenStorage(); err != nil {
		t.Fatalf("OpenStorage: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

// storageWorkloads is the query matrix both backends must answer
// identically: every language, hitting both the precise-relations and the
// whole-database materialization paths.
var storageWorkloads = []queryRequest{
	{DB: "g", Language: "algebra", Query: joinExpr},
	{DB: "g", Language: "ifp-algebra", Query: tcIFP},
	{DB: "g", Language: "algebra=", Query: tcScript},
	{DB: "g", Language: "datalog", Semantics: "stratified", Query: "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z)."},
}

// compareServers runs the workload matrix against both servers and fails on
// the first response divergence.
func compareServers(t *testing.T, mem, disk *httptest.Server, note string) {
	t.Helper()
	for _, req := range storageWorkloads {
		mStatus, mOK, mBad := postQuery(t, mem, req)
		dStatus, dOK, dBad := postQuery(t, disk, req)
		if mStatus != dStatus {
			t.Fatalf("%s: %s/%s: status mem=%d disk=%d (mem err %+v, disk err %+v)",
				note, req.Language, req.Query, mStatus, dStatus, mBad, dBad)
		}
		if !reflect.DeepEqual(mOK.Result, dOK.Result) {
			t.Fatalf("%s: %s/%s: results diverge\nmem:  %+v\ndisk: %+v",
				note, req.Language, req.Query, mOK.Result, dOK.Result)
		}
	}
}

// TestDiskServerMatchesMemory is the serving-layer differential test: the
// same database, mutations and queries through a memory server and a
// disk-backed one (whose materialization budget is far smaller than the
// database) must produce identical responses.
func TestDiskServerMatchesMemory(t *testing.T) {
	memS := New(Config{})
	memTS := httptest.NewServer(memS.Handler())
	t.Cleanup(memTS.Close)
	_, diskTS := newDiskServer(t, t.TempDir(), 10)

	script := chainScript(60)
	putDBScript(t, memTS, "g", script)
	putDBScript(t, diskTS, "g", script)
	compareServers(t, memTS, diskTS, "after load")

	// Fact mutations, including a delete of a loaded edge.
	mut := mutateRequest{
		Insert: []factJSON{jsonFact("edge", "x", "n000"), jsonFact("edge", "n060", "x")},
		Delete: []factJSON{jsonFact("edge", "n030", "n031")},
	}
	for _, ts := range []*httptest.Server{memTS, diskTS} {
		status, _, bad := postFacts(t, ts, "g", mut)
		if status != http.StatusOK {
			t.Fatalf("mutate: status %d, error %+v", status, bad)
		}
	}
	compareServers(t, memTS, diskTS, "after mutation")

	// Heterogeneous shapes: a relation of pairs demoted by a scalar insert
	// (the storage RearityBatch path), then queried through both backends.
	het := mutateRequest{Insert: []factJSON{
		jsonFact("p", "a", "b"),
		jsonFact("p", "c", "d"),
	}}
	het2 := mutateRequest{
		Insert: []factJSON{jsonFact("p", "solo"), jsonFact("p", []any{"t", "u", "v"})},
		Delete: []factJSON{jsonFact("p", "c", "d")},
	}
	for _, ts := range []*httptest.Server{memTS, diskTS} {
		for _, m := range []mutateRequest{het, het2} {
			status, _, bad := postFacts(t, ts, "g", m)
			if status != http.StatusOK {
				t.Fatalf("heterogeneous mutate: status %d, error %+v", status, bad)
			}
		}
	}
	mReq := queryRequest{DB: "g", Language: "algebra", Query: "p"}
	_, mOK, _ := postQuery(t, memTS, mReq)
	_, dOK, _ := postQuery(t, diskTS, mReq)
	if mOK.Result.Value == "" || mOK.Result.Value != dOK.Result.Value {
		t.Fatalf("heterogeneous relation diverges: mem %q, disk %q", mOK.Result.Value, dOK.Result.Value)
	}
}

// TestDiskServerRecovery restarts a disk-backed server over the same
// directory and checks the databases (including mutations applied after the
// initial load) come back.
func TestDiskServerRecovery(t *testing.T) {
	dir := t.TempDir()

	s1 := New(Config{Storage: &StorageConfig{Dir: dir}})
	if _, err := s1.OpenStorage(); err != nil {
		t.Fatalf("OpenStorage: %v", err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	putDBScript(t, ts1, "g", chainScript(20))
	putDBScript(t, ts1, "other db!", `rel r = {1, 2, 3};`) // unsafe name: hex dir
	status, _, bad := postFacts(t, ts1, "g", mutateRequest{Insert: []factJSON{jsonFact("edge", "n020", "n021")}})
	if status != http.StatusOK {
		t.Fatalf("mutate: status %d, error %+v", status, bad)
	}
	_, want, _ := postQuery(t, ts1, queryRequest{DB: "g", Language: "ifp-algebra", Query: tcIFP})
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := New(Config{Storage: &StorageConfig{Dir: dir}})
	names, err := s2.OpenStorage()
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !reflect.DeepEqual(names, []string{"g", "other db!"}) {
		t.Fatalf("recovered %v, want [g, other db!]", names)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		if err := s2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	_, got, _ := postQuery(t, ts2, queryRequest{DB: "g", Language: "ifp-algebra", Query: tcIFP})
	if got.Result.Value == "" || got.Result.Value != want.Result.Value {
		t.Fatalf("recovered closure %q, want %q", got.Result.Value, want.Result.Value)
	}
	_, r, _ := postQuery(t, ts2, queryRequest{DB: "other db!", Language: "algebra", Query: "r"})
	if r.Result.Value != "{1, 2, 3}" {
		t.Fatalf("recovered r = %q", r.Result.Value)
	}
}

// TestSnapshotRestore drives the snapshot/restore endpoints on both
// backends: restore returns the database to the labeled contents, bumps the
// version, and closes live subscriptions with reason db-restored.
func TestSnapshotRestore(t *testing.T) {
	for _, mode := range []string{"memory", "disk"} {
		t.Run(mode, func(t *testing.T) {
			var s *Server
			var ts *httptest.Server
			if mode == "disk" {
				s, ts = newDiskServer(t, t.TempDir(), 0)
				putDBScript(t, ts, "g", `rel edge = {(a, b), (b, c), (c, d)};`)
			} else {
				s, ts = newTestServer(t, Config{})
			}

			queryTC := func() string {
				t.Helper()
				status, ok, bad := postQuery(t, ts, queryRequest{DB: "g", Language: "ifp-algebra", Query: tcIFP})
				if status != http.StatusOK {
					t.Fatalf("query: status %d, error %+v", status, bad)
				}
				return ok.Result.Value
			}
			before := queryTC()

			status, snap, bad := postSnapshotOp(t, ts, "g", "snapshot", "before")
			if status != http.StatusOK {
				t.Fatalf("snapshot: status %d, error %+v", status, bad)
			}

			// A live subscription survives the snapshot but not the restore.
			st := openSub(t, ts, dlogSub("g", tcProgram))
			if e := st.next(t); e.Event != "snapshot" {
				t.Fatalf("first event = %q, want snapshot", e.Event)
			}

			postFacts(t, ts, "g", mutateRequest{Insert: []factJSON{jsonFact("edge", "d", "e")}})
			if after := queryTC(); after == before {
				t.Fatal("mutation did not change the closure")
			}
			if e := st.next(t); e.Event != "delta" {
				t.Fatalf("event after mutation = %q, want delta", e.Event)
			}

			status, rest, bad := postSnapshotOp(t, ts, "g", "restore", "before")
			if status != http.StatusOK {
				t.Fatalf("restore: status %d, error %+v", status, bad)
			}
			if rest.Version <= snap.Version {
				t.Fatalf("restore version %d did not advance past %d", rest.Version, snap.Version)
			}
			if got := queryTC(); got != before {
				t.Fatalf("restored closure %q, want %q", got, before)
			}
			if e := st.next(t); e.Event != "bye" || e.Reason != reasonRestored {
				t.Fatalf("restore event = %+v, want bye/db-restored", e)
			}

			// Restore is repeatable; the listing shows the label.
			if status, _, _ := postSnapshotOp(t, ts, "g", "restore", "before"); status != http.StatusOK {
				t.Fatalf("second restore: status %d", status)
			}
			infos := s.reg.list()
			if len(infos) != 1 || !reflect.DeepEqual(infos[0].Snapshots, []string{"before"}) {
				t.Fatalf("list = %+v", infos)
			}

			// Structured errors.
			if status, _, bad := postSnapshotOp(t, ts, "g", "restore", "nope"); status != http.StatusNotFound || bad.Error.Code != codeUnknownSnap {
				t.Fatalf("unknown label: %d %+v", status, bad)
			}
			if status, _, bad := postSnapshotOp(t, ts, "nope", "snapshot", "x"); status != http.StatusNotFound || bad.Error.Code != codeUnknownDB {
				t.Fatalf("unknown db: %d %+v", status, bad)
			}
			if status, _, bad := postSnapshotOp(t, ts, "g", "snapshot", ""); status != http.StatusBadRequest || bad.Error.Code != codeBadRequest {
				t.Fatalf("missing label: %d %+v", status, bad)
			}
		})
	}
}
