package server

import (
	"net/http"
	"sync"
	"testing"
	"time"
)

// divergentIFP grows a set of integers forever: the fixpoint never closes,
// so only a budget, a timeout, or an interrupt can stop it.
const divergentIFP = `ifp(s, union({0}, map(s, \x -> x + 1)))`

// TestTimeoutReturnsStructuredOutcome runs a deliberately divergent IFP
// query under a short request deadline: the server must return the
// structured timeout error, and must do so within a bounded wall-clock
// (cancellation is polled every fixpoint round, so the reaction time is one
// round, not the query's lifetime).
func TestTimeoutReturnsStructuredOutcome(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	start := time.Now()
	status, _, bad := postQuery(t, ts, queryRequest{
		Language: "ifp-algebra", Query: divergentIFP, TimeoutMS: 150,
	})
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout || bad.Error.Code != codeTimeout {
		t.Fatalf("got %d %+v, want 504 timeout", status, bad)
	}
	// Generous bound: the deadline is 150ms and a fixpoint round on this
	// workload is far under a second even on a loaded CI machine.
	if elapsed > 10*time.Second {
		t.Fatalf("timeout took %s, the interrupt is not being polled", elapsed)
	}
}

// TestDefaultTimeoutApplies runs the same divergent query with no request
// timeout against a server whose default timeout is short.
func TestDefaultTimeoutApplies(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultTimeout: 150 * time.Millisecond})
	status, _, bad := postQuery(t, ts, queryRequest{Language: "ifp-algebra", Query: divergentIFP})
	if status != http.StatusGatewayTimeout || bad.Error.Code != codeTimeout {
		t.Fatalf("got %d %+v, want 504 timeout", status, bad)
	}
}

// TestGracefulShutdownDrains proves the drain contract deterministically:
// a request already past the drain check runs to completion while requests
// arriving after BeginDrain are refused with the shutting-down error, and
// /healthz flips to draining.
func TestGracefulShutdownDrains(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	s.testHookEval = func() {
		hookOnce.Do(func() {
			close(inFlight)
			<-release
		})
	}

	type result struct {
		status int
		resp   queryResponse
		bad    errorBody
	}
	done := make(chan result, 1)
	go func() {
		st, ok, bad := postQuery(t, ts, queryRequest{DB: "g", Language: "ifp-algebra", Query: tcIFP})
		done <- result{st, ok, bad}
	}()

	<-inFlight // the request is past the drain check, blocked before eval
	s.BeginDrain()

	// New queries are refused with the structured shutting-down error.
	status, _, bad := postQuery(t, ts, queryRequest{DB: "g", Language: "algebra", Query: "edge"})
	if status != http.StatusServiceUnavailable || bad.Error.Code != codeShuttingDown {
		t.Fatalf("query during drain: got %d %+v, want 503 shutting-down", status, bad)
	}
	// Health flips to draining so load balancers stop routing here.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", resp.StatusCode)
	}

	// The in-flight request completes normally once released.
	close(release)
	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request failed during drain: %d %+v", r.status, r.bad)
	}
	if r.resp.Result.Value != tcClosure {
		t.Fatalf("in-flight request returned %q", r.resp.Result.Value)
	}
}

// TestBudgetExceededIsStructured pins that exhausting a per-request budget
// (rather than the deadline) yields budget-exceeded, not timeout.
func TestBudgetExceededIsStructured(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, bad := postQuery(t, ts, queryRequest{
		Language: "ifp-algebra", Query: divergentIFP,
		Budget: &budgetJSON{MaxIFPIters: 50},
	})
	if status != http.StatusUnprocessableEntity || bad.Error.Code != codeBudgetExceed {
		t.Fatalf("got %d %+v, want 422 budget-exceeded", status, bad)
	}
}
