package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"algrec/internal/query"
)

// cacheKey identifies one compiled plan: the exact query text under one
// (language, semantics) pair. Two requests share a plan only when all three
// match byte-for-byte.
type cacheKey struct {
	lang query.Language
	sem  query.Semantics
	src  string
}

// flight is one in-progress compilation. The leader closes done after
// storing plan/err; followers block on done and share the result.
type flight struct {
	done chan struct{}
	plan *query.Plan
	err  error
}

// planCache is an LRU cache of compiled plans with singleflight
// deduplication: concurrent requests for the same key block on one
// compilation instead of compiling redundantly. Plans are immutable
// (query.Plan contract), so a cached plan is shared without copying.
type planCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[cacheKey]*list.Element
	flights map[cacheKey]*flight

	// waiters counts callers currently blocked on another request's
	// flight; testHookCompile, when set, runs in the singleflight leader
	// right before compilation. Test instrumentation for the deterministic
	// singleflight test: the test blocks the leader in the hook until
	// waiters reports every concurrent request joined the flight.
	waiters         atomic.Int32
	testHookCompile func()
}

// cacheEntry is the LRU list payload.
type cacheEntry struct {
	key  cacheKey
	plan *query.Plan
}

// newPlanCache returns a cache holding at most cap plans; cap < 1 disables
// caching (every request compiles, singleflight still deduplicates
// concurrent identical requests).
func newPlanCache(cap int) *planCache {
	return &planCache{
		cap:     cap,
		order:   list.New(),
		entries: map[cacheKey]*list.Element{},
		flights: map[cacheKey]*flight{},
	}
}

// get returns the compiled plan for k, compiling it at most once across
// concurrent callers. hit reports that the plan came from the cache or from
// another request's in-flight compilation; compiled reports that this call
// was the singleflight leader and performed the compilation. Compile errors
// are returned to every waiter of the flight but never cached: a later
// request with the same bad query recompiles (and fails) afresh.
func (c *planCache) get(k cacheKey) (plan *query.Plan, hit, compiled bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.order.MoveToFront(el)
		p := el.Value.(*cacheEntry).plan
		c.mu.Unlock()
		return p, true, false, nil
	}
	if f, ok := c.flights[k]; ok {
		c.mu.Unlock()
		c.waiters.Add(1)
		<-f.done
		c.waiters.Add(-1)
		return f.plan, true, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.mu.Unlock()

	if c.testHookCompile != nil {
		c.testHookCompile()
	}
	f.plan, f.err = query.Compile(k.lang, k.sem, k.src)

	c.mu.Lock()
	delete(c.flights, k)
	if f.err == nil && c.cap > 0 {
		c.entries[k] = c.order.PushFront(&cacheEntry{key: k, plan: f.plan})
		for c.order.Len() > c.cap {
			el := c.order.Back()
			c.order.Remove(el)
			delete(c.entries, el.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	close(f.done)
	return f.plan, false, true, f.err
}

// len reports the number of cached plans (not counting in-flight
// compilations).
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
