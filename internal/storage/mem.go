package storage

import (
	"sort"
	"sync"

	"algrec/internal/value/intern"
)

// Mem is the in-memory backend: the repository's flat-ID-row engine
// (intern.Relation, extended with tombstone deletion) behind the Store
// interface. It is the zero-cost default — the same representation the
// grounder and the fixpoint engines already use — and the reference
// implementation the disk backend's conformance is checked against.
type Mem struct {
	in   *intern.Interner
	mu   sync.RWMutex
	rels map[string]*memRel
}

// NewMem returns an empty memory store. A nil interner means the process
// global one (the interner only matters for Lookup's ID vocabulary — rows
// are stored as the caller's IDs either way).
func NewMem(in *intern.Interner) *Mem {
	if in == nil {
		in = intern.Global()
	}
	return &Mem{in: in, rels: map[string]*memRel{}}
}

// memRel is one memory-backed relation. The struct survives Reset (only the
// inner intern.Relation is replaced), so a Relation handle obtained from Rel
// observes later mutations, as the interface requires.
type memRel struct {
	st *Mem
	r  *intern.Relation

	// version counts mutations; the lazy column index is rebuilt when its
	// build version falls behind.
	version uint64

	idxMu      sync.Mutex
	idxVersion uint64
	colIdx     map[int]map[intern.ID][]int32
}

// Rel implements Store.
func (m *Mem) Rel(name string) (Relation, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r, ok := m.rels[name]
	return r, ok, nil
}

// Rels implements Store.
func (m *Mem) Rels() ([]RelInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]RelInfo, 0, len(m.rels))
	for name, r := range m.rels {
		out = append(out, RelInfo{Name: name, Arity: r.r.Arity(), Len: r.r.LiveLen()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Apply implements Store. The batch is validated in full — including arity
// agreement with existing relations — before the first row is touched, so a
// failed Apply leaves the store unchanged.
func (m *Mem) Apply(b Batch) error {
	if err := b.validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	arities := map[string]int{}
	for name, r := range m.rels {
		arities[name] = r.r.Arity()
	}
	for _, mu := range b {
		if mu.Drop {
			delete(arities, mu.Rel)
			continue
		}
		if a, ok := arities[mu.Rel]; ok && !mu.Reset && a != mu.Arity {
			return errArity(mu.Rel, a, mu.Arity)
		}
		arities[mu.Rel] = mu.Arity
	}
	for _, mu := range b {
		if mu.Drop {
			delete(m.rels, mu.Rel)
			continue
		}
		r, ok := m.rels[mu.Rel]
		if !ok {
			r = &memRel{st: m, r: intern.NewRelation(mu.Arity)}
			m.rels[mu.Rel] = r
		} else if mu.Reset {
			r.r = intern.NewRelation(mu.Arity)
		}
		for _, row := range mu.Delete {
			r.r.Delete(row)
		}
		for _, row := range mu.Insert {
			r.r.Insert(row)
		}
		r.version++
	}
	return nil
}

// Snapshot implements Store: the memory backend is exactly as durable after
// a snapshot as before, so this is a no-op.
func (m *Mem) Snapshot() error { return nil }

// Close implements Store.
func (m *Mem) Close() error { return nil }

// Arity implements Relation.
func (r *memRel) Arity() int {
	r.st.mu.RLock()
	defer r.st.mu.RUnlock()
	return r.r.Arity()
}

// Len implements Relation.
func (r *memRel) Len() int {
	r.st.mu.RLock()
	defer r.st.mu.RUnlock()
	return r.r.LiveLen()
}

// Has implements Relation.
func (r *memRel) Has(row []intern.ID) (bool, error) {
	r.st.mu.RLock()
	defer r.st.mu.RUnlock()
	if len(row) != r.r.Arity() {
		return false, errArity("", r.r.Arity(), len(row))
	}
	return r.r.Has(row), nil
}

// Scan implements Relation.
func (r *memRel) Scan(yield func(row []intern.ID) bool) error {
	r.st.mu.RLock()
	defer r.st.mu.RUnlock()
	r.r.Scan(func(_ int, row []intern.ID) bool { return yield(row) })
	return nil
}

// ScanShard implements Relation.
func (r *memRel) ScanShard(shard, shards int, yield func(row []intern.ID) bool) error {
	r.st.mu.RLock()
	defer r.st.mu.RUnlock()
	r.r.Scan(func(_ int, row []intern.ID) bool {
		if RowShard(row, shards) != shard {
			return true
		}
		return yield(row)
	})
	return nil
}

// Lookup implements Relation. The per-column postings index is built lazily
// on first use and rebuilt after mutations; between mutations concurrent
// lookups share it.
func (r *memRel) Lookup(col int, id intern.ID, yield func(row []intern.ID) bool) error {
	r.st.mu.RLock()
	defer r.st.mu.RUnlock()
	if col < 0 || col >= r.r.Arity() {
		return errColumn(col, r.r.Arity())
	}
	idx := r.postings(col)
	for _, ri := range idx[id] {
		if !yield(r.r.Row(int(ri))) {
			return nil
		}
	}
	return nil
}

// postings returns the column's id -> row-index postings, rebuilding the
// lazy index if a mutation has invalidated it. Called with the store read
// lock held, so the relation cannot change underneath the build.
func (r *memRel) postings(col int) map[intern.ID][]int32 {
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	if r.idxVersion != r.version {
		r.colIdx = map[int]map[intern.ID][]int32{}
		r.idxVersion = r.version
	}
	idx, ok := r.colIdx[col]
	if !ok {
		idx = map[intern.ID][]int32{}
		r.r.Scan(func(i int, row []intern.ID) bool {
			idx[row[col]] = append(idx[row[col]], int32(i))
			return true
		})
		r.colIdx[col] = idx
	}
	return idx
}
