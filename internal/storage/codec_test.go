package storage

import (
	"bufio"
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"algrec/internal/randgen"
	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// TestValueCodecRoundTrip drives randomly generated nested values through
// the dictionary codec and a store reopen: since both opens share the
// process-global interner, a perfect round-trip means identical intern IDs.
func TestValueCodecRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randgen.New(seed, randgen.Config{})
		in := intern.Global()
		var rows [][]intern.ID
		for i := 0; i < 40; i++ {
			rows = append(rows, []intern.ID{in.Intern(g.Value(3))})
		}
		dir := t.TempDir()
		st, err := OpenDisk(dir, DiskOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Apply(Batch{{Rel: "v", Arity: 1, Insert: rows}}); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st2, err := OpenDisk(dir, DiskOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var got [][]intern.ID
		r, _, _ := st2.Rel("v")
		if err := r.Scan(func(row []intern.ID) bool {
			got = append(got, []intern.ID{row[0]})
			return true
		}); err != nil {
			t.Fatal(err)
		}
		st2.Close()
		// The insert deduplicates rows; compare against the deduped sequence.
		want := rows[:0:0]
		seen := map[intern.ID]bool{}
		for _, row := range rows {
			if !seen[row[0]] {
				seen[row[0]] = true
				want = append(want, row)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: value round-trip changed IDs\ngot:  %v\nwant: %v", seed, got, want)
		}
	}
}

// TestValueRecordScalars pins the scalar encodings byte-for-byte at the
// codec level, including negative ints and the empty string.
func TestValueRecordScalars(t *testing.T) {
	for _, v := range []value.Value{
		value.True, value.False,
		value.Int(0), value.Int(-1), value.Int(1 << 40), value.Int(-(1 << 40)),
		value.String(""), value.String("héllo\x00world"),
	} {
		payload, err := appendValueRecord(nil, v, nil, 0)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		dv, err := decodeValueRecord(payload)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if dv.scalar == nil || !value.Equal(dv.scalar, v) {
			t.Fatalf("round-trip %v -> %v", v, dv.scalar)
		}
	}
}

// TestBatchRecordRoundTrip checks the batch codec over random mutation
// shapes — arity 0 through a 64-column worst case, empty insert/delete
// lists, reset flags — and that the reported insert offsets really address
// the encoded rows.
func TestBatchRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(4)
		ms := make([]encodedMutation, n)
		for i := range ms {
			arity := []int{0, 1, 2, 3, 64}[rng.Intn(5)]
			m := encodedMutation{
				Rel:   []string{"a", "bb", "relation-with-a-long-name", ""}[rng.Intn(3)],
				Arity: arity,
				Reset: rng.Intn(2) == 0,
			}
			mkRows := func(k int) [][]uint32 {
				if k == 0 {
					return nil
				}
				rows := make([][]uint32, k)
				for j := range rows {
					row := make([]uint32, arity)
					for c := range row {
						row[c] = rng.Uint32()
					}
					rows[j] = row
				}
				return rows
			}
			m.Delete = mkRows(rng.Intn(3))
			m.Insert = mkRows(rng.Intn(4))
			ms[i] = m
		}
		insertOff := make([]int, len(ms))
		payload := appendBatchRecord(nil, ms, insertOff)
		got, gotOff, err := decodeBatchRecord(payload)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if len(got) != len(ms) {
			t.Fatalf("iter %d: %d mutations, want %d", iter, len(got), len(ms))
		}
		for i := range ms {
			if got[i].Rel != ms[i].Rel || got[i].Arity != ms[i].Arity || got[i].Reset != ms[i].Reset {
				t.Fatalf("iter %d mutation %d: %+v vs %+v", iter, i, got[i], ms[i])
			}
			if !rowsEq(got[i].Delete, ms[i].Delete) || !rowsEq(got[i].Insert, ms[i].Insert) {
				t.Fatalf("iter %d mutation %d: rows differ", iter, i)
			}
			if gotOff[i] != insertOff[i] {
				t.Fatalf("iter %d mutation %d: insert offset %d vs %d", iter, i, gotOff[i], insertOff[i])
			}
			// The offsets address the raw fixed-width rows.
			off := insertOff[i]
			for _, row := range ms[i].Insert {
				for _, vid := range row {
					if w := uint32(payload[off]) | uint32(payload[off+1])<<8 | uint32(payload[off+2])<<16 | uint32(payload[off+3])<<24; w != vid {
						t.Fatalf("iter %d: offset row read %d, want %d", iter, w, vid)
					}
					off += 4
				}
			}
		}
	}
}

func rowsEq(a, b [][]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestFrameDetectsDamage checks that a frame sequence reads back exactly and
// that any single-byte damage in a frame surfaces as a read error rather
// than wrong payload bytes (the kind byte, outside the CRC, may legally
// decode as a different kind — but never with altered payload).
func TestFrameDetectsDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var buf []byte
	var payloads [][]byte
	for i := 0; i < 5; i++ {
		p := make([]byte, rng.Intn(40))
		rng.Read(p)
		payloads = append(payloads, p)
		buf = appendFrame(buf, recBatch, p)
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	for i, want := range payloads {
		kind, got, err := readFrame(br)
		if err != nil || kind != recBatch || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: kind=%d err=%v", i, kind, err)
		}
	}
	if _, _, err := readFrame(br); err == nil {
		t.Fatal("read past final frame")
	}

	for off := 1; off < len(buf); off++ { // byte 0 is a kind byte: see above
		damaged := append([]byte(nil), buf...)
		damaged[off] ^= 0x10
		br := bufio.NewReader(bytes.NewReader(damaged))
		for i := 0; ; i++ {
			kind, got, err := readFrame(br)
			if err != nil {
				break
			}
			if kind == recBatch && !bytes.Equal(got, payloads[i]) {
				t.Fatalf("flip at %d: frame %d decoded with wrong payload", off, i)
			}
		}
	}
}
