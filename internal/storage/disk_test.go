package storage_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"algrec/internal/storage"
	"algrec/internal/storage/storagetest"
	"algrec/internal/value"
	"algrec/internal/value/intern"
)

func diskFactory(sync bool) storagetest.Factory {
	return func(t *testing.T) (storage.Store, func() storage.Store) {
		dir := t.TempDir()
		opt := storage.DiskOptions{Sync: sync}
		st, err := storage.OpenDisk(dir, opt)
		if err != nil {
			t.Fatalf("OpenDisk: %v", err)
		}
		cur := storage.Store(st)
		t.Cleanup(func() { cur.Close() })
		reopen := func() storage.Store {
			if err := cur.Close(); err != nil {
				t.Fatalf("Close before reopen: %v", err)
			}
			st2, err := storage.OpenDisk(dir, opt)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			cur = st2
			return st2
		}
		return st, reopen
	}
}

func TestDiskConformance(t *testing.T) {
	storagetest.Run(t, diskFactory(false))
}

func TestDiskConformanceSync(t *testing.T) {
	storagetest.Run(t, diskFactory(true))
}

// TestDiskSnapshotCompacts checks that Snapshot rewrites the store as a
// fresh generation — old segments deleted, state preserved, log replay
// empty — and that the store keeps answering afterwards.
func TestDiskSnapshotCompacts(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.OpenDisk(dir, storage.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	in := intern.Global()
	mkRow := func(a, b int64) []intern.ID { return []intern.ID{in.InternInt(a), in.InternInt(b)} }
	var rows [][]intern.ID
	for i := int64(0); i < 500; i++ {
		rows = append(rows, mkRow(i, i+1))
	}
	if err := st.Apply(storage.Batch{{Rel: "e", Arity: 2, Insert: rows}}); err != nil {
		t.Fatal(err)
	}
	// Churn: delete the odd rows so the log carries dead weight.
	var dels [][]intern.ID
	for i := int64(1); i < 500; i += 2 {
		dels = append(dels, mkRow(i, i+1))
	}
	if err := st.Apply(storage.Batch{{Rel: "e", Arity: 2, Delete: dels}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	ents, _ := os.ReadDir(dir)
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "snap-2.seg") || !strings.Contains(joined, "log-2.seg") {
		t.Fatalf("generation 2 files missing: %v", names)
	}
	if strings.Contains(joined, "log-1.seg") || strings.Contains(joined, "snap-1.seg") {
		t.Fatalf("old generation not cleaned up: %v", names)
	}
	// The new log holds only its header: the snapshot carries all state.
	if fi, err := os.Stat(filepath.Join(dir, "log-2.seg")); err != nil || fi.Size() != 8 {
		t.Fatalf("post-snapshot log size = %v, %v", fi, err)
	}

	check := func(s storage.Store) {
		r, ok, err := s.Rel("e")
		if err != nil || !ok {
			t.Fatalf("Rel: %v %v", ok, err)
		}
		if r.Len() != 250 {
			t.Fatalf("Len = %d, want 250", r.Len())
		}
		i := int64(0)
		if err := r.Scan(func(row []intern.ID) bool {
			if row[0] != in.InternInt(i) || row[1] != in.InternInt(i+1) {
				t.Fatalf("row %d = %v", i, row)
			}
			i += 2
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	check(st)

	// Mutations keep working after compaction, and everything survives a
	// reopen of the compacted store.
	if err := st.Apply(storage.Batch{{Rel: "f", Arity: 1, Insert: [][]intern.ID{{in.InternInt(1)}}}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := storage.OpenDisk(dir, storage.DiskOptions{})
	if err != nil {
		t.Fatalf("reopen after snapshot: %v", err)
	}
	defer st2.Close()
	check(st2)
	if r, ok, _ := st2.Rel("f"); !ok || r.Len() != 1 {
		t.Fatal("post-snapshot mutation lost across reopen")
	}
}

// TestDiskPersistsComplexValues round-trips nested values (strings, tuples,
// sets-of-tuples) through the dictionary codec and a reopen: intern IDs are
// process-local, so this exercises the re-interning path end to end.
func TestDiskPersistsComplexValues(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.OpenDisk(dir, storage.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in := intern.Global()
	vals := []value.Value{
		value.String("hello"),
		value.True,
		value.Int(-42),
		value.NewTuple(value.Int(1), value.String("x")),
		value.NewSet(value.Int(1), value.NewTuple(value.Int(2), value.Int(3))),
		value.NewSet(),
	}
	rows := make([][]intern.ID, len(vals))
	for i, v := range vals {
		rows[i] = []intern.ID{in.Intern(v)}
	}
	if err := st.Apply(storage.Batch{{Rel: "v", Arity: 1, Insert: rows}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := storage.OpenDisk(dir, storage.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r, ok, err := st2.Rel("v")
	if err != nil || !ok {
		t.Fatalf("Rel: %v %v", ok, err)
	}
	i := 0
	if err := r.Scan(func(row []intern.ID) bool {
		if got := in.Lookup(row[0]); !value.Equal(got, vals[i]) {
			t.Fatalf("value %d = %v, want %v", i, got, vals[i])
		}
		i++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(vals) {
		t.Fatalf("scanned %d values, want %d", i, len(vals))
	}
}

// TestDiskAutoCompaction drives enough churn through a store to trip the
// background compaction trigger and checks the store stays correct and the
// generation advanced.
func TestDiskAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.OpenDisk(dir, storage.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	in := intern.Global()
	one := func(i int64) [][]intern.ID { return [][]intern.ID{{in.InternInt(i % 64), in.InternInt(i % 7)}} }
	// Insert/delete the same small key space far past compactMinDead (4096)
	// dead rows, with only ~64 live rows at any time.
	for i := int64(0); i < 6000; i++ {
		if err := st.Apply(storage.Batch{{Rel: "e", Arity: 2, Insert: one(i)}}); err != nil {
			t.Fatal(err)
		}
		if err := st.Apply(storage.Batch{{Rel: "e", Arity: 2, Delete: one(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Apply(storage.Batch{{Rel: "e", Arity: 2, Insert: one(0)}}); err != nil {
		t.Fatal(err)
	}
	// The compactor runs in the background and only wins the store lock once
	// the churn stops; poll CURRENT until the generation flips.
	gen := func() string {
		cur, err := os.ReadFile(filepath.Join(dir, "CURRENT"))
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(string(cur))
	}
	for deadline := time.Now().Add(10 * time.Second); gen() == "1"; {
		if time.Now().After(deadline) {
			t.Fatal("background compaction never ran")
		}
		time.Sleep(time.Millisecond)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := storage.OpenDisk(dir, storage.DiskOptions{})
	if err != nil {
		t.Fatalf("reopen after auto-compaction: %v", err)
	}
	defer st2.Close()
	r, ok, _ := st2.Rel("e")
	if !ok || r.Len() != 1 {
		t.Fatalf("after churn: ok=%v len=%d, want 1", ok, r.Len())
	}
}
