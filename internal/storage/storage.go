// Package storage is the pluggable relation-storage layer behind the query
// service's named databases: a backend-agnostic interface — ordered scans,
// indexed lookups, atomic insert/delete batches, cardinality — over
// relations of interned ID tuples, with two stdlib-only backends:
//
//   - Memory (NewMem): the in-memory engine the repository has always used,
//     intern.Relation flat ID rows behind the interface, extended with
//     tombstone deletion;
//   - Disk (OpenDisk): an append-only log of ID-tuple segments with an
//     in-memory open-addressed offset index, generation snapshots, and
//     compaction, so a database can exceed RAM — only the index and the
//     value dictionary stay resident, rows live on disk.
//
// Both backends satisfy one observable contract, pinned by the conformance
// suite in storage/storagetest and by the dlog-storage differential oracle:
//
//   - Scan enumerates each live row exactly once, in insertion order of the
//     surviving rows; a row re-inserted after deletion re-enters the order
//     at its latest insertion position.
//   - Apply is atomic: a batch either applies in full or (on validation
//     error, torn write, or crash) not at all; within a batch, each
//     mutation's deletes precede its inserts.
//   - Lookup(col, id) agrees with filtering a full Scan on column col.
//   - ScanShard(s, n) partitions Scan by the row-hash: the union of the n
//     shard scans is exactly the full scan, and shards are disjoint.
//
// The disk backend's recovery contract is the classic log-structured one:
// reopening a store after a crash yields exactly the state of the last
// durable snapshot plus the replay of the longest well-formed log prefix;
// torn or corrupt tail records are discarded. The crash tests in this
// package fault-inject truncated and bit-flipped tails and compare the
// recovered store bit-for-bit against a memory-backend replay of the
// durable prefix.
package storage

import (
	"errors"
	"fmt"

	"algrec/internal/value/intern"
)

// Relation is read access to one stored relation: a set of fixed-arity rows
// of interned value IDs. Implementations are safe for concurrent readers;
// writes go through Store.Apply. The row slices passed to yield callbacks
// are only valid for the duration of the call.
type Relation interface {
	// Arity returns the number of columns. Arity 0 models propositional
	// relations: empty, or holding the single empty row.
	Arity() int
	// Len returns the number of live rows.
	Len() int
	// Has reports whether row is present.
	Has(row []intern.ID) (bool, error)
	// Scan calls yield for every live row in insertion order (of surviving
	// rows), stopping early when yield returns false. yield must not call
	// back into the store.
	Scan(yield func(row []intern.ID) bool) error
	// ScanShard is Scan restricted to the rows of one hash shard: the rows r
	// with RowShard(r, shards) == shard, still in insertion order. Distinct
	// shards may be scanned concurrently.
	ScanShard(shard, shards int, yield func(row []intern.ID) bool) error
	// Lookup calls yield for every live row whose column col equals id, in
	// insertion order — the indexed point lookup of the leaf scans.
	Lookup(col int, id intern.ID, yield func(row []intern.ID) bool) error
}

// RelInfo describes one relation of a store.
type RelInfo struct {
	Name  string
	Arity int
	// Len is the live row count.
	Len int
}

// Mutation is one relation's change within a batch: deletes apply before
// inserts; Reset first drops the relation (allowing an arity change) and
// then applies the inserts — the bulk-load primitive. Drop removes the
// relation entirely (it disappears from Rels and Rel returns ok=false);
// a Drop mutation carries no rows and ignores Arity, and dropping an
// absent relation is a no-op. Relation handles obtained before a Drop
// must not be used afterwards.
type Mutation struct {
	Rel   string
	Arity int
	Reset bool
	Drop  bool
	// Delete and Insert rows must have exactly Arity IDs each. Deleting an
	// absent row and inserting a present one are no-ops.
	Delete [][]intern.ID
	Insert [][]intern.ID
}

// Batch is an atomically applied sequence of mutations.
type Batch []Mutation

// Store is one database's relation storage. Apply, Snapshot and Close are
// serialized by the implementation; readers (Rel's methods, Rels) may run
// concurrently with each other and are excluded only for the duration of a
// mutation, never blocked by one another.
type Store interface {
	// Rel returns the named relation, or ok=false if it does not exist.
	// The returned Relation stays valid across mutations (it observes them).
	Rel(name string) (r Relation, ok bool, err error)
	// Rels lists the store's relations sorted by name.
	Rels() ([]RelInfo, error)
	// Apply applies the batch atomically. On error the store is unchanged.
	Apply(b Batch) error
	// Snapshot durably checkpoints the store and compacts its log (a no-op
	// for the memory backend, which is exactly as durable after as before).
	Snapshot() error
	// Close releases the store's resources. The memory backend's Close is a
	// no-op; the disk backend flushes and closes its segments.
	Close() error
}

// ErrArityMismatch reports a mutation whose arity disagrees with the stored
// relation (and Reset was not set). Callers that must accept shape-changing
// mutations (the server's heterogeneous fact unions) catch it and re-apply
// with Reset after re-encoding; see RearityBatch.
var ErrArityMismatch = errors.New("storage: relation arity mismatch")

// ErrCorrupt reports an unrecoverable inconsistency in a disk store — a
// snapshot segment that fails its checksum, or a log that references
// undefined dictionary entries. (A torn log tail is NOT corruption: it is
// truncated silently as the un-durable suffix.)
var ErrCorrupt = errors.New("storage: corrupt store")

// errArity builds an ErrArityMismatch with context (rel may be empty when
// the relation is implied by the call site).
func errArity(rel string, have, want int) error {
	if rel == "" {
		return fmt.Errorf("%w: have %d, got %d", ErrArityMismatch, have, want)
	}
	return fmt.Errorf("%w: relation %q has arity %d, got %d", ErrArityMismatch, rel, have, want)
}

// errColumn reports a Lookup column outside the relation's arity.
func errColumn(col, arity int) error {
	return fmt.Errorf("storage: lookup column %d out of range for arity %d", col, arity)
}

// validate checks a batch's internal consistency (row widths match the
// mutation arity) before any backend work, so Apply can fail atomically.
func (b Batch) validate() error {
	for _, m := range b {
		if m.Rel == "" {
			return fmt.Errorf("storage: mutation with empty relation name")
		}
		if m.Arity < 0 {
			return fmt.Errorf("storage: relation %q: negative arity", m.Rel)
		}
		if m.Drop && (m.Reset || len(m.Delete)+len(m.Insert) > 0) {
			return fmt.Errorf("storage: relation %q: a Drop mutation carries no reset flag and no rows", m.Rel)
		}
		for _, row := range m.Delete {
			if len(row) != m.Arity {
				return fmt.Errorf("storage: relation %q: delete row has %d ids, want %d", m.Rel, len(row), m.Arity)
			}
		}
		for _, row := range m.Insert {
			if len(row) != m.Arity {
				return fmt.Errorf("storage: relation %q: insert row has %d ids, want %d", m.Rel, len(row), m.Arity)
			}
		}
	}
	return nil
}
