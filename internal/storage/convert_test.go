package storage_test

import (
	"fmt"
	"testing"

	"algrec/internal/randgen"
	"algrec/internal/storage"
	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// TestRowsOfSetRoundTrip: RowElem inverts RowsOfSet element-wise for random
// sets — uniform tuple relations, scalar mixes, nested sets, 1-tuples.
func TestRowsOfSetRoundTrip(t *testing.T) {
	in := intern.Global()
	for seed := int64(0); seed < 8; seed++ {
		g := randgen.New(seed, randgen.Config{})
		for iter := 0; iter < 30; iter++ {
			elems := make([]value.Value, iter%7+1)
			for i := range elems {
				elems[i] = g.Value(2)
			}
			s := value.NewSet(elems...)
			rows, arity := storage.RowsOfSet(in, s)
			if len(rows) != s.Len() {
				t.Fatalf("seed %d: %d rows for set of %d", seed, len(rows), s.Len())
			}
			back := make([]value.Value, len(rows))
			for i, row := range rows {
				if len(row) != arity {
					t.Fatalf("seed %d: row width %d, arity %d", seed, len(row), arity)
				}
				back[i] = storage.RowElem(in, row, arity)
			}
			if got := value.NewSet(back...); !value.Equal(got, s) {
				t.Fatalf("seed %d: round-trip %v -> %v", seed, s, got)
			}
		}
	}
}

// TestRowsOfSetArityChoice pins the encoding rule: uniform k-tuple sets
// (k >= 2) store relationally, everything else at arity 1.
func TestRowsOfSetArityChoice(t *testing.T) {
	in := intern.Global()
	pair := func(a, b int64) value.Value { return value.NewTuple(value.Int(a), value.Int(b)) }
	for _, tc := range []struct {
		set   value.Set
		arity int
	}{
		{value.NewSet(pair(1, 2), pair(3, 4)), 2},
		{value.NewSet(pair(1, 2), value.NewTuple(value.Int(1), value.Int(2), value.Int(3))), 1}, // mixed widths
		{value.NewSet(value.Int(1), pair(1, 2)), 1},                                             // scalar mixed in
		{value.NewSet(value.NewTuple(value.Int(1))), 1},                                         // 1-tuples stay arity 1
		{value.NewSet(value.Int(1), value.Int(2)), 1},
		{value.NewSet(value.NewSet(value.Int(1))), 1}, // nested set
		{value.NewSet(), 1},
	} {
		rows, arity := storage.RowsOfSet(in, tc.set)
		if arity != tc.arity {
			t.Fatalf("set %v: arity %d, want %d", tc.set, arity, tc.arity)
		}
		if arity >= 2 {
			// Relational rows hold the tuples' element IDs directly.
			for i, row := range rows {
				el := tc.set.At(i)
				for j, id := range row {
					if want := in.Intern(el.(value.Tuple).At(j)); id != want {
						t.Fatalf("row %d col %d: %d, want %d", i, j, id, want)
					}
				}
			}
		}
	}
}

// TestStoreLoadDB round-trips a full database through both backends.
func TestStoreLoadDB(t *testing.T) {
	in := intern.Global()
	g := randgen.New(5, randgen.Config{})
	db := map[string]value.Set{}
	for i := 0; i < 6; i++ {
		elems := make([]value.Value, 10+i)
		for j := range elems {
			elems[j] = g.Value(2)
		}
		db[fmt.Sprintf("r%d", i)] = value.NewSet(elems...)
	}
	// A relational one and an empty one.
	pairs := make([]value.Value, 50)
	for i := range pairs {
		pairs[i] = value.NewTuple(value.Int(int64(i)), value.Int(int64(i)*2))
	}
	db["edge"] = value.NewSet(pairs...)
	db["empty"] = value.NewSet()

	check := func(t *testing.T, st storage.Store) {
		if err := storage.StoreDB(st, in, db); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			got, err := storage.LoadDB(st, in, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(db) {
				t.Fatalf("loaded %d relations, want %d", len(got), len(db))
			}
			for name, s := range db {
				if !value.Equal(got[name], s) {
					t.Fatalf("workers=%d relation %q: %v, want %v", workers, name, got[name], s)
				}
			}
		}
	}
	t.Run("Mem", func(t *testing.T) { check(t, storage.NewMem(nil)) })
	t.Run("Disk", func(t *testing.T) {
		st, err := storage.OpenDisk(t.TempDir(), storage.DiskOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		check(t, st)
	})
}

// TestMaterializeSetParallel: the parallel path (relation above the scan
// threshold, several workers) produces the same canonical set as a serial
// materialization.
func TestMaterializeSetParallel(t *testing.T) {
	in := intern.Global()
	elems := make([]value.Value, 5000)
	for i := range elems {
		elems[i] = value.NewTuple(value.Int(int64(i)), value.Int(int64(i%97)))
	}
	s := value.NewSet(elems...)
	st := storage.NewMem(nil)
	if err := storage.StoreDB(st, in, map[string]value.Set{"r": s}); err != nil {
		t.Fatal(err)
	}
	r, _, _ := st.Rel("r")
	serial, err := storage.MaterializeSet(in, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := storage.MaterializeSet(in, r, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(par, serial) || !value.Equal(par, s) {
			t.Fatalf("workers=%d: parallel materialization diverged", workers)
		}
	}
}

// TestRearityBatch: the server fallback turns an arity-changing fact
// mutation into a Reset re-encoding at arity 1 with the same element-level
// outcome.
func TestRearityBatch(t *testing.T) {
	in := intern.Global()
	st := storage.NewMem(nil)
	pair := func(a, b int64) value.Value { return value.NewTuple(value.Int(a), value.Int(b)) }
	if err := storage.StoreDB(st, in, map[string]value.Set{
		"e": value.NewSet(pair(1, 2), pair(3, 4)),
	}); err != nil {
		t.Fatal(err)
	}
	// Insert a triple into the pair relation: direct apply must fail, the
	// re-aritied batch must succeed.
	triple := in.Intern(value.NewTuple(value.Int(5), value.Int(6), value.Int(7)))
	bad := storage.Batch{{Rel: "e", Arity: 3, Insert: [][]intern.ID{in.Elems(triple)}}}
	if err := st.Apply(bad); err == nil {
		t.Fatal("arity-changing batch applied directly")
	}
	fixed, err := storage.RearityBatch(st, in, bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(fixed); err != nil {
		t.Fatal(err)
	}
	r, _, _ := st.Rel("e")
	got, err := storage.MaterializeSet(in, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := value.NewSet(pair(1, 2), pair(3, 4), value.NewTuple(value.Int(5), value.Int(6), value.Int(7)))
	if !value.Equal(got, want) {
		t.Fatalf("after re-arity: %v, want %v", got, want)
	}
}
