package storage_test

import (
	"sync"
	"testing"

	"algrec/internal/storage"
	"algrec/internal/value/intern"
)

// TestConcurrentReadersDuringApply hammers each backend with concurrent
// scans, lookups and Has probes while a writer churns inserts, deletes and
// resets. Run under -race in CI; the invariant checked here is weaker than
// conformance (only self-consistency of each observed scan) because readers
// race mutations by design.
func TestConcurrentReadersDuringApply(t *testing.T) {
	in := intern.Global()
	run := func(t *testing.T, st storage.Store) {
		num := func(i int) intern.ID { return in.InternInt(int64(i)) }
		seed := make([][]intern.ID, 64)
		for i := range seed {
			seed[i] = []intern.ID{num(i), num(i * 2)}
		}
		if err := st.Apply(storage.Batch{{Rel: "e", Arity: 2, Reset: true, Insert: seed}}); err != nil {
			t.Fatal(err)
		}
		r, _, _ := st.Rel("e")

		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					switch i % 3 {
					case 0:
						n := 0
						if err := r.Scan(func(row []intern.ID) bool {
							if len(row) != 2 {
								t.Errorf("scan row width %d", len(row))
								return false
							}
							n++
							return true
						}); err != nil {
							t.Errorf("Scan: %v", err)
							return
						}
					case 1:
						if err := r.Lookup(0, num(i%64), func(row []intern.ID) bool { return true }); err != nil {
							t.Errorf("Lookup: %v", err)
							return
						}
					default:
						if _, err := r.Has([]intern.ID{num(i % 64), num((i % 64) * 2)}); err != nil {
							t.Errorf("Has: %v", err)
							return
						}
					}
				}
			}(w)
		}
		for i := 0; i < 300; i++ {
			var b storage.Batch
			switch i % 10 {
			case 9:
				b = storage.Batch{{Rel: "e", Arity: 2, Reset: true, Insert: seed}}
			case 4:
				b = storage.Batch{{Rel: "e", Arity: 2, Delete: [][]intern.ID{{num(i % 64), num((i % 64) * 2)}}}}
			default:
				b = storage.Batch{{Rel: "e", Arity: 2, Insert: [][]intern.ID{{num(i), num(i + 1)}}}}
			}
			if err := st.Apply(b); err != nil {
				t.Fatal(err)
			}
		}
		close(stop)
		wg.Wait()
	}
	t.Run("Mem", func(t *testing.T) { run(t, storage.NewMem(nil)) })
	t.Run("Disk", func(t *testing.T) {
		st, err := storage.OpenDisk(t.TempDir(), storage.DiskOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		run(t, st)
	})
}
