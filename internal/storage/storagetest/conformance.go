// Package storagetest is the cross-backend conformance suite for
// storage.Store implementations. Every backend must pass it unchanged — the
// suite pins the observable contract (scan order, batch atomicity, lookup /
// scan agreement, shard partitioning, persistence across reopen) that lets
// the engines, the server and the dlog-storage differential oracle treat
// backends as interchangeable.
package storagetest

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"algrec/internal/storage"
	"algrec/internal/value/intern"
)

// Factory creates a fresh empty store for one subtest. reopen, when non-nil,
// must close the store and reopen the same persistent state (persistent
// backends only; return nil for purely in-memory ones). The t passed in owns
// cleanup of both.
type Factory func(t *testing.T) (st storage.Store, reopen func() storage.Store)

// Run exercises the full conformance suite against the backend.
func Run(t *testing.T, f Factory) {
	t.Run("InsertScanOrder", func(t *testing.T) { testInsertScanOrder(t, f) })
	t.Run("DeleteAndReinsert", func(t *testing.T) { testDeleteAndReinsert(t, f) })
	t.Run("ResetAndArity", func(t *testing.T) { testResetAndArity(t, f) })
	t.Run("BatchAtomicity", func(t *testing.T) { testBatchAtomicity(t, f) })
	t.Run("LookupAgreesWithScan", func(t *testing.T) { testLookupAgreesWithScan(t, f) })
	t.Run("ShardPartition", func(t *testing.T) { testShardPartition(t, f) })
	t.Run("DropRelation", func(t *testing.T) { testDropRelation(t, f) })
	t.Run("Arity0", func(t *testing.T) { testArity0(t, f) })
	t.Run("ScanEarlyStop", func(t *testing.T) { testScanEarlyStop(t, f) })
	t.Run("Reopen", func(t *testing.T) { testReopen(t, f) })
}

// row builds an ID row from small integers via the global interner — the
// vocabulary both bundled backends default to.
func row(xs ...int64) []intern.ID {
	in := intern.Global()
	ids := make([]intern.ID, len(xs))
	for i, x := range xs {
		ids[i] = in.InternInt(x)
	}
	return ids
}

func insert(t *testing.T, st storage.Store, rel string, arity int, rows ...[]intern.ID) {
	t.Helper()
	if err := st.Apply(storage.Batch{{Rel: rel, Arity: arity, Insert: rows}}); err != nil {
		t.Fatalf("Apply insert: %v", err)
	}
}

func del(t *testing.T, st storage.Store, rel string, arity int, rows ...[]intern.ID) {
	t.Helper()
	if err := st.Apply(storage.Batch{{Rel: rel, Arity: arity, Delete: rows}}); err != nil {
		t.Fatalf("Apply delete: %v", err)
	}
}

// scanAll collects a relation's rows in scan order.
func scanAll(t *testing.T, st storage.Store, rel string) [][]intern.ID {
	t.Helper()
	r, ok, err := st.Rel(rel)
	if err != nil {
		t.Fatalf("Rel(%q): %v", rel, err)
	}
	if !ok {
		t.Fatalf("Rel(%q): missing", rel)
	}
	var out [][]intern.ID
	err = r.Scan(func(row []intern.ID) bool {
		cp := make([]intern.ID, len(row))
		copy(cp, row)
		out = append(out, cp)
		return true
	})
	if err != nil {
		t.Fatalf("Scan(%q): %v", rel, err)
	}
	return out
}

func wantRows(t *testing.T, st storage.Store, rel string, want ...[]intern.ID) {
	t.Helper()
	got := scanAll(t, st, rel)
	if len(got) != len(want) {
		t.Fatalf("relation %q: got %d rows, want %d\ngot:  %v\nwant: %v", rel, len(got), len(want), got, want)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("relation %q row %d: got %v, want %v", rel, i, got[i], want[i])
		}
	}
}

func testInsertScanOrder(t *testing.T, f Factory) {
	st, _ := f(t)
	insert(t, st, "e", 2, row(1, 2), row(3, 4))
	insert(t, st, "e", 2, row(5, 6), row(1, 2)) // duplicate: no-op, keeps position
	wantRows(t, st, "e", row(1, 2), row(3, 4), row(5, 6))

	r, _, _ := st.Rel("e")
	if r.Arity() != 2 {
		t.Fatalf("arity = %d, want 2", r.Arity())
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	for _, tc := range []struct {
		row  []intern.ID
		want bool
	}{{row(1, 2), true}, {row(5, 6), true}, {row(2, 1), false}} {
		got, err := r.Has(tc.row)
		if err != nil {
			t.Fatalf("Has(%v): %v", tc.row, err)
		}
		if got != tc.want {
			t.Fatalf("Has(%v) = %v, want %v", tc.row, got, tc.want)
		}
	}
	if _, err := r.Has(row(1)); !errors.Is(err, storage.ErrArityMismatch) {
		t.Fatalf("Has with wrong width: err = %v, want ErrArityMismatch", err)
	}

	infos, err := st.Rels()
	if err != nil {
		t.Fatalf("Rels: %v", err)
	}
	if len(infos) != 1 || infos[0] != (storage.RelInfo{Name: "e", Arity: 2, Len: 3}) {
		t.Fatalf("Rels = %+v", infos)
	}
}

func testDeleteAndReinsert(t *testing.T, f Factory) {
	st, _ := f(t)
	insert(t, st, "e", 1, row(10), row(20), row(30))
	del(t, st, "e", 1, row(20), row(99)) // deleting an absent row is a no-op
	wantRows(t, st, "e", row(10), row(30))

	// Re-insert moves the row to the latest position.
	insert(t, st, "e", 1, row(20))
	wantRows(t, st, "e", row(10), row(30), row(20))

	// Delete and insert of the same row within one mutation: deletes apply
	// first, so the row survives, repositioned at the end.
	if err := st.Apply(storage.Batch{{Rel: "e", Arity: 1, Delete: [][]intern.ID{row(10)}, Insert: [][]intern.ID{row(10)}}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	wantRows(t, st, "e", row(30), row(20), row(10))

	// Delete everything; the relation stays, empty.
	del(t, st, "e", 1, row(10), row(20), row(30))
	wantRows(t, st, "e")
	r, ok, _ := st.Rel("e")
	if !ok || r.Len() != 0 {
		t.Fatalf("after full delete: ok=%v Len=%d", ok, r.Len())
	}
}

func testResetAndArity(t *testing.T, f Factory) {
	st, _ := f(t)
	insert(t, st, "e", 2, row(1, 2))

	// Mismatched arity without Reset is rejected and changes nothing.
	err := st.Apply(storage.Batch{{Rel: "e", Arity: 3, Insert: [][]intern.ID{row(1, 2, 3)}}})
	if !errors.Is(err, storage.ErrArityMismatch) {
		t.Fatalf("arity change without reset: err = %v, want ErrArityMismatch", err)
	}
	wantRows(t, st, "e", row(1, 2))

	// Reset drops the old contents and may change the arity.
	if err := st.Apply(storage.Batch{{Rel: "e", Arity: 3, Reset: true, Insert: [][]intern.ID{row(7, 8, 9)}}}); err != nil {
		t.Fatalf("reset: %v", err)
	}
	wantRows(t, st, "e", row(7, 8, 9))
	r, _, _ := st.Rel("e")
	if r.Arity() != 3 {
		t.Fatalf("arity after reset = %d, want 3", r.Arity())
	}

	// Reset to empty keeps the relation listed.
	if err := st.Apply(storage.Batch{{Rel: "e", Arity: 1, Reset: true}}); err != nil {
		t.Fatalf("reset empty: %v", err)
	}
	if _, ok, _ := st.Rel("e"); !ok {
		t.Fatal("relation vanished after empty reset")
	}
}

func testBatchAtomicity(t *testing.T, f Factory) {
	st, _ := f(t)
	insert(t, st, "a", 1, row(1))
	insert(t, st, "b", 2, row(1, 2))

	// The second mutation's arity mismatch must abort the whole batch: the
	// first mutation's insert is not applied either.
	err := st.Apply(storage.Batch{
		{Rel: "a", Arity: 1, Insert: [][]intern.ID{row(2)}},
		{Rel: "b", Arity: 1, Insert: [][]intern.ID{row(3)}},
	})
	if !errors.Is(err, storage.ErrArityMismatch) {
		t.Fatalf("err = %v, want ErrArityMismatch", err)
	}
	wantRows(t, st, "a", row(1))
	wantRows(t, st, "b", row(1, 2))

	// A malformed row width fails validation with the same atomicity.
	err = st.Apply(storage.Batch{
		{Rel: "a", Arity: 1, Insert: [][]intern.ID{row(5)}},
		{Rel: "c", Arity: 2, Insert: [][]intern.ID{row(1)}},
	})
	if err == nil {
		t.Fatal("malformed batch accepted")
	}
	wantRows(t, st, "a", row(1))
	if _, ok, _ := st.Rel("c"); ok {
		t.Fatal("relation from aborted batch exists")
	}
}

// randomRelation fills rel with deterministic pseudo-random rows (some
// duplicated column values so lookups return multiple rows) and returns the
// surviving rows in insertion order.
func randomRelation(t *testing.T, st storage.Store, rel string, arity, n int, seed int64) [][]intern.ID {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	type key string
	mk := func(r []intern.ID) key { return key(fmt.Sprint(r)) }
	var order [][]intern.ID
	pos := map[key]int{}
	for i := 0; i < n; i++ {
		vals := make([]int64, arity)
		for j := range vals {
			vals[j] = int64(rng.Intn(n / 2))
		}
		r := row(vals...)
		switch {
		case rng.Intn(4) == 0 && len(order) > 0: // delete a random survivor
			victim := order[rng.Intn(len(order))]
			del(t, st, rel, arity, victim)
			if p, ok := pos[mk(victim)]; ok {
				order = append(order[:p], order[p+1:]...)
				delete(pos, mk(victim))
				for k, v := range pos {
					if v > p {
						pos[k] = v - 1
					}
				}
			}
		default:
			insert(t, st, rel, arity, r)
			if _, ok := pos[mk(r)]; !ok {
				pos[mk(r)] = len(order)
				order = append(order, r)
			}
		}
	}
	return order
}

func testLookupAgreesWithScan(t *testing.T, f Factory) {
	st, _ := f(t)
	want := randomRelation(t, st, "r", 3, 300, 42)
	wantRows(t, st, "r", want...)

	r, _, _ := st.Rel("r")
	for col := 0; col < 3; col++ {
		// Expected postings per id, from the scan order.
		byID := map[intern.ID][][]intern.ID{}
		for _, w := range want {
			byID[w[col]] = append(byID[w[col]], w)
		}
		for id, wantRows := range byID {
			var got [][]intern.ID
			err := r.Lookup(col, id, func(row []intern.ID) bool {
				cp := make([]intern.ID, len(row))
				copy(cp, row)
				got = append(got, cp)
				return true
			})
			if err != nil {
				t.Fatalf("Lookup(%d, %d): %v", col, id, err)
			}
			if !reflect.DeepEqual(got, wantRows) {
				t.Fatalf("Lookup(%d, %d) = %v, want %v", col, id, got, wantRows)
			}
		}
		// An id absent from the column yields nothing.
		absent := row(1 << 20)[0]
		if err := r.Lookup(col, absent, func([]intern.ID) bool { t.Fatal("unexpected row"); return false }); err != nil {
			t.Fatalf("Lookup absent: %v", err)
		}
	}
	if err := r.Lookup(3, row(0)[0], func([]intern.ID) bool { return true }); err == nil {
		t.Fatal("Lookup out-of-range column accepted")
	}
}

func testShardPartition(t *testing.T, f Factory) {
	st, _ := f(t)
	want := randomRelation(t, st, "r", 2, 400, 7)
	r, _, _ := st.Rel("r")
	for _, shards := range []int{1, 2, 3, 8} {
		var union [][]intern.ID
		seen := map[string]int{}
		for s := 0; s < shards; s++ {
			err := r.ScanShard(s, shards, func(row []intern.ID) bool {
				cp := make([]intern.ID, len(row))
				copy(cp, row)
				if storage.RowShard(cp, shards) != s {
					t.Fatalf("shard %d/%d yielded row %v of shard %d", s, shards, cp, storage.RowShard(cp, shards))
				}
				seen[fmt.Sprint(cp)]++
				union = append(union, cp)
				return true
			})
			if err != nil {
				t.Fatalf("ScanShard(%d, %d): %v", s, shards, err)
			}
		}
		if len(union) != len(want) {
			t.Fatalf("%d shards: union has %d rows, want %d", shards, len(union), len(want))
		}
		for k, n := range seen {
			if n != 1 {
				t.Fatalf("%d shards: row %s seen %d times", shards, k, n)
			}
		}
	}
}

func testDropRelation(t *testing.T, f Factory) {
	st, reopen := f(t)
	insert(t, st, "e", 2, row(1, 2), row(3, 4))
	insert(t, st, "keep", 1, row(9))

	// Dropping an absent relation is a no-op.
	if err := st.Apply(storage.Batch{{Rel: "ghost", Drop: true}}); err != nil {
		t.Fatalf("drop absent: %v", err)
	}

	// A Drop mutation must not carry rows or Reset.
	if err := st.Apply(storage.Batch{{Rel: "e", Drop: true, Insert: [][]intern.ID{row(5, 6)}}}); err == nil {
		t.Fatal("Drop with rows accepted")
	}
	if err := st.Apply(storage.Batch{{Rel: "e", Drop: true, Reset: true}}); err == nil {
		t.Fatal("Drop with Reset accepted")
	}
	wantRows(t, st, "e", row(1, 2), row(3, 4)) // rejected batches changed nothing

	// Drop removes the relation; others survive.
	if err := st.Apply(storage.Batch{{Rel: "e", Drop: true}}); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if _, ok, err := st.Rel("e"); ok || err != nil {
		t.Fatalf("Rel after drop: ok=%v err=%v", ok, err)
	}
	infos, err := st.Rels()
	if err != nil || len(infos) != 1 || infos[0].Name != "keep" {
		t.Fatalf("Rels after drop = %+v, %v", infos, err)
	}

	// Drop then recreate at a different arity within one atomic batch.
	if err := st.Apply(storage.Batch{
		{Rel: "keep", Drop: true},
		{Rel: "keep", Arity: 3, Insert: [][]intern.ID{row(1, 2, 3)}},
	}); err != nil {
		t.Fatalf("drop+recreate batch: %v", err)
	}
	wantRows(t, st, "keep", row(1, 2, 3))

	if reopen != nil {
		st2 := reopen()
		if _, ok, _ := st2.Rel("e"); ok {
			t.Fatal("dropped relation resurrected by reopen")
		}
		wantRows(t, st2, "keep", row(1, 2, 3))
	}
}

func testArity0(t *testing.T, f Factory) {
	st, _ := f(t)
	if err := st.Apply(storage.Batch{{Rel: "p", Arity: 0, Insert: [][]intern.ID{{}}}}); err != nil {
		t.Fatalf("insert empty row: %v", err)
	}
	r, _, _ := st.Rel("p")
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	n := 0
	if err := r.Scan(func(row []intern.ID) bool {
		if len(row) != 0 {
			t.Fatalf("arity-0 scan yielded row %v", row)
		}
		n++
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != 1 {
		t.Fatalf("scan yielded %d rows, want 1", n)
	}
	if err := st.Apply(storage.Batch{{Rel: "p", Arity: 0, Delete: [][]intern.ID{{}}}}); err != nil {
		t.Fatalf("delete empty row: %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("Len after delete = %d, want 0", r.Len())
	}
	// Revive.
	if err := st.Apply(storage.Batch{{Rel: "p", Arity: 0, Insert: [][]intern.ID{{}}}}); err != nil {
		t.Fatalf("re-insert empty row: %v", err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len after revive = %d, want 1", r.Len())
	}
}

func testScanEarlyStop(t *testing.T, f Factory) {
	st, _ := f(t)
	insert(t, st, "e", 1, row(1), row(2), row(3))
	r, _, _ := st.Rel("e")
	n := 0
	if err := r.Scan(func([]intern.ID) bool { n++; return n < 2 }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != 2 {
		t.Fatalf("scan visited %d rows after early stop, want 2", n)
	}
}

func testReopen(t *testing.T, f Factory) {
	st, reopen := f(t)
	if reopen == nil {
		t.Skip("backend is not persistent")
	}
	want := randomRelation(t, st, "r", 2, 200, 99)
	insert(t, st, "s", 1, row(5))
	del(t, st, "s", 1, row(5))
	if err := st.Apply(storage.Batch{{Rel: "p", Arity: 0, Insert: [][]intern.ID{{}}}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}

	st2 := reopen()
	wantRows(t, st2, "r", want...)
	wantRows(t, st2, "s")
	p, ok, err := st2.Rel("p")
	if err != nil || !ok || p.Len() != 1 {
		t.Fatalf("arity-0 relation after reopen: ok=%v err=%v", ok, err)
	}
	infos, err := st2.Rels()
	if err != nil || len(infos) != 3 {
		t.Fatalf("Rels after reopen = %+v, %v", infos, err)
	}
}
