package storage_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"algrec/internal/storage"
	"algrec/internal/value/intern"
)

// TestRowShardPartition: the shard function is a total partition — every row
// lands in exactly one shard in range, deterministically.
func TestRowShardPartition(t *testing.T) {
	in := intern.Global()
	rows := make([][]intern.ID, 1000)
	for i := range rows {
		rows[i] = []intern.ID{in.InternInt(int64(i)), in.InternInt(int64(i % 13))}
	}
	for _, shards := range []int{1, 2, 7, 16} {
		counts := make([]int, shards)
		for _, row := range rows {
			s := storage.RowShard(row, shards)
			if s < 0 || s >= shards {
				t.Fatalf("RowShard(%v, %d) = %d out of range", row, shards, s)
			}
			if s2 := storage.RowShard(row, shards); s2 != s {
				t.Fatalf("RowShard not deterministic: %d vs %d", s, s2)
			}
			counts[s]++
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != len(rows) {
			t.Fatalf("shards=%d: partition covers %d rows, want %d", shards, total, len(rows))
		}
		if shards >= 7 {
			// The hash should spread a sequential key space: no empty shard.
			for s, c := range counts {
				if c == 0 {
					t.Fatalf("shards=%d: shard %d empty", shards, s)
				}
			}
		}
	}
	if storage.RowShard(rows[0], 0) != 0 || storage.RowShard(rows[0], 1) != 0 {
		t.Fatal("degenerate shard counts must map to shard 0")
	}
}

// TestParallelScanEqualsScan: a concurrent sharded scan visits exactly the
// rows of a serial scan, on both backends, above and below the parallel
// threshold.
func TestParallelScanEqualsScan(t *testing.T) {
	in := intern.Global()
	for _, n := range []int{100, 5000} {
		rows := make([][]intern.ID, n)
		for i := range rows {
			rows[i] = []intern.ID{in.InternInt(int64(i)), in.InternInt(int64(i * 3))}
		}
		stores := map[string]storage.Store{"mem": storage.NewMem(nil)}
		disk, err := storage.OpenDisk(t.TempDir(), storage.DiskOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer disk.Close()
		stores["disk"] = disk
		for name, st := range stores {
			if err := st.Apply(storage.Batch{{Rel: "e", Arity: 2, Insert: rows}}); err != nil {
				t.Fatal(err)
			}
			r, _, _ := st.Rel("e")
			var serial []string
			if err := r.Scan(func(row []intern.ID) bool {
				serial = append(serial, fmt.Sprint(row))
				return true
			}); err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			var par []string
			if err := storage.ParallelScan(r, 4, func(shard int, row []intern.ID) bool {
				mu.Lock()
				par = append(par, fmt.Sprint(row))
				mu.Unlock()
				return true
			}); err != nil {
				t.Fatal(err)
			}
			sort.Strings(serial)
			sort.Strings(par)
			if len(serial) != n || len(par) != n {
				t.Fatalf("%s n=%d: serial %d rows, parallel %d", name, n, len(serial), len(par))
			}
			for i := range serial {
				if serial[i] != par[i] {
					t.Fatalf("%s n=%d: row sets differ at %d: %s vs %s", name, n, i, serial[i], par[i])
				}
			}
		}
	}
}
