package storage

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// This file is the bridge between the stored representation (fixed-arity ID
// rows) and the engines' representation (value.Set relations of complex
// objects). The encoding is chosen per relation:
//
//   - a non-empty set whose elements are all tuples of one width k >= 2 is
//     stored relationally: arity-k rows of the tuples' element IDs (the
//     shape the grounder's EDB scans and the shard partitioner want);
//   - any other set — scalars, nested sets, 1-tuples, mixed shapes — is
//     stored as arity-1 rows holding each element's own interned ID.
//
// Both directions are exact: RowElem inverts RowsOfSet element-wise, so a
// set round-trips bit-for-bit through either backend.

// RowsOfSet encodes a relation set as ID rows, returning the rows in the
// set's canonical element order and the chosen arity.
func RowsOfSet(in *intern.Interner, s value.Set) (rows [][]intern.ID, arity int) {
	arity = 1
	if s.Len() > 0 {
		k := -1
		uniform := true
		for i := 0; i < s.Len(); i++ {
			t, ok := s.At(i).(value.Tuple)
			if !ok || t.Len() < 2 || (k >= 0 && t.Len() != k) {
				uniform = false
				break
			}
			k = t.Len()
		}
		if uniform {
			arity = k
		}
	}
	rows = make([][]intern.ID, s.Len())
	for i := 0; i < s.Len(); i++ {
		id := in.Intern(s.At(i))
		if arity == 1 {
			rows[i] = []intern.ID{id}
			continue
		}
		row := make([]intern.ID, arity)
		copy(row, in.Elems(id))
		rows[i] = row
	}
	return rows, arity
}

// RowElem decodes one stored row back to the set element it encodes.
func RowElem(in *intern.Interner, row []intern.ID, arity int) value.Value {
	switch arity {
	case 0:
		return value.NewTuple()
	case 1:
		return in.Lookup(row[0])
	default:
		return in.Lookup(in.InternTuple(row...))
	}
}

// MaterializeSet builds the value.Set a stored relation encodes, scanning up
// to workers hash shards in parallel (workers <= 0 means GOMAXPROCS; small
// relations scan serially either way). The result is canonical and
// deterministic regardless of worker count.
func MaterializeSet(in *intern.Interner, r Relation, workers int) (value.Set, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	arity := r.Arity()
	if workers == 1 || r.Len() < scanParallelMin {
		elems := make([]value.Value, 0, r.Len())
		err := r.Scan(func(row []intern.ID) bool {
			elems = append(elems, RowElem(in, row, arity))
			return true
		})
		if err != nil {
			return value.Set{}, err
		}
		return value.NewSet(elems...), nil
	}
	parts := make([][]value.Value, workers)
	var mu sync.Mutex
	err := ParallelScan(r, workers, func(shard int, row []intern.ID) bool {
		e := RowElem(in, row, arity)
		mu.Lock()
		parts[shard] = append(parts[shard], e)
		mu.Unlock()
		return true
	})
	if err != nil {
		return value.Set{}, err
	}
	var elems []value.Value
	for _, p := range parts {
		elems = append(elems, p...)
	}
	return value.NewSet(elems...), nil
}

// StoreDB bulk-loads a database into the store: one Reset mutation per
// relation, applied as a single atomic batch, in sorted name order so the
// disk backend's log is deterministic.
func StoreDB(st Store, in *intern.Interner, db map[string]value.Set) error {
	names := make([]string, 0, len(db))
	for name := range db {
		names = append(names, name)
	}
	sort.Strings(names)
	b := make(Batch, 0, len(names))
	for _, name := range names {
		rows, arity := RowsOfSet(in, db[name])
		b = append(b, Mutation{Rel: name, Arity: arity, Reset: true, Insert: rows})
	}
	return st.Apply(b)
}

// LoadDB materializes every relation of the store (with up to workers
// parallel shard scans per relation) into a database map.
func LoadDB(st Store, in *intern.Interner, workers int) (map[string]value.Set, error) {
	infos, err := st.Rels()
	if err != nil {
		return nil, err
	}
	db := make(map[string]value.Set, len(infos))
	for _, info := range infos {
		r, ok, err := st.Rel(info.Name)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("storage: relation %q vanished during load", info.Name)
		}
		s, err := MaterializeSet(in, r, workers)
		if err != nil {
			return nil, err
		}
		db[info.Name] = s
	}
	return db, nil
}

// RearityBatch rebuilds the mutations that failed with ErrArityMismatch so
// they apply against the store's current shape: the existing relation is
// re-read, the mutation's rows are re-encoded element-wise, and the whole
// relation is replaced (Reset) in the heterogeneous arity-1 encoding. This
// is the server's fallback when a fact batch changes a relation's shape
// (e.g. inserting a 3-ary fact into a relation of pairs).
func RearityBatch(st Store, in *intern.Interner, b Batch) (Batch, error) {
	out := make(Batch, 0, len(b))
	for _, m := range b {
		r, ok, err := st.Rel(m.Rel)
		if err != nil {
			return nil, err
		}
		if !ok || m.Reset {
			out = append(out, m)
			continue
		}
		cur, _, err2 := relShape(r)
		if err2 != nil {
			return nil, err2
		}
		if r.Arity() == m.Arity {
			out = append(out, m)
			continue
		}
		// Re-encode: current elements minus deletes plus inserts, arity 1.
		have := map[intern.ID]bool{}
		order := []intern.ID{}
		add := func(id intern.ID) {
			if !have[id] {
				have[id] = true
				order = append(order, id)
			}
		}
		for _, row := range cur {
			add(elemID(in, row, r.Arity()))
		}
		for _, row := range m.Delete {
			id := elemID(in, row, m.Arity)
			if have[id] {
				have[id] = false
			}
		}
		for _, row := range m.Insert {
			id := elemID(in, row, m.Arity)
			if !have[id] {
				have[id] = true
				if _, seen := find(order, id); !seen {
					order = append(order, id)
				}
			}
		}
		rm := Mutation{Rel: m.Rel, Arity: 1, Reset: true}
		for _, id := range order {
			if have[id] {
				rm.Insert = append(rm.Insert, []intern.ID{id})
			}
		}
		out = append(out, rm)
	}
	return out, nil
}

// relShape reads a relation's rows and arity.
func relShape(r Relation) ([][]intern.ID, int, error) {
	arity := r.Arity()
	var rows [][]intern.ID
	err := r.Scan(func(row []intern.ID) bool {
		cp := make([]intern.ID, len(row))
		copy(cp, row)
		rows = append(rows, cp)
		return true
	})
	return rows, arity, err
}

// elemID interns the element a row encodes.
func elemID(in *intern.Interner, row []intern.ID, arity int) intern.ID {
	switch arity {
	case 1:
		return row[0]
	default:
		return in.InternTuple(row...)
	}
}

// find reports whether id occurs in ids.
func find(ids []intern.ID, id intern.ID) (int, bool) {
	for i, x := range ids {
		if x == id {
			return i, true
		}
	}
	return -1, false
}
