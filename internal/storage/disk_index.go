package storage

import (
	"encoding/binary"
	"fmt"
	"os"

	"algrec/internal/value/intern"
)

// This file is the resident index half of the disk backend: the per-relation
// open-addressed table over file refs, and the point row reads that back it.
// All functions here run with the store lock held (read or write per the
// caller's contract).

// readRow reads the row behind ref into idbuf, translating stored vids to
// interned IDs. bbuf must hold arity*4 bytes.
func (ds *DiskStore) readRow(ref uint64, arity int, idbuf []intern.ID, bbuf []byte) ([]intern.ID, error) {
	if arity == 0 {
		return idbuf[:0], nil
	}
	var f *os.File = ds.logF
	if ref&1 == 0 {
		f = ds.snapF
		if f == nil {
			return nil, fmt.Errorf("%w: row ref into missing snapshot segment", ErrCorrupt)
		}
	}
	if _, err := f.ReadAt(bbuf, int64(ref>>1)); err != nil {
		return nil, err
	}
	idbuf = idbuf[:0]
	for j := 0; j < arity; j++ {
		vid := binary.LittleEndian.Uint32(bbuf[j*4:])
		if uint64(vid) >= uint64(len(ds.vids)) {
			return nil, fmt.Errorf("%w: stored row references undefined vid %d", ErrCorrupt, vid)
		}
		idbuf = append(idbuf, ds.vids[vid])
	}
	return idbuf, nil
}

func (r *diskRel) isDead(i int) bool {
	// The bitmap only grows as far as the highest tombstoned index.
	if i>>6 >= len(r.dead) {
		return false
	}
	return r.dead[i>>6]&(1<<(uint(i)&63)) != 0
}

func (r *diskRel) markDead(i int) {
	for len(r.dead)*64 <= i {
		r.dead = append(r.dead, 0)
	}
	r.dead[i>>6] |= 1 << (uint(i) & 63)
}

// probe walks the table from row's hash slot. It returns the order index of
// the live matching row (or -1), and the slot an insert should claim — the
// first tombstone on the path, else the terminating empty slot. The cached
// per-row hashes filter candidates, so the disk is only read to confirm an
// exact hash match.
func (r *diskRel) probe(row []intern.ID, h uint64, pbuf []intern.ID, bbuf []byte) (slot uint32, orderIdx int, err error) {
	slot = uint32(h) & r.mask
	reuse := int64(-1)
	for {
		e := r.table[slot]
		switch {
		case e == 0:
			if reuse >= 0 {
				slot = uint32(reuse)
			}
			return slot, -1, nil
		case e == diskSlotTomb:
			if reuse < 0 {
				reuse = int64(slot)
			}
		default:
			oi := int(e - 2)
			if r.hashes[oi] == h {
				got, err := r.ds.readRow(r.order[oi], r.arity, pbuf, bbuf)
				if err != nil {
					return 0, 0, err
				}
				if idRowsEqual(got, row) {
					return slot, oi, nil
				}
			}
		}
		slot = (slot + 1) & r.mask
	}
}

// insert adds the row (stored at ref) if absent, reporting whether it was
// newly added. Present rows keep their original scan position — insert of a
// duplicate is a no-op, matching the memory backend.
func (r *diskRel) insert(row []intern.ID, ref uint64, pbuf []intern.ID, bbuf []byte) (added bool, err error) {
	h := intern.HashRow(row)
	slot, oi, err := r.probe(row, h, pbuf, bbuf)
	if err != nil {
		return false, err
	}
	if oi >= 0 {
		return false, nil
	}
	idx := len(r.order)
	r.order = append(r.order, ref)
	r.hashes = append(r.hashes, h)
	r.live++
	if r.table[slot] == 0 {
		r.used++
	}
	if r.used*4 > (r.mask+1)*3 {
		r.grow()
	} else {
		r.table[slot] = uint32(idx + 2)
	}
	return true, nil
}

// delete tombstones the row if present.
func (r *diskRel) delete(row []intern.ID, pbuf []intern.ID, bbuf []byte) error {
	slot, oi, err := r.probe(row, intern.HashRow(row), pbuf, bbuf)
	if err != nil {
		return err
	}
	if oi < 0 {
		return nil
	}
	r.table[slot] = diskSlotTomb
	r.markDead(oi)
	r.live--
	r.ds.deadRows++
	return nil
}

// grow doubles the table; resize rebuilds it at the given power-of-two size,
// rehashing live entries from the cached hashes — no disk reads.
func (r *diskRel) grow() { r.resize((r.mask + 1) * 2) }

func (r *diskRel) resize(size uint32) {
	r.table = make([]uint32, size)
	r.mask = size - 1
	r.used = 0
	for i := range r.order {
		if r.isDead(i) {
			continue
		}
		slot := uint32(r.hashes[i]) & r.mask
		for r.table[slot] != 0 {
			slot = (slot + 1) & r.mask
		}
		r.table[slot] = uint32(i + 2)
		r.used++
	}
}

func idRowsEqual(a, b []intern.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- Relation interface ---

// Arity implements Relation.
func (r *diskRel) Arity() int {
	r.ds.mu.RLock()
	defer r.ds.mu.RUnlock()
	return r.arity
}

// Len implements Relation.
func (r *diskRel) Len() int {
	r.ds.mu.RLock()
	defer r.ds.mu.RUnlock()
	return r.live
}

// Has implements Relation.
func (r *diskRel) Has(row []intern.ID) (bool, error) {
	r.ds.mu.RLock()
	defer r.ds.mu.RUnlock()
	if err := r.ds.broken; err != nil {
		return false, err
	}
	if len(row) != r.arity {
		return false, errArity(r.name, r.arity, len(row))
	}
	if r.arity == 0 {
		return r.live > 0, nil
	}
	pbuf := make([]intern.ID, r.arity)
	bbuf := make([]byte, r.arity*4)
	_, oi, err := r.probe(row, intern.HashRow(row), pbuf, bbuf)
	return oi >= 0, err
}

// Scan implements Relation.
func (r *diskRel) Scan(yield func(row []intern.ID) bool) error {
	r.ds.mu.RLock()
	defer r.ds.mu.RUnlock()
	return r.scanLocked(yield)
}

func (r *diskRel) scanLocked(yield func(row []intern.ID) bool) error {
	if err := r.ds.broken; err != nil {
		return err
	}
	if r.arity == 0 {
		if r.live > 0 {
			yield(nil)
		}
		return nil
	}
	idbuf := make([]intern.ID, r.arity)
	bbuf := make([]byte, r.arity*4)
	for i, ref := range r.order {
		if r.isDead(i) {
			continue
		}
		row, err := r.ds.readRow(ref, r.arity, idbuf, bbuf)
		if err != nil {
			return err
		}
		if !yield(row) {
			return nil
		}
	}
	return nil
}

// ScanShard implements Relation.
func (r *diskRel) ScanShard(shard, shards int, yield func(row []intern.ID) bool) error {
	r.ds.mu.RLock()
	defer r.ds.mu.RUnlock()
	if err := r.ds.broken; err != nil {
		return err
	}
	if r.arity == 0 {
		if r.live > 0 && shard == 0 {
			yield(nil)
		}
		return nil
	}
	idbuf := make([]intern.ID, r.arity)
	bbuf := make([]byte, r.arity*4)
	for i, ref := range r.order {
		if r.isDead(i) {
			continue
		}
		// The cached row hash is intern.HashRow, so the shard filter needs no
		// disk read for rows outside the shard.
		if shards > 1 && int(r.hashes[i]%uint64(shards)) != shard {
			continue
		}
		row, err := r.ds.readRow(ref, r.arity, idbuf, bbuf)
		if err != nil {
			return err
		}
		if !yield(row) {
			return nil
		}
	}
	return nil
}

// Lookup implements Relation. Like the memory backend it serves point
// lookups from a lazily built per-column postings index (over order
// indices), rebuilt after mutations.
func (r *diskRel) Lookup(col int, id intern.ID, yield func(row []intern.ID) bool) error {
	r.ds.mu.RLock()
	defer r.ds.mu.RUnlock()
	if err := r.ds.broken; err != nil {
		return err
	}
	if col < 0 || col >= r.arity {
		return errColumn(col, r.arity)
	}
	idx, err := r.postings(col)
	if err != nil {
		return err
	}
	idbuf := make([]intern.ID, r.arity)
	bbuf := make([]byte, r.arity*4)
	for _, oi := range idx[id] {
		if r.isDead(int(oi)) {
			continue
		}
		row, err := r.ds.readRow(r.order[oi], r.arity, idbuf, bbuf)
		if err != nil {
			return err
		}
		if !yield(row) {
			return nil
		}
	}
	return nil
}

func (r *diskRel) postings(col int) (map[intern.ID][]int32, error) {
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	if r.idxVersion != r.version {
		r.colIdx = map[int]map[intern.ID][]int32{}
		r.idxVersion = r.version
	}
	idx, ok := r.colIdx[col]
	if ok {
		return idx, nil
	}
	idx = map[intern.ID][]int32{}
	idbuf := make([]intern.ID, r.arity)
	bbuf := make([]byte, r.arity*4)
	for i, ref := range r.order {
		if r.isDead(i) {
			continue
		}
		row, err := r.ds.readRow(ref, r.arity, idbuf, bbuf)
		if err != nil {
			return nil, err
		}
		idx[row[col]] = append(idx[row[col]], int32(i))
	}
	r.colIdx[col] = idx
	return idx, nil
}
