package storage

import (
	"runtime"
	"sync"

	"algrec/internal/value/intern"
)

// RowShard returns row's shard index under a shards-way hash partition. The
// partition is a pure function of the row's interned IDs (the same row hash
// the backends' open-addressed indexes use), so every backend agrees on the
// assignment and the union of the shard scans is exactly the full scan.
// Shard assignment is process-local (IDs are interner-local) and is never
// persisted — the disk backend shards logically at scan time.
func RowShard(row []intern.ID, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(intern.HashRow(row) % uint64(shards))
}

// scanParallelMin is the live-row count below which parallel shard scans
// are not worth their goroutine setup; smaller relations scan serially.
const scanParallelMin = 2048

// ParallelScan scans r with up to workers concurrent hash-shard scans,
// calling yield from multiple goroutines (one shard per worker at a time;
// yield must be safe for concurrent calls and must not call back into the
// store). Row order within a shard is the insertion order; across shards it
// is interleaved. It is the fan-out primitive the serving path uses to
// parallelize per-row work — materialization, grounding-side fact building —
// over large stored relations, extending the sharded experiment runner's
// pattern onto the leaf scans.
func ParallelScan(r Relation, workers int, yield func(shard int, row []intern.ID) bool) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || r.Len() < scanParallelMin {
		return r.Scan(func(row []intern.ID) bool { return yield(0, row) })
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ferr error
	)
	for s := 0; s < workers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			err := r.ScanShard(s, workers, func(row []intern.ID) bool { return yield(s, row) })
			if err != nil {
				mu.Lock()
				if ferr == nil {
					ferr = err
				}
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	return ferr
}
