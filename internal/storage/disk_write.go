package storage

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// This file is the disk backend's write path: Apply (log append), Snapshot
// (generation compaction), and the Store plumbing around them.

// Rel implements Store.
func (ds *DiskStore) Rel(name string) (Relation, bool, error) {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if err := ds.broken; err != nil {
		return nil, false, err
	}
	r, ok := ds.rels[name]
	if !ok {
		return nil, false, nil
	}
	return r, true, nil
}

// Rels implements Store.
func (ds *DiskStore) Rels() ([]RelInfo, error) {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if err := ds.broken; err != nil {
		return nil, err
	}
	out := make([]RelInfo, 0, len(ds.rels))
	for name, r := range ds.rels {
		out = append(out, RelInfo{Name: name, Arity: r.arity, Len: r.live})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Apply implements Store: the batch is framed in memory (new dictionary
// entries first, then one recBatch record), appended to the log with a
// single write, and only then applied to the resident index — so the visible
// state never runs ahead of the log, and a torn write at any byte still
// recovers to a batch boundary.
func (ds *DiskStore) Apply(b Batch) error {
	if err := b.validate(); err != nil {
		return err
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if err := ds.broken; err != nil {
		return err
	}
	if ds.closed {
		return fmt.Errorf("storage: disk store is closed")
	}
	// Pre-validate arities across the whole batch before any writes.
	arities := map[string]int{}
	for name, r := range ds.rels {
		arities[name] = r.arity
	}
	for _, m := range b {
		if m.Drop {
			delete(arities, m.Rel)
			continue
		}
		if a, ok := arities[m.Rel]; ok && !m.Reset && a != m.Arity {
			return errArity(m.Rel, a, m.Arity)
		}
		arities[m.Rel] = m.Arity
	}

	// Encode: dictionary growth frames, then the batch frame.
	var scratch []byte
	ms := make([]encodedMutation, len(b))
	for i, m := range b {
		em := encodedMutation{Rel: m.Rel, Arity: m.Arity, Reset: m.Reset, Drop: m.Drop}
		var err error
		if em.Delete, err = ds.encodeRows(m.Delete, &scratch); err != nil {
			return err
		}
		if em.Insert, err = ds.encodeRows(m.Insert, &scratch); err != nil {
			return err
		}
		ms[i] = em
	}
	insertOff := make([]int, len(ms))
	payload := appendBatchRecord(nil, ms, insertOff)
	batchFrameOff := len(scratch)
	scratch = appendFrame(scratch, recBatch, payload)

	// One write, optional fsync; an I/O failure poisons the store (the
	// on-disk tail is now unknown, but reopening recovers the durable
	// prefix).
	if _, err := ds.logF.WriteAt(scratch, ds.logOff); err != nil {
		ds.broken = err
		return err
	}
	if ds.opt.Sync {
		if err := ds.logF.Sync(); err != nil {
			ds.broken = err
			return err
		}
	}
	dataOff := ds.logOff + int64(batchFrameOff) + frameHeaderLen
	ds.logOff += int64(len(scratch))

	for i, m := range ms {
		if err := ds.applyEncoded(m, dataOff+int64(insertOff[i]), 1); err != nil {
			ds.broken = err // index out of step with the log
			return err
		}
	}
	ds.maybeCompact()
	return nil
}

// encodeRows translates ID rows to vid rows, appending dictionary frames to
// scratch for values the store has not yet persisted.
func (ds *DiskStore) encodeRows(rows [][]intern.ID, scratch *[]byte) ([][]uint32, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	out := make([][]uint32, len(rows))
	for i, row := range rows {
		vr := make([]uint32, len(row))
		for j, id := range row {
			vid, err := ds.ensureVID(id, scratch)
			if err != nil {
				return nil, err
			}
			vr[j] = vid
		}
		out[i] = vr
	}
	return out, nil
}

// ensureVID returns id's store-vid, defining it (and, bottom-up, its
// children) with recValue frames appended to scratch if it is new. The vid
// is assigned eagerly; if the batch's write later fails the store is
// poisoned, so the optimistic assignment can never leak into a live store
// whose log lacks the definition.
func (ds *DiskStore) ensureVID(id intern.ID, scratch *[]byte) (uint32, error) {
	if vid, ok := ds.vidOf[id]; ok {
		return vid, nil
	}
	v := ds.in.Lookup(id)
	var kids []uint32
	if k := v.Kind(); k == value.KindTuple || k == value.KindSet {
		sub := ds.in.Elems(id)
		kids = make([]uint32, len(sub))
		for i, c := range sub {
			kv, err := ds.ensureVID(c, scratch)
			if err != nil {
				return 0, err
			}
			kids[i] = kv
		}
	}
	payload, err := appendValueRecord(nil, v, func(i int) uint64 { return uint64(kids[i]) }, len(kids))
	if err != nil {
		return 0, err
	}
	*scratch = appendFrame(*scratch, recValue, payload)
	vid := uint32(len(ds.vids))
	ds.vids = append(ds.vids, id)
	ds.vidOf[id] = vid
	return vid, nil
}

// maybeCompact starts a background compaction when dead log rows outnumber
// live ones (above a floor). Called with the write lock held.
func (ds *DiskStore) maybeCompact() {
	if ds.compacting || ds.closed || ds.deadRows < compactMinDead {
		return
	}
	live := 0
	for _, r := range ds.rels {
		live += r.live
	}
	if ds.deadRows <= live {
		return
	}
	ds.compacting = true
	ds.compWG.Add(1)
	go func() {
		defer ds.compWG.Done()
		ds.mu.Lock()
		defer ds.mu.Unlock()
		ds.compacting = false
		if ds.closed || ds.broken != nil {
			return
		}
		if err := ds.snapshotLocked(); err != nil {
			ds.broken = err
		}
	}()
}

// Snapshot implements Store: write a checkpoint of the current state as a
// new generation and drop the old files. Reopening afterwards replays
// nothing.
func (ds *DiskStore) Snapshot() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if err := ds.broken; err != nil {
		return err
	}
	if ds.closed {
		return fmt.Errorf("storage: disk store is closed")
	}
	return ds.snapshotLocked()
}

// snapshotLocked writes generation gen+1: a snapshot segment holding a
// re-emitted dictionary (only values live rows reach, re-numbered densely)
// and every relation's contents, then an empty log, then the CURRENT flip.
// Only after the flip is the resident state swapped and the old generation
// deleted — a crash anywhere before the rename leaves the old generation
// fully intact.
func (ds *DiskStore) snapshotLocked() error {
	newGen := ds.gen + 1
	snapPath := filepath.Join(ds.dir, segName("snap", newGen))
	f, err := os.OpenFile(snapPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.WriteString(segMagic); err != nil {
		f.Close()
		return err
	}
	off := int64(len(segMagic))

	// New dictionary, populated as rows are re-encoded.
	newVids := []intern.ID{}
	newVidOf := map[intern.ID]uint32{}
	var ensure func(id intern.ID) (uint32, error)
	ensure = func(id intern.ID) (uint32, error) {
		if vid, ok := newVidOf[id]; ok {
			return vid, nil
		}
		v := ds.in.Lookup(id)
		var kids []uint32
		if k := v.Kind(); k == value.KindTuple || k == value.KindSet {
			sub := ds.in.Elems(id)
			kids = make([]uint32, len(sub))
			for i, c := range sub {
				kv, err := ensure(c)
				if err != nil {
					return 0, err
				}
				kids[i] = kv
			}
		}
		payload, err := appendValueRecord(nil, v, func(i int) uint64 { return uint64(kids[i]) }, len(kids))
		if err != nil {
			return 0, err
		}
		frame := appendFrame(nil, recValue, payload)
		if _, err := w.Write(frame); err != nil {
			return 0, err
		}
		off += int64(len(frame))
		vid := uint32(len(newVids))
		newVids = append(newVids, id)
		newVidOf[id] = vid
		return vid, nil
	}

	// Per relation: read live rows, define their values, write one recRel
	// frame, and remember the new refs for the index swap.
	type relSwap struct {
		r      *diskRel
		order  []uint64
		hashes []uint64
		rows   [][]intern.ID
	}
	names := make([]string, 0, len(ds.rels))
	for name := range ds.rels {
		names = append(names, name)
	}
	sort.Strings(names)
	swaps := make([]relSwap, 0, len(names))
	fail := func(err error) error { f.Close(); os.Remove(snapPath); return err }
	for _, name := range names {
		r := ds.rels[name]
		sw := relSwap{r: r}
		err := r.scanLocked(func(row []intern.ID) bool {
			cp := make([]intern.ID, len(row))
			copy(cp, row)
			sw.rows = append(sw.rows, cp)
			return true
		})
		if err != nil {
			return fail(err)
		}
		payload := putUvarint(nil, uint64(len(name)))
		payload = append(payload, name...)
		payload = putUvarint(payload, uint64(r.arity))
		payload = putUvarint(payload, uint64(len(sw.rows)))
		rowsOff := len(payload)
		for _, row := range sw.rows {
			for _, id := range row {
				vid, err := ensure(id)
				if err != nil {
					return fail(err)
				}
				vr := [4]byte{byte(vid), byte(vid >> 8), byte(vid >> 16), byte(vid >> 24)}
				payload = append(payload, vr[:]...)
			}
		}
		frame := appendFrame(nil, recRel, payload)
		if _, err := w.Write(frame); err != nil {
			return fail(err)
		}
		base := off + frameHeaderLen + int64(rowsOff)
		rowBytes := int64(r.arity) * 4
		for j, row := range sw.rows {
			sw.order = append(sw.order, uint64(base+int64(j)*rowBytes)<<1)
			sw.hashes = append(sw.hashes, intern.HashRow(row))
		}
		off += int64(len(frame))
		swaps = append(swaps, sw)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}

	// New empty log, synced before the flip.
	logPath := filepath.Join(ds.dir, segName("log", newGen))
	lf, err := os.OpenFile(logPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fail(err)
	}
	if _, err := lf.Write([]byte(segMagic)); err == nil {
		err = lf.Sync()
	}
	if err != nil {
		lf.Close()
		os.Remove(logPath)
		return fail(err)
	}
	if err := writeCurrent(ds.dir, newGen); err != nil {
		lf.Close()
		os.Remove(logPath)
		return fail(err)
	}

	// The flip is durable; swap the resident state and drop the old files.
	oldSnap, oldLog, oldGen := ds.snapF, ds.logF, ds.gen
	ds.gen = newGen
	ds.snapF, ds.logF, ds.logOff = f, lf, int64(len(segMagic))
	ds.vids, ds.vidOf = newVids, newVidOf
	ds.deadRows = 0
	for _, sw := range swaps {
		r := sw.r
		r.order, r.hashes, r.dead = sw.order, sw.hashes, nil
		r.live = len(sw.order)
		size := uint32(relationMinTableDisk)
		for int(size)*3 < len(sw.order)*4 {
			size *= 2
		}
		r.resize(size)
		r.version++
	}
	if oldSnap != nil {
		oldSnap.Close()
		os.Remove(filepath.Join(ds.dir, segName("snap", oldGen)))
	}
	if oldLog != nil {
		oldLog.Close()
		os.Remove(filepath.Join(ds.dir, segName("log", oldGen)))
	}
	return nil
}

// Close implements Store. It waits for any background compaction, then
// closes the segment files. Unsynced log writes are flushed to the OS
// already (Apply writes through), so close loses nothing short of a machine
// crash.
func (ds *DiskStore) Close() error {
	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		return nil
	}
	ds.closed = true
	ds.mu.Unlock()
	ds.compWG.Wait()
	ds.mu.Lock()
	defer ds.mu.Unlock()
	var err error
	if ds.logF != nil {
		if !ds.opt.Sync {
			err = ds.logF.Sync() // best-effort durability on clean close
		}
		if e := ds.logF.Close(); err == nil {
			err = e
		}
	}
	if ds.snapF != nil {
		if e := ds.snapF.Close(); err == nil {
			err = e
		}
	}
	return err
}

// writeCurrent atomically publishes gen as the directory's current
// generation: tmp write, fsync, rename, directory fsync.
func writeCurrent(dir string, gen uint64) error {
	tmp := filepath.Join(dir, currentName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "%d\n", gen); err == nil {
		err = f.Sync()
	}
	if e := f.Close(); err == nil {
		err = e
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, currentName)); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory (best effort; not all platforms support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
