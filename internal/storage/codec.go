package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"algrec/internal/value"
)

// On-disk format of the disk backend's segment files (snap-N.seg, log-N.seg).
//
// A segment is an 8-byte header followed by a sequence of framed records:
//
//	header  = magic "ALRSEG1\n" (8 bytes)
//	frame   = [kind u8] [payload len u32 LE] [crc32(payload) u32 LE] [payload]
//
// Record kinds:
//
//	recValue — defines the next store-local value ID ("vid", dense from 1):
//	  payload = value kind byte, then
//	    bool:      1 byte (0/1)
//	    int:       zigzag varint
//	    string:    uvarint len + bytes
//	    tuple/set: uvarint count + that many uvarint child vids (already
//	               defined — values are emitted bottom-up)
//
//	recBatch — one atomically applied Batch:
//	  payload = uvarint nMutations, then per mutation:
//	    uvarint name len + name bytes
//	    uvarint arity
//	    flags byte (bit 0 = Reset, bit 1 = Drop)
//	    uvarint nDelete + nDelete rows
//	    uvarint nInsert + nInsert rows
//	  where each row is arity fixed u32 LE vids — fixed-width so a row at a
//	  known file offset can be read back with one ReadAt and no parsing of
//	  its neighbours.
//
//	recRel — a snapshot segment's full relation contents (same layout as one
//	  recBatch mutation with Reset implied and no deletes):
//	    uvarint name len + name, uvarint arity, uvarint nRows + rows.
//
// Durability is record-granular: a reader accepts the longest prefix of
// well-formed frames and treats the first short/garbled frame as the torn
// tail. Only recBatch changes visible state, so a crash between a value
// definition and the batch that uses it just leaves dead dictionary entries.

const segMagic = "ALRSEG1\n"

const (
	recValue = 1
	recBatch = 2
	recRel   = 3
)

// frameHeaderLen is the per-frame overhead: kind + len + crc.
const frameHeaderLen = 1 + 4 + 4

// maxFrameLen bounds a single frame payload (64 MiB) so a corrupt length
// field cannot drive a multi-gigabyte allocation during replay.
const maxFrameLen = 64 << 20

// appendFrame appends one framed record to b. Writers frame records in
// memory and write whole batches with a single file write, so a crash tears
// at most the last write's worth of frames.
func appendFrame(b []byte, kind byte, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	b = append(b, hdr[:]...)
	return append(b, payload...)
}

// readFrame reads the next frame from r. It returns io.EOF at a clean end of
// input and io.ErrUnexpectedEOF or errBadFrame for a torn/garbled frame —
// callers replaying a log treat all three as end-of-durable-prefix, while
// snapshot readers treat the latter two as corruption.
func readFrame(r io.Reader) (kind byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err // io.EOF: clean end
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n > maxFrameLen {
		return 0, nil, errBadFrame
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[5:9]) {
		return 0, nil, errBadFrame
	}
	return hdr[0], payload, nil
}

// errBadFrame marks a frame whose length or checksum is invalid.
var errBadFrame = fmt.Errorf("storage: bad segment frame")

// --- varint helpers over a byte cursor ---

func putUvarint(b []byte, x uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutUvarint(tmp[:], x)]...)
}

func putVarint(b []byte, x int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutVarint(tmp[:], x)]...)
}

// cursor is a bounds-checked reader over one record payload. Every decode
// error is sticky in err so callers can check once at the end.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("%w: truncated record payload", ErrCorrupt)
	}
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	x, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return x
}

func (c *cursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	x, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return x
}

func (c *cursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.b) {
		c.fail()
		return 0
	}
	b := c.b[c.off]
	c.off++
	return b
}

func (c *cursor) bytes(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.b) {
		c.fail()
		return nil
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u32() uint32 {
	b := c.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// --- value records ---

// appendValueRecord encodes one dictionary definition. The children of
// tuples/sets are referenced by their (already assigned) vids.
func appendValueRecord(b []byte, v value.Value, childVID func(i int) uint64, nChildren int) ([]byte, error) {
	switch vv := v.(type) {
	case value.Bool:
		b = append(b, byte(value.KindBool))
		if vv {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case value.Int:
		b = append(b, byte(value.KindInt))
		b = putVarint(b, int64(vv))
	case value.String:
		b = append(b, byte(value.KindString))
		b = putUvarint(b, uint64(len(vv)))
		b = append(b, vv...)
	case value.Tuple:
		b = append(b, byte(value.KindTuple))
		b = putUvarint(b, uint64(nChildren))
		for i := 0; i < nChildren; i++ {
			b = putUvarint(b, childVID(i))
		}
	case value.Set:
		b = append(b, byte(value.KindSet))
		b = putUvarint(b, uint64(nChildren))
		for i := 0; i < nChildren; i++ {
			b = putUvarint(b, childVID(i))
		}
	default:
		return nil, fmt.Errorf("storage: cannot persist value kind %T", v)
	}
	return b, nil
}

// decodedValue is a parsed recValue payload: either a scalar value, or a
// node kind plus child vids to be resolved against the dictionary.
type decodedValue struct {
	scalar value.Value
	kind   value.Kind // KindTuple or KindSet when scalar == nil
	kids   []uint64
}

func decodeValueRecord(payload []byte) (decodedValue, error) {
	c := &cursor{b: payload}
	var dv decodedValue
	switch k := value.Kind(c.byte()); k {
	case value.KindBool:
		dv.scalar = value.Bool(c.byte() != 0)
	case value.KindInt:
		dv.scalar = value.Int(c.varint())
	case value.KindString:
		dv.scalar = value.String(c.bytes(int(c.uvarint())))
	case value.KindTuple, value.KindSet:
		dv.kind = k
		n := c.uvarint()
		if c.err == nil && n > uint64(len(payload)) {
			c.fail()
		}
		dv.kids = make([]uint64, 0, n)
		for i := uint64(0); i < n && c.err == nil; i++ {
			dv.kids = append(dv.kids, c.uvarint())
		}
	default:
		return dv, fmt.Errorf("%w: unknown value kind %d", ErrCorrupt, k)
	}
	return dv, c.err
}

// --- batch records ---

// Bits of a mutation's flags byte.
const (
	mutFlagReset = 1
	mutFlagDrop  = 2
)

// encodedMutation mirrors Mutation with rows already translated to vids.
type encodedMutation struct {
	Rel    string
	Arity  int
	Reset  bool
	Drop   bool
	Delete [][]uint32
	Insert [][]uint32
}

// appendBatchRecord encodes a batch payload. rowOffsets, when non-nil,
// receives for each mutation the payload-relative byte offset of its first
// insert row — the writer adds the frame's file offset to index rows in
// place.
func appendBatchRecord(b []byte, ms []encodedMutation, insertOff []int) []byte {
	b = putUvarint(b, uint64(len(ms)))
	for i, m := range ms {
		b = putUvarint(b, uint64(len(m.Rel)))
		b = append(b, m.Rel...)
		b = putUvarint(b, uint64(m.Arity))
		var flags byte
		if m.Reset {
			flags |= mutFlagReset
		}
		if m.Drop {
			flags |= mutFlagDrop
		}
		b = append(b, flags)
		b = putUvarint(b, uint64(len(m.Delete)))
		for _, row := range m.Delete {
			b = appendRow(b, row)
		}
		b = putUvarint(b, uint64(len(m.Insert)))
		if insertOff != nil {
			insertOff[i] = len(b)
		}
		for _, row := range m.Insert {
			b = appendRow(b, row)
		}
	}
	return b
}

func appendRow(b []byte, row []uint32) []byte {
	for _, vid := range row {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], vid)
		b = append(b, tmp[:]...)
	}
	return b
}

// decodeBatchRecord parses a batch payload. insertOff, when non-nil, receives
// the payload-relative offset of each mutation's first insert row (parallel
// to the returned slice), for index rebuilding during replay.
func decodeBatchRecord(payload []byte) (ms []encodedMutation, insertOff []int, err error) {
	c := &cursor{b: payload}
	n := c.uvarint()
	if c.err == nil && n > uint64(len(payload)) {
		c.fail()
	}
	for i := uint64(0); i < n && c.err == nil; i++ {
		var m encodedMutation
		m.Rel = string(c.bytes(int(c.uvarint())))
		m.Arity = int(c.uvarint())
		flags := c.byte()
		m.Reset = flags&mutFlagReset != 0
		m.Drop = flags&mutFlagDrop != 0
		nd := c.uvarint()
		if bad(c, nd, m.Arity) {
			break
		}
		m.Delete = readRows(c, int(nd), m.Arity)
		ni := c.uvarint()
		if bad(c, ni, m.Arity) {
			break
		}
		insertOff = append(insertOff, c.off)
		m.Insert = readRows(c, int(ni), m.Arity)
		ms = append(ms, m)
	}
	if c.err != nil {
		return nil, nil, c.err
	}
	return ms, insertOff, nil
}

// decodeRelRecord parses a recRel payload.
func decodeRelRecord(payload []byte) (name string, arity int, rows [][]uint32, rowsOff int, err error) {
	c := &cursor{b: payload}
	name = string(c.bytes(int(c.uvarint())))
	arity = int(c.uvarint())
	n := c.uvarint()
	if bad(c, n, arity) {
		return "", 0, nil, 0, c.err
	}
	rowsOff = c.off
	rows = readRows(c, int(n), arity)
	if c.err != nil {
		return "", 0, nil, 0, c.err
	}
	return name, arity, rows, rowsOff, nil
}

// bad guards a declared row count against the remaining payload size (each
// row is arity*4 bytes) so a corrupt count fails fast instead of allocating.
func bad(c *cursor, n uint64, arity int) bool {
	if c.err != nil {
		return true
	}
	if n*uint64(arity)*4 > uint64(len(c.b)-c.off) {
		c.fail()
		return true
	}
	return false
}

func readRows(c *cursor, n, arity int) [][]uint32 {
	rows := make([][]uint32, 0, n)
	flat := make([]uint32, n*arity)
	for i := 0; i < n && c.err == nil; i++ {
		row := flat[i*arity : (i+1)*arity : (i+1)*arity]
		for j := 0; j < arity; j++ {
			row[j] = c.u32()
		}
		rows = append(rows, row)
	}
	return rows
}
