package storage

// Crash-recovery fault injection: a synced store's log is damaged at every
// byte — truncated tails, flipped bits — and the reopened store must equal a
// memory-backend replay of exactly the batches whose frames survive in the
// well-formed prefix. Nothing less (no lost durable batches), nothing more
// (no half-applied tails), and never a failed open for tail damage.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"algrec/internal/value/intern"
)

// crashScript builds a deterministic batch sequence with inserts, deletes,
// resets and several relations (including arity 0).
func crashScript() []Batch {
	in := intern.Global()
	rng := rand.New(rand.NewSource(17))
	num := func(n int) intern.ID { return in.InternInt(int64(n)) }
	var batches []Batch
	var liveA [][]intern.ID
	for i := 0; i < 12; i++ {
		var b Batch
		m := Mutation{Rel: "a", Arity: 2}
		if i == 6 {
			m.Reset = true
			liveA = nil
		}
		for j := 0; j < 3; j++ {
			row := []intern.ID{num(rng.Intn(20)), num(rng.Intn(20))}
			m.Insert = append(m.Insert, row)
			liveA = append(liveA, row)
		}
		if len(liveA) > 2 && rng.Intn(2) == 0 {
			m.Delete = append(m.Delete, liveA[rng.Intn(len(liveA))])
		}
		b = append(b, m)
		if i == 7 {
			// Drop "b" mid-stream; the i%3 branch recreates it at i == 9.
			b = append(b, Mutation{Rel: "b", Drop: true})
		}
		if i%3 == 0 {
			b = append(b, Mutation{Rel: "b", Arity: 1, Insert: [][]intern.ID{
				{tupleOf(in, num(i), num(i+1), num(i+2))},
			}})
		}
		if i%4 == 0 {
			mut := Mutation{Rel: "p", Arity: 0}
			if i%8 == 0 {
				mut.Insert = [][]intern.ID{{}}
			} else {
				mut.Delete = [][]intern.ID{{}}
			}
			b = append(b, mut)
		}
		batches = append(batches, b)
	}
	return batches
}

func tupleOf(in *intern.Interner, ids ...intern.ID) intern.ID {
	return in.InternTuple(ids...)
}

// writeCrashStore applies the script to a synced disk store at dir and
// returns the log path.
func writeCrashStore(t *testing.T, dir string, batches []Batch) string {
	t.Helper()
	st, err := OpenDisk(dir, DiskOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if err := st.Apply(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, segName("log", 1))
}

// durableBatches counts the recBatch frames in the log's well-formed prefix —
// the same rule replay uses, applied from outside.
func durableBatches(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != segMagic {
		return 0
	}
	br := bufio.NewReader(f)
	n := 0
	for {
		kind, _, err := readFrame(br)
		if err != nil {
			return n
		}
		switch kind {
		case recValue:
		case recBatch:
			n++
		default:
			// The kind byte is outside the CRC; replay treats an unknown
			// kind as the torn tail, and so must this count.
			return n
		}
	}
}

// expectedStore replays the first k script batches on the memory backend.
func expectedStore(t *testing.T, batches []Batch, k int) *Mem {
	t.Helper()
	m := NewMem(nil)
	for _, b := range batches[:k] {
		if err := m.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// storesEqual compares two stores' full observable state: relation listings
// and every relation's scan order.
func storesEqual(t *testing.T, tag string, got, want Store) {
	t.Helper()
	gi, err := got.Rels()
	if err != nil {
		t.Fatalf("%s: Rels(got): %v", tag, err)
	}
	wi, err := want.Rels()
	if err != nil {
		t.Fatalf("%s: Rels(want): %v", tag, err)
	}
	if len(gi) != len(wi) {
		t.Fatalf("%s: relations %v vs %v", tag, gi, wi)
	}
	for i := range gi {
		if gi[i] != wi[i] {
			t.Fatalf("%s: relation info %+v vs %+v", tag, gi[i], wi[i])
		}
		gr, _, _ := got.Rel(gi[i].Name)
		wr, _, _ := want.Rel(gi[i].Name)
		var grows, wrows [][]intern.ID
		collect := func(dst *[][]intern.ID) func([]intern.ID) bool {
			return func(row []intern.ID) bool {
				cp := make([]intern.ID, len(row))
				copy(cp, row)
				*dst = append(*dst, cp)
				return true
			}
		}
		if err := gr.Scan(collect(&grows)); err != nil {
			t.Fatalf("%s: scan got %q: %v", tag, gi[i].Name, err)
		}
		if err := wr.Scan(collect(&wrows)); err != nil {
			t.Fatalf("%s: scan want %q: %v", tag, gi[i].Name, err)
		}
		if len(grows) != len(wrows) {
			t.Fatalf("%s: relation %q: %d rows vs %d", tag, gi[i].Name, len(grows), len(wrows))
		}
		for j := range grows {
			if !idRowsEqual(grows[j], wrows[j]) {
				t.Fatalf("%s: relation %q row %d: %v vs %v", tag, gi[i].Name, j, grows[j], wrows[j])
			}
		}
	}
}

// copyStoreDir clones a store directory for one fault injection.
func copyStoreDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestCrashRecoveryTruncatedTail(t *testing.T) {
	src := t.TempDir()
	batches := crashScript()
	logPath := writeCrashStore(t, src, batches)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	total := durableBatches(t, logPath)
	if total != len(batches) {
		t.Fatalf("clean log has %d durable batches, want %d", total, len(batches))
	}

	for off := len(segMagic); off <= len(full); off++ {
		dir := copyStoreDir(t, src)
		lp := filepath.Join(dir, segName("log", 1))
		if err := os.Truncate(lp, int64(off)); err != nil {
			t.Fatal(err)
		}
		k := durableBatches(t, lp)
		st, err := OpenDisk(dir, DiskOptions{})
		if err != nil {
			t.Fatalf("truncate at %d: open failed: %v", off, err)
		}
		storesEqual(t, "truncate", st, expectedStore(t, batches, k))
		st.Close()
	}
}

func TestCrashRecoveryFlippedTailBits(t *testing.T) {
	src := t.TempDir()
	batches := crashScript()
	logPath := writeCrashStore(t, src, batches)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in each byte of the last quarter of the log (a torn
	// multi-sector write can scramble, not just shorten).
	for off := len(full) * 3 / 4; off < len(full); off++ {
		dir := copyStoreDir(t, src)
		lp := filepath.Join(dir, segName("log", 1))
		damaged := append([]byte(nil), full...)
		damaged[off] ^= 0x40
		if err := os.WriteFile(lp, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		k := durableBatches(t, lp)
		st, err := OpenDisk(dir, DiskOptions{})
		if err != nil {
			t.Fatalf("flip at %d: open failed: %v", off, err)
		}
		storesEqual(t, fmt.Sprintf("bitflip@%d k=%d", off, k), st, expectedStore(t, batches, k))
		// The torn suffix must have been truncated away: appending new
		// batches and reopening must still agree with the memory replay.
		extra := Batch{{Rel: "z", Arity: 1, Insert: [][]intern.ID{{intern.Global().InternInt(1)}}}}
		if err := st.Apply(extra); err != nil {
			t.Fatalf("flip at %d: post-recovery apply: %v", off, err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st2, err := OpenDisk(dir, DiskOptions{})
		if err != nil {
			t.Fatalf("flip at %d: second open: %v", off, err)
		}
		want := expectedStore(t, batches, k)
		if err := want.Apply(extra); err != nil {
			t.Fatal(err)
		}
		storesEqual(t, "bitflip+append", st2, want)
		st2.Close()
	}
}

func TestCrashRecoveryShortHeader(t *testing.T) {
	src := t.TempDir()
	batches := crashScript()
	writeCrashStore(t, src, batches)
	for _, size := range []int64{0, 3, 7} {
		dir := copyStoreDir(t, src)
		if err := os.Truncate(filepath.Join(dir, segName("log", 1)), size); err != nil {
			t.Fatal(err)
		}
		st, err := OpenDisk(dir, DiskOptions{})
		if err != nil {
			t.Fatalf("header truncated to %d: %v", size, err)
		}
		storesEqual(t, "short-header", st, expectedStore(t, batches, 0))
		st.Close()
	}
}

func TestCorruptSnapshotIsRefused(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range crashScript() {
		if err := st.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, segName("snap", 2))
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Unlike the log, the snapshot was fully synced before CURRENT named it:
	// damage anywhere in it is corruption, not a torn tail.
	for _, off := range []int{2, len(data) / 2, len(data) - 1} {
		damaged := append([]byte(nil), data...)
		damaged[off] ^= 0x01
		if err := os.WriteFile(snap, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDisk(dir, DiskOptions{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip snap byte %d: err = %v, want ErrCorrupt", off, err)
		}
	}
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatalf("restored snapshot refused: %v", err)
	}
	st2.Close()
}

func TestStrayGenerationFilesRemoved(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(Batch{{Rel: "a", Arity: 1, Insert: [][]intern.ID{{intern.Global().InternInt(7)}}}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Leftovers of a compaction that crashed mid-flight.
	for _, name := range []string{"snap-2.seg", "log-2.seg", "CURRENT.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for _, name := range []string{"snap-2.seg", "log-2.seg", "CURRENT.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("stray file %s survived reopen", name)
		}
	}
	r, ok, _ := st2.Rel("a")
	if !ok || r.Len() != 1 {
		t.Fatal("state lost while cleaning strays")
	}
}
