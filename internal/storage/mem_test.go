package storage_test

import (
	"testing"

	"algrec/internal/storage"
	"algrec/internal/storage/storagetest"
)

func TestMemConformance(t *testing.T) {
	storagetest.Run(t, func(t *testing.T) (storage.Store, func() storage.Store) {
		return storage.NewMem(nil), nil
	})
}
