package storage

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"algrec/internal/value"
	"algrec/internal/value/intern"
)

// DiskOptions configures a disk store.
type DiskOptions struct {
	// Sync fsyncs the log after every Apply. Off by default: the OS decides
	// when batches become durable, and recovery still sees a well-formed
	// prefix (frames are CRC-guarded); tests that assert exact durability
	// turn it on.
	Sync bool
	// Interner supplies the value vocabulary; nil means the process-global
	// interner.
	Interner *intern.Interner
}

// DiskStore is the on-disk backend: an append-only log of framed records
// (see codec.go) under a generation scheme —
//
//	CURRENT     the current generation number N (written via tmp+rename)
//	snap-N.seg  generation N's checkpoint: value dictionary + full relations
//	log-N.seg   generation N's log: dictionary growth + applied batches
//
// Row payloads live only in the segment files; what stays resident is the
// value dictionary (store-vid <-> interned ID, both directions) and one
// open-addressed index per relation whose entries are 8-byte file references
// (offset plus which segment), plus the insertion-order ref list scans
// follow. Snapshot() writes a new generation — re-emitting only the values
// live rows still reach — then atomically flips CURRENT and deletes the old
// files; Apply triggers it in the background once dead log rows outnumber
// live ones.
type DiskStore struct {
	dir string
	opt DiskOptions
	in  *intern.Interner

	mu     sync.RWMutex
	broken error // sticky first I/O failure; every later call returns it
	closed bool

	gen    uint64
	snapF  *os.File // read-only checkpoint segment; nil when the generation has none
	logF   *os.File
	logOff int64 // append position == durable+buffered length of logF

	vids  []intern.ID           // store-vid -> process intern ID
	vidOf map[intern.ID]uint32  // process intern ID -> store-vid
	rels  map[string]*diskRel

	deadRows   int // log rows no longer reachable (deleted, superseded, reset away)
	compacting bool
	compWG     sync.WaitGroup
}

// diskRel is one relation's resident index. The struct survives Reset and
// compaction (only its slices are replaced), so Relation handles observe
// later mutations.
type diskRel struct {
	ds    *DiskStore
	name  string
	arity int

	// order holds one file ref per inserted row, in insertion order; dead is
	// a tombstone bitmap over it; hashes caches each row's intern.HashRow so
	// index probes only touch the disk to confirm an exact hash match.
	order  []uint64
	hashes []uint64
	dead   []uint64
	live   int

	// table is the open-addressed index: slot values are order-index+2,
	// 0 = empty, 1 = tombstone.
	table []uint32
	used  uint32
	mask  uint32

	version    uint64
	idxMu      sync.Mutex
	idxVersion uint64
	colIdx     map[int]map[intern.ID][]int32
}

const (
	currentName  = "CURRENT"
	diskSlotTomb = 1
	// compactMinDead is the floor below which dead rows never trigger a
	// background compaction.
	compactMinDead = 1 << 12
)

func segName(kind string, gen uint64) string {
	return fmt.Sprintf("%s-%d.seg", kind, gen)
}

// OpenDisk opens (or creates) the disk store rooted at dir, recovering to
// the last durable state: the current generation's snapshot plus the replay
// of the longest well-formed log prefix. A torn log tail is truncated away;
// a damaged snapshot or an undecodable record before the tail returns
// ErrCorrupt.
func OpenDisk(dir string, opt DiskOptions) (*DiskStore, error) {
	in := opt.Interner
	if in == nil {
		in = intern.Global()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ds := &DiskStore{
		dir:   dir,
		opt:   opt,
		in:    in,
		vidOf: map[intern.ID]uint32{},
		rels:  map[string]*diskRel{},
	}
	cur, err := os.ReadFile(filepath.Join(dir, currentName))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		ds.gen = 1
		if err := ds.createLog(); err != nil {
			return nil, err
		}
		if err := writeCurrent(dir, ds.gen); err != nil {
			ds.logF.Close()
			return nil, err
		}
		return ds, nil
	case err != nil:
		return nil, err
	}
	ds.gen, err = strconv.ParseUint(strings.TrimSpace(string(cur)), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: unreadable CURRENT: %v", ErrCorrupt, err)
	}
	ds.removeStray()
	if err := ds.openSnap(); err != nil {
		return nil, err
	}
	if err := ds.openLog(); err != nil {
		if ds.snapF != nil {
			ds.snapF.Close()
		}
		return nil, err
	}
	return ds, nil
}

// Dir returns the store's root directory.
func (ds *DiskStore) Dir() string { return ds.dir }

// removeStray deletes segment files of other generations — leftovers of a
// compaction that crashed before (or after) flipping CURRENT.
func (ds *DiskStore) removeStray() {
	ents, err := os.ReadDir(ds.dir)
	if err != nil {
		return
	}
	keep := map[string]bool{
		currentName:            true,
		segName("snap", ds.gen): true,
		segName("log", ds.gen):  true,
	}
	for _, e := range ents {
		if !keep[e.Name()] {
			os.Remove(filepath.Join(ds.dir, e.Name()))
		}
	}
}

// createLog creates the current generation's empty log (header only) and
// syncs it.
func (ds *DiskStore) createLog() error {
	f, err := os.OpenFile(filepath.Join(ds.dir, segName("log", ds.gen)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	ds.logF, ds.logOff = f, int64(len(segMagic))
	return nil
}

// openSnap loads the generation's snapshot segment if one exists. Snapshot
// segments are fully synced before CURRENT references them, so any defect is
// corruption, never a torn tail.
func (ds *DiskStore) openSnap() error {
	f, err := os.Open(filepath.Join(ds.dir, segName("snap", ds.gen)))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := ds.loadSnap(f); err != nil {
		f.Close()
		return err
	}
	ds.snapF = f
	return nil
}

func (ds *DiskStore) loadSnap(f *os.File) error {
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != segMagic {
		return fmt.Errorf("%w: snapshot header", ErrCorrupt)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	off := int64(len(segMagic))
	for {
		kind, payload, err := readFrame(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: snapshot frame at %d: %v", ErrCorrupt, off, err)
		}
		dataOff := off + frameHeaderLen
		off = dataOff + int64(len(payload))
		switch kind {
		case recValue:
			if err := ds.addDictEntry(payload); err != nil {
				return err
			}
		case recRel:
			name, arity, rows, rowsOff, err := decodeRelRecord(payload)
			if err != nil {
				return err
			}
			r := ds.rel(name, arity)
			r.reset(arity)
			base := dataOff + int64(rowsOff)
			if err := ds.insertRows(r, rows, base, 0); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: snapshot record kind %d", ErrCorrupt, kind)
		}
	}
}

// openLog opens the generation's log, replays its well-formed prefix and
// truncates any torn tail.
func (ds *DiskStore) openLog() error {
	path := filepath.Join(ds.dir, segName("log", ds.gen))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if st.Size() < int64(len(segMagic)) {
		// The header write itself was torn: the durable prefix is empty.
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt([]byte(segMagic), 0)
		}
		if err != nil {
			f.Close()
			return err
		}
		ds.logF, ds.logOff = f, int64(len(segMagic))
		return nil
	}
	var magic [8]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil || string(magic[:]) != segMagic {
		f.Close()
		return fmt.Errorf("%w: log header", ErrCorrupt)
	}
	// Replay probes read already-replayed rows back through the index, so
	// the handle must be installed before replay starts.
	ds.logF = f
	durable, err := ds.replayLog(f)
	if err != nil {
		f.Close()
		ds.logF = nil
		return err
	}
	if durable < st.Size() {
		if err := f.Truncate(durable); err != nil {
			f.Close()
			ds.logF = nil
			return err
		}
	}
	ds.logOff = durable
	return nil
}

// replayLog applies the log's record sequence to the in-memory state and
// returns the end offset of the longest well-formed prefix. Anything
// undecodable — short frame, failed CRC, out-of-range dictionary reference —
// ends the prefix there.
func (ds *DiskStore) replayLog(f *os.File) (int64, error) {
	if _, err := f.Seek(int64(len(segMagic)), io.SeekStart); err != nil {
		return 0, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	off := int64(len(segMagic))
	for {
		kind, payload, err := readFrame(br)
		if err != nil {
			return off, nil // io.EOF, torn or garbled: prefix ends here
		}
		dataOff := off + frameHeaderLen
		end := dataOff + int64(len(payload))
		switch kind {
		case recValue:
			if ds.addDictEntry(payload) != nil {
				return off, nil
			}
		case recBatch:
			ms, insertOff, err := decodeBatchRecord(payload)
			if err != nil || ds.checkEncoded(ms) != nil {
				return off, nil
			}
			for i, m := range ms {
				if err := ds.applyEncoded(m, dataOff+int64(insertOff[i]), 1); err != nil {
					// checkEncoded vetted the batch; a failure here is an
					// internal invariant break, not torn input.
					return 0, err
				}
			}
		default:
			return off, nil
		}
		off = end
	}
}

// addDictEntry decodes a recValue payload, interns the value it defines and
// assigns it the next store-vid.
func (ds *DiskStore) addDictEntry(payload []byte) error {
	dv, err := decodeValueRecord(payload)
	if err != nil {
		return err
	}
	var id intern.ID
	if dv.scalar != nil {
		id = ds.in.Intern(dv.scalar)
	} else {
		kids := make([]intern.ID, len(dv.kids))
		for i, kv := range dv.kids {
			if kv >= uint64(len(ds.vids)) {
				return fmt.Errorf("%w: value record references undefined vid %d", ErrCorrupt, kv)
			}
			kids[i] = ds.vids[kv]
		}
		if dv.kind == value.KindTuple {
			id = ds.in.InternTuple(kids...)
		} else {
			id = ds.in.InternSet(kids...)
		}
	}
	ds.vidOf[id] = uint32(len(ds.vids))
	ds.vids = append(ds.vids, id)
	return nil
}

// checkEncoded validates a decoded batch against the current state — every
// vid defined, arities consistent — before any of it is applied, so replay
// keeps Apply's all-or-nothing contract.
func (ds *DiskStore) checkEncoded(ms []encodedMutation) error {
	arities := map[string]int{}
	for name, r := range ds.rels {
		arities[name] = r.arity
	}
	n := uint64(len(ds.vids))
	for _, m := range ms {
		if m.Drop {
			delete(arities, m.Rel)
			continue
		}
		if a, ok := arities[m.Rel]; ok && !m.Reset && a != m.Arity {
			return errArity(m.Rel, a, m.Arity)
		}
		arities[m.Rel] = m.Arity
		for _, rows := range [2][][]uint32{m.Delete, m.Insert} {
			for _, row := range rows {
				for _, vid := range row {
					if uint64(vid) >= n {
						return fmt.Errorf("%w: batch references undefined vid %d", ErrCorrupt, vid)
					}
				}
			}
		}
	}
	return nil
}

// rel returns the named relation's index struct, creating it (empty, with
// the given arity) if absent.
func (ds *DiskStore) rel(name string, arity int) *diskRel {
	r, ok := ds.rels[name]
	if !ok {
		r = &diskRel{ds: ds, name: name}
		r.reset(arity)
		ds.rels[name] = r
	}
	return r
}

// reset reinitializes the relation to empty with the given arity.
func (r *diskRel) reset(arity int) {
	r.ds.deadRows += r.live
	r.arity = arity
	r.order, r.hashes, r.dead = nil, nil, nil
	r.live = 0
	r.table = make([]uint32, relationMinTableDisk)
	r.used, r.mask = 0, relationMinTableDisk-1
	r.version++
}

const relationMinTableDisk = 16

// rowIDs translates a vid row to interned IDs (into dst).
func (ds *DiskStore) rowIDs(row []uint32, dst []intern.ID) ([]intern.ID, error) {
	dst = dst[:0]
	for _, vid := range row {
		if uint64(vid) >= uint64(len(ds.vids)) {
			return nil, fmt.Errorf("%w: row references undefined vid %d", ErrCorrupt, vid)
		}
		dst = append(dst, ds.vids[vid])
	}
	return dst, nil
}

// applyEncoded applies one mutation's in-memory effects. base is the file
// offset of its first insert row; fileBit says which segment the rows were
// written to (0 snapshot, 1 log).
func (ds *DiskStore) applyEncoded(m encodedMutation, base int64, fileBit uint64) error {
	if m.Drop {
		if r, ok := ds.rels[m.Rel]; ok {
			ds.deadRows += r.live
			delete(ds.rels, m.Rel)
		}
		return nil
	}
	r, existed := ds.rels[m.Rel]
	if !existed {
		r = ds.rel(m.Rel, m.Arity)
	}
	if m.Reset {
		r.reset(m.Arity)
	} else if r.arity != m.Arity {
		return errArity(m.Rel, r.arity, m.Arity)
	}
	if m.Arity == 0 {
		if len(m.Delete) > 0 && r.live > 0 {
			r.live = 0
			ds.deadRows++
		}
		if len(m.Insert) > 0 && r.live == 0 {
			r.live = 1
		}
		r.version++
		return nil
	}
	var (
		idbuf = make([]intern.ID, 0, m.Arity)
		pbuf  = make([]intern.ID, m.Arity)
		bbuf  = make([]byte, m.Arity*4)
		err   error
	)
	for _, row := range m.Delete {
		idbuf, err = ds.rowIDs(row, idbuf)
		if err != nil {
			return err
		}
		if err := r.delete(idbuf, pbuf, bbuf); err != nil {
			return err
		}
	}
	if err := ds.insertRowsEnc(r, m.Insert, base, fileBit, idbuf, pbuf, bbuf); err != nil {
		return err
	}
	r.version++
	return nil
}

// insertRowsEnc inserts vid rows whose payloads start at base.
func (ds *DiskStore) insertRowsEnc(r *diskRel, rows [][]uint32, base int64, fileBit uint64, idbuf, pbuf []intern.ID, bbuf []byte) error {
	rowBytes := int64(r.arity) * 4
	for j, row := range rows {
		ids, err := ds.rowIDs(row, idbuf)
		if err != nil {
			return err
		}
		ref := uint64(base+int64(j)*rowBytes)<<1 | fileBit
		added, err := r.insert(ids, ref, pbuf, bbuf)
		if err != nil {
			return err
		}
		if !added {
			ds.deadRows++ // the logged row duplicates a live one
		}
	}
	return nil
}

// insertRows is insertRowsEnc for snapshot loading (fileBit 0, fresh bufs).
func (ds *DiskStore) insertRows(r *diskRel, rows [][]uint32, base int64, fileBit uint64) error {
	if r.arity == 0 {
		if len(rows) > 0 {
			r.live = 1
		}
		return nil
	}
	return ds.insertRowsEnc(r, rows, base, fileBit,
		make([]intern.ID, 0, r.arity), make([]intern.ID, r.arity), make([]byte, r.arity*4))
}
