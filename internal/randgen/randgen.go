// Package randgen generates seeded, size-budgeted random instances for the
// differential testing of the theorem oracles (see internal/diffcheck): com-
// plex-object databases, algebra and IFP-algebra expressions, algebra=
// programs with recursive definitions, and Datalog¬ programs with controlled
// polarity and stratifiability.
//
// Every generator is a pure function of (seed, Config): the same inputs
// always produce the same instance, byte for byte, across processes and
// platforms (only math/rand with a fixed source is used, and no map
// iteration order leaks into output). The pinned-corpus tests in
// pin_test.go enforce this, so a refactor of the generator cannot silently
// re-roll the committed fuzz corpora.
//
// Construction is type-directed. Expressions carry an element shape (int or
// pair-of-ints); each operator is only emitted where its operand shapes make
// the result well-kinded, so generated expressions never fail evaluation
// with kind errors. All integer arithmetic is passed through mod-c with a
// small positive c, which keeps the active domain finite and every IFP
// convergent within modest budgets (the paper's framework allows divergent
// fixpoints; finite instances keep the differential harness fast). Datalog
// rules are safe by construction in the sense of Definition 4.1: bodies
// start with positive atoms binding every variable, and comparisons, negated
// atoms and head arguments use bound variables only.
package randgen

import (
	"math/rand"
)

// Config bounds the size of generated instances.
type Config struct {
	// Size is the overall size budget, 1 (tiny) to 8 (large). Zero means 2.
	// It scales relation cardinalities, rule counts and expression depth.
	Size int
}

// withDefaults returns the config with zero fields replaced by defaults and
// the size clamped to [1, 8].
func (c Config) withDefaults() Config {
	if c.Size == 0 {
		c.Size = 2
	}
	if c.Size < 1 {
		c.Size = 1
	}
	if c.Size > 8 {
		c.Size = 8
	}
	return c
}

// Gen is a deterministic instance generator: a seeded random source plus a
// size budget. It is not safe for concurrent use; create one per goroutine.
type Gen struct {
	r   *rand.Rand
	cfg Config
}

// New returns a generator for the given seed and config. Equal seeds and
// configs yield generators producing identical instance streams.
func New(seed int64, cfg Config) *Gen {
	return &Gen{r: rand.New(rand.NewSource(seed)), cfg: cfg.withDefaults()}
}

// intn is rand.Intn with the receiver's source.
func (g *Gen) intn(n int) int { return g.r.Intn(n) }

// chance reports true with probability 1/n.
func (g *Gen) chance(n int) bool { return g.r.Intn(n) == 0 }
