package randgen

import (
	"strconv"

	"algrec/internal/algebra"
	"algrec/internal/core"
	"algrec/internal/value"
)

// shape is the element type of a set-valued expression: plain integers or
// pairs of integers. Tracking it during generation is what makes the output
// well-kinded — σ tests and MAP bodies only project fields that exist and
// only do arithmetic on integers.
type shape uint8

const (
	shInt shape = iota
	shPair
)

// scopeEntry is one named set visible to an expression: a database relation,
// a defined constant, or an enclosing IFP variable, with its element shape.
type scopeEntry struct {
	name string
	sh   shape
}

// ExprInstance is a generated database plus an expression over it.
type ExprInstance struct {
	DB   algebra.DB
	Expr algebra.Expr
}

// CoreInstance is a generated database plus an algebra= program over it.
type CoreInstance struct {
	DB   algebra.DB
	Prog *core.Program
}

// exprGen holds the per-instance generation state: the active integer domain
// [0, n) and a counter for fresh IFP variable names.
type exprGen struct {
	g    *Gen
	n    int // integer constants range over [0, n)
	vars int
}

func (x *exprGen) fresh() string {
	x.vars++
	return "v" + strconv.Itoa(x.vars)
}

// randInt returns a random integer value in the active domain.
func (x *exprGen) randInt() value.Value { return value.Int(int64(x.g.intn(x.n))) }

// randElem returns a random element of the given shape.
func (x *exprGen) randElem(sh shape) value.Value {
	if sh == shPair {
		return value.Pair(x.randInt(), x.randInt())
	}
	return x.randInt()
}

// randSet returns a random set of elements of the given shape, possibly
// empty (empty relations are a prime source of edge cases).
func (x *exprGen) randSet(sh shape) value.Set {
	k := x.g.intn(2 * x.g.cfg.Size)
	b := value.NewSetBuilder(k)
	for i := 0; i < k; i++ {
		b.Add(x.randElem(sh))
	}
	return b.Set()
}

// db generates a database of two integer-shaped and two pair-shaped
// relations, returning it with the matching scope.
func (x *exprGen) db() (algebra.DB, []scopeEntry) {
	db := algebra.DB{}
	var scope []scopeEntry
	for _, e := range []scopeEntry{{"a", shInt}, {"b", shInt}, {"e", shPair}, {"f", shPair}} {
		db[e.name] = x.randSet(e.sh)
		scope = append(scope, e)
	}
	return db, scope
}

// leaf emits a depth-0 expression: a scoped relation of the wanted shape
// when one exists (usually), otherwise a literal set.
func (x *exprGen) leaf(sh shape, scope []scopeEntry) algebra.Expr {
	var names []string
	for _, e := range scope {
		if e.sh == sh {
			names = append(names, e.name)
		}
	}
	if len(names) > 0 && !x.g.chance(4) {
		return algebra.Rel{Name: names[x.g.intn(len(names))]}
	}
	return algebra.Lit{Set: x.randSet(sh)}
}

// test generates a selection test over an element variable of the shape.
func (x *exprGen) test(sh shape, v string, depth int) algebra.FExpr {
	elem := func() algebra.FExpr {
		if sh == shPair {
			return algebra.FField{Of: algebra.FVar{Name: v}, Idx: 1 + x.g.intn(2)}
		}
		return algebra.FVar{Name: v}
	}
	atom := func() algebra.FExpr {
		op := algebra.CmpOp(x.g.intn(6))
		switch x.g.intn(3) {
		case 0: // compare against a constant
			return algebra.FCmp{Op: op, L: elem(), R: algebra.FConst{V: x.randInt()}}
		case 1: // parity test: elem % 2 = 0
			return algebra.FCmp{Op: algebra.OpEq,
				L: algebra.FArith{Op: algebra.OpMod, L: elem(), R: algebra.FConst{V: value.Int(2)}},
				R: algebra.FConst{V: value.Int(0)}}
		default: // compare two projections (or the variable against itself)
			return algebra.FCmp{Op: op, L: elem(), R: elem()}
		}
	}
	if depth <= 0 || !x.g.chance(3) {
		return atom()
	}
	l, r := x.test(sh, v, depth-1), x.test(sh, v, depth-1)
	switch x.g.intn(3) {
	case 0:
		return algebra.FAnd{L: l, R: r}
	case 1:
		return algebra.FOr{L: l, R: r}
	default:
		return algebra.FNot{E: l}
	}
}

// out generates a MAP body restructuring an element of shape from into an
// element of shape to. All arithmetic is reduced mod a small constant, so
// mapped sets stay inside a finite domain and fixpoints converge.
func (x *exprGen) out(from, to shape, v string) algebra.FExpr {
	c := algebra.FConst{V: value.Int(int64(1 + x.g.intn(x.n)))}
	modc := func(e algebra.FExpr) algebra.FExpr {
		return algebra.FArith{Op: algebra.OpMod, L: e, R: algebra.FConst{V: value.Int(int64(x.n))}}
	}
	var fst, snd algebra.FExpr
	if from == shPair {
		fst = algebra.FField{Of: algebra.FVar{Name: v}, Idx: 1}
		snd = algebra.FField{Of: algebra.FVar{Name: v}, Idx: 2}
	} else {
		fst, snd = algebra.FVar{Name: v}, algebra.FVar{Name: v}
	}
	comp := func() algebra.FExpr {
		switch x.g.intn(4) {
		case 0:
			return fst
		case 1:
			return snd
		case 2:
			return modc(algebra.FArith{Op: algebra.OpPlus, L: fst, R: c})
		default:
			return modc(algebra.FArith{Op: algebra.OpPlus, L: fst, R: snd})
		}
	}
	if to == shPair {
		return algebra.FTuple{Elems: []algebra.FExpr{comp(), comp()}}
	}
	return comp()
}

// expr generates an expression of the given shape with the given remaining
// depth over the scope.
func (x *exprGen) expr(sh shape, depth int, scope []scopeEntry) algebra.Expr {
	if depth <= 0 || x.g.chance(6) {
		return x.leaf(sh, scope)
	}
	// Operator weights: binary set operators and σ dominate; × only builds
	// pairs; IFP appears often enough to exercise every fixpoint path.
	for {
		switch x.g.intn(7) {
		case 0:
			return algebra.Union{L: x.expr(sh, depth-1, scope), R: x.expr(sh, depth-1, scope)}
		case 1:
			return algebra.Diff{L: x.expr(sh, depth-1, scope), R: x.expr(sh, depth-1, scope)}
		case 2:
			if sh != shPair {
				continue
			}
			if x.g.chance(2) {
				return x.joinPipeline(depth-1, scope)
			}
			return algebra.Product{L: x.expr(shInt, depth-1, scope), R: x.expr(shInt, depth-1, scope)}
		case 3:
			v := x.fresh()
			return algebra.Select{Of: x.expr(sh, depth-1, scope), Var: v, Test: x.test(sh, v, 1)}
		case 4:
			from := shape(x.g.intn(2))
			v := x.fresh()
			return algebra.Map{Of: x.expr(from, depth-1, scope), Var: v, Out: x.out(from, sh, v)}
		case 5:
			v := x.fresh()
			inner := append(append([]scopeEntry{}, scope...), scopeEntry{v, sh})
			return algebra.IFP{Var: v, Body: x.expr(sh, depth-1, inner)}
		default:
			return x.leaf(sh, scope)
		}
	}
}

// joinPipeline emits the streaming runtime's target shape — σ over a
// (possibly nested) product of integer-shaped leaves — with a test mixing
// cross-leaf equalities (hash-join edges), single-leaf conjuncts (pushdown
// candidates), and constant comparisons, so the differential oracles
// exercise multi-leaf plans, not just whatever σ(×) falls out of the
// generic recursion. Every projection path is integer-typed, so the test
// never errors and the streamed and materialized pipelines stay comparable
// beyond budget boundaries. The result shape is shPair.
func (x *exprGen) joinPipeline(depth int, scope []scopeEntry) algebra.Expr {
	v := x.fresh()
	path := func(idx ...int) algebra.FExpr {
		var e algebra.FExpr = algebra.FVar{Name: v}
		for _, i := range idx {
			e = algebra.FField{Of: e, Idx: i}
		}
		return e
	}
	atom := func(e algebra.FExpr) algebra.FExpr {
		if x.g.chance(2) {
			return algebra.FCmp{Op: algebra.CmpOp(x.g.intn(6)), L: e, R: algebra.FConst{V: x.randInt()}}
		}
		return algebra.FCmp{Op: algebra.OpEq,
			L: algebra.FArith{Op: algebra.OpMod, L: e, R: algebra.FConst{V: value.Int(2)}},
			R: algebra.FConst{V: value.Int(0)}}
	}
	conj := func(atoms []algebra.FExpr) algebra.FExpr {
		t := atoms[0]
		for _, a := range atoms[1:] {
			t = algebra.FAnd{L: t, R: a}
		}
		return t
	}
	leaf := func() algebra.Expr { return x.expr(shInt, depth-1, scope) }
	if depth >= 1 && x.g.chance(3) {
		// Three leaves: σ over a nested product, then MAP projects the
		// triple back onto a pair of integers so the result is well-kinded.
		atoms := []algebra.FExpr{algebra.FCmp{Op: algebra.OpEq, L: path(1, 2), R: path(2)}}
		if x.g.chance(2) {
			atoms = append(atoms, algebra.FCmp{Op: algebra.OpEq, L: path(1, 1), R: path(2)})
		}
		for _, pp := range [][]int{{1, 1}, {1, 2}, {2}} {
			if x.g.chance(2) {
				atoms = append(atoms, atom(path(pp...)))
			}
		}
		sel := algebra.Select{
			Of:   algebra.Product{L: algebra.Product{L: leaf(), R: leaf()}, R: leaf()},
			Var:  v,
			Test: conj(atoms),
		}
		w := x.fresh()
		return algebra.Map{Of: sel, Var: w, Out: algebra.FTuple{Elems: []algebra.FExpr{
			algebra.FField{Of: algebra.FField{Of: algebra.FVar{Name: w}, Idx: 1}, Idx: 1},
			algebra.FField{Of: algebra.FVar{Name: w}, Idx: 2},
		}}}
	}
	var atoms []algebra.FExpr
	if x.g.chance(4) {
		atoms = append(atoms, algebra.FCmp{Op: algebra.OpLe, L: path(1), R: path(2)})
	} else {
		atoms = append(atoms, algebra.FCmp{Op: algebra.OpEq, L: path(1), R: path(2)})
	}
	for _, pp := range [][]int{{1}, {2}} {
		if x.g.chance(2) {
			atoms = append(atoms, atom(path(pp...)))
		}
	}
	return algebra.Select{Of: algebra.Product{L: leaf(), R: leaf()}, Var: v, Test: conj(atoms)}
}

// newExprGen starts per-instance state: the integer domain scales with the
// size budget.
func (g *Gen) newExprGen() *exprGen {
	return &exprGen{g: g, n: 2 + g.intn(1+g.cfg.Size)}
}

// depth returns the expression depth budget for the configured size.
func (g *Gen) depth() int { return 2 + g.cfg.Size/2 }

// ExprInstance generates a database and a well-kinded expression over it, of
// a random element shape. Expressions may contain IFP (including non-positive
// bodies — IFP is inflationary regardless) but no Call and no Flip.
func (g *Gen) ExprInstance() *ExprInstance {
	x := g.newExprGen()
	db, scope := x.db()
	return &ExprInstance{DB: db, Expr: x.expr(shape(g.intn(2)), g.depth(), scope)}
}

// IFPExprInstance generates a database and an expression guaranteed to
// contain at least one IFP operator: the top level is an IFP whose body is
// generated normally. This is the instance family for the Theorem 3.5
// elimination oracle, where the IFP operator is the whole point.
func (g *Gen) IFPExprInstance() *ExprInstance {
	x := g.newExprGen()
	db, scope := x.db()
	sh := shape(g.intn(2))
	v := x.fresh()
	inner := append(append([]scopeEntry{}, scope...), scopeEntry{v, sh})
	e := algebra.IFP{Var: v, Body: x.expr(sh, g.depth()-1, inner)}
	return &ExprInstance{DB: db, Expr: e}
}

// CoreInstance generates a database and an algebra= program over it: a block
// of mutually recursive 0-ary defined constants (with positive and negative
// cross-references — subtraction of a defined constant is what makes the
// valid semantics interesting), plus occasionally a parameterized macro
// definition called from a constant body, exercising Inline. With allowFlip,
// leaf references are occasionally wrapped in the Flip polarity annotation,
// stressing the scheduled engine's monotonicity fallback; pass false for
// oracles that translate the program (translation reads Flip as identity, so
// annotated programs are not comparable across that boundary).
func (g *Gen) CoreInstance(allowFlip bool) *CoreInstance {
	x := g.newExprGen()
	db, scope := x.db()
	k := 1 + g.intn(1+g.cfg.Size/2)
	defs := make([]scopeEntry, k)
	for i := range defs {
		defs[i] = scopeEntry{"s" + strconv.Itoa(i), shape(g.intn(2))}
	}
	full := append(append([]scopeEntry{}, scope...), defs...)

	prog := &core.Program{}
	var macro *core.Def
	if g.cfg.Size >= 2 && g.chance(3) {
		// A non-recursive unary macro over its parameter and the database.
		body := algebra.Union{L: algebra.Rel{Name: "par"}, R: x.expr(shInt, 2, scope)}
		macro = &core.Def{Name: "m", Params: []string{"par"}, Body: body}
	}
	for _, d := range defs {
		body := x.expr(d.sh, g.depth(), full)
		if macro != nil && d.sh == shInt && g.chance(3) {
			body = algebra.Union{L: body, R: algebra.Call{Name: "m", Args: []algebra.Expr{x.expr(shInt, 1, full)}}}
		}
		if allowFlip && g.chance(4) {
			body = algebra.Union{L: body, R: algebra.Flip{E: x.leaf(d.sh, full)}}
		}
		prog.Defs = append(prog.Defs, core.Def{Name: d.name, Body: body})
	}
	if macro != nil {
		prog.Defs = append(prog.Defs, *macro)
	}
	return &CoreInstance{DB: db, Prog: prog}
}
