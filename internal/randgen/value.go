package randgen

import "algrec/internal/value"

// Value generates a random complex-object value of nesting depth at most
// depth: scalars at depth 0, tuples and sets of smaller values above. The
// interning property tests use it to exercise hash-consing on deeply nested
// structures that the expression generators (whose element shapes are flat
// by construction) never produce.
func (g *Gen) Value(depth int) value.Value {
	if depth <= 0 {
		switch g.intn(4) {
		case 0:
			return value.Bool(g.chance(2))
		case 1:
			return value.Int(int64(g.intn(20 * g.cfg.Size)))
		case 2:
			return value.Int(int64(g.intn(1 << 20))) // off the small-int fast path
		default:
			syms := []string{"a", "b", "paris", "x_1", "Quoted Sym", ""}
			return value.String(syms[g.intn(len(syms))])
		}
	}
	k := g.intn(3 * g.cfg.Size)
	if g.chance(2) {
		elems := make([]value.Value, k)
		for i := range elems {
			elems[i] = g.Value(depth - 1)
		}
		return value.NewTuple(elems...)
	}
	b := value.NewSetBuilder(k)
	for i := 0; i < k; i++ {
		b.Add(g.Value(depth - 1))
	}
	return b.Set()
}
