package randgen

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the pinned-instance golden files")

// renderInstances renders the full instance stream for one seed as a stable
// text document: the expression instance (database then expression), the
// core instance, and one program per Datalog kind, in generation order.
// Database relations print in sorted name order so the rendering is
// deterministic even though DB is a map.
func renderInstances(seed int64) string {
	g := New(seed, Config{Size: 3})
	var sb strings.Builder
	ei := g.ExprInstance()
	sb.WriteString("== expr instance\n")
	names := make([]string, 0, len(ei.DB))
	for n := range ei.DB {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "%s = %s\n", n, ei.DB[n])
	}
	fmt.Fprintf(&sb, "expr: %s\n", ei.Expr)
	ci := g.CoreInstance(true)
	sb.WriteString("== core instance\n")
	names = names[:0]
	for n := range ci.DB {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "%s = %s\n", n, ci.DB[n])
	}
	sb.WriteString(ci.Prog.String())
	for _, kind := range []DatalogKind{DlogPositive, DlogStratified, DlogFree} {
		fmt.Fprintf(&sb, "== datalog %v\n", kind)
		sb.WriteString(g.Datalog(kind).String())
	}
	return sb.String()
}

// TestPinnedInstances pins the exact generated instances for a few seeds
// against committed golden files. A refactor of the generator that changes
// its output for a given seed re-rolls every committed fuzz corpus entry —
// this test makes that visible and deliberate (regenerate with -update)
// instead of silent.
func TestPinnedInstances(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		got := renderInstances(seed)
		path := filepath.Join("testdata", fmt.Sprintf("pin-seed%d.golden", seed))
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed %d: %v (run `go test ./internal/randgen -run TestPinnedInstances -update` after a deliberate generator change)", seed, err)
		}
		if got != string(want) {
			t.Errorf("seed %d: generated instances changed; the fuzz corpora silently re-rolled.\nIf the generator change is deliberate, refresh with -update and re-commit the corpora.\n got:\n%s\nwant:\n%s", seed, got, want)
		}
	}
}
